package aviv

import (
	"testing"

	"aviv/internal/cover"
)

// TestPoolingByteIdentical is the scratch-reuse property test: the
// covering engine's pooled buffers (cover.DisablePooling=false, the
// default) must produce byte-for-byte the program text of fully fresh
// allocations, across the whole difftest corpus under both presets.
func TestPoolingByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	defer func() { cover.DisablePooling = false }()
	for _, preset := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"exhaustive", ExhaustiveOptions()},
	} {
		t.Run(preset.name, func(t *testing.T) {
			cover.DisablePooling = false
			pooled := corpusProgramText(t, preset.opts)
			cover.DisablePooling = true
			fresh := corpusProgramText(t, preset.opts)
			cover.DisablePooling = false
			if pooled != fresh {
				t.Fatal("pooled scheduler output differs from allocation-per-call output")
			}
		})
	}
}
