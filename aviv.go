// Package aviv is a reproduction of the AVIV retargetable code generator
// (Hanono & Devadas, DAC 1998). It compiles basic-block expression DAGs
// onto user-described VLIW/ILP target processors, optimizing for minimum
// code size by performing instruction selection, resource allocation, and
// scheduling concurrently over a Split-Node DAG.
//
// The high-level flow mirrors the paper's Fig. 1:
//
//	source (mini-C) ──lang──▶ ir.Func (basic-block DAGs + control flow)
//	ISDL description ──isdl──▶ machine model + databases
//	per block: sndag.Build ──▶ Split-Node DAG
//	           cover.CoverDAG ─▶ concurrent selection/allocation/scheduling
//	           regalloc.Allocate ─▶ detailed register allocation
//	           peephole.Optimize ─▶ spill cleanup + schedule compaction
//	           asm.EmitBlock ──▶ VLIW assembly
//	asm.Encode ──▶ binary object ──sim──▶ instruction-level simulation
package aviv

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"aviv/internal/asm"
	"aviv/internal/cover"
	"aviv/internal/dataflow"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/metrics"
	"aviv/internal/opt"
	"aviv/internal/peephole"
	"aviv/internal/place"
	"aviv/internal/regalloc"
	"aviv/internal/sndag"
	"aviv/internal/verify"
)

// Options configure compilation.
type Options struct {
	// Cover tunes the concurrent covering step (beam width, heuristics).
	Cover cover.Options
	// Peephole enables the post-register-allocation cleanup pass
	// (Sec. IV-G): removal of unnecessary loads/spills and schedule
	// compaction.
	Peephole bool
	// AutoPlace runs the memory-bank placement pass (package place) on
	// machines with multiple data memories, assigning variables so
	// co-accessed operands load from different banks. Explicit
	// Cover.VarPlacement entries win over the automatic assignment.
	AutoPlace bool
	// Parallelism bounds the worker pool that compiles basic blocks
	// concurrently: <= 0 selects GOMAXPROCS, 1 forces the serial path.
	// Per-block covering is independent (the paper's Sec. IV algorithm
	// is per-block), so the emitted program is byte-for-byte identical
	// at every setting; only wall time changes. When Cover.Trace is set
	// the pool is forced serial so trace lines keep their order.
	Parallelism int
	// Verify runs the static translation validator (internal/verify) on
	// the compiled output: source IR, per-block schedule/allocation, and
	// post-layout control flow are re-checked against the machine
	// description, and Compile fails with a *verify.VerifyError when any
	// invariant is violated.
	Verify bool
	// Cache, when non-nil, memoizes per-block coverings across Compile
	// calls, keyed by content fingerprints of the block, machine, and
	// covering options (cover.NewCache). Emitted programs are
	// byte-identical with and without it; recompiles of unchanged blocks
	// skip the covering search entirely.
	Cache *cover.Cache
	// DiskCache, when non-nil, is the persistent tier below Cache
	// (internal/diskcache): coverings missing from memory are looked up
	// on disk before searching, and fresh coverings are written back, so
	// the cache survives process restarts. Like Cache, it cannot change
	// output — corrupted or stale entries degrade to misses and decoded
	// coverings are re-verified.
	DiskCache cover.EntryStore
}

// DefaultOptions returns the paper's heuristics-on configuration with the
// peephole pass enabled.
func DefaultOptions() Options {
	return Options{Cover: cover.DefaultOptions(), Peephole: true, AutoPlace: true}
}

// ExhaustiveOptions returns the heuristics-off configuration of the
// paper's parenthesised result columns.
func ExhaustiveOptions() Options {
	return Options{Cover: cover.ExhaustiveOptions(), Peephole: true, AutoPlace: true}
}

// LoadMachine parses a textual ISDL-flavored machine description.
func LoadMachine(src string) (*isdl.Machine, error) { return isdl.Parse(src) }

// BlockResult is the compilation outcome for one basic block.
type BlockResult struct {
	Block *ir.Block
	// DAG is the Split-Node DAG (node counts reproduce the paper's
	// "#Nodes" columns).
	DAG *sndag.DAG
	// Covering is the raw pre-peephole covering as returned by
	// cover.CoverBlock — the unit the persistent cache tiers serialize
	// (cover.EncodeResult). internal/delta persists it under its
	// context fingerprints; Solution below is the post-peephole view
	// everything downstream consumes.
	Covering *cover.Result
	// Solution is the covering (instruction count = code size metric).
	Solution *cover.Solution
	// Allocation is the detailed register allocation.
	Allocation *regalloc.Allocation
	// Code is the emitted assembly block.
	Code *asm.Block
	// AssignmentsExplored counts functional-unit assignments covered in
	// detail.
	AssignmentsExplored int
	// PeepholeSaved counts instructions removed by the peephole pass.
	PeepholeSaved int
	// Metrics carries the per-phase counters and timings for this block.
	Metrics metrics.BlockMetrics
}

// CompileResult is a fully compiled function.
type CompileResult struct {
	Func    *ir.Func
	Machine *isdl.Machine
	Program *asm.Program
	Blocks  []*BlockResult
	// Metrics aggregates per-block effort, per-phase timings, and the
	// worker-pool utilization of the compile.
	Metrics *metrics.CompileMetrics
}

// CodeSize returns the total program code size in instructions,
// including control-flow instructions.
func (r *CompileResult) CodeSize() int { return r.Program.CodeSize() }

// CompileBlock compiles a single basic block, recording per-phase
// timings and effort counters in the result's Metrics.
func CompileBlock(b *ir.Block, m *isdl.Machine, opts Options) (*BlockResult, error) {
	total := metrics.StartTimer()
	bm := metrics.BlockMetrics{Block: b.Name}
	phase := metrics.StartTimer()
	opts.Cover.Cache = opts.Cache
	opts.Cover.Store = opts.DiskCache
	res, err := cover.CoverBlock(b, m, opts.Cover)
	if err != nil {
		return nil, fmt.Errorf("aviv: block %s: %w", b.Name, err)
	}
	bm.Cover = phase.Elapsed()
	sol := res.Best
	saved := 0
	if opts.Peephole {
		phase = metrics.StartTimer()
		before := sol.Cost()
		sol = peephole.Optimize(sol)
		saved = before - sol.Cost()
		bm.Peephole = phase.Elapsed()
	}
	phase = metrics.StartTimer()
	alloc, err := regalloc.Allocate(sol)
	if err != nil {
		return nil, fmt.Errorf("aviv: block %s: %w", b.Name, err)
	}
	bm.Regalloc = phase.Elapsed()
	phase = metrics.StartTimer()
	code, err := asm.EmitBlock(sol, alloc)
	if err != nil {
		return nil, fmt.Errorf("aviv: block %s: %w", b.Name, err)
	}
	bm.Emit = phase.Elapsed()
	bm.DAGNodes = res.DAG.Counts.Total()
	bm.Instructions = sol.Cost()
	bm.Spills = sol.SpillCount
	bm.AssignmentsExplored = res.AssignmentsExplored
	bm.PeepholeSaved = saved
	bm.PrunedStores = res.PrunedStores
	bm.PrunedAssignments = res.PrunedAssignments
	bm.MemoHits = res.MemoHits
	bm.CacheHit = res.CacheHit
	bm.DiskHit = res.DiskHit
	bm.Total = total.Elapsed()
	return &BlockResult{
		Block:               b,
		DAG:                 res.DAG,
		Covering:            res,
		Solution:            sol,
		Allocation:          alloc,
		Code:                code,
		AssignmentsExplored: res.AssignmentsExplored,
		PeepholeSaved:       saved,
		Metrics:             bm,
	}, nil
}

// ResolveParallelism maps a Parallelism setting to a concrete worker
// count: <= 0 selects GOMAXPROCS, anything else is taken as-is. This is
// the single defaulting rule — the block worker pool (poolSize) and the
// avivd server pool both resolve through it, so they cannot drift.
func ResolveParallelism(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// PlacementOptions resolves the AutoPlace pass into concrete
// Cover.VarPlacement entries for one function: on machines with more
// than one data memory the automatic bank assignment (package place) is
// merged under any explicit entries, which win. The returned Options
// are what the per-block pipeline actually keys and compiles against —
// Compile and the internal/delta engine both resolve through here, so
// placement can never drift between the full and the incremental path.
// (place.Assign is a function of the whole ir.Func: an edit anywhere
// can move a variable to another bank, which then shows up in every
// affected block's options fingerprint.)
func PlacementOptions(f *ir.Func, m *isdl.Machine, opts Options) Options {
	if opts.AutoPlace && len(m.Memories) > 1 {
		auto := place.Assign(f, m)
		merged := make(map[string]string, len(auto)+len(opts.Cover.VarPlacement))
		for k, v := range auto {
			merged[k] = v
		}
		for k, v := range opts.Cover.VarPlacement {
			merged[k] = v // explicit placement wins
		}
		opts.Cover.VarPlacement = merged
	}
	return opts
}

// poolSize resolves Options.Parallelism to a concrete worker count for a
// function with nBlocks basic blocks.
func (o Options) poolSize(nBlocks int) int {
	par := ResolveParallelism(o.Parallelism)
	if par > nBlocks {
		par = nBlocks
	}
	if par < 1 {
		par = 1
	}
	if o.Cover.Trace != nil {
		par = 1 // keep trace lines in covering order
	}
	return par
}

// Compile compiles a whole function: every basic block through the
// concurrent covering pipeline, plus one control-flow instruction per
// block terminator (Sec. III-C).
//
// Blocks are compiled by a bounded worker pool (Options.Parallelism;
// per-block covering dominates compile time and is independent across
// blocks) and reassembled in original block order, so the result is
// byte-for-byte identical to the serial Parallelism=1 path. On error the
// first failing block in original block order is reported, also
// regardless of parallelism.
func Compile(f *ir.Func, m *isdl.Machine, opts Options) (*CompileResult, error) {
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("aviv: %w", err)
	}
	if opts.Verify {
		if verr := verify.Func(f); verr != nil {
			return nil, fmt.Errorf("aviv: source IR rejected by verifier: %w", verr)
		}
	}
	// Global liveness runs once up front; each block's live-out set lets
	// the covering prune stores no successor ever observes, so dead
	// values stop occupying register banks and generating spill traffic.
	analysisTimer := metrics.StartTimer()
	liveOuts := dataflow.Liveness(f).OutSets()
	analysisTime := analysisTimer.Elapsed()
	if opts.Verify {
		// Self-distrust: re-derive liveness by an independent path search
		// and refuse to compile on any disagreement — a wrong live-out set
		// licenses an unsound store prune.
		if vs := verify.CheckLiveness(f, liveOuts); len(vs) > 0 {
			return nil, fmt.Errorf("aviv: liveness cross-check failed: %w", &verify.VerifyError{Violations: vs})
		}
	}
	opts = PlacementOptions(f, m, opts)
	par := opts.poolSize(len(f.Blocks))
	coll := metrics.NewCollector(par)
	results := make([]*BlockResult, len(f.Blocks))
	errs := make([]error, len(f.Blocks))
	compileOne := func(i, worker int) {
		o := opts
		o.Cover.LiveOut = liveOuts[i]
		br, err := CompileBlock(f.Blocks[i], m, o)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = br
		coll.ReportBlock(i, worker, br.Metrics)
	}
	if par == 1 {
		for i := range f.Blocks {
			compileOne(i, 0)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(f.Blocks) {
						return
					}
					compileOne(i, worker)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &CompileResult{
		Func:    f,
		Machine: m,
		Program: &asm.Program{Machine: m},
	}
	for _, br := range results {
		out.Blocks = append(out.Blocks, br)
		out.Program.Blocks = append(out.Program.Blocks, br.Code)
	}
	LayoutProgram(out.Program)
	var verr *verify.VerifyError
	if opts.Verify {
		verr = verifyResult(out, liveOuts)
	}
	out.Metrics = coll.Finish()
	out.Metrics.Analysis.Liveness = analysisTime
	for i, bm := range out.Metrics.Blocks {
		out.Blocks[i].Metrics.Worker = bm.Worker
		// The collector snapshotted block metrics before verification
		// ran; push the verify timings the other way.
		out.Metrics.Blocks[i].Verify = out.Blocks[i].Metrics.Verify
		out.Metrics.Blocks[i].Violations = out.Blocks[i].Metrics.Violations
	}
	if verr != nil {
		return out, fmt.Errorf("aviv: translation validation failed: %w", verr)
	}
	return out, nil
}

// verifyResult runs the static translation validator over the laid-out
// program, recording per-block verify time and violation counts in the
// block metrics. Layout- and program-level violations are charged to the
// block they name when it exists.
//
// Each block's code is validated against the block the covering actually
// consumed (Solution.Block — the liveness-pruned clone when pruning
// happened), and the prune itself is re-derived independently by
// verify.CheckPrune, so neither the dataflow solver nor the pruner is
// trusted with the source-to-code correspondence.
func verifyResult(out *CompileResult, liveOuts []map[string]bool) *verify.VerifyError {
	byName := make(map[string]*BlockResult, len(out.Blocks))
	var all []verify.Violation
	for i, br := range out.Blocks {
		byName[br.Code.Name] = br
		t := metrics.StartTimer()
		covered := br.Solution.Block
		vs := verify.BlockCode(br.Code, out.Machine, covered)
		if covered != br.Block {
			vs = append(vs, verify.CheckPrune(br.Block, covered, liveOuts[i])...)
		}
		br.Metrics.Verify = t.Elapsed()
		br.Metrics.Violations = len(vs)
		all = append(all, vs...)
	}
	for _, v := range verify.Layout(out.Program, out.Func) {
		if br := byName[v.Block]; br != nil {
			br.Metrics.Violations++
		}
		all = append(all, v)
	}
	if len(all) == 0 {
		return nil
	}
	return &verify.VerifyError{Violations: all}
}

// LayoutProgram orders the program's blocks to maximize fallthroughs,
// converting unconditional jumps to implicit falls when the target can be
// placed immediately after — a code-size optimization in the same spirit
// as the paper's minimum-size objective (each eliminated jump is one
// fewer ROM word).
//
// Layout is a whole-program decision: it mutates each block's Branch in
// place depending on which block happens to follow it. Cached per-block
// artifacts must therefore be pre-layout (internal/delta stitches
// pristine clones and re-runs LayoutProgram globally on every compile —
// that is how "predecessors' layout assumptions" stay out of the
// per-block cache keys).
func LayoutProgram(p *asm.Program) {
	if len(p.Blocks) == 0 {
		return
	}
	byName := make(map[string]*asm.Block, len(p.Blocks))
	for _, b := range p.Blocks {
		byName[b.Name] = b
	}
	placed := make(map[string]bool, len(p.Blocks))
	var order []*asm.Block
	place := func(b *asm.Block) {
		order = append(order, b)
		placed[b.Name] = true
	}
	// Greedy chaining from the entry: follow jump/fallthrough targets.
	for _, start := range p.Blocks {
		if placed[start.Name] {
			continue
		}
		cur := start
		for cur != nil && !placed[cur.Name] {
			place(cur)
			var nextName string
			switch cur.Branch.Kind {
			case asm.BranchJump, asm.BranchNone:
				nextName = cur.Branch.Target
			case asm.BranchCond:
				// Chain the else arm: the taken branch needs its explicit
				// target anyway.
				nextName = cur.Branch.Else
			}
			if nextName == "" || placed[nextName] {
				break
			}
			cur = byName[nextName]
		}
	}
	// Convert jumps-to-next into fallthroughs — and the reverse: an
	// implicit fall whose target did not end up adjacent (its chain was
	// entered from elsewhere first) must become an explicit jump, or the
	// program would fall into the wrong block on real hardware.
	for i, b := range order {
		next := ""
		if i+1 < len(order) {
			next = order[i+1].Name
		}
		switch b.Branch.Kind {
		case asm.BranchJump:
			if b.Branch.Target == next {
				b.Branch = asm.Branch{Kind: asm.BranchNone, Target: b.Branch.Target}
			}
		case asm.BranchNone:
			if b.Branch.Target != "" && b.Branch.Target != next {
				b.Branch = asm.Branch{Kind: asm.BranchJump, Target: b.Branch.Target}
			}
		}
	}
	p.Blocks = order
}

// CompileSource compiles a mini-C source program end to end: parse,
// optional loop unrolling by unrollFactor (0 or 1 disables; the paper's
// Ex3–Ex5 use 2), lowering to basic-block DAGs, machine-independent
// optimization, and retargetable code generation.
func CompileSource(src string, m *isdl.Machine, unrollFactor int, opts Options) (*CompileResult, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if unrollFactor > 1 {
		prog = lang.Unroll(prog, unrollFactor)
	}
	f, err := lang.Lower(prog, "main")
	if err != nil {
		return nil, err
	}
	f = opt.Optimize(f)
	return Compile(f, m, opts)
}

// ParseAndLower exposes the front-end half of CompileSource for tools
// that want the optimized IR without generating code.
func ParseAndLower(src string, unrollFactor int) (*ir.Func, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if unrollFactor > 1 {
		prog = lang.Unroll(prog, unrollFactor)
	}
	f, err := lang.Lower(prog, "main")
	if err != nil {
		return nil, err
	}
	return opt.Optimize(f), nil
}
