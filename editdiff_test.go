// The edit differential suite: the delta engine's byte-identity
// contract, proved over a corpus of seeded programs and edit streams.
// It lives in the external test package because internal/delta imports
// aviv — an in-package test importing it back would be an import cycle.
package aviv_test

import (
	"fmt"
	"testing"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/delta"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
)

// editCorpusSize configures the differential sweep: 50 programs x 5
// cumulative one-line edits in full mode, a deterministic 12 x 3 subset
// under -short (the ci.sh editsmoke stage).
func editCorpusSize(t *testing.T) (programs, edits int) {
	if testing.Short() {
		return 12, 3
	}
	return 50, 5
}

// TestEditDifferentialCorpus is the delta path's ground-truth suite:
// for every program and every edit in its stream, the stitched compile
// must be byte-identical to a from-scratch compile of the same source —
// with the static validator on, the interpreter oracle armed, at worker
// pool sizes 1 and 8, and through both the memory tier and a persistent
// disk tier shared by a restarted engine.
func TestEditDifferentialCorpus(t *testing.T) {
	programs, edits := editCorpusSize(t)
	machine := isdl.ExampleArchFull(4)
	baseOpts := aviv.DefaultOptions()
	baseOpts.Verify = true
	oracle := map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3}

	var totalStitched, totalRecompiled int
	for p := 0; p < programs; p++ {
		p := p
		// Alternate the engine's worker pool between serial and 8-wide:
		// half-warm stitching must be order-independent at any setting.
		par := 1
		if p%2 == 1 {
			par = 8
		}
		t.Run(fmt.Sprintf("prog%d_par%d", p, par), func(t *testing.T) {
			// Small, varied programs: 8-11 requested blocks, 3-6 ops.
			src := bench.MultiBlockSource(int64(p+1), 8+p%4, 3+p%4)
			opts := baseOpts
			opts.Parallelism = par

			disk, err := diskcache.Open(t.TempDir(), 0)
			if err != nil {
				t.Fatal(err)
			}
			eng := delta.New(0, disk)
			eng.Oracle = oracle
			if _, err := eng.CompileSource(src, machine, 1, opts); err != nil {
				t.Fatalf("warmup compile failed: %v", err)
			}
			for e := 0; e < edits; e++ {
				src = bench.MutateSource(src, int64(p*100+e))
				scratch, err := aviv.CompileSource(src, machine, 1, opts)
				if err != nil {
					t.Fatalf("edit %d: scratch compile failed: %v", e, err)
				}
				res, err := eng.CompileSource(src, machine, 1, opts)
				if err != nil {
					t.Fatalf("edit %d: delta compile failed: %v", e, err)
				}
				if got, want := res.Program.String(), scratch.Program.String(); got != want {
					t.Fatalf("edit %d: delta output differs from scratch:\n%s\nvs\n%s", e, got, want)
				}
				totalStitched += res.Stitched
				totalRecompiled += res.Recompiled
			}
			// Restart: a fresh engine sharing only the disk directory must
			// reproduce the final program by stitching persisted artifacts.
			restarted := delta.New(0, disk)
			restarted.Oracle = oracle
			res, err := restarted.CompileSource(src, machine, 1, opts)
			if err != nil {
				t.Fatalf("restarted compile failed: %v", err)
			}
			final, err := aviv.CompileSource(src, machine, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Program.String(), final.Program.String(); got != want {
				t.Fatalf("restarted delta output differs from scratch:\n%s\nvs\n%s", got, want)
			}
			if res.DiskStitched == 0 {
				t.Fatalf("restarted engine stitched nothing from disk (%d blocks)", res.Blocks)
			}
		})
	}
	// Aggregate sanity: across the whole corpus the delta path must do
	// what it is for — most blocks stitch, only edit-reached ones
	// recompile. (Per-edit counts vary with where the mutation lands.)
	if totalStitched <= totalRecompiled {
		t.Fatalf("edit corpus stitched %d blocks but recompiled %d; delta path is not localizing edits",
			totalStitched, totalRecompiled)
	}
	t.Logf("edit corpus: %d stitched, %d recompiled", totalStitched, totalRecompiled)
}
