package aviv

import (
	"fmt"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sim"
)

// TestStressDifferential compiles deterministic pseudo-random blocks for
// five architectures and checks every result against the reference
// interpreter — the regression net that caught the covering's spill
// ping-pong bugs during development. Short mode runs a reduced sweep.
func TestStressDifferential(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 20
	}
	machines := []*isdl.Machine{
		isdl.ExampleArch(4),
		isdl.ExampleArch(2),
		isdl.ArchitectureII(2),
		isdl.WideDSP(2),
		isdl.SingleIssueDSP(3),
		isdl.ClusteredVLIW(3),
		isdl.DualMemDSP(3),
	}
	fails := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, nops := range []int{4, 9, 14} {
			w := bench.Random(seed*7919, nops)
			f := singleBlockFunc(w.Block)
			mem := map[string]int64{
				"a": seed % 97, "b": (seed * 3) % 89, "c": (seed * 7) % 83, "d": (seed * 11) % 79,
			}
			want := map[string]int64{}
			for k, v := range mem {
				want[k] = v
			}
			if err := ir.EvalFunc(f, want, 0); err != nil {
				t.Fatalf("reference eval seed %d: %v", seed, err)
			}
			for mi, m := range machines {
				res, err := Compile(f, m, DefaultOptions())
				if err != nil {
					t.Errorf("seed %d nops %d machine %d (%s): compile: %v", seed, nops, mi, m.Name, err)
					fails++
					continue
				}
				got, _, err := sim.RunProgram(res.Program, mem, 0)
				if err != nil {
					t.Errorf("seed %d nops %d machine %d (%s): sim: %v", seed, nops, mi, m.Name, err)
					fails++
					continue
				}
				for k, v := range want {
					if got[k] != v {
						t.Errorf("seed %d nops %d machine %d (%s): mem[%s] = %d, want %d",
							seed, nops, mi, m.Name, k, got[k], v)
						fails++
						break
					}
				}
				if fails > 10 {
					t.Fatal("too many failures; aborting sweep")
				}
			}
		}
	}
}

// TestStressMultiBlockPrograms stresses control flow: random straight-line
// blocks stitched into branchy programs.
func TestStressMultiBlockPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	m := isdl.ExampleArchFull(4)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := randomProgram(seed)
		f, err := ParseAndLower(src, 1)
		if err != nil {
			t.Fatalf("seed %d: front end: %v\n%s", seed, err, src)
		}
		res, err := Compile(f, m, DefaultOptions())
		if err != nil {
			t.Errorf("seed %d: compile: %v\n%s", seed, err, src)
			continue
		}
		mem := map[string]int64{"a": seed % 13, "b": (seed * 5) % 11}
		want := map[string]int64{}
		for k, v := range mem {
			want[k] = v
		}
		if err := ir.EvalFunc(f, want, 0); err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, _, err := sim.RunProgram(res.Program, mem, 0)
		if err != nil {
			t.Errorf("seed %d: sim: %v\n%s", seed, err, res.Program)
			continue
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("seed %d: mem[%s] = %d, want %d\nsource:\n%s", seed, k, got[k], v, src)
				break
			}
		}
	}
}

// randomProgram emits a deterministic branchy mini-C program.
func randomProgram(seed int64) string {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 7
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	vars := []string{"a", "b", "x", "y"}
	expr := func() string {
		v1 := vars[next(len(vars))]
		v2 := vars[next(len(vars))]
		op := []string{"+", "-", "*"}[next(3)]
		return fmt.Sprintf("%s %s %s", v1, op, v2)
	}
	src := "x = a + 1;\ny = b + 2;\n"
	for i := 0; i < 3+next(3); i++ {
		switch next(3) {
		case 0:
			src += fmt.Sprintf("%s = %s;\n", vars[2+next(2)], expr())
		case 1:
			src += fmt.Sprintf("if (%s > %d) { %s = %s; } else { %s = %s; }\n",
				vars[next(len(vars))], next(20),
				vars[2+next(2)], expr(), vars[2+next(2)], expr())
		case 2:
			src += fmt.Sprintf("for (k%d = 0; k%d < %d; k%d = k%d + 1) { %s = %s; }\n",
				i, i, 1+next(4), i, i, vars[2+next(2)], expr())
		}
	}
	src += "out = x + y;\n"
	return src
}
