package aviv

import (
	"testing"

	"aviv/internal/cover"
	"aviv/internal/diskcache"
)

// TestDiskCacheCorpusByteIdentical compiles the difftest corpus three
// ways — no cache, cold disk cache, warm disk cache in a fresh "process"
// (new Options, new memory cache, same directory) — and requires the
// emitted programs to be byte-identical. This is the persistent tier's
// version of the existing cache property test: a disk round-trip through
// the covering codec must never change output.
func TestDiskCacheCorpusByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the 50-program corpus three times")
	}
	want := corpusProgramText(t, DefaultOptions())

	dir := t.TempDir()
	cold, err := diskcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cache = cover.NewCache()
	opts.DiskCache = cold
	if got := corpusProgramText(t, opts); got != want {
		t.Fatalf("cold disk-cache corpus differs from uncached compilation (%d vs %d bytes)", len(got), len(want))
	}
	cs := cold.Stats()
	if cs.Writes == 0 {
		t.Fatalf("cold pass wrote nothing to the disk tier: %+v", cs)
	}

	warm, err := diskcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts = DefaultOptions()
	opts.Cache = cover.NewCache()
	opts.DiskCache = warm
	if got := corpusProgramText(t, opts); got != want {
		t.Fatalf("warm disk-cache corpus differs from uncached compilation (%d vs %d bytes)", len(got), len(want))
	}
	ws := warm.Stats()
	if ws.Hits == 0 || ws.Corrupt != 0 {
		t.Fatalf("warm pass did not serve from the disk tier cleanly: %+v", ws)
	}
}
