package aviv

import (
	"testing"

	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// TestCompileCacheByteIdentical is the cache property test: compiling
// the whole difftest corpus with a shared compile cache — twice, so the
// second pass is answered from the cache — produces byte-for-byte the
// program text of an uncached compile, under both presets.
func TestCompileCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	for _, preset := range []struct {
		name string
		opts Options
	}{
		{"default", DefaultOptions()},
		{"exhaustive", ExhaustiveOptions()},
	} {
		t.Run(preset.name, func(t *testing.T) {
			want := corpusProgramText(t, preset.opts)
			cached := preset.opts
			cached.Cache = cover.NewCache()
			if got := corpusProgramText(t, cached); got != want {
				t.Fatal("first cached pass differs from uncached compile")
			}
			statsAfterFirst := cached.Cache.Stats()
			if got := corpusProgramText(t, cached); got != want {
				t.Fatal("cache-hit pass differs from uncached compile")
			}
			stats := cached.Cache.Stats()
			if stats.Hits <= statsAfterFirst.Hits {
				t.Fatalf("second pass produced no cache hits: %+v", stats)
			}
			if stats.Entries == 0 || stats.Bytes == 0 {
				t.Fatalf("cache stats not populated: %+v", stats)
			}
		})
	}
}

// TestCompileCacheVerifiedHit exercises the translation-validator path
// on a cache hit: the covered block is then a content-identical clone of
// the current block (pointer-unequal), and verification must still
// accept the program.
func TestCompileCacheVerifiedHit(t *testing.T) {
	src, _ := genProgram(3, false)
	m := isdl.ExampleArchFull(4)
	opts := DefaultOptions()
	opts.Verify = true
	opts.Cache = cover.NewCache()
	first, err := CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("first compile: %v", err)
	}
	second, err := CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("verified cache-hit compile: %v", err)
	}
	if first.Program.String() != second.Program.String() {
		t.Fatal("cache-hit program differs")
	}
	if second.Metrics.CacheHits() == 0 {
		t.Fatal("second compile hit no cached blocks")
	}
}

// TestCompileCacheKeyedByOptions checks that option changes miss: the
// same source under a different level window must not reuse a covering.
func TestCompileCacheKeyedByOptions(t *testing.T) {
	src, _ := genProgram(5, false)
	m := isdl.ExampleArchFull(4)
	cache := cover.NewCache()
	opts := DefaultOptions()
	opts.Cache = cache
	if _, err := CompileSource(src, m, 1, opts); err != nil {
		t.Fatal(err)
	}
	other := opts
	other.Cover.LevelWindow = 5
	res, err := CompileSource(src, m, 1, other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CacheHits() != 0 {
		t.Fatal("covering reused across differing options")
	}
}
