package aviv

import (
	"fmt"
	"sync"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/isdl"
	"aviv/internal/verify"
	"aviv/internal/zoo"
)

// The cross-machine differential harness: the machine zoo supplies
// target diversity (clustered banks, multi-cycle units, sparse transfer
// graphs, hostile constraints), and every program of the differential
// corpus must compile on every zoo machine, pass the static verifier,
// and leave the exact memory state the reference interpreter predicts.
// This is the paper's retargetability claim under test: one engine, any
// ISDL-described target.

// zooSeed and zooCount fix the shipped zoo: 27 machines (3 full cycles
// over the 9 classes) from seed 1. Changing either changes the matrix
// everywhere — tests, fuzz machine pool, and avivbench -zoo all derive
// from zoo.Generate, so a failure reported by any of them reproduces
// from (seed, index) alone.
const (
	zooSeed  = 1
	zooCount = 27
)

var zooOnce = sync.OnceValues(func() ([]*zoo.Entry, error) {
	return zoo.Generate(zooSeed, zooCount)
})

// zooEntries returns the shared zoo, generating it once per process.
func zooEntries(t testing.TB) []*zoo.Entry {
	entries, err := zooOnce()
	if err != nil {
		t.Fatalf("zoo generation failed: %v", err)
	}
	return entries
}

// zooCorpus returns the differential program corpus: the 50 seeded
// difftest programs plus multi-block MultiBlockSource programs. The
// bitwise half of the difftest corpus is included — every zoo machine
// offers the full core repertoire, so there is no machine the corpus
// must avoid.
func zooCorpus() []struct {
	label string
	src   string
	mem   map[string]int64
} {
	var corpus []struct {
		label string
		src   string
		mem   map[string]int64
	}
	for seed := int64(0); seed < 50; seed++ {
		src, mem := genProgram(seed, seed%2 == 1)
		corpus = append(corpus, struct {
			label string
			src   string
			mem   map[string]int64
		}{fmt.Sprintf("prog%d", seed), src, mem})
	}
	for seed := int64(1); seed <= 6; seed++ {
		src := bench.MultiBlockSource(seed, 9, 6)
		corpus = append(corpus, struct {
			label string
			src   string
			mem   map[string]int64
		}{fmt.Sprintf("multi%d", seed), src, map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3}})
	}
	return corpus
}

// TestZooDifferentialMatrix compiles the full corpus on every zoo
// machine. Every compile runs the static verifier (diffOne sets
// Options.Verify) and the simulated memory image must match the
// reference interpreter cell for cell. In -short mode a deterministic
// slice of the matrix runs; the full product space is the default gate.
func TestZooDifferentialMatrix(t *testing.T) {
	entries := zooEntries(t)
	corpus := zooCorpus()
	step := 1
	if testing.Short() {
		step = 7
	}
	for mi, e := range entries {
		e := e
		t.Run(fmt.Sprintf("m%02d_%s", e.Index, e.Class), func(t *testing.T) {
			for ci := mi % step; ci < len(corpus); ci += step {
				c := corpus[ci]
				diffOne(t, c.src, e.M, c.mem, DefaultOptions(), fmt.Sprintf("zoo%d/%s/%s", e.Index, e.Class, c.label))
				if t.Failed() {
					t.Fatalf("failing machine (seed %d, index %d, attempt %d):\n%s", e.Seed, e.Index, e.Attempt, e.Text)
				}
			}
		})
	}
}

// TestZooParallelByteIdentical re-runs a deterministic slice of the
// matrix at Parallelism 8 and requires byte-identical assembly to the
// serial compile — the parallel pipeline's determinism contract must
// hold on every machine shape, not just the hand-written targets.
func TestZooParallelByteIdentical(t *testing.T) {
	entries := zooEntries(t)
	corpus := zooCorpus()
	for mi, e := range entries {
		// Each machine checks two programs, staggered so the corpus is
		// covered across machines.
		for k := 0; k < 2; k++ {
			c := corpus[(mi*2+k*17)%len(corpus)]
			serial := DefaultOptions()
			serial.Verify = true
			serial.Parallelism = 1
			res1, err := CompileSource(c.src, e.M, 1, serial)
			if err != nil {
				t.Fatalf("zoo%d/%s/%s: serial compile: %v\n%s", e.Index, e.Class, c.label, err, e.Text)
			}
			par := serial
			par.Parallelism = 8
			res8, err := CompileSource(c.src, e.M, 1, par)
			if err != nil {
				t.Fatalf("zoo%d/%s/%s: parallel compile: %v", e.Index, e.Class, c.label, err)
			}
			if res1.Program.String() != res8.Program.String() {
				t.Errorf("zoo%d/%s/%s: Parallelism 1 vs 8 output differs:\n%s\nvs\n%s",
					e.Index, e.Class, c.label, res1.Program, res8.Program)
			}
		}
	}
}

// TestZooSmoke is the CI zoosmoke entry point: a small deterministic
// slice of the differential matrix (first machine of every class, a
// handful of programs each) that finishes fast even under -race.
func TestZooSmoke(t *testing.T) {
	entries := zooEntries(t)
	corpus := zooCorpus()
	for mi := 0; mi < len(zoo.Classes()) && mi < len(entries); mi++ {
		e := entries[mi]
		for k := 0; k < 3; k++ {
			c := corpus[(mi*11+k*19)%len(corpus)]
			diffOne(t, c.src, e.M, c.mem, DefaultOptions(), fmt.Sprintf("smoke/zoo%d/%s/%s", e.Index, e.Class, c.label))
		}
	}
}

// TestZooLintRulesClassify pins the contract between the zoo's
// regenerate-on-reject classifier and the linter: every rule the lint
// tests enumerate is a rule zoo.RejectRules can surface, and the
// canonical registry verify.LintRules is exactly the set of rules the
// linter can emit (the lint table test in internal/verify checks the
// other direction, per-class).
func TestZooLintRulesClassify(t *testing.T) {
	m := isdl.NewMachine("bad")
	m.AddUnit("U", 0)
	rules := zoo.RejectRules(verify.LintMachine(m))
	known := map[string]bool{}
	for _, r := range verify.LintRules() {
		known[r] = true
	}
	for _, r := range rules {
		if !known[r] {
			t.Errorf("RejectRules surfaced %q, which is not in verify.LintRules", r)
		}
	}
}
