package aviv

import (
	"runtime"
	"testing"
	"time"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// TestParallelDeterminism is the headline guarantee of the worker pool:
// the same multi-block function compiled at Parallelism 1, 2, and 8
// yields identical code size and byte-for-byte identical assembly text.
func TestParallelDeterminism(t *testing.T) {
	f, _ := bench.MultiBlock(1, 24, 16)
	if len(f.Blocks) < 8 {
		t.Fatalf("workload has %d blocks, want >= 8", len(f.Blocks))
	}
	m := isdl.ExampleArchFull(4)

	var refText string
	var refSize int
	for _, par := range []int{1, 2, 8} {
		opts := DefaultOptions()
		opts.Parallelism = par
		res, err := Compile(f, m, opts)
		if err != nil {
			t.Fatalf("Compile at Parallelism %d: %v", par, err)
		}
		text := res.Program.String()
		if par == 1 {
			refText, refSize = text, res.CodeSize()
			continue
		}
		if res.CodeSize() != refSize {
			t.Errorf("Parallelism %d: code size %d, serial %d", par, res.CodeSize(), refSize)
		}
		if text != refText {
			t.Errorf("Parallelism %d: assembly differs from serial run\n--- serial ---\n%s\n--- parallel ---\n%s",
				par, refText, text)
		}
	}
}

// TestParallelCompileValidates runs the full Fig. 1 validation loop
// (compile, verify, encode/decode, simulate, compare against the IR
// interpreter) on the multi-block workload with an 8-worker pool.
func TestParallelCompileValidates(t *testing.T) {
	f, mem := bench.MultiBlock(2, 12, 10)
	opts := DefaultOptions()
	opts.Parallelism = 8
	checkCompiled(t, f, isdl.ExampleArchFull(4), mem, opts)
}

// TestParallelErrorDeterministic: when several blocks fail to compile,
// every pool size reports the same error — the first failing block in
// original block order. ExampleArch (without compare units) cannot cover
// the conditional branches of MultiBlock, whose first compare is in b3.
func TestParallelErrorDeterministic(t *testing.T) {
	f, _ := bench.MultiBlock(1, 24, 8)
	m := isdl.ExampleArch(4) // no CMPGT unit: blocks b3, b7, ... fail
	var refErr string
	for _, par := range []int{1, 8} {
		opts := DefaultOptions()
		opts.Parallelism = par
		_, err := Compile(f, m, opts)
		if err == nil {
			t.Fatalf("Parallelism %d: expected error on compare-less machine", par)
		}
		if par == 1 {
			refErr = err.Error()
			continue
		}
		if err.Error() != refErr {
			t.Errorf("Parallelism %d error %q, serial error %q", par, err.Error(), refErr)
		}
	}
}

// TestCompileMetrics checks the metrics surfaced by Compile: one entry
// per block in original order, phase timings that add up, and a sane
// utilization figure.
func TestCompileMetrics(t *testing.T) {
	f, _ := bench.MultiBlock(3, 9, 12)
	opts := DefaultOptions()
	opts.Parallelism = 4
	res, err := Compile(f, isdl.ExampleArchFull(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	cm := res.Metrics
	if cm == nil {
		t.Fatal("CompileResult.Metrics is nil")
	}
	if len(cm.Blocks) != len(f.Blocks) {
		t.Fatalf("metrics cover %d blocks, function has %d", len(cm.Blocks), len(f.Blocks))
	}
	if cm.Parallelism != 4 {
		t.Errorf("recorded parallelism %d, want 4", cm.Parallelism)
	}
	for i, bm := range cm.Blocks {
		if want := f.Blocks[i].Name; bm.Block != want {
			t.Errorf("metrics block %d is %q, want %q (original order)", i, bm.Block, want)
		}
		if bm.Worker < 0 || bm.Worker >= 4 {
			t.Errorf("block %s worker %d out of range [0,4)", bm.Block, bm.Worker)
		}
		if bm.Total <= 0 {
			t.Errorf("block %s total time %v, want > 0", bm.Block, bm.Total)
		}
		if bm.Instructions <= 0 || bm.DAGNodes <= 0 || bm.AssignmentsExplored <= 0 {
			t.Errorf("block %s counters look empty: %+v", bm.Block, bm)
		}
		// The per-block Metrics on BlockResult must agree with the aggregate.
		if got := res.Blocks[i].Metrics; got != bm {
			t.Errorf("block %s: BlockResult.Metrics %+v != CompileMetrics entry %+v", bm.Block, got, bm)
		}
	}
	if cm.TotalAssignments() <= 0 {
		t.Errorf("TotalAssignments() = %d, want > 0", cm.TotalAssignments())
	}
	if cm.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", cm.Wall)
	}
	if u := cm.Utilization(); u <= 0 || u > 1.000001 {
		t.Errorf("Utilization() = %v, want in (0, 1]", u)
	}
	cov, peep, ra, emit, vfy := cm.PhaseTotals()
	if phases := cov + peep + ra + emit + vfy; phases <= 0 {
		t.Errorf("PhaseTotals() sum %v, want > 0", phases)
	}
	if cm.String() == "" {
		t.Error("String() report is empty")
	}
}

// TestPoolSize pins down the Parallelism resolution rules.
func TestPoolSize(t *testing.T) {
	base := DefaultOptions()
	cases := []struct {
		par, nBlocks, want int
	}{
		{1, 10, 1},
		{8, 10, 8},
		{8, 3, 3},  // never more workers than blocks
		{-5, 1, 1}, // <= 0 means GOMAXPROCS, clamped by nBlocks
		{3, 0, 1},  // degenerate: at least one worker
	}
	for _, c := range cases {
		o := base
		o.Parallelism = c.par
		if got := o.poolSize(c.nBlocks); got != c.want {
			t.Errorf("poolSize(par=%d, blocks=%d) = %d, want %d", c.par, c.nBlocks, got, c.want)
		}
	}
	o := base
	o.Parallelism = 0
	if got, max := o.poolSize(1000), runtime.GOMAXPROCS(0); got != max {
		t.Errorf("poolSize(par=0, blocks=1000) = %d, want GOMAXPROCS %d", got, max)
	}
	// A Trace forces the serial path so trace lines keep covering order.
	o = base
	o.Parallelism = 8
	o.Cover.Trace = &cover.Trace{}
	if got := o.poolSize(100); got != 1 {
		t.Errorf("poolSize with Trace = %d, want 1", got)
	}
}

// TestParallelSpeedup asserts real wall-clock gain from the pool. It
// needs hardware parallelism, so it is skipped on small hosts (CI
// containers pinned to one core cannot speed anything up).
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("host has %d CPUs; need >= 4 for a meaningful speedup measurement", runtime.NumCPU())
	}
	f, _ := bench.MultiBlock(1, 32, 16)
	m := isdl.ExampleArchFull(4)
	fastest := func(par int) time.Duration {
		opts := DefaultOptions()
		opts.Parallelism = par
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := Compile(f, m, opts); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	serial, par4 := fastest(1), fastest(4)
	speedup := float64(serial) / float64(par4)
	t.Logf("serial %v, 4 workers %v: %.2fx", serial, par4, speedup)
	if speedup < 1.5 {
		t.Errorf("speedup %.2fx at 4 workers, want >= 1.5x", speedup)
	}
}
