package aviv

import (
	"fmt"
	"strings"
	"testing"

	"aviv/internal/baseline"
	"aviv/internal/dataflow"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/sim"
)

// The differential test harness: seeded random mini-C programs are
// compiled under both option presets and executed on the instruction
// simulator; the final data memory must match the internal/baseline
// reference interpreter exactly. Any disagreement is a code generation
// bug (wrong cover, bad allocation, broken layout, ...), caught without
// hand-writing expected outputs.

// dtGen is a deterministic LCG-driven mini-C program generator. Loops
// are only emitted in the canonical bounded form (fresh counter,
// strictly increasing, never touched in the body), so every generated
// program terminates.
type dtGen struct{ state uint64 }

func newDtGen(seed int64) *dtGen {
	return &dtGen{state: uint64(seed)*2654435761 + 99991}
}

func (g *dtGen) next(n int) int {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return int((g.state >> 33) % uint64(n))
}

func (g *dtGen) pick(vars []string) string { return vars[g.next(len(vars))] }

// expr generates an expression over the given variables. With bitwise
// set it draws from the full repertoire (+ - * & | ^ and small constant
// shifts); otherwise only + - * (the example architecture's ALU ops).
// Division and modulo are excluded: they trap on zero and the paper's
// machines mostly lack them.
func (g *dtGen) expr(depth int, vars []string, bitwise bool) string {
	if depth <= 0 || g.next(3) == 0 {
		if g.next(4) == 0 {
			return fmt.Sprintf("%d", g.next(19)-9)
		}
		return g.pick(vars)
	}
	l := g.expr(depth-1, vars, bitwise)
	r := g.expr(depth-1, vars, bitwise)
	ops := []string{"+", "-", "*"}
	if bitwise {
		ops = append(ops, "&", "|", "^")
		if g.next(5) == 0 {
			// Shifts only by a small constant, and only leftward on values
			// that stay modest: shift the variable, not a product.
			return fmt.Sprintf("(%s %s %d)", g.pick(vars), []string{"<<", ">>"}[g.next(2)], g.next(4))
		}
	}
	return fmt.Sprintf("(%s %s %s)", l, ops[g.next(len(ops))], r)
}

func (g *dtGen) cond(vars []string, bitwise bool) string {
	cmps := []string{"<", ">", "<=", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s",
		g.expr(1, vars, bitwise), cmps[g.next(len(cmps))], g.expr(1, vars, bitwise))
}

// stmts appends nStmts statements, registering any fresh variables in
// *vars so later statements can read them. nextVar and nextLoop number
// fresh value and loop-counter names.
func (g *dtGen) stmts(sb *strings.Builder, nStmts, depth int, vars *[]string, nextVar, nextLoop *int, bitwise bool) {
	for s := 0; s < nStmts; s++ {
		switch k := g.next(6); {
		case k <= 2 || depth <= 0: // assignment (the common case)
			var name string
			if g.next(2) == 0 && *nextVar < 8 {
				name = fmt.Sprintf("v%d", *nextVar)
				*nextVar++
			} else {
				// Loop counters (iN) may be read but never reassigned:
				// that is what guarantees every generated loop terminates.
				writable := make([]string, 0, len(*vars))
				for _, v := range *vars {
					if !strings.HasPrefix(v, "i") {
						writable = append(writable, v)
					}
				}
				name = g.pick(writable)
			}
			fmt.Fprintf(sb, "%s = %s;\n", name, g.expr(2, *vars, bitwise))
			if !contains(*vars, name) {
				*vars = append(*vars, name)
			}
		case k <= 4: // if / if-else
			fmt.Fprintf(sb, "if (%s) {\n", g.cond(*vars, bitwise))
			g.stmts(sb, 1+g.next(2), depth-1, vars, nextVar, nextLoop, bitwise)
			if g.next(2) == 0 {
				sb.WriteString("} else {\n")
				g.stmts(sb, 1+g.next(2), depth-1, vars, nextVar, nextLoop, bitwise)
			}
			sb.WriteString("}\n")
		default: // canonical bounded loop
			i := fmt.Sprintf("i%d", *nextLoop)
			*nextLoop++
			fmt.Fprintf(sb, "for (%s = 0; %s < %d; %s = %s + 1) {\n", i, i, 2+g.next(3), i, i)
			save := append([]string(nil), *vars...)
			withCounter := append(save, i)
			g.stmts(sb, 1+g.next(2), 0, &withCounter, nextVar, nextLoop, bitwise)
			sb.WriteString("}\n")
			// The body runs at least twice (bound >= 2), so variables it
			// assigns are defined afterwards — and so is the counter.
			*vars = withCounter
		}
	}
}

func contains(vars []string, name string) bool {
	for _, v := range vars {
		if v == name {
			return true
		}
	}
	return false
}

// genProgram returns a random program and its initial memory.
func genProgram(seed int64, bitwise bool) (string, map[string]int64) {
	g := newDtGen(seed)
	vars := []string{"a", "b", "c", "d"}
	mem := map[string]int64{"a": 11, "b": -7, "c": 5, "d": 3}
	var sb strings.Builder
	nextVar, nextLoop := 0, 0
	g.stmts(&sb, 3+g.next(4), 2, &vars, &nextVar, &nextLoop, bitwise)
	return sb.String(), mem
}

// diffOne compiles src under opts, simulates, and compares every
// non-spill memory cell against the baseline interpreter.
func diffOne(t *testing.T, src string, m *isdl.Machine, mem map[string]int64, opts Options, label string) {
	t.Helper()
	f, err := ParseAndLower(src, 1)
	if err != nil {
		t.Fatalf("%s: front end rejected generated program: %v\n%s", label, err, src)
	}
	ref := make(map[string]int64, len(mem))
	for k, v := range mem {
		ref[k] = v
	}
	want, err := baseline.Interpret(f, ref, 0)
	if err != nil {
		t.Fatalf("%s: reference interpreter: %v\n%s", label, err, src)
	}
	opts.Verify = true // every difftest compile also runs the static verifier
	res, err := CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("%s: compile: %v\n%s", label, err, src)
	}
	simMem := make(map[string]int64, len(mem))
	for k, v := range mem {
		simMem[k] = v
	}
	got, _, err := sim.RunProgram(res.Program, simMem, 0)
	if err != nil {
		t.Fatalf("%s: simulate: %v\nsource:\n%s\nprogram:\n%s", label, err, src, res.Program)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: mem[%s] = %d, interpreter says %d\nsource:\n%s\nprogram:\n%s",
				label, k, got[k], v, src, res.Program)
		}
	}
	for k, v := range got {
		if strings.HasPrefix(k, "$") {
			continue // spill slots are the compiler's business
		}
		if _, ok := want[k]; !ok {
			t.Errorf("%s: stray write mem[%s] = %d\nsource:\n%s", label, k, v, src)
		}
	}
}

// TestDifferentialRandomPrograms is the harness entry point: 50 seeded
// programs, each compiled with the Default and Exhaustive presets.
// Arithmetic-only programs target the paper's example VLIW; programs
// with bitwise ops and shifts target the single-issue DSP, whose unit
// has the full op repertoire.
func TestDifferentialRandomPrograms(t *testing.T) {
	vliw := isdl.ExampleArchFull(4)
	dsp := isdl.SingleIssueDSP(4)
	for seed := int64(0); seed < 50; seed++ {
		bitwise := seed%2 == 1
		src, mem := genProgram(seed, bitwise)
		m, arch := vliw, "vliw"
		if bitwise {
			m, arch = dsp, "dsp"
		}
		for _, preset := range []struct {
			name string
			opts Options
		}{
			{"default", DefaultOptions()},
			{"exhaustive", ExhaustiveOptions()},
		} {
			label := fmt.Sprintf("seed%d/%s/%s", seed, arch, preset.name)
			diffOne(t, src, m, mem, preset.opts, label)
		}
	}
}

// TestDifferentialParallelAgrees reruns a slice of the corpus through
// an 8-worker pool: the differential property must be independent of
// the pool size.
func TestDifferentialParallelAgrees(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	opts := DefaultOptions()
	opts.Parallelism = 8
	for seed := int64(0); seed < 10; seed += 2 {
		src, mem := genProgram(seed, false)
		diffOne(t, src, m, mem, opts, fmt.Sprintf("seed%d/parallel8", seed))
	}
}

// TestAnalysesMatchOraclesOnDifftestCorpus cross-checks every global
// dataflow analysis against its brute-force path-search oracle on every
// program of the differential corpus — both the raw lowered IR (where
// planted inefficiencies survive for the analyses to find) and the
// optimized IR the back end actually consumes.
func TestAnalysesMatchOraclesOnDifftestCorpus(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		src, _ := genProgram(seed, seed%2 == 1)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		raw, err := lang.Lower(prog, "main")
		if err != nil {
			t.Fatalf("seed %d: lower: %v\n%s", seed, err, src)
		}
		if err := dataflow.CheckOracles(raw); err != nil {
			t.Errorf("seed %d (lowered): %v\n%s", seed, err, src)
		}
		optimized, err := ParseAndLower(src, 1)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		if err := dataflow.CheckOracles(optimized); err != nil {
			t.Errorf("seed %d (optimized): %v\n%s", seed, err, src)
		}
	}
}
