package aviv

import (
	"strings"
	"testing"
	"testing/quick"

	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sim"
)

// checkCompiled compiles f for m, round-trips the binary object, runs the
// simulator, and compares the final memory against the reference IR
// interpreter — the full Fig. 1 validation loop.
func checkCompiled(t *testing.T, f *ir.Func, m *isdl.Machine, mem map[string]int64, opts Options) *CompileResult {
	t.Helper()
	res, err := Compile(f, m, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", f.Name, err)
	}
	for _, br := range res.Blocks {
		if err := br.Solution.Verify(); err != nil {
			t.Fatalf("block %s solution invalid: %v", br.Block.Name, err)
		}
		if err := br.Allocation.Verify(); err != nil {
			t.Fatalf("block %s allocation invalid: %v", br.Block.Name, err)
		}
	}

	// Reference semantics.
	want := make(map[string]int64, len(mem))
	for k, v := range mem {
		want[k] = v
	}
	if err := ir.EvalFunc(f, want, 0); err != nil {
		t.Fatalf("reference eval: %v", err)
	}

	// Assemble to binary and load back (assembler + loader round trip).
	obj := asm.Encode(res.Program)
	loaded, err := asm.Decode(obj, m)
	if err != nil {
		t.Fatalf("object round trip: %v", err)
	}

	got, _, err := sim.RunProgram(loaded, mem, 0)
	if err != nil {
		t.Fatalf("simulation: %v\n%s", err, res.Program)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("mem[%s] = %d after simulation, want %d\nprogram:\n%s", k, got[k], v, res.Program)
		}
	}
	// No stray writes to program variables (spill slots are fine).
	for k, v := range got {
		if strings.HasPrefix(k, "$sp") {
			continue
		}
		if wv, ok := want[k]; !ok || wv != v {
			if !ok {
				t.Errorf("unexpected write to mem[%s] = %d", k, v)
			}
		}
	}
	return res
}

func singleBlockFunc(b *ir.Block) *ir.Func {
	return &ir.Func{Name: b.Name, Blocks: []*ir.Block{b}}
}

func TestCompileFig2EndToEnd(t *testing.T) {
	bb := ir.NewBuilder("fig2")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	mem := map[string]int64{"a": 10, "b": 32, "c": 6, "d": 7}
	res := checkCompiled(t, f, isdl.ExampleArch(4), mem, DefaultOptions())
	if res.Blocks[0].Solution.Cost() != 7 {
		t.Errorf("body size = %d, want 7 (paper Table I Ex1)", res.Blocks[0].Solution.Cost())
	}
	// out = (10+32) - (6*7) = 0.
}

func TestCompileWithSpillsEndToEnd(t *testing.T) {
	bb := ir.NewBuilder("press")
	a := bb.Load("a")
	b := bb.Load("b")
	c := bb.Load("c")
	d := bb.Load("d")
	s1 := bb.Add(a, b)
	s2 := bb.Sub(c, d)
	s3 := bb.Mul(s1, s2)
	bb.Store("o", bb.Add(s3, a))
	bb.Return()
	f := singleBlockFunc(bb.Finish())

	mem := map[string]int64{"a": 3, "b": 4, "c": 9, "d": 2}
	// o = (3+4)*(9-2) + 3 = 52. Run on both register budgets.
	checkCompiled(t, f, isdl.ExampleArch(4), mem, DefaultOptions())
	checkCompiled(t, f, isdl.ExampleArch(2), mem, DefaultOptions())
}

func TestCompileLoopEndToEnd(t *testing.T) {
	// sum = 0; i = 0; while (i < n) { sum += i*i; i++ }
	entry := ir.NewBuilder("entry")
	entry.Store("sum", entry.Const(0))
	entry.Store("i", entry.Const(0))
	entry.Jump("head")

	head := ir.NewBuilder("head")
	head.Branch(head.Op(ir.OpCmpLT, head.Load("i"), head.Load("n")), "body", "exit")

	body := ir.NewBuilder("body")
	i := body.Load("i")
	body.Store("sum", body.Add(body.Load("sum"), body.Mul(i, i)))
	body.Store("i", body.Add(i, body.Const(1)))
	body.Jump("head")

	exit := ir.NewBuilder("exit")
	exit.Return()

	f := &ir.Func{Name: "sumsq", Blocks: []*ir.Block{
		entry.Finish(), head.Finish(), body.Finish(), exit.Finish(),
	}}
	// CmpLT only exists on the wide machine; extend the example arch.
	m := isdl.ExampleArch(4)
	m.Unit("U1").Ops[ir.OpCmpLT] = true
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	mem := map[string]int64{"n": 6}
	// sum = 0+1+4+9+16+25 = 55.
	res := checkCompiled(t, f, m, mem, DefaultOptions())
	if res.CodeSize() == 0 {
		t.Error("empty program")
	}
}

func TestCompileBranchTakenAndNot(t *testing.T) {
	entry := ir.NewBuilder("entry")
	x := entry.Load("x")
	entry.Branch(entry.Op(ir.OpCmpGT, x, entry.Const(10)), "big", "small")

	big := ir.NewBuilder("big")
	big.Store("r", big.Const(1))
	big.Jump("exit")

	small := ir.NewBuilder("small")
	small.Store("r", small.Const(2))
	small.Jump("exit")

	exit := ir.NewBuilder("exit")
	exit.Return()

	f := &ir.Func{Name: "cmp", Blocks: []*ir.Block{
		entry.Finish(), big.Finish(), small.Finish(), exit.Finish(),
	}}
	m := isdl.ExampleArch(4)
	m.Unit("U2").Ops[ir.OpCmpGT] = true
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	checkCompiled(t, f, m, map[string]int64{"x": 20}, DefaultOptions())
	checkCompiled(t, f, m, map[string]int64{"x": 3}, DefaultOptions())
}

func TestCompileOnAllArchitectures(t *testing.T) {
	bb := ir.NewBuilder("dsp")
	x0 := bb.Load("x0")
	c0 := bb.Load("c0")
	x1 := bb.Load("x1")
	c1 := bb.Load("c1")
	acc := bb.Add(bb.Mul(x0, c0), bb.Mul(x1, c1))
	bb.Store("acc", acc)
	bb.Return()
	blk := bb.Finish()
	mem := map[string]int64{"x0": 2, "c0": 3, "x1": 4, "c1": 5}

	machines := []*isdl.Machine{
		isdl.ExampleArch(4),
		isdl.ArchitectureII(4),
		isdl.SingleIssueDSP(8),
		isdl.WideDSP(8),
	}
	var costs []int
	for _, m := range machines {
		res := checkCompiled(t, singleBlockFunc(blk), m, mem, DefaultOptions())
		costs = append(costs, res.Blocks[0].Solution.Cost())
	}
	// The single-issue machine cannot beat the 3-unit example machine.
	if costs[2] < costs[0] {
		t.Errorf("single-issue cost %d < 3-unit cost %d", costs[2], costs[0])
	}
}

func TestCompileExhaustiveMatchesOrBeatsHeuristic(t *testing.T) {
	bb := ir.NewBuilder("e")
	a := bb.Load("a")
	b := bb.Load("b")
	bb.Store("o1", bb.Sub(bb.Add(a, b), bb.Mul(a, b)))
	bb.Return()
	f := singleBlockFunc(bb.Finish())
	m := isdl.ExampleArch(4)
	mem := map[string]int64{"a": 5, "b": 3}
	h := checkCompiled(t, f, m, mem, DefaultOptions())
	e := checkCompiled(t, f, m, mem, ExhaustiveOptions())
	if e.Blocks[0].Solution.Cost() > h.Blocks[0].Solution.Cost() {
		t.Errorf("exhaustive %d > heuristic %d",
			e.Blocks[0].Solution.Cost(), h.Blocks[0].Solution.Cost())
	}
}

func TestLoadMachineAndCompile(t *testing.T) {
	m, err := LoadMachine(isdl.ExampleArchISDL)
	if err != nil {
		t.Fatal(err)
	}
	bb := ir.NewBuilder("b")
	bb.Store("o", bb.Add(bb.Load("x"), bb.Load("y")))
	bb.Return()
	checkCompiled(t, singleBlockFunc(bb.Finish()), m, map[string]int64{"x": 1, "y": 2}, DefaultOptions())
}

// Property: random expression DAGs compile and simulate to the reference
// semantics on the example architecture, with and without heuristics.
func TestQuickCompileAgreesWithReference(t *testing.T) {
	m := isdl.ExampleArch(4)
	m2 := isdl.ExampleArch(2)
	prop := func(seed int64) bool {
		blk := randomBlock(seed, 8)
		f := singleBlockFunc(blk)
		mem := map[string]int64{"a": seed % 97, "b": (seed >> 3) % 89, "c": (seed >> 7) % 83}

		for _, machine := range []*isdl.Machine{m, m2} {
			res, err := Compile(f, machine, DefaultOptions())
			if err != nil {
				return false
			}
			want := map[string]int64{}
			for k, v := range mem {
				want[k] = v
			}
			if err := ir.EvalFunc(f, want, 0); err != nil {
				return false
			}
			got, _, err := sim.RunProgram(res.Program, mem, 0)
			if err != nil {
				return false
			}
			for k, v := range want {
				if got[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// randomBlock builds a deterministic pseudo-random block over ADD/SUB/MUL
// (the example machine's repertoire).
func randomBlock(seed int64, nOps int) *ir.Block {
	bb := ir.NewBuilder("rand")
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	avail := []*ir.Node{bb.Load("a"), bb.Load("b"), bb.Load("c"), bb.Const(int64(next(50)))}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul}
	for i := 0; i < nOps; i++ {
		op := ops[next(len(ops))]
		x := avail[next(len(avail))]
		y := avail[next(len(avail))]
		avail = append(avail, bb.Op(op, x, y))
	}
	bb.Store("out", avail[len(avail)-1])
	if next(2) == 0 && len(avail) > 5 {
		bb.Store("out2", avail[len(avail)-2])
	}
	bb.Return()
	return bb.Finish()
}

// TestCompilePrunesCrossBlockDeadStores: a store whose variable is
// overwritten on every successor path before any read is pruned by the
// covering (via the global liveness hand-off in Options.Cover.LiveOut),
// the pruned program still simulates to the reference final memory, and
// the independent liveness/prune cross-checks in internal/verify accept
// the result.
func TestCompilePrunesCrossBlockDeadStores(t *testing.T) {
	m, err := isdl.Parse(isdl.ExampleArchISDL)
	if err != nil {
		t.Fatal(err)
	}
	e := ir.NewBlock("entry")
	e.NewStore("t", e.NewNode(ir.OpAdd, e.NewLoad("a"), e.NewLoad("b")))
	e.NewStore("out", e.NewConst(1))
	e.Term = ir.TermBranch
	e.Cond = e.NewLoad("c")
	e.Succs = []string{"left", "right"}
	l := ir.NewBlock("left")
	l.NewStore("t", l.NewConst(0))
	l.Term = ir.TermReturn
	r := ir.NewBlock("right")
	r.NewStore("t", r.NewConst(9))
	r.Term = ir.TermReturn
	f := &ir.Func{Name: "prune", Blocks: []*ir.Block{e, l, r}}

	opts := DefaultOptions()
	opts.Verify = true
	for _, c := range []int64{0, 1} {
		res := checkCompiled(t, f, m, map[string]int64{"a": 2, "b": 3, "c": c}, opts)
		if got := res.Metrics.TotalPrunedStores(); got != 1 {
			t.Errorf("c=%d: %d stores pruned, want 1 (the cross-block-dead store of t)", c, got)
		}
		// The entry solution must not contain the pruned store.
		for _, n := range res.Blocks[0].Solution.Block.Nodes {
			if n.Op == ir.OpStore && n.Var == "t" {
				t.Errorf("c=%d: pruned store of t still in covered block", c)
			}
		}
	}
}
