package aviv

import (
	"reflect"
	"testing"

	"aviv/internal/asm"
	"aviv/internal/bench"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sim"
)

// Regression test for the block-layout/codec interaction: LayoutProgram
// rewrites jumps-to-next as implicit fallthroughs, leaving blocks with
// Branch{Kind: BranchNone, Target: ...}. That shape must survive both
// serializations — the binary object format (Encode/Decode) and the
// assembly text (String/ParseProgram) — structurally intact, and the
// decoded programs must simulate identically to the original.
func TestLayoutFallthroughRoundTrip(t *testing.T) {
	type tc struct {
		name string
		f    *ir.Func
		mem  map[string]int64
		m    *isdl.Machine
	}
	multiF, multiMem := bench.MultiBlock(7, 10, 6)
	cases := []tc{
		{"multiblock-vliw", multiF, multiMem, isdl.ExampleArchFull(4)},
		{"multiblock-dsp", multiF, multiMem, isdl.SingleIssueDSP(4)},
	}
	// A diamond CFG: the join block is a fallthrough candidate for one arm.
	entry := ir.NewBuilder("entry")
	entry.Branch(entry.Op(ir.OpCmpGT, entry.Load("a"), entry.Load("b")), "big", "small")
	big := ir.NewBuilder("big")
	big.Store("m", big.Load("a"))
	big.Jump("join")
	small := ir.NewBuilder("small")
	small.Store("m", small.Load("b"))
	small.Jump("join")
	join := ir.NewBuilder("join")
	join.Store("out", join.Op(ir.OpMul, join.Load("m"), join.Load("m")))
	join.Return()
	diamond := &ir.Func{Name: "diamond", Blocks: []*ir.Block{
		entry.Finish(), big.Finish(), small.Finish(), join.Finish(),
	}}
	cases = append(cases, tc{"diamond", diamond, map[string]int64{"a": 3, "b": 9}, isdl.ExampleArchFull(4)})

	for _, c := range cases {
		for _, preset := range []struct {
			name string
			opts Options
		}{
			{"default", DefaultOptions()},
			{"exhaustive", ExhaustiveOptions()},
		} {
			res, err := Compile(c.f, c.m, preset.opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, preset.name, err)
			}
			// The layout must actually have produced fallthroughs with a
			// recorded target, or this test exercises nothing.
			falls := 0
			for _, b := range res.Program.Blocks[:len(res.Program.Blocks)-1] {
				if b.Branch.Kind == asm.BranchNone && b.Branch.Target != "" {
					falls++
				}
			}
			if falls == 0 {
				t.Fatalf("%s/%s: layout produced no fallthrough blocks", c.name, preset.name)
			}

			// Binary round trip: structurally identical blocks.
			dec, err := asm.Decode(asm.Encode(res.Program), c.m)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", c.name, preset.name, err)
			}
			if !reflect.DeepEqual(res.Program.Blocks, dec.Blocks) {
				t.Errorf("%s/%s: binary round trip changed the program\nbefore:\n%s\nafter:\n%s",
					c.name, preset.name, res.Program, dec)
			}

			// Text round trip: the parsed program re-prints identically.
			parsed, err := asm.ParseProgram(res.Program.String(), c.m)
			if err != nil {
				t.Fatalf("%s/%s: reparse: %v\n%s", c.name, preset.name, err, res.Program)
			}
			if parsed.String() != res.Program.String() {
				t.Errorf("%s/%s: text round trip changed the program\nbefore:\n%s\nafter:\n%s",
					c.name, preset.name, res.Program, parsed)
			}

			// Both round-tripped programs must still compute the function.
			want := make(map[string]int64, len(c.mem))
			for k, v := range c.mem {
				want[k] = v
			}
			if err := ir.EvalFunc(c.f, want, 0); err != nil {
				t.Fatalf("%s: reference eval: %v", c.name, err)
			}
			for _, rt := range []*asm.Program{dec, parsed} {
				mem := make(map[string]int64, len(c.mem))
				for k, v := range c.mem {
					mem[k] = v
				}
				got, _, err := sim.RunProgram(rt, mem, 0)
				if err != nil {
					t.Fatalf("%s/%s: round-tripped program traps: %v", c.name, preset.name, err)
				}
				for k, v := range want {
					if got[k] != v {
						t.Errorf("%s/%s: round-tripped mem[%s] = %d, want %d", c.name, preset.name, k, got[k], v)
					}
				}
			}
		}
	}
}
