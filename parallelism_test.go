package aviv

import (
	"runtime"
	"testing"
)

// TestResolveParallelismDefaulting pins the one shared defaulting rule:
// <= 0 means GOMAXPROCS, positive values pass through. The server pool
// and the block worker pool both resolve through ResolveParallelism, so
// this is the regression test that the two cannot drift.
func TestResolveParallelismDefaulting(t *testing.T) {
	gomax := runtime.GOMAXPROCS(0)
	for _, par := range []int{0, -1, -100} {
		if got := ResolveParallelism(par); got != gomax {
			t.Errorf("ResolveParallelism(%d) = %d, want GOMAXPROCS (%d)", par, got, gomax)
		}
	}
	for _, par := range []int{1, 2, 7, 64} {
		if got := ResolveParallelism(par); got != par {
			t.Errorf("ResolveParallelism(%d) = %d, want %d", par, got, par)
		}
	}
}

// TestPoolSizeUsesSharedResolution checks poolSize composes the shared
// rule with its own clamps (block count, serial tracing).
func TestPoolSizeUsesSharedResolution(t *testing.T) {
	var opts Options

	// Defaulted parallelism clamps to the block count.
	opts.Parallelism = 0
	if got := opts.poolSize(1); got != 1 {
		t.Errorf("poolSize(1 block) = %d, want 1", got)
	}
	many := runtime.GOMAXPROCS(0) + 100
	if got := opts.poolSize(many); got != runtime.GOMAXPROCS(0) {
		t.Errorf("poolSize(%d blocks, default par) = %d, want GOMAXPROCS (%d)",
			many, got, runtime.GOMAXPROCS(0))
	}

	// Explicit parallelism clamps to the block count too.
	opts.Parallelism = 8
	if got := opts.poolSize(3); got != 3 {
		t.Errorf("poolSize(3 blocks, par 8) = %d, want 3", got)
	}

	// Zero blocks still yields a worker.
	if got := opts.poolSize(0); got != 1 {
		t.Errorf("poolSize(0 blocks) = %d, want 1", got)
	}
}
