// The whole-pipeline fuzz harness lives in the external test package so
// it can drive the delta engine (internal/delta imports aviv; an
// in-package test importing it back would be an import cycle).
package aviv_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/bench"
	"aviv/internal/dataflow"
	"aviv/internal/dataflow/diag"
	"aviv/internal/delta"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/lang"
	"aviv/internal/sim"
	"aviv/internal/verify"
	"aviv/internal/zoo"
)

// fuzzZooOnce regenerates the shipped zoo (seed 1, 27 machines — the
// same constants zoo_diff_test.go pins) once per process. It is a
// separate once from the in-package zooOnce only because this file is
// external.
var fuzzZooOnce = sync.OnceValues(func() ([]*zoo.Entry, error) {
	return zoo.Generate(1, 27)
})

// fuzzMachinePool returns the machines FuzzCompileSource targets: the
// paper's example VLIW plus one zoo machine per class (the first cycle
// of the shipped zoo), so the fuzzer explores machine diversity, not
// just program diversity. Falls back to the example machine alone if
// zoo generation ever fails — the fuzz target must not Fatal in F.
func fuzzMachinePool() []*isdl.Machine {
	pool := []*isdl.Machine{isdl.ExampleArchFull(4)}
	if entries, err := fuzzZooOnce(); err == nil {
		for _, e := range entries[:len(zoo.Classes())] {
			pool = append(pool, e.M)
		}
	}
	return pool
}

// FuzzCompileSource drives the whole pipeline from arbitrary source
// text, on a fuzzer-chosen machine from the zoo-backed pool. Invariants:
// the compiler never panics; whatever it accepts must round-trip through
// the binary object format; if the reference interpreter finishes the
// program within budget, the simulated program must finish too and leave
// the same data memory behind; and a one-line edit compiled through the
// block-level delta path must agree byte for byte with a from-scratch
// compile of the edited program.
func FuzzCompileSource(f *testing.F) {
	seeds := []string{
		"x = a + b;",
		"out = (a + b) - (c * d);",
		"if (a > b) { m = a; } else { m = b; }",
		"s = 0; for (i = 0; i < 4; i = i + 1) { s = s + a; }",
		"while (n > 0) { s = s + n; n = n - 1; }",
		// Multi-block control flow: chained conditionals.
		"if (a > 0) { x = a; } if (b > 0) { y = b; } z = x + y;",
		// An unrolled-loop shape: straight-line repetition.
		"s = 0; s = s + a * a; s = s + b * b; s = s + c * c; s = s + d * d;",
		"x = -a; y = ~b; z = x * y + 1;",
		"if (a == b) { r = 1; } else { if (a < b) { r = 2; } else { r = 3; } }",
	}
	for i, s := range seeds {
		// Spread the seed programs across the machine pool so the seed
		// corpus alone already exercises every zoo class.
		f.Add(s, uint64(i))
	}
	pool := fuzzMachinePool()
	f.Fuzz(func(t *testing.T, src string, zooPick uint64) {
		m := pool[zooPick%uint64(len(pool))]
		// The dataflow analyses and the diagnostics pass must handle
		// anything the front end accepts: no panics, solver agreeing with
		// the brute-force oracles, and a deterministic report.
		if prog, perr := lang.Parse(src); perr == nil {
			if lowered, lerr := lang.Lower(prog, "main"); lerr == nil {
				if oerr := dataflow.CheckOracles(lowered); oerr != nil {
					t.Fatalf("analysis/oracle disagreement for %q: %v", src, oerr)
				}
				rep := diag.Analyze(lowered)
				if again := diag.Analyze(lowered); again.String() != rep.String() {
					t.Fatalf("non-deterministic diagnostics for %q:\n%s\nvs\n%s", src, rep.String(), again.String())
				}
			}
		}
		opts := aviv.DefaultOptions()
		opts.Verify = true
		res, err := aviv.CompileSource(src, m, 1, opts)
		if err != nil {
			// Rejection (parse error, unsupported op, ...) is fine — but a
			// translation-validation failure means the compiler produced
			// broken code and must fail loudly, not hide in the corpus.
			var verr *verify.VerifyError
			if errors.As(err, &verr) {
				t.Fatalf("verifier rejected compiled output for %q: %v", src, verr)
			}
			return
		}
		// The binary object format must accept anything the compiler emits.
		loaded, err := asm.Decode(asm.Encode(res.Program), m)
		if err != nil {
			t.Fatalf("object round trip failed for %q: %v", src, err)
		}
		// The emitted program — and with it the liveness-driven store
		// pruning — must be byte-identical under a parallel worker pool.
		par := opts
		par.Parallelism = 8
		res8, err := aviv.CompileSource(src, m, 1, par)
		if err != nil {
			t.Fatalf("parallel compile failed after serial succeeded for %q: %v", src, err)
		}
		if res8.Program.String() != res.Program.String() {
			t.Fatalf("parallel output differs for %q:\n%s\nvs\n%s", src, res.Program, res8.Program)
		}
		// The edit dimension: mutate the source, compile the mutant
		// through a delta engine warmed on the original (so unchanged
		// blocks actually stitch), and cross-check against a from-scratch
		// compile of the mutant. Acceptance must agree, and on success the
		// outputs must be byte-identical.
		if edited := bench.MutateSource(src, int64(zooPick)); edited != src {
			eng := delta.New(0, nil)
			if _, werr := eng.CompileSource(src, m, 1, opts); werr != nil {
				t.Fatalf("delta engine rejected %q after CompileSource accepted it: %v", src, werr)
			}
			dres, derr := eng.CompileSource(edited, m, 1, opts)
			sres, serr := aviv.CompileSource(edited, m, 1, opts)
			if (derr == nil) != (serr == nil) {
				t.Fatalf("delta/scratch acceptance disagree for edit of %q: delta %v, scratch %v", src, derr, serr)
			}
			if derr == nil && dres.Program.String() != sres.Program.String() {
				t.Fatalf("delta output differs from scratch for edit of %q:\n%s\nvs\n%s",
					src, dres.Program, sres.Program)
			}
		}
		// Reference semantics with a finite budget: programs the
		// interpreter cannot finish (runaway loops) are out of scope.
		f2, err := aviv.ParseAndLower(src, 1)
		if err != nil {
			t.Fatalf("ParseAndLower failed after CompileSource succeeded for %q: %v", src, err)
		}
		want := map[string]int64{"a": 6, "b": 4, "c": 3, "d": 2, "n": 3, "x": 1, "y": 1}
		if ir.EvalFunc(f2, want, 200000) != nil {
			return
		}
		mem := map[string]int64{"a": 6, "b": 4, "c": 3, "d": 2, "n": 3, "x": 1, "y": 1}
		got, _, err := sim.RunProgram(loaded, mem, 400000)
		if err != nil {
			t.Fatalf("simulation trapped for %q: %v\n%s", src, err, res.Program)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("mem[%s] = %d, interpreter says %d for %q\n%s", k, got[k], v, src, res.Program)
			}
		}
		for k := range got {
			if !strings.HasPrefix(k, "$") {
				if _, ok := want[k]; !ok {
					t.Fatalf("stray write mem[%s] for %q", k, src)
				}
			}
		}
	})
}
