package dataflow

// BitSet is a fixed-capacity bit vector. All sets participating in one
// analysis share the same universe size, so the operations below assume
// equal lengths.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n bits.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Get reports whether bit i is set.
func (s BitSet) Get(i int) bool {
	return s[i/64]&(1<<uint(i%64)) != 0
}

// Set sets bit i.
func (s BitSet) Set(i int) {
	s[i/64] |= 1 << uint(i%64)
}

// Clear clears bit i.
func (s BitSet) Clear(i int) {
	s[i/64] &^= 1 << uint(i%64)
}

// Copy returns an independent copy of s.
func (s BitSet) Copy() BitSet {
	t := make(BitSet, len(s))
	copy(t, s)
	return t
}

// Equal reports whether s and t contain the same bits.
func (s BitSet) Equal(t BitSet) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// UnionWith adds every bit of t to s and reports whether s changed.
func (s BitSet) UnionWith(t BitSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | t[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// IntersectWith removes bits of s not in t and reports whether s changed.
func (s BitSet) IntersectWith(t BitSet) bool {
	changed := false
	for i := range s {
		if n := s[i] & t[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// DiffWith removes every bit of t from s.
func (s BitSet) DiffWith(t BitSet) {
	for i := range s {
		s[i] &^= t[i]
	}
}

// FillUpTo sets bits [0, n).
func (s BitSet) FillUpTo(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// Count returns the number of set bits in the first n positions.
func (s BitSet) Count(n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if s.Get(i) {
			c++
		}
	}
	return c
}
