package dataflow

import (
	"aviv/internal/ir"
)

// PruneBlock returns a copy of b with every store that is dead under
// liveOut removed (plus any nodes that die with them), and the number
// of stores pruned. When nothing is dead it returns b unchanged. The
// clone is a pure structural copy — no folding or re-association — so
// an independent checker can recompute it exactly (verify.CheckPrune).
//
// Removing a dead store can orphan a load that only fed it, which in
// turn can expose the previous store of that variable as dead, so the
// scan iterates to a fixpoint; each round removes at least one store.
func PruneBlock(b *ir.Block, liveOut map[string]bool) (*ir.Block, int) {
	pruned := 0
	for {
		dead := DeadStores(b, liveOut)
		if len(dead) == 0 {
			return b, pruned
		}
		b = cloneBlockSkipping(b, dead)
		pruned += len(dead)
	}
}

// cloneBlockSkipping deep-copies b without the nodes at the skip
// indices, then drops anything unreachable from the new block's roots.
func cloneBlockSkipping(b *ir.Block, skip map[int]bool) *ir.Block {
	nb := ir.NewBlock(b.Name)
	newOf := make(map[*ir.Node]*ir.Node, len(b.Nodes))
	for i, n := range b.Nodes {
		if skip[i] {
			continue
		}
		args := make([]*ir.Node, 0, len(n.Args))
		ok := true
		for _, a := range n.Args {
			na, found := newOf[a]
			if !found {
				ok = false // operand was skipped; node dies with it
				break
			}
			args = append(args, na)
		}
		if !ok {
			continue
		}
		var c *ir.Node
		switch n.Op {
		case ir.OpConst:
			c = nb.NewConst(n.Const)
		case ir.OpLoad:
			c = nb.NewLoad(n.Var)
		case ir.OpStore:
			c = nb.NewStore(n.Var, args[0])
		default:
			c = nb.NewNode(n.Op, args...)
		}
		newOf[n] = c
	}
	nb.Term = b.Term
	nb.Succs = append([]string(nil), b.Succs...)
	if b.Cond != nil {
		nb.Cond = newOf[b.Cond]
	}
	nb.RemoveDead()
	return nb
}
