package dataflow

import (
	"fmt"

	"aviv/internal/ir"
)

// This file holds brute-force oracles for each analysis, deliberately
// structured as explicit path/state searches over the CFG rather than
// gen/kill fixpoints, so tests can cross-check the iterative solver
// against an independent derivation (the self-distrusting style of
// internal/verify). They are exponentially dumber and only meant for
// test-sized functions.

// OracleLiveOut reports whether v is live at the exit of block i: some
// path from i's exit reads v before storing it, or reaches function
// exit (all memory is observable at exit) without storing it. Pure
// breadth-first reachability: whether a block reads-before-write,
// writes, or is transparent for v depends only on the block itself, so
// a visited set per query is exact.
func OracleLiveOut(g *CFG, i int, v string) bool {
	if len(g.Succs[i]) == 0 {
		return varInFunc(g, v) // exit boundary: everything is observable
	}
	visited := make([]bool, len(g.F.Blocks))
	queue := append([]int(nil), g.Succs[i]...)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visited[c] {
			continue
		}
		visited[c] = true
		reads, writes := blockReadsBeforeWrite(g.F.Blocks[c], v)
		if reads {
			return true
		}
		if writes {
			continue // the path's value of v is overwritten here
		}
		if len(g.Succs[c]) == 0 {
			return true // reached exit with v unwritten
		}
		queue = append(queue, g.Succs[c]...)
	}
	return false
}

// OracleLiveIn is OracleLiveOut shifted to the block entry.
func OracleLiveIn(g *CFG, i int, v string) bool {
	reads, writes := blockReadsBeforeWrite(g.F.Blocks[i], v)
	if reads {
		return true
	}
	if writes {
		return false
	}
	return OracleLiveOut(g, i, v)
}

// blockReadsBeforeWrite scans b in execution order and reports whether
// it reads v before any store to v, and whether it stores v at all.
func blockReadsBeforeWrite(b *ir.Block, v string) (reads, writes bool) {
	live := liveNodes(b)
	for _, n := range b.Nodes {
		if n.Op == ir.OpLoad && n.Var == v && live[n] && !writes {
			return true, writes
		}
		if n.Op == ir.OpStore && n.Var == v {
			writes = true
		}
	}
	return false, writes
}

func varInFunc(g *CFG, v string) bool {
	for _, u := range g.Vars() {
		if u == v {
			return true
		}
	}
	return false
}

// OracleReachesIn reports whether definition d may reach the entry of
// block i: some path from the definition point to i's entry stores
// d.Var nowhere along the way. For the synthetic entry definition the
// path starts at function entry.
func OracleReachesIn(g *CFG, i int, d Def) bool {
	// A store in an unreachable block never executes, so it reaches
	// nothing (execution-path semantics, matching the solver's rule that
	// edges out of unreachable blocks are never taken).
	if !d.Entry() && !g.Reach[d.BlockIdx] {
		return false
	}
	// A store that is not the last store of its variable in its block
	// never escapes the block, so it reaches no block entry.
	if !d.Entry() {
		b := g.F.Blocks[d.BlockIdx]
		for j := d.NodeIdx + 1; j < len(b.Nodes); j++ {
			if b.Nodes[j].Op == ir.OpStore && b.Nodes[j].Var == d.Var {
				return false
			}
		}
	}
	// start: blocks whose *entry* the definition has reached directly.
	var queue []int
	if d.Entry() {
		if i == 0 {
			return true
		}
		if blockStores(g.F.Blocks[0], d.Var) {
			return false // killed inside the entry block... unless i==0, handled
		}
		queue = append(queue, g.Succs[0]...)
	} else {
		queue = append(queue, g.Succs[d.BlockIdx]...)
	}
	visited := make([]bool, len(g.F.Blocks))
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visited[c] {
			continue
		}
		visited[c] = true
		if c == i {
			return true
		}
		if blockStores(g.F.Blocks[c], d.Var) {
			continue
		}
		queue = append(queue, g.Succs[c]...)
	}
	return false
}

func blockStores(b *ir.Block, v string) bool {
	for _, n := range b.Nodes {
		if n.Op == ir.OpStore && n.Var == v {
			return true
		}
	}
	return false
}

// OracleAvailIn reports whether fact holds at the entry of block i on
// every path from the entry: it searches for a witness path on which
// the fact does NOT hold, over the product graph of (block, holds).
// exprVars must map fact.Expr to the variables it reads (AvailResult
// records this).
func OracleAvailIn(g *CFG, i int, fact ExprFact, exprVars map[string][]string) bool {
	gens := func(b *ir.Block) bool {
		for _, f := range blockGenFacts(b, map[string][]string{}) {
			if f == fact {
				return true
			}
		}
		return false
	}
	kills := func(b *ir.Block) bool {
		stored := storedVars(b)
		if stored[fact.Var] {
			return true
		}
		for _, v := range exprVars[fact.Expr] {
			if stored[v] {
				return true
			}
		}
		return false
	}
	type state struct {
		block int
		holds bool
	}
	// Nothing is available at function entry.
	start := state{block: 0, holds: false}
	if start.block == i && !start.holds {
		return false
	}
	visited := make(map[state]bool)
	queue := []state{start}
	visited[start] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		b := g.F.Blocks[s.block]
		after := s.holds
		if gens(b) {
			after = true
		} else if kills(b) {
			after = false
		}
		for _, c := range g.Succs[s.block] {
			ns := state{block: c, holds: after}
			if visited[ns] {
				continue
			}
			if c == i && !after {
				return false // witness: a path arriving without the fact
			}
			visited[ns] = true
			queue = append(queue, ns)
		}
	}
	return true // no witness path: the fact holds on all paths (or i is unreachable)
}

// OracleDominates reports whether block b dominates block c: every path
// from the entry to c passes through b. Checked by deleting b from the
// graph and testing whether c is still reachable. Unreachable c is
// dominated by everything (vacuously).
func OracleDominates(g *CFG, b, c int) bool {
	if b == c {
		return true
	}
	if 0 == b {
		return true // everything reachable passes the entry; unreachable is vacuous
	}
	visited := make([]bool, len(g.F.Blocks))
	queue := []int{0}
	visited[0] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == c {
			return false
		}
		for _, s := range g.Succs[x] {
			if s == b || visited[s] {
				continue
			}
			visited[s] = true
			queue = append(queue, s)
		}
	}
	return true
}

// CheckOracles runs all four analyses on f — over both the full and the
// constant-folded CFG — and cross-checks every fact against the
// corresponding brute-force oracle, returning an error describing the
// first disagreement. This is the corpus-level self-distrust hook: the
// differential test harness calls it on every generated program, so the
// iterative solver and the path-search oracles must agree everywhere,
// not just on hand-picked shapes.
func CheckOracles(f *ir.Func) error {
	for _, variant := range []struct {
		label string
		g     *CFG
	}{
		{"full", NewCFG(f)},
		{"folded", NewCFGFolded(f)},
	} {
		g := variant.g
		live := LivenessCFG(g)
		for i := range f.Blocks {
			for _, v := range live.Vars {
				if got, want := live.LiveOutOf(i, v), OracleLiveOut(g, i, v); got != want {
					return fmt.Errorf("%s: liveOut(%s, %s) = %v, oracle says %v", variant.label, f.Blocks[i].Name, v, got, want)
				}
				if got, want := live.LiveInOf(i, v), OracleLiveIn(g, i, v); got != want {
					return fmt.Errorf("%s: liveIn(%s, %s) = %v, oracle says %v", variant.label, f.Blocks[i].Name, v, got, want)
				}
			}
		}
		reach := ReachingCFG(g)
		for i := range f.Blocks {
			for j, d := range reach.Defs {
				if got, want := reach.In[i].Get(j), OracleReachesIn(g, i, d); got != want {
					return fmt.Errorf("%s: reachIn(%s, %+v) = %v, oracle says %v", variant.label, f.Blocks[i].Name, d, got, want)
				}
			}
		}
		avail := AvailableCFG(g)
		for i := range f.Blocks {
			for j, fact := range avail.Facts {
				if got, want := avail.In[i].Get(j), OracleAvailIn(g, i, fact, avail.ExprVars); got != want {
					return fmt.Errorf("%s: availIn(%s, %+v) = %v, oracle says %v", variant.label, f.Blocks[i].Name, fact, got, want)
				}
			}
		}
		dom := Dominators(g)
		for c := range f.Blocks {
			for b := range f.Blocks {
				if got, want := dom.Dominates(b, c), OracleDominates(g, b, c); got != want {
					return fmt.Errorf("%s: dominates(%s, %s) = %v, oracle says %v", variant.label, f.Blocks[b].Name, f.Blocks[c].Name, got, want)
				}
			}
		}
	}
	return nil
}
