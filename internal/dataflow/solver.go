package dataflow

// Direction selects which way facts propagate along CFG edges.
type Direction int

// Dataflow directions.
const (
	Forward  Direction = iota // facts flow entry -> exit
	Backward                  // facts flow exit -> entry
)

// Meet selects the confluence operator where paths join.
type Meet int

// Meet operators. Union is the "may" (any-path) lattice, Intersect the
// "must" (all-path) lattice.
const (
	Union Meet = iota
	Intersect
)

// Problem is a gen/kill bit-vector dataflow problem over a CFG. The
// transfer function of block b is out = Gen[b] ∪ (in − Kill[b]) (with
// in/out swapped for backward problems).
type Problem struct {
	Dir  Direction
	Meet Meet
	// Bits is the universe size; every Gen/Kill/Boundary set must have
	// this capacity.
	Bits int
	// Gen and Kill are the per-block transfer summaries, indexed like
	// CFG.F.Blocks.
	Gen, Kill []BitSet
	// Boundary is the fact set at the graph boundary: the entry block's
	// in-set for forward problems, every exit block's out-set for
	// backward ones. nil means the empty set.
	Boundary BitSet
}

// Facts is a fixpoint solution: In[b] holds at block entry, Out[b] at
// block exit, indexed like CFG.F.Blocks.
type Facts struct {
	In, Out []BitSet
}

// Solve runs the iterative worklist algorithm to the (unique) maximal
// or minimal fixpoint. Blocks are seeded and re-queued in reverse
// postorder for forward problems and in postorder for backward ones, so
// the iteration order — and therefore the work done — is deterministic;
// the fixpoint itself is order-independent.
func Solve(g *CFG, p Problem) *Facts {
	n := len(g.F.Blocks)
	f := &Facts{In: make([]BitSet, n), Out: make([]BitSet, n)}
	top := NewBitSet(p.Bits)
	if p.Meet == Intersect {
		top.FillUpTo(p.Bits)
	}
	for i := 0; i < n; i++ {
		f.In[i] = top.Copy()
		f.Out[i] = top.Copy()
	}
	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBitSet(p.Bits)
	}

	// order is the deterministic processing sequence; pos maps block to
	// its position for worklist membership checks.
	order := make([]int, 0, n)
	if p.Dir == Forward {
		order = append(order, g.RPO...)
	} else {
		for i := len(g.RPO) - 1; i >= 0; i-- {
			order = append(order, g.RPO[i])
		}
	}

	// transfer recomputes the flow for block b and reports whether its
	// outgoing fact set changed.
	transfer := func(b int) bool {
		var inputs []int
		var at, result BitSet
		if p.Dir == Forward {
			inputs = g.Preds[b]
			at = f.In[b]
			result = f.Out[b]
		} else {
			inputs = g.Succs[b]
			at = f.Out[b]
			result = f.In[b]
		}
		// Meet over the incoming edges. The boundary contributes to the
		// entry block (forward) or to exit blocks (backward); a
		// non-boundary block with no incoming edges keeps the meet
		// identity (∅ for union, ⊤ for intersect).
		isBoundary := (p.Dir == Forward && b == 0) ||
			(p.Dir == Backward && len(g.Succs[b]) == 0)
		acc := NewBitSet(p.Bits)
		if p.Meet == Intersect {
			acc.FillUpTo(p.Bits)
		}
		if isBoundary {
			if p.Meet == Union {
				acc.UnionWith(boundary)
			} else {
				acc.IntersectWith(boundary)
			}
		}
		for _, e := range inputs {
			// Forward facts are about executions, and every execution
			// starts at the entry: an edge out of an unreachable block is
			// never taken, so it must not constrain (union) or poison
			// (intersect) its reachable successor. Backward problems keep
			// all successor edges — a block's continuation is meaningful
			// whether or not the block itself is reachable.
			if p.Dir == Forward && !g.Reach[e] {
				continue
			}
			var edge BitSet
			if p.Dir == Forward {
				edge = f.Out[e]
			} else {
				edge = f.In[e]
			}
			if p.Meet == Union {
				acc.UnionWith(edge)
			} else {
				acc.IntersectWith(edge)
			}
		}
		copy(at, acc)
		// out = gen ∪ (in − kill)
		next := acc.Copy()
		next.DiffWith(p.Kill[b])
		next.UnionWith(p.Gen[b])
		if next.Equal(result) {
			return false
		}
		copy(result, next)
		return true
	}

	inQueue := make([]bool, n)
	queue := make([]int, 0, n)
	for _, b := range order {
		queue = append(queue, b)
		inQueue[b] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		if !transfer(b) {
			continue
		}
		var deps []int
		if p.Dir == Forward {
			deps = g.Succs[b]
		} else {
			deps = g.Preds[b]
		}
		for _, d := range deps {
			if !inQueue[d] {
				queue = append(queue, d)
				inQueue[d] = true
			}
		}
	}
	return f
}
