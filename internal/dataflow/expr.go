package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
)

// maxExprDepth bounds the recursion of ExprKey; deeper trees simply do
// not participate in available-expression facts.
const maxExprDepth = 12

// ExprKey canonicalizes the expression DAG rooted at n into a lexical
// key over the block's *entry* memory values: loads print as @var,
// constants as #value, operations by name with commutative operand
// order normalized. It also returns the sorted set of variables the
// expression reads. ok is false for stores, over-deep trees, and
// anything else that cannot be a value expression.
//
// Two nodes in different blocks with equal keys compute the same value
// whenever each block evaluates them over equal memory states — the
// foundation of the available-expressions analysis.
func ExprKey(n *ir.Node) (key string, vars []string, ok bool) {
	set := make(map[string]bool)
	key, ok = exprKey(n, set, 0)
	if !ok {
		return "", nil, false
	}
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return key, vars, true
}

func exprKey(n *ir.Node, vars map[string]bool, depth int) (string, bool) {
	if depth > maxExprDepth {
		return "", false
	}
	switch n.Op {
	case ir.OpConst:
		return fmt.Sprintf("#%d", n.Const), true
	case ir.OpLoad:
		vars[n.Var] = true
		return "@" + n.Var, true
	case ir.OpStore:
		return "", false
	default:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			k, ok := exprKey(a, vars, depth+1)
			if !ok {
				return "", false
			}
			parts[i] = k
		}
		if n.Op.Commutative() && len(parts) == 2 && parts[1] < parts[0] {
			parts[0], parts[1] = parts[1], parts[0]
		}
		return n.Op.String() + "(" + strings.Join(parts, ",") + ")", true
	}
}

// isComputationKey reports whether a canonical expression key contains
// at least one operation (it is not a bare load or constant). Only such
// facts are worth tracking: rewriting a constant or a copy as a memory
// load never improves the code.
func isComputationKey(key string) bool {
	return !strings.HasPrefix(key, "@") && !strings.HasPrefix(key, "#")
}
