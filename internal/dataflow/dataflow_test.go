package dataflow

import (
	"fmt"
	"testing"

	"aviv/internal/ir"
)

// buildFunc assembles a Func from a compact spec. Each block spec is
// name, a list of ops ("load v", "store v expr"...) executed in order,
// and a terminator.
type blockSpec struct {
	name  string
	body  func(b *ir.Block)
	term  ir.TermKind
	succs []string
	// condLoad names a variable whose load becomes the branch condition
	// (TermBranch only); "" branches on a constant 1.
	condLoad string
}

func buildFunc(t *testing.T, specs []blockSpec) *ir.Func {
	t.Helper()
	f := &ir.Func{Name: "test"}
	for _, s := range specs {
		b := ir.NewBlock(s.name)
		if s.body != nil {
			s.body(b)
		}
		b.Term = s.term
		b.Succs = append([]string(nil), s.succs...)
		if s.term == ir.TermBranch {
			if s.condLoad != "" {
				b.Cond = b.NewLoad(s.condLoad)
			} else {
				b.Cond = b.NewConst(1)
			}
		}
		f.Blocks = append(f.Blocks, b)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("bad test function: %v", err)
	}
	return f
}

// storeConst appends "store v <- const c".
func storeConst(b *ir.Block, v string, c int64) { b.NewStore(v, b.NewConst(c)) }

// storeExpr appends "store v <- load x + load y".
func storeExpr(b *ir.Block, v, x, y string) {
	b.NewStore(v, b.NewNode(ir.OpAdd, b.NewLoad(x), b.NewLoad(y)))
}

// testFuncs returns a menagerie of CFG shapes: straight line, diamond,
// loop, self-loop, unreachable block, multiple exits, infinite loop.
func testFuncs(t *testing.T) map[string]*ir.Func {
	return map[string]*ir.Func{
		"straight": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1); storeExpr(b, "y", "a", "b") }, term: ir.TermJump, succs: []string{"b1"}},
			{name: "b1", body: func(b *ir.Block) { b.NewStore("z", b.NewLoad("x")); storeConst(b, "x", 2) }, term: ir.TermReturn},
		}),
		"diamond": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1); storeExpr(b, "e", "a", "b") }, term: ir.TermBranch, succs: []string{"l", "r"}, condLoad: "c"},
			{name: "l", body: func(b *ir.Block) { storeConst(b, "x", 2); storeExpr(b, "e", "a", "b") }, term: ir.TermJump, succs: []string{"join"}},
			{name: "r", body: func(b *ir.Block) { b.NewStore("y", b.NewLoad("x")) }, term: ir.TermJump, succs: []string{"join"}},
			{name: "join", body: func(b *ir.Block) { b.NewStore("out", b.NewLoad("e")) }, term: ir.TermReturn},
		}),
		"loop": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "i", 0); storeConst(b, "s", 0) }, term: ir.TermJump, succs: []string{"head"}},
			{name: "head", term: ir.TermBranch, succs: []string{"body", "exit"}, condLoad: "i"},
			{name: "body", body: func(b *ir.Block) {
				b.NewStore("s", b.NewNode(ir.OpAdd, b.NewLoad("s"), b.NewLoad("i")))
				b.NewStore("i", b.NewNode(ir.OpAdd, b.NewLoad("i"), b.NewConst(1)))
			}, term: ir.TermJump, succs: []string{"head"}},
			{name: "exit", body: func(b *ir.Block) { b.NewStore("out", b.NewLoad("s")) }, term: ir.TermReturn},
		}),
		"selfloop": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1) }, term: ir.TermJump, succs: []string{"spin"}},
			{name: "spin", body: func(b *ir.Block) { storeConst(b, "t", 9) }, term: ir.TermBranch, succs: []string{"spin", "done"}, condLoad: "x"},
			{name: "done", term: ir.TermReturn},
		}),
		"unreachable": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1) }, term: ir.TermJump, succs: []string{"end"}},
			{name: "island", body: func(b *ir.Block) { storeConst(b, "x", 7); b.NewStore("y", b.NewLoad("q")) }, term: ir.TermJump, succs: []string{"end"}},
			{name: "end", body: func(b *ir.Block) { b.NewStore("out", b.NewLoad("x")) }, term: ir.TermReturn},
		}),
		"twoexits": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1); storeConst(b, "y", 2) }, term: ir.TermBranch, succs: []string{"a", "b"}, condLoad: "c"},
			{name: "a", body: func(b *ir.Block) { storeConst(b, "x", 3) }, term: ir.TermReturn},
			{name: "b", body: func(b *ir.Block) { b.NewStore("z", b.NewLoad("y")) }, term: ir.TermNone},
		}),
		"infinite": buildFunc(t, []blockSpec{
			{name: "entry", body: func(b *ir.Block) { storeConst(b, "x", 1) }, term: ir.TermJump, succs: []string{"spin"}},
			{name: "spin", body: func(b *ir.Block) { storeConst(b, "dead", 5) }, term: ir.TermJump, succs: []string{"spin"}},
		}),
	}
}

// randFunc generates a deterministic pseudo-random function: a handful
// of blocks with random load/store/op bodies and random terminators.
func randFunc(seed int64) *ir.Func {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	vars := []string{"a", "b", "c", "d", "e"}
	nBlocks := 2 + next(5)
	f := &ir.Func{Name: "rand"}
	names := make([]string, nBlocks)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
	}
	for i := 0; i < nBlocks; i++ {
		b := ir.NewBlock(names[i])
		var values []*ir.Node
		nOps := 1 + next(6)
		for j := 0; j < nOps; j++ {
			switch next(4) {
			case 0:
				values = append(values, b.NewConst(int64(next(10))))
			case 1:
				values = append(values, b.NewLoad(vars[next(len(vars))]))
			case 2:
				if len(values) >= 2 {
					x, y := values[next(len(values))], values[next(len(values))]
					ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd}
					values = append(values, b.NewNode(ops[next(len(ops))], x, y))
				} else {
					values = append(values, b.NewConst(1))
				}
			case 3:
				if len(values) > 0 {
					b.NewStore(vars[next(len(vars))], values[next(len(values))])
				} else {
					storeConst(b, vars[next(len(vars))], int64(next(5)))
				}
			}
		}
		// Terminator: weight branches and jumps; last block returns.
		switch {
		case i == nBlocks-1:
			b.Term = ir.TermReturn
		case next(3) == 0:
			b.Term = ir.TermBranch
			if len(values) > 0 && next(2) == 0 {
				b.Cond = values[next(len(values))]
				if b.Cond.Op == ir.OpStore {
					b.Cond = b.NewLoad(vars[next(len(vars))])
				}
			} else {
				b.Cond = b.NewLoad(vars[next(len(vars))])
			}
			b.Succs = []string{names[next(nBlocks)], names[next(nBlocks)]}
		default:
			b.Term = ir.TermJump
			b.Succs = []string{names[next(nBlocks)]}
		}
		f.Blocks = append(f.Blocks, b)
	}
	return f
}

// checkAllAnalyses cross-checks every analysis against its oracle on f.
func checkAllAnalyses(t *testing.T, label string, f *ir.Func, g *CFG) {
	t.Helper()
	// Liveness.
	live := LivenessCFG(g)
	for i := range f.Blocks {
		for _, v := range live.Vars {
			if got, want := live.LiveOutOf(i, v), OracleLiveOut(g, i, v); got != want {
				t.Errorf("%s: liveOut(%s, %s) = %v, oracle %v", label, f.Blocks[i].Name, v, got, want)
			}
			if got, want := live.LiveInOf(i, v), OracleLiveIn(g, i, v); got != want {
				t.Errorf("%s: liveIn(%s, %s) = %v, oracle %v", label, f.Blocks[i].Name, v, got, want)
			}
		}
	}
	// Reaching definitions.
	reach := ReachingCFG(g)
	for i := range f.Blocks {
		for j, d := range reach.Defs {
			if got, want := reach.In[i].Get(j), OracleReachesIn(g, i, d); got != want {
				t.Errorf("%s: reachIn(%s, %+v) = %v, oracle %v", label, f.Blocks[i].Name, d, got, want)
			}
		}
	}
	// Available expressions.
	avail := AvailableCFG(g)
	for i := range f.Blocks {
		for j, fact := range avail.Facts {
			if got, want := avail.In[i].Get(j), OracleAvailIn(g, i, fact, avail.ExprVars); got != want {
				t.Errorf("%s: availIn(%s, %+v) = %v, oracle %v", label, f.Blocks[i].Name, fact, got, want)
			}
		}
	}
	// Dominators.
	dom := Dominators(g)
	for c := range f.Blocks {
		for b := range f.Blocks {
			if got, want := dom.Dominates(b, c), OracleDominates(g, b, c); got != want {
				t.Errorf("%s: dominates(%s, %s) = %v, oracle %v", label, f.Blocks[b].Name, f.Blocks[c].Name, got, want)
			}
		}
	}
}

func TestAnalysesMatchOraclesOnShapes(t *testing.T) {
	for name, f := range testFuncs(t) {
		checkAllAnalyses(t, name, f, NewCFG(f))
		checkAllAnalyses(t, name+"/folded", f, NewCFGFolded(f))
	}
}

func TestAnalysesMatchOraclesOnRandomFuncs(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		f := randFunc(seed)
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: invalid func: %v", seed, err)
		}
		checkAllAnalyses(t, fmt.Sprintf("seed%d", seed), f, NewCFG(f))
	}
}

func TestLivenessExitBoundary(t *testing.T) {
	f := testFuncs(t)["straight"]
	live := Liveness(f)
	// Every variable of the function is live at the exit block's exit.
	exit := 1
	for _, v := range live.Vars {
		if !live.LiveOutOf(exit, v) {
			t.Errorf("variable %s not live at function exit", v)
		}
	}
	// x is stored in entry, read in b1: live across the edge.
	if !live.LiveOutOf(0, "x") {
		t.Error("x should be live out of entry")
	}
}

func TestDeadStoresLocalShadowing(t *testing.T) {
	b := ir.NewBlock("b")
	storeConst(b, "x", 1)
	storeConst(b, "x", 2)
	b.NewStore("y", b.NewLoad("x"))
	storeConst(b, "x", 3)
	dead := DeadStores(b, nil)
	if !dead[1] {
		t.Error("first store of x should be dead (shadowed before any load)")
	}
	if dead[3] || dead[6] {
		t.Errorf("read or final stores wrongly dead: %v", dead)
	}
	if len(dead) != 1 {
		t.Errorf("dead = %v, want exactly the first store of x", dead)
	}
}

func TestDeadStoresLiveOut(t *testing.T) {
	b := ir.NewBlock("b")
	storeConst(b, "t", 5)
	storeConst(b, "out", 6)
	// t dead at exit, out live.
	dead := DeadStores(b, map[string]bool{"out": true})
	if !dead[1] {
		t.Error("store of t should be dead when t is dead out")
	}
	if dead[3] {
		t.Error("store of out must stay")
	}
}

func TestPruneBlockCascade(t *testing.T) {
	// store x; load x feeding only a store y that is dead at exit:
	// pruning store y must cascade to the store of x.
	b := ir.NewBlock("b")
	storeConst(b, "x", 1)
	b.NewStore("y", b.NewLoad("x"))
	b.Term = ir.TermReturn
	nb, pruned := PruneBlock(b, map[string]bool{})
	if pruned != 2 {
		t.Fatalf("pruned %d stores, want 2\n%s", pruned, nb)
	}
	if len(nb.Nodes) != 0 {
		t.Errorf("pruned block should be empty, got\n%s", nb)
	}
	// With y live the chain must survive untouched (same object back).
	nb2, pruned2 := PruneBlock(b, map[string]bool{"y": true})
	if pruned2 != 0 || nb2 != b {
		t.Errorf("live chain wrongly pruned (%d)", pruned2)
	}
}

func TestExprKeyCanonicalization(t *testing.T) {
	b := ir.NewBlock("b")
	ab := b.NewNode(ir.OpAdd, b.NewLoad("a"), b.NewLoad("b"))
	ba := b.NewNode(ir.OpAdd, b.NewLoad("b"), b.NewLoad("a"))
	ka, _, ok := ExprKey(ab)
	if !ok {
		t.Fatal("ExprKey failed")
	}
	kb, _, _ := ExprKey(ba)
	if ka != kb {
		t.Errorf("commutative keys differ: %q vs %q", ka, kb)
	}
	sub := b.NewNode(ir.OpSub, b.NewLoad("a"), b.NewLoad("b"))
	sub2 := b.NewNode(ir.OpSub, b.NewLoad("b"), b.NewLoad("a"))
	ks, _, _ := ExprKey(sub)
	ks2, _, _ := ExprKey(sub2)
	if ks == ks2 {
		t.Error("non-commutative operand order must be preserved")
	}
	st := b.NewStore("x", ab)
	if _, _, ok := ExprKey(st); ok {
		t.Error("stores must not form expression keys")
	}
}

func TestCFGFoldedDropsConstEdges(t *testing.T) {
	f := buildFunc(t, []blockSpec{
		{name: "entry", term: ir.TermBranch, succs: []string{"taken", "skipped"}},
		{name: "taken", term: ir.TermReturn},
		{name: "skipped", term: ir.TermReturn},
	})
	full := NewCFG(f)
	if len(full.Succs[0]) != 2 {
		t.Fatalf("full CFG entry succs = %d, want 2", len(full.Succs[0]))
	}
	folded := NewCFGFolded(f)
	if len(folded.Succs[0]) != 1 || folded.Succs[0][0] != 1 {
		t.Fatalf("folded CFG should keep only the taken edge, got %v", folded.Succs[0])
	}
	if folded.Reach[2] {
		t.Error("skipped arm should be unreachable in the folded CFG")
	}
}
