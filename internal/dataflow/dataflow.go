// Package dataflow is a classic iterative bit-vector dataflow framework
// in the Kildall tradition over the ir.Func control-flow graph: a
// generic worklist solver (forward/backward direction, union/intersect
// meet, gen/kill transfer functions, deterministic reverse-postorder
// iteration) plus four concrete analyses — liveness of memory slots,
// reaching definitions, available expressions, and dominators.
//
// The paper's own lifetime analysis is explicitly pessimistic (the
// peephole pass exists to clean up after it, Sec. IV-G); this package
// computes the precise global facts once, for three clients: the
// machine-independent optimizer (global dead-store elimination and
// cross-block CSE in internal/opt), the covering (per-block live-out
// sets shrink register pressure and spill traffic, cover.Options.LiveOut),
// and the user-facing diagnostics pass (internal/dataflow/diag,
// avivcc -analyze).
//
// Cross-block values in this IR travel only through named memory
// locations — register values never outlive a block — so every fact
// universe is over memory variables (or expressions over their entry
// values), never registers. Within a block, ir.Block.Nodes order is
// execution order (ir.EvalBlock), which makes the per-block gen/kill
// summaries simple forward or backward scans.
//
// Every analysis has an independent brute-force oracle (oracle.go) used
// by the tests, in the same self-distrusting style as internal/verify.
package dataflow

import (
	"sort"

	"aviv/internal/ir"
)

// CFG is the control-flow graph of a function in index form: block
// indices into F.Blocks, predecessor/successor adjacency, and a
// deterministic reverse-postorder over the reachable blocks.
type CFG struct {
	F     *ir.Func
	Index map[string]int // block name -> index in F.Blocks

	Succs [][]int
	Preds [][]int

	// RPO is a reverse postorder of the reachable blocks (entry first),
	// followed by the unreachable blocks in source order so every block
	// still gets a deterministic position.
	RPO []int
	// Reach marks blocks reachable from the entry along Succs edges.
	Reach []bool
}

// NewCFG builds the CFG of f. Every successor edge of every terminator
// is included (a branch contributes both arms, even on a constant
// condition) — the sound choice for facts that feed code generation.
func NewCFG(f *ir.Func) *CFG { return newCFG(f, false) }

// NewCFGFolded builds the CFG of f with constant branch conditions
// folded: a branch on a constant contributes only its taken arm. The
// diagnostics pass uses this sharper graph so defects guarded by
// never-taken branches (e.g. code after `while (1)`) are reported; code
// generation keeps the full graph of NewCFG.
func NewCFGFolded(f *ir.Func) *CFG { return newCFG(f, true) }

func newCFG(f *ir.Func, foldConst bool) *CFG {
	g := &CFG{
		F:     f,
		Index: make(map[string]int, len(f.Blocks)),
		Succs: make([][]int, len(f.Blocks)),
		Preds: make([][]int, len(f.Blocks)),
		Reach: make([]bool, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		g.Index[b.Name] = i
	}
	for i, b := range f.Blocks {
		succs := b.Succs
		if foldConst && b.Term == ir.TermBranch && b.Cond != nil && b.Cond.Op == ir.OpConst {
			if b.Cond.Const != 0 {
				succs = b.Succs[:1]
			} else {
				succs = b.Succs[1:2]
			}
		}
		for _, name := range succs {
			j, ok := g.Index[name]
			if !ok {
				continue // f.Verify rejects this; stay total anyway
			}
			g.Succs[i] = append(g.Succs[i], j)
			g.Preds[j] = append(g.Preds[j], i)
		}
	}
	if len(f.Blocks) > 0 {
		g.buildRPO()
	}
	return g
}

// buildRPO runs an iterative depth-first search from the entry,
// visiting successors in edge order, and records the reverse postorder.
func (g *CFG) buildRPO() {
	type frame struct {
		block int
		next  int // next successor edge to follow
	}
	var post []int
	stack := []frame{{block: 0}}
	g.Reach[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.Succs[top.block]) {
			s := g.Succs[top.block][top.next]
			top.next++
			if !g.Reach[s] {
				g.Reach[s] = true
				stack = append(stack, frame{block: s})
			}
			continue
		}
		post = append(post, top.block)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, 0, len(g.F.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		g.RPO = append(g.RPO, post[i])
	}
	for i := range g.F.Blocks {
		if !g.Reach[i] {
			g.RPO = append(g.RPO, i)
		}
	}
}

// IsExit reports whether block i leaves the function: a return, or a
// fallthrough off the end (no successors).
func (g *CFG) IsExit(i int) bool { return len(g.Succs[i]) == 0 }

// Vars returns the sorted universe of memory locations the function
// reads or writes.
func (g *CFG) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, b := range g.F.Blocks {
		for _, v := range b.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// liveNodes marks the nodes of b reachable from its roots (stores and
// the branch condition). Blocks produced by ir.Builder contain no dead
// nodes, but hand-built blocks may; analyses ignore dead loads so a
// stray unreferenced load does not manufacture liveness.
func liveNodes(b *ir.Block) map[*ir.Node]bool {
	live := make(map[*ir.Node]bool, len(b.Nodes))
	var mark func(*ir.Node)
	mark = func(n *ir.Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, a := range n.Args {
			mark(a)
		}
	}
	for _, r := range b.Roots() {
		mark(r)
	}
	return live
}
