package dataflow

import (
	"aviv/internal/ir"
)

// LivenessResult holds the per-block live-variable sets. A memory
// variable is live at a program point when some execution path from
// that point reads it before overwriting it — or reaches the end of the
// function, because final data memory is the observable output of a
// compiled program (the difftest harness compares every cell against
// the reference interpreter), so *every* variable is live at exit.
type LivenessResult struct {
	G    *CFG
	Vars []string // sorted fact universe
	// In and Out are live-in/live-out per block, bits indexed by Vars.
	In, Out []BitSet

	varIndex map[string]int
}

// Liveness computes global liveness of memory variables for f over the
// full (unfolded) CFG.
func Liveness(f *ir.Func) *LivenessResult { return LivenessCFG(NewCFG(f)) }

// LivenessCFG computes liveness over a prebuilt CFG.
func LivenessCFG(g *CFG) *LivenessResult {
	vars := g.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	n := len(g.F.Blocks)
	p := Problem{
		Dir:  Backward,
		Meet: Union,
		Bits: len(vars),
		Gen:  make([]BitSet, n),
		Kill: make([]BitSet, n),
	}
	for i, b := range g.F.Blocks {
		use, def := blockUseDef(b, idx)
		p.Gen[i] = use
		p.Kill[i] = def
	}
	// Function exit observes all of memory.
	boundary := NewBitSet(len(vars))
	boundary.FillUpTo(len(vars))
	p.Boundary = boundary
	facts := Solve(g, p)
	return &LivenessResult{G: g, Vars: vars, In: facts.In, Out: facts.Out, varIndex: idx}
}

// blockUseDef scans the block in execution order and returns its
// upward-exposed uses (variables read before any store in the block)
// and its definitions (variables stored). Loads not reachable from a
// root are dead code and do not count as uses.
func blockUseDef(b *ir.Block, idx map[string]int) (use, def BitSet) {
	use = NewBitSet(len(idx))
	def = NewBitSet(len(idx))
	live := liveNodes(b)
	for _, n := range b.Nodes {
		switch n.Op {
		case ir.OpLoad:
			if live[n] && !def.Get(idx[n.Var]) {
				use.Set(idx[n.Var])
			}
		case ir.OpStore:
			def.Set(idx[n.Var])
		}
	}
	return use, def
}

// LiveOutOf reports whether v is live at the exit of block i.
func (r *LivenessResult) LiveOutOf(i int, v string) bool {
	j, ok := r.varIndex[v]
	if !ok {
		return false
	}
	return r.Out[i].Get(j)
}

// LiveInOf reports whether v is live at the entry of block i.
func (r *LivenessResult) LiveInOf(i int, v string) bool {
	j, ok := r.varIndex[v]
	if !ok {
		return false
	}
	return r.In[i].Get(j)
}

// OutSets materializes the live-out sets as one map per block, indexed
// like F.Blocks — the form cover.Options.LiveOut consumes.
func (r *LivenessResult) OutSets() []map[string]bool {
	out := make([]map[string]bool, len(r.Out))
	for i, s := range r.Out {
		m := make(map[string]bool, len(r.Vars))
		for j, v := range r.Vars {
			if s.Get(j) {
				m[v] = true
			}
		}
		out[i] = m
	}
	return out
}

// DeadStores returns the indices into b.Nodes of stores that are dead
// given the block's live-out set: on every path from the store, the
// variable is overwritten before being read and before function exit.
// The scan walks execution order backward, so a store shadowed by a
// later store in the same block is found without any CFG work, and
// cascades (several dead stores to one variable) fall out naturally.
//
// liveOut == nil means every variable is live at exit (the pessimistic
// assumption), under which only locally-shadowed stores are dead.
func DeadStores(b *ir.Block, liveOut map[string]bool) map[int]bool {
	dead := make(map[int]bool)
	live := make(map[string]bool, len(liveOut))
	if liveOut == nil {
		for _, v := range b.Vars() {
			live[v] = true
		}
	} else {
		for v, ok := range liveOut {
			if ok {
				live[v] = true
			}
		}
	}
	reach := liveNodes(b)
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		n := b.Nodes[i]
		switch n.Op {
		case ir.OpStore:
			if !live[n.Var] {
				dead[i] = true
			} else {
				live[n.Var] = false
			}
		case ir.OpLoad:
			if reach[n] {
				live[n.Var] = true
			}
		}
	}
	return dead
}
