// Package diag derives whole-program diagnostics from the global
// dataflow analyses (package dataflow): reads of possibly uninitialized
// memory, stores whose value is dead across block boundaries, stores no
// load or function exit ever observes, and unreachable blocks. The pass
// runs on the unoptimized lowered IR over the constant-folded CFG
// (dataflow.NewCFGFolded), so a `while(1)` loop or a constant branch
// contributes only the edges an execution can actually take — the
// precision that separates "dead because overwritten" from "dead
// because nobody ever looks".
//
// Diagnostics are deterministic: one Analyze call on the same function
// always yields the same report, ordered by (block, node, class).
package diag

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/dataflow"
	"aviv/internal/ir"
	"aviv/internal/metrics"
)

// Diagnostic classes.
const (
	ClassUseBeforeInit    = "use-before-init"
	ClassDeadStore        = "dead-store"
	ClassStoreUnobserved  = "store-unobserved"
	ClassUnreachableBlock = "unreachable-block"
)

// Diagnostic is one finding, anchored to a block and (when node-level)
// to a node ID within it.
type Diagnostic struct {
	Class string
	Block string
	// Node is the ID of the offending node within its block, or -1 for a
	// block-level finding.
	Node int
	// Var is the memory variable the finding concerns ("" for
	// unreachable blocks).
	Var string
	Msg string
}

func (d Diagnostic) String() string {
	if d.Node >= 0 {
		return fmt.Sprintf("%s: block %s n%d: %s", d.Class, d.Block, d.Node, d.Msg)
	}
	return fmt.Sprintf("%s: block %s: %s", d.Class, d.Block, d.Msg)
}

// Report is the outcome of one Analyze run.
type Report struct {
	Func  string
	Diags []Diagnostic
	// Metrics records per-analysis wall time and the diagnostic count.
	Metrics metrics.AnalysisMetrics
}

// String renders the report one diagnostic per line, or a single "no
// diagnostics" line — a stable format the golden-file tests pin down.
func (r *Report) String() string {
	if len(r.Diags) == 0 {
		return "no diagnostics\n"
	}
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Analyze runs the four dataflow analyses over f's folded CFG and
// derives the diagnostics.
func Analyze(f *ir.Func) *Report {
	r := &Report{Func: f.Name}
	g := dataflow.NewCFGFolded(f)

	t := metrics.StartTimer()
	live := dataflow.LivenessCFG(g)
	r.Metrics.Liveness = t.Elapsed()
	t = metrics.StartTimer()
	reach := dataflow.ReachingCFG(g)
	r.Metrics.ReachingDefs = t.Elapsed()
	t = metrics.StartTimer()
	dataflow.AvailableCFG(g) // no diagnostic client yet; timed for the -stats report
	r.Metrics.AvailableExprs = t.Elapsed()
	t = metrics.StartTimer()
	dom := dataflow.Dominators(g)
	inLoop := dom.LoopBlocks()
	r.Metrics.Dominators = t.Elapsed()

	outs := live.OutSets()
	for i, b := range f.Blocks {
		if !g.Reach[i] {
			if i != 0 {
				r.Diags = append(r.Diags, Diagnostic{
					Class: ClassUnreachableBlock, Block: b.Name, Node: -1,
					Msg: "no execution path from the entry reaches this block",
				})
			}
			continue
		}
		r.Diags = append(r.Diags, uninitReads(g, reach, i)...)
		r.Diags = append(r.Diags, deadStores(g, outs[i], i, inLoop[i])...)
	}

	sort.SliceStable(r.Diags, func(a, b int) bool {
		da, db := r.Diags[a], r.Diags[b]
		ia, ib := blockIndex(f, da.Block), blockIndex(f, db.Block)
		if ia != ib {
			return ia < ib
		}
		if da.Node != db.Node {
			return da.Node < db.Node
		}
		return da.Class < db.Class
	})
	r.Metrics.Diagnostics = len(r.Diags)
	return r
}

func blockIndex(f *ir.Func, name string) int {
	for i, b := range f.Blocks {
		if b.Name == name {
			return i
		}
	}
	return len(f.Blocks)
}

// uninitReads flags upward-exposed loads whose variable's uninitialized
// entry value may reach them — but only for variables the program also
// stores somewhere, since a variable that is only ever read is a program
// input living in data memory, not a forgotten initialization.
func uninitReads(g *dataflow.CFG, reach *dataflow.ReachingResult, i int) []Diagnostic {
	b := g.F.Blocks[i]
	observing := reachableFromRoots(b)
	var out []Diagnostic
	stored := make(map[string]bool)
	for _, n := range b.Nodes {
		switch n.Op {
		case ir.OpStore:
			stored[n.Var] = true
		case ir.OpLoad:
			if stored[n.Var] || !observing[n] {
				continue
			}
			if !reach.EntryReachesIn(i, n.Var) || !reach.HasStore(n.Var) {
				continue
			}
			msg := fmt.Sprintf("%s may be read before it is initialized (the uninitialized entry value reaches this load)", n.Var)
			if !reach.StoreReachesIn(i, n.Var) {
				msg = fmt.Sprintf("%s is read before it is initialized on every path (no store of it can execute first)", n.Var)
			}
			out = append(out, Diagnostic{
				Class: ClassUseBeforeInit, Block: b.Name, Node: n.ID, Var: n.Var, Msg: msg,
			})
		}
	}
	return out
}

// deadStores flags stores whose value global liveness proves dead,
// split into two classes: the value is overwritten before any read
// (dead-store), or no load of the variable and no function exit is even
// reachable from the store, so no value of it is ever observed
// (store-unobserved — the `while(1) { x = a; }` shape).
func deadStores(g *dataflow.CFG, liveOut map[string]bool, i int, inLoop bool) []Diagnostic {
	b := g.F.Blocks[i]
	dead := dataflow.DeadStores(b, liveOut)
	if len(dead) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(dead))
	for idx := range dead {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var out []Diagnostic
	for _, idx := range idxs {
		n := b.Nodes[idx]
		loopNote := ""
		if inLoop {
			loopNote = " (in a loop)"
		}
		if valueObservable(g, i, idx, n.Var) {
			out = append(out, Diagnostic{
				Class: ClassDeadStore, Block: b.Name, Node: n.ID, Var: n.Var,
				Msg: fmt.Sprintf("stored value of %s is overwritten before any read%s", n.Var, loopNote),
			})
		} else {
			out = append(out, Diagnostic{
				Class: ClassStoreUnobserved, Block: b.Name, Node: n.ID, Var: n.Var,
				Msg: fmt.Sprintf("no load or function exit ever observes %s from here; the store has no effect%s", n.Var, loopNote),
			})
		}
	}
	return out
}

// valueObservable reports whether, somewhere after the store at
// b.Nodes[idx], ANY value of v could be observed: a (root-reachable)
// load of v executes, or a function exit is reached (final memory is
// observable). Overwrites do not stop this search — it distinguishes "a
// later observer exists but sees a different value" (dead store) from
// "nobody ever looks at v again" (unobserved store).
func valueObservable(g *dataflow.CFG, i, idx int, v string) bool {
	b := g.F.Blocks[i]
	observing := reachableFromRoots(b)
	for j := idx + 1; j < len(b.Nodes); j++ {
		n := b.Nodes[j]
		if n.Op == ir.OpLoad && n.Var == v && observing[n] {
			return true
		}
	}
	if len(g.Succs[i]) == 0 {
		return true
	}
	visited := make([]bool, len(g.F.Blocks))
	queue := append([]int(nil), g.Succs[i]...)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visited[c] {
			continue
		}
		visited[c] = true
		cb := g.F.Blocks[c]
		obs := reachableFromRoots(cb)
		for _, n := range cb.Nodes {
			if n.Op == ir.OpLoad && n.Var == v && obs[n] {
				return true
			}
		}
		if len(g.Succs[c]) == 0 {
			return true
		}
		queue = append(queue, g.Succs[c]...)
	}
	return false
}

// reachableFromRoots marks the nodes feeding a store or the branch
// condition; loads outside this set are dead code and observe nothing.
func reachableFromRoots(b *ir.Block) map[*ir.Node]bool {
	live := make(map[*ir.Node]bool, len(b.Nodes))
	var mark func(n *ir.Node)
	mark = func(n *ir.Node) {
		if n == nil || live[n] {
			return
		}
		live[n] = true
		for _, a := range n.Args {
			mark(a)
		}
	}
	for _, r := range b.Roots() {
		mark(r)
	}
	return live
}
