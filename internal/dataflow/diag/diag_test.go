// Planted-defect self-test in the style of internal/verify's mutation
// tests: a clean function must report nothing, and each deliberately
// seeded defect must be reported with the right class, block, and
// variable — proving the diagnostics actually bite rather than just
// running.
package diag

import (
	"testing"

	"aviv/internal/ir"
)

// cleanFunc builds a function with no defects: every store is read or
// reaches the exit, every read follows a store (or is of a pure input),
// and all blocks are reachable.
func cleanFunc() *ir.Func {
	e := ir.NewBlock("entry")
	e.NewStore("x", e.NewNode(ir.OpAdd, e.NewLoad("a"), e.NewLoad("b")))
	e.Term = ir.TermBranch
	e.Cond = e.NewLoad("c")
	e.Succs = []string{"then", "join"}
	th := ir.NewBlock("then")
	th.NewStore("x", th.NewNode(ir.OpMul, th.NewLoad("x"), th.NewConst(2)))
	th.Term = ir.TermJump
	th.Succs = []string{"join"}
	j := ir.NewBlock("join")
	j.NewStore("out", j.NewLoad("x"))
	j.Term = ir.TermReturn
	return &ir.Func{Name: "clean", Blocks: []*ir.Block{e, th, j}}
}

func TestCleanFunctionReportsNothing(t *testing.T) {
	f := cleanFunc()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	rep := Analyze(f)
	if len(rep.Diags) != 0 {
		t.Errorf("clean function produced diagnostics:\n%s", rep.String())
	}
	if rep.Metrics.Diagnostics != 0 {
		t.Errorf("metrics count %d diagnostics, want 0", rep.Metrics.Diagnostics)
	}
}

func TestPlantedDefectsAreReported(t *testing.T) {
	cases := []struct {
		name  string
		plant func() *ir.Func
		class string
		block string
		vr    string
	}{
		{
			// y is read in join but only stored on the then-path.
			name: "use-before-init-may",
			plant: func() *ir.Func {
				f := cleanFunc()
				f.Block("then").NewStore("y", f.Block("then").NewConst(1))
				j := f.Block("join")
				j.NewStore("out2", j.NewLoad("y"))
				return f
			},
			class: ClassUseBeforeInit, block: "join", vr: "y",
		},
		{
			// z is read in entry and stored later: no store can run first.
			name: "use-before-init-always",
			plant: func() *ir.Func {
				f := cleanFunc()
				e := f.Blocks[0]
				// Rebuild entry with the defective load first.
				ne := ir.NewBlock("entry")
				ne.NewStore("w", ne.NewNode(ir.OpAdd, ne.NewLoad("z"), ne.NewConst(1)))
				ne.NewStore("x", ne.NewNode(ir.OpAdd, ne.NewLoad("a"), ne.NewLoad("b")))
				ne.Term = e.Term
				ne.Cond = ne.NewLoad("c")
				ne.Succs = append([]string(nil), e.Succs...)
				f.Blocks[0] = ne
				f.Block("join").NewStore("z", f.Block("join").NewConst(3))
				return f
			},
			class: ClassUseBeforeInit, block: "entry", vr: "z",
		},
		{
			// The entry store of t is overwritten in both successors
			// before any read — dead across blocks, invisible locally.
			name: "cross-block-dead-store",
			plant: func() *ir.Func {
				f := cleanFunc()
				e := f.Blocks[0]
				e.NewStore("t", e.NewNode(ir.OpSub, e.NewLoad("a"), e.NewLoad("b")))
				f.Block("then").NewStore("t", f.Block("then").NewConst(0))
				j := f.Block("join")
				j.NewStore("t", j.NewConst(1))
				j.NewStore("out3", j.NewNode(ir.OpAdd, j.NewLoad("t"), j.NewConst(5)))
				return f
			},
			class: ClassDeadStore, block: "entry", vr: "t",
		},
		{
			// A store inside an infinite loop of a variable nothing reads:
			// no load and no exit ever observes it.
			name: "store-unobserved",
			plant: func() *ir.Func {
				e := ir.NewBlock("entry")
				e.NewStore("x", e.NewConst(0))
				e.Term = ir.TermJump
				e.Succs = []string{"loop"}
				l := ir.NewBlock("loop")
				l.NewStore("u", l.NewLoad("a"))
				l.Term = ir.TermJump
				l.Succs = []string{"loop"}
				return &ir.Func{Name: "spin", Blocks: []*ir.Block{e, l}}
			},
			class: ClassStoreUnobserved, block: "loop", vr: "u",
		},
		{
			name: "unreachable-block",
			plant: func() *ir.Func {
				f := cleanFunc()
				orphan := ir.NewBlock("orphan")
				orphan.NewStore("q", orphan.NewConst(9))
				orphan.Term = ir.TermReturn
				f.Blocks = append(f.Blocks, orphan)
				return f
			},
			class: ClassUnreachableBlock, block: "orphan",
		},
		{
			// A branch on a constant makes one arm unreachable on the
			// folded CFG even though the unfolded graph has the edge.
			name: "unreachable-by-folding",
			plant: func() *ir.Func {
				f := cleanFunc()
				e := f.Blocks[0]
				ne := ir.NewBlock("entry")
				ne.NewStore("x", ne.NewNode(ir.OpAdd, ne.NewLoad("a"), ne.NewLoad("b")))
				ne.Term = ir.TermBranch
				ne.Cond = ne.NewConst(0) // always takes Succs[1] = join
				ne.Succs = append([]string(nil), e.Succs...)
				f.Blocks[0] = ne
				return f
			},
			class: ClassUnreachableBlock, block: "then",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.plant()
			if err := f.Verify(); err != nil {
				t.Fatal(err)
			}
			rep := Analyze(f)
			found := false
			for _, d := range rep.Diags {
				if d.Class == tc.class && d.Block == tc.block && (tc.vr == "" || d.Var == tc.vr) {
					found = true
				}
			}
			if !found {
				t.Errorf("planted %s in block %s (var %q) not reported; got:\n%s",
					tc.class, tc.block, tc.vr, rep.String())
			}
			// Determinism: a second run must produce the identical report.
			if again := Analyze(f); again.String() != rep.String() {
				t.Errorf("non-deterministic report:\n%s\nvs\n%s", rep.String(), again.String())
			}
		})
	}
}
