package diag

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aviv/internal/lang"
)

// TestGoldenPrograms pins the exact report for each planted-defect
// program under internal/lang/testdata/analyze — one source file per
// diagnostic class plus a clean program — against a .golden file. The
// reports must be deterministic, so any ordering or wording drift shows
// up as a diff.
func TestGoldenPrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "lang", "testdata", "analyze")
	srcs, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(srcs) == 0 {
		t.Fatalf("no golden corpus in %s (err=%v)", dir, err)
	}
	// Every diagnostic class must be exercised by some file.
	classSeen := map[string]bool{}
	for _, src := range srcs {
		name := strings.TrimSuffix(filepath.Base(src), ".c")
		t.Run(name, func(t *testing.T) {
			text, err := os.ReadFile(src)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := lang.Parse(string(text))
			if err != nil {
				t.Fatal(err)
			}
			f, err := lang.Lower(prog, "main")
			if err != nil {
				t.Fatal(err)
			}
			rep := Analyze(f)
			for _, d := range rep.Diags {
				classSeen[d.Class] = true
			}
			want, err := os.ReadFile(strings.TrimSuffix(src, ".c") + ".golden")
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.String(); got != string(want) {
				t.Errorf("report mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
			if name == "clean" && len(rep.Diags) != 0 {
				t.Errorf("clean program produced diagnostics:\n%s", rep.String())
			}
		})
	}
	for _, c := range []string{ClassUseBeforeInit, ClassDeadStore, ClassStoreUnobserved, ClassUnreachableBlock} {
		if !classSeen[c] {
			t.Errorf("diagnostic class %s not exercised by any golden program", c)
		}
	}
}
