package dataflow

// DomResult holds the dominator solution: Dom[i] is the set of blocks
// (by index) appearing on every path from the entry to block i,
// including i itself. Unreachable blocks are dominated by everything
// (the vacuous all-paths convention).
type DomResult struct {
	G   *CFG
	Dom []BitSet
}

// Dominators computes the dominator sets of f's blocks via the classic
// forward must-problem: Dom[entry] = {entry}, Dom[b] = {b} ∪ ⋂ preds.
func Dominators(g *CFG) *DomResult {
	n := len(g.F.Blocks)
	p := Problem{
		Dir:  Forward,
		Meet: Intersect,
		Bits: n,
		Gen:  make([]BitSet, n),
		Kill: make([]BitSet, n),
	}
	for i := 0; i < n; i++ {
		gen := NewBitSet(n)
		gen.Set(i)
		p.Gen[i] = gen
		p.Kill[i] = NewBitSet(n)
	}
	// The entry starts with no dominators besides itself (its gen bit).
	facts := Solve(g, p)
	return &DomResult{G: g, Dom: facts.Out}
}

// Dominates reports whether block b dominates block c.
func (r *DomResult) Dominates(b, c int) bool { return r.Dom[c].Get(b) }

// BackEdges returns the CFG edges u -> v whose target dominates their
// source — the back edges of natural loops — in deterministic
// (source-block, edge) order.
func (r *DomResult) BackEdges() [][2]int {
	var out [][2]int
	for u := range r.G.F.Blocks {
		if !r.G.Reach[u] {
			continue
		}
		for _, v := range r.G.Succs[u] {
			if r.Dominates(v, u) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// LoopBlocks returns the set of blocks inside some natural loop: for
// each back edge u -> v, the loop body is v plus every block that can
// reach u without passing through v.
func (r *DomResult) LoopBlocks() []bool {
	inLoop := make([]bool, len(r.G.F.Blocks))
	for _, e := range r.BackEdges() {
		u, v := e[0], e[1]
		inLoop[v] = true
		// Walk predecessors backward from u, stopping at the header v.
		visited := make([]bool, len(r.G.F.Blocks))
		visited[v] = true
		stack := []int{u}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[b] {
				continue
			}
			visited[b] = true
			inLoop[b] = true
			for _, p := range r.G.Preds[b] {
				stack = append(stack, p)
			}
		}
	}
	return inLoop
}
