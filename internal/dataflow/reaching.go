package dataflow

import (
	"aviv/internal/ir"
)

// Def is one definition site of a memory variable. NodeIdx is the index
// into Blocks[BlockIdx].Nodes of the store; the synthetic "uninitialized
// at function entry" definition of each variable has BlockIdx == -1 and
// NodeIdx == -1.
type Def struct {
	BlockIdx int
	NodeIdx  int
	Var      string
}

// Entry reports whether d is the synthetic entry (uninitialized)
// definition.
func (d Def) Entry() bool { return d.BlockIdx < 0 }

// ReachingResult holds the reaching-definitions solution: which
// definitions of each variable may reach each block boundary along some
// execution path with no intervening store to the variable.
type ReachingResult struct {
	G    *CFG
	Defs []Def // fact universe: entry defs first (sorted by var), then stores in block/node order
	// In and Out are the reaching sets per block, bits indexed by Defs.
	In, Out []BitSet

	defIndex map[Def]int
}

// Reaching computes reaching definitions for f over the full CFG.
func Reaching(f *ir.Func) *ReachingResult { return ReachingCFG(NewCFG(f)) }

// ReachingCFG computes reaching definitions over a prebuilt CFG.
func ReachingCFG(g *CFG) *ReachingResult {
	vars := g.Vars()
	var defs []Def
	for _, v := range vars {
		defs = append(defs, Def{BlockIdx: -1, NodeIdx: -1, Var: v})
	}
	for i, b := range g.F.Blocks {
		for j, n := range b.Nodes {
			if n.Op == ir.OpStore {
				defs = append(defs, Def{BlockIdx: i, NodeIdx: j, Var: n.Var})
			}
		}
	}
	idx := make(map[Def]int, len(defs))
	defsOf := make(map[string][]int, len(vars))
	for i, d := range defs {
		idx[d] = i
		defsOf[d.Var] = append(defsOf[d.Var], i)
	}

	n := len(g.F.Blocks)
	p := Problem{
		Dir:  Forward,
		Meet: Union,
		Bits: len(defs),
		Gen:  make([]BitSet, n),
		Kill: make([]BitSet, n),
	}
	for i, b := range g.F.Blocks {
		gen := NewBitSet(len(defs))
		kill := NewBitSet(len(defs))
		last := make(map[string]int) // var -> node index of last store
		for j, nd := range b.Nodes {
			if nd.Op == ir.OpStore {
				last[nd.Var] = j
			}
		}
		for v, j := range last {
			for _, di := range defsOf[v] {
				kill.Set(di)
			}
			gen.Set(idx[Def{BlockIdx: i, NodeIdx: j, Var: v}])
		}
		p.Gen[i] = gen
		p.Kill[i] = kill
	}
	// At function entry every variable holds its (possibly
	// uninitialized) initial memory value.
	boundary := NewBitSet(len(defs))
	for i := range vars {
		boundary.Set(i) // entry defs occupy the first len(vars) bits
	}
	p.Boundary = boundary
	facts := Solve(g, p)
	return &ReachingResult{G: g, Defs: defs, In: facts.In, Out: facts.Out, defIndex: idx}
}

// EntryReachesIn reports whether the uninitialized entry value of v may
// still reach the entry of block i.
func (r *ReachingResult) EntryReachesIn(i int, v string) bool {
	j, ok := r.defIndex[Def{BlockIdx: -1, NodeIdx: -1, Var: v}]
	if !ok {
		return false
	}
	return r.In[i].Get(j)
}

// StoreReachesIn reports whether any real store of v reaches the entry
// of block i.
func (r *ReachingResult) StoreReachesIn(i int, v string) bool {
	for j, d := range r.Defs {
		if d.Var == v && !d.Entry() && r.In[i].Get(j) {
			return true
		}
	}
	return false
}

// HasStore reports whether any block stores v.
func (r *ReachingResult) HasStore(v string) bool {
	for _, d := range r.Defs {
		if d.Var == v && !d.Entry() {
			return true
		}
	}
	return false
}
