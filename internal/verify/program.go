package verify

import (
	"sort"
	"strings"

	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// Program validates a complete compiled program against its machine
// description and, when f is non-nil, against the source IR: every block
// body via BlockCode and the block ordering/branches via Layout. Returns
// nil when the program verifies clean.
func Program(p *asm.Program, f *ir.Func) *VerifyError {
	s := &sink{}
	for _, b := range p.Blocks {
		var src *ir.Block
		if f != nil {
			src = f.Block(b.Name)
		}
		s.vs = append(s.vs, BlockCode(b, p.Machine, src)...)
	}
	s.vs = append(s.vs, Layout(p, f)...)
	return asError(s.vs)
}

// writeEvent is one register definition: issued at cycle issue, its value
// readable from cycle commit on.
type writeEvent struct {
	issue  int
	commit int
	what   string // the slot that wrote, for diagnostics
}

// regState tracks, per (bank, register), every write in block order.
type regState map[string]map[int][]writeEvent

func (rs regState) write(bank string, reg, issue, commit int, what string) {
	m := rs[bank]
	if m == nil {
		m = make(map[int][]writeEvent)
		rs[bank] = m
	}
	m[reg] = append(m[reg], writeEvent{issue: issue, commit: commit, what: what})
}

// BlockCode statically validates one emitted block body against the
// machine description, re-deriving every invariant the covering,
// register-allocation, and peephole passes are supposed to maintain:
//
//   - instruction grouping legality (unit exclusivity including MOVI
//     slots, bus widths, explicit ISDL constraints via CheckGroup),
//   - operation slots name known units able to perform their op, with
//     the op's IR arity and in-range destination/source registers,
//   - moves ride a declared single-step transfer (bank to bank, or to or
//     from some data memory) over their bus,
//   - cross-instruction def-before-use under the no-interlock timing
//     model: an operation's result commits LatencyOf cycles after issue,
//     a move's one cycle after issue, and every register read must
//     observe the value the program order intended — never an undefined
//     register, an in-flight result, or a value clobbered by an
//     overlapping definition of the same register,
//   - register-file pressure: simultaneously live values in a bank never
//     exceed its size,
//   - spill-slot loads are preceded by a committed store of the same
//     slot within the block (spill slots are block-local by
//     construction),
//   - the conditional branch reads a defined, committed condition
//     register,
//
// and, when src is non-nil, that the block's memory traffic matches the
// source DAG: it stores exactly the variables the IR stores and loads
// only variables the IR loads.
func BlockCode(b *asm.Block, m *isdl.Machine, src *ir.Block) []Violation {
	s := &sink{block: b.Name}
	regs := make(regState)
	lastRead := make(map[string]map[int]int) // bank -> reg -> latest read cycle
	spillStore := make(map[string]int)       // spill slot -> earliest commit cycle
	var loadedVars, storedVars []string

	// readReg checks one register read at cycle t against the writes
	// recorded so far (all writes are recorded up front, so reads see the
	// whole block's definition history — needed because a later-issued
	// write can commit early and clobber).
	readReg := func(t int, bank string, reg int, c Coord) {
		if lastRead[bank] == nil {
			lastRead[bank] = make(map[int]int)
		}
		if t > lastRead[bank][reg] {
			lastRead[bank][reg] = t
		}
		events := regs[bank][reg]
		// The intended definition is the most recently issued write
		// before the reading cycle (reads happen before the same cycle's
		// writes commit).
		intended := -1
		for i, w := range events {
			if w.issue < t && (intended < 0 || w.issue > events[intended].issue) {
				intended = i
			}
		}
		if intended < 0 {
			s.add("asm/undef-read", c, "reads %s.R%d, which has no prior definition in the block", bank, reg)
			return
		}
		in := events[intended]
		if in.commit > t {
			s.add("asm/latency", c,
				"reads %s.R%d at cycle %d, but %s commits at cycle %d (latency not drained)",
				bank, reg, t, in.what, in.commit)
			return
		}
		// What the hardware would actually deliver: the latest commit at
		// or before t. If that is not the intended write, the value was
		// clobbered by an overlapping definition.
		observed := intended
		for i, w := range events {
			if w.commit <= t && w.commit > events[observed].commit {
				observed = i
			}
		}
		if events[observed].commit > in.commit {
			s.add("asm/clobber", c,
				"reads %s.R%d at cycle %d expecting %s, but %s overwrites it at cycle %d",
				bank, reg, t, in.what, events[observed].what, events[observed].commit)
		}
	}

	// Pass 1: structure + record every write with its commit cycle.
	for t, in := range b.Instrs {
		var slots []isdl.SlotRef
		busUse := make(map[string]int)
		unitUsed := make(map[string]string) // unit -> slot description

		for _, op := range in.Ops {
			c := at(t, op.String())
			u := m.Unit(op.Unit)
			if u == nil {
				s.add("asm/unknown-unit", c, "no unit %s on machine %s", op.Unit, m.Name)
				continue
			}
			if prev, used := unitUsed[op.Unit]; used {
				s.add("asm/unit-conflict", c, "unit %s already issues %s in this instruction", op.Unit, prev)
			}
			unitUsed[op.Unit] = op.String()

			bank := u.Regs.Name
			size := m.BankSize(bank)
			if op.Dst < 0 || op.Dst >= size {
				s.add("asm/reg-range", c, "destination R%d outside bank %s (size %d)", op.Dst, bank, size)
			}
			for _, src := range op.Srcs {
				if !src.IsImm && (src.Reg < 0 || src.Reg >= size) {
					s.add("asm/reg-range", c, "source R%d outside bank %s (size %d)", src.Reg, bank, size)
				}
			}

			switch {
			case op.Op == ir.OpConst:
				// MOVI: occupies the unit but is not a grouping slot
				// (mirrors covering's legality model).
				if len(op.Srcs) != 1 || !op.Srcs[0].IsImm {
					s.add("asm/arity", c, "MOVI needs exactly one immediate source")
				}
				regs.write(bank, op.Dst, t, t+1, op.String())
			case op.Op.Valid() && op.Op.IsComputation():
				if got, want := len(op.Srcs), op.Op.Arity(); got != want {
					s.add("asm/arity", c, "%s has %d sources, want %d", op.Op, got, want)
				}
				if !u.Can(op.Op) {
					s.add("asm/op-unsupported", c, "unit %s cannot perform %s", op.Unit, op.Op)
				}
				slots = append(slots, isdl.SlotRef{Unit: op.Unit, Op: op.Op})
				regs.write(bank, op.Dst, t, t+u.LatencyOf(op.Op), op.String())
			default:
				s.add("asm/bad-op", c, "%s is not an executable operation slot", op.Op)
			}
		}

		for _, mv := range in.Moves {
			c := at(t, mv.String())
			busUse[mv.Bus]++
			fromMem := mv.FromUnit == ""
			toMem := mv.ToUnit == ""
			switch {
			case fromMem && toMem:
				s.add("asm/bad-move", c, "memory-to-memory move")
				continue
			case fromMem && mv.FromMem == "":
				s.add("asm/bad-move", c, "move with no source")
				continue
			case toMem && mv.ToMem == "":
				s.add("asm/bad-move", c, "move with no destination")
				continue
			}
			okBanks := true
			if !fromMem {
				if size := m.BankSize(mv.FromUnit); size == 0 {
					s.add("asm/unknown-bank", c, "no register bank %s on machine %s", mv.FromUnit, m.Name)
					okBanks = false
				} else if mv.FromReg < 0 || mv.FromReg >= size {
					s.add("asm/reg-range", c, "source R%d outside bank %s (size %d)", mv.FromReg, mv.FromUnit, size)
				}
			}
			if !toMem {
				if size := m.BankSize(mv.ToUnit); size == 0 {
					s.add("asm/unknown-bank", c, "no register bank %s on machine %s", mv.ToUnit, m.Name)
					okBanks = false
				} else if mv.ToReg < 0 || mv.ToReg >= size {
					s.add("asm/reg-range", c, "destination R%d outside bank %s (size %d)", mv.ToReg, mv.ToUnit, size)
				}
			}
			if okBanks && !moveHasTransfer(m, mv) {
				s.add("asm/transfer-path", c, "no declared transfer carries this move on bus %s", mv.Bus)
			}
			switch {
			case fromMem: // load
				if spillSlot(mv.FromMem) {
					// Checked against spill stores in pass 2.
				} else {
					loadedVars = append(loadedVars, mv.FromMem)
				}
				regs.write(mv.ToUnit, mv.ToReg, t, t+1, mv.String())
			case toMem: // store
				if spillSlot(mv.ToMem) {
					if first, ok := spillStore[mv.ToMem]; !ok || t+1 < first {
						spillStore[mv.ToMem] = t + 1
					}
				} else {
					storedVars = append(storedVars, mv.ToMem)
				}
			default: // register-to-register
				regs.write(mv.ToUnit, mv.ToReg, t, t+1, mv.String())
			}
		}

		if err := m.CheckGroup(slots, busUse); err != nil {
			s.add("asm/group", at(t, ""), "%v", err)
		}
	}

	// Pass 2: reads, double writes, spill pairing — with the complete
	// write history available.
	for t, in := range b.Instrs {
		for _, op := range in.Ops {
			if op.Op == ir.OpConst {
				continue
			}
			u := m.Unit(op.Unit)
			if u == nil {
				continue
			}
			c := at(t, op.String())
			for _, src := range op.Srcs {
				if !src.IsImm && src.Reg >= 0 && src.Reg < m.BankSize(u.Regs.Name) {
					readReg(t, u.Regs.Name, src.Reg, c)
				}
			}
		}
		for _, mv := range in.Moves {
			c := at(t, mv.String())
			if mv.FromUnit != "" {
				if size := m.BankSize(mv.FromUnit); size > 0 && mv.FromReg >= 0 && mv.FromReg < size {
					readReg(t, mv.FromUnit, mv.FromReg, c)
				}
			}
			if mv.FromUnit == "" && spillSlot(mv.FromMem) {
				if first, ok := spillStore[mv.FromMem]; !ok {
					s.add("asm/spill-pairing", c, "reloads spill slot %s, which is never stored in this block", mv.FromMem)
				} else if first > t {
					s.add("asm/spill-pairing", c,
						"reloads spill slot %s at cycle %d, but its first store commits at cycle %d", mv.FromMem, t, first)
				}
			}
		}
	}

	// Double writes: two definitions of one register committing on the
	// same cycle leave its value machine-dependent.
	for bank, byReg := range regs {
		for reg, events := range byReg {
			byCommit := make(map[int]int)
			for _, w := range events {
				byCommit[w.commit]++
			}
			for cycle, n := range byCommit {
				if n > 1 {
					s.add("asm/double-write", blockLevel(""),
						"%d definitions of %s.R%d commit on cycle %d", n, bank, reg, cycle)
				}
			}
		}
	}

	// Branch condition: read one cycle after the last body instruction.
	if b.Branch.Kind == asm.BranchCond && b.Branch.CondConst == nil {
		t := len(b.Instrs)
		c := at(t, "branch")
		size := m.BankSize(b.Branch.CondUnit)
		if size == 0 {
			s.add("asm/unknown-bank", c, "branch condition in unknown bank %s", b.Branch.CondUnit)
		} else if b.Branch.CondReg < 0 || b.Branch.CondReg >= size {
			s.add("asm/reg-range", c, "condition R%d outside bank %s (size %d)", b.Branch.CondReg, b.Branch.CondUnit, size)
		} else {
			readReg(t, b.Branch.CondUnit, b.Branch.CondReg, c)
		}
	}

	checkPressure(s, m, regs, lastRead, b)
	if src != nil {
		checkMemoryTraffic(s, src, loadedVars, storedVars)
	}
	return s.vs
}

// moveHasTransfer reports whether some single-step declared transfer
// carries the move on its bus. Emitted moves lose the memory bank
// identity (only the variable name survives), so memory endpoints match
// any declared data memory.
func moveHasTransfer(m *isdl.Machine, mv asm.Move) bool {
	for _, tr := range m.Transfers {
		if tr.Bus != mv.Bus {
			continue
		}
		if mv.FromUnit == "" { // load: memory -> bank
			if tr.From.Kind == isdl.LocMem && tr.To == isdl.UnitLoc(mv.ToUnit) {
				return true
			}
		} else if mv.ToUnit == "" { // store: bank -> memory
			if tr.From == isdl.UnitLoc(mv.FromUnit) && tr.To.Kind == isdl.LocMem {
				return true
			}
		} else if tr.From == isdl.UnitLoc(mv.FromUnit) && tr.To == isdl.UnitLoc(mv.ToUnit) {
			return true
		}
	}
	return false
}

// spillSlot mirrors the compiler-internal spill naming convention:
// compiler-temporary memory slots are "$"-prefixed and block-local.
func spillSlot(name string) bool { return strings.HasPrefix(name, "$") }

// checkPressure re-derives register liveness from the emitted code and
// checks that no bank ever holds more simultaneously live values than it
// has registers. With explicit register numbers this is implied by the
// range and clobber checks, but it is the invariant the paper leans on
// ("coloring cannot fail"), so it is recomputed independently.
func checkPressure(s *sink, m *isdl.Machine, regs regState, lastRead map[string]map[int]int, b *asm.Block) {
	horizon := len(b.Instrs) + 1
	for bank, byReg := range regs {
		size := m.BankSize(bank)
		if size == 0 {
			continue
		}
		// A register is live from its first definition's commit until its
		// last read (or last redefinition); counting per-register overlap
		// is exact here because each register holds at most one live
		// value at a time once the clobber checks pass.
		liveAt := make([]int, horizon+1)
		for reg, events := range byReg {
			lo, hi := horizon, 0
			for _, w := range events {
				if w.commit < lo {
					lo = w.commit
				}
				if w.commit > hi {
					hi = w.commit
				}
			}
			if r, ok := lastRead[bank][reg]; ok && r > hi {
				hi = r
			}
			for t := lo; t <= hi && t <= horizon; t++ {
				liveAt[t]++
			}
		}
		for t, n := range liveAt {
			if n > size {
				s.add("asm/pressure", at(t, ""),
					"bank %s holds %d live values at cycle %d, size %d", bank, n, t, size)
				break
			}
		}
	}
}

// checkMemoryTraffic compares the block's variable loads/stores with the
// source DAG: the stored-variable sets must be equal (a missing store
// drops a result; an extra store corrupts memory), and loads may only
// name variables the DAG loads.
func checkMemoryTraffic(s *sink, src *ir.Block, loaded, stored []string) {
	irLoads := make(map[string]bool)
	irStores := make(map[string]bool)
	for _, n := range src.Nodes {
		switch n.Op {
		case ir.OpLoad:
			irLoads[n.Var] = true
		case ir.OpStore:
			irStores[n.Var] = true
		}
	}
	for _, v := range uniqueSorted(loaded) {
		if !irLoads[v] {
			s.add("asm/mem-traffic", blockLevel("load "+v), "loads %s, which the source DAG never reads", v)
		}
	}
	asmStores := make(map[string]bool)
	for _, v := range uniqueSorted(stored) {
		asmStores[v] = true
		if !irStores[v] {
			s.add("asm/mem-traffic", blockLevel("store "+v), "stores %s, which the source DAG never writes", v)
		}
	}
	missing := make([]string, 0)
	for v := range irStores {
		if !asmStores[v] {
			missing = append(missing, v)
		}
	}
	sort.Strings(missing)
	for _, v := range missing {
		s.add("asm/mem-traffic", blockLevel("store "+v), "source DAG stores %s, but the emitted code never does", v)
	}
}

func uniqueSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Layout validates the program's block ordering and control transfers
// after layout: block names are unique, every branch target resolves,
// fallthroughs actually fall to the next block, and (when f is non-nil)
// the block set and per-block control flow match the source function.
func Layout(p *asm.Program, f *ir.Func) []Violation {
	s := &sink{}
	index := make(map[string]int, len(p.Blocks))
	for i, b := range p.Blocks {
		if _, dup := index[b.Name]; dup {
			s.add("asm/dup-block", Coord{Block: b.Name, Instr: -1}, "duplicate block name")
			continue
		}
		index[b.Name] = i
	}
	for i, b := range p.Blocks {
		c := Coord{Block: b.Name, Instr: -1, Slot: b.Branch.String()}
		target := func(name string) bool {
			_, ok := index[name]
			return ok
		}
		switch b.Branch.Kind {
		case asm.BranchJump:
			if !target(b.Branch.Target) {
				s.add("asm/branch-target", c, "jump to unknown block %q", b.Branch.Target)
			}
		case asm.BranchCond:
			if !target(b.Branch.Target) {
				s.add("asm/branch-target", c, "branch to unknown block %q", b.Branch.Target)
			}
			// Both arms are explicit targets of the branch instruction
			// (BNZ encodes taken and else), so neither needs adjacency.
			if !target(b.Branch.Else) {
				s.add("asm/branch-target", c, "branch else-arm to unknown block %q", b.Branch.Else)
			}
		case asm.BranchNone:
			if b.Branch.Target == "" {
				break // end of program
			}
			j, ok := index[b.Branch.Target]
			if !ok {
				s.add("asm/branch-target", c, "fallthrough to unknown block %q", b.Branch.Target)
			} else if j != i+1 {
				s.add("asm/fallthrough", c, "falls through to %s, which is block %d, not the next block", b.Branch.Target, j)
			}
		}
	}
	if f != nil {
		checkLayoutIR(s, p, f, index)
	}
	return s.vs
}

// checkLayoutIR checks the laid-out program against the source control
// flow: same block set, and each block's control transfer implements its
// IR terminator.
func checkLayoutIR(s *sink, p *asm.Program, f *ir.Func, index map[string]int) {
	for _, ib := range f.Blocks {
		if _, ok := index[ib.Name]; !ok {
			s.add("asm/layout-ir", Coord{Block: ib.Name, Instr: -1}, "source block missing from the program")
		}
	}
	for _, b := range p.Blocks {
		ib := f.Block(b.Name)
		c := Coord{Block: b.Name, Instr: -1, Slot: b.Branch.String()}
		if ib == nil {
			s.add("asm/layout-ir", c, "block does not exist in the source function")
			continue
		}
		switch ib.Term {
		case ir.TermBranch:
			if b.Branch.Kind != asm.BranchCond {
				s.add("asm/layout-ir", c, "source block branches conditionally, emitted block does not")
			} else if b.Branch.Target != ib.Succs[0] || b.Branch.Else != ib.Succs[1] {
				s.add("asm/layout-ir", c, "branch arms (%s, %s) do not match source successors (%s, %s)",
					b.Branch.Target, b.Branch.Else, ib.Succs[0], ib.Succs[1])
			}
		case ir.TermJump:
			if (b.Branch.Kind != asm.BranchJump && b.Branch.Kind != asm.BranchNone) ||
				b.Branch.Target != ib.Succs[0] {
				s.add("asm/layout-ir", c, "source block jumps to %s, emitted block transfers elsewhere", ib.Succs[0])
			}
		case ir.TermReturn:
			if b.Branch.Kind != asm.BranchHalt {
				s.add("asm/layout-ir", c, "source block returns, emitted block does not halt")
			}
		case ir.TermNone:
			if len(ib.Succs) == 1 {
				if (b.Branch.Kind != asm.BranchNone && b.Branch.Kind != asm.BranchJump) ||
					b.Branch.Target != ib.Succs[0] {
					s.add("asm/layout-ir", c, "source block falls to %s, emitted block transfers elsewhere", ib.Succs[0])
				}
			} else if b.Branch.Kind != asm.BranchHalt && b.Branch.Kind != asm.BranchNone {
				s.add("asm/layout-ir", c, "source block ends the function, emitted block transfers control")
			}
		}
	}
}
