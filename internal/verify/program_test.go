package verify

import (
	"strings"
	"testing"

	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

func TestFuncCleanIR(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	a := b.NewLoad("a")
	c := b.NewConst(2)
	sum := b.NewNode(ir.OpAdd, a, c)
	b.NewStore("out", sum)
	b.Term = ir.TermReturn
	f.Blocks = []*ir.Block{b}
	if err := Func(f); err != nil {
		t.Errorf("clean IR rejected: %v", err)
	}
}

func TestFuncBadArity(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	a := b.NewLoad("a")
	bad := b.NewNode(ir.OpAdd, a) // ADD wants 2 args
	b.NewStore("out", bad)
	b.Term = ir.TermReturn
	f.Blocks = []*ir.Block{b}
	if err := Func(f); !err.Has("ir/arity") {
		t.Errorf("want ir/arity, got %v", err)
	}
}

func TestFuncDefBeforeUse(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	a := b.NewLoad("a")
	c := b.NewLoad("b")
	sum := b.NewNode(ir.OpAdd, a, c)
	b.NewStore("out", sum)
	b.Term = ir.TermReturn
	// Corrupt the topological order: move the ADD before its operands.
	b.Nodes[0], b.Nodes[2] = b.Nodes[2], b.Nodes[0]
	f.Blocks = []*ir.Block{b}
	if err := Func(f); !err.Has("ir/def-before-use") {
		t.Errorf("want ir/def-before-use, got %v", err)
	}
}

func TestFuncCycle(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	a := b.NewLoad("a")
	x := b.NewNode(ir.OpNeg, a)
	y := b.NewNode(ir.OpNeg, x)
	x.Args[0] = y // close the cycle x -> y -> x
	b.NewStore("out", y)
	b.Term = ir.TermReturn
	f.Blocks = []*ir.Block{b}
	err := Func(f)
	if !err.Has("ir/cycle") {
		t.Errorf("want ir/cycle, got %v", err)
	}
}

func TestFuncBadTerminators(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	b.Term = ir.TermBranch // branch with no condition and no successors
	f.Blocks = []*ir.Block{b}
	if err := Func(f); !err.Has("ir/term") {
		t.Errorf("want ir/term, got %v", err)
	}

	f2 := &ir.Func{Name: "g"}
	b2 := ir.NewBlock("entry")
	b2.Term = ir.TermJump
	b2.Succs = []string{"nowhere"}
	f2.Blocks = []*ir.Block{b2}
	if err := Func(f2); !err.Has("ir/succ") {
		t.Errorf("want ir/succ, got %v", err)
	}
}

func TestFuncBadOp(t *testing.T) {
	f := &ir.Func{Name: "f"}
	b := ir.NewBlock("entry")
	n := b.NewNode(ir.Op(200))
	_ = n
	b.Term = ir.TermReturn
	f.Blocks = []*ir.Block{b}
	if err := Func(f); !err.Has("ir/bad-op") {
		t.Errorf("want ir/bad-op, got %v", err)
	}
}

// twoUnitMachine builds a small two-unit VLIW for hand-written blocks:
// U1 (ADD/SUB), U2 (MUL), crossbar bus DB of width 1, memory MEM.
func twoUnitMachine(t *testing.T) *isdl.Machine {
	t.Helper()
	m := isdl.NewMachine("two")
	m.AddUnit("U1", 4, ir.OpAdd, ir.OpSub)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return m
}

func load(bus, v, unit string, reg int) asm.Move {
	return asm.Move{Bus: bus, FromMem: v, ToUnit: unit, ToReg: reg}
}

func store(bus, unit string, reg int, v string) asm.Move {
	return asm.Move{Bus: bus, FromUnit: unit, FromReg: reg, ToMem: v}
}

// cleanBlock is a correct hand-compiled body for out = (a+b) computed on
// U1: load a, load b, add, store.
func cleanBlock() *asm.Block {
	return &asm.Block{
		Name: "entry",
		Instrs: []asm.Instr{
			{Moves: []asm.Move{load("DB", "a", "U1", 0)}},
			{Moves: []asm.Move{load("DB", "b", "U1", 1)}},
			{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpAdd, Dst: 2,
				Srcs: []asm.Operand{{Reg: 0}, {Reg: 1}}}}},
			{Moves: []asm.Move{store("DB", "U1", 2, "out")}},
		},
		Branch: asm.Branch{Kind: asm.BranchHalt},
	}
}

func TestBlockCodeClean(t *testing.T) {
	m := twoUnitMachine(t)
	if vs := BlockCode(cleanBlock(), m, nil); len(vs) != 0 {
		t.Errorf("clean block flagged: %v", vs)
	}
}

func TestBlockCodeUndefRead(t *testing.T) {
	m := twoUnitMachine(t)
	b := cleanBlock()
	b.Instrs[2].Ops[0].Srcs[1].Reg = 3 // R3 is never written
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/undef-read") {
		t.Errorf("want asm/undef-read, got %v", vs)
	}
}

func TestBlockCodeLatency(t *testing.T) {
	m := isdl.NewMachine("slow")
	u := m.AddUnit("U1", 4, ir.OpAdd, ir.OpMul)
	u.SetLatency(ir.OpMul, 3)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &asm.Block{
		Name: "entry",
		Instrs: []asm.Instr{
			{Moves: []asm.Move{load("DB", "a", "U1", 0)}},
			{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpMul, Dst: 1,
				Srcs: []asm.Operand{{Reg: 0}, {Reg: 0}}}}},
			// MUL commits at cycle 1+3=4; reading its result at cycle 2 is
			// too early on an interlock-free machine.
			{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpAdd, Dst: 2,
				Srcs: []asm.Operand{{Reg: 1}, {Reg: 0}}}}},
			{Moves: []asm.Move{store("DB", "U1", 2, "out")}},
		},
		Branch: asm.Branch{Kind: asm.BranchHalt},
	}
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/latency") {
		t.Errorf("want asm/latency, got %v", vs)
	}
}

func TestBlockCodeClobber(t *testing.T) {
	m := twoUnitMachine(t)
	b := cleanBlock()
	// A second definition of U1.R0 lands between the load of a (used by
	// the ADD at cycle 2) and its read: the ADD sees b, not a.
	b.Instrs[1].Moves[0].ToReg = 0 // the load of b now writes over R0
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/clobber") && !hasRule(vs, "asm/undef-read") {
		t.Errorf("want asm/clobber (or undef-read for R1), got %v", vs)
	}
}

func TestBlockCodeTransferPath(t *testing.T) {
	// No transfer from U2's bank to U1's bank: only U1 <-> MEM.
	m := isdl.NewMachine("island")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("MEM")
	m.AddBus("DB", 2)
	m.AddTransfer(isdl.UnitLoc("U1"), isdl.MemLoc("MEM"), "DB")
	m.AddTransfer(isdl.MemLoc("MEM"), isdl.UnitLoc("U1"), "DB")
	m.AddTransfer(isdl.MemLoc("MEM"), isdl.UnitLoc("U2"), "DB")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &asm.Block{
		Name: "entry",
		Instrs: []asm.Instr{
			{Moves: []asm.Move{load("DB", "a", "U2", 0)}},
			{Moves: []asm.Move{{Bus: "DB", FromUnit: "U2", FromReg: 0, ToUnit: "U1", ToReg: 0}}},
			{Moves: []asm.Move{store("DB", "U1", 0, "out")}},
		},
		Branch: asm.Branch{Kind: asm.BranchHalt},
	}
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/transfer-path") {
		t.Errorf("want asm/transfer-path, got %v", vs)
	}
}

func TestBlockCodeGroupBusOverflow(t *testing.T) {
	m := twoUnitMachine(t)
	b := cleanBlock()
	// Two moves on the width-1 bus in one instruction.
	b.Instrs[0].Moves = append(b.Instrs[0].Moves, load("DB", "b", "U1", 1))
	b.Instrs = append(b.Instrs[:1], b.Instrs[2:]...) // drop old load of b
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/group") {
		t.Errorf("want asm/group, got %v", vs)
	}
}

func TestBlockCodeSpillPairing(t *testing.T) {
	m := twoUnitMachine(t)
	b := cleanBlock()
	// Reload a spill slot that was never stored.
	b.Instrs[1].Moves = []asm.Move{load("DB", "$sp0", "U1", 1)}
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/spill-pairing") {
		t.Errorf("want asm/spill-pairing, got %v", vs)
	}
}

func TestBlockCodeMemTraffic(t *testing.T) {
	m := twoUnitMachine(t)
	src := ir.NewBlock("entry")
	a := src.NewLoad("a")
	bv := src.NewLoad("b")
	sum := src.NewNode(ir.OpAdd, a, bv)
	src.NewStore("out", sum)
	src.Term = ir.TermReturn

	good := cleanBlock()
	if vs := BlockCode(good, m, src); len(vs) != 0 {
		t.Errorf("clean block with source cross-check flagged: %v", vs)
	}

	// Store to the wrong variable: "out" is dropped, "oops" appears.
	bad := cleanBlock()
	bad.Instrs[3].Moves[0].ToMem = "oops"
	vs := BlockCode(bad, m, src)
	if !hasRule(vs, "asm/mem-traffic") {
		t.Errorf("want asm/mem-traffic, got %v", vs)
	}
}

func TestBlockCodeBranchCond(t *testing.T) {
	m := twoUnitMachine(t)
	b := cleanBlock()
	b.Branch = asm.Branch{Kind: asm.BranchCond, Target: "x", Else: "y",
		CondUnit: "U1", CondReg: 3} // R3 never defined
	vs := BlockCode(b, m, nil)
	if !hasRule(vs, "asm/undef-read") {
		t.Errorf("want asm/undef-read on the branch condition, got %v", vs)
	}
}

func TestLayout(t *testing.T) {
	m := twoUnitMachine(t)
	mk := func(name string, br asm.Branch) *asm.Block {
		return &asm.Block{Name: name, Branch: br}
	}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{
		mk("b0", asm.Branch{Kind: asm.BranchNone, Target: "b1"}),
		mk("b1", asm.Branch{Kind: asm.BranchJump, Target: "__nowhere"}),
	}}
	vs := Layout(p, nil)
	if !hasRule(vs, "asm/branch-target") {
		t.Errorf("want asm/branch-target, got %v", vs)
	}

	p2 := &asm.Program{Machine: m, Blocks: []*asm.Block{
		mk("b0", asm.Branch{Kind: asm.BranchNone, Target: "b2"}), // not adjacent
		mk("b1", asm.Branch{Kind: asm.BranchHalt}),
		mk("b2", asm.Branch{Kind: asm.BranchHalt}),
	}}
	vs = Layout(p2, nil)
	if !hasRule(vs, "asm/fallthrough") {
		t.Errorf("want asm/fallthrough, got %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "asm/latency", Coord: Coord{Block: "b1", Instr: 3, Slot: "U1: ADD R2, R0, R1"}, Msg: "boom"}
	s := v.String()
	for _, want := range []string{"asm/latency", "b1", "I3", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}
