package verify

import (
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// lintBase returns a minimal machine that lints clean, for the table
// entries to break in exactly one way.
func lintBase() *isdl.Machine {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	return m
}

// TestLintRuleTable drives one broken machine per lint rule through
// LintMachine and asserts the exact rule name is reported. A final
// bidirectional check pins the table against the LintRules registry, so
// a new or renamed rule without a table entry fails loudly.
func TestLintRuleTable(t *testing.T) {
	cases := []struct {
		rule  string
		build func() *isdl.Machine
	}{
		{"isdl/no-units", func() *isdl.Machine {
			return isdl.NewMachine("empty")
		}},
		{"isdl/unit-dup", func() *isdl.Machine {
			m := lintBase()
			m.AddUnit("U1", 4, ir.OpSub)
			m.ConnectAll("DB")
			return m
		}},
		{"isdl/unit-empty", func() *isdl.Machine {
			m := lintBase()
			m.AddUnit("DEAD", 4)
			m.ConnectAll("DB")
			return m
		}},
		{"isdl/unit-op", func() *isdl.Machine {
			m := lintBase()
			m.Units[0].Ops[ir.OpLoad] = true // not a functional-unit op
			return m
		}},
		{"isdl/bank-size", func() *isdl.Machine {
			m := lintBase()
			m.Units[0].Regs.Size = 0
			return m
		}},
		{"isdl/bank-mismatch", func() *isdl.Machine {
			m := lintBase()
			u2 := m.AddUnit("U2", 4, ir.OpSub)
			u2.Regs = isdl.RegFile{Name: "U1", Size: 8} // shares U1's bank, disagrees on size
			m.ConnectAll("DB")
			return m
		}},
		{"isdl/latency", func() *isdl.Machine {
			m := lintBase()
			m.Units[0].SetLatency(ir.OpMul, 2) // latency for an op the unit lacks
			return m
		}},
		{"isdl/mem-dup", func() *isdl.Machine {
			m := lintBase()
			m.AddMemory("MEM")
			return m
		}},
		{"isdl/no-memory", func() *isdl.Machine {
			m := isdl.NewMachine("m")
			m.AddUnit("U1", 4, ir.OpAdd)
			return m
		}},
		{"isdl/bus-dup", func() *isdl.Machine {
			m := lintBase()
			m.AddBus("DB", 2)
			return m
		}},
		{"isdl/bus-width", func() *isdl.Machine {
			m := lintBase()
			m.Buses[0].Width = 0
			return m
		}},
		{"isdl/bus-dead", func() *isdl.Machine {
			m := lintBase()
			m.AddBus("XB", 1) // carries no transfer
			return m
		}},
		{"isdl/transfer", func() *isdl.Machine {
			m := lintBase()
			m.AddTransfer(isdl.UnitLoc("GHOST"), isdl.UnitLoc("U1"), "DB")
			return m
		}},
		{"isdl/constraint", func() *isdl.Machine {
			m := lintBase()
			m.AddConstraint(isdl.SlotRef{Unit: "NOPE", Op: ir.OpAdd}, isdl.SlotRef{Unit: "U1", Op: ir.OpAdd})
			return m
		}},
		{"isdl/constraint-total", func() *isdl.Machine {
			m := lintBase()
			m.AddConstraint(isdl.SlotRef{Unit: "U1", Op: ir.OpAdd})
			return m
		}},
		{"isdl/pattern", func() *isdl.Machine {
			m := lintBase()
			m.Patterns = append(m.Patterns, isdl.MACPattern("GHOST"))
			return m
		}},
		{"isdl/finalize", func() *isdl.Machine {
			// Structurally clean for the lint passes (unit exists and
			// performs the result op) but Finalize's deeper pattern
			// validation rejects the malformed tree: MAC takes three
			// operands, the tree supplies two wildcards.
			m := lintBase()
			m.Units[0].Ops[ir.OpMAC] = true
			m.Patterns = append(m.Patterns, isdl.Pattern{
				Result: ir.OpMAC,
				Unit:   "U1",
				Tree:   &isdl.PatTree{Op: ir.OpAdd, Kids: []*isdl.PatTree{nil, nil}},
			})
			return m
		}},
		{"isdl/disconnected", func() *isdl.Machine {
			// A memory link would be enough to connect the banks (values
			// can hop through memory), so the stranded unit gets no
			// transfers at all.
			m := lintBase()
			m.AddUnit("U2", 4, ir.OpSub)
			return m
		}},
		{"isdl/mem-path", func() *isdl.Machine {
			m := isdl.NewMachine("m")
			m.AddUnit("U1", 4, ir.OpAdd)
			m.AddMemory("MEM")
			m.AddBus("DB", 1)
			// Load-only connection: U1 can never store (or spill).
			m.AddTransfer(isdl.MemLoc("MEM"), isdl.UnitLoc("U1"), "DB")
			return m
		}},
		{"isdl/mem-dead", func() *isdl.Machine {
			m := lintBase()
			m.AddMemory("ROM") // connected to nothing
			return m
		}},
	}

	covered := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			err := LintMachine(tc.build())
			if err == nil {
				t.Fatalf("machine built for %s lints clean", tc.rule)
			}
			if !err.Has(tc.rule) {
				t.Errorf("want %s, got %v", tc.rule, err)
			}
		})
		covered[tc.rule] = true
	}

	// Bidirectional: the table covers every registered rule, and every
	// table entry names a registered rule.
	registry := map[string]bool{}
	for _, r := range LintRules() {
		registry[r] = true
		if !covered[r] {
			t.Errorf("registered rule %s has no table entry", r)
		}
	}
	for r := range covered {
		if !registry[r] {
			t.Errorf("table rule %s is not in LintRules", r)
		}
	}

	// The base machine itself must lint clean, or every entry above is
	// testing the wrong breakage.
	if err := LintMachine(lintBase()); err != nil {
		t.Errorf("lintBase does not lint clean: %v", err)
	}
}
