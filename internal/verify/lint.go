package verify

import (
	"aviv/internal/isdl"
)

// LintRules returns the canonical list of rule identifiers LintMachine
// can emit, in a stable order. Consumers that classify lint rejections
// (the machine zoo's regenerate-on-reject, the lint table tests) check
// against this registry so a renamed or new rule cannot slip through
// unclassified.
func LintRules() []string {
	return []string{
		"isdl/no-units",
		"isdl/unit-dup",
		"isdl/unit-empty",
		"isdl/unit-op",
		"isdl/bank-size",
		"isdl/bank-mismatch",
		"isdl/latency",
		"isdl/mem-dup",
		"isdl/no-memory",
		"isdl/bus-dup",
		"isdl/bus-width",
		"isdl/bus-dead",
		"isdl/transfer",
		"isdl/constraint",
		"isdl/constraint-total",
		"isdl/pattern",
		"isdl/finalize",
		"isdl/disconnected",
		"isdl/mem-path",
		"isdl/mem-dead",
	}
}

// LintMachine statically lints an ISDL machine description. It goes
// beyond isdl.Finalize's accept/reject checks: it re-implements the
// structural rules independently (so every problem is reported, not just
// the first), and adds the covering-level invariants the code generator
// relies on but Finalize does not enforce —
//
//   - every functional unit offers at least one (computation) operation,
//   - register banks have positive sizes and units sharing a bank agree
//     on the size,
//   - latency entries name supported operations with cycles >= 1,
//   - the machine has a data memory (variables and spills live there),
//   - the transfer graph connects every ordered pair of register banks
//     and connects every bank to and from a memory; a stranded bank
//     makes Split-Node DAG construction dead-end the moment a value must
//     cross it,
//   - constraints reference known units performing the named ops, and a
//     single-slot constraint (which bans the op on that unit outright)
//     is flagged,
//   - buses are positive-width and actually carried by some transfer,
//   - complex-instruction patterns name a unit that can perform their
//     result op.
//
// The machine need not be finalized; LintMachine finalizes a clean
// description itself to build the transfer-path closure. Returns nil
// when the description lints clean.
func LintMachine(m *isdl.Machine) *VerifyError {
	s := &sink{}

	if len(m.Units) == 0 {
		s.add("isdl/no-units", Coord{Instr: -1}, "machine %s declares no functional units", m.Name)
		return asError(s.vs)
	}

	bankSize := map[string]int{}
	bankFirst := map[string]string{} // bank -> first declaring unit
	unitSeen := map[string]bool{}
	for _, u := range m.Units {
		c := blockLevel("unit " + u.Name)
		if unitSeen[u.Name] {
			s.add("isdl/unit-dup", c, "duplicate unit %s", u.Name)
		}
		unitSeen[u.Name] = true
		if len(u.Ops) == 0 {
			s.add("isdl/unit-empty", c, "unit %s offers no operations and can never be selected", u.Name)
		}
		for op := range u.Ops {
			if !op.Valid() || !op.IsComputation() {
				s.add("isdl/unit-op", c, "unit %s declares %s, which is not a functional-unit operation", u.Name, op)
			}
		}
		if u.Regs.Size < 1 {
			s.add("isdl/bank-size", c, "bank %s has %d registers", u.Regs.Name, u.Regs.Size)
		}
		if sz, seen := bankSize[u.Regs.Name]; seen {
			if sz != u.Regs.Size {
				s.add("isdl/bank-mismatch", c, "bank %s shared by %s (%d regs) and %s (%d regs)",
					u.Regs.Name, bankFirst[u.Regs.Name], sz, u.Name, u.Regs.Size)
			}
		} else {
			bankSize[u.Regs.Name] = u.Regs.Size
			bankFirst[u.Regs.Name] = u.Name
		}
		for op, lat := range u.Latency {
			if !u.Ops[op] {
				s.add("isdl/latency", c, "unit %s declares a latency for %s, which it cannot perform", u.Name, op)
			}
			if lat < 1 {
				s.add("isdl/latency", c, "unit %s declares latency %d for %s", u.Name, lat, op)
			}
		}
	}

	memSeen := map[string]bool{}
	for _, mem := range m.Memories {
		if memSeen[mem.Name] {
			s.add("isdl/mem-dup", blockLevel("memory "+mem.Name), "duplicate memory %s", mem.Name)
		}
		memSeen[mem.Name] = true
	}
	if len(m.Memories) == 0 {
		s.add("isdl/no-memory", Coord{Instr: -1},
			"machine %s has no data memory: variables and spill slots have nowhere to live", m.Name)
	}

	busSeen := map[string]bool{}
	busUsed := map[string]bool{}
	for _, b := range m.Buses {
		c := blockLevel("bus " + b.Name)
		if busSeen[b.Name] {
			s.add("isdl/bus-dup", c, "duplicate bus %s", b.Name)
		}
		busSeen[b.Name] = true
		if b.Width < 1 {
			s.add("isdl/bus-width", c, "bus %s has width %d", b.Name, b.Width)
		}
	}

	for _, t := range m.Transfers {
		c := blockLevel("transfer " + t.String())
		switch t.From.Kind {
		case isdl.LocUnit:
			if _, ok := bankSize[t.From.Name]; !ok {
				s.add("isdl/transfer", c, "source bank %s does not exist", t.From.Name)
			}
		case isdl.LocMem:
			if !memSeen[t.From.Name] {
				s.add("isdl/transfer", c, "source memory %s does not exist", t.From.Name)
			}
		}
		switch t.To.Kind {
		case isdl.LocUnit:
			if _, ok := bankSize[t.To.Name]; !ok {
				s.add("isdl/transfer", c, "destination bank %s does not exist", t.To.Name)
			}
		case isdl.LocMem:
			if !memSeen[t.To.Name] {
				s.add("isdl/transfer", c, "destination memory %s does not exist", t.To.Name)
			}
		}
		if !busSeen[t.Bus] {
			s.add("isdl/transfer", c, "bus %s does not exist", t.Bus)
		}
		busUsed[t.Bus] = true
	}
	for _, b := range m.Buses {
		if !busUsed[b.Name] {
			s.add("isdl/bus-dead", blockLevel("bus "+b.Name), "bus %s carries no declared transfer", b.Name)
		}
	}

	for _, con := range m.Constraints {
		c := blockLevel("constraint " + con.String())
		if len(con.Forbid) == 0 {
			s.add("isdl/constraint", c, "constraint forbids nothing")
			continue
		}
		slotSeen := map[isdl.SlotRef]bool{}
		for _, slot := range con.Forbid {
			u := findUnit(m, slot.Unit)
			if u == nil {
				s.add("isdl/constraint", c, "unknown unit %s", slot.Unit)
			} else if !u.Ops[slot.Op] {
				s.add("isdl/constraint", c, "unit %s cannot perform %s", slot.Unit, slot.Op)
			}
			if slotSeen[slot] {
				s.add("isdl/constraint", c, "slot %s listed twice", slot)
			}
			slotSeen[slot] = true
		}
		if len(con.Forbid) == 1 {
			s.add("isdl/constraint-total", c,
				"single-slot constraint bans %s outright; remove the op from the unit instead", con.Forbid[0])
		}
	}

	for _, p := range m.Patterns {
		c := blockLevel("pattern " + p.String())
		u := findUnit(m, p.Unit)
		if u == nil {
			s.add("isdl/pattern", c, "unknown unit %s", p.Unit)
		} else if !u.Ops[p.Result] {
			s.add("isdl/pattern", c, "unit %s cannot perform the pattern result %s", p.Unit, p.Result)
		}
	}

	// The connectivity checks need the transfer-path closure. Only a
	// description that finalizes cleanly has one; a finalize failure at
	// this point means Finalize rejects something the structural lints
	// above did not model, which is itself worth reporting.
	if len(s.vs) == 0 {
		if err := m.Finalize(); err != nil {
			s.add("isdl/finalize", Coord{Instr: -1}, "%v", err)
			return asError(s.vs)
		}
		lintConnectivity(s, m)
	}
	return asError(s.vs)
}

// lintConnectivity checks the covering's reachability assumptions on a
// finalized machine: every ordered pair of register banks must be
// connected (possibly multi-hop), and every bank must both load from and
// store to at least one memory.
func lintConnectivity(s *sink, m *isdl.Machine) {
	banks := m.Banks()
	for _, from := range banks {
		for _, to := range banks {
			if from == to {
				continue
			}
			if !m.Reachable(isdl.UnitLoc(from), isdl.UnitLoc(to)) {
				s.add("isdl/disconnected", blockLevel("bank "+from),
					"no transfer path from bank %s to bank %s: covering dead-ends when a value must cross", from, to)
			}
		}
	}
	for _, bank := range banks {
		canLoad, canStore := false, false
		for _, mem := range m.Memories {
			if m.Reachable(isdl.MemLoc(mem.Name), isdl.UnitLoc(bank)) {
				canLoad = true
			}
			if m.Reachable(isdl.UnitLoc(bank), isdl.MemLoc(mem.Name)) {
				canStore = true
			}
		}
		if len(m.Memories) > 0 && !canLoad {
			s.add("isdl/mem-path", blockLevel("bank "+bank),
				"bank %s cannot load from any memory", bank)
		}
		if len(m.Memories) > 0 && !canStore {
			s.add("isdl/mem-path", blockLevel("bank "+bank),
				"bank %s cannot store to any memory (spills are impossible)", bank)
		}
	}
	for _, mem := range m.Memories {
		reached := false
		for _, bank := range banks {
			if m.Reachable(isdl.UnitLoc(bank), isdl.MemLoc(mem.Name)) ||
				m.Reachable(isdl.MemLoc(mem.Name), isdl.UnitLoc(bank)) {
				reached = true
				break
			}
		}
		if !reached {
			s.add("isdl/mem-dead", blockLevel("memory "+mem.Name),
				"memory %s is connected to no register bank", mem.Name)
		}
	}
}

// findUnit looks a unit up without requiring a finalized machine.
func findUnit(m *isdl.Machine, name string) *isdl.Unit {
	for _, u := range m.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}
