package verify

import (
	"os"
	"path/filepath"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// TestLintBuiltinMachines lints every built-in architecture: the machines
// the test suite and benchmarks compile for must themselves be clean.
func TestLintBuiltinMachines(t *testing.T) {
	machines := []*isdl.Machine{
		isdl.ExampleArch(4),
		isdl.ArchitectureII(4),
		isdl.SingleIssueDSP(4),
		isdl.WideDSP(4),
		isdl.ExampleArchFull(4),
		isdl.DualMemDSP(4),
		isdl.ClusteredVLIW(4),
	}
	for _, m := range machines {
		if err := LintMachine(m); err != nil {
			t.Errorf("builtin %s does not lint clean: %v", m.Name, err)
		}
	}
}

// TestLintExampleMachines lints the textual machine descriptions shipped
// under examples/machines — the same files the ci.sh lint stage feeds to
// isdldump -lint — via the ParseRaw path the CLI uses.
func TestLintExampleMachines(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "machines")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var linted int
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".isdl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		m, err := isdl.ParseRaw(string(src))
		if err != nil {
			t.Errorf("%s does not parse: %v", e.Name(), err)
			continue
		}
		if verr := LintMachine(m); verr != nil {
			t.Errorf("%s does not lint clean: %v", e.Name(), verr)
		}
		linted++
	}
	if linted < 3 {
		t.Errorf("linted only %d example descriptions, want at least 3", linted)
	}
}

func TestLintNoUnits(t *testing.T) {
	m := isdl.NewMachine("empty")
	if err := LintMachine(m); !err.Has("isdl/no-units") {
		t.Errorf("want isdl/no-units, got %v", err)
	}
}

func TestLintEmptyUnit(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("DEAD", 4)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := LintMachine(m); !err.Has("isdl/unit-empty") {
		t.Errorf("want isdl/unit-empty, got %v", err)
	}
}

func TestLintBankMismatch(t *testing.T) {
	m := isdl.NewMachine("m")
	u1 := m.AddUnit("U1", 4, ir.OpAdd)
	u2 := m.AddUnit("U2", 4, ir.OpSub)
	u1.Regs = isdl.RegFile{Name: "RF", Size: 4}
	u2.Regs = isdl.RegFile{Name: "RF", Size: 8} // disagreeing shared size
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := LintMachine(m); !err.Has("isdl/bank-mismatch") {
		t.Errorf("want isdl/bank-mismatch, got %v", err)
	}
}

func TestLintBadBankSize(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 0, ir.OpAdd)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := LintMachine(m); !err.Has("isdl/bank-size") {
		t.Errorf("want isdl/bank-size, got %v", err)
	}
}

func TestLintLatency(t *testing.T) {
	m := isdl.NewMachine("m")
	u := m.AddUnit("U1", 4, ir.OpAdd)
	u.SetLatency(ir.OpMul, 2) // latency for an op the unit lacks
	u.SetLatency(ir.OpAdd, 0) // nonpositive latency
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	err := LintMachine(m)
	if !err.Has("isdl/latency") {
		t.Errorf("want isdl/latency, got %v", err)
	}
	if len(err.Violations) < 2 {
		t.Errorf("want both latency problems reported, got %v", err)
	}
}

func TestLintNoMemory(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := LintMachine(m); !err.Has("isdl/no-memory") {
		t.Errorf("want isdl/no-memory, got %v", err)
	}
}

func TestLintDeadBusAndBadWidth(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.AddBus("XB", 0) // bad width, and carries nothing
	m.ConnectAll("DB")
	err := LintMachine(m)
	if !err.Has("isdl/bus-width") {
		t.Errorf("want isdl/bus-width, got %v", err)
	}
	if !err.Has("isdl/bus-dead") {
		t.Errorf("want isdl/bus-dead, got %v", err)
	}
}

func TestLintTransferUnknownEndpoints(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	m.AddTransfer(isdl.UnitLoc("GHOST"), isdl.UnitLoc("U1"), "DB")
	m.AddTransfer(isdl.UnitLoc("U1"), isdl.MemLoc("NOWHERE"), "NB")
	err := LintMachine(m)
	if !err.Has("isdl/transfer") {
		t.Errorf("want isdl/transfer, got %v", err)
	}
}

func TestLintConstraint(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	m.AddConstraint(isdl.SlotRef{Unit: "NOPE", Op: ir.OpAdd}, isdl.SlotRef{Unit: "U2", Op: ir.OpSub})
	m.AddConstraint(isdl.SlotRef{Unit: "U1", Op: ir.OpAdd}) // total ban
	err := LintMachine(m)
	if !err.Has("isdl/constraint") {
		t.Errorf("want isdl/constraint, got %v", err)
	}
	if !err.Has("isdl/constraint-total") {
		t.Errorf("want isdl/constraint-total, got %v", err)
	}
}

// TestLintDisconnected builds two islands with no transfer between them:
// covering dead-ends as soon as a value must cross, and the linter must
// say so before any compile is attempted.
func TestLintDisconnected(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("MEM")
	m.AddBus("DB", 1)
	// U1 <-> MEM only; U2 is stranded.
	m.AddTransfer(isdl.UnitLoc("U1"), isdl.MemLoc("MEM"), "DB")
	m.AddTransfer(isdl.MemLoc("MEM"), isdl.UnitLoc("U1"), "DB")
	err := LintMachine(m)
	if !err.Has("isdl/disconnected") {
		t.Errorf("want isdl/disconnected, got %v", err)
	}
	if !err.Has("isdl/mem-path") {
		t.Errorf("want isdl/mem-path for the stranded bank, got %v", err)
	}
}

func TestLintDeadMemory(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddMemory("MEM")
	m.AddMemory("ROM") // never connected
	m.AddBus("DB", 2)
	m.AddTransfer(isdl.UnitLoc("U1"), isdl.MemLoc("MEM"), "DB")
	m.AddTransfer(isdl.MemLoc("MEM"), isdl.UnitLoc("U1"), "DB")
	if err := LintMachine(m); !err.Has("isdl/mem-dead") {
		t.Errorf("want isdl/mem-dead, got %v", err)
	}
}

// TestLintReportsAll checks that the linter keeps going after the first
// problem — the point of re-implementing Finalize's checks one by one.
func TestLintReportsAll(t *testing.T) {
	m := isdl.NewMachine("m")
	m.AddUnit("U1", 0) // bad bank size AND empty repertoire
	m.AddBus("XB", 0)  // bad width AND dead; also no memory
	err := LintMachine(m)
	if err == nil {
		t.Fatal("want violations, got clean")
	}
	for _, rule := range []string{"isdl/unit-empty", "isdl/bank-size", "isdl/bus-width", "isdl/no-memory"} {
		if !err.Has(rule) {
			t.Errorf("missing %s in %v", rule, err)
		}
	}
}
