// Package verify is an independent static translation validator for the
// AVIV back end. It re-checks compiled output against the ISDL machine
// description and the source IR without executing anything and without
// trusting how covering, register allocation, peephole, or layout
// produced the code — the checks are implemented from the machine model
// alone, so a bug in any producing pass surfaces as a structured
// diagnostic instead of a silent miscompile.
//
// Three entry points cover the pipeline ends:
//
//   - Func re-verifies the IR a compilation starts from (acyclic DAGs,
//     def-before-use, operand arity, terminator consistency).
//   - LintMachine lints an ISDL machine description for mistakes the
//     code generator would otherwise trip over mid-covering (empty
//     units, inconsistent shared banks, a transfer graph that strands a
//     register bank, constraints naming unknown slots).
//   - Program validates emitted VLIW assembly: instruction grouping
//     legality (via isdl.CheckGroup), operand register-bank legality,
//     cross-instruction def-before-use honoring operation latencies,
//     register-file pressure, spill-slot load/store pairing, and
//     branch/fallthrough resolution after block layout.
//
// The paper asserts these invariants (register pressure bounded during
// covering so Chaitin coloring "cannot fail"; peephole re-compaction
// preserving semantics) but never checks them; this package is the
// check.
package verify

import (
	"fmt"
	"strings"
)

// Coord pinpoints where a violation was found. The zero value means the
// violation is machine- or program-level.
type Coord struct {
	// Block is the basic-block name, or "" for program/machine level.
	Block string
	// Instr is the instruction index within the block; -1 when the
	// violation is not tied to one instruction.
	Instr int
	// Slot names the offending slot: a unit name, a bus move, "branch",
	// a constraint, ... "" when not applicable.
	Slot string
}

// Violation is one verifier diagnostic.
type Violation struct {
	// Rule is a stable identifier of the invariant violated, e.g.
	// "asm/latency" or "isdl/disconnected".
	Rule string
	Coord
	// Msg is the human-readable explanation.
	Msg string
}

func (v Violation) String() string {
	var sb strings.Builder
	sb.WriteString(v.Rule)
	sb.WriteString(":")
	if v.Block != "" {
		fmt.Fprintf(&sb, " block %s", v.Block)
		if v.Instr >= 0 {
			fmt.Fprintf(&sb, " I%d", v.Instr)
		}
		if v.Slot != "" {
			fmt.Fprintf(&sb, " [%s]", v.Slot)
		}
		sb.WriteString(":")
	} else if v.Slot != "" {
		fmt.Fprintf(&sb, " [%s]:", v.Slot)
	}
	sb.WriteString(" ")
	sb.WriteString(v.Msg)
	return sb.String()
}

// VerifyError aggregates every violation found by one verifier run.
type VerifyError struct {
	Violations []Violation
}

func (e *VerifyError) Error() string {
	if len(e.Violations) == 0 {
		return "verify: no violations"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify: %d violation(s):", len(e.Violations))
	for i, v := range e.Violations {
		if i == 8 {
			fmt.Fprintf(&sb, "\n  ... and %d more", len(e.Violations)-i)
			break
		}
		sb.WriteString("\n  ")
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Has reports whether any violation carries the given rule.
func (e *VerifyError) Has(rule string) bool {
	if e == nil {
		return false
	}
	for _, v := range e.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// asError wraps a violation list, returning nil when it is empty so
// callers can use the usual err != nil idiom.
func asError(vs []Violation) *VerifyError {
	if len(vs) == 0 {
		return nil
	}
	return &VerifyError{Violations: vs}
}

// sink collects violations with a default coordinate.
type sink struct {
	vs    []Violation
	block string
}

func (s *sink) add(rule string, c Coord, format string, args ...any) {
	if c.Block == "" {
		c.Block = s.block
	}
	s.vs = append(s.vs, Violation{Rule: rule, Coord: c, Msg: fmt.Sprintf(format, args...)})
}

// at builds an instruction-level coordinate.
func at(instr int, slot string) Coord { return Coord{Instr: instr, Slot: slot} }

// blockLevel is a block-level coordinate (no instruction).
func blockLevel(slot string) Coord { return Coord{Instr: -1, Slot: slot} }
