// Mutation self-test: prove the translation validator actually bites.
// A real program is compiled by the full pipeline (which must verify
// clean), then deliberately corrupted in distinct ways — one per class of
// bug the producing passes could have — and each corruption must be
// rejected with a diagnostic naming the offending block.
package verify_test

import (
	"testing"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/verify"
)

const mutSrc = `
x = a + b;
y = a * b;
if (x > y) {
  out = x - y;
} else {
  out = y - x;
}
`

// compileFor compiles the mutation-corpus program and asserts it
// verifies clean before any corruption.
func compileFor(t *testing.T, m *isdl.Machine, src string) (*asm.Program, *ir.Func) {
	t.Helper()
	opts := aviv.DefaultOptions()
	opts.Verify = true
	res, err := aviv.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if verr := verify.Program(res.Program, res.Func); verr != nil {
		t.Fatalf("uncorrupted program does not verify: %v", verr)
	}
	return res.Program, res.Func
}

// cloneProgram deep-copies a program so each mutation starts from the
// same pristine output.
func cloneProgram(p *asm.Program) *asm.Program {
	out := &asm.Program{Machine: p.Machine}
	for _, b := range p.Blocks {
		nb := &asm.Block{Name: b.Name, Branch: b.Branch}
		if b.Branch.CondConst != nil {
			c := *b.Branch.CondConst
			nb.Branch.CondConst = &c
		}
		for _, in := range b.Instrs {
			ni := asm.Instr{}
			for _, op := range in.Ops {
				nop := op
				nop.Srcs = append([]asm.Operand(nil), op.Srcs...)
				ni.Ops = append(ni.Ops, nop)
			}
			ni.Moves = append(ni.Moves, in.Moves...)
			nb.Instrs = append(nb.Instrs, ni)
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out
}

// expectRule asserts the mutated program is rejected with the given rule
// and that the diagnostic names a block.
func expectRule(t *testing.T, p *asm.Program, f *ir.Func, rule, mutation string) {
	t.Helper()
	err := verify.Program(p, f)
	if err == nil {
		t.Fatalf("%s: corrupted program verifies clean", mutation)
	}
	if !err.Has(rule) {
		t.Fatalf("%s: want %s, got %v", mutation, rule, err)
	}
	for _, v := range err.Violations {
		if v.Rule == rule && v.Block == "" {
			t.Errorf("%s: %s diagnostic does not name a block: %v", mutation, rule, v)
		}
	}
}

// firstComputation locates a computation micro-op in the program.
func firstComputation(t *testing.T, p *asm.Program) (*asm.Block, int, int) {
	t.Helper()
	for _, b := range p.Blocks {
		for i, in := range b.Instrs {
			for j, op := range in.Ops {
				if op.Op.IsComputation() {
					return b, i, j
				}
			}
		}
	}
	t.Fatal("no computation micro-op in compiled program")
	return nil, 0, 0
}

// TestMutationSwappedSlot reassigns a computation to a unit that cannot
// perform it (a broken instruction-selection step).
func TestMutationSwappedSlot(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	b, i, j := firstComputation(t, p)
	op := &b.Instrs[i].Ops[j]
	for _, u := range p.Machine.Units {
		if !u.Can(op.Op) {
			op.Unit = u.Name
			expectRule(t, p, f, "asm/op-unsupported", "swapped slot")
			return
		}
	}
	t.Skip("every unit performs every op on this machine")
}

// TestMutationDroppedTransfer deletes a data move the rest of the block
// depends on (a lost Split-Node transfer).
func TestMutationDroppedTransfer(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	for bi, b := range p0.Blocks {
		for i, in := range b.Instrs {
			for j, mv := range in.Moves {
				if mv.ToUnit == "" {
					continue // dropping a store shows up as mem-traffic instead
				}
				p := cloneProgram(p0)
				instrs := &p.Blocks[bi].Instrs[i]
				instrs.Moves = append(instrs.Moves[:j:j], instrs.Moves[j+1:]...)
				if err := verify.Program(p, f); err != nil && err.Has("asm/undef-read") {
					return // flagged as expected
				}
			}
		}
	}
	t.Fatal("no dropped register-defining move was flagged asm/undef-read")
}

// TestMutationOversubscribedBank writes a destination register outside
// the bank (a register allocator handing out registers that don't exist).
func TestMutationOversubscribedBank(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	b, i, j := firstComputation(t, p)
	b.Instrs[i].Ops[j].Dst = 99
	expectRule(t, p, f, "asm/reg-range", "oversubscribed bank")
}

// TestMutationReorderedDefs swaps adjacent instructions so a value is
// consumed before it is produced (a broken scheduler).
func TestMutationReorderedDefs(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	for bi, b := range p0.Blocks {
		for i := 0; i+1 < len(b.Instrs); i++ {
			p := cloneProgram(p0)
			ins := p.Blocks[bi].Instrs
			ins[i], ins[i+1] = ins[i+1], ins[i]
			err := verify.Program(p, f)
			if err != nil && (err.Has("asm/undef-read") || err.Has("asm/latency") || err.Has("asm/clobber")) {
				return
			}
		}
	}
	t.Fatal("no adjacent-instruction swap was flagged as a dependence violation")
}

// TestMutationBadLatency moves a multi-cycle operation's consumer into
// the producer's delay slots (a scheduler ignoring LatencyOf).
func TestMutationBadLatency(t *testing.T) {
	m := isdl.NewMachine("slowmul")
	u := m.AddUnit("U1", 6, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE)
	u.SetLatency(ir.OpMul, 3)
	m.AddMemory("MEM")
	m.AddBus("DB", 2)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	p0, f := compileFor(t, m, "out = (a * b) + c;")

	// Find the MUL and the later instruction consuming its destination,
	// then drag the consumer into the delay window.
	var blk *asm.Block
	mulAt, mulDst := -1, -1
	for _, b := range p0.Blocks {
		for i, in := range b.Instrs {
			for _, op := range in.Ops {
				if op.Op == ir.OpMul {
					blk, mulAt, mulDst = b, i, op.Dst
				}
			}
		}
	}
	if blk == nil {
		t.Fatal("no MUL in compiled program")
	}
	for i := mulAt + 1; i < len(blk.Instrs); i++ {
		for j, op := range blk.Instrs[i].Ops {
			for _, s := range op.Srcs {
				if !s.IsImm && s.Reg == mulDst && i > mulAt+1 {
					p := cloneProgram(p0)
					nb := p.Block(blk.Name)
					moved := nb.Instrs[i].Ops[j]
					nb.Instrs[i].Ops = append(nb.Instrs[i].Ops[:j:j], nb.Instrs[i].Ops[j+1:]...)
					nb.Instrs[mulAt+1].Ops = append(nb.Instrs[mulAt+1].Ops, moved)
					expectRule(t, p, f, "asm/latency", "bad latency")
					return
				}
			}
		}
	}
	t.Fatal("no relocatable MUL consumer found")
}

// TestMutationBusOverflow replicates a move until its bus exceeds width
// (a covering step ignoring bus capacity).
func TestMutationBusOverflow(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if len(in.Moves) == 0 {
				continue
			}
			width := p.Machine.Bus(in.Moves[0].Bus).Width
			for len(in.Moves) <= width {
				in.Moves = append(in.Moves, in.Moves[0])
			}
			expectRule(t, p, f, "asm/group", "bus overflow")
			return
		}
	}
	t.Fatal("no move to replicate")
}

// TestMutationUnitConflict duplicates a micro-op so one unit issues
// twice in a cycle.
func TestMutationUnitConflict(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	b, i, j := firstComputation(t, p)
	b.Instrs[i].Ops = append(b.Instrs[i].Ops, b.Instrs[i].Ops[j])
	expectRule(t, p, f, "asm/unit-conflict", "unit conflict")
}

// TestMutationBranchTarget retargets a control transfer at a block that
// does not exist (broken layout bookkeeping).
func TestMutationBranchTarget(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	for _, b := range p.Blocks {
		if b.Branch.Kind == asm.BranchCond || b.Branch.Kind == asm.BranchJump {
			b.Branch.Target = "__nowhere"
			err := verify.Program(p, f)
			if err == nil || !err.Has("asm/branch-target") {
				t.Fatalf("want asm/branch-target, got %v", err)
			}
			return
		}
	}
	t.Fatal("no jump or conditional branch in compiled program")
}

// TestMutationSpillPairing injects a reload of a spill slot no one ever
// stored (peephole deleting the wrong half of a spill pair).
func TestMutationSpillPairing(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	b := p.Blocks[0]
	u := p.Machine.Units[0]
	b.Instrs[0].Moves = append(b.Instrs[0].Moves,
		asm.Move{Bus: p.Machine.Buses[0].Name, FromMem: "$sp77", ToUnit: u.Regs.Name, ToReg: u.Regs.Size - 1})
	err := verify.Program(p, f)
	if err == nil || !err.Has("asm/spill-pairing") {
		t.Fatalf("want asm/spill-pairing, got %v", err)
	}
}

// TestMutationMemTraffic redirects a store to the wrong variable (a
// corrupted root: the source DAG's result is silently dropped).
func TestMutationMemTraffic(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			for j := range b.Instrs[i].Moves {
				mv := &b.Instrs[i].Moves[j]
				if mv.ToMem != "" && mv.ToMem[0] != '$' {
					mv.ToMem = "__evil"
					expectRule(t, p, f, "asm/mem-traffic", "redirected store")
					return
				}
			}
		}
	}
	t.Fatal("no variable store in compiled program")
}

// TestMutationConstraint builds an instruction that matches an explicit
// ISDL grouping constraint (covering ignoring the constraint database).
func TestMutationConstraint(t *testing.T) {
	m := isdl.NewMachine("constrained")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("MEM")
	m.AddBus("DB", 4)
	m.ConnectAll("DB")
	m.AddConstraint(isdl.SlotRef{Unit: "U1", Op: ir.OpAdd}, isdl.SlotRef{Unit: "U2", Op: ir.OpMul})
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Hand-build: MOVI feeds both units, then issue ADD and MUL together.
	blk := &asm.Block{
		Name: "entry",
		Instrs: []asm.Instr{
			{Ops: []asm.MicroOp{
				{Unit: "U1", Op: ir.OpConst, Dst: 0, Srcs: []asm.Operand{{IsImm: true, Imm: 1}}},
				{Unit: "U2", Op: ir.OpConst, Dst: 0, Srcs: []asm.Operand{{IsImm: true, Imm: 2}}},
			}},
			{Ops: []asm.MicroOp{
				{Unit: "U1", Op: ir.OpAdd, Dst: 1, Srcs: []asm.Operand{{Reg: 0}, {Reg: 0}}},
				{Unit: "U2", Op: ir.OpMul, Dst: 1, Srcs: []asm.Operand{{Reg: 0}, {Reg: 0}}},
			}},
			{Moves: []asm.Move{{Bus: "DB", FromUnit: "U1", FromReg: 1, ToMem: "out"}}},
		},
		Branch: asm.Branch{Kind: asm.BranchHalt},
	}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{blk}}
	err := verify.Program(p, nil)
	if err == nil || !err.Has("asm/group") {
		t.Fatalf("want asm/group for the matched constraint, got %v", err)
	}
}

// TestMutationFallthrough breaks the adjacency an implicit fall relies
// on by reordering the laid-out blocks.
func TestMutationFallthrough(t *testing.T) {
	p0, f := compileFor(t, isdl.ExampleArchFull(4), mutSrc)
	p := cloneProgram(p0)
	for i, b := range p.Blocks {
		if b.Branch.Kind == asm.BranchNone && b.Branch.Target != "" && i+1 < len(p.Blocks) {
			// Move the fall target to the end of the program.
			for j, tb := range p.Blocks {
				if tb.Name == b.Branch.Target {
					p.Blocks = append(append(p.Blocks[:j:j], p.Blocks[j+1:]...), tb)
					break
				}
			}
			if p.Blocks[i+1].Name == b.Branch.Target {
				t.Skip("fall target still adjacent after reorder")
			}
			expectRule(t, p, f, "asm/fallthrough", "broken fallthrough")
			return
		}
	}
	t.Skip("no implicit fallthrough in compiled program")
}

// TestMutationCompileRejects closes the loop at the pipeline level: a
// corrupted result must surface as a Compile error when re-checked via
// Options.Verify (exercised here through verify.Program on the clone,
// plus the end-to-end flag on the pristine source).
func TestVerifyOptionEndToEnd(t *testing.T) {
	opts := aviv.DefaultOptions()
	opts.Verify = true
	res, err := aviv.CompileSource(mutSrc, isdl.ExampleArchFull(4), 1, opts)
	if err != nil {
		t.Fatalf("verified compile failed: %v", err)
	}
	if res.Metrics.TotalViolations() != 0 {
		t.Errorf("clean compile reports %d violations", res.Metrics.TotalViolations())
	}
	verifyTime := false
	for _, bm := range res.Metrics.Blocks {
		if bm.Verify > 0 {
			verifyTime = true
		}
	}
	if !verifyTime {
		t.Error("no per-block verify time recorded")
	}
}
