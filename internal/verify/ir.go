package verify

import (
	"aviv/internal/ir"
)

// Func statically re-verifies a source IR function independently of
// ir.Func.Verify: every block DAG must be acyclic with operands defined
// before use and inside the block, node arities must match their ops,
// load/store nodes must name a memory location, and terminators must be
// consistent with the control-flow edges. Returns nil when clean.
func Func(f *ir.Func) *VerifyError {
	s := &sink{}
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if names[b.Name] {
			s.add("ir/dup-block", Coord{Block: b.Name, Instr: -1}, "duplicate block name")
			continue
		}
		names[b.Name] = true
	}
	for _, b := range f.Blocks {
		verifyBlockIR(s, b)
		for _, succ := range b.Succs {
			if !names[succ] {
				s.add("ir/succ", Coord{Block: b.Name, Instr: -1}, "unknown successor %q", succ)
			}
		}
	}
	return asError(s.vs)
}

func verifyBlockIR(s *sink, b *ir.Block) {
	s.block = b.Name
	defer func() { s.block = "" }()

	pos := make(map[*ir.Node]int, len(b.Nodes))
	for i, n := range b.Nodes {
		c := Coord{Instr: -1, Slot: n.String()}
		if !n.Op.Valid() {
			s.add("ir/bad-op", c, "node n%d has invalid op %v", n.ID, n.Op)
			pos[n] = i
			continue
		}
		if got, want := len(n.Args), n.Op.Arity(); got != want {
			s.add("ir/arity", c, "%s has %d operands, want %d", n.Op, got, want)
		}
		// pos only holds nodes seen earlier in the list, so one lookup
		// covers both "not in this block" and "defined later".
		for _, a := range n.Args {
			if _, in := pos[a]; !in {
				s.add("ir/def-before-use", c, "operand n%d is not defined earlier in the block", a.ID)
			}
		}
		if (n.Op == ir.OpLoad || n.Op == ir.OpStore) && n.Var == "" {
			s.add("ir/leaf-fields", c, "%s node n%d has no memory location name", n.Op, n.ID)
		}
		pos[n] = i
	}

	// Acyclicity, independent of the Nodes ordering: DFS over Args.
	if cyc := findCycle(b.Nodes); cyc != nil {
		s.add("ir/cycle", blockLevel(cyc.String()), "node n%d is part of an operand cycle", cyc.ID)
	}

	switch b.Term {
	case ir.TermBranch:
		if b.Cond == nil {
			s.add("ir/term", blockLevel("branch"), "branch terminator without a condition node")
		} else {
			if _, in := pos[b.Cond]; !in {
				s.add("ir/term", blockLevel("branch"), "branch condition n%d is not in the block", b.Cond.ID)
			}
			if b.Cond.Op == ir.OpStore {
				s.add("ir/term", blockLevel("branch"), "branch condition n%d is a store, which produces no value", b.Cond.ID)
			}
		}
		if len(b.Succs) != 2 {
			s.add("ir/term", blockLevel("branch"), "branch with %d successors, want 2", len(b.Succs))
		}
	case ir.TermJump:
		if len(b.Succs) != 1 {
			s.add("ir/term", blockLevel("jump"), "jump with %d successors, want 1", len(b.Succs))
		}
	case ir.TermReturn:
		if len(b.Succs) != 0 {
			s.add("ir/term", blockLevel("return"), "return with %d successors, want 0", len(b.Succs))
		}
	case ir.TermNone:
		if len(b.Succs) > 1 {
			s.add("ir/term", blockLevel("fallthrough"), "fallthrough with %d successors, want <= 1", len(b.Succs))
		}
	default:
		s.add("ir/term", blockLevel(""), "unknown terminator kind %d", b.Term)
	}
}

// findCycle returns a node on an Args cycle, or nil when the graph is
// acyclic. Iterative three-color DFS so adversarial inputs cannot blow
// the goroutine stack.
func findCycle(nodes []*ir.Node) *ir.Node {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*ir.Node]int, len(nodes))
	type frame struct {
		n   *ir.Node
		arg int
	}
	for _, root := range nodes {
		if color[root] != white {
			continue
		}
		stack := []frame{{n: root}}
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.arg >= len(f.n.Args) {
				color[f.n] = black
				stack = stack[:len(stack)-1]
				continue
			}
			a := f.n.Args[f.arg]
			f.arg++
			switch color[a] {
			case white:
				color[a] = gray
				stack = append(stack, frame{n: a})
			case gray:
				return a
			}
		}
	}
	return nil
}
