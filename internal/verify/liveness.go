package verify

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
)

// This file cross-checks the global dataflow analyses the back end now
// consumes (package dataflow) in the package's usual self-distrusting
// style: liveness is re-derived here by a different method — a
// demand-driven path search per (block, variable) query instead of an
// iterative bit-vector fixpoint — and the two derivations must agree
// exactly, or compilation fails. The store pruning that liveness
// licenses (cover.Options.LiveOut) is likewise re-checked structurally:
// the pruned block must keep exactly the stores the independent scan
// keeps, with identical value expressions and an identical terminator.

// LiveOutSets independently derives the live-out variable set of every
// block: v is live at the exit of block i when some path from i's exit
// reads v before overwriting it, or reaches a function exit without
// overwriting it (final data memory is the observable output of a
// compiled program, so every variable is live at exit). One
// breadth-first search runs per (block, variable) pair; whether a block
// reads-before-write or overwrites v depends only on the block itself,
// so a visited set per query is exact.
func LiveOutSets(f *ir.Func) []map[string]bool {
	n := len(f.Blocks)
	index := make(map[string]int, n)
	for i, b := range f.Blocks {
		index[b.Name] = i
	}
	succs := make([][]int, n)
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			if j, ok := index[s]; ok {
				succs[i] = append(succs[i], j)
			}
		}
	}
	// The variable universe: every name loaded or stored anywhere.
	varSet := make(map[string]bool)
	for _, b := range f.Blocks {
		for _, v := range b.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	// Per-block, per-variable summaries: does the block read v before
	// writing it (counting only loads that feed a store or the branch
	// condition — dead loads observe nothing), and does it write v at all?
	type summary struct{ reads, writes bool }
	sums := make([]map[string]summary, n)
	for i, b := range f.Blocks {
		live := reachableFromRoots(b)
		m := make(map[string]summary)
		for _, nd := range b.Nodes {
			switch nd.Op {
			case ir.OpLoad:
				s := m[nd.Var]
				if live[nd] && !s.writes {
					s.reads = true
				}
				m[nd.Var] = s
			case ir.OpStore:
				s := m[nd.Var]
				s.writes = true
				m[nd.Var] = s
			}
		}
		sums[i] = m
	}

	liveOutQuery := func(i int, v string) bool {
		if len(succs[i]) == 0 {
			return true // exit boundary: all of memory is observable
		}
		visited := make([]bool, n)
		queue := append([]int(nil), succs[i]...)
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			if visited[c] {
				continue
			}
			visited[c] = true
			s := sums[c][v]
			if s.reads {
				return true
			}
			if s.writes {
				continue
			}
			if len(succs[c]) == 0 {
				return true
			}
			queue = append(queue, succs[c]...)
		}
		return false
	}

	out := make([]map[string]bool, n)
	for i := range f.Blocks {
		m := make(map[string]bool)
		for _, v := range vars {
			if liveOutQuery(i, v) {
				m[v] = true
			}
		}
		out[i] = m
	}
	return out
}

// reachableFromRoots marks the nodes of b that feed a store or the
// branch condition; everything else is dead code whose loads read
// nothing.
func reachableFromRoots(b *ir.Block) map[*ir.Node]bool {
	live := make(map[*ir.Node]bool, len(b.Nodes))
	var mark func(n *ir.Node)
	mark = func(n *ir.Node) {
		if n == nil || live[n] {
			return
		}
		live[n] = true
		for _, a := range n.Args {
			mark(a)
		}
	}
	for _, r := range b.Roots() {
		mark(r)
	}
	return live
}

// CheckLiveness compares the claimed per-block live-out sets (as
// computed by the iterative dataflow solver) against this package's
// independent path-search derivation. Any disagreement in either
// direction is a violation: a variable claimed dead but actually live
// licenses an unsound store prune; a variable claimed live but actually
// dead is a lost optimization that signals the two derivations no
// longer model the same semantics.
func CheckLiveness(f *ir.Func, claimed []map[string]bool) []Violation {
	s := &sink{}
	if len(claimed) != len(f.Blocks) {
		s.add("ir/liveness", Coord{Instr: -1},
			"claimed live-out sets cover %d blocks, function has %d", len(claimed), len(f.Blocks))
		return s.vs
	}
	independent := LiveOutSets(f)
	for i, b := range f.Blocks {
		var missing, extra []string
		for v := range independent[i] {
			if !claimed[i][v] {
				missing = append(missing, v)
			}
		}
		for v, ok := range claimed[i] {
			if ok && !independent[i][v] {
				extra = append(extra, v)
			}
		}
		sort.Strings(missing)
		sort.Strings(extra)
		for _, v := range missing {
			s.add("ir/liveness", Coord{Block: b.Name, Instr: -1},
				"%s is live at block exit but the solver claims it dead", v)
		}
		for _, v := range extra {
			s.add("ir/liveness", Coord{Block: b.Name, Instr: -1},
				"%s is dead at block exit but the solver claims it live", v)
		}
	}
	return s.vs
}

// CheckPrune validates that pruned is exactly orig with its dead stores
// (under liveOut) removed: same terminator and successors, same branch
// condition expression, and a store sequence equal to orig's with
// precisely the stores this package's own backward scan proves dead
// deleted — matching by variable name and by the stored value's
// expression tree.
func CheckPrune(orig, pruned *ir.Block, liveOut map[string]bool) []Violation {
	s := &sink{}
	c := Coord{Block: orig.Name, Instr: -1}
	if pruned.Term != orig.Term {
		s.add("ir/prune", c, "terminator changed from %v to %v", orig.Term, pruned.Term)
	}
	if strings.Join(pruned.Succs, ",") != strings.Join(orig.Succs, ",") {
		s.add("ir/prune", c, "successors changed from %v to %v", orig.Succs, pruned.Succs)
	}
	if (orig.Cond == nil) != (pruned.Cond == nil) {
		s.add("ir/prune", c, "branch condition appeared or disappeared")
	} else if orig.Cond != nil && exprString(orig.Cond) != exprString(pruned.Cond) {
		s.add("ir/prune", c, "branch condition changed from %s to %s",
			exprString(orig.Cond), exprString(pruned.Cond))
	}
	want := surviveStores(orig, liveOut)
	var got []string
	for _, n := range pruned.Nodes {
		if n.Op == ir.OpStore {
			got = append(got, n.Var+"<-"+exprString(n.Args[0]))
		}
	}
	if strings.Join(want, "; ") != strings.Join(got, "; ") {
		s.add("ir/prune", c, "store sequence mismatch:\n  independent: %s\n  pruned:      %s",
			strings.Join(want, "; "), strings.Join(got, "; "))
	}
	return s.vs
}

// surviveStores returns, in execution order, var<-expr keys for the
// stores of b that survive dead-store pruning under liveOut, computed by
// a backward scan independent of dataflow.DeadStores: a store is dead
// when its variable is overwritten later in the block before any
// (live) load, or is not in liveOut and never read again. The scan
// iterates because deleting a store can orphan a load that was the only
// reader keeping an earlier store alive.
func surviveStores(b *ir.Block, liveOut map[string]bool) []string {
	type ev struct {
		idx   int
		store bool
		v     string
	}
	// Events in execution order over an explicit kept-set, so rounds can
	// drop stores and re-evaluate load reachability.
	kept := make(map[int]bool)
	for i, n := range b.Nodes {
		if n.Op == ir.OpStore {
			kept[i] = true
		}
	}
	for {
		// A load is observing when it (transitively) feeds a kept store
		// or the branch condition.
		obs := make(map[*ir.Node]bool)
		var mark func(n *ir.Node)
		mark = func(n *ir.Node) {
			if n == nil || obs[n] {
				return
			}
			obs[n] = true
			for _, a := range n.Args {
				mark(a)
			}
		}
		for i, n := range b.Nodes {
			if n.Op == ir.OpStore && kept[i] {
				mark(n)
			}
		}
		if b.Cond != nil {
			mark(b.Cond)
		}
		var events []ev
		for i, n := range b.Nodes {
			switch {
			case n.Op == ir.OpStore && kept[i]:
				events = append(events, ev{idx: i, store: true, v: n.Var})
			case n.Op == ir.OpLoad && obs[n]:
				events = append(events, ev{idx: i, store: false, v: n.Var})
			}
		}
		live := make(map[string]bool, len(liveOut))
		for v, ok := range liveOut {
			if ok {
				live[v] = true
			}
		}
		changed := false
		for i := len(events) - 1; i >= 0; i-- {
			e := events[i]
			if e.store {
				if !live[e.v] {
					kept[e.idx] = false
					changed = true
				} else {
					live[e.v] = false
				}
			} else {
				live[e.v] = true
			}
		}
		if !changed {
			break
		}
	}
	var out []string
	for i, n := range b.Nodes {
		if n.Op == ir.OpStore && kept[i] {
			out = append(out, n.Var+"<-"+exprString(n.Args[0]))
		}
	}
	return out
}

// exprString renders a value node as a canonical expression tree over
// loads and constants, for structural comparison across block clones.
func exprString(n *ir.Node) string {
	switch n.Op {
	case ir.OpConst:
		return fmt.Sprintf("#%d", n.Const)
	case ir.OpLoad:
		return "@" + n.Var
	default:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = exprString(a)
		}
		return n.Op.String() + "(" + strings.Join(parts, ",") + ")"
	}
}
