package verify

import (
	"testing"

	"aviv/internal/ir"
)

func liveTestFunc() *ir.Func {
	// entry: t = a+b; out = 1; branch c ? left : right
	// left:  t = 0; return          (t dead across entry->left)
	// right: u = t; return          (t live across entry->right)
	e := ir.NewBlock("entry")
	e.NewStore("t", e.NewNode(ir.OpAdd, e.NewLoad("a"), e.NewLoad("b")))
	e.NewStore("out", e.NewConst(1))
	e.Term = ir.TermBranch
	e.Cond = e.NewLoad("c")
	e.Succs = []string{"left", "right"}
	l := ir.NewBlock("left")
	l.NewStore("t", l.NewConst(0))
	l.Term = ir.TermReturn
	r := ir.NewBlock("right")
	r.NewStore("u", r.NewLoad("t"))
	r.Term = ir.TermReturn
	return &ir.Func{Name: "lt", Blocks: []*ir.Block{e, l, r}}
}

func TestLiveOutSets(t *testing.T) {
	f := liveTestFunc()
	outs := LiveOutSets(f)
	// t is read on the right path, so it is live out of entry.
	if !outs[0]["t"] {
		t.Errorf("t not live out of entry: %v", outs[0])
	}
	// Everything is live at exit blocks (observable final memory).
	for _, v := range []string{"a", "b", "c", "t", "u", "out"} {
		if !outs[1][v] || !outs[2][v] {
			t.Errorf("%s not live at an exit block: left=%v right=%v", v, outs[1], outs[2])
		}
	}
}

func TestCheckLivenessAgreesAndCatchesTampering(t *testing.T) {
	f := liveTestFunc()
	outs := LiveOutSets(f)
	if vs := CheckLiveness(f, outs); len(vs) != 0 {
		t.Fatalf("self-check found violations: %v", vs)
	}
	// Claiming a live variable dead must be flagged.
	tampered := make([]map[string]bool, len(outs))
	for i, m := range outs {
		c := make(map[string]bool, len(m))
		for k, v := range m {
			c[k] = v
		}
		tampered[i] = c
	}
	delete(tampered[0], "t")
	vs := CheckLiveness(f, tampered)
	if len(vs) == 0 {
		t.Fatal("claiming live t dead was not flagged")
	}
	if vs[0].Rule != "ir/liveness" {
		t.Errorf("rule = %q, want ir/liveness", vs[0].Rule)
	}
	// Claiming a dead variable live must be flagged too (the derivations
	// disagree, even if the direction is safe).
	tampered[0]["t"] = true
	tampered[0]["nonexistent"] = true
	if vs := CheckLiveness(f, tampered); len(vs) == 0 {
		t.Error("claiming dead variable live was not flagged")
	}
}

func TestCheckPrune(t *testing.T) {
	// Original block stores t then out; t is dead past the block.
	b := ir.NewBlock("entry")
	b.NewStore("t", b.NewNode(ir.OpAdd, b.NewLoad("a"), b.NewLoad("b")))
	b.NewStore("out", b.NewConst(1))
	b.Term = ir.TermReturn
	liveOut := map[string]bool{"a": true, "b": true, "out": true}

	good := ir.NewBlock("entry")
	good.NewStore("out", good.NewConst(1))
	good.Term = ir.TermReturn
	if vs := CheckPrune(b, good, liveOut); len(vs) != 0 {
		t.Errorf("correct prune flagged: %v", vs)
	}

	// Pruning the live store instead must be flagged.
	bad := ir.NewBlock("entry")
	bad.NewStore("t", bad.NewNode(ir.OpAdd, bad.NewLoad("a"), bad.NewLoad("b")))
	bad.Term = ir.TermReturn
	if vs := CheckPrune(b, bad, liveOut); len(vs) == 0 {
		t.Error("pruning the live store of out was not flagged")
	}

	// Changing a surviving store's value must be flagged.
	tampered := ir.NewBlock("entry")
	tampered.NewStore("out", tampered.NewConst(2))
	tampered.Term = ir.TermReturn
	if vs := CheckPrune(b, tampered, liveOut); len(vs) == 0 {
		t.Error("changed store value was not flagged")
	}

	// Cascade: a load feeding only a dead store dies with it, exposing
	// the earlier store of the same variable as dead too.
	casc := ir.NewBlock("entry")
	casc.NewStore("x", casc.NewConst(3))
	casc.NewStore("y", casc.NewNode(ir.OpAdd, casc.NewLoad("x"), casc.NewConst(1)))
	casc.NewStore("out", casc.NewConst(7))
	casc.Term = ir.TermReturn
	cascPruned := ir.NewBlock("entry")
	cascPruned.NewStore("out", cascPruned.NewConst(7))
	cascPruned.Term = ir.TermReturn
	cLive := map[string]bool{"out": true}
	if vs := CheckPrune(casc, cascPruned, cLive); len(vs) != 0 {
		t.Errorf("correct cascading prune flagged: %v", vs)
	}
}
