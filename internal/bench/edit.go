package bench

import (
	"fmt"
	"strings"
)

// MutateSource applies one deterministic, scope-safe, one-line edit to a
// mini-C program: it rotates the operator of an assignment line
// (`v = x OP y;`) or rewrites the comparison and constant of an if header
// (`if (v CMP K) {`). Variable names are never touched, so every mutant
// of a valid program is itself valid — the edit changes computation, not
// structure. The same (src, seed) pair always yields the same mutant,
// and a chosen line is always genuinely changed (operators rotate, never
// stay put). Sources with no editable line come back unchanged.
//
// It is the edit model of the incremental-compilation studies: the
// smallest change a developer makes between two compiles, against which
// the delta path's blocks-recompiled ratio is measured.
func MutateSource(src string, seed int64) string {
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	lines := strings.Split(src, "\n")
	var candidates []int
	for i, ln := range lines {
		if isAssignLine(ln) || isIfLine(ln) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return src
	}
	i := candidates[next(len(candidates))]
	if isIfLine(lines[i]) {
		lines[i] = mutateIfLine(lines[i], next)
	} else {
		lines[i] = mutateAssignLine(lines[i], next)
	}
	return strings.Join(lines, "\n")
}

var editOps = []string{"+", "-", "*"}
var editCmps = []string{">", "<", ">=", "<=", "==", "!="}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

func lineIndent(ln string) string {
	return ln[:len(ln)-len(strings.TrimLeft(ln, " \t"))]
}

// isAssignLine matches the generator's arithmetic shape `v = x OP y;`.
func isAssignLine(ln string) bool {
	f := strings.Fields(ln)
	return len(f) == 5 && f[1] == "=" && indexOf(editOps, f[3]) >= 0 && strings.HasSuffix(f[4], ";")
}

// isIfLine matches the generator's branch shape `if (v CMP K) {`.
func isIfLine(ln string) bool {
	f := strings.Fields(ln)
	return len(f) == 5 && f[0] == "if" && strings.HasPrefix(f[1], "(") &&
		indexOf(editCmps, f[2]) >= 0 && strings.HasSuffix(f[3], ")") && f[4] == "{"
}

// mutateAssignLine rotates the operator to one of the other two, so the
// edit always changes the computed value's expression.
func mutateAssignLine(ln string, next func(int) int) string {
	f := strings.Fields(ln)
	op := editOps[(indexOf(editOps, f[3])+1+next(len(editOps)-1))%len(editOps)]
	return fmt.Sprintf("%s%s = %s %s %s", lineIndent(ln), f[0], f[2], op, f[4])
}

// mutateIfLine rotates the comparison (never identity) and redraws the
// constant from the generator's own [0,50) range.
func mutateIfLine(ln string, next func(int) int) string {
	f := strings.Fields(ln)
	cmp := editCmps[(indexOf(editCmps, f[2])+1+next(len(editCmps)-1))%len(editCmps)]
	return fmt.Sprintf("%sif %s %s %d) {", lineIndent(ln), f[1], cmp, next(50))
}
