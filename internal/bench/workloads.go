// Package bench defines the paper's experimental workloads (the generic
// DSP basic blocks Ex1–Ex7 of Tables I and II), additional DSP workload
// generators, and the harness that regenerates every table of the
// evaluation section.
package bench

import (
	"fmt"

	"aviv/internal/ir"
)

// Workload is one benchmark basic block plus sample memory for
// simulation-based validation.
type Workload struct {
	Name string
	// Desc explains the block's provenance in the paper's terms.
	Desc  string
	Block *ir.Block
	// Mem is a sample initial data memory exercising the block.
	Mem map[string]int64
}

// Ex1 is the paper's Fig. 2 example block: out = (a+b) - (c*d).
// 8 original DAG nodes — a simple block from a conditional statement.
func Ex1() Workload {
	bb := ir.NewBuilder("Ex1")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	return Workload{
		Name:  "Ex1",
		Desc:  "conditional-body block: out = (a+b) - (c*d)",
		Block: bb.Finish(),
		Mem:   map[string]int64{"a": 10, "b": 32, "c": 6, "d": 7},
	}
}

// Ex2 is a two-output block: y = (a+b)*(c-d); z = y + e*f.
// 13 original DAG nodes — a simple block from a loop body.
func Ex2() Workload {
	bb := ir.NewBuilder("Ex2")
	y := bb.Mul(bb.Add(bb.Load("a"), bb.Load("b")), bb.Sub(bb.Load("c"), bb.Load("d")))
	z := bb.Add(y, bb.Mul(bb.Load("e"), bb.Load("f")))
	bb.Store("y", y)
	bb.Store("z", z)
	bb.Return()
	return Workload{
		Name:  "Ex2",
		Desc:  "loop-body block: y = (a+b)*(c-d); z = y + e*f",
		Block: bb.Finish(),
		Mem:   map[string]int64{"a": 1, "b": 2, "c": 9, "d": 4, "e": 3, "f": 5},
	}
}

// Ex3 is a twice-unrolled accumulation loop (the paper's Ex3-5 are loops
// unrolled twice): acc += x0*c0; acc += x1*c1, with the intermediate
// store kept as unrolling leaves it. 11 original DAG nodes.
func Ex3() Workload {
	bb := ir.NewBuilder("Ex3")
	acc := bb.Load("acc")
	acc1 := bb.Add(acc, bb.Mul(bb.Load("x0"), bb.Load("c0")))
	bb.Store("acc", acc1)
	acc2 := bb.Add(acc1, bb.Mul(bb.Load("x1"), bb.Load("c1")))
	bb.Store("acc", acc2)
	bb.Return()
	return Workload{
		Name:  "Ex3",
		Desc:  "twice-unrolled MAC loop: acc += x0*c0; acc += x1*c1",
		Block: bb.Finish(),
		Mem:   map[string]int64{"acc": 100, "x0": 2, "c0": 3, "x1": 4, "c1": 5},
	}
}

// Ex4 is a biquad-like filter section with delay-line update:
// w0 = x - a1*w1 - a2*w2; y = w0 + b1*w1; w2' = w1 (shift).
// 15 original DAG nodes.
func Ex4() Workload {
	bb := ir.NewBuilder("Ex4")
	x := bb.Load("x")
	a1 := bb.Load("a1")
	w1 := bb.Load("w1")
	a2 := bb.Load("a2")
	w2 := bb.Load("w2")
	b1 := bb.Load("b1")
	m1 := bb.Mul(a1, w1)
	m2 := bb.Mul(a2, w2)
	w0 := bb.Sub(bb.Sub(x, m1), m2)
	y := bb.Add(w0, bb.Mul(b1, w1))
	bb.Store("y", y)
	bb.Store("w0", w0)
	bb.Store("w2", w1) // delay-line shift
	bb.Return()
	return Workload{
		Name:  "Ex4",
		Desc:  "biquad section with delay-line shift (twice-unrolled loop body)",
		Block: bb.Finish(),
		Mem:   map[string]int64{"x": 50, "a1": 2, "w1": 3, "a2": 1, "w2": 4, "b1": 6},
	}
}

// Ex5 is a twice-unrolled dual-accumulator loop:
// s += x0*y0 + x1*y1; e += x0*x0 + x1*x1. 16 original DAG nodes.
func Ex5() Workload {
	bb := ir.NewBuilder("Ex5")
	s := bb.Load("s")
	e := bb.Load("e")
	x0 := bb.Load("x0")
	y0 := bb.Load("y0")
	x1 := bb.Load("x1")
	y1 := bb.Load("y1")
	s2 := bb.Add(bb.Add(s, bb.Mul(x0, y0)), bb.Mul(x1, y1))
	e2 := bb.Add(bb.Add(e, bb.Mul(x0, x0)), bb.Mul(x1, x1))
	bb.Store("s", s2)
	bb.Store("e", e2)
	bb.Return()
	return Workload{
		Name:  "Ex5",
		Desc:  "twice-unrolled dot product + energy accumulation",
		Block: bb.Finish(),
		Mem:   map[string]int64{"s": 10, "e": 20, "x0": 2, "y0": 3, "x1": 4, "y1": 5},
	}
}

// PaperWorkloads returns Ex1–Ex5 in table order.
func PaperWorkloads() []Workload {
	return []Workload{Ex1(), Ex2(), Ex3(), Ex4(), Ex5()}
}

// FIR builds an n-tap FIR inner block, fully unrolled:
// y = sum_i x[i]*c[i].
func FIR(taps int) Workload {
	bb := ir.NewBuilder(fmt.Sprintf("fir%d", taps))
	mem := map[string]int64{}
	var acc *ir.Node
	for i := 0; i < taps; i++ {
		xi := bb.Load(fmt.Sprintf("x%d", i))
		ci := bb.Load(fmt.Sprintf("c%d", i))
		mem[fmt.Sprintf("x%d", i)] = int64(i + 1)
		mem[fmt.Sprintf("c%d", i)] = int64(2*i + 1)
		term := bb.Mul(xi, ci)
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	return Workload{
		Name:  fmt.Sprintf("fir%d", taps),
		Desc:  fmt.Sprintf("%d-tap unrolled FIR filter", taps),
		Block: bb.Finish(),
		Mem:   mem,
	}
}

// VectorAdd builds an n-element unrolled vector addition c[i] = a[i]+b[i]
// — a maximally parallel workload.
func VectorAdd(n int) Workload {
	bb := ir.NewBuilder(fmt.Sprintf("vadd%d", n))
	mem := map[string]int64{}
	for i := 0; i < n; i++ {
		a := bb.Load(fmt.Sprintf("a%d", i))
		b := bb.Load(fmt.Sprintf("b%d", i))
		mem[fmt.Sprintf("a%d", i)] = int64(i)
		mem[fmt.Sprintf("b%d", i)] = int64(10 * i)
		bb.Store(fmt.Sprintf("c%d", i), bb.Add(a, b))
	}
	bb.Return()
	return Workload{
		Name:  fmt.Sprintf("vadd%d", n),
		Desc:  fmt.Sprintf("%d-element unrolled vector add", n),
		Block: bb.Finish(),
		Mem:   mem,
	}
}

// Chain builds a fully serial dependency chain of length n — a
// no-parallelism workload (the opposite extreme of VectorAdd).
func Chain(n int) Workload {
	bb := ir.NewBuilder(fmt.Sprintf("chain%d", n))
	cur := bb.Load("x")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			cur = bb.Add(cur, bb.Const(int64(i+1)))
		} else {
			cur = bb.Mul(cur, bb.Const(2))
		}
	}
	bb.Store("y", cur)
	bb.Return()
	return Workload{
		Name:  fmt.Sprintf("chain%d", n),
		Desc:  fmt.Sprintf("serial chain of %d dependent ops", n),
		Block: bb.Finish(),
		Mem:   map[string]int64{"x": 7},
	}
}

// Random builds a deterministic pseudo-random DAG of nOps operations over
// ADD/SUB/MUL, for scaling studies.
func Random(seed int64, nOps int) Workload {
	bb := ir.NewBuilder(fmt.Sprintf("rand%d_%d", seed, nOps))
	state := uint64(seed)*2654435761 + 99991
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	avail := []*ir.Node{bb.Load("a"), bb.Load("b"), bb.Load("c"), bb.Load("d")}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul}
	for i := 0; i < nOps; i++ {
		x := avail[next(len(avail))]
		y := avail[next(len(avail))]
		avail = append(avail, bb.Op(ops[next(len(ops))], x, y))
	}
	bb.Store("out", avail[len(avail)-1])
	bb.Return()
	return Workload{
		Name:  fmt.Sprintf("rand%d_%d", seed, nOps),
		Desc:  fmt.Sprintf("pseudo-random DAG, %d ops, seed %d", nOps, seed),
		Block: bb.Finish(),
		Mem:   map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3},
	}
}

// Butterfly builds a radix-2 FFT butterfly on integer data (real and
// imaginary parts, twiddle factor w = wr + j·wi):
//
//	tr = br*wr - bi*wi        ar' = ar + tr    br' = ar - tr
//	ti = br*wi + bi*wr        ai' = ai + ti    bi' = ai - ti
func Butterfly() Workload {
	bb := ir.NewBuilder("butterfly")
	ar := bb.Load("ar")
	ai := bb.Load("ai")
	br := bb.Load("br")
	bi := bb.Load("bi")
	wr := bb.Load("wr")
	wi := bb.Load("wi")
	tr := bb.Sub(bb.Mul(br, wr), bb.Mul(bi, wi))
	ti := bb.Add(bb.Mul(br, wi), bb.Mul(bi, wr))
	bb.Store("ar", bb.Add(ar, tr))
	bb.Store("br", bb.Sub(ar, tr))
	bb.Store("ai", bb.Add(ai, ti))
	bb.Store("bi", bb.Sub(ai, ti))
	bb.Return()
	return Workload{
		Name:  "butterfly",
		Desc:  "radix-2 FFT butterfly (complex multiply + add/sub pairs)",
		Block: bb.Finish(),
		Mem:   map[string]int64{"ar": 10, "ai": 20, "br": 3, "bi": 4, "wr": 2, "wi": 1},
	}
}

// IIRCascade builds two cascaded first-order IIR sections:
//
//	s1 = a1*s1 + x ; s2 = a2*s2 + s1 ; y = s2
func IIRCascade() Workload {
	bb := ir.NewBuilder("iir2")
	x := bb.Load("x")
	s1 := bb.Add(bb.Mul(bb.Load("a1"), bb.Load("s1")), x)
	s2 := bb.Add(bb.Mul(bb.Load("a2"), bb.Load("s2")), s1)
	bb.Store("s1", s1)
	bb.Store("s2", s2)
	bb.Store("y", s2)
	bb.Return()
	return Workload{
		Name:  "iir2",
		Desc:  "two cascaded first-order IIR sections (serial recurrence)",
		Block: bb.Finish(),
		Mem:   map[string]int64{"x": 5, "a1": 2, "s1": 3, "a2": 1, "s2": 4},
	}
}

// Correlation builds a 4-lag cross-correlation update:
//
//	r[k] += x * y[k]  for k = 0..3
func Correlation() Workload {
	bb := ir.NewBuilder("corr4")
	x := bb.Load("x")
	mem := map[string]int64{"x": 3}
	for k := 0; k < 4; k++ {
		rk := fmt.Sprintf("r%d", k)
		yk := fmt.Sprintf("y%d", k)
		mem[rk] = int64(10 * k)
		mem[yk] = int64(k + 1)
		bb.Store(rk, bb.Add(bb.Load(rk), bb.Mul(x, bb.Load(yk))))
	}
	bb.Return()
	return Workload{
		Name:  "corr4",
		Desc:  "4-lag correlation update (independent MACs sharing one input)",
		Block: bb.Finish(),
		Mem:   mem,
	}
}

// MatMul2 builds a 2x2 integer matrix multiply C = A*B.
func MatMul2() Workload {
	bb := ir.NewBuilder("matmul2")
	mem := map[string]int64{}
	a := func(i, j int) *ir.Node { return bb.Load(fmt.Sprintf("a%d%d", i, j)) }
	b := func(i, j int) *ir.Node { return bb.Load(fmt.Sprintf("b%d%d", i, j)) }
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			mem[fmt.Sprintf("a%d%d", i, j)] = int64(i + j + 1)
			mem[fmt.Sprintf("b%d%d", i, j)] = int64(2*i + j + 1)
			c := bb.Add(bb.Mul(a(i, 0), b(0, j)), bb.Mul(a(i, 1), b(1, j)))
			bb.Store(fmt.Sprintf("c%d%d", i, j), c)
		}
	}
	bb.Return()
	return Workload{
		Name:  "matmul2",
		Desc:  "2x2 matrix multiply (8 MULs, 4 ADDs, wide parallelism)",
		Block: bb.Finish(),
		Mem:   mem,
	}
}

// DSPSuite returns the extended kernel suite used by the suite study.
func DSPSuite() []Workload {
	return []Workload{
		Butterfly(), IIRCascade(), Correlation(), MatMul2(),
		FIR(8), VectorAdd(6), Chain(10),
	}
}
