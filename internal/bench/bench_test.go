package bench

import (
	"strings"
	"testing"

	"aviv/internal/ir"
)

func TestWorkloadNodeCounts(t *testing.T) {
	// The paper's Table I "Original DAG #Nodes" column: 8, 13, 11, 15, 16.
	want := []int{8, 13, 11, 15, 16}
	for i, w := range PaperWorkloads() {
		if got := len(w.Block.Nodes); got != want[i] {
			t.Errorf("%s has %d nodes, want %d (paper Table I)", w.Name, got, want[i])
		}
		if err := w.Block.Verify(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestWorkloadsEvaluate(t *testing.T) {
	for _, w := range PaperWorkloads() {
		mem := map[string]int64{}
		for k, v := range w.Mem {
			mem[k] = v
		}
		if _, err := ir.EvalBlock(w.Block, mem); err != nil {
			t.Errorf("%s does not evaluate: %v", w.Name, err)
		}
	}
}

func TestGenerators(t *testing.T) {
	f := FIR(8)
	if err := f.Block.Verify(); err != nil {
		t.Fatal(err)
	}
	// 8 taps: 16 loads, 8 muls, 7 adds, 1 store.
	if got := len(f.Block.Nodes); got != 32 {
		t.Errorf("fir8 has %d nodes, want 32", got)
	}
	mem := map[string]int64{}
	for k, v := range f.Mem {
		mem[k] = v
	}
	if _, err := ir.EvalBlock(f.Block, mem); err != nil {
		t.Fatal(err)
	}
	// y = sum (i+1)(2i+1) for i in 0..7 = 1+6+15+28+45+66+91+120 = 372.
	if mem["y"] != 372 {
		t.Errorf("fir8 y = %d, want 372", mem["y"])
	}

	v := VectorAdd(4)
	if err := v.Block.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Block.Nodes); got != 16 {
		t.Errorf("vadd4 has %d nodes, want 16", got)
	}

	c := Chain(6)
	if err := c.Block.Verify(); err != nil {
		t.Fatal(err)
	}
	mem = map[string]int64{"x": 7}
	if _, err := ir.EvalBlock(c.Block, mem); err != nil {
		t.Fatal(err)
	}
	// ((((7+1)*2)+3)*2)+5 then *2: chain6 = ((((((7+1)*2)+3)*2)+5)*2) = 86.
	if mem["y"] != 86 {
		t.Errorf("chain6 y = %d, want 86", mem["y"])
	}

	r1 := Random(42, 10)
	r2 := Random(42, 10)
	if r1.Block.String() != r2.Block.String() {
		t.Error("Random is not deterministic")
	}
	if err := r1.Block.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTableIHeuristicOnly(t *testing.T) {
	rows, err := TableI(TableConfig{Peephole: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	for i, r := range rows {
		// Shape checks: the Split-Node DAG grows several-fold, results
		// never exceed the paper's heuristic numbers by much (our Ex2-5
		// share only node counts with the paper's unpublished DAGs, so
		// being better is expected), and only the 2-register rows spill.
		if r.SNNodes < 2*r.OrigNodes {
			t.Errorf("%s: SN-DAG %d not ≫ original %d", r.Name, r.SNNodes, r.OrigNodes)
		}
		if r.Cost > r.PaperAviv+2 {
			t.Errorf("%s: cost %d worse than paper's %d", r.Name, r.Cost, r.PaperAviv)
		}
		if r.Cost < 3 {
			t.Errorf("%s: cost %d implausibly small", r.Name, r.Cost)
		}
		if i < 5 && r.Spills != 0 {
			t.Errorf("%s: unexpected spills %d with 4 registers", r.Name, r.Spills)
		}
	}
	// Ex1 IS the paper's Fig. 2 block: exact match required.
	if rows[0].Cost != 7 {
		t.Errorf("Ex1 cost = %d, want exactly 7", rows[0].Cost)
	}
	// The 2-register reruns cost extra instructions vs their 4-register
	// versions (Table I's Ex6 > Ex4, Ex7 > Ex5 shape).
	if rows[5].Cost < rows[3].Cost {
		t.Errorf("Ex6 (2 regs) cost %d < Ex4 (4 regs) cost %d", rows[5].Cost, rows[3].Cost)
	}
	if rows[6].Cost < rows[4].Cost {
		t.Errorf("Ex7 (2 regs) cost %d < Ex5 (4 regs) cost %d", rows[6].Cost, rows[4].Cost)
	}
	out := Format("Table I", rows)
	for _, want := range []string{"Ex1", "Ex7", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q", want)
		}
	}
}

func TestTableIIHeuristicOnly(t *testing.T) {
	rows, err := TableII(TableConfig{Peephole: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	rowsI, err := TableI(TableConfig{Peephole: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Architecture II has fewer alternatives: smaller SN-DAGs
		// (paper: Ex1 30 -> 17), and code no better than on the 3-unit
		// machine ... except where the narrower machine loses nothing,
		// the paper's own observation.
		if r.SNNodes >= rowsI[i].SNNodes {
			t.Errorf("%s: ArchII SN-DAG %d not smaller than ExampleArch %d",
				r.Name, r.SNNodes, rowsI[i].SNNodes)
		}
		// Heuristic covering may luck out on the narrower machine (fewer
		// alternatives to mispick), but never by a wide margin.
		if r.Cost+2 < rowsI[i].Cost {
			t.Errorf("%s: ArchII cost %d clearly better than 3-unit cost %d",
				r.Name, r.Cost, rowsI[i].Cost)
		}
	}
}

func TestTableIExhaustiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive covering is slow")
	}
	// Exhaustive mode on the two smallest blocks only.
	w := Ex1()
	cfg := TableConfig{Exhaustive: true, MaxAssignments: 50_000, Peephole: true}
	rows, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = w
	for _, r := range rows[:2] {
		if r.ExhCost < 0 {
			t.Errorf("%s: exhaustive run skipped", r.Name)
		}
		if r.ExhCost > r.Cost {
			t.Errorf("%s: exhaustive %d worse than heuristic %d", r.Name, r.ExhCost, r.Cost)
		}
	}
}

func TestDSPSuiteEvaluates(t *testing.T) {
	for _, w := range DSPSuite() {
		if err := w.Block.Verify(); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		mem := map[string]int64{}
		for k, v := range w.Mem {
			mem[k] = v
		}
		if _, err := ir.EvalBlock(w.Block, mem); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
	}
	// Spot-check butterfly math: tr = 3*2-4*1 = 2, ti = 3*1+4*2 = 11.
	w := Butterfly()
	mem := map[string]int64{}
	for k, v := range w.Mem {
		mem[k] = v
	}
	if _, err := ir.EvalBlock(w.Block, mem); err != nil {
		t.Fatal(err)
	}
	if mem["ar"] != 12 || mem["br"] != 8 || mem["ai"] != 31 || mem["bi"] != 9 {
		t.Errorf("butterfly: %v", mem)
	}
	// MatMul2: c00 = 1*1+2*3 = 7.
	w2 := MatMul2()
	mem2 := map[string]int64{}
	for k, v := range w2.Mem {
		mem2[k] = v
	}
	if _, err := ir.EvalBlock(w2.Block, mem2); err != nil {
		t.Fatal(err)
	}
	if mem2["c00"] != 1*1+2*3 {
		t.Errorf("matmul2 c00 = %d, want 7", mem2["c00"])
	}
}
