package bench

import (
	"fmt"
	"strings"

	"aviv/internal/ir"
)

// MultiBlock builds a deterministic pseudo-random function of nBlocks
// chained basic blocks, each a DAG of opsPerBlock ADD/SUB/MUL operations.
// Every fourth block ends in a conditional branch that may skip the next
// block (forward-only edges, so every path terminates); the rest chain by
// unconditional jump, which exercises the fallthrough layout. The second
// return value is an initial data memory for simulator validation; the
// reference semantics come from ir.EvalFunc on the same function.
//
// It is the workload of the parallel compile-pipeline studies: the blocks
// are independent covering problems of similar size, so an N-worker pool
// has real work to balance.
func MultiBlock(seed int64, nBlocks, opsPerBlock int) (*ir.Func, map[string]int64) {
	if nBlocks < 1 {
		nBlocks = 1
	}
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	mem := map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3}
	f := &ir.Func{Name: fmt.Sprintf("multi%d_%d", seed, nBlocks)}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul}
	for i := 0; i < nBlocks; i++ {
		bb := ir.NewBuilder(fmt.Sprintf("b%d", i))
		avail := []*ir.Node{bb.Load("a"), bb.Load("b"), bb.Load("c"), bb.Load("d")}
		if i > 0 {
			// Chain a value produced by an earlier block through memory.
			avail = append(avail, bb.Load(fmt.Sprintf("t%d", i-1)))
		}
		for k := 0; k < opsPerBlock; k++ {
			x := avail[next(len(avail))]
			y := avail[next(len(avail))]
			avail = append(avail, bb.Op(ops[next(len(ops))], x, y))
		}
		bb.Store(fmt.Sprintf("t%d", i), avail[len(avail)-1])
		switch {
		case i == nBlocks-1:
			bb.Return()
		case i%4 == 3 && i+2 < nBlocks:
			// Forward conditional: skip the next block when the test holds.
			cond := bb.Op(ir.OpCmpGT, avail[len(avail)-1], bb.Const(int64(next(100))))
			bb.Branch(cond, fmt.Sprintf("b%d", i+2), fmt.Sprintf("b%d", i+1))
		default:
			bb.Jump(fmt.Sprintf("b%d", i+1))
		}
		f.Blocks = append(f.Blocks, bb.Finish())
	}
	return f, mem
}

// MultiBlockSource renders a deterministic pseudo-random mini-C program
// whose lowering has roughly nBlocks basic blocks: straight-line
// ADD/SUB/MUL arithmetic interleaved with if/else segments, each of
// which lowers to a condition block, two arm blocks, and a join. It is
// the source-level twin of MultiBlock for tools that must go through
// the front end — the avivd serve benchmark ships it as the /compile
// request payload. Ops are drawn from the example-architecture
// repertoire, so the program compiles on ExampleArchFull.
func MultiBlockSource(seed int64, nBlocks, opsPerBlock int) string {
	if nBlocks < 1 {
		nBlocks = 1
	}
	if opsPerBlock < 1 {
		opsPerBlock = 1
	}
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	vars := []string{"a", "b", "c", "d"}
	ops := []string{"+", "-", "*"}
	cmps := []string{">", "<", ">=", "<=", "==", "!="}
	var sb strings.Builder
	tmp := 0
	emit := func(indent string, n int) {
		for k := 0; k < n; k++ {
			v := fmt.Sprintf("t%d", tmp)
			tmp++
			fmt.Fprintf(&sb, "%s%s = %s %s %s;\n", indent,
				v, vars[next(len(vars))], ops[next(len(ops))], vars[next(len(vars))])
			vars = append(vars, v)
		}
	}
	// Each if/else segment lowers to ~3 extra blocks beyond the
	// straight-line code around it.
	segments := nBlocks / 3
	if segments < 1 {
		segments = 1
	}
	for i := 0; i < segments; i++ {
		emit("", opsPerBlock)
		fmt.Fprintf(&sb, "if (%s %s %d) {\n",
			vars[next(len(vars))], cmps[next(len(cmps))], next(50))
		emit("  ", opsPerBlock/2+1)
		sb.WriteString("} else {\n")
		emit("  ", opsPerBlock/2+1)
		sb.WriteString("}\n")
	}
	fmt.Fprintf(&sb, "out = %s + %s;\n", vars[len(vars)-1], vars[next(len(vars))])
	return sb.String()
}
