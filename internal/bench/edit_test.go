package bench

import (
	"strings"
	"testing"
)

// TestMutateSourceDeterministicOneLine pins the edit model's contract:
// same (src, seed) → same mutant, exactly one line differs, and the
// chosen line genuinely changed.
func TestMutateSourceDeterministicOneLine(t *testing.T) {
	src := MultiBlockSource(7, 25, 12)
	for seed := int64(0); seed < 20; seed++ {
		a := MutateSource(src, seed)
		if b := MutateSource(src, seed); a != b {
			t.Fatalf("seed %d: MutateSource is not deterministic", seed)
		}
		if a == src {
			t.Fatalf("seed %d: mutant identical to source", seed)
		}
		orig, mut := strings.Split(src, "\n"), strings.Split(a, "\n")
		if len(orig) != len(mut) {
			t.Fatalf("seed %d: mutant has %d lines, source has %d", seed, len(mut), len(orig))
		}
		diff := 0
		for i := range orig {
			if orig[i] != mut[i] {
				diff++
				if !isAssignLine(orig[i]) && !isIfLine(orig[i]) {
					t.Fatalf("seed %d: mutated a non-candidate line %q", seed, orig[i])
				}
			}
		}
		if diff != 1 {
			t.Fatalf("seed %d: %d lines differ, want exactly 1", seed, diff)
		}
	}
}

// TestMutateSourceSpreadsAcrossLines: different seeds must not pile onto
// one line, or the edit study would measure a single block forever.
func TestMutateSourceSpreadsAcrossLines(t *testing.T) {
	src := MultiBlockSource(3, 25, 12)
	orig := strings.Split(src, "\n")
	touched := map[int]bool{}
	for seed := int64(0); seed < 40; seed++ {
		mut := strings.Split(MutateSource(src, seed), "\n")
		for i := range orig {
			if orig[i] != mut[i] {
				touched[i] = true
			}
		}
	}
	if len(touched) < 5 {
		t.Fatalf("40 seeds touched only %d distinct lines", len(touched))
	}
}

// TestMutateSourceNoCandidates: inputs with no editable line come back
// unchanged rather than corrupted.
func TestMutateSourceNoCandidates(t *testing.T) {
	for _, src := range []string{"", "out = a;\n", "x = 1;\n// comment\n"} {
		if got := MutateSource(src, 9); got != src {
			t.Fatalf("MutateSource(%q) = %q, want unchanged", src, got)
		}
	}
}
