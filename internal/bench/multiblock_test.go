package bench

import (
	"testing"

	"aviv/internal/lang"
)

// TestMultiBlockSourceShape checks the source-level workload generator:
// the program must parse, lower to roughly the requested block count,
// and be deterministic per seed (the serve benchmark relies on repeat
// requests being byte-identical so they hit the compile cache).
func TestMultiBlockSourceShape(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		src := MultiBlockSource(seed, 24, 12)
		if src != MultiBlockSource(seed, 24, 12) {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		f, err := lang.Lower(prog, "main")
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		if n := len(f.Blocks); n < 16 || n > 40 {
			t.Fatalf("seed %d: lowered to %d blocks, want roughly 24", seed, n)
		}
	}
	if MultiBlockSource(3, 24, 12) == MultiBlockSource(4, 24, 12) {
		t.Fatal("different seeds produced identical programs")
	}
}
