package bench

import (
	"fmt"
	"strings"
	"time"

	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/peephole"
	"aviv/internal/sndag"
)

// Row is one line of a reproduced results table, in the layout of the
// paper's Tables I and II. PaperHand/PaperAviv/PaperExh carry the numbers
// printed in the paper for side-by-side comparison; a value of -1 means
// the paper did not report one.
type Row struct {
	Name        string
	OrigNodes   int
	SNNodes     int
	RegsPerFile int
	Spills      int

	PaperHand int // "#Instr By Hand" (optimal, per the paper)
	PaperAviv int // "#Instr Aviv" with heuristics
	PaperExh  int // parenthesised heuristics-off result

	Cost     int // our heuristics-on instruction count
	ExhCost  int // our heuristics-off instruction count (-1 = skipped)
	HeurTime time.Duration
	ExhTime  time.Duration
}

// TableConfig controls a table reproduction run.
type TableConfig struct {
	// Exhaustive also runs the heuristics-off configuration (the paper's
	// parenthesised columns). Slower.
	Exhaustive bool
	// MaxAssignments caps exhaustive enumeration (0 = package default).
	MaxAssignments int
	// Peephole runs the Sec. IV-G cleanup after covering.
	Peephole bool
}

// runOne covers a block and returns instruction count, spills, and time.
func runOne(b *ir.Block, m *isdl.Machine, opts cover.Options, peep bool) (cost, spills int, d time.Duration, err error) {
	start := time.Now()
	res, err := cover.CoverBlock(b, m, opts)
	if err != nil {
		return 0, 0, 0, err
	}
	sol := res.Best
	if peep {
		sol = peephole.Optimize(sol)
	}
	return sol.Cost(), sol.SpillCount, time.Since(start), nil
}

// paperTableI holds the numbers printed in the paper's Table I,
// indexed by row order Ex1..Ex7.
var paperTableI = []struct {
	hand, aviv, exh, regs, spills int
}{
	{7, 7, 7, 4, 0},
	{10, 10, 10, 4, 0},
	{13, 13, 13, 4, 0},
	{16, 16, 16, 4, 0},
	{14, 16, 14, 4, 0},
	{18, 22, 18, 2, 2}, // Ex6 = Ex4 with 2 registers
	{15, 18, 15, 2, 1}, // Ex7 = Ex5 with 2 registers
}

// TableI reproduces the paper's Table I: Ex1–Ex5 on the example
// architecture with 4 registers per file, plus Ex6/Ex7 (= Ex4/Ex5 with 2
// registers per file).
func TableI(cfg TableConfig) ([]Row, error) {
	base := PaperWorkloads()
	type entry struct {
		w    Workload
		regs int
		ref  int // index into paperTableI
	}
	entries := []entry{
		{base[0], 4, 0}, {base[1], 4, 1}, {base[2], 4, 2}, {base[3], 4, 3}, {base[4], 4, 4},
		{base[3], 2, 5}, {base[4], 2, 6},
	}
	var rows []Row
	for i, e := range entries {
		name := e.w.Name
		if e.regs != 4 {
			name = fmt.Sprintf("Ex%d", i+1)
		}
		m := isdl.ExampleArch(e.regs)
		row, err := buildRow(name, e.w.Block, m, e.regs, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		ref := paperTableI[e.ref]
		row.PaperHand, row.PaperAviv, row.PaperExh = ref.hand, ref.aviv, ref.exh
		rows = append(rows, row)
	}
	return rows, nil
}

// paperTableII holds the numbers printed in the paper's Table II.
var paperTableII = []struct{ hand, aviv int }{
	{8, 8}, {11, 12}, {13, 13}, {16, 17}, {15, 15},
}

// TableII reproduces the paper's Table II: Ex1–Ex5 on Architecture II
// (no U3, no SUB on U1) with 4 registers per file.
func TableII(cfg TableConfig) ([]Row, error) {
	var rows []Row
	for i, w := range PaperWorkloads() {
		m := isdl.ArchitectureII(4)
		row, err := buildRow(w.Name, w.Block, m, 4, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		row.PaperHand, row.PaperAviv = paperTableII[i].hand, paperTableII[i].aviv
		row.PaperExh = -1
		rows = append(rows, row)
	}
	return rows, nil
}

func buildRow(name string, b *ir.Block, m *isdl.Machine, regs int, cfg TableConfig) (Row, error) {
	d, err := sndag.Build(b, m)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Name:        name,
		OrigNodes:   len(b.Nodes),
		SNNodes:     d.Counts.Total(),
		RegsPerFile: regs,
		ExhCost:     -1,
	}
	hopts := cover.DefaultOptions()
	cost, spills, dt, err := runOne(b, m, hopts, cfg.Peephole)
	if err != nil {
		return Row{}, err
	}
	row.Cost, row.Spills, row.HeurTime = cost, spills, dt
	if cfg.Exhaustive {
		eopts := cover.ExhaustiveOptions()
		if cfg.MaxAssignments > 0 {
			eopts.MaxAssignments = cfg.MaxAssignments
		}
		ecost, _, edt, err := runOne(b, m, eopts, cfg.Peephole)
		if err != nil {
			return Row{}, err
		}
		row.ExhCost, row.ExhTime = ecost, edt
	}
	return row, nil
}

// Format renders rows in the layout of the paper's tables, with the
// paper's own numbers alongside for comparison.
func Format(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-6s %8s %8s %6s %7s | %12s | %12s %10s\n",
		"Block", "DAG#", "SN-DAG#", "Regs", "Spills",
		"paper h/a(x)", "ours a(x)", "CPU")
	for _, r := range rows {
		paper := fmt.Sprintf("%d/%d", r.PaperHand, r.PaperAviv)
		if r.PaperExh >= 0 {
			paper = fmt.Sprintf("%d/%d(%d)", r.PaperHand, r.PaperAviv, r.PaperExh)
		}
		ours := fmt.Sprintf("%d", r.Cost)
		cpu := fmt.Sprintf("%.2gms", float64(r.HeurTime.Microseconds())/1000)
		if r.ExhCost >= 0 {
			ours = fmt.Sprintf("%d(%d)", r.Cost, r.ExhCost)
			cpu += fmt.Sprintf(" (%.3gs)", r.ExhTime.Seconds())
		}
		fmt.Fprintf(&sb, "%-6s %8d %8d %6d %7d | %12s | %12s %10s\n",
			r.Name, r.OrigNodes, r.SNNodes, r.RegsPerFile, r.Spills, paper, ours, cpu)
	}
	return sb.String()
}

// ScaleRow is one point of the CPU-time scaling study: covering effort
// versus block size, the growth behaviour behind the paper's CPU-time
// column (their exhaustive Ex5 ran for a CPU-day; the heuristics tame
// the multiplicative assignment space).
type ScaleRow struct {
	Name       string
	OrigNodes  int
	SNNodes    int
	Space      int // possible functional-unit assignments
	Cost       int
	HeurTime   time.Duration
	Exhaustive time.Duration // -1 duration when skipped
	ExhCost    int
}

// Scaling measures covering time against block size on the example
// architecture, optionally with the heuristics-off configuration for the
// smaller blocks.
func Scaling(maxTaps int, exhaustiveUpTo int) ([]ScaleRow, error) {
	var rows []ScaleRow
	for taps := 2; taps <= maxTaps; taps += 2 {
		w := FIR(taps)
		m := isdl.ExampleArch(4)
		d, err := sndag.Build(w.Block, m)
		if err != nil {
			return nil, err
		}
		row := ScaleRow{
			Name:       w.Name,
			OrigNodes:  len(w.Block.Nodes),
			SNNodes:    d.Counts.Total(),
			Space:      d.AssignmentSpace(),
			Exhaustive: -1,
			ExhCost:    -1,
		}
		cost, _, dt, err := runOne(w.Block, m, cover.DefaultOptions(), true)
		if err != nil {
			return nil, err
		}
		row.Cost, row.HeurTime = cost, dt
		if taps <= exhaustiveUpTo {
			opts := cover.ExhaustiveOptions()
			opts.MaxAssignments = 20000
			ecost, _, edt, err := runOne(w.Block, m, opts, true)
			if err != nil {
				return nil, err
			}
			row.Exhaustive, row.ExhCost = edt, ecost
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaling renders the scaling study.
func FormatScaling(rows []ScaleRow) string {
	var sb strings.Builder
	sb.WriteString("Covering effort vs block size (example architecture):\n")
	fmt.Fprintf(&sb, "%-8s %6s %8s %12s %7s %12s %14s\n",
		"block", "DAG#", "SN-DAG#", "assignments", "instrs", "heuristic", "exhaustive")
	for _, r := range rows {
		exh := "-"
		if r.Exhaustive >= 0 {
			exh = fmt.Sprintf("%v (%d)", r.Exhaustive.Round(time.Millisecond), r.ExhCost)
		}
		fmt.Fprintf(&sb, "%-8s %6d %8d %12d %7d %12v %14s\n",
			r.Name, r.OrigNodes, r.SNNodes, r.Space, r.Cost,
			r.HeurTime.Round(time.Millisecond), exh)
	}
	return sb.String()
}
