package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorOrdersBlocksAndCreditsWorkers(t *testing.T) {
	c := NewCollector(3)
	var wg sync.WaitGroup
	// Report out of order from concurrent goroutines.
	for i := 9; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.ReportBlock(i, i%3, BlockMetrics{
				Block:               "b" + string(rune('0'+i)),
				AssignmentsExplored: i,
				PeepholeSaved:       1,
				Spills:              2,
				Total:               time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	m := c.Finish()
	if len(m.Blocks) != 10 {
		t.Fatalf("got %d blocks, want 10", len(m.Blocks))
	}
	for i, b := range m.Blocks {
		if b.Block != "b"+string(rune('0'+i)) {
			t.Errorf("block %d out of order: %s", i, b.Block)
		}
		if b.Worker != i%3 {
			t.Errorf("block %d worker = %d, want %d", i, b.Worker, i%3)
		}
	}
	if got := m.TotalAssignments(); got != 45 {
		t.Errorf("TotalAssignments = %d, want 45", got)
	}
	if got := m.TotalPeepholeSaved(); got != 10 {
		t.Errorf("TotalPeepholeSaved = %d, want 10", got)
	}
	if got := m.TotalSpills(); got != 20 {
		t.Errorf("TotalSpills = %d, want 20", got)
	}
	if got := m.BusyTotal(); got != 10*time.Millisecond {
		t.Errorf("BusyTotal = %v, want 10ms", got)
	}
	if m.Parallelism != 3 {
		t.Errorf("Parallelism = %d, want 3", m.Parallelism)
	}
	if len(m.WorkerBusy) != 3 {
		t.Errorf("WorkerBusy len = %d, want 3", len(m.WorkerBusy))
	}
}

func TestPhaseTotalsAndUtilization(t *testing.T) {
	m := &CompileMetrics{
		Parallelism: 2,
		Wall:        100 * time.Millisecond,
		WorkerBusy:  []time.Duration{80 * time.Millisecond, 40 * time.Millisecond},
		Blocks: []BlockMetrics{
			{Cover: 10 * time.Millisecond, Peephole: time.Millisecond, Regalloc: 2 * time.Millisecond, Emit: 3 * time.Millisecond, Verify: time.Millisecond},
			{Cover: 20 * time.Millisecond, Peephole: 2 * time.Millisecond, Regalloc: 4 * time.Millisecond, Emit: 6 * time.Millisecond, Verify: 4 * time.Millisecond},
		},
	}
	cover, peep, ra, emit, verify := m.PhaseTotals()
	if cover != 30*time.Millisecond || peep != 3*time.Millisecond ||
		ra != 6*time.Millisecond || emit != 9*time.Millisecond || verify != 5*time.Millisecond {
		t.Errorf("PhaseTotals = %v %v %v %v %v", cover, peep, ra, emit, verify)
	}
	if u := m.Utilization(); u < 0.59 || u > 0.61 {
		t.Errorf("Utilization = %v, want 0.6", u)
	}
	// Degenerate metrics do not divide by zero.
	if u := new(CompileMetrics).Utilization(); u != 0 {
		t.Errorf("zero-value Utilization = %v, want 0", u)
	}
}

func TestStringReport(t *testing.T) {
	c := NewCollector(0) // clamps to 1
	c.ReportBlock(0, 0, BlockMetrics{Block: "entry", DAGNodes: 12, Instructions: 5, AssignmentsExplored: 7})
	m := c.Finish()
	s := m.String()
	for _, want := range []string{"parallelism 1", "block entry", "7 assignments", "phases:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
