package metrics

import "fmt"

// ClusterStats is the "cluster" section of an avivd node's /stats
// payload: a point-in-time view of the node's place in the compile
// cluster — ring membership and health as this node sees it, plus the
// peer-path counters (forwarding, cache peering, drain). It mirrors
// the "delta" section (CacheStats): a plain JSON-stable struct whose
// field names are a monitoring contract, pinned by shape tests.
type ClusterStats struct {
	// Self is this node's advertised URL on the hash ring.
	Self string `json:"self"`
	// Nodes is the configured ring membership size (self included);
	// Healthy is how many members this node currently believes are
	// serving (self included unless draining).
	Nodes   int `json:"nodes"`
	Healthy int `json:"healthy"`
	// Draining reports the node has begun its graceful drain: health
	// probes are answered 503 and locally held cache entries are being
	// bled to their ring owners.
	Draining bool `json:"draining"`
	// Forwarded counts compile requests this node answered by
	// forwarding to the key's owning shard; LocalFallbacks counts
	// requests compiled locally because the owner was unreachable.
	Forwarded      int64 `json:"forwarded"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	// PeerHits / PeerMisses count cache-entry fetches from owning
	// shards (a hit adopts the entry locally; every failure — absent,
	// unreachable, corrupt — is a miss).
	PeerHits   int64 `json:"peer_hits"`
	PeerMisses int64 `json:"peer_misses"`
	// PeerPushes counts entries sent to their owning shard
	// (write-through on compile plus drain bleeding); PeerRejects
	// counts transferred entries this node refused because the
	// checksummed framing did not verify.
	PeerPushes  int64 `json:"peer_pushes"`
	PeerRejects int64 `json:"peer_rejects"`
	// ForwardErrors counts peer RPCs that failed in transit (timeout,
	// connection refused, 5xx) — each degrades to a local compile or a
	// cache miss, never an error response.
	ForwardErrors int64 `json:"forward_errors"`
	// Drained counts cache entries bled to their owners during drain.
	Drained int64 `json:"drained"`
}

// String renders the one-line "cluster:" report used by avivbench
// -cluster and scraped by tooling; the shape is pinned by
// TestClusterStatsStringShape.
func (s ClusterStats) String() string {
	return fmt.Sprintf(
		"cluster: %d/%d nodes healthy, %d forwarded, %d local fallbacks; "+
			"peer %d/%d hit/miss, %d pushed, %d rejected, %d forward errors, %d drained",
		s.Healthy, s.Nodes, s.Forwarded, s.LocalFallbacks,
		s.PeerHits, s.PeerMisses, s.PeerPushes, s.PeerRejects,
		s.ForwardErrors, s.Drained)
}
