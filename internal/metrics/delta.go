package metrics

import "fmt"

// CacheStats is a point-in-time snapshot of the incremental (delta)
// compile path's block-artifact cache, per tier. The memory tier holds
// finished per-block artifacts (post-peephole covering + emitted code);
// the disk tier holds serialized coverings under the same context
// fingerprints. Stitched = MemHits + DiskHits and
// Stitched + Recompiled = blocks compiled through the engine, so the
// blocks-recompiled ratio of an edit stream is Recompiled / (Stitched +
// Recompiled).
//
// The struct is shared monitoring vocabulary: internal/delta produces
// it, avivcc -stats prints String(), and avivd /stats embeds it as the
// "delta" section — the JSON field names below are that endpoint's
// contract (pinned by tests in internal/metrics and internal/server).
type CacheStats struct {
	// Entries is the current artifact count in the memory tier.
	Entries int64 `json:"entries"`
	// MemHits / MemMisses count block lookups against the in-memory
	// artifact tier.
	MemHits   int64 `json:"mem_hits"`
	MemMisses int64 `json:"mem_misses"`
	// DiskHits / DiskMisses count lookups that fell through to the
	// persistent tier (only misses of the memory tier get this far; an
	// engine with no store counts neither).
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	// Stitched counts blocks served from either tier without re-running
	// the covering search.
	Stitched int64 `json:"stitched"`
	// Recompiled counts blocks that went through the full per-block
	// pipeline because no tier had their context fingerprint.
	Recompiled int64 `json:"recompiled"`
	// Invalidations counts persistent entries that read back clean but
	// failed to decode or rebuild, and were deleted (deletion-as-miss).
	Invalidations int64 `json:"invalidations"`
	// Evictions counts memory-tier artifacts dropped to respect the
	// entry cap.
	Evictions int64 `json:"evictions"`
}

// StitchRate returns stitched / (stitched + recompiled), or 0 before
// any block was compiled.
func (s CacheStats) StitchRate() float64 {
	if s.Stitched+s.Recompiled == 0 {
		return 0
	}
	return float64(s.Stitched) / float64(s.Stitched+s.Recompiled)
}

// String formats the single "delta:" line of the -stats reports.
func (s CacheStats) String() string {
	return fmt.Sprintf(
		"delta: %d stitched (%d mem, %d disk), %d recompiled, %.0f%% stitch rate; mem %d/%d hit/miss, disk %d/%d hit/miss, %d invalidated, %d evicted, %d entries",
		s.Stitched, s.MemHits, s.DiskHits, s.Recompiled, 100*s.StitchRate(),
		s.MemHits, s.MemMisses, s.DiskHits, s.DiskMisses,
		s.Invalidations, s.Evictions, s.Entries)
}
