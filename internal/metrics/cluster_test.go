package metrics

import (
	"encoding/json"
	"testing"
)

// TestClusterStatsStringShape pins the "cluster:" line of the avivbench
// -cluster report verbatim, like TestCacheStatsStringShape does for the
// delta line.
func TestClusterStatsStringShape(t *testing.T) {
	s := ClusterStats{
		Self:           "http://n1:8377",
		Nodes:          4,
		Healthy:        3,
		Forwarded:      120,
		LocalFallbacks: 2,
		PeerHits:       40,
		PeerMisses:     8,
		PeerPushes:     33,
		PeerRejects:    1,
		ForwardErrors:  3,
		Drained:        5,
	}
	want := "cluster: 3/4 nodes healthy, 120 forwarded, 2 local fallbacks; " +
		"peer 40/8 hit/miss, 33 pushed, 1 rejected, 3 forward errors, 5 drained"
	if got := s.String(); got != want {
		t.Fatalf("ClusterStats.String() =\n%q\nwant\n%q", got, want)
	}
}

// TestClusterStatsJSONShape pins the field names of the /stats
// "cluster" section — the endpoint's monitoring contract, mirroring
// TestCacheStatsJSONShape for the "delta" section.
func TestClusterStatsJSONShape(t *testing.T) {
	data, err := json.Marshal(ClusterStats{
		Self: "n", Nodes: 1, Healthy: 2, Draining: true,
		Forwarded: 3, LocalFallbacks: 4, PeerHits: 5, PeerMisses: 6,
		PeerPushes: 7, PeerRejects: 8, ForwardErrors: 9, Drained: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"self":"n","nodes":1,"healthy":2,"draining":true,` +
		`"forwarded":3,"local_fallbacks":4,"peer_hits":5,"peer_misses":6,` +
		`"peer_pushes":7,"peer_rejects":8,"forward_errors":9,"drained":10}`
	if string(data) != want {
		t.Fatalf("ClusterStats JSON =\n%s\nwant\n%s", data, want)
	}
}
