package metrics

import "sync/atomic"

// ServerCounters tracks a running avivd compile server. All fields are
// updated atomically by concurrent request handlers; Snapshot returns a
// consistent-enough point-in-time view for the /stats endpoint (each
// counter is read atomically; cross-counter skew of in-flight requests
// is acceptable for monitoring).
type ServerCounters struct {
	// Requests counts compile requests accepted for processing
	// (excludes shed requests).
	Requests atomic.Int64
	// Completed counts requests that finished with a compile result.
	Completed atomic.Int64
	// Errors counts requests whose compilation failed.
	Errors atomic.Int64
	// Deduped counts requests answered by piggybacking on an identical
	// in-flight compile (single-flight hits).
	Deduped atomic.Int64
	// Shed counts requests rejected with 429 because the queue was full.
	Shed atomic.Int64
	// Timeouts counts requests that exceeded the per-request deadline.
	Timeouts atomic.Int64
	// Abandoned counts in-flight compiles cancelled because every
	// waiting request gave up (timed out or disconnected) before the
	// result arrived.
	Abandoned atomic.Int64
	// Inflight is the number of requests currently being processed.
	Inflight atomic.Int64
	// Queued is the number of requests waiting for a worker slot.
	Queued atomic.Int64
	// MachinesInterned counts distinct machine descriptions parsed and
	// cached by the interner.
	MachinesInterned atomic.Int64
	// BlocksStitched counts basic blocks served from the delta engine's
	// artifact tiers across all requests (0 when the server runs without
	// the incremental path).
	BlocksStitched atomic.Int64
	// BlocksRecompiled counts basic blocks the delta engine had to push
	// through the full per-block pipeline.
	BlocksRecompiled atomic.Int64
	// DeltaInvalidations counts persistent block entries the delta
	// engine deleted because they no longer decoded (deletion-as-miss).
	DeltaInvalidations atomic.Int64
	// Forwarded counts compile requests answered by forwarding to the
	// owning cluster shard; LocalFallbacks counts requests compiled
	// locally because the owning shard was unreachable. Both stay 0 on
	// a node running outside a cluster.
	Forwarded      atomic.Int64
	LocalFallbacks atomic.Int64
	// PeerHits / PeerMisses count cache entries fetched from (or
	// missed at) the owning shard over the wire.
	PeerHits   atomic.Int64
	PeerMisses atomic.Int64
	// ForwardErrors counts peer RPCs that failed in transit; each
	// degrades to a local compile or a cache miss, never an error.
	ForwardErrors atomic.Int64
	// Drained counts cache entries bled to their ring owners during a
	// graceful drain.
	Drained atomic.Int64
}

// ServerSnapshot is the JSON shape of ServerCounters for /stats.
type ServerSnapshot struct {
	Requests         int64 `json:"requests"`
	Completed        int64 `json:"completed"`
	Errors           int64 `json:"errors"`
	Deduped          int64 `json:"deduped"`
	Shed             int64 `json:"shed"`
	Timeouts         int64 `json:"timeouts"`
	Abandoned        int64 `json:"abandoned"`
	Inflight         int64 `json:"inflight"`
	Queued           int64 `json:"queued"`
	MachinesInterned int64 `json:"machines_interned"`
	// The three delta counters stay 0 (but present, for a stable shape)
	// when the server runs without the incremental compile path.
	BlocksStitched     int64 `json:"blocks_stitched"`
	BlocksRecompiled   int64 `json:"blocks_recompiled"`
	DeltaInvalidations int64 `json:"delta_invalidations"`
	// The cluster counters likewise stay 0 (but present) on a node
	// running outside a cluster.
	Forwarded      int64 `json:"forwarded"`
	LocalFallbacks int64 `json:"local_fallbacks"`
	PeerHits       int64 `json:"peer_hits"`
	PeerMisses     int64 `json:"peer_misses"`
	ForwardErrors  int64 `json:"forward_errors"`
	Drained        int64 `json:"drained"`
}

// Snapshot reads every counter atomically.
func (c *ServerCounters) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		Requests:           c.Requests.Load(),
		Completed:          c.Completed.Load(),
		Errors:             c.Errors.Load(),
		Deduped:            c.Deduped.Load(),
		Shed:               c.Shed.Load(),
		Timeouts:           c.Timeouts.Load(),
		Abandoned:          c.Abandoned.Load(),
		Inflight:           c.Inflight.Load(),
		Queued:             c.Queued.Load(),
		MachinesInterned:   c.MachinesInterned.Load(),
		BlocksStitched:     c.BlocksStitched.Load(),
		BlocksRecompiled:   c.BlocksRecompiled.Load(),
		DeltaInvalidations: c.DeltaInvalidations.Load(),
		Forwarded:          c.Forwarded.Load(),
		LocalFallbacks:     c.LocalFallbacks.Load(),
		PeerHits:           c.PeerHits.Load(),
		PeerMisses:         c.PeerMisses.Load(),
		ForwardErrors:      c.ForwardErrors.Load(),
		Drained:            c.Drained.Load(),
	}
}

// DedupRate returns deduped / (requests), or 0 before any request.
func (s ServerSnapshot) DedupRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Deduped) / float64(s.Requests)
}
