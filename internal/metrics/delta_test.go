package metrics

import (
	"encoding/json"
	"testing"
)

// TestCacheStatsStringShape pins the "delta:" line of avivcc -stats /
// avivbench -edit verbatim: tooling that scrapes the reports depends on
// this exact shape.
func TestCacheStatsStringShape(t *testing.T) {
	s := CacheStats{
		Entries:       56,
		MemHits:       144,
		MemMisses:     56,
		DiskHits:      3,
		DiskMisses:    53,
		Stitched:      147,
		Recompiled:    49,
		Invalidations: 2,
		Evictions:     1,
	}
	want := "delta: 147 stitched (144 mem, 3 disk), 49 recompiled, 75% stitch rate; " +
		"mem 144/56 hit/miss, disk 3/53 hit/miss, 2 invalidated, 1 evicted, 56 entries"
	if got := s.String(); got != want {
		t.Fatalf("CacheStats.String() =\n%q\nwant\n%q", got, want)
	}
	if got := (CacheStats{}).StitchRate(); got != 0 {
		t.Fatalf("zero-value StitchRate() = %v, want 0", got)
	}
}

// TestCacheStatsJSONShape pins the field names of the /stats "delta"
// section — the endpoint's monitoring contract.
func TestCacheStatsJSONShape(t *testing.T) {
	data, err := json.Marshal(CacheStats{Entries: 1, MemHits: 2, MemMisses: 3,
		DiskHits: 4, DiskMisses: 5, Stitched: 6, Recompiled: 7, Invalidations: 8, Evictions: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"entries":1,"mem_hits":2,"mem_misses":3,"disk_hits":4,"disk_misses":5,` +
		`"stitched":6,"recompiled":7,"invalidations":8,"evictions":9}`
	if string(data) != want {
		t.Fatalf("CacheStats JSON =\n%s\nwant\n%s", data, want)
	}
}

// TestServerSnapshotHasDeltaCounters pins the ServerSnapshot field set:
// the delta and cluster counters must be present (as zeros) even on a
// server run without the engine or outside a cluster, so dashboards see
// a stable shape.
func TestServerSnapshotHasDeltaCounters(t *testing.T) {
	var c ServerCounters
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"blocks_stitched", "blocks_recompiled", "delta_invalidations",
		"forwarded", "local_fallbacks", "peer_hits", "peer_misses",
		"forward_errors", "drained",
	} {
		if _, ok := m[field]; !ok {
			t.Fatalf("ServerSnapshot JSON lacks %q: %s", field, data)
		}
	}
}
