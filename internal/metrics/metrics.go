// Package metrics collects per-block and per-phase counters and timings
// for a compilation run: covering effort (assignments explored), peephole
// savings, wall time per back-end phase, and worker utilization of the
// parallel block-compilation pipeline. The numbers feed the -stats output
// of cmd/avivcc and cmd/avivbench and the scaling studies.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// BlockMetrics records the compilation effort spent on one basic block.
type BlockMetrics struct {
	// Block is the basic-block name.
	Block string
	// Worker is the index of the pipeline worker that compiled the
	// block (0 for the serial path).
	Worker int

	// DAGNodes is the Split-Node DAG size (the paper's "#Nodes" metric).
	DAGNodes int
	// Instructions is the covered block body size (code-size objective).
	Instructions int
	// Spills counts values spilled to memory by the covering.
	Spills int
	// AssignmentsExplored counts complete functional-unit assignments
	// covered in detail (Sec. IV-A beam).
	AssignmentsExplored int
	// PeepholeSaved counts instructions removed by the peephole pass.
	PeepholeSaved int
	// PrunedStores counts stores removed before covering because global
	// liveness proved them dead past the block (cover.Options.LiveOut).
	PrunedStores int
	// PrunedAssignments counts assignments the covering skipped by
	// branch-and-bound (admissible lower bound above the incumbent).
	PrunedAssignments int
	// MemoHits counts coverings answered by the intra-search memo
	// (structurally identical solution graphs within one block).
	MemoHits int
	// CacheHit reports the whole covering came from the compile cache
	// (either tier).
	CacheHit bool
	// DiskHit reports the covering was deserialized from the persistent
	// cache tier (implies CacheHit).
	DiskHit bool
	// Violations counts translation-validation diagnostics flagged on the
	// block (always 0 on a successful compile with verification on).
	Violations int

	// Per-phase wall time.
	Cover    time.Duration // Split-Node DAG build + concurrent covering
	Peephole time.Duration // post-allocation cleanup pass
	Regalloc time.Duration // detailed register allocation
	Emit     time.Duration // assembly emission
	Verify   time.Duration // static translation validation
	// Total is the whole per-block pipeline, including overhead not
	// attributed to a named phase.
	Total time.Duration
}

// AnalysisMetrics records wall time and output counts of the global
// dataflow analyses (package dataflow). For a Compile run only Liveness
// is populated (the only analysis the back end consumes); the -analyze
// diagnostics pass fills in all four plus the diagnostic count.
type AnalysisMetrics struct {
	Liveness       time.Duration
	ReachingDefs   time.Duration
	AvailableExprs time.Duration
	Dominators     time.Duration
	// Diagnostics counts program diagnostics produced by the diag pass.
	Diagnostics int
}

// Total sums the per-analysis wall times.
func (a AnalysisMetrics) Total() time.Duration {
	return a.Liveness + a.ReachingDefs + a.AvailableExprs + a.Dominators
}

// CompileMetrics aggregates a whole-function compilation.
type CompileMetrics struct {
	// Blocks holds per-block metrics in original (source) block order,
	// regardless of the order workers finished in.
	Blocks []BlockMetrics
	// Parallelism is the worker-pool size used (1 = serial path).
	Parallelism int
	// Wall is the end-to-end Compile wall time.
	Wall time.Duration
	// WorkerBusy is the per-worker busy time, indexed by worker.
	WorkerBusy []time.Duration
	// Analysis records the global dataflow analysis work done up front
	// (before the per-block pipeline runs).
	Analysis AnalysisMetrics
}

// TotalAssignments sums assignments explored across blocks.
func (m *CompileMetrics) TotalAssignments() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.AssignmentsExplored
	}
	return n
}

// TotalPeepholeSaved sums instructions removed by the peephole pass.
func (m *CompileMetrics) TotalPeepholeSaved() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.PeepholeSaved
	}
	return n
}

// TotalPrunedStores sums stores pruned by liveness across blocks.
func (m *CompileMetrics) TotalPrunedStores() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.PrunedStores
	}
	return n
}

// TotalPrunedAssignments sums branch-and-bound-pruned assignments.
func (m *CompileMetrics) TotalPrunedAssignments() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.PrunedAssignments
	}
	return n
}

// TotalMemoHits sums intra-search memo hits across blocks.
func (m *CompileMetrics) TotalMemoHits() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.MemoHits
	}
	return n
}

// CacheHits counts blocks served entirely from the compile cache.
func (m *CompileMetrics) CacheHits() int {
	n := 0
	for _, b := range m.Blocks {
		if b.CacheHit {
			n++
		}
	}
	return n
}

// DiskHits counts blocks served from the persistent cache tier.
func (m *CompileMetrics) DiskHits() int {
	n := 0
	for _, b := range m.Blocks {
		if b.DiskHit {
			n++
		}
	}
	return n
}

// TotalSpills sums spills across blocks.
func (m *CompileMetrics) TotalSpills() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.Spills
	}
	return n
}

// PhaseTotals sums the per-phase block times across the function.
func (m *CompileMetrics) PhaseTotals() (cover, peephole, regalloc, emit, verify time.Duration) {
	for _, b := range m.Blocks {
		cover += b.Cover
		peephole += b.Peephole
		regalloc += b.Regalloc
		emit += b.Emit
		verify += b.Verify
	}
	return
}

// TotalViolations sums translation-validation diagnostics across blocks.
func (m *CompileMetrics) TotalViolations() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.Violations
	}
	return n
}

// BusyTotal sums worker busy time — the CPU time the pipeline spent
// compiling blocks.
func (m *CompileMetrics) BusyTotal() time.Duration {
	var t time.Duration
	for _, d := range m.WorkerBusy {
		t += d
	}
	return t
}

// Utilization is the fraction of the pool's wall-clock capacity spent
// busy: BusyTotal / (Parallelism * Wall). 1.0 means every worker was
// compiling for the whole run; low values mean the pool was starved
// (few blocks, or one straggler block dominating).
func (m *CompileMetrics) Utilization() float64 {
	if m.Parallelism <= 0 || m.Wall <= 0 {
		return 0
	}
	return float64(m.BusyTotal()) / (float64(m.Parallelism) * float64(m.Wall))
}

// String formats the metrics as the multi-line report printed by the
// -stats flags.
func (m *CompileMetrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "compile: %d blocks, parallelism %d, wall %v, utilization %.0f%%\n",
		len(m.Blocks), m.Parallelism, m.Wall.Round(time.Microsecond), 100*m.Utilization())
	cover, peep, ra, emit, verify := m.PhaseTotals()
	fmt.Fprintf(&sb, "phases:  cover %v, peephole %v, regalloc %v, emit %v, verify %v (cpu across workers)\n",
		cover.Round(time.Microsecond), peep.Round(time.Microsecond),
		ra.Round(time.Microsecond), emit.Round(time.Microsecond), verify.Round(time.Microsecond))
	if m.Analysis.Total() > 0 || m.Analysis.Diagnostics > 0 {
		fmt.Fprintf(&sb, "analyze: liveness %v, reachdefs %v, avail %v, dom %v, %d diagnostics\n",
			m.Analysis.Liveness.Round(time.Microsecond),
			m.Analysis.ReachingDefs.Round(time.Microsecond),
			m.Analysis.AvailableExprs.Round(time.Microsecond),
			m.Analysis.Dominators.Round(time.Microsecond),
			m.Analysis.Diagnostics)
	}
	fmt.Fprintf(&sb, "effort:  %d assignments explored, %d spills, %d instrs saved by peephole, %d stores pruned by liveness, %d verifier violations\n",
		m.TotalAssignments(), m.TotalSpills(), m.TotalPeepholeSaved(), m.TotalPrunedStores(), m.TotalViolations())
	fmt.Fprintf(&sb, "search:  %d assignments pruned by lower bound, %d memo hits, %d/%d blocks from compile cache (%d via disk tier)\n",
		m.TotalPrunedAssignments(), m.TotalMemoHits(), m.CacheHits(), len(m.Blocks), m.DiskHits())
	for _, b := range m.Blocks {
		fmt.Fprintf(&sb, "block %-10s w%-2d %4d SN-DAG nodes, %3d instrs, %2d spills, %6d assignments, peephole -%d, %v\n",
			b.Block, b.Worker, b.DAGNodes, b.Instructions, b.Spills,
			b.AssignmentsExplored, b.PeepholeSaved, b.Total.Round(time.Microsecond))
	}
	return sb.String()
}

// Collector accumulates block metrics from concurrently running pipeline
// workers. All methods are safe for concurrent use.
type Collector struct {
	mu          sync.Mutex
	parallelism int
	start       time.Time
	blocks      map[int]BlockMetrics // keyed by original block index
	busy        []time.Duration
}

// NewCollector starts a collection for a run with the given worker-pool
// size. The wall clock starts immediately.
func NewCollector(parallelism int) *Collector {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Collector{
		parallelism: parallelism,
		start:       time.Now(),
		blocks:      make(map[int]BlockMetrics),
		busy:        make([]time.Duration, parallelism),
	}
}

// ReportBlock records the metrics for the block at the given original
// index, compiled by the given worker, and credits the worker's busy time.
func (c *Collector) ReportBlock(index, worker int, bm BlockMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bm.Worker = worker
	c.blocks[index] = bm
	if worker >= 0 && worker < len(c.busy) {
		c.busy[worker] += bm.Total
	}
}

// Finish stops the wall clock and returns the aggregated metrics, with
// blocks restored to original order.
func (c *Collector) Finish() *CompileMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &CompileMetrics{
		Parallelism: c.parallelism,
		Wall:        time.Since(c.start),
		WorkerBusy:  append([]time.Duration(nil), c.busy...),
	}
	idxs := make([]int, 0, len(c.blocks))
	for i := range c.blocks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		m.Blocks = append(m.Blocks, c.blocks[i])
	}
	return m
}

// Timer measures one phase: call Phase around the phase body, or Start /
// the returned stop func for manual control.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
