// Global (whole-function) optimizations built on the dataflow
// framework: dead-store elimination driven by cross-block liveness and
// common-subexpression elimination driven by available expressions.
// These subsume the block-local deadStores scan for cross-block cases —
// a store whose variable is overwritten in every successor path before
// any load no longer survives just because the overwrite is in another
// block.

package opt

import (
	"aviv/internal/dataflow"
	"aviv/internal/ir"
)

// globalOptimize runs the dataflow-driven passes to a fixpoint. Each
// accepted rewrite strictly shrinks the function (fewer stores, or
// fewer computation nodes at no store increase), so the loop
// terminates.
func globalOptimize(f *ir.Func) {
	for {
		changed := globalDeadStores(f)
		if globalCSE(f) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// globalDeadStores removes stores that global liveness proves dead: the
// variable is overwritten on every path from the store before any load
// and before function exit (final memory is observable, so a value that
// can reach the exit is never dead). Reports whether anything changed.
func globalDeadStores(f *ir.Func) bool {
	changed := false
	for {
		live := dataflow.Liveness(f)
		outs := live.OutSets()
		round := false
		for i, b := range f.Blocks {
			nb, pruned := dataflow.PruneBlock(b, outs[i])
			if pruned > 0 {
				f.Blocks[i] = nb
				round = true
			}
		}
		if !round {
			return changed
		}
		changed = true
		// Removing stores shrinks use sets, which can kill more stores
		// upstream; recompute liveness and go again.
	}
}

// globalCSE replaces a computation whose value is provably held in a
// memory location at block entry (available-expressions analysis) with
// a load of that location. A rewrite is only kept when it makes the
// block strictly smaller — fewer computation nodes without growing the
// node count — so bench code size can only improve.
func globalCSE(f *ir.Func) bool {
	avail := dataflow.Available(f)
	if len(avail.Facts) == 0 {
		return false
	}
	g := avail.G
	changed := false
	for i, b := range f.Blocks {
		if i == 0 || !g.Reach[i] {
			continue // nothing is available at entry; skip dead islands
		}
		byExpr := make(map[string]string) // expr key -> smallest source var
		for _, fact := range avail.InFacts(i) {
			if v, ok := byExpr[fact.Expr]; !ok || fact.Var < v {
				byExpr[fact.Expr] = fact.Var
			}
		}
		if len(byExpr) == 0 {
			continue
		}
		if nb, ok := rewriteBlockCSE(b, byExpr); ok {
			f.Blocks[i] = nb
			changed = true
		}
	}
	return changed
}

// rewriteBlockCSE re-emits b replacing eligible computations with loads
// of the memory locations known (at block entry) to hold their value.
// It returns ok=false when no eligible rewrite exists or when the
// rewritten block is not strictly smaller.
func rewriteBlockCSE(b *ir.Block, byExpr map[string]string) (*ir.Block, bool) {
	// firstStore[v] = node index of the first store to v in b.
	firstStore := make(map[string]int)
	for idx, n := range b.Nodes {
		if n.Op == ir.OpStore {
			if _, ok := firstStore[n.Var]; !ok {
				firstStore[n.Var] = idx
			}
		}
	}
	entryValue := func(idx int, vars []string) bool {
		// An expression over loads of vars evaluates to its entry-value
		// meaning at node position idx only if none of those variables
		// has been stored earlier in the block.
		for _, v := range vars {
			if fs, ok := firstStore[v]; ok && fs < idx {
				return false
			}
		}
		return true
	}

	rewrites := make(map[*ir.Node]string) // computation node -> source var to load
	for idx, n := range b.Nodes {
		if n.Op == ir.OpConst || n.Op == ir.OpLoad || n.Op == ir.OpStore {
			continue
		}
		key, vars, ok := dataflow.ExprKey(n)
		if !ok {
			continue
		}
		src, ok := byExpr[key]
		if !ok {
			continue
		}
		// The node must compute over entry values, and the source
		// location must still hold its entry value at this point.
		if !entryValue(idx, vars) {
			continue
		}
		if fs, ok := firstStore[src]; ok && fs < idx {
			continue
		}
		rewrites[n] = src
	}
	if len(rewrites) == 0 {
		return nil, false
	}

	nb := ir.NewBuilder(b.Name)
	newOf := make(map[*ir.Node]*ir.Node, len(b.Nodes))
	for _, n := range b.Nodes {
		if src, ok := rewrites[n]; ok {
			newOf[n] = nb.Load(src)
			continue
		}
		switch n.Op {
		case ir.OpConst:
			newOf[n] = nb.Const(n.Const)
		case ir.OpLoad:
			newOf[n] = nb.Load(n.Var)
		case ir.OpStore:
			nb.Store(n.Var, newOf[n.Args[0]])
		default:
			args := make([]*ir.Node, len(n.Args))
			for j, a := range n.Args {
				args[j] = newOf[a]
			}
			newOf[n] = emitSimplified(nb, n.Op, args)
		}
	}
	switch b.Term {
	case ir.TermBranch:
		nb.Branch(newOf[b.Cond], b.Succs[0], b.Succs[1])
	case ir.TermJump:
		nb.Jump(b.Succs[0])
	case ir.TermReturn:
		nb.Return()
	default:
		nb.Block.Term = b.Term
		nb.Block.Succs = append([]string(nil), b.Succs...)
	}
	out := nb.Finish()
	// Accept only a strict improvement: replacing an op with a load must
	// make the op's operand subtree (partially) dead, or the rewrite
	// trades computation for memory traffic for nothing.
	if compCount(out) < compCount(b) && len(out.Nodes) < len(b.Nodes) {
		return out, true
	}
	return nil, false
}

// compCount counts computation nodes (everything that needs a
// functional unit: not a leaf, not a store).
func compCount(b *ir.Block) int {
	n := 0
	for _, nd := range b.Nodes {
		if !nd.Op.IsLeaf() && nd.Op != ir.OpStore {
			n++
		}
	}
	return n
}
