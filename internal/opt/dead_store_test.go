package opt

import (
	"testing"

	"aviv/internal/ir"
)

// countStores returns how many stores to name the block contains.
func countStores(b *ir.Block, name string) int {
	n := 0
	for _, nd := range b.Nodes {
		if nd.Op == ir.OpStore && nd.Var == name {
			n++
		}
	}
	return n
}

// TestDeadStoreWithInterveningLoad is the regression test for the
// deadStores miscount: when the same address is stored twice in one
// block with an intervening load, the first store is kept because the
// load appears to observe it — but when the load's only consumer is
// itself a dead store, the first store is dead too, and a single
// optimizeBlock pass used to leave it behind (deadStores was computed
// on the pre-forwarding block and never revisited).
//
// Block under test (node order = execution order):
//
//	store x <- 1
//	load x            ; forwarded away during re-emission
//	store y <- load x ; dead: overwritten by the last store below
//	store x <- 2      ; overwrites the first store of x
//	store y <- 3
//
// After the dead store of y is dropped and the load forwarded, the
// first store of x is overwritten with no intervening load, so exactly
// one store of x (value 2) and one store of y (value 3) must survive.
func TestDeadStoreWithInterveningLoad(t *testing.T) {
	b := ir.NewBlock("b")
	c1 := b.NewConst(1)
	b.NewStore("x", c1)
	l := b.NewLoad("x")
	b.NewStore("y", l)
	c2 := b.NewConst(2)
	b.NewStore("x", c2)
	c3 := b.NewConst(3)
	b.NewStore("y", c3)
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}

	nb := optimizeBlock(b)
	if got := countStores(nb, "x"); got != 1 {
		t.Errorf("stores of x after optimizeBlock = %d, want 1\n%s", got, nb)
	}
	if got := countStores(nb, "y"); got != 1 {
		t.Errorf("stores of y after optimizeBlock = %d, want 1\n%s", got, nb)
	}
	// The surviving stores must carry the final values.
	for _, n := range nb.Nodes {
		if n.Op == ir.OpStore {
			if n.Args[0].Op != ir.OpConst {
				t.Errorf("store of %s kept non-constant value %s", n.Var, n.Args[0])
				continue
			}
			want := map[string]int64{"x": 2, "y": 3}[n.Var]
			if n.Args[0].Const != want {
				t.Errorf("store of %s keeps value %d, want %d", n.Var, n.Args[0].Const, want)
			}
		}
	}
	// Semantics must be preserved: both blocks leave the same memory.
	memA := map[string]int64{"x": 7, "y": 8}
	memB := map[string]int64{"x": 7, "y": 8}
	if _, err := ir.EvalBlock(b, memA); err != nil {
		t.Fatal(err)
	}
	if _, err := ir.EvalBlock(nb, memB); err != nil {
		t.Fatal(err)
	}
	for k, v := range memA {
		if memB[k] != v {
			t.Errorf("mem[%s] = %d after optimization, want %d", k, memB[k], v)
		}
	}
}

// TestDeadStoreCascade checks the fixpoint behaviour on a chain of
// read-modify-write updates: x = x+1 three times, hand-built so the
// intermediate loads sit between the stores. Every intermediate store
// is dead once its load is forwarded; only the last survives.
func TestDeadStoreCascade(t *testing.T) {
	b := ir.NewBlock("b")
	cur := b.NewLoad("x")
	for i := 0; i < 3; i++ {
		one := b.NewConst(1)
		sum := b.NewNode(ir.OpAdd, cur, one)
		b.NewStore("x", sum)
		if i < 2 {
			cur = b.NewLoad("x")
		}
	}
	if err := b.Verify(); err != nil {
		t.Fatal(err)
	}
	nb := optimizeBlock(b)
	if got := countStores(nb, "x"); got != 1 {
		t.Errorf("stores of x after optimizeBlock = %d, want 1\n%s", got, nb)
	}
	mem := map[string]int64{"x": 10}
	if _, err := ir.EvalBlock(nb, mem); err != nil {
		t.Fatal(err)
	}
	if mem["x"] != 13 {
		t.Errorf("x = %d after optimized block, want 13", mem["x"])
	}
}
