// Package opt implements the machine-independent optimizations the
// paper's front end performs before retargetable code generation
// (Sec. II): constant folding, algebraic simplification, local common
// subexpression elimination, dead store and dead code elimination,
// constant branch folding, unreachable block removal, and empty-block
// jump threading. Loop unrolling lives in package lang (it is an
// AST-level transformation there).
package opt

import (
	"aviv/internal/ir"
)

// Optimize returns an optimized copy of the function. The input is not
// modified.
func Optimize(f *ir.Func) *ir.Func {
	out := &ir.Func{Name: f.Name}
	for _, b := range f.Blocks {
		out.Blocks = append(out.Blocks, reassociateBlock(optimizeBlock(b)))
	}
	foldBranches(out)
	threadJumps(out)
	removeUnreachable(out)
	mergeBlocks(out)
	// Merging exposes new local folding (stores feeding loads across the
	// former block boundary) and new chains; one more pass picks them up.
	for i, b := range out.Blocks {
		out.Blocks[i] = reassociateBlock(optimizeBlock(b))
	}
	// Whole-function passes over the dataflow framework: cross-block
	// dead-store elimination and common-subexpression elimination.
	globalOptimize(out)
	return out
}

// mergeBlocks merges a block into its jump-only successor when that
// successor has no other predecessors, growing basic blocks (and with
// them the scope of the DAG covering — bigger blocks are exactly what
// the paper's front end aims for).
func mergeBlocks(f *ir.Func) {
	for {
		preds := make(map[string]int)
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				preds[s]++
			}
		}
		merged := false
		for _, b := range f.Blocks {
			if b.Term != ir.TermJump {
				continue
			}
			succ := b.Succs[0]
			if succ == b.Name || preds[succ] != 1 {
				continue
			}
			if len(f.Blocks) > 0 && succ == f.Blocks[0].Name {
				continue // the entry block has an implicit predecessor
			}
			c := f.Block(succ)
			if c == nil {
				continue
			}
			replaceWithMerge(f, b, c)
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

// replaceWithMerge re-emits b followed by c as one block named after b,
// and removes c from the function.
func replaceWithMerge(f *ir.Func, b, c *ir.Block) {
	bb := ir.NewBuilder(b.Name)
	newOf := make(map[*ir.Node]*ir.Node)
	emit := func(blk *ir.Block) {
		for _, n := range blk.Nodes {
			switch n.Op {
			case ir.OpConst:
				newOf[n] = bb.Const(n.Const)
			case ir.OpLoad:
				newOf[n] = bb.Load(n.Var)
			case ir.OpStore:
				bb.Store(n.Var, newOf[n.Args[0]])
			default:
				args := make([]*ir.Node, len(n.Args))
				for j, a := range n.Args {
					args[j] = newOf[a]
				}
				newOf[n] = emitSimplified(bb, n.Op, args)
			}
		}
	}
	emit(b)
	emit(c)
	switch c.Term {
	case ir.TermBranch:
		bb.Branch(newOf[c.Cond], c.Succs[0], c.Succs[1])
	case ir.TermJump:
		bb.Jump(c.Succs[0])
	case ir.TermReturn:
		bb.Return()
	default:
		bb.Block.Term = c.Term
		bb.Block.Succs = append([]string(nil), c.Succs...)
	}
	nb := bb.Finish()
	for i, blk := range f.Blocks {
		if blk == b {
			f.Blocks[i] = nb
		}
	}
	for i, blk := range f.Blocks {
		if blk == c {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
}

// optimizeBlock re-emits the block through a fresh builder until no
// dead stores remain. A single re-emission is not enough: deadStores is
// computed on the input block, where a load between two stores of the
// same variable keeps the first store alive even when that load only
// feeds a store that is itself dead — and once the dead consumer is
// dropped and the load forwarded away, the first store is exposed as
// dead too. Each round removes at least one store, so the loop
// terminates.
func optimizeBlock(b *ir.Block) *ir.Block {
	for {
		nb := optimizeBlockOnce(b)
		if len(deadStores(nb)) == 0 {
			return nb
		}
		b = nb
	}
}

// optimizeBlockOnce re-emits the block through a fresh builder, applying
// constant folding and algebraic simplification per node; the builder's
// hash-consing provides CSE and Finish removes dead code. Dead stores
// (overwritten within the block with no intervening load) are dropped.
func optimizeBlockOnce(b *ir.Block) *ir.Block {
	dead := deadStores(b)
	bb := ir.NewBuilder(b.Name)
	newOf := make(map[*ir.Node]*ir.Node, len(b.Nodes))
	for i, n := range b.Nodes {
		switch n.Op {
		case ir.OpConst:
			newOf[n] = bb.Const(n.Const)
		case ir.OpLoad:
			newOf[n] = bb.Load(n.Var)
		case ir.OpStore:
			if dead[i] {
				continue
			}
			bb.Store(n.Var, newOf[n.Args[0]])
		default:
			args := make([]*ir.Node, len(n.Args))
			for j, a := range n.Args {
				args[j] = newOf[a]
			}
			newOf[n] = emitSimplified(bb, n.Op, args)
		}
	}
	switch b.Term {
	case ir.TermBranch:
		bb.Branch(newOf[b.Cond], b.Succs[0], b.Succs[1])
	case ir.TermJump:
		bb.Jump(b.Succs[0])
	case ir.TermReturn:
		bb.Return()
	default:
		bb.Block.Term = b.Term
		bb.Block.Succs = append([]string(nil), b.Succs...)
	}
	return bb.Finish()
}

// deadStores marks stores that are overwritten later in the same block
// with no intervening load of the variable.
func deadStores(b *ir.Block) map[int]bool {
	dead := make(map[int]bool)
	for i, n := range b.Nodes {
		if n.Op != ir.OpStore {
			continue
		}
		for j := i + 1; j < len(b.Nodes); j++ {
			m := b.Nodes[j]
			if m.Op == ir.OpLoad && m.Var == n.Var {
				break
			}
			if m.Op == ir.OpStore && m.Var == n.Var {
				dead[i] = true
				break
			}
		}
	}
	return dead
}

// emitSimplified emits op over args with constant folding and algebraic
// identities applied.
func emitSimplified(bb *ir.Builder, op ir.Op, args []*ir.Node) *ir.Node {
	// Full constant folding (skipping division by zero, which must keep
	// its runtime behaviour).
	allConst := true
	vals := make([]int64, len(args))
	for i, a := range args {
		if a.Op != ir.OpConst {
			allConst = false
			break
		}
		vals[i] = a.Const
	}
	if allConst {
		if v, err := ir.EvalOp(op, vals...); err == nil {
			return bb.Const(v)
		}
	}
	if len(args) == 2 {
		if n := simplifyBinary(bb, op, args[0], args[1]); n != nil {
			return n
		}
	}
	if len(args) == 1 {
		x := args[0]
		// --x = x, ~~x = x.
		if (op == ir.OpNeg && x.Op == ir.OpNeg) || (op == ir.OpCompl && x.Op == ir.OpCompl) {
			// The arg's arg is already re-emitted (it appears earlier in
			// topological order), so it can be returned directly.
			return x.Args[0]
		}
	}
	return bb.Op(op, args...)
}

func simplifyBinary(bb *ir.Builder, op ir.Op, x, y *ir.Node) *ir.Node {
	yZero := y.Op == ir.OpConst && y.Const == 0
	yOne := y.Op == ir.OpConst && y.Const == 1
	xZero := x.Op == ir.OpConst && x.Const == 0
	xOne := x.Op == ir.OpConst && x.Const == 1
	same := x == y

	switch op {
	case ir.OpAdd:
		if yZero {
			return x
		}
		if xZero {
			return y
		}
	case ir.OpSub:
		if yZero {
			return x
		}
		if same {
			return bb.Const(0)
		}
	case ir.OpMul:
		if yOne {
			return x
		}
		if xOne {
			return y
		}
		if yZero || xZero {
			return bb.Const(0)
		}
	case ir.OpDiv:
		if yOne {
			return x
		}
	case ir.OpAnd:
		if same {
			return x
		}
		if yZero || xZero {
			return bb.Const(0)
		}
	case ir.OpOr:
		if same || yZero {
			return x
		}
		if xZero {
			return y
		}
	case ir.OpXor:
		if same {
			return bb.Const(0)
		}
		if yZero {
			return x
		}
		if xZero {
			return y
		}
	case ir.OpShl, ir.OpShr:
		if yZero {
			return x
		}
	case ir.OpCmpEQ:
		if same {
			return bb.Const(1)
		}
	case ir.OpCmpNE:
		if same {
			return bb.Const(0)
		}
	case ir.OpCmpLE, ir.OpCmpGE:
		if same {
			return bb.Const(1)
		}
	case ir.OpCmpLT, ir.OpCmpGT:
		if same {
			return bb.Const(0)
		}
	}
	return nil
}

// foldBranches turns branches on constants into jumps.
func foldBranches(f *ir.Func) {
	for _, b := range f.Blocks {
		if b.Term != ir.TermBranch || b.Cond == nil || b.Cond.Op != ir.OpConst {
			continue
		}
		target := b.Succs[0]
		if b.Cond.Const == 0 {
			target = b.Succs[1]
		}
		b.Term = ir.TermJump
		b.Cond = nil
		b.Succs = []string{target}
		b.RemoveDead()
	}
}

// threadJumps redirects edges that land on empty jump-only blocks.
func threadJumps(f *ir.Func) {
	target := make(map[string]string)
	for _, b := range f.Blocks {
		if len(b.Nodes) == 0 && b.Term == ir.TermJump {
			target[b.Name] = b.Succs[0]
		}
	}
	resolve := func(name string) string {
		seen := map[string]bool{}
		for {
			next, ok := target[name]
			if !ok || seen[name] {
				return name
			}
			seen[name] = true
			name = next
		}
	}
	for _, b := range f.Blocks {
		for i, s := range b.Succs {
			b.Succs[i] = resolve(s)
		}
	}
	if len(f.Blocks) > 0 {
		// If the entry itself threads away, keep it (it may be empty but
		// is still the entry point); unreachable-block removal handles
		// the rest.
		_ = f.Blocks[0]
	}
}

// removeUnreachable drops blocks that no path from the entry reaches.
func removeUnreachable(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		if b := f.Block(name); b != nil {
			for _, s := range b.Succs {
				visit(s)
			}
		}
	}
	visit(f.Blocks[0].Name)
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b.Name] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
}
