package opt

import (
	"testing"

	"aviv/internal/ir"
)

// twoBlockFunc builds entry -> exit with the given bodies.
func twoBlockFunc(t *testing.T, entry, exit func(b *ir.Block)) *ir.Func {
	t.Helper()
	e := ir.NewBlock("entry")
	entry(e)
	e.Term = ir.TermJump
	e.Succs = []string{"exit"}
	x := ir.NewBlock("exit")
	exit(x)
	x.Term = ir.TermReturn
	f := &ir.Func{Name: "g", Blocks: []*ir.Block{e, x}}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestGlobalDeadStoreAcrossBlocks: a store overwritten in the next
// block with no intervening load is dead even though no single block
// can see it — the cross-block case the block-local deadStores scan
// misses by construction. This is the global subsumption required by
// the deadStores regression (same shape, split over two blocks).
func TestGlobalDeadStoreAcrossBlocks(t *testing.T) {
	f := twoBlockFunc(t,
		func(b *ir.Block) {
			b.NewStore("t", b.NewNode(ir.OpAdd, b.NewLoad("a"), b.NewLoad("b")))
			b.NewStore("out", b.NewConst(1))
		},
		func(b *ir.Block) {
			b.NewStore("t", b.NewConst(0)) // overwrites without reading
		},
	)
	// Note: blocks get merged by Optimize here; force the general path
	// by making entry a branch so the blocks stay separate.
	f.Blocks[0].Term = ir.TermBranch
	f.Blocks[0].Cond = f.Blocks[0].NewLoad("c")
	f.Blocks[0].Succs = []string{"exit", "exit"}
	of := Optimize(f)
	entry := of.Block("entry")
	if entry == nil {
		t.Fatal("entry block missing after optimize")
	}
	for _, n := range entry.Nodes {
		if n.Op == ir.OpStore && n.Var == "t" {
			t.Errorf("cross-block dead store of t survived:\n%s", entry)
		}
	}
	// The live store of out must survive.
	found := false
	for _, n := range entry.Nodes {
		if n.Op == ir.OpStore && n.Var == "out" {
			found = true
		}
	}
	if !found {
		t.Errorf("live store of out was wrongly removed:\n%s", entry)
	}
}

// TestGlobalDeadStoreKeepsExitValues: every variable is observable at
// function exit (difftest compares final memory), so a store whose
// value can reach the exit must never be removed even if no load reads
// it.
func TestGlobalDeadStoreKeepsExitValues(t *testing.T) {
	f := twoBlockFunc(t,
		func(b *ir.Block) { b.NewStore("t", b.NewConst(7)) },
		func(b *ir.Block) { b.NewStore("u", b.NewConst(8)) },
	)
	of := Optimize(f)
	stores := 0
	for _, b := range of.Blocks {
		for _, n := range b.Nodes {
			if n.Op == ir.OpStore {
				stores++
			}
		}
	}
	if stores != 2 {
		t.Errorf("got %d stores, want 2 (both values reach the exit):\n%s", stores, of)
	}
}

// TestGlobalCSEAcrossBlocks: a+b is stored in x by the entry block and
// recomputed in a successor while x and its operands are unchanged; the
// recomputation must become a load of x, shrinking the block.
func TestGlobalCSEAcrossBlocks(t *testing.T) {
	f := twoBlockFunc(t,
		func(b *ir.Block) {
			b.NewStore("x", b.NewNode(ir.OpMul, b.NewLoad("a"), b.NewLoad("b")))
		},
		func(b *ir.Block) {
			prod := b.NewNode(ir.OpMul, b.NewLoad("a"), b.NewLoad("b"))
			b.NewStore("y", b.NewNode(ir.OpAdd, prod, b.NewConst(1)))
		},
	)
	// Keep the blocks separate (a jump-only edge would be merged).
	f.Blocks[0].Term = ir.TermBranch
	f.Blocks[0].Cond = f.Blocks[0].NewLoad("c")
	f.Blocks[0].Succs = []string{"exit", "exit"}
	of := Optimize(f)
	exit := of.Block("exit")
	if exit == nil {
		t.Fatal("exit block missing")
	}
	for _, n := range exit.Nodes {
		if n.Op == ir.OpMul {
			t.Errorf("recomputed a*b survived CSE:\n%s", exit)
		}
	}
	// Semantics: y must still be a*b + 1.
	mem := map[string]int64{"a": 6, "b": 7, "c": 1}
	if err := ir.EvalFunc(of, mem, 100); err != nil {
		t.Fatal(err)
	}
	if mem["y"] != 43 {
		t.Errorf("y = %d, want 43", mem["y"])
	}
	if mem["x"] != 42 {
		t.Errorf("x = %d, want 42", mem["x"])
	}
}

// TestGlobalCSENotOnModifiedOperand: when an operand of the cached
// expression changes between the def and the reuse, the rewrite must
// not happen.
func TestGlobalCSENotOnModifiedOperand(t *testing.T) {
	f := twoBlockFunc(t,
		func(b *ir.Block) {
			b.NewStore("x", b.NewNode(ir.OpMul, b.NewLoad("a"), b.NewLoad("b")))
			b.NewStore("a", b.NewConst(99)) // a changes after the def
		},
		func(b *ir.Block) {
			prod := b.NewNode(ir.OpMul, b.NewLoad("a"), b.NewLoad("b"))
			b.NewStore("y", prod)
		},
	)
	f.Blocks[0].Term = ir.TermBranch
	f.Blocks[0].Cond = f.Blocks[0].NewLoad("c")
	f.Blocks[0].Succs = []string{"exit", "exit"}
	of := Optimize(f)
	mem := map[string]int64{"a": 6, "b": 7, "c": 1}
	if err := ir.EvalFunc(of, mem, 100); err != nil {
		t.Fatal(err)
	}
	if mem["y"] != 99*7 {
		t.Errorf("y = %d, want %d (CSE used a stale cached value)", mem["y"], 99*7)
	}
}

// TestGlobalCSEDiamondMustMeet: the fact must hold on *every* path into
// the reuse block. Here only one arm of a diamond computes a*b into x,
// so the join must not be rewritten.
func TestGlobalCSEDiamondMustMeet(t *testing.T) {
	entry := ir.NewBlock("entry")
	entry.Term = ir.TermBranch
	entry.Cond = entry.NewLoad("c")
	entry.Succs = []string{"l", "r"}
	l := ir.NewBlock("l")
	l.NewStore("x", l.NewNode(ir.OpMul, l.NewLoad("a"), l.NewLoad("b")))
	l.Term = ir.TermJump
	l.Succs = []string{"join"}
	r := ir.NewBlock("r")
	r.NewStore("x", r.NewConst(5)) // x holds something else on this path
	r.Term = ir.TermJump
	r.Succs = []string{"join"}
	join := ir.NewBlock("join")
	join.NewStore("y", join.NewNode(ir.OpMul, join.NewLoad("a"), join.NewLoad("b")))
	join.Term = ir.TermReturn
	f := &ir.Func{Name: "d", Blocks: []*ir.Block{entry, l, r, join}}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	of := Optimize(f)
	for _, c := range []int64{0, 1} {
		mem := map[string]int64{"a": 3, "b": 4, "c": c}
		if err := ir.EvalFunc(of, mem, 100); err != nil {
			t.Fatal(err)
		}
		if mem["y"] != 12 {
			t.Errorf("c=%d: y = %d, want 12 (join rewritten despite non-meet path)", c, mem["y"])
		}
	}
}

// TestOptimizePreservesSemanticsRandom drives Optimize over random
// multi-block functions and checks the optimized function leaves the
// same final memory as the original. The generator respects the
// builder invariant every real front-end block satisfies: a load of v
// never appears after a store of v in the same block (ir.Builder
// forwards such loads away), which the optimizer is entitled to assume.
func TestOptimizePreservesSemanticsRandom(t *testing.T) {
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	vars := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		e := ir.NewBlock("entry")
		stored := map[string]bool{}
		loadable := func() (string, bool) {
			var free []string
			for _, v := range vars {
				if !stored[v] {
					free = append(free, v)
				}
			}
			if len(free) == 0 {
				return "", false
			}
			return free[next(len(free))], true
		}
		var vals []*ir.Node
		for i := 0; i < 3+next(6); i++ {
			switch next(3) {
			case 0:
				if v, ok := loadable(); ok {
					vals = append(vals, e.NewLoad(v))
				} else {
					vals = append(vals, e.NewConst(int64(next(8))))
				}
			case 1:
				vals = append(vals, e.NewConst(int64(next(8))))
			default:
				if len(vals) >= 2 {
					vals = append(vals, e.NewNode(ir.OpAdd, vals[next(len(vals))], vals[next(len(vals))]))
				} else {
					vals = append(vals, e.NewConst(1))
				}
			}
			if len(vals) > 0 && next(2) == 0 {
				v := vars[next(len(vars))]
				e.NewStore(v, vals[next(len(vals))])
				stored[v] = true
			}
		}
		e.Term = ir.TermBranch
		if v, ok := loadable(); ok {
			e.Cond = e.NewLoad(v)
		} else if len(vals) > 0 {
			e.Cond = vals[next(len(vals))]
		} else {
			e.Cond = e.NewConst(1)
		}
		e.Succs = []string{"x1", "x2"}
		x1 := ir.NewBlock("x1")
		v1, v2 := vars[next(len(vars))], vars[next(len(vars))]
		x1.NewStore(v1, x1.NewLoad(v2))
		x1.Term = ir.TermReturn
		x2 := ir.NewBlock("x2")
		x2.NewStore(vars[next(len(vars))], x2.NewConst(int64(next(9))))
		x2.Term = ir.TermReturn
		f := &ir.Func{Name: "r", Blocks: []*ir.Block{e, x1, x2}}
		if err := f.Verify(); err != nil {
			t.Fatal(err)
		}
		of := Optimize(f)
		for _, c := range []int64{0, 1, 5} {
			want := map[string]int64{"a": 2, "b": 3, "c": c, "d": 4}
			got := map[string]int64{"a": 2, "b": 3, "c": c, "d": 4}
			if err := ir.EvalFunc(f, want, 1000); err != nil {
				t.Fatal(err)
			}
			if err := ir.EvalFunc(of, got, 1000); err != nil {
				t.Fatal(err)
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("trial %d c=%d: mem[%s] = %d, want %d\nbefore:\n%s\nafter:\n%s",
						trial, c, k, got[k], v, f, of)
				}
			}
		}
	}
}
