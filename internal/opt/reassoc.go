package opt

import "aviv/internal/ir"

// Reassociation: left-leaning chains of an associative, commutative
// operation (a+b+c+d built as ((a+b)+c)+d) serialize on any machine —
// dependence depth n-1. Rebalancing into a tree halves the depth and
// exposes the instruction-level parallelism the Split-Node DAG covering
// feeds on; this is part of the "machine independent parallelism"
// extraction the paper's front end performs (Sec. II).
//
// Only interior nodes with a single use are absorbed into a chain: a
// multiply-used subterm stays a chain leaf, so sharing (CSE) is never
// broken. Integer Add/Mul/And/Or/Xor are fully associative, so the
// rewrite is exact.

var reassociable = map[ir.Op]bool{
	ir.OpAdd: true,
	ir.OpMul: true,
	ir.OpAnd: true,
	ir.OpOr:  true,
	ir.OpXor: true,
}

// reassociateBlock returns a copy of the block with associative chains
// rebalanced.
func reassociateBlock(b *ir.Block) *ir.Block {
	users := b.Users()
	bb := ir.NewBuilder(b.Name)
	newOf := make(map[*ir.Node]*ir.Node, len(b.Nodes))

	// get lazily materializes the new node for an old one, rebalancing
	// chain roots on the way.
	var get func(n *ir.Node) *ir.Node
	get = func(n *ir.Node) *ir.Node {
		if nn, ok := newOf[n]; ok {
			return nn
		}
		var nn *ir.Node
		switch {
		case n.Op == ir.OpConst:
			nn = bb.Const(n.Const)
		case n.Op == ir.OpLoad:
			nn = bb.Load(n.Var)
		case reassociable[n.Op] && isChainRoot(n, users):
			leaves := chainLeaves(n, n.Op, users, true)
			args := make([]*ir.Node, len(leaves))
			for i, l := range leaves {
				args[i] = get(l)
			}
			nn = balanced(bb, n.Op, args)
		default:
			args := make([]*ir.Node, len(n.Args))
			for i, a := range n.Args {
				args[i] = get(a)
			}
			nn = bb.Op(n.Op, args...)
		}
		newOf[n] = nn
		return nn
	}

	for _, n := range b.Nodes {
		switch n.Op {
		case ir.OpStore:
			bb.Store(n.Var, get(n.Args[0]))
		case ir.OpConst:
			// Materialized on demand (position-independent).
		case ir.OpLoad:
			// Pinned at its original position: materializing a load lazily
			// at its first user's position can move it past a store to the
			// same variable, where the builder forwards it to the stored
			// value instead of the value the original load read.
			get(n)
		default:
			get(n)
		}
	}
	switch b.Term {
	case ir.TermBranch:
		bb.Branch(get(b.Cond), b.Succs[0], b.Succs[1])
	case ir.TermJump:
		bb.Jump(b.Succs[0])
	case ir.TermReturn:
		bb.Return()
	default:
		bb.Block.Term = b.Term
		bb.Block.Succs = append([]string(nil), b.Succs...)
	}
	return bb.Finish()
}

// isChainRoot reports whether n heads a same-op chain (it is not itself a
// single-use operand of a same-op parent — that parent will absorb it).
func isChainRoot(n *ir.Node, users map[*ir.Node][]*ir.Node) bool {
	us := users[n]
	if len(us) != 1 {
		return true
	}
	return us[0].Op != n.Op
}

// chainLeaves collects the operands of the maximal same-op chain rooted
// at n: single-use same-op children are absorbed recursively, everything
// else is a leaf.
func chainLeaves(n *ir.Node, op ir.Op, users map[*ir.Node][]*ir.Node, isRoot bool) []*ir.Node {
	if n.Op != op || (!isRoot && len(users[n]) != 1) {
		return []*ir.Node{n}
	}
	var out []*ir.Node
	for _, a := range n.Args {
		out = append(out, chainLeaves(a, op, users, false)...)
	}
	return out
}

// balanced emits a balanced tree combining args with op.
func balanced(bb *ir.Builder, op ir.Op, args []*ir.Node) *ir.Node {
	switch len(args) {
	case 1:
		return args[0]
	case 2:
		return bb.Op(op, args[0], args[1])
	}
	mid := len(args) / 2
	return bb.Op(op, balanced(bb, op, args[:mid]), balanced(bb, op, args[mid:]))
}
