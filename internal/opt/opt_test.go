package opt

import (
	"testing"
	"testing/quick"

	"aviv/internal/ir"
	"aviv/internal/lang"
)

func lower(t *testing.T, src string) *ir.Func {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f, err := lang.Lower(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, nd := range b.Nodes {
			if nd.Op == op {
				n++
			}
		}
	}
	return n
}

func totalNodes(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Nodes)
	}
	return n
}

func TestConstantFolding(t *testing.T) {
	f := Optimize(lower(t, `x = 2 + 3 * 4;`))
	if got := countOps(f, ir.OpAdd) + countOps(f, ir.OpMul); got != 0 {
		t.Errorf("arithmetic survived folding: %d ops\n%s", got, f)
	}
	b := f.Blocks[0]
	var stored *ir.Node
	for _, n := range b.Nodes {
		if n.Op == ir.OpStore {
			stored = n.Args[0]
		}
	}
	if stored == nil || stored.Op != ir.OpConst || stored.Const != 14 {
		t.Errorf("x not folded to 14: %v", stored)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	cases := []struct {
		src       string
		op        ir.Op
		surviveOK int
	}{
		{`y = x + 0;`, ir.OpAdd, 0},
		{`y = 0 + x;`, ir.OpAdd, 0},
		{`y = x - 0;`, ir.OpSub, 0},
		{`y = x - x;`, ir.OpSub, 0},
		{`y = x * 1;`, ir.OpMul, 0},
		{`y = x * 0;`, ir.OpMul, 0},
		{`y = x / 1;`, ir.OpDiv, 0},
		{`y = x & x;`, ir.OpAnd, 0},
		{`y = x | 0;`, ir.OpOr, 0},
		{`y = x ^ x;`, ir.OpXor, 0},
		{`y = x << 0;`, ir.OpShl, 0},
		{`y = x == x;`, ir.OpCmpEQ, 0},
		{`y = x < x;`, ir.OpCmpLT, 0},
		{`y = -(-x);`, ir.OpNeg, 0},
		{`y = ~(~x);`, ir.OpCompl, 0},
	}
	for _, c := range cases {
		f := Optimize(lower(t, c.src))
		if got := countOps(f, c.op); got > c.surviveOK {
			t.Errorf("%s: %d %v ops survived", c.src, got, c.op)
		}
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	f := Optimize(lower(t, `y = 1 / 0;`))
	if countOps(f, ir.OpDiv) != 1 {
		t.Error("division by zero was folded away")
	}
}

func TestDeadStoreElimination(t *testing.T) {
	f := Optimize(lower(t, `x = 1; x = 2;`))
	if got := countOps(f, ir.OpStore); got != 1 {
		t.Errorf("%d stores survived, want 1", got)
	}
	// An intervening load keeps both stores.
	f2 := Optimize(lower(t, `x = a; y = x + 0; x = 2;`))
	// After store-load forwarding the load of x disappears, so the first
	// store may legitimately die; check semantics instead.
	mem := map[string]int64{"a": 9}
	if err := ir.EvalFunc(f2, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["x"] != 2 || mem["y"] != 9 {
		t.Errorf("mem = %v", mem)
	}
}

func TestBranchFolding(t *testing.T) {
	f := Optimize(lower(t, `
		if (1) { x = 10; } else { x = 20; }
		y = x;
	`))
	for _, b := range f.Blocks {
		if b.Term == ir.TermBranch {
			t.Errorf("constant branch survived in %s", b.Name)
		}
	}
	mem := map[string]int64{}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["x"] != 10 || mem["y"] != 10 {
		t.Errorf("mem = %v", mem)
	}
	// The dead arm must be unreachable-removed.
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			if n.Op == ir.OpConst && n.Const == 20 {
				t.Error("dead else-arm survived")
			}
		}
	}
}

func TestCSEAcrossStatements(t *testing.T) {
	f := Optimize(lower(t, `
		p = (a + b) * c;
		q = (a + b) * c;
	`))
	if got := countOps(f, ir.OpAdd); got != 1 {
		t.Errorf("%d ADDs, want 1 (CSE)", got)
	}
	if got := countOps(f, ir.OpMul); got != 1 {
		t.Errorf("%d MULs, want 1 (CSE)", got)
	}
}

func TestOptimizeShrinksOrKeeps(t *testing.T) {
	srcs := []string{
		`x = a * (b + 0) + (c - c);`,
		`s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; }`,
		`if (a > 0) { r = a; } else { r = -a; }`,
	}
	for _, src := range srcs {
		f := lower(t, src)
		o := Optimize(f)
		if totalNodes(o) > totalNodes(f) {
			t.Errorf("%s: optimize grew IR %d -> %d", src, totalNodes(f), totalNodes(o))
		}
		if err := o.Verify(); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

// Property: optimization preserves program semantics on random inputs.
func TestQuickOptimizePreservesSemantics(t *testing.T) {
	src := `
		t1 = a + b * 2;
		t2 = (a - a) + t1;
		big = 0;
		if (t2 > 10 && b != 0) {
			big = t1 / b;
		} else {
			big = t1 * 1 + 0;
		}
		s = 0;
		for (i = 0; i < 6; i = i + 1) {
			s = s + big;
		}
	`
	f := lower(t, src)
	o := Optimize(f)
	prop := func(a, b int64) bool {
		a, b = a%1000, b%1000
		m1 := map[string]int64{"a": a, "b": b}
		m2 := map[string]int64{"a": a, "b": b}
		e1 := ir.EvalFunc(f, m1, 0)
		e2 := ir.EvalFunc(o, m2, 0)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true // both fail the same way (div by zero)
		}
		return m1["s"] == m2["s"] && m1["big"] == m2["big"]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeBlocks(t *testing.T) {
	// A diamond that folds to a straight line must end as one block.
	f := Optimize(lower(t, `
		a = x + 1;
		if (1) { b = a * 2; } else { b = 0; }
		c = b + a;
	`))
	if len(f.Blocks) != 1 {
		t.Errorf("got %d blocks, want 1 after merging:\n%s", len(f.Blocks), f)
	}
	mem := map[string]int64{"x": 5}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["c"] != 18 {
		t.Errorf("c = %d, want 18", mem["c"])
	}
}

func TestMergeKeepsLoops(t *testing.T) {
	// Loop back edges must survive merging (head has 2 preds).
	f := Optimize(lower(t, `
		s = 0;
		i = 0;
		while (i < n) { s = s + i; i = i + 1; }
		r = s;
	`))
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	mem := map[string]int64{"n": 5}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["r"] != 10 {
		t.Errorf("r = %d, want 10", mem["r"])
	}
	// The loop must still be a loop: some block branches.
	hasBranch := false
	for _, b := range f.Blocks {
		if b.Term == ir.TermBranch {
			hasBranch = true
		}
	}
	if !hasBranch {
		t.Error("loop disappeared")
	}
}

func TestMergeForwardsAcrossBoundary(t *testing.T) {
	// After merging, the store in the first half feeds the load in the
	// second half without a memory round trip.
	f := Optimize(lower(t, `
		t = a * b;
		if (1) { u = t + 1; } else { u = 0; }
	`))
	if len(f.Blocks) != 1 {
		t.Fatalf("want single block, got %d", len(f.Blocks))
	}
	loads := 0
	for _, n := range f.Blocks[0].Nodes {
		if n.Op == ir.OpLoad && n.Var == "t" {
			loads++
		}
	}
	if loads != 0 {
		t.Errorf("load of t survived store-load forwarding across merge")
	}
}

func TestReassociationBalancesChains(t *testing.T) {
	f := Optimize(lower(t, `y = a + b + c + d + e + g + h + k;`))
	b := f.Blocks[0]
	_, bot := b.Levels()
	maxDepth := 0
	for _, n := range b.Nodes {
		if n.Op == ir.OpAdd && bot[n] > maxDepth {
			maxDepth = bot[n]
		}
	}
	// 8 leaves: balanced depth is 3 ADD levels (+1 for the loads below),
	// left-leaning would be 7.
	if maxDepth > 4 {
		t.Errorf("chain not balanced: ADD height %d\n%s", maxDepth, b)
	}
	mem := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "g": 6, "h": 7, "k": 8}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["y"] != 36 {
		t.Errorf("y = %d, want 36", mem["y"])
	}
}

func TestReassociationKeepsSharing(t *testing.T) {
	// t1 = a+b is used twice: it must stay shared, not be absorbed into
	// both chains.
	f := Optimize(lower(t, `
		t1 = a + b;
		p = t1 + c + d;
		q = t1 + e;
	`))
	if got := countOps(f, ir.OpAdd); got > 4 {
		t.Errorf("%d ADDs after reassociation, want <= 4 (sharing broken)", got)
	}
	mem := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["p"] != 10 || mem["q"] != 8 {
		t.Errorf("mem = %v", mem)
	}
}

func TestReassociationMixedOps(t *testing.T) {
	// SUB breaks the chain; MUL chains balance independently.
	f := Optimize(lower(t, `y = (a * b * c * d) - (e + g + h + k);`))
	mem := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "g": 6, "h": 7, "k": 8}
	if err := ir.EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["y"] != 24-26 {
		t.Errorf("y = %d, want -2", mem["y"])
	}
}

// TestReassociateLoadNotForwardedPastStore: a load whose only user
// appears after a store to the same variable must keep reading the
// value from before the store. reassociateBlock used to materialize
// loads lazily at their first user's position, where the builder
// forwarded them to the freshly stored value — a miscompile reachable
// from real source (e.g. "b=5; t=d; d=5; b=t+5;" after the dead store
// of t is eliminated).
func TestReassociateLoadNotForwardedPastStore(t *testing.T) {
	b := ir.NewBlock("entry")
	five := b.NewConst(5)
	b.NewStore("b", five)
	oldD := b.NewLoad("d")
	b.NewStore("d", five)
	b.NewStore("b", b.NewNode(ir.OpAdd, oldD, five))
	b.Term = ir.TermReturn
	f := &ir.Func{Name: "m", Blocks: []*ir.Block{b}}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	of := Optimize(f)
	mem := map[string]int64{"d": 4}
	if err := ir.EvalFunc(of, mem, 100); err != nil {
		t.Fatal(err)
	}
	if mem["b"] != 9 {
		t.Errorf("b = %d, want 9 (load of d forwarded past the store of d):\n%s", mem["b"], of)
	}
	if mem["d"] != 5 {
		t.Errorf("d = %d, want 5:\n%s", mem["d"], of)
	}
}
