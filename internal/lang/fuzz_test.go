package lang

import (
	"testing"

	"aviv/internal/ir"
)

// FuzzParse checks that arbitrary input never panics the front end, and
// that anything that parses also lowers to verifiable IR (or fails
// cleanly).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x = 1;",
		"x = a + b * 3; y = x - 1;",
		"if (a > 0) { r = a; } else { r = -a; }",
		"while (i < 10) { i = i + 1; }",
		"for (i = 0; i < 8; i = i + 2) { s = s + i; }",
		"return;",
		"x = ((((1))));",
		"x = 1 << 2 >> 3 & 4 | 5 ^ 6;",
		"x = !a && ~b || -c;",
		"x = 1 ;; y = 2;",
		"if (1) { } else { }",
		"for(i=0;i<4;i=i+1){if(i%2){a=a+1;}else{a=a-1;}}",
		"# comment\nx = 1; // trailing",
		"x = 9223372036854775807;",
		// Multi-block control flow: chained and nested conditionals create
		// several basic blocks joined by branches.
		"if (a > 0) { x = a; } if (b > 0) { y = b; } z = x + y;",
		"if (a > b) { if (b > 0) { r = 1; } else { r = 2; } } else { r = 3; }",
		"while (a > 0) { if (a % 2) { s = s + a; } a = a - 1; }",
		// Unrolled-loop shapes: a loop whose body the unroller replicates,
		// and its already-unrolled straight-line equivalent.
		"s = 0; for (i = 0; i < 8; i = i + 1) { s = s + a * i; }",
		"s = s + a * a; s = s + b * b; s = s + c * c; s = s + d * d;",
		"for (i = 0; i < 6; i = i + 3) { x = x + i; y = y * 2; }",
		// Nested loops: the unroller must keep inner control flow intact.
		"for (i = 0; i < 3; i = i + 1) { for (j = 0; j < 2; j = j + 1) { s = s + i * j; } }",
		"i = 0; while (i < 4) { j = 0; while (j < i) { t = t + 1; j = j + 1; } i = i + 1; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		fn, err := Lower(p, "fuzz")
		if err != nil {
			return
		}
		if err := fn.Verify(); err != nil {
			t.Fatalf("lowered IR invalid for %q: %v", src, err)
		}
		// Unrolling must also keep the IR valid.
		u, err := Lower(Unroll(p, 2), "fuzz2")
		if err != nil {
			return
		}
		if err := u.Verify(); err != nil {
			t.Fatalf("unrolled IR invalid for %q: %v", src, err)
		}
		// Bounded evaluation must agree between original and unrolled.
		m1 := map[string]int64{"a": 3, "b": 5, "i": 0, "s": 0, "x": 2}
		m2 := map[string]int64{"a": 3, "b": 5, "i": 0, "s": 0, "x": 2}
		e1 := ir.EvalFunc(fn, m1, 10000)
		e2 := ir.EvalFunc(u, m2, 20000)
		if e1 == nil && e2 == nil {
			for k, v := range m1 {
				if m2[k] != v {
					t.Fatalf("unroll changed semantics for %q: %s %d vs %d", src, k, v, m2[k])
				}
			}
		}
	})
}
