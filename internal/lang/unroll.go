package lang

// Unroll applies AST-level loop unrolling by the given factor to every
// counted for-loop whose bounds are compile-time constants and whose trip
// count divides the factor evenly. This is the machine-independent
// parallelism-extraction transformation the paper's front end performs
// (Sec. II); the paper's Ex3–Ex5 are "loops that have been unrolled
// twice". Loops that do not match the counted pattern are left alone.
func Unroll(p *Program, factor int) *Program {
	if factor < 2 {
		return p
	}
	out := &Program{}
	for _, s := range p.Stmts {
		out.Stmts = append(out.Stmts, unrollStmt(s, factor))
	}
	return out
}

func unrollStmts(ss []Stmt, factor int) []Stmt {
	var out []Stmt
	for _, s := range ss {
		out = append(out, unrollStmt(s, factor))
	}
	return out
}

func unrollStmt(s Stmt, factor int) Stmt {
	switch s := s.(type) {
	case *If:
		return &If{Cond: s.Cond, Then: unrollStmts(s.Then, factor), Else: unrollStmts(s.Else, factor)}
	case *While:
		return &While{Cond: s.Cond, Body: unrollStmts(s.Body, factor)}
	case *For:
		body := unrollStmts(s.Body, factor)
		trip, ok := tripCount(s)
		if !ok || trip <= 0 || trip%int64(factor) != 0 {
			return &For{Init: s.Init, Cond: s.Cond, Post: s.Post, Body: body}
		}
		// Replicate body;post factor times, keeping the final post as the
		// loop's own post so the condition is re-tested once per group —
		// exact because the trip count divides evenly.
		var merged []Stmt
		for k := 0; k < factor; k++ {
			merged = append(merged, body...)
			if k != factor-1 {
				merged = append(merged, s.Post)
			}
		}
		return &For{Init: s.Init, Cond: s.Cond, Post: s.Post, Body: merged}
	default:
		return s
	}
}

// tripCount evaluates the iteration count of a counted loop of the form
// for (i = c0; i < c1; i = i + c2) with constant c0, c1, c2 > 0 and a
// body that never assigns i.
func tripCount(f *For) (int64, bool) {
	init, ok := f.Init.X.(*Num)
	if !ok {
		return 0, false
	}
	cond, ok := f.Cond.(*Bin)
	if !ok || cond.Op != "<" {
		return 0, false
	}
	cv, ok := cond.L.(*Var)
	if !ok || cv.Name != f.Init.Name {
		return 0, false
	}
	limit, ok := cond.R.(*Num)
	if !ok {
		return 0, false
	}
	if f.Post.Name != f.Init.Name {
		return 0, false
	}
	step, ok := stepOf(f.Post, f.Init.Name)
	if !ok || step <= 0 {
		return 0, false
	}
	if assignsVar(f.Body, f.Init.Name) || hasLoopEscape(f.Body) {
		return 0, false
	}
	if limit.Value <= init.Value {
		return 0, true
	}
	n := (limit.Value - init.Value + step - 1) / step
	return n, true
}

func stepOf(post *Assign, ivar string) (int64, bool) {
	b, ok := post.X.(*Bin)
	if !ok || b.Op != "+" {
		return 0, false
	}
	if v, ok := b.L.(*Var); ok && v.Name == ivar {
		if n, ok := b.R.(*Num); ok {
			return n.Value, true
		}
	}
	if v, ok := b.R.(*Var); ok && v.Name == ivar {
		if n, ok := b.L.(*Num); ok {
			return n.Value, true
		}
	}
	return 0, false
}

// hasLoopEscape reports whether the statement list contains a break or
// continue bound to THIS loop (escapes inside nested loops bind there).
func hasLoopEscape(ss []Stmt) bool {
	for _, s := range ss {
		switch s := s.(type) {
		case *Break, *Continue:
			return true
		case *If:
			if hasLoopEscape(s.Then) || hasLoopEscape(s.Else) {
				return true
			}
		}
	}
	return false
}

func assignsVar(ss []Stmt, name string) bool {
	for _, s := range ss {
		switch s := s.(type) {
		case *Assign:
			if s.Name == name {
				return true
			}
		case *If:
			if assignsVar(s.Then, name) || assignsVar(s.Else, name) {
				return true
			}
		case *While:
			if assignsVar(s.Body, name) || s.Cond == nil {
				return true
			}
		case *For:
			if s.Init.Name == name || s.Post.Name == name || assignsVar(s.Body, name) {
				return true
			}
		}
	}
	return false
}
