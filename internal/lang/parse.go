package lang

import "fmt"

// Parse parses a source program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(tokEOF, "") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{Stmts: stmts}, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1] // the EOF sentinel
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.cur()
	p.pos++
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("lang: line %d: expected %q, got %q", p.cur().line, text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "if"):
		return p.ifStmt()
	case p.at(tokKeyword, "while"):
		return p.whileStmt()
	case p.at(tokKeyword, "for"):
		return p.forStmt()
	case p.at(tokKeyword, "return"):
		p.next()
		p.accept(tokPunct, ";")
		return &Return{}, nil
	case p.at(tokKeyword, "break"):
		p.next()
		p.accept(tokPunct, ";")
		return &Break{}, nil
	case p.at(tokKeyword, "continue"):
		p.next()
		p.accept(tokPunct, ";")
		return &Continue{}, nil
	case p.at(tokIdent, ""):
		a, err := p.assign()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return a, nil
	}
	return nil, fmt.Errorf("lang: line %d: unexpected token %q", p.cur().line, p.cur().text)
}

func (p *parser) assign() (*Assign, error) {
	name := p.next().text
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Assign{Name: name, X: x}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("lang: unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(tokKeyword, "else") {
		els, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	return &If{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.next() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	init, err := p.assign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	post, err := p.assign()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &For{Init: init, Cond: cond, Post: post, Body: body}, nil
}

// Expression parsing by precedence climbing. Lowest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(level int) (Expr, error) {
	if level == len(precLevels) {
		return p.unary()
	}
	left, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[level] {
			if p.at(tokPunct, op) {
				p.next()
				right, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Bin{Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	for _, op := range []string{"-", "~", "!"} {
		if p.at(tokPunct, op) {
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Un{Op: op, X: x}, nil
		}
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		var v int64
		if _, err := fmt.Sscan(t.text, &v); err != nil {
			return nil, fmt.Errorf("lang: line %d: bad number %q", t.line, t.text)
		}
		return &Num{Value: v}, nil
	case t.kind == tokIdent:
		p.next()
		return &Var{Name: t.text}, nil
	case p.accept(tokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("lang: line %d: unexpected token %q in expression", t.line, t.text)
}
