package lang

import (
	"fmt"
	"strings"
)

// Expr is an expression AST node.
type Expr interface{ exprString() string }

// Num is an integer literal.
type Num struct{ Value int64 }

// Var is a variable reference (a named data-memory location).
type Var struct{ Name string }

// Un is a unary operation: "-", "~" or "!".
type Un struct {
	Op string
	X  Expr
}

// Bin is a binary operation with a C-like operator.
type Bin struct {
	Op   string
	L, R Expr
}

func (n *Num) exprString() string { return fmt.Sprint(n.Value) }
func (v *Var) exprString() string { return v.Name }
func (u *Un) exprString() string  { return u.Op + u.X.exprString() }
func (b *Bin) exprString() string {
	return "(" + b.L.exprString() + " " + b.Op + " " + b.R.exprString() + ")"
}

// Stmt is a statement AST node.
type Stmt interface{ stmtString(indent string) string }

// Assign stores an expression into a variable.
type Assign struct {
	Name string
	X    Expr
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While is a pre-tested loop.
type While struct {
	Cond Expr
	Body []Stmt
}

// For is a C-style counted loop.
type For struct {
	Init *Assign
	Cond Expr
	Post *Assign
	Body []Stmt
}

// Return ends the program.
type Return struct{}

// Break exits the innermost loop.
type Break struct{}

// Continue jumps to the innermost loop's next iteration (the post
// statement of a for, the condition of a while).
type Continue struct{}

func (a *Assign) stmtString(in string) string {
	return in + a.Name + " = " + a.X.exprString() + ";"
}

func (s *If) stmtString(in string) string {
	out := in + "if (" + s.Cond.exprString() + ") {\n" + stmtsString(s.Then, in+"  ") + in + "}"
	if s.Else != nil {
		out += " else {\n" + stmtsString(s.Else, in+"  ") + in + "}"
	}
	return out
}

func (s *While) stmtString(in string) string {
	return in + "while (" + s.Cond.exprString() + ") {\n" + stmtsString(s.Body, in+"  ") + in + "}"
}

func (s *For) stmtString(in string) string {
	return in + "for (" + s.Init.Name + " = " + s.Init.X.exprString() + "; " +
		s.Cond.exprString() + "; " +
		s.Post.Name + " = " + s.Post.X.exprString() + ") {\n" +
		stmtsString(s.Body, in+"  ") + in + "}"
}

func (s *Return) stmtString(in string) string   { return in + "return;" }
func (s *Break) stmtString(in string) string    { return in + "break;" }
func (s *Continue) stmtString(in string) string { return in + "continue;" }

func stmtsString(ss []Stmt, in string) string {
	var sb strings.Builder
	for _, s := range ss {
		sb.WriteString(s.stmtString(in))
		sb.WriteString("\n")
	}
	return sb.String()
}

// Program is a parsed source program.
type Program struct {
	Stmts []Stmt
}

func (p *Program) String() string { return stmtsString(p.Stmts, "") }
