package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"aviv/internal/ir"
)

func mustLower(t *testing.T, src string) *ir.Func {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f, err := Lower(p, "main")
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f
}

func run(t *testing.T, src string, mem map[string]int64) map[string]int64 {
	t.Helper()
	f := mustLower(t, src)
	out := map[string]int64{}
	for k, v := range mem {
		out[k] = v
	}
	if err := ir.EvalFunc(f, out, 0); err != nil {
		t.Fatalf("EvalFunc: %v", err)
	}
	return out
}

func TestStraightLine(t *testing.T) {
	mem := run(t, `
		x = a + b * 3;
		y = (a - b) * (a + b);
		z = x;
	`, map[string]int64{"a": 10, "b": 4})
	if mem["x"] != 22 || mem["y"] != 84 || mem["z"] != 22 {
		t.Errorf("mem = %v", mem)
	}
}

func TestOperatorsAndPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"r = 2 + 3 * 4;", 14},
		{"r = (2 + 3) * 4;", 20},
		{"r = 10 - 3 - 2;", 5}, // left assoc
		{"r = 7 % 3;", 1},
		{"r = 7 / 2;", 3},
		{"r = 1 << 4;", 16},
		{"r = 32 >> 2;", 8},
		{"r = 6 & 3;", 2},
		{"r = 6 | 3;", 7},
		{"r = 6 ^ 3;", 5},
		{"r = -5;", -5},
		{"r = ~0;", -1},
		{"r = !5;", 0},
		{"r = !0;", 1},
		{"r = 3 < 4;", 1},
		{"r = 3 >= 4;", 0},
		{"r = 3 == 3;", 1},
		{"r = 3 != 3;", 0},
		{"r = 1 && 2;", 1},
		{"r = 1 && 0;", 0},
		{"r = 0 || 3;", 1},
		{"r = 0 || 0;", 0},
		{"r = 1 + 2 == 3 && 4 > 1;", 1},
	}
	for _, c := range cases {
		mem := run(t, c.src, nil)
		if mem["r"] != c.want {
			t.Errorf("%s => %d, want %d", c.src, mem["r"], c.want)
		}
	}
}

func TestIfElse(t *testing.T) {
	src := `
		if (x > 10) { r = 1; } else { r = 2; }
		s = r * 10;
	`
	if mem := run(t, src, map[string]int64{"x": 20}); mem["r"] != 1 || mem["s"] != 10 {
		t.Errorf("x=20: %v", mem)
	}
	if mem := run(t, src, map[string]int64{"x": 5}); mem["r"] != 2 || mem["s"] != 20 {
		t.Errorf("x=5: %v", mem)
	}
}

func TestIfWithoutElse(t *testing.T) {
	src := `r = 0; if (x) { r = 7; } out = r + 1;`
	if mem := run(t, src, map[string]int64{"x": 1}); mem["out"] != 8 {
		t.Errorf("x=1: %v", mem)
	}
	if mem := run(t, src, map[string]int64{"x": 0}); mem["out"] != 1 {
		t.Errorf("x=0: %v", mem)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
		sum = 0;
		i = 0;
		while (i < n) {
			sum = sum + i;
			i = i + 1;
		}
	`
	mem := run(t, src, map[string]int64{"n": 10})
	if mem["sum"] != 45 {
		t.Errorf("sum = %d, want 45", mem["sum"])
	}
}

func TestForLoop(t *testing.T) {
	src := `
		acc = 0;
		for (i = 0; i < 8; i = i + 2) {
			acc = acc + i * i;
		}
	`
	mem := run(t, src, nil)
	if mem["acc"] != 0+4+16+36 {
		t.Errorf("acc = %d, want 56", mem["acc"])
	}
}

func TestNestedControl(t *testing.T) {
	src := `
		count = 0;
		for (i = 0; i < 5; i = i + 1) {
			if (i % 2 == 0) {
				count = count + 1;
			} else {
				count = count + 10;
			}
		}
	`
	mem := run(t, src, nil)
	if mem["count"] != 3+20 {
		t.Errorf("count = %d, want 23", mem["count"])
	}
}

func TestReturnStopsProgram(t *testing.T) {
	src := `
		x = 1;
		if (x) {
			y = 2;
		}
		return;
	`
	mem := run(t, src, nil)
	if mem["y"] != 2 {
		t.Errorf("mem = %v", mem)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x = ;",
		"x = 1",       // missing semicolon
		"if x { }",    // missing parens
		"while (1) {", // unterminated
		"for (i = 0; i < 3) { }",
		"x = 1 +;",
		"x = (1;",
		"$ = 2;",
		"x = 1; y = 2; return; z = 3;", // unreachable
	}
	for _, src := range bad {
		p, err := Parse(src)
		if err != nil {
			continue
		}
		if _, err := Lower(p, "main"); err == nil {
			t.Errorf("accepted invalid program: %s", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	mem := run(t, `
		// a line comment
		x = 1; # hash comment
		y = x + 1;
	`, nil)
	if mem["y"] != 2 {
		t.Errorf("mem = %v", mem)
	}
}

func TestASTString(t *testing.T) {
	p, err := Parse(`for (i = 0; i < 4; i = i + 1) { if (i) { a = -i; } else { b = ~i; } } return;`)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"for (i = 0;", "if (i)", "else", "-i", "~i", "return;"} {
		if !strings.Contains(s, want) {
			t.Errorf("AST string missing %q:\n%s", want, s)
		}
	}
}

func TestUnrollCounted(t *testing.T) {
	src := `
		acc = 0;
		for (i = 0; i < 8; i = i + 1) {
			acc = acc + x * i;
		}
	`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := Unroll(p, 2)
	// The unrolled loop body must contain two copies of the accumulate.
	f, ok := u.Stmts[1].(*For)
	if !ok {
		t.Fatalf("statement 1 is %T", u.Stmts[1])
	}
	if len(f.Body) != 3 { // acc=...; i=i+1; acc=...
		t.Fatalf("unrolled body has %d stmts, want 3", len(f.Body))
	}
	// Semantics preserved.
	mem := map[string]int64{"x": 3}
	fn, err := Lower(u, "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.EvalFunc(fn, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["acc"] != 3*(0+1+2+3+4+5+6+7) {
		t.Errorf("acc = %d, want 84", mem["acc"])
	}
}

func TestUnrollSkipsNonDivisible(t *testing.T) {
	src := `for (i = 0; i < 7; i = i + 1) { a = a + 1; }` // 7 iterations
	p, _ := Parse(src)
	u := Unroll(p, 2)
	f := u.Stmts[0].(*For)
	if len(f.Body) != 1 {
		t.Errorf("non-divisible trip count unrolled: %d stmts", len(f.Body))
	}
}

func TestUnrollSkipsNonCounted(t *testing.T) {
	cases := []string{
		`for (i = 0; i < n; i = i + 1) { a = a + 1; }`,  // dynamic bound
		`for (i = 0; i < 8; i = i + 1) { i = i + 1; }`,  // body writes i
		`for (i = 0; i != 8; i = i + 1) { a = a + 1; }`, // wrong cond op
		`for (i = 0; i < 8; i = i * 2) { a = a + 1; }`,  // wrong step
	}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		u := Unroll(p, 2)
		f := u.Stmts[0].(*For)
		if len(f.Body) != 1 {
			t.Errorf("unsafe loop was unrolled: %s", src)
		}
	}
}

// Property: unrolling by any supported factor preserves program results.
func TestQuickUnrollPreservesSemantics(t *testing.T) {
	src := `
		acc = 0;
		prod = 1;
		for (i = 0; i < 12; i = i + 1) {
			acc = acc + x;
			if (i % 2) { prod = prod + acc; }
		}
	`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Lower(p, "main")
	if err != nil {
		t.Fatal(err)
	}
	prop := func(x int64, fsel uint8) bool {
		factor := []int{2, 3, 4, 6}[int(fsel)%4]
		u, err := Lower(Unroll(p, factor), "main")
		if err != nil {
			return false
		}
		m1 := map[string]int64{"x": x % 1000}
		m2 := map[string]int64{"x": x % 1000}
		if err := ir.EvalFunc(base, m1, 0); err != nil {
			return false
		}
		if err := ir.EvalFunc(u, m2, 0); err != nil {
			return false
		}
		return m1["acc"] == m2["acc"] && m1["prod"] == m2["prod"]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBreak(t *testing.T) {
	src := `
		s = 0;
		for (i = 0; i < 100; i = i + 1) {
			if (i == 5) { break; }
			s = s + i;
		}
		after = i;
	`
	mem := run(t, src, nil)
	if mem["s"] != 10 {
		t.Errorf("s = %d, want 10", mem["s"])
	}
	if mem["after"] != 5 {
		t.Errorf("after = %d, want 5 (break skips post)", mem["after"])
	}
}

func TestContinueRunsForPost(t *testing.T) {
	src := `
		s = 0;
		for (i = 0; i < 10; i = i + 1) {
			if (i % 2 == 0) { continue; }
			s = s + i;
		}
	`
	mem := run(t, src, nil)
	if mem["s"] != 1+3+5+7+9 {
		t.Errorf("s = %d, want 25 (continue must run the post)", mem["s"])
	}
	if mem["i"] != 10 {
		t.Errorf("i = %d, want 10", mem["i"])
	}
}

func TestBreakContinueInWhile(t *testing.T) {
	src := `
		n = 0;
		hits = 0;
		while (1) {
			n = n + 1;
			if (n >= 20) { break; }
			if (n % 3) { continue; }
			hits = hits + 1;
		}
	`
	mem := run(t, src, nil)
	if mem["n"] != 20 {
		t.Errorf("n = %d, want 20", mem["n"])
	}
	if mem["hits"] != 6 { // 3,6,9,12,15,18
		t.Errorf("hits = %d, want 6", mem["hits"])
	}
}

func TestBreakBindsToInnerLoop(t *testing.T) {
	src := `
		total = 0;
		for (i = 0; i < 3; i = i + 1) {
			for (j = 0; j < 10; j = j + 1) {
				if (j == 2) { break; }
				total = total + 1;
			}
		}
	`
	mem := run(t, src, nil)
	if mem["total"] != 6 {
		t.Errorf("total = %d, want 6 (inner break only)", mem["total"])
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{`break;`, `continue;`, `if (x) { break; }`} {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, err := Lower(p, "main"); err == nil {
			t.Errorf("accepted %q outside a loop", src)
		}
	}
}

func TestUnrollSkipsLoopsWithEscapes(t *testing.T) {
	src := `for (i = 0; i < 8; i = i + 1) { if (i == 3) { break; } a = a + 1; }`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := Unroll(p, 2)
	f := u.Stmts[0].(*For)
	if len(f.Body) != 2 {
		t.Errorf("loop with break was unrolled")
	}
	// But nested loops with their own escapes unroll the OUTER loop fine.
	src2 := `for (i = 0; i < 8; i = i + 1) { while (x) { break; } a = a + 1; }`
	p2, _ := Parse(src2)
	u2 := Unroll(p2, 2)
	f2 := u2.Stmts[0].(*For)
	if len(f2.Body) <= 2 {
		t.Errorf("outer loop with only nested escapes was not unrolled")
	}
}
