package lang

import (
	"fmt"

	"aviv/internal/ir"
)

// Lower translates a parsed program into the IR: basic-block expression
// DAGs connected by control flow, the exact input shape the AVIV back
// end starts from (paper Sec. II).
func Lower(p *Program, name string) (*ir.Func, error) {
	lw := &lowerer{fn: &ir.Func{Name: name}}
	lw.cur = lw.newBlock("entry")
	done, err := lw.stmts(p.Stmts)
	if err != nil {
		return nil, err
	}
	if !done {
		lw.cur.Return()
		lw.seal()
	}
	if err := lw.fn.Verify(); err != nil {
		return nil, fmt.Errorf("lang: lowering produced invalid IR: %w", err)
	}
	return lw.fn, nil
}

type lowerer struct {
	fn     *ir.Func
	cur    *ir.Builder
	nameID int
	// loops tracks enclosing loop targets for break/continue.
	loops []loopCtx
}

type loopCtx struct {
	continueTo string // the condition head (while) or post block (for)
	breakTo    string // the loop exit
}

func (lw *lowerer) newBlock(name string) *ir.Builder {
	if name == "" {
		lw.nameID++
		name = fmt.Sprintf("b%d", lw.nameID)
	}
	return ir.NewBuilder(name)
}

// seal finalizes the current builder into the function.
func (lw *lowerer) seal() {
	lw.fn.Blocks = append(lw.fn.Blocks, lw.cur.Finish())
	lw.cur = nil
}

// stmts lowers a statement list; it reports whether control definitely
// left the current block (a return was lowered).
func (lw *lowerer) stmts(ss []Stmt) (done bool, err error) {
	for i, s := range ss {
		done, err := lw.stmt(s)
		if err != nil {
			return false, err
		}
		if done {
			if i != len(ss)-1 {
				return false, fmt.Errorf("lang: unreachable statements after return/break/continue")
			}
			return true, nil
		}
	}
	return false, nil
}

func (lw *lowerer) stmt(s Stmt) (done bool, err error) {
	switch s := s.(type) {
	case *Assign:
		x, err := lw.expr(s.X)
		if err != nil {
			return false, err
		}
		lw.cur.Store(s.Name, x)
		return false, nil

	case *Return:
		lw.cur.Return()
		lw.seal()
		return true, nil

	case *Break:
		if len(lw.loops) == 0 {
			return false, fmt.Errorf("lang: break outside a loop")
		}
		lw.cur.Jump(lw.loops[len(lw.loops)-1].breakTo)
		lw.seal()
		return true, nil

	case *Continue:
		if len(lw.loops) == 0 {
			return false, fmt.Errorf("lang: continue outside a loop")
		}
		lw.cur.Jump(lw.loops[len(lw.loops)-1].continueTo)
		lw.seal()
		return true, nil

	case *If:
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return false, err
		}
		thenB := lw.newBlock("")
		joinB := lw.newBlock("")
		elseName := joinB.Block.Name
		var elseB *ir.Builder
		if s.Else != nil {
			elseB = lw.newBlock("")
			elseName = elseB.Block.Name
		}
		lw.cur.Branch(cond, thenB.Block.Name, elseName)
		lw.seal()

		lw.cur = thenB
		thenDone, err := lw.stmts(s.Then)
		if err != nil {
			return false, err
		}
		if !thenDone {
			lw.cur.Jump(joinB.Block.Name)
			lw.seal()
		}
		elseDone := false
		if elseB != nil {
			lw.cur = elseB
			elseDone, err = lw.stmts(s.Else)
			if err != nil {
				return false, err
			}
			if !elseDone {
				lw.cur.Jump(joinB.Block.Name)
				lw.seal()
			}
		}
		if thenDone && (s.Else != nil && elseDone) {
			// Both arms returned; the join block is unreachable but must
			// exist because nothing jumps to it — drop it.
			return true, nil
		}
		lw.cur = joinB
		return false, nil

	case *While:
		headB := lw.newBlock("")
		lw.cur.Jump(headB.Block.Name)
		lw.seal()

		bodyB := lw.newBlock("")
		exitB := lw.newBlock("")
		lw.cur = headB
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return false, err
		}
		lw.cur.Branch(cond, bodyB.Block.Name, exitB.Block.Name)
		head := lw.cur.Block.Name
		lw.seal()

		lw.loops = append(lw.loops, loopCtx{continueTo: head, breakTo: exitB.Block.Name})
		lw.cur = bodyB
		bodyDone, err := lw.stmts(s.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		if err != nil {
			return false, err
		}
		if !bodyDone {
			lw.cur.Jump(head)
			lw.seal()
		}
		lw.cur = exitB
		return false, nil

	case *For:
		// Explicit post block so continue re-runs the increment:
		//   init; head: br(cond, body, exit); body ...-> post; post -> head
		if _, err := lw.stmt(s.Init); err != nil {
			return false, err
		}
		headB := lw.newBlock("")
		lw.cur.Jump(headB.Block.Name)
		lw.seal()

		bodyB := lw.newBlock("")
		postB := lw.newBlock("")
		exitB := lw.newBlock("")
		lw.cur = headB
		cond, err := lw.expr(s.Cond)
		if err != nil {
			return false, err
		}
		lw.cur.Branch(cond, bodyB.Block.Name, exitB.Block.Name)
		head := lw.cur.Block.Name
		lw.seal()

		lw.loops = append(lw.loops, loopCtx{continueTo: postB.Block.Name, breakTo: exitB.Block.Name})
		lw.cur = bodyB
		bodyDone, err := lw.stmts(s.Body)
		lw.loops = lw.loops[:len(lw.loops)-1]
		if err != nil {
			return false, err
		}
		if !bodyDone {
			lw.cur.Jump(postB.Block.Name)
			lw.seal()
		}
		lw.cur = postB
		if _, err := lw.stmt(s.Post); err != nil {
			return false, err
		}
		lw.cur.Jump(head)
		lw.seal()
		lw.cur = exitB
		return false, nil

	default:
		return false, fmt.Errorf("lang: unknown statement %T", s)
	}
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpMod,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpCmpEQ, "!=": ir.OpCmpNE,
	"<": ir.OpCmpLT, "<=": ir.OpCmpLE, ">": ir.OpCmpGT, ">=": ir.OpCmpGE,
}

func (lw *lowerer) expr(x Expr) (*ir.Node, error) {
	switch x := x.(type) {
	case *Num:
		return lw.cur.Const(x.Value), nil
	case *Var:
		return lw.cur.Load(x.Name), nil
	case *Un:
		v, err := lw.expr(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			return lw.cur.Op(ir.OpNeg, v), nil
		case "~":
			return lw.cur.Op(ir.OpCompl, v), nil
		case "!":
			return lw.cur.Op(ir.OpCmpEQ, v, lw.cur.Const(0)), nil
		}
		return nil, fmt.Errorf("lang: unknown unary op %q", x.Op)
	case *Bin:
		l, err := lw.expr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.expr(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "&&":
			// Expressions are side-effect free, so logical ops need no
			// short circuit: a && b == (a != 0) & (b != 0).
			ln := lw.cur.Op(ir.OpCmpNE, l, lw.cur.Const(0))
			rn := lw.cur.Op(ir.OpCmpNE, r, lw.cur.Const(0))
			return lw.cur.Op(ir.OpAnd, ln, rn), nil
		case "||":
			ln := lw.cur.Op(ir.OpCmpNE, l, lw.cur.Const(0))
			rn := lw.cur.Op(ir.OpCmpNE, r, lw.cur.Const(0))
			return lw.cur.Op(ir.OpOr, ln, rn), nil
		}
		op, ok := binOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("lang: unknown operator %q", x.Op)
		}
		return lw.cur.Op(op, l, r), nil
	}
	return nil, fmt.Errorf("lang: unknown expression %T", x)
}
