x = 1;
while (1) {
  x = x + 2;
}
out = x;
