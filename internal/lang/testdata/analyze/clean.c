x = a + b;
if (x > 0) {
  out = x;
} else {
  out = 0 - x;
}
