x = 5;
while (1) {
  x = a;
}
