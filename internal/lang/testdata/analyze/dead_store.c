t = a + b;
if (c) {
  t = a;
} else {
  t = b;
}
out = t * 2;
