x = x + 1;
if (a) {
  y = 5;
}
out = y + x;
