// Package lang is the front end of the reproduction: a small C-like
// language (assignments, arithmetic/logic expressions, if/while/for,
// return) that is parsed and lowered to the basic-block expression DAGs
// plus control flow that the AVIV back end consumes — the role SUIF and
// SPAM play in the paper's Fig. 1. AST-level loop unrolling (the
// machine-independent transformation the paper's Ex3–Ex5 rely on) is
// provided by Unroll.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	line int
}

var keywords = map[string]bool{
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"break": true, "continue": true,
}

// multi-character operators, longest first.
var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '/' && i+1 < len(rs) && rs[i+1] == '/':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			toks = append(toks, token{tokNumber, string(rs[i:j]), line})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			word := string(rs[i:j])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, line})
			i = j
		default:
			matched := false
			if i+1 < len(rs) {
				two := string(rs[i : i+2])
				for _, p := range punct2 {
					if two == p {
						toks = append(toks, token{tokPunct, p, line})
						i += 2
						matched = true
						break
					}
				}
			}
			if matched {
				break
			}
			if strings.ContainsRune("+-*/%&|^~!<>=();{},", r) {
				toks = append(toks, token{tokPunct, string(r), line})
				i++
				break
			}
			return nil, fmt.Errorf("lang: line %d: unexpected character %q", line, r)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
