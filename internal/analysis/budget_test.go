//go:build !noarchtest

package analysis_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"aviv/internal/analysis"
)

// suppressionBudget is the checked-in shape of
// testdata/suppression_budget.json: the exact number of //lint:reason
// annotations the tree is allowed to carry, and how many findings of
// each pass they silence. Adding a suppression means editing the table
// in the same change — the budget makes every silenced finding a
// reviewed decision instead of an invisible one.
type suppressionBudget struct {
	Comment          string         `json:"comment"`
	TotalAnnotations int            `json:"total_annotations"`
	SilencedPerPass  map[string]int `json:"silenced_per_pass"`
}

// TestSuppressionBudget audits the tree's //lint:reason annotations
// against the checked-in budget, in both directions: an unbudgeted
// suppression fails, and so does a budget entry whose suppression has
// been removed. Annotations that no longer silence anything are stale
// and fail too.
func TestSuppressionBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("budget audit loads and type-checks the whole module; skipped in -short")
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "suppression_budget.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want suppressionBudget
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("decoding suppression budget: %v", err)
	}

	fset, pkgs := loadModulePackages(t, "aviv/...")
	_, silenced, err := analysis.RunAll(fset, pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]int{}
	for _, f := range silenced {
		got[f.Analyzer]++
	}
	for pass, n := range got {
		if n != want.SilencedPerPass[pass] {
			t.Errorf("pass %s silences %d finding(s), budget allows %d; update testdata/suppression_budget.json deliberately",
				pass, n, want.SilencedPerPass[pass])
		}
	}
	for pass, n := range want.SilencedPerPass {
		if _, ok := got[pass]; !ok && n != 0 {
			t.Errorf("budget reserves %d suppression(s) for pass %s but the tree has none; shrink the budget", n, pass)
		}
	}

	var sites []analysis.SuppressionSite
	for _, pkg := range pkgs {
		sites = append(sites, analysis.SuppressionSites(fset, pkg.Files)...)
	}
	if len(sites) != want.TotalAnnotations {
		t.Errorf("tree has %d //lint:reason annotation(s), budget allows %d", len(sites), want.TotalAnnotations)
	}
	// A suppression that silences nothing is dead weight: either the
	// code changed under it or the pass did. Delete it.
	for _, s := range sites {
		covers := false
		for _, f := range silenced {
			if s.Covers(f.Position) {
				covers = true
				break
			}
		}
		if !covers {
			t.Errorf("stale suppression at %s:%d (%q): it silences no finding", s.File, s.Line, s.Reason)
		}
	}
}
