// Package analysis is the compiler's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer / Pass / Diagnostic) plus the aviv-specific passes
// that enforce the repository's load-bearing invariants at compile time:
//
//   - layering       — the package import graph must match the declared
//     layer DAG in layers.go (ir/isdl/bitset at the bottom, the covering
//     engine in the middle, server/zoo/bench on top, cmd above all);
//   - determinism    — compile-path packages must not let map iteration
//     order, wall clocks, or global randomness reach an output;
//   - mutexhygiene   — no channel sends or calls into other locking
//     functions while a mutex is held;
//   - errctx         — error-wrapping fmt.Errorf must use %w in the
//     packages that define structured error types;
//   - suppress       — every //lint:reason annotation must carry a
//     non-empty justification.
//
// The x/tools module is deliberately not a dependency: the repo builds
// offline from the standard library alone, so the framework here mirrors
// the x/tools API shape (an Analyzer with a Run func over a Pass that
// Reports Diagnostics) without importing it. Driving happens through
// cmd/avivlint (a multichecker) and through the archtest in this
// package, which runs the same passes under plain `go test`.
//
// Diagnostics are suppressed, one site at a time, with an inline comment
//
//	//lint:reason <non-empty justification>
//
// on the flagged line or the line directly above it. An empty reason is
// itself a diagnostic, so every suppression documents why the flagged
// code is in fact safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the passes could be ported
// to a real multichecker driver without rewriting their Run functions.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// avivlint command line. Names are stable API: tests enumerate
	// them exactly.
	Name string

	// Doc is a one-paragraph description, shown by `avivlint -list`.
	Doc string

	// NeedTypes reports whether Run requires a type-checked package.
	// Purely syntactic passes (layering, suppress) leave it false and
	// can run on code whose imports do not resolve, which is what
	// lets fixtures declare impossible imports.
	NeedTypes bool

	// NeedProgram reports whether Run requires the whole-program view
	// (Pass.Prog): the callgraph and the fact store. Implies NeedTypes.
	// The driver builds one Program per Run and shares it across
	// analyzers; under analysistest, RunOn builds a Program over just
	// the fixture package, so interprocedural passes see a one-package
	// program there.
	NeedProgram bool

	// Components restricts the pass to the listed module components
	// (see componentOf; e.g. "internal/cover"). Nil means every
	// component.
	Components []string

	// Run executes the pass over one package, reporting findings via
	// pass.Report. Returning an error aborts the whole run; ordinary
	// findings are diagnostics, not errors.
	Run func(pass *Pass) error
}

// A Pass connects one Analyzer run to one package.
type Pass struct {
	Analyzer *Analyzer

	// Path is the package's full import path ("aviv/internal/cover").
	Path string

	Fset  *token.FileSet
	Files []*ast.File

	// Pkg and Info hold type information when Analyzer.NeedTypes is
	// set; both are nil for syntactic passes.
	Pkg  *types.Package
	Info *types.Info

	// Prog is the whole-program view, set when Analyzer.NeedProgram is.
	Prog *Program

	diags *[]Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Analyzer is the reporting pass's name; the driver fills it in.
	Analyzer string

	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding; `avivlint -fix` applies it.
	Fix *Fix
}

// A Fix is a set of non-overlapping text edits.
type Fix struct {
	Message string
	Edits   []Edit
}

// An Edit replaces the source range [Pos, End) with New.
type Edit struct {
	Pos, End token.Pos
	New      string
}

// Report records one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

// Reportf records one finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunOn executes the analyzer over an already-parsed package and
// returns its raw diagnostics. It is the entry point the analysistest
// harness uses; cmd/avivlint and the archtest go through Run, which
// adds suppression filtering and deterministic ordering.
func (a *Analyzer) RunOn(fset *token.FileSet, path string, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Path:     path,
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		diags:    &diags,
	}
	if a.NeedProgram {
		pass.Prog = NewProgram(fset, []*Package{{
			Path:  path,
			Files: files,
			Types: pkg,
			Info:  info,
		}})
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// FilterSuppressed drops diagnostics covered by a non-empty
// //lint:reason annotation, mirroring what the driver does on real
// packages so fixtures exercise the same rule.
func FilterSuppressed(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	sup := suppressionsIn(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		if !suppressed(sup, fset.Position(d.Pos)) {
			out = append(out, d)
		}
	}
	return out
}
