package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// detComponents are the compile-path packages: everything that runs
// between source text and emitted bytes, where any ordering leak
// breaks the byte-identical-output guarantee the differential tests
// stand on.
var detComponents = []string{
	"internal/cover",
	"internal/sndag",
	"internal/regalloc",
	"internal/place",
	"internal/asm",
	"internal/opt",
	"internal/dataflow",
	"internal/dataflow/diag",
	"internal/verify",
	// The delta engine's stitched output must be byte-identical to a
	// from-scratch compile; any ordering leak in its key derivation or
	// artifact assembly breaks that directly.
	"internal/delta",
	// The machine-zoo generator is seed-deterministic by contract: the
	// same seed must emit byte-identical machine descriptions, so it is
	// compile-path for ordering purposes.
	"internal/zoo",
}

// Determinism flags constructs that let run-to-run nondeterminism
// reach a compile result: map iteration whose order escapes (into an
// unsorted slice, an output stream, or a returned element), wall-clock
// reads, global randomness, and fmt printing of maps whose keys
// format by address.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "in compile-path packages, flag map-iteration order escaping into " +
		"appended slices, emitted output, or returned elements; time.Now; " +
		"math/rand; and fmt printing of address-keyed maps",
	NeedTypes:  true,
	Components: detComponents,
	Run:        runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		// math/rand is banned wholesale on the compile path: even a
		// seeded generator is shared mutable state whose draw order
		// depends on scheduling. Flag the import, once.
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "determinism: math/rand imported in a compile-path package; randomness must flow from explicit seeds outside the compiler")
				}
			}
		}

		stmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok || !rangesOverMap(pass.Info, rng) {
					continue
				}
				checkMapRange(pass, rng, list[i+1:])
			}
		})

		inspectNoFuncLit(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := pkgFuncCall(pass.Info, call, "time"); name {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "determinism: wall-clock read (time.%s) in a compile-path package; timings belong in internal/metrics, outside the compile result", name)
			}
			if name := pkgFuncCall(pass.Info, call, "fmt"); isPrintName(name) {
				for _, arg := range call.Args {
					if t, ok := pass.Info.Types[arg]; ok && hasUnorderedMapKeys(t.Type) {
						pass.Reportf(arg.Pos(), "determinism: fmt.%s formats a map whose keys print in address order (%s); emit sorted entries instead", name, types.TypeString(t.Type, nil))
					}
				}
			}
			return true
		})
	}
	return nil
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	t, ok := info.Types[rng.X]
	if !ok || t.Type == nil {
		return false
	}
	_, isMap := t.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one range-over-map body for order leaks.
// following holds the statements after the loop in its enclosing list,
// for the sort-rescue scan.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, following []ast.Stmt) {
	keyObj := declaredObj(pass.Info, rng.Key)
	valObj := declaredObj(pass.Info, rng.Value)

	inspectNoFuncLit(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || len(n.Lhs) == 0 {
					continue
				}
				target := appendTarget(pass.Info, n.Lhs[0])
				if target == nil || declaredWithin(target, rng) {
					continue
				}
				if sortedAfter(pass.Info, following, target) {
					continue // append-then-sort: the canonical deterministic idiom
				}
				pass.Reportf(n.Pos(), "determinism: map iteration order reaches %s via append and the slice is not sorted afterwards; sort it (or iterate sorted keys)", target.Name())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObject(pass.Info, res, keyObj) || usesObject(pass.Info, res, valObj) {
					pass.Reportf(n.Pos(), "determinism: returning an element chosen by map iteration selects an arbitrary entry")
					break
				}
			}
		case *ast.CallExpr:
			if name := pkgFuncCall(pass.Info, n, "fmt"); isPrintName(name) {
				pass.Reportf(n.Pos(), "determinism: fmt.%s inside range over map emits in random order; collect and sort first", name)
			} else if isWriteMethod(n) {
				pass.Reportf(n.Pos(), "determinism: write call inside range over map emits in random order; collect and sort first")
			}
		}
		return true
	})
}

// declaredObj returns the object an ident in a range clause defines or
// assigns, nil for `_` or non-ident expressions.
func declaredObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTarget resolves the variable an append assignment writes to:
// a plain ident, or the field/variable at the base of a selector.
func appendTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return info.ObjectOf(lhs)
	case *ast.SelectorExpr:
		return info.ObjectOf(lhs.Sel)
	}
	return nil
}

// declaredWithin reports whether obj is declared inside the range
// statement itself — appends to loop-local slices cannot leak order.
func declaredWithin(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortedAfter reports whether any statement after the loop passes
// target to a sort/slices call — the append-then-sort idiom that makes
// map-order appends deterministic.
func sortedAfter(info *types.Info, following []ast.Stmt, target types.Object) bool {
	for _, stmt := range following {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgFuncCall(info, call, "sort") != "" || pkgFuncCall(info, call, "slices") != "" {
				for _, arg := range call.Args {
					if usesObject(info, arg, target) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println",
		"Fprint", "Fprintf", "Fprintln",
		"Sprint", "Sprintf", "Sprintln":
		return true
	}
	return false
}

// isWriteMethod matches method calls that append to an output stream:
// Write, WriteString, WriteByte, WriteRune on any receiver.
func isWriteMethod(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// hasUnorderedMapKeys reports whether t is a map whose key type fmt
// orders by machine address (pointers, channels, functions) or by
// unstable type identity (interfaces) — the cases where fmt's sorted
// map printing is still nondeterministic across runs.
func hasUnorderedMapKeys(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	switch m.Key().Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}
