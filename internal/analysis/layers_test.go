package analysis

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestLayerTableIsDAG pins the internal consistency of layers.go:
// every allowed edge connects two declared components and points
// strictly downward, so the edge table cannot smuggle in a cycle or an
// upward dependency that the coarse layer story contradicts.
func TestLayerTableIsDAG(t *testing.T) {
	for from, tos := range allowedImports {
		fromLayer, ok := layerOf[from]
		if !ok {
			t.Errorf("allowedImports key %q is not in layerOf", from)
			continue
		}
		seen := map[string]bool{}
		for _, to := range tos {
			if seen[to] {
				t.Errorf("duplicate allowed edge %s -> %s", from, to)
			}
			seen[to] = true
			toLayer, ok := layerOf[to]
			if !ok {
				t.Errorf("allowed edge %s -> %s targets undeclared component", from, to)
				continue
			}
			if toLayer >= fromLayer {
				t.Errorf("allowed edge %s (layer %d) -> %s (layer %d) does not point strictly downward",
					from, fromLayer, to, toLayer)
			}
		}
	}
	for comp := range layerOf {
		if comp == "cmd" || comp == "examples" {
			if _, ok := allowedImports[comp]; ok {
				t.Errorf("%s must not appear in allowedImports; it may import anything by rule", comp)
			}
			continue
		}
		if _, ok := allowedImports[comp]; !ok {
			t.Errorf("component %q has a layer but no allowedImports entry", comp)
		}
	}
}

// TestCheckEdgeRejectsUpward is the synthetic-graph proof the
// acceptance criteria ask for: the exact upward edge ir -> server is
// rejected, as is importing cmd, while declared edges pass.
func TestCheckEdgeRejectsUpward(t *testing.T) {
	if err := CheckEdge("internal/ir", "internal/server"); err == nil {
		t.Fatal("ir -> server must be rejected")
	} else if !strings.Contains(err.Error(), "internal/ir -> internal/server") {
		t.Errorf("violation must name the exact edge, got: %v", err)
	}
	if err := CheckEdge("internal/server", "cmd"); err == nil ||
		!strings.Contains(err.Error(), "nothing may import cmd") {
		t.Errorf("importing cmd must be rejected by rule, got: %v", err)
	}
	if err := CheckEdge("internal/cover", "internal/ir"); err != nil {
		t.Errorf("declared edge cover -> ir rejected: %v", err)
	}
	if err := CheckEdge("cmd", "internal/server"); err != nil {
		t.Errorf("cmd may import any component, got: %v", err)
	}
	if err := CheckEdge("internal/ghost", "internal/ir"); err == nil {
		t.Error("undeclared source component must be rejected")
	}
}

func TestComponentMapping(t *testing.T) {
	cases := map[string]string{
		"aviv":                                "aviv",
		"aviv/internal/cover":                 "internal/cover",
		"aviv/internal/dataflow/diag":         "internal/dataflow/diag",
		"aviv/cmd/avivcc":                     "cmd",
		"aviv/examples/quickstart":            "examples",
		"aviv/internal/analysis/analysistest": "internal/analysis/analysistest",
		"fmt":                                 "",
		"avivother/internal/x":                "",
	}
	for path, want := range cases {
		if got := Component(path); got != want {
			t.Errorf("Component(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestLayerTableMatchesReality diffs the declared edge table against
// the import graph `go list` reports, in both directions: an
// undeclared real edge means the architecture drifted (avivlint would
// fail), and a declared edge with no real import means the table is
// stale and overstates coupling.
func TestLayerTableMatchesReality(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	cmd := exec.Command("go", "list", "-json=ImportPath,Imports", "aviv/...")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v\n%s", err, stderr.String())
	}
	real := map[string]map[string]bool{} // from component -> to components
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Imports    []string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		from := Component(p.ImportPath)
		if from == "" {
			continue
		}
		if real[from] == nil {
			real[from] = map[string]bool{}
		}
		for _, imp := range p.Imports {
			if to := Component(imp); to != "" && to != from {
				real[from][to] = true
			}
		}
	}
	if len(real) < 10 {
		t.Fatalf("go list saw only %d components; wrong working directory?", len(real))
	}
	// Direction 1: every real edge must be legal.
	for from, tos := range real {
		for to := range tos {
			if err := CheckEdge(from, to); err != nil {
				t.Errorf("real import violates the declared architecture: %v", err)
			}
		}
	}
	// Direction 2: every declared edge must exist in reality.
	for from, tos := range allowedImports {
		for _, to := range tos {
			if !real[from][to] {
				t.Errorf("stale allowed edge %s -> %s: no such import in the tree; prune it from layers.go", from, to)
			}
		}
	}
	// Every real component must be declared.
	for from := range real {
		if _, ok := layerOf[from]; !ok {
			t.Errorf("package component %q exists in the tree but has no layer", from)
		}
	}
}

var designLayerRe = regexp.MustCompile(`^\s*layer (\d+): (.+?)\s*$`)

// TestLayeringMatchesDesign parses the layer list in DESIGN.md §11 and
// requires exact agreement with layerOf: same components, same layer
// numbers. Editing the architecture means editing both, consciously.
func TestLayeringMatchesDesign(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	doc := map[string]int{}
	for _, line := range strings.Split(string(data), "\n") {
		m := designLayerRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		layer, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatalf("bad layer number in DESIGN.md line %q", line)
		}
		for _, comp := range strings.Fields(m[2]) {
			if prev, dup := doc[comp]; dup {
				t.Errorf("DESIGN.md lists %s twice (layers %d and %d)", comp, prev, layer)
			}
			doc[comp] = layer
		}
	}
	if len(doc) == 0 {
		t.Fatal("DESIGN.md contains no `layer N: ...` lines; §11 must carry the machine-readable layer list")
	}
	for comp, layer := range layerOf {
		if docLayer, ok := doc[comp]; !ok {
			t.Errorf("component %s (layer %d) is missing from the DESIGN.md layer list", comp, layer)
		} else if docLayer != layer {
			t.Errorf("component %s: DESIGN.md says layer %d, layers.go says %d", comp, docLayer, layer)
		}
	}
	for comp := range doc {
		if _, ok := layerOf[comp]; !ok {
			t.Errorf("DESIGN.md lists component %s which layers.go does not declare", comp)
		}
	}
}
