package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// ApplyFixes computes the rewritten contents of every file touched by a
// finding that carries a suggested fix. read supplies the current file
// contents (os.ReadFile in cmd/avivlint; an in-memory map in tests, who
// use it to prove -fix is idempotent without touching disk). It returns
// the new contents per filename and the number of fixes applied.
// Overlapping or out-of-range edits are errors, not silent corruption.
func ApplyFixes(fset *token.FileSet, findings []Finding, read func(string) ([]byte, error)) (map[string][]byte, int, error) {
	type edit struct {
		start, end int
		text       string
	}
	byFile := map[string][]edit{}
	n := 0
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		n++
		for _, e := range f.Fix.Edits {
			pos := fset.Position(e.Pos)
			end := fset.Position(e.End)
			byFile[pos.Filename] = append(byFile[pos.Filename], edit{pos.Offset, end.Offset, e.New})
		}
	}
	out := make(map[string][]byte, len(byFile))
	for file, edits := range byFile {
		src, err := read(file)
		if err != nil {
			return nil, n, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i, e := range edits {
			if i > 0 && e.end > edits[i-1].start {
				return nil, n, fmt.Errorf("%s: overlapping fixes", file)
			}
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				return nil, n, fmt.Errorf("%s: fix out of range", file)
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		out[file] = src
	}
	return out, n, nil
}
