package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed, and (for module packages)
// type-checked package, ready for analyzer passes.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File

	// Types and Info are nil only when type checking was not
	// requested or failed; Load fails hard instead of handing
	// NeedTypes analyzers a half-typed package.
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// goList runs `go list -deps -export -json` for patterns in dir and
// decodes the package stream. -export makes the go command write export
// data for every dependency into the build cache, which is what lets a
// std-library-only driver type-check against compiled signatures
// instead of re-type-checking the world from source.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to export data files produced by
// `go list -export`, for use with go/importer's gc machinery.
type exportImporter map[string]string // import path -> export file

func (m exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := m[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Load parses and type-checks the packages matching patterns, resolved
// relative to dir (the module root, or any directory inside it).
// Dependencies — standard library included — are consumed as compiled
// export data, so a full-module load costs about one `go build`.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(exportImporter, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	imp := importer.ForCompiler(fset, "gc", exports.lookup)

	var out []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Incomplete {
			return nil, fmt.Errorf("package %s did not build; fix the build before linting", p.ImportPath)
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir}
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		pkg.Info = NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("type checking %s: %w", p.ImportPath, err)
		}
		pkg.Types = tpkg
		out = append(out, pkg)
	}
	return out, nil
}

// NewTypesInfo allocates the types.Info maps every NeedTypes analyzer
// relies on; the loader and the analysistest harness share it so both
// environments hand passes the same type facts.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// StdImporter returns a types.Importer able to resolve the given
// standard-library import paths (and their dependencies) from compiled
// export data. The analysistest harness uses it to type-check fixture
// packages, whose only resolvable imports are std ones.
func StdImporter(fset *token.FileSet, paths ...string) (types.Importer, error) {
	if len(paths) == 0 {
		return importer.ForCompiler(fset, "gc", func(string) (io.ReadCloser, error) {
			return nil, fmt.Errorf("no imports expected")
		}), nil
	}
	listed, err := goList(".", paths)
	if err != nil {
		return nil, err
	}
	exports := make(exportImporter, len(listed))
	for _, p := range listed {
		exports[p.ImportPath] = p.Export
	}
	return importer.ForCompiler(fset, "gc", exports.lookup), nil
}
