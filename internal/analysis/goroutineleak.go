package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GoroutineLeak flags `go` statements whose goroutine can block
// forever. Three shapes are recognized:
//
//   - a channel send in the goroutine body when a program-wide census
//     finds no receive (and no buffer) for that channel anywhere, or a
//     receive when nothing ever sends or closes;
//   - a sync.WaitGroup.Wait that blocks forever because the goroutine
//     it waits on skips Done on some path (or never calls it), or
//     because Add happens inside the goroutine and races with Wait;
//   - in the server components, a `for { select { ... } }` loop with no
//     <-ctx.Done() case and no terminating clause, so the goroutine
//     outlives its request and the server's shutdown.
//
// The channel census is whole-program: every channel-typed variable or
// field is credited with its sends, receives, closes, and ranges; a
// channel that escapes through a parameter, a composite literal, or any
// syntactic shape the census cannot attribute is exempt — the pass only
// reports channels whose complete usage is visible, trading recall for
// zero speculation. Goroutine bodies behind `go f(...)` resolve through
// the callgraph to f's declaration.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "flag go statements whose goroutine can block forever: channel " +
		"operations with no reachable counterpart, WaitGroup waits whose Done " +
		"can be skipped, and server select loops with no ctx.Done case",
	NeedTypes:   true,
	NeedProgram: true,
	Run:         runGoroutineLeak,
}

// selectLoopComponents are the server-path components where a
// non-terminating select loop must carry a cancellation case.
var selectLoopComponents = map[string]bool{
	"internal/server":  true,
	"internal/cluster": true,
	"cmd":              true,
}

func runGoroutineLeak(pass *Pass) error {
	censusAny, err := pass.Prog.Memo("goroutineleak.census", func() (any, error) {
		return buildChanCensus(pass.Prog), nil
	})
	if err != nil {
		return err
	}
	census := censusAny.(*chanCensus)
	cg := pass.Prog.CallGraph()

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd, f, census, cg)
		}
	}
	return nil
}

// checkGoStmts examines every go statement in fd.
func checkGoStmts(pass *Pass, fd *ast.FuncDecl, file *ast.File, census *chanCensus, cg *CallGraph) {
	info := pass.Info
	waitRecvs := wgCallRecvs(info, fd.Body, "Wait")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body, calleeLabel := goroutineBody(info, g, cg)
		if body == nil {
			return true
		}
		checkGoChanOps(pass, g, body, calleeLabel, census)
		checkGoWaitGroup(pass, fd, file, g, body, waitRecvs)
		if selectLoopComponents[Component(pass.Path)] {
			checkSelectLoops(pass, body)
		}
		return true
	})
}

// goroutineBody resolves the statement list a go statement runs: the
// literal's body, or the declaration of a statically resolved callee
// (labelled for the diagnostic). Unresolved targets yield nil.
func goroutineBody(info *types.Info, g *ast.GoStmt, cg *CallGraph) (*ast.BlockStmt, string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, ""
	}
	var fn *types.Func
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return nil, ""
	}
	if n := cg.ByFunc[fn]; n != nil {
		return n.Decl.Body, n.Name()
	}
	return nil, ""
}

// checkGoChanOps flags channel operations in the goroutine body whose
// counterpart does not exist anywhere in the program. Operations inside
// a select are exempt: the select may have a live alternative.
func checkGoChanOps(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt, calleeLabel string, census *chanCensus) {
	where := ""
	if calleeLabel != "" {
		where = " (in " + calleeLabel + ")"
	}
	info := pass.Info
	inspectNoFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			if obj, _ := chanObjOf(info, n.Chan); obj != nil {
				if o := census.ops[obj]; o != nil && !o.escaped && !o.buffered && o.recvs == 0 {
					pass.Reportf(g.Pos(),
						"goroutineleak: goroutine sends on %s%s but the program has no receive from it; the send blocks forever",
						exprString(n.Chan), where)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj, _ := chanObjOf(info, n.X); obj != nil {
					if o := census.ops[obj]; o != nil && !o.escaped && o.sends == 0 && o.closes == 0 {
						pass.Reportf(g.Pos(),
							"goroutineleak: goroutine receives from %s%s but the program never sends on or closes it; the receive blocks forever",
							exprString(n.X), where)
					}
				}
			}
		case *ast.RangeStmt:
			if obj, _ := chanObjOf(info, n.X); obj != nil {
				if o := census.ops[obj]; o != nil && !o.escaped && o.sends == 0 && o.closes == 0 {
					pass.Reportf(g.Pos(),
						"goroutineleak: goroutine ranges over %s%s but the program never sends on or closes it; the loop blocks forever",
						exprString(n.X), where)
				}
			}
		}
		return true
	})
}

// checkGoWaitGroup enforces the Add-before-go / Done-on-all-paths
// protocol for goroutines a WaitGroup waits on.
func checkGoWaitGroup(pass *Pass, fd *ast.FuncDecl, file *ast.File, g *ast.GoStmt, body *ast.BlockStmt, waitRecvs map[string]bool) {
	info := pass.Info

	// Add inside the goroutine body races with a Wait outside it.
	inspectNoFuncLit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, recv := waitGroupMethod(info, call); name == "Add" &&
			waitRecvs[recv] && !hasWGCall(info, body, "Wait", recv) {
			pass.Reportf(call.Pos(),
				"goroutineleak: %s.Add inside the goroutine races with %s.Wait; Wait may run before Add and return early, or block forever — call Add before the go statement",
				recv, recv)
		}
		return true
	})

	// Done obligations: an Add on wg preceding this go statement in the
	// same statement list, with a Wait on wg in the function, obligates
	// the goroutine to call wg.Done on every path.
	for _, recv := range precedingAddRecvs(info, file, g) {
		if !waitRecvs[recv] {
			continue
		}
		hasOwn := hasWGCall(info, body, "Done", recv)
		if !hasOwn && !anyWGDone(info, body) {
			pass.Reportf(g.Pos(),
				"goroutineleak: goroutine never calls %s.Done after %s.Add; %s.Wait blocks forever",
				recv, recv, recv)
			continue
		}
		if hasOwn && !doneOnAllPaths(info, body.List, recv) {
			pass.Reportf(g.Pos(),
				"goroutineleak: %s.Done can be skipped on an early return in the goroutine; defer %s.Done() as its first statement",
				recv, recv)
		}
	}
}

// precedingAddRecvs returns the receivers of wg.Add calls that precede
// g in g's own enclosing statement list — the idiomatic Add-then-go
// pairing the obligation check keys on.
func precedingAddRecvs(info *types.Info, file *ast.File, g *ast.GoStmt) []string {
	var recvs []string
	stmtLists(file, func(list []ast.Stmt) {
		at := -1
		for i, s := range list {
			if s == ast.Stmt(g) {
				at = i
				break
			}
		}
		if at < 0 {
			return
		}
		for _, s := range list[:at] {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if name, recv := waitGroupMethod(info, call); name == "Add" {
				recvs = append(recvs, recv)
			}
		}
	})
	sort.Strings(recvs)
	return dedupeSorted(recvs)
}

// doneOnAllPaths reports whether every execution path through list
// reaches a recv.Done() call. It is deliberately conservative: a defer
// or an unconditional statement-level Done settles it; an if whose both
// branches settle it settles it; any statement that may escape the
// list (return, branch, panic) before Done is settled fails it.
func doneOnAllPaths(info *types.Info, list []ast.Stmt, recv string) bool {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if name, r := waitGroupMethod(info, s.Call); name == "Done" && r == recv {
				return true
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, r := waitGroupMethod(info, call); name == "Done" && r == recv {
					return true
				}
			}
		case *ast.IfStmt:
			if s.Else != nil {
				if els, ok := s.Else.(*ast.BlockStmt); ok &&
					doneOnAllPaths(info, s.Body.List, recv) &&
					doneOnAllPaths(info, els.List, recv) {
					return true
				}
			}
		}
		if mayEscapeList(stmt) {
			return false
		}
	}
	return false
}

// mayEscapeList reports whether executing stmt may leave the enclosing
// statement list other than by falling through: a return, branch, or
// panic anywhere inside it (goroutine bodies excluded).
func mayEscapeList(stmt ast.Stmt) bool {
	escapes := false
	inspectNoFuncLit(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			escapes = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				escapes = true
			}
		}
		return !escapes
	})
	return escapes
}

// checkSelectLoops flags `for { select { ... } }` loops with no
// cancellation case and no terminating clause.
func checkSelectLoops(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info
	inspectNoFuncLit(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		for _, stmt := range loop.Body.List {
			sel, ok := stmt.(*ast.SelectStmt)
			if !ok {
				continue
			}
			hasDone, hasDefault, terminates := false, false, false
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				if commWaitsOnCtxDone(info, cc.Comm) {
					hasDone = true
				}
				for _, bs := range cc.Body {
					if mayEscapeList(bs) {
						terminates = true
					}
				}
			}
			if !hasDone && !hasDefault && !terminates {
				pass.Reportf(sel.Pos(),
					"goroutineleak: select loop has no <-ctx.Done() case, no default, and no terminating clause; the goroutine outlives its request and server shutdown")
			}
		}
		return true
	})
}

// commWaitsOnCtxDone reports whether a select comm statement waits on a
// context's Done channel.
func commWaitsOnCtxDone(info *types.Info, comm ast.Stmt) bool {
	found := false
	ast.Inspect(comm, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isCtxDoneCall(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// isCtxDoneCall reports whether call is ctx.Done() for a
// context.Context receiver.
func isCtxDoneCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// waitGroupMethod matches calls to sync.WaitGroup methods, returning
// the method name and printed receiver (mirroring syncMutexMethod).
func waitGroupMethod(info *types.Info, call *ast.CallExpr) (name, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
		return sel.Sel.Name, exprString(sel.X)
	}
	return "", ""
}

// wgCallRecvs collects the printed receivers of WaitGroup calls with
// the given method name anywhere under n (closures included: a Wait in
// a closure is still a Wait something blocks on).
func wgCallRecvs(info *types.Info, n ast.Node, method string) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, recv := waitGroupMethod(info, call); name == method {
				out[recv] = true
			}
		}
		return true
	})
	return out
}

func hasWGCall(info *types.Info, n ast.Node, method, recv string) bool {
	return wgCallRecvs(info, n, method)[recv]
}

// anyWGDone reports whether the body, or any function it directly and
// statically calls, contains a WaitGroup.Done call — the one-level
// escape hatch for `go worker(&wg)` where Done lives in the callee.
func anyWGDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, _ := waitGroupMethod(info, call); name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- whole-program channel census ---

// chanCensus tallies, per channel-typed variable or field, every
// operation the program performs on it.
type chanCensus struct {
	ops map[types.Object]*chanOps
}

type chanOps struct {
	sends, recvs, closes int
	escaped              bool
	buffered             bool
}

func buildChanCensus(prog *Program) *chanCensus {
	census := &chanCensus{ops: make(map[types.Object]*chanOps)}
	get := func(obj types.Object) *chanOps {
		o := census.ops[obj]
		if o == nil {
			o = &chanOps{}
			census.ops[obj] = o
		}
		return o
	}

	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		if info == nil {
			continue
		}
		// consumed marks identifier references the census attributed to
		// a recognized operation; any other reference to a channel
		// means the channel escapes the census's view.
		consumed := make(map[*ast.Ident]bool)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if obj, id := chanObjOf(info, n.Chan); obj != nil {
						get(obj).sends++
						consumed[id] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if obj, id := chanObjOf(info, n.X); obj != nil {
							get(obj).recvs++
							consumed[id] = true
						}
					}
				case *ast.RangeStmt:
					if obj, id := chanObjOf(info, n.X); obj != nil {
						get(obj).recvs++
						consumed[id] = true
					}
				case *ast.CallExpr:
					if name := builtinName(info, n); name == "close" || name == "len" || name == "cap" {
						if obj, id := chanObjOf(info, n.Args[0]); obj != nil {
							if name == "close" {
								get(obj).closes++
							}
							consumed[id] = true
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, lhs := range n.Lhs {
							obj, id := chanObjOf(info, lhs)
							if obj == nil {
								continue
							}
							if isMake, buffered := makeChanCall(info, n.Rhs[i]); isMake {
								get(obj).buffered = get(obj).buffered || buffered
								consumed[id] = true
							}
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i >= len(n.Values) {
							break
						}
						obj, id := chanObjOf(info, name)
						if obj == nil {
							continue
						}
						if isMake, buffered := makeChanCall(info, n.Values[i]); isMake {
							get(obj).buffered = get(obj).buffered || buffered
							consumed[id] = true
						}
					}
				case *ast.FuncType:
					// A channel crossing a function boundary escapes.
					markFieldListEscaped(info, n.Params, get)
					markFieldListEscaped(info, n.Results, get)
				case *ast.FuncDecl:
					markFieldListEscaped(info, n.Recv, get)
				}
				return true
			})
		}
		// Any remaining reference to a channel-typed object is a shape
		// the census does not model: mark the channel escaped.
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || consumed[id] {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil || !isChanType(obj.Type()) {
					return true
				}
				if _, isVar := obj.(*types.Var); !isVar {
					return true
				}
				if info.Defs[id] != nil {
					return true // declarations are neutral
				}
				get(obj).escaped = true
				return true
			})
		}
	}
	return census
}

func markFieldListEscaped(info *types.Info, fl *ast.FieldList, get func(types.Object) *chanOps) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isChanType(obj.Type()) {
				get(obj).escaped = true
			}
		}
	}
}

// chanObjOf resolves a channel-typed expression to the variable or
// field it names, plus the identifier referencing it. Other shapes
// (map/slice elements, function results) return nil.
func chanObjOf(info *types.Info, expr ast.Expr) (types.Object, *ast.Ident) {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, nil
	}
	obj := info.ObjectOf(id)
	if obj == nil || !isChanType(obj.Type()) {
		return nil, nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil, nil
	}
	return obj, id
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return ""
	}
	if b, ok := info.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// makeChanCall reports whether e is a make(chan ...) call and whether
// the channel it makes is buffered. An unknown (non-constant) capacity
// counts as buffered: the census must not speculate about blocking.
func makeChanCall(info *types.Info, e ast.Expr) (isMake, buffered bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "make" {
		return false, false
	}
	if tv, ok := info.Types[call]; !ok || !isChanType(tv.Type) {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true, true
	}
	n, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return true, !exact || n > 0
}

// exprString renders an expression compactly for diagnostics, with the
// same printer syncMutexMethod uses for receivers.
func exprString(e ast.Expr) string {
	s := exprPrinted(e)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "..."
	}
	return s
}
