package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is a CHA-style (class-hierarchy analysis) callgraph over
// every function and method declared in the loaded packages. Static
// calls resolve through the type checker; a call through an interface
// method conservatively fans out to that method on every declared
// concrete type implementing the interface. Calls through plain
// function values are unresolved and produce no edge — the soundness
// cost is documented in DESIGN.md §12.
type CallGraph struct {
	// ByFunc indexes nodes by their *types.Func object.
	ByFunc map[*types.Func]*CallNode
	// Nodes lists every node in file-position order, the iteration
	// order all deterministic consumers use.
	Nodes []*CallNode
}

// A CallNode is one declared function or method with a body. Function
// literals are not nodes of their own: calls inside a literal are
// attributed to the enclosing declaration, which is how a summary of
// "what may run when f is invoked" stays whole.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists call edges in source order.
	Out []*CallEdge
}

// Name returns the node's diagnostic name: "pkg.Func" or
// "pkg.(*Recv).Method" as rendered by types.Func.
func (n *CallNode) Name() string {
	if n.Fn.Pkg() == nil {
		return n.Fn.Name()
	}
	return n.Fn.Pkg().Name() + "." + funcRecvPrefix(n.Fn) + n.Fn.Name()
}

func funcRecvPrefix(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}

// A CallEdge records one resolved call site.
type CallEdge struct {
	Caller *CallNode
	Callee *CallNode
	Site   *ast.CallExpr
	// Dynamic marks edges resolved by CHA through an interface
	// method — possible, not proven, targets.
	Dynamic bool
}

// buildCallGraph constructs the graph: index declared functions, then
// resolve every call site in every body.
func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{ByFunc: make(map[*types.Func]*CallNode)}
	for _, pkg := range prog.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
				cg.ByFunc[fn] = n
				cg.Nodes = append(cg.Nodes, n)
			}
		}
	}
	sort.Slice(cg.Nodes, func(i, j int) bool {
		pi := prog.Fset.Position(cg.Nodes[i].Decl.Pos())
		pj := prog.Fset.Position(cg.Nodes[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	concrete := concreteTypes(prog)
	for _, n := range cg.Nodes {
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range resolveCallees(info, call, cg, concrete) {
				n.Out = append(n.Out, &CallEdge{
					Caller:  n,
					Callee:  callee.node,
					Site:    call,
					Dynamic: callee.dynamic,
				})
			}
			return true
		})
	}
	return cg
}

type resolved struct {
	node    *CallNode
	dynamic bool
}

// resolveCallees maps one call expression to its possible callees
// among the program's declared functions.
func resolveCallees(info *types.Info, call *ast.CallExpr, cg *CallGraph, concrete []types.Type) []resolved {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if n := cg.ByFunc[fn]; n != nil {
				return []resolved{{n, false}}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
				return chaTargets(fn, iface, cg, concrete)
			}
		}
		if n := cg.ByFunc[fn]; n != nil {
			return []resolved{{n, false}}
		}
	}
	return nil
}

// chaTargets fans an interface method call out to the matching method
// on every declared concrete type implementing the interface.
func chaTargets(m *types.Func, iface *types.Interface, cg *CallGraph, concrete []types.Type) []resolved {
	var out []resolved
	for _, t := range concrete {
		pt := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		// Origin strips any instantiation so the lookup hits the
		// declared method the graph indexed.
		if n := cg.ByFunc[fn.Origin()]; n != nil {
			out = append(out, resolved{n, true})
		}
	}
	return out
}

// concreteTypes collects every non-interface named type declared at
// package scope across the program — the CHA "class hierarchy". The
// result is deterministic: packages in load order, names sorted.
func concreteTypes(prog *Program) []types.Type {
	var out []types.Type
	for _, pkg := range prog.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, ok := t.Underlying().(*types.Interface); ok {
				continue
			}
			out = append(out, t)
		}
	}
	return out
}

// SCCs returns the graph's strongly connected components in bottom-up
// (callees-before-callers) order — the order a summary-composing
// analyzer processes them so every callee's fact exists before its
// callers ask for it. Tarjan's algorithm emits components in exactly
// this order.
func (cg *CallGraph) SCCs() [][]*CallNode {
	index := make(map[*CallNode]int, len(cg.Nodes))
	low := make(map[*CallNode]int, len(cg.Nodes))
	onStack := make(map[*CallNode]bool, len(cg.Nodes))
	var stack []*CallNode
	var sccs [][]*CallNode
	next := 0

	var strongconnect func(n *CallNode)
	strongconnect = func(n *CallNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Out {
			m := e.Callee
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []*CallNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range cg.Nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

// EdgesFrom returns n's outgoing edges whose call sites lie inside
// the source range [from, to) — how a held-region analysis asks
// "which calls happen while this lock is held".
func (n *CallNode) EdgesFrom(from, to token.Pos) []*CallEdge {
	var out []*CallEdge
	for _, e := range n.Out {
		if e.Site.Pos() >= from && e.Site.Pos() < to {
			out = append(out, e)
		}
	}
	return out
}
