package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source file into
// a loaded Package, for unit tests of the whole-program machinery.
func typecheckSrc(t *testing.T, path, src string) (*token.FileSet, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type checking: %v", err)
	}
	return fset, &Package{Path: path, Files: []*ast.File{f}, Types: pkg, Info: info}
}

const cgSrc = `package p

type Animal interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return bark() }

func bark() string { return "woof" }

type Cat struct{}

func (Cat) Speak() string { return "meow" }

func SpeakAll(a Animal) string { return a.Speak() }

func chain() string { return SpeakAll(Dog{}) }

func ping() { pong() }

func pong() { ping() }

func usesLit() {
	f := func() string { return bark() }
	f()
}
`

func buildTestGraph(t *testing.T) (*Program, *CallGraph) {
	t.Helper()
	fset, pkg := typecheckSrc(t, "p", cgSrc)
	prog := NewProgram(fset, []*Package{pkg})
	return prog, prog.CallGraph()
}

func edgeTargets(cg *CallGraph, from string) map[string]bool {
	out := map[string]bool{}
	for _, n := range cg.Nodes {
		if n.Name() != from {
			continue
		}
		for _, e := range n.Out {
			out[e.Callee.Name()] = true
		}
	}
	return out
}

func TestCallGraphResolution(t *testing.T) {
	_, cg := buildTestGraph(t)

	wantNodes := []string{"p.Animal.Speak", "p.Dog.Speak", "p.bark", "p.Cat.Speak",
		"p.SpeakAll", "p.chain", "p.ping", "p.pong", "p.usesLit"}
	byName := map[string]bool{}
	for _, n := range cg.Nodes {
		byName[n.Name()] = true
	}
	for _, w := range wantNodes {
		if w == "p.Animal.Speak" {
			continue // interface methods have no body and no node
		}
		if !byName[w] {
			t.Errorf("callgraph has no node %s (have %v)", w, byName)
		}
	}

	// Static call: chain -> SpeakAll.
	if got := edgeTargets(cg, "p.chain"); !got["p.SpeakAll"] {
		t.Errorf("chain edges = %v, want p.SpeakAll", got)
	}
	// CHA fan-out: the dynamic a.Speak() resolves to every concrete
	// implementation in scope.
	got := edgeTargets(cg, "p.SpeakAll")
	if !got["p.Dog.Speak"] || !got["p.Cat.Speak"] {
		t.Errorf("SpeakAll edges = %v, want both p.Dog.Speak and p.Cat.Speak", got)
	}
	// FuncLit bodies attribute to the enclosing declaration.
	if got := edgeTargets(cg, "p.usesLit"); !got["p.bark"] {
		t.Errorf("usesLit edges = %v, want p.bark (call inside its literal)", got)
	}
}

func TestCallGraphSCCsBottomUp(t *testing.T) {
	_, cg := buildTestGraph(t)
	sccs := cg.SCCs()

	at := map[string]int{}
	size := map[string]int{}
	for i, scc := range sccs {
		for _, n := range scc {
			at[n.Name()] = i
			size[n.Name()] = len(scc)
		}
	}
	// ping/pong are mutually recursive: one SCC of two.
	if at["p.ping"] != at["p.pong"] || size["p.ping"] != 2 {
		t.Errorf("ping/pong SCC: at=%d/%d size=%d, want shared SCC of 2",
			at["p.ping"], at["p.pong"], size["p.ping"])
	}
	// Bottom-up (callee-first) order: bark before Dog.Speak before
	// SpeakAll before chain.
	order := []string{"p.bark", "p.Dog.Speak", "p.SpeakAll", "p.chain"}
	for i := 0; i+1 < len(order); i++ {
		if at[order[i]] >= at[order[i+1]] {
			t.Errorf("SCC order: %s at %d not before %s at %d",
				order[i], at[order[i]], order[i+1], at[order[i+1]])
		}
	}
}

type countFact struct{ N int }

func (*countFact) AFact() {}

func TestProgramFactsAndMemo(t *testing.T) {
	prog, cg := buildTestGraph(t)
	barkFn := cg.ByFunc[findFunc(t, cg, "p.bark")].Fn

	passA := &Pass{Analyzer: &Analyzer{Name: "a"}, Prog: prog}
	passB := &Pass{Analyzer: &Analyzer{Name: "b"}, Prog: prog}

	var got countFact
	if passA.ImportFact(barkFn, &got) {
		t.Fatal("fact present before export")
	}
	passA.ExportFact(barkFn, &countFact{N: 7})
	if !passA.ImportFact(barkFn, &got) || got.N != 7 {
		t.Fatalf("fact round-trip: ok=%v n=%d, want 7", passA.ImportFact(barkFn, &got), got.N)
	}
	// Facts are keyed by analyzer: pass b sees its own empty namespace.
	if passB.ImportFact(barkFn, &got) {
		t.Error("fact leaked across analyzers")
	}

	calls := 0
	compute := func() (any, error) { calls++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := prog.Memo("k", compute)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Memo = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("Memo computed %d times, want once", calls)
	}
}

func findFunc(t *testing.T, cg *CallGraph, name string) *types.Func {
	t.Helper()
	for _, n := range cg.Nodes {
		if n.Name() == name {
			return n.Fn
		}
	}
	t.Fatalf("no node %s", name)
	return nil
}
