//go:build !noarchtest

// The archtest: the same passes cmd/avivlint drives, run under plain
// `go test` so the architecture gate travels with the ordinary test
// suite (no extra binary, no extra CI stage needed to catch an upward
// import). Build with -tags noarchtest to skip it in environments
// where the go command cannot list/build the module (the loader shells
// out to `go list -export`).
package analysis_test

import (
	"testing"

	"aviv/internal/analysis"
)

// TestArchSuite runs the full analyzer suite over the whole module and
// requires a clean tree: every finding must have been either fixed or
// suppressed with a justified //lint:reason. This is the test-shaped
// twin of `avivlint ./...` in ci.sh.
func TestArchSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("archtest loads and type-checks the whole module; skipped in -short")
	}
	fset, pkgs := loadModulePackages(t, "aviv/...")
	findings, err := analysis.Run(fset, pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings or annotate them with //lint:reason <why> (see internal/analysis doc)")
	}
}
