// Fixture for the errctx pass: fmt.Errorf over received errors must
// wrap with %w. The test runs this package impersonating
// aviv/internal/diskcache, an errctx-scoped component.
package errctx

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

// lostContext formats the error with %v, severing the chain.
func lostContext(err error) error {
	return fmt.Errorf("reading index: %v", err) // want `formats an error without wrapping it`
}

// lostViaSprint hits the same class with %s mid-format.
func lostViaSprint(path string, err error) error {
	return fmt.Errorf("open %s: %s (giving up)", path, err) // want `formats an error without wrapping it`
}

// wrapped is the correct shape: no finding.
func wrapped(err error) error {
	return fmt.Errorf("reading index: %w", err)
}

// noErrorArgs formats plain data: no finding.
func noErrorArgs(version, want int) error {
	return fmt.Errorf("format version %d, want %d", version, want)
}

// dynamicFormat cannot be proven either way: no finding.
func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err)
}

// escaped contains a literal %% before the trailing verb; the fix
// offset logic must still find the true verb.
func escaped(err error) error {
	return fmt.Errorf("100%% failed: %v", err) // want `formats an error without wrapping it`
}

var _ = errBase
