// Fixture for the goroutineleak pass, impersonating aviv/internal/server
// (the select-loop class only applies in server components). Each
// diagnostic class appears once as a planted leak and once in its
// clean form.
package goroutineleak

import "sync"

func work() {}

// --- class: channel op with no counterpart ---------------------------

// leakySend spawns a goroutine that sends on a channel nothing ever
// receives from: the send blocks forever and the goroutine leaks.
func leakySend() {
	ch := make(chan int)
	go func() { // want `goroutineleak: goroutine sends on ch but the program has no receive from it`
		ch <- 1
	}()
}

// pairedSend has a receive for the channel: clean.
func pairedSend() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	<-ch
}

// bufferedSend cannot block on its first send: clean.
func bufferedSend() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

// leakyRecv receives from a channel nothing ever sends on or closes.
func leakyRecv() {
	ch := make(chan int)
	go func() { // want `goroutineleak: goroutine receives from ch but the program never sends on or closes it`
		<-ch
	}()
}

// pairedRecv has a sender: clean.
func pairedRecv() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	ch <- 1
}

// escapedChan crosses a function boundary, so its full usage is not
// visible to the census: exempt, clean.
func escapedChan(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// --- class: WaitGroup protocol ---------------------------------------

// neverDone waits on a goroutine that never calls Done.
func neverDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutineleak: goroutine never calls wg\.Done after wg\.Add; wg\.Wait blocks forever`
		work()
	}()
	wg.Wait()
}

// skippableDone calls Done, but an early return can skip it.
func skippableDone(fail bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutineleak: wg\.Done can be skipped on an early return in the goroutine`
		if fail {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// deferredDone is the canonical protocol: clean.
func deferredDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// addInside moves Add into the goroutine, racing it against Wait.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `goroutineleak: wg\.Add inside the goroutine races with wg\.Wait`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// doneInCallee spawns a named worker whose declaration carries the
// deferred Done; the callgraph resolves it: clean.
func doneInCallee() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}
