// Fixture: the server-component select-loop class. A bare
// for { select { ... } } with no cancellation case outlives its
// request; adding <-ctx.Done(), a default, or a terminating clause
// makes it clean.
package goroutineleak

import "context"

// pump loops forever with no way out: the goroutine survives server
// shutdown.
func pump(ctx context.Context, in, out chan int) {
	go func() {
		for {
			select { // want `goroutineleak: select loop has no <-ctx\.Done\(\) case, no default, and no terminating clause`
			case v := <-in:
				out <- v
			}
		}
	}()
}

// pumpCtx watches the request context: clean.
func pumpCtx(ctx context.Context, in, out chan int) {
	go func() {
		for {
			select {
			case v := <-in:
				out <- v
			case <-ctx.Done():
				return
			}
		}
	}()
}

// pumpReturn terminates through a clause body: clean.
func pumpReturn(in, out chan int) {
	go func() {
		for {
			select {
			case v, ok := <-in:
				if !ok {
					return
				}
				out <- v
			}
		}
	}()
}
