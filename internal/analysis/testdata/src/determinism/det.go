// Fixture for the determinism pass: each diagnostic class appears once
// as a violation and once in its deterministic (clean) form. The test
// runs this package impersonating aviv/internal/cover, a compile-path
// component.
package det

import (
	"fmt"
	"sort"
	"strings"
)

type node struct{ id int }

// --- class: map-append ------------------------------------------------

// appendNoSort leaks map order into the returned slice.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order reaches keys via append`
	}
	return keys
}

// appendThenSort is the canonical deterministic idiom: no finding.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendLoopLocal appends to a slice scoped inside the loop: order
// cannot leak, no finding.
func appendLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// --- class: map-emit --------------------------------------------------

// emitInRange writes output in map order.
func emitInRange(m map[string]int, sb *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(sb, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map`
	}
}

// writeInRange hits the same class through a Write method.
func writeInRange(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `write call inside range over map`
	}
}

// emitSorted collects, sorts, then writes: no finding.
func emitSorted(m map[string]int, sb *strings.Builder) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s=%d\n", k, m[k])
	}
}

// --- class: map-return ------------------------------------------------

// firstKey returns whichever key iteration yields first.
func firstKey(m map[string]*node) string {
	for k := range m {
		return k // want `returning an element chosen by map iteration`
	}
	return ""
}

// containsEven returns a value independent of iteration order: no
// finding.
func containsEven(m map[string]int) bool {
	for _, v := range m {
		if v%2 == 0 {
			return true
		}
	}
	return false
}

// minID folds deterministically over the map: no finding.
func minID(m map[*node]int) *node {
	var best *node
	for n := range m {
		if best == nil || n.id < best.id {
			best = n
		}
	}
	return best
}

// --- class: map-print (address-ordered keys) --------------------------

// printPointerKeyed formats a pointer-keyed map; fmt sorts those keys
// by address, which differs run to run.
func printPointerKeyed(m map[*node]int) string {
	return fmt.Sprintf("%v", m) // want `map whose keys print in address order`
}

// printStringKeyed formats a string-keyed map; fmt sorts those
// deterministically: no finding.
func printStringKeyed(m map[string]int) string {
	return fmt.Sprintf("%v", m)
}

// --- suppression ------------------------------------------------------

// suppressedFirstKey documents why the arbitrary pick is safe; the
// annotated finding must not surface.
func suppressedFirstKey(m map[string]int) string {
	for k := range m {
		return k //lint:reason fixture: the map is guaranteed to hold exactly one entry
	}
	return ""
}
