// Fixture: the wall-clock and randomness classes, in their own file so
// the banned import's finding does not muddy det.go.
package det

import (
	"math/rand" // want `math/rand imported in a compile-path package`
	"time"
)

// stampNow reads the wall clock on the compile path.
func stampNow() int64 {
	t := time.Now() // want `wall-clock read \(time.Now\)`
	return t.Unix()
}

// elapsed reads the clock through Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read \(time.Since\)`
}

// fixedDuration only names time types and constants — no clock read,
// no finding.
func fixedDuration() time.Duration {
	return 5 * time.Millisecond
}

// draw uses global randomness (any use; the import is already the
// finding — calls do not double-report).
func draw() int {
	return rand.Intn(10)
}
