// Fixture: the machine-zoo generator is compile-path for ordering
// purposes (same seed, byte-identical machine text), so determinism
// applies under aviv/internal/zoo. Emitting while ranging a map leaks
// address order into the generated description; the sorted-keys idiom
// is clean.
package zoo

import (
	"fmt"
	"sort"
	"strings"
)

// emitOps writes one line per opcode straight out of map iteration.
func emitOps(w *strings.Builder, ops map[string]int) {
	for name, lat := range ops {
		fmt.Fprintf(w, "op %s latency %d\n", name, lat) // want `determinism: fmt\.Fprintf inside range over map emits in random order`
	}
}

// emitOpsSorted collects and sorts the keys first: clean.
func emitOpsSorted(w *strings.Builder, ops map[string]int) {
	var names []string
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "op %s latency %d\n", name, ops[name])
	}
}
