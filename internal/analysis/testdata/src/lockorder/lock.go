// Fixture for the lockorder pass: a two-class acquisition cycle built
// across two functions (one edge direct, one through a call), plus the
// clean shapes that must stay silent — a globally consistent order,
// two instances of one class, and an acyclic chain through a
// package-level mutex.
package lockorder

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

// lockAB establishes the edge S.a -> S.b directly. The cycle diagnostic
// lands on the second acquisition of its lexically-smallest-first edge.
func lockAB(s *S) {
	s.a.Lock()
	s.b.Lock() // want `lockorder: lock acquisition order cycle lockorder\.S\.a -> lockorder\.S\.b -> lockorder\.S\.a`
	s.b.Unlock()
	s.a.Unlock()
}

// lockBA establishes S.b -> S.a interprocedurally: lockA's acquisition
// summary flows up the callgraph into the edge set.
func lockBA(s *S) {
	s.b.Lock()
	lockA(s)
	s.b.Unlock()
}

// lockA acquires S.a on behalf of lockBA.
func lockA(s *S) {
	s.a.Lock()
	s.a.Unlock()
}

// --- clean: globally consistent order, direct and through a call -----

type T struct {
	x sync.Mutex
	y sync.Mutex
}

func lockXY(t *T) {
	t.x.Lock()
	t.y.Lock()
	t.y.Unlock()
	t.x.Unlock()
}

func lockXYViaCall(t *T) {
	t.x.Lock()
	lockY(t)
	t.x.Unlock()
}

func lockY(t *T) {
	t.y.Lock()
	t.y.Unlock()
}

// --- clean: two instances of one class are not a self-cycle ----------

// lockTwoInstances holds p.x while taking q.x. Both collapse to class
// lockorder.T.x; the class graph excludes self-edges because it cannot
// tell instances apart, so this must not report.
func lockTwoInstances(p, q *T) {
	p.x.Lock()
	q.x.Lock()
	q.x.Unlock()
	p.x.Unlock()
}

// --- clean: acyclic chain through a package-level mutex --------------

var registryMu sync.Mutex

// register takes the global before a field lock; nothing ever takes
// them in the other order, so the edge is acyclic.
func register(t *T) {
	registryMu.Lock()
	t.x.Lock()
	t.x.Unlock()
	registryMu.Unlock()
}
