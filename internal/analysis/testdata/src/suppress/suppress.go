// Fixture for the suppress meta-pass: a //lint:reason annotation must
// carry a non-empty justification. The want expectations ride in block
// comments because a line comment would swallow the rest of the line.
package suppress

func justified() int {
	x := 1 //lint:reason fixture: documented and therefore accepted
	return x
}

func empty() int {
	/* want `empty //lint:reason` */ //lint:reason
	return 2
}

func whitespaceOnly() int {
	/* want `empty //lint:reason` */ //lint:reason
	return 3
}
