// Fixture for the ctxflow pass, impersonating aviv/internal/server.
// Each context-discipline class appears once as a violation and once
// in its clean form.
package ctxflow

import "context"

// --- class: fresh root context on a request path ---------------------

// rootsOverRequest discards the request's deadline by minting a fresh
// root context.
func rootsOverRequest(ctx context.Context, work chan int) {
	db := context.Background() // want `ctxflow: context\.Background\(\) called while the request context ctx is in scope`
	_ = db
	select {
	case work <- 1:
	case <-ctx.Done():
	}
}

// derivesFromRequest threads the request context: clean.
func derivesFromRequest(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, "v")
}

type ctxKey struct{}

// root has no request context in scope, so Background is legitimate.
func root() context.Context {
	return context.Background()
}

// --- class: dropped ctx parameter ------------------------------------

// dropsCtx accepts a context and never consults it.
func dropsCtx(ctx context.Context, n int) int { // want `ctxflow: context parameter ctx is never used`
	return n + 1
}

// waits consults its context (and a ctx.Done receive is the
// cancellation wait itself, not a naked blocking op): clean.
func waits(ctx context.Context) {
	<-ctx.Done()
}

// --- class: blocking channel op outside select -----------------------

// sendsNaked blocks on a send nothing can interrupt.
func sendsNaked(results chan int) {
	results <- 1 // want `ctxflow: blocking channel send outside select`
}

// recvsNaked blocks on a receive nothing can interrupt.
func recvsNaked(results chan int) {
	v := <-results // want `ctxflow: blocking channel receive outside select`
	_ = v
}

// selectable pairs both directions with cancellation: clean.
func selectable(ctx context.Context, in, out chan int) {
	select {
	case v := <-in:
		select {
		case out <- v:
		case <-ctx.Done():
		}
	case <-ctx.Done():
	}
}
