// Fixture for the mutexhygiene pass: channel operations and nested
// lock acquisitions inside held regions, plus the clean shapes the
// pass must accept (send after unlock, goroutine bodies, the
// lock/defer-unlock idiom).
package mutex

import "sync"

type box struct {
	mu    sync.Mutex
	state int
	ch    chan int
}

// sendHeld sends on a channel between Lock and Unlock.
func (b *box) sendHeld(v int) {
	b.mu.Lock()
	b.state = v
	b.ch <- v // want `channel send while b.mu is held`
	b.mu.Unlock()
}

// sendAfterUnlock is the clean shape: no finding.
func (b *box) sendAfterUnlock(v int) {
	b.mu.Lock()
	b.state = v
	b.mu.Unlock()
	b.ch <- v
}

// recvHeld blocks on a receive with the lock held.
func (b *box) recvHeld() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive while b.mu is held`
}

// locked is a helper that takes the lock itself.
func (b *box) locked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// nestedCall calls a locking helper with the lock already held.
func (b *box) nestedCall() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state + b.locked() // want `call to locked, which takes a lock, while b.mu is held`
}

// callAfterUnlock releases before calling the locking helper: no
// finding.
func (b *box) callAfterUnlock() int {
	b.mu.Lock()
	s := b.state
	b.mu.Unlock()
	return s + b.locked()
}

// relock acquires a mutex it already holds.
func (b *box) relock() {
	b.mu.Lock()
	b.mu.Lock() // want `b.mu is locked again while already held`
	b.mu.Unlock()
	b.mu.Unlock()
}

// spawn launches a goroutine under the lock; the goroutine body does
// not run inside the held region, so its lock use is clean.
func (b *box) spawn(v int) {
	b.mu.Lock()
	go func() {
		b.ch <- v
		b.mu.Lock()
		b.state = v
		b.mu.Unlock()
	}()
	b.mu.Unlock()
}

// branchScoped takes the lock inside one branch only; the send after
// the branch is not under it.
func (b *box) branchScoped(cond bool, v int) {
	if cond {
		b.mu.Lock()
		b.state = v
		b.mu.Unlock()
	}
	b.ch <- v
}
