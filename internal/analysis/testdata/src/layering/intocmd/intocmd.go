// Fixture: a service-layer package importing a binary — cmd and
// examples are importable by nothing, not even top layers. (Run
// impersonating aviv/internal/server.)
package server

import (
	"aviv/cmd/avivd" // want `forbidden import edge internal/server -> cmd: nothing may import cmd`

	"aviv/internal/diskcache" // a declared downward edge: no finding
)

var _ = avivd.Anything
var _ = diskcache.Anything
