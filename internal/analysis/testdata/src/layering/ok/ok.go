// Fixture: the covering engine importing exactly its declared
// downward dependencies — every edge here is in the allowed table, so
// the pass must stay silent. (Run impersonating aviv/internal/cover.)
package cover

import (
	"aviv/internal/bitset"
	"aviv/internal/dataflow"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

var (
	_ = bitset.Anything
	_ = dataflow.Anything
	_ = ir.Anything
	_ = isdl.Anything
	_ = sndag.Anything
)
