// Fixture: a layer-0 package (the test impersonates aviv/internal/ir)
// reaching upward into the compile service — the canonical layering
// violation the pass must reject. The imports cannot resolve, which is
// fine: layering is purely syntactic.
package ir

import (
	"aviv/internal/server" // want `forbidden import edge internal/ir -> internal/server \(layer 0 -> layer 9\).*upward`

	"aviv/internal/cover" // want `forbidden import edge internal/ir -> internal/cover \(layer 0 -> layer 3\)`
)

var _ = server.Anything
var _ = cover.Anything
