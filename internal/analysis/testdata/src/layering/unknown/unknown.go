// Fixture: a module package that is missing from the layer table
// (run impersonating aviv/internal/newthing). Growing the tree without
// declaring the new component's layer is itself a violation.
package newthing // want `component internal/newthing\) is not assigned a layer`
