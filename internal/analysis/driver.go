package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic resolved to a file position, as emitted
// by the driver after suppression filtering.
type Finding struct {
	Diagnostic
	Position token.Position
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Message, f.Analyzer)
}

// Run executes every analyzer over every package, honors //lint:reason
// suppressions, and returns the surviving findings in deterministic
// (file, line, column, analyzer, message) order. A non-nil error means
// a pass could not run at all — individual findings are never errors.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	kept, _, err := RunAll(fset, pkgs, analyzers)
	return kept, err
}

// RunAll is Run, but also returns the findings a //lint:reason
// annotation suppressed — the suppression-budget audit counts those,
// so a suppression that no longer covers anything shows up as drift.
// Both slices are in deterministic order.
func RunAll(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (kept, silenced []Finding, err error) {
	// One shared whole-program view, built only if some analyzer asks.
	var prog *Program
	for _, a := range analyzers {
		if a.NeedProgram {
			prog = NewProgram(fset, pkgs)
			break
		}
	}
	for _, pkg := range pkgs {
		sup := suppressionsIn(fset, pkg.Files)
		comp := Component(pkg.Path)
		for _, a := range analyzers {
			if !a.appliesTo(comp) {
				continue
			}
			if (a.NeedTypes || a.NeedProgram) && pkg.Types == nil {
				return nil, nil, fmt.Errorf("analyzer %s needs types, but package %s was loaded without them", a.Name, pkg.Path)
			}
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Path:     pkg.Path,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if a.NeedProgram {
				pass.Prog = prog
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				f := Finding{Diagnostic: d, Position: pos}
				// The suppress pass polices the annotations
				// themselves and is exempt from them.
				if a != Suppress && suppressed(sup, pos) {
					silenced = append(silenced, f)
					continue
				}
				kept = append(kept, f)
			}
		}
	}
	sortFindings(kept)
	sortFindings(silenced)
	return kept, silenced, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// appliesTo reports whether the analyzer is scoped to run on the given
// module component.
func (a *Analyzer) appliesTo(component string) bool {
	if a.Components == nil {
		return true
	}
	for _, c := range a.Components {
		if c == component {
			return true
		}
	}
	return false
}

// All returns the complete analyzer suite in registry order. Like
// verify.LintRules, the list is stable API: the table-driven tests
// enumerate it by exact name, and cmd/avivlint runs it verbatim.
func All() []*Analyzer {
	return []*Analyzer{
		Layering,
		Determinism,
		MutexHygiene,
		LockOrder,
		GoroutineLeak,
		CtxFlow,
		ErrCtx,
		Suppress,
	}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
