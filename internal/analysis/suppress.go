package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// suppressPrefix is the literal comment prefix of an inline
// suppression. The annotation must carry a non-empty reason:
//
//	m.Fingerprint() //lint:reason fingerprint is order-independent
//
// and applies to diagnostics on its own line or the line directly
// below, so it can ride at the end of the flagged line or on a line of
// its own above it.
const suppressPrefix = "//lint:reason"

// suppressionsIn collects every //lint:reason annotation in files,
// keyed by filename then line. The reason may be empty here — the
// suppress analyzer turns empty reasons into diagnostics, and the
// driver refuses to honor them.
func suppressionsIn(fset *token.FileSet, files []*ast.File) map[string]map[int]string {
	out := make(map[string]map[int]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, suppressPrefix))
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = reason
			}
		}
	}
	return out
}

// A SuppressionSite is one //lint:reason annotation in a file.
type SuppressionSite struct {
	File   string
	Line   int
	Reason string
}

// SuppressionSites lists every //lint:reason annotation in files in
// deterministic (file, line) order — the raw material of the
// suppression-budget audit, which pins the tree-wide totals.
func SuppressionSites(fset *token.FileSet, files []*ast.File) []SuppressionSite {
	var out []SuppressionSite
	for file, byLine := range suppressionsIn(fset, files) {
		for line, reason := range byLine {
			out = append(out, SuppressionSite{File: file, Line: line, Reason: reason})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// Covers reports whether the annotation covers a diagnostic at the
// given position: same file, same line or the line directly below.
func (s SuppressionSite) Covers(pos token.Position) bool {
	return s.File == pos.Filename && (s.Line == pos.Line || s.Line == pos.Line-1)
}

// suppressed reports whether a diagnostic at pos is covered by a
// non-empty //lint:reason annotation on the same line or the line
// directly above.
func suppressed(sup map[string]map[int]string, pos token.Position) bool {
	byLine := sup[pos.Filename]
	if byLine == nil {
		return false
	}
	if r, ok := byLine[pos.Line]; ok && r != "" {
		return true
	}
	if r, ok := byLine[pos.Line-1]; ok && r != "" {
		return true
	}
	return false
}

// Suppress is the meta-pass: a //lint:reason annotation with an empty
// justification is itself a diagnostic, so a suppression can never
// silently waive a finding without saying why. Its own findings are
// exempt from suppression.
var Suppress = &Analyzer{
	Name: "suppress",
	Doc: "report //lint:reason annotations whose justification is empty; " +
		"a suppression must document why the flagged code is safe",
	Run: runSuppress,
}

func runSuppress(pass *Pass) error {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressPrefix) {
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(c.Text, suppressPrefix)) == "" {
					pass.Reportf(c.Pos(), "empty //lint:reason: a suppression must carry a non-empty justification")
				}
			}
		}
	}
	return nil
}
