package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlow enforces context discipline on the request path: in the
// compile service components (internal/server, internal/cluster,
// internal/diskcache, and cmd/avivd), a context.Context must actually
// flow into the blocking work a function does. Three shapes are
// findings:
//
//   - a function that takes a ctx parameter but calls
//     context.Background() or context.TODO() — the request's deadline
//     and cancellation are silently discarded;
//   - a ctx parameter that is never referenced at all — cancellation
//     stops propagating at this frame;
//   - a naked statement-level channel send or receive outside a select
//     — nothing can interrupt it, so a dead client wedges the server.
//     A receive from ctx.Done() is the cancellation wait itself and is
//     exempt.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "enforce context discipline in the server components: no " +
		"context.Background() on a request path, no unused ctx parameters, " +
		"no blocking channel operations outside a select",
	NeedTypes:  true,
	Components: []string{"internal/server", "internal/cluster", "internal/diskcache", "cmd"},
	Run:        runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	// Within cmd, only the long-running server binary is request-path
	// code; one-shot CLIs may block on their own channels.
	if Component(pass.Path) == "cmd" && !strings.HasSuffix(pass.Path, "/avivd") {
		return nil
	}
	for _, f := range pass.Files {
		parents := buildParents(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxParams(pass, fd)
			checkNakedChanOps(pass, fd, parents)
		}
	}
	return nil
}

// checkCtxParams handles the two parameter-flow findings: a fresh
// root context created while a request ctx is in scope, and a ctx
// parameter nothing uses.
func checkCtxParams(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	var ctxParams []*ast.Ident
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					ctxParams = append(ctxParams, name)
				}
			}
		}
	}
	if len(ctxParams) == 0 {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := pkgFuncCall(info, call, "context"); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"ctxflow: context.%s() called while the request context %s is in scope; derive from %s (or context.WithoutCancel(%s)) instead",
				name, ctxParams[0].Name, ctxParams[0].Name, ctxParams[0].Name)
		}
		return true
	})

	for _, p := range ctxParams {
		if p.Name == "_" {
			continue
		}
		obj := info.Defs[p]
		used := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(p.Pos(),
				"ctxflow: context parameter %s is never used; thread it into the blocking calls or drop the parameter",
				p.Name)
		}
	}
}

// checkNakedChanOps flags statement-level channel operations outside a
// select clause.
func checkNakedChanOps(pass *Pass, fd *ast.FuncDecl, parents map[ast.Node]ast.Node) {
	info := pass.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if _, inSelect := parents[n].(*ast.CommClause); !inSelect {
				pass.Reportf(n.Pos(),
					"ctxflow: blocking channel send outside select; pair it with <-ctx.Done() in a select so cancellation can interrupt it")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || !statementLevelRecv(n, parents) {
				return true
			}
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isCtxDoneCall(info, call) {
				return true // the cancellation wait itself
			}
			pass.Reportf(n.Pos(),
				"ctxflow: blocking channel receive outside select; pair it with <-ctx.Done() in a select so cancellation can interrupt it")
		}
		return true
	})
}

// statementLevelRecv reports whether the receive is a statement of its
// own (`<-ch` or `v := <-ch`) rather than part of a larger expression
// or a select comm clause. Only statement-level receives are
// unconditionally blocking waits.
func statementLevelRecv(u *ast.UnaryExpr, parents map[ast.Node]ast.Node) bool {
	switch p := parents[u].(type) {
	case *ast.ExprStmt:
		_, inSelect := parents[p].(*ast.CommClause)
		return !inSelect
	case *ast.AssignStmt:
		if len(p.Rhs) != 1 {
			return false
		}
		_, inSelect := parents[p].(*ast.CommClause)
		return !inSelect
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
