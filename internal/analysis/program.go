package analysis

import (
	"go/token"
	"go/types"
	"reflect"
)

// A Program is the whole-program view interprocedural analyzers run
// over: every loaded package plus the lazily built callgraph and the
// fact store that lets per-function summaries compose across package
// boundaries. The driver builds one Program per Run and shares it
// between analyzers; results and facts are namespaced by analyzer, so
// passes cannot observe each other's state.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the loaded packages in dependency order (imports
	// before importers), as `go list -deps` emits them.
	Pkgs []*Package

	callgraph *CallGraph
	facts     map[factKey]Fact
	memo      map[string]any
}

// NewProgram assembles a Program over already-loaded packages. The
// callgraph is built on first use, so analyzers that never ask for it
// cost nothing extra.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	return &Program{
		Fset:  fset,
		Pkgs:  pkgs,
		facts: make(map[factKey]Fact),
		memo:  make(map[string]any),
	}
}

// CallGraph returns the program's CHA-style callgraph, building it on
// first call.
func (prog *Program) CallGraph() *CallGraph {
	if prog.callgraph == nil {
		prog.callgraph = buildCallGraph(prog)
	}
	return prog.callgraph
}

// Memo computes a whole-program result once per Run and caches it
// under key, so an interprocedural analyzer invoked package by package
// performs its global computation a single time. The driver runs
// analyzers sequentially, so no locking is needed.
func (prog *Program) Memo(key string, compute func() (any, error)) (any, error) {
	if v, ok := prog.memo[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	prog.memo[key] = v
	return v, nil
}

// A Fact is a per-object summary an analyzer exports for other
// invocations of itself to import — the mechanism per-function
// summaries use to compose bottom-up over the callgraph (mirroring
// golang.org/x/tools/go/analysis facts, without the gob encoding: the
// whole program is analyzed in one process, so facts stay in memory).
// Implementations must be pointers; AFact is a marker.
type Fact interface{ AFact() }

// factKey namespaces facts by analyzer, object, and fact type.
type factKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

// ExportFact records fact for obj, visible to later ImportFact calls
// by the same analyzer anywhere in the program. Unlike x/tools, obj
// may belong to any loaded package, not just the one under analysis —
// bottom-up summary propagation walks the callgraph across package
// boundaries in one sweep.
func (p *Pass) ExportFact(obj types.Object, fact Fact) {
	if p.Prog == nil || obj == nil || fact == nil {
		return
	}
	p.Prog.facts[factKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}] = fact
}

// ImportFact copies the fact of fact's type previously exported for
// obj into fact, reporting whether one existed.
func (p *Pass) ImportFact(obj types.Object, fact Fact) bool {
	if p.Prog == nil || obj == nil || fact == nil {
		return false
	}
	stored, ok := p.Prog.facts[factKey{p.Analyzer.Name, obj, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	// Both are pointers of the same dynamic type; copy the pointee so
	// the importer cannot mutate the stored summary.
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// containsPos reports whether the pass's own files contain pos — how
// a whole-program analyzer decides which package reports a global
// finding (each diagnostic is attributed to the package owning its
// position, keeping per-package suppression filtering sound).
func (p *Pass) containsPos(pos token.Pos) bool {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return true
		}
	}
	return false
}
