package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MutexHygiene flags work done while a sync.Mutex/RWMutex is held that
// can block indefinitely or deadlock: sending on (or receiving from) a
// channel, and calling another function in the same package that
// itself takes a lock. The single-flight and server code is the
// motivating surface — a send under g.mu or a nested lock acquisition
// there turns a slow client into a stalled compile service.
//
// The pass is syntactic about the held region: a region opens at a
// statement-level x.Lock()/x.RLock() and closes at the matching
// x.Unlock()/x.RUnlock() in the same statement list (or, for
// `defer x.Unlock()`, at function end). Goroutine bodies and closures
// are not treated as executing inside the region.
var MutexHygiene = &Analyzer{
	Name: "mutexhygiene",
	Doc: "flag channel operations and calls to other locking functions " +
		"while a sync mutex is held",
	NeedTypes: true,
	Run:       runMutexHygiene,
}

func runMutexHygiene(pass *Pass) error {
	lockers := collectLockers(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkHeld(pass, lockers, fd.Body.List, newHeldSet())
		}
	}
	return nil
}

// heldSet tracks which mutexes are held at a point in the walk, keyed
// by the printed receiver expression ("g.mu", "c.mu").
type heldSet struct {
	keys map[string]bool
}

func newHeldSet() *heldSet { return &heldSet{keys: make(map[string]bool)} }

func (h *heldSet) clone() *heldSet {
	c := newHeldSet()
	for k := range h.keys {
		c.keys[k] = true
	}
	return c
}

func (h *heldSet) any() bool { return len(h.keys) > 0 }

// collectLockers returns the set of functions and methods declared in
// this package whose bodies directly call Lock/RLock on a sync mutex.
// Calling one of them while already holding a lock risks deadlock (or
// at best an undocumented lock ordering), so the pass flags it.
func collectLockers(pass *Pass) map[types.Object]bool {
	lockers := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locks := false
			inspectNoFuncLit(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, _ := syncMutexMethod(pass.Info, call); name == "Lock" || name == "RLock" {
						locks = true
					}
				}
				return !locks
			})
			if locks {
				if obj := pass.Info.ObjectOf(fd.Name); obj != nil {
					lockers[obj] = true
				}
			}
		}
	}
	return lockers
}

// syncMutexMethod matches calls to (*sync.Mutex)/(*sync.RWMutex)
// Lock/Unlock/RLock/RUnlock, returning the method name and the printed
// receiver expression. Embedded mutexes resolve through the type
// checker like explicit fields do.
func syncMutexMethod(info *types.Info, call *ast.CallExpr) (name, recv string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return sel.Sel.Name, exprPrinted(sel.X)
	}
	return "", ""
}

// heldHooks parameterize walkHeldList. The walker owns the held-region
// bookkeeping (what mutexhygiene established: statement-level
// Lock/Unlock pairs, defer-Unlock held to function end, branch-scoped
// regions); the hooks decide what a pass does with it — mutexhygiene
// reports hazards inside regions, lockorder derives acquisition-order
// facts from the same regions.
type heldHooks struct {
	// acquire fires at a statement-level Lock/RLock, with held still
	// describing the region *before* this acquisition joins it.
	acquire func(call *ast.CallExpr, recv string, held *heldSet)
	// stmt fires for every other statement, with the current region.
	stmt func(stmt ast.Stmt, held *heldSet)
}

// walkHeld walks one statement list, maintaining the held-lock set and
// reporting channel operations and locking calls inside held regions.
// held is mutated along the list (a Lock earlier in the list covers
// later statements) and copied into nested lists.
func walkHeld(pass *Pass, lockers map[types.Object]bool, list []ast.Stmt, held *heldSet) {
	walkHeldList(pass.Info, list, held, heldHooks{
		acquire: func(call *ast.CallExpr, recv string, held *heldSet) {
			if held.keys[recv] {
				pass.Reportf(call.Pos(), "mutexhygiene: %s is locked again while already held; recursive locking self-deadlocks", recv)
			}
		},
		stmt: func(stmt ast.Stmt, held *heldSet) {
			if held.any() {
				checkUnderLock(pass, lockers, stmt, held)
			}
		},
	})
}

// walkHeldList is the shared held-region walker.
func walkHeldList(info *types.Info, list []ast.Stmt, held *heldSet, hooks heldHooks) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch name, recv := syncMutexMethod(info, call); name {
				case "Lock", "RLock":
					if hooks.acquire != nil {
						hooks.acquire(call, recv, held)
					}
					held.keys[recv] = true
					continue
				case "Unlock", "RUnlock":
					delete(held.keys, recv)
					continue
				}
			}
		case *ast.DeferStmt:
			if name, recv := syncMutexMethod(info, s.Call); name == "Unlock" || name == "RUnlock" {
				// The conventional lock-then-defer-unlock pair: the
				// lock stays held to function end, which is exactly
				// what the rest of this list's walk assumes.
				_ = recv
				continue
			}
		}

		if hooks.stmt != nil {
			hooks.stmt(stmt, held)
		}

		// Recurse into nested statement lists with a copy of the
		// current held set; a lock taken inside a branch does not
		// extend past it.
		for _, nested := range nestedStmtLists(stmt) {
			walkHeldList(info, nested, held.clone(), hooks)
		}
	}
}

// nestedStmtLists returns the statement lists directly nested in stmt
// (branch bodies, loop bodies, case clauses). Function literals and
// `go` statements are excluded: their bodies do not run under the
// current lock.
func nestedStmtLists(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedStmtLists(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(s.Stmt)...)
	}
	return out
}

// checkUnderLock reports violations inside one statement executed with
// at least one mutex held. It looks at the statement itself, not its
// nested lists (walkHeld recurses into those separately).
func checkUnderLock(pass *Pass, lockers map[types.Object]bool, stmt ast.Stmt, held *heldSet) {
	// Examine only this statement's own expressions: strip nested
	// statement lists by inspecting the statement but cutting off at
	// blocks, which the caller walks with proper held tracking.
	inspectNoFuncLit(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.BlockStmt); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // spawned goroutines do not run under the lock
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "mutexhygiene: channel send while %s is held; a full channel blocks with the lock held", heldNames(held))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "mutexhygiene: channel receive while %s is held; an empty channel blocks with the lock held", heldNames(held))
			}
		case *ast.CallExpr:
			if id := calleeIdent(n); id != nil {
				if obj := pass.Info.ObjectOf(id); obj != nil && lockers[obj] {
					pass.Reportf(n.Pos(), "mutexhygiene: call to %s, which takes a lock, while %s is held; nested acquisition risks deadlock", id.Name, heldNames(held))
				}
			}
		}
		return true
	})
}

// calleeIdent extracts the identifier naming the called function or
// method, nil for indirect calls.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func heldNames(held *heldSet) string {
	names := make([]string, 0, len(held.keys))
	for k := range held.keys {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
