package analysis

import (
	"fmt"
	"strconv"
	"strings"
)

// ModulePath is the import-path prefix of the module the layer table
// describes. Only imports inside the module are layer-checked; std and
// (hypothetical) third-party imports are free.
const ModulePath = "aviv"

// layerOf assigns every module component to a layer. An import edge is
// legal only when it goes to a strictly lower layer AND appears in
// allowedImports — the layer number gives the coarse direction
// (foundation at 0, services on top), the edge table gives the exact
// declared architecture. TestLayerTableIsDAG pins the two views
// against each other, and TestLayeringMatchesDesign pins both against
// the layer diagram in DESIGN.md §11.
var layerOf = map[string]int{
	// Layer 0 — foundation: pure data structures and leaf utilities.
	"internal/bitset":  0,
	"internal/ir":      0,
	"internal/metrics": 0,

	// Layer 1 — languages: the two front ends and the dataflow core,
	// all speaking plain IR.
	"internal/isdl":     1,
	"internal/lang":     1,
	"internal/dataflow": 1,

	// Layer 2 — IR transforms and analyses over layer-1 vocabularies.
	"internal/sndag":         2,
	"internal/opt":           2,
	"internal/place":         2,
	"internal/dataflow/diag": 2,

	// Layer 3 — the covering engine, the heart of the compiler.
	"internal/cover": 3,

	// Layer 4 — consumers of coverings.
	"internal/regalloc": 4,
	"internal/peephole": 4,
	"internal/baseline": 4,

	// Layer 5 — code emission and workload generation.
	"internal/asm":   5,
	"internal/bench": 5,

	// Layer 6 — post-hoc checkers over emitted code.
	"internal/verify": 6,
	"internal/sim":    6,

	// Layer 7 — the facade and self-contained service infrastructure.
	"aviv":               7,
	"internal/zoo":       7,
	"internal/diskcache": 7,

	// Layer 8 — engines over the facade, and the static-analysis suite
	// itself (which must stay out of the compiler proper). The delta
	// engine drives the whole per-block pipeline through aviv, so it
	// sits above the facade but below the service that embeds it.
	"internal/delta":    8,
	"internal/analysis": 8,

	// Layer 9 — the compile service.
	"internal/server": 9,

	// Layer 10 — the compile cluster: consistent-hash routing, cache
	// peering, and cluster-wide single-flight over embedded servers.
	"internal/cluster": 10,

	// Layer 11 — binaries, examples, and test tooling: import anything,
	// imported by nothing (the analysistest harness is imported only
	// from _test files, which the layering pass does not load).
	"cmd":                            11,
	"examples":                       11,
	"internal/analysis/analysistest": 11,
}

// allowedImports is the declared architecture: every legal
// module-internal import edge, exactly. A build that introduces an
// edge missing here fails `avivlint ./...` naming the edge, even if
// the edge happens to point downward — growing the architecture is a
// deliberate act of editing this table (and DESIGN.md §11), not a side
// effect of adding an import. cmd and examples are absent on purpose:
// they may import any component, and nothing may import them.
var allowedImports = map[string][]string{
	"internal/bitset":  {},
	"internal/ir":      {},
	"internal/metrics": {},

	"internal/isdl":     {"internal/ir"},
	"internal/lang":     {"internal/ir"},
	"internal/dataflow": {"internal/ir"},

	"internal/sndag":         {"internal/ir", "internal/isdl"},
	"internal/opt":           {"internal/dataflow", "internal/ir"},
	"internal/place":         {"internal/ir", "internal/isdl"},
	"internal/dataflow/diag": {"internal/dataflow", "internal/ir", "internal/metrics"},

	"internal/cover": {"internal/bitset", "internal/dataflow", "internal/ir", "internal/isdl", "internal/sndag"},

	"internal/regalloc": {"internal/cover", "internal/isdl"},
	"internal/peephole": {"internal/cover", "internal/isdl"},
	"internal/baseline": {"internal/cover", "internal/ir", "internal/isdl", "internal/sndag"},

	"internal/asm":   {"internal/cover", "internal/ir", "internal/isdl", "internal/regalloc"},
	"internal/bench": {"internal/cover", "internal/ir", "internal/isdl", "internal/peephole", "internal/sndag"},

	"internal/verify": {"internal/asm", "internal/ir", "internal/isdl"},
	"internal/sim":    {"internal/asm", "internal/ir"},

	"internal/zoo":       {"internal/ir", "internal/isdl", "internal/verify"},
	"internal/diskcache": {},
	"aviv": {
		"internal/asm", "internal/cover", "internal/dataflow", "internal/ir",
		"internal/isdl", "internal/lang", "internal/metrics", "internal/opt",
		"internal/peephole", "internal/place", "internal/regalloc",
		"internal/sndag", "internal/verify",
	},

	"internal/delta": {
		"aviv", "internal/asm", "internal/cover", "internal/dataflow",
		"internal/ir", "internal/isdl", "internal/metrics",
		"internal/peephole", "internal/regalloc", "internal/sim",
		"internal/sndag", "internal/verify",
	},

	"internal/server": {"aviv", "internal/cover", "internal/delta", "internal/diskcache", "internal/isdl", "internal/metrics"},

	"internal/cluster": {"internal/cover", "internal/diskcache", "internal/metrics", "internal/server"},

	"internal/analysis":              {},
	"internal/analysis/analysistest": {"internal/analysis"},
}

// Component maps a full import path to its layer-table component:
// the module root is "aviv", internal packages keep their
// module-relative path ("internal/cover"), and everything under cmd/
// or examples/ collapses to a single top component. Non-module paths
// map to "".
func Component(importPath string) string {
	if importPath == ModulePath {
		return "aviv"
	}
	rel, ok := strings.CutPrefix(importPath, ModulePath+"/")
	if !ok {
		return ""
	}
	switch {
	case rel == "cmd" || strings.HasPrefix(rel, "cmd/"):
		return "cmd"
	case rel == "examples" || strings.HasPrefix(rel, "examples/"):
		return "examples"
	}
	return rel
}

// CheckEdge decides whether the import edge from -> to (both component
// names) is legal under the declared architecture, returning a
// violation description naming the exact edge otherwise. It is shared
// by the layering pass and by the synthetic-graph tests, so the rule
// the fixtures prove is the rule the tree is gated on.
func CheckEdge(from, to string) error {
	fromLayer, ok := layerOf[from]
	if !ok {
		return fmt.Errorf("package component %q is not assigned a layer in internal/analysis/layers.go", from)
	}
	toLayer, ok := layerOf[to]
	if !ok {
		return fmt.Errorf("imported component %q is not assigned a layer in internal/analysis/layers.go", to)
	}
	if to == "cmd" || to == "examples" {
		return fmt.Errorf("forbidden import edge %s -> %s: nothing may import %s", from, to, to)
	}
	if from == "cmd" || from == "examples" {
		return nil // binaries and examples may import any component
	}
	for _, allowed := range allowedImports[from] {
		if allowed == to {
			return nil
		}
	}
	direction := ""
	if toLayer >= fromLayer {
		direction = "; the edge points upward through the layer DAG"
	}
	return fmt.Errorf(
		"forbidden import edge %s -> %s (layer %s -> layer %s): not in the allowed-edges table in internal/analysis/layers.go%s",
		from, to, strconv.Itoa(fromLayer), strconv.Itoa(toLayer), direction)
}

// Layering enforces the layer DAG over the module's import graph. It
// is purely syntactic (import declarations only), so it also runs on
// fixtures whose imports cannot resolve.
var Layering = &Analyzer{
	Name: "layering",
	Doc: "enforce the declared package layer DAG: every module-internal import " +
		"must appear in the allowed-edges table in internal/analysis/layers.go, " +
		"and nothing may import cmd or examples",
	Run: runLayering,
}

func runLayering(pass *Pass) error {
	from := Component(pass.Path)
	if from == "" {
		return nil // not a module package; nothing to check
	}
	if _, ok := layerOf[from]; !ok {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Package,
				"package %s (component %s) is not assigned a layer in internal/analysis/layers.go", pass.Path, from)
		}
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			to := Component(path)
			if to == "" || to == from {
				continue
			}
			if err := CheckEdge(from, to); err != nil {
				pass.Reportf(imp.Pos(), "%v", err)
			}
		}
	}
	return nil
}
