package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder derives a global lock-acquisition-order graph and reports
// any cycle in it as a potential deadlock, with the full lock chain and
// the call path that realizes each edge.
//
// Locks are abstracted to classes: a mutex field is "pkg.Owner.field"
// (every instance of Owner collapses to one class), a package-level
// mutex is "pkg.var", a type with an embedded mutex locked through the
// receiver is "pkg.Type". Local mutex variables have no class and are
// skipped. The held regions come from the same statement-level walker
// mutexhygiene uses; per-function acquisition summaries are exported as
// facts and composed bottom-up over the callgraph SCCs, so an edge
// A -> B exists when some function acquires class B — directly or
// through any chain of calls — while holding class A. Self-edges
// (A -> A) are excluded: the class collapse cannot distinguish two
// instances, and same-instance recursion is mutexhygiene's finding.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "derive the global lock-acquisition-order graph over the callgraph and " +
		"report cycles as potential deadlocks, with lock chain and call path",
	NeedTypes:   true,
	NeedProgram: true,
	Run:         runLockOrder,
}

func runLockOrder(pass *Pass) error {
	v, err := pass.Prog.Memo("lockorder", func() (any, error) {
		return lockOrderDiags(pass)
	})
	if err != nil {
		return err
	}
	// The cycle set is global; each diagnostic is reported by the
	// package whose files contain its position.
	for _, d := range v.([]Diagnostic) {
		if pass.containsPos(d.Pos) {
			pass.Report(d)
		}
	}
	return nil
}

// lockFact is the per-function summary exported for every callgraph
// node: which lock classes running the function may acquire, directly
// or transitively, and through which call chain.
type lockFact struct {
	// Acquires maps a lock class to how this function reaches its
	// acquisition.
	Acquires map[string]lockVia
}

func (*lockFact) AFact() {}

// lockVia locates one acquisition: the source position of the eventual
// direct Lock call and the call chain (callee names, outermost first)
// leading from the summarized function to it; nil for a direct
// acquisition in the function body.
type lockVia struct {
	Pos  token.Pos
	Path []string
}

// lockSummary is one node's direct (intraprocedural) evidence.
type lockSummary struct {
	node *CallNode
	// acquires: class -> first direct statement-level acquisition site.
	acquires map[string]token.Pos
	// pairs: class B acquired at pos while class A held, in source order.
	pairs []lockPair
	// calls: resolved call sites executed while at least one classed
	// lock is held.
	calls []heldCall
}

type lockPair struct {
	a, b string
	pos  token.Pos
}

type heldCall struct {
	held   []string // sorted held classes
	callee *CallNode
	pos    token.Pos
}

// lockOrderDiags computes the whole-program lock-order graph and its
// cycle diagnostics. pass is the first lockorder pass of the run; it
// supplies the fact store (facts are keyed by analyzer, so every later
// lockorder pass of the same run sees the same store).
func lockOrderDiags(pass *Pass) ([]Diagnostic, error) {
	prog := pass.Prog
	cg := prog.CallGraph()

	summaries := make(map[*CallNode]*lockSummary, len(cg.Nodes))
	for _, n := range cg.Nodes {
		summaries[n] = directLockSummary(n)
	}

	// Compose facts bottom-up over the SCCs; within an SCC, iterate to
	// a fixpoint. The acquire set only grows and settled entries are
	// never overwritten, so termination is by monotonicity.
	for _, scc := range cg.SCCs() {
		for {
			changed := false
			for _, n := range scc {
				f := composeLockFact(pass, summaries[n])
				var old lockFact
				if !pass.ImportFact(n.Fn, &old) || len(f.Acquires) != len(old.Acquires) {
					pass.ExportFact(n.Fn, f)
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}

	// Global edge set A -> B: class B acquired while class A is held.
	type lockEdge struct {
		pos   token.Pos
		where string
	}
	edges := make(map[[2]string]lockEdge)
	addEdge := func(a, b string, pos token.Pos, where string) {
		if a == b {
			return
		}
		key := [2]string{a, b}
		if old, ok := edges[key]; !ok || pos < old.pos {
			edges[key] = lockEdge{pos, where}
		}
	}
	for _, n := range cg.Nodes {
		s := summaries[n]
		for _, p := range s.pairs {
			addEdge(p.a, p.b, p.pos, "in "+n.Name())
		}
		for _, hc := range s.calls {
			var cf lockFact
			if !pass.ImportFact(hc.callee.Fn, &cf) {
				continue
			}
			for _, b := range sortedKeys(cf.Acquires) {
				via := cf.Acquires[b]
				chain := append([]string{hc.callee.Name()}, via.Path...)
				where := "in " + n.Name() + " via " + strings.Join(chain, " -> ")
				for _, a := range hc.held {
					addEdge(a, b, hc.pos, where)
				}
			}
		}
	}

	// Cycle detection over the class digraph.
	adj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
		nodeSet[key[0]], nodeSet[key[1]] = true, true
	}
	classes := sortedBoolKeys(nodeSet)
	for _, c := range classes {
		sort.Strings(adj[c])
	}

	var diags []Diagnostic
	for _, scc := range stringSCCs(classes, adj) {
		if len(scc) < 2 {
			continue
		}
		cycle := findClassCycle(scc, adj)
		if cycle == nil {
			continue
		}
		var steps []string
		for i := 0; i+1 < len(cycle); i++ {
			e := edges[[2]string{cycle[i], cycle[i+1]}]
			steps = append(steps, fmt.Sprintf("%s taken while %s is held at %s (%s)",
				cycle[i+1], cycle[i], posLabel(prog.Fset, e.pos), e.where))
		}
		first := edges[[2]string{cycle[0], cycle[1]}]
		diags = append(diags, Diagnostic{
			Pos: first.pos,
			Message: fmt.Sprintf(
				"lockorder: lock acquisition order cycle %s: %s; acquire these locks in one global order to avoid deadlock",
				strings.Join(cycle, " -> "), strings.Join(steps, "; ")),
		})
	}
	return diags, nil
}

// directLockSummary walks one function body with the shared held-region
// walker, recording direct acquisitions, direct held pairs, and the
// resolved calls made inside held regions.
func directLockSummary(n *CallNode) *lockSummary {
	s := &lockSummary{node: n, acquires: make(map[string]token.Pos)}
	info := n.Pkg.Info
	if info == nil || n.Decl.Body == nil {
		return s
	}

	// Call sites resolve through the node's callgraph edges.
	siteEdges := make(map[*ast.CallExpr][]*CallEdge)
	for _, e := range n.Out {
		siteEdges[e.Site] = append(siteEdges[e.Site], e)
	}

	// classOf maps a held receiver string ("s.mu") to its lock class.
	classOf := make(map[string]string)
	heldClasses := func(held *heldSet) []string {
		var out []string
		for recv := range held.keys {
			if c := classOf[recv]; c != "" {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return dedupeSorted(out)
	}

	walkHeldList(info, n.Decl.Body.List, newHeldSet(), heldHooks{
		acquire: func(call *ast.CallExpr, recv string, held *heldSet) {
			class, ok := lockClassOf(info, call)
			if !ok {
				return
			}
			classOf[recv] = class
			if _, seen := s.acquires[class]; !seen {
				s.acquires[class] = call.Pos()
			}
			for _, a := range heldClasses(held) {
				if a != class {
					s.pairs = append(s.pairs, lockPair{a, class, call.Pos()})
				}
			}
		},
		stmt: func(stmt ast.Stmt, held *heldSet) {
			hc := heldClasses(held)
			if len(hc) == 0 {
				return
			}
			// The statement's own expressions only: nested lists are
			// walked separately with their own held sets, and spawned
			// goroutines do not run under the lock.
			inspectNoFuncLit(stmt, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.BlockStmt, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					for _, e := range siteEdges[node] {
						s.calls = append(s.calls, heldCall{held: hc, callee: e.Callee, pos: node.Pos()})
					}
				}
				return true
			})
		},
	})
	return s
}

// composeLockFact builds a node's fact from its direct summary plus the
// current facts of its callees. First evidence wins: settled entries
// keep their original call chain, which keeps reported paths stable
// across fixpoint iterations.
func composeLockFact(pass *Pass, s *lockSummary) *lockFact {
	f := &lockFact{Acquires: make(map[string]lockVia, len(s.acquires))}
	for class, pos := range s.acquires {
		f.Acquires[class] = lockVia{Pos: pos}
	}
	for _, e := range s.node.Out {
		var cf lockFact
		if !pass.ImportFact(e.Callee.Fn, &cf) {
			continue
		}
		for _, class := range sortedKeys(cf.Acquires) {
			if _, ok := f.Acquires[class]; ok {
				continue
			}
			via := cf.Acquires[class]
			f.Acquires[class] = lockVia{
				Pos:  via.Pos,
				Path: append([]string{e.Callee.Name()}, via.Path...),
			}
		}
	}
	return f
}

// lockClassOf maps a statement-level Lock/RLock call to the lock class
// it acquires, false for unclassed (local) mutexes.
func lockClassOf(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch e := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true // package-level mutex
		}
		// A variable of a lock-embedding named type, locked through the
		// value itself (b.Lock()): class by the owning type.
		if named := derefNamed(v.Type()); named != nil && !definedInSync(named) {
			return typeClassName(named), true
		}
	case *ast.SelectorExpr:
		obj, ok := info.ObjectOf(e.Sel).(*types.Var)
		if !ok || obj.Pkg() == nil {
			return "", false
		}
		if !obj.IsField() {
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name(), true // pkg-qualified global
			}
			return "", false
		}
		if selinfo, ok := info.Selections[e]; ok {
			if named := derefNamed(selinfo.Recv()); named != nil {
				return typeClassName(named) + "." + obj.Name(), true // mutex field
			}
		}
	}
	return "", false
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func definedInSync(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

func typeClassName(named *types.Named) string {
	if pkg := named.Obj().Pkg(); pkg != nil {
		return pkg.Name() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}

// findClassCycle reconstructs one concrete cycle inside a non-trivial
// SCC, starting (and ending) at its lexically smallest class, visiting
// smallest neighbors first — fully deterministic.
func findClassCycle(scc []string, adj map[string][]string) []string {
	inSCC := make(map[string]bool, len(scc))
	for _, c := range scc {
		inSCC[c] = true
	}
	sorted := append([]string(nil), scc...)
	sort.Strings(sorted)
	start := sorted[0]

	seen := map[string]bool{start: true}
	var path []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		for _, m := range adj[n] {
			if m == start && len(path) > 1 {
				return true
			}
			if !inSCC[m] || seen[m] {
				continue
			}
			seen[m] = true
			if dfs(m) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if !dfs(start) {
		return nil
	}
	return append(path, start)
}

// stringSCCs is Tarjan over the class digraph, components emitted
// bottom-up; node and edge order are pre-sorted by the caller.
func stringSCCs(nodes []string, adj map[string][]string) [][]string {
	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(n string)
	strongconnect = func(n string) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, m := range adj[n] {
			if _, seen := index[m]; !seen {
				strongconnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var scc []string
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}

func posLabel(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func sortedKeys(m map[string]lockVia) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
