package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// pkgFuncCall reports whether call invokes a package-level function of
// the package with import path pkgPath, returning its name ("" when
// not). It resolves through the type checker, so aliased imports and
// shadowed identifiers are handled correctly.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return ""
	}
	return sel.Sel.Name
}

// stmtLists visits every statement list in the file: block bodies,
// switch case clauses, and select comm clauses. Analyzers that need
// "the statements following X in its enclosing list" (the determinism
// pass's sort-rescue scan, the mutex pass's held-region walk) hang off
// this rather than re-deriving parent links.
func stmtLists(f *ast.File, visit func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

// inspectNoFuncLit walks n like ast.Inspect but does not descend into
// function literals: a closure's body runs at some other time (or on
// some other goroutine), so facts about "code executed here" must not
// leak across its boundary.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// exprPrinted renders a node with the standard printer — the canonical
// "name" of a receiver or channel expression in diagnostics.
func exprPrinted(n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), n)
	return buf.String()
}

// buildParents maps every node under root to its enclosing node, for
// checks that need to know the context a node appears in (is this send
// a select comm? is this receive a statement?).
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// usesObject reports whether the expression tree references obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	if obj == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
