package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"aviv/internal/analysis"
	"aviv/internal/analysis/analysistest"
)

// loadModulePackages loads the requested packages (or the whole module
// with "aviv/...") through the production loader.
func loadModulePackages(t *testing.T, patterns ...string) (*token.FileSet, []*analysis.Package) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, ".", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("loader returned no packages for %v", patterns)
	}
	return fset, pkgs
}

// fixtureCases drives every analyzer, by exact registry name, over its
// planted-defect fixtures. Each fixture contains at least one positive
// (a `want` expectation) and one negative (clean code with no
// expectation) per diagnostic class, so the golden check proves both
// that defects are caught and that the deterministic idioms stay
// silent. The registry pinning at the bottom mirrors
// verify.TestLintRuleTable: an analyzer without a fixture, or a
// fixture for a ghost analyzer, fails loudly.
var fixtureCases = []struct {
	analyzer string
	fixture  string // directory under testdata/src
	asPath   string // import path the fixture impersonates
}{
	{"layering", "layering/upward", "aviv/internal/ir"},
	{"layering", "layering/ok", "aviv/internal/cover"},
	{"layering", "layering/unknown", "aviv/internal/newthing"},
	{"layering", "layering/intocmd", "aviv/internal/server"},
	{"determinism", "determinism", "aviv/internal/cover"},
	{"determinism", "determinism/zoo", "aviv/internal/zoo"},
	{"mutexhygiene", "mutexhygiene", "aviv/internal/server"},
	{"lockorder", "lockorder", "aviv/internal/server"},
	{"goroutineleak", "goroutineleak", "aviv/internal/server"},
	{"ctxflow", "ctxflow", "aviv/internal/server"},
	{"errctx", "errctx", "aviv/internal/diskcache"},
	{"suppress", "suppress", "aviv/internal/server"},
}

func TestAnalyzerFixtureTable(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer+"/"+filepath.Base(tc.fixture), func(t *testing.T) {
			a := analysis.ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("fixture table names unknown analyzer %q", tc.analyzer)
			}
			analysistest.Run(t, a, filepath.Join("testdata", "src", tc.fixture), tc.asPath)
		})
	}

	// Registry pinning, both directions.
	want := map[string]bool{
		"layering":      true,
		"determinism":   true,
		"mutexhygiene":  true,
		"lockorder":     true,
		"goroutineleak": true,
		"ctxflow":       true,
		"errctx":        true,
		"suppress":      true,
	}
	got := map[string]bool{}
	for _, a := range analysis.All() {
		if got[a.Name] {
			t.Errorf("duplicate analyzer name %q in All()", a.Name)
		}
		got[a.Name] = true
		if !want[a.Name] {
			t.Errorf("analyzer %q is registered but has no entry in this test's table", a.Name)
		}
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("expected analyzer %q is not registered in All()", name)
		}
	}
	covered := map[string]bool{}
	for _, tc := range fixtureCases {
		covered[tc.analyzer] = true
	}
	for name := range got {
		if !covered[name] {
			t.Errorf("analyzer %q has no fixture case", name)
		}
	}
}

// TestErrCtxSuggestedFix pins the %v -> %w rewrite: the simple-shape
// findings must carry an edit that lands exactly on the trailing verb.
func TestErrCtxSuggestedFix(t *testing.T) {
	diags, fset, _ := analysistest.Diagnostics(t, analysis.ErrCtx,
		filepath.Join("testdata", "src", "errctx"), "aviv/internal/diskcache")
	if len(diags) == 0 {
		t.Fatal("no errctx diagnostics on fixture")
	}
	withFix := 0
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		withFix++
		if len(d.Fix.Edits) != 1 || d.Fix.Edits[0].New != "%w" {
			t.Errorf("unexpected fix shape: %+v", d.Fix)
		}
		e := d.Fix.Edits[0]
		if fset.Position(e.End).Offset-fset.Position(e.Pos).Offset != 2 {
			t.Errorf("fix edit must replace exactly a two-byte verb, got [%v,%v)", e.Pos, e.End)
		}
	}
	// lostContext, lostViaSprint, and escaped all end with the error as
	// final arg matched by the final verb: all three are fixable.
	if withFix != 3 {
		t.Errorf("want 3 fixable findings, got %d", withFix)
	}
}

// TestErrCtxFixIdempotent proves `avivlint -fix` converges in one
// pass: applying the suggested %v -> %w edits in memory and re-running
// the analyzer yields no further fixable findings and no further edits.
func TestErrCtxFixIdempotent(t *testing.T) {
	dir := filepath.Join("testdata", "src", "errctx")
	const asPath = "aviv/internal/diskcache"

	diags, fset, _ := analysistest.Diagnostics(t, analysis.ErrCtx, dir, asPath)
	findings := asFindings(fset, diags)
	fixed, n, err := analysis.ApplyFixes(fset, findings, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("first pass applied %d fixes, want 3", n)
	}

	// Second pass, over the fixed sources: unfixable findings may
	// remain, but nothing fixable and no edits.
	fset2, diags2 := runErrCtxInMemory(t, dir, asPath, fixed)
	for _, d := range diags2 {
		if d.Fix != nil {
			t.Errorf("fixable finding survived -fix: %s", d.Message)
		}
	}
	readOverlay := func(name string) ([]byte, error) {
		if b, ok := fixed[name]; ok {
			return b, nil
		}
		return os.ReadFile(name)
	}
	fixed2, n2, err := analysis.ApplyFixes(fset2, asFindings(fset2, diags2), readOverlay)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 || len(fixed2) != 0 {
		t.Errorf("second -fix pass still edited: %d fixes over %d files", n2, len(fixed2))
	}
}

func asFindings(fset *token.FileSet, diags []analysis.Diagnostic) []analysis.Finding {
	out := make([]analysis.Finding, len(diags))
	for i, d := range diags {
		out[i] = analysis.Finding{Diagnostic: d, Position: fset.Position(d.Pos)}
	}
	return out
}

// runErrCtxInMemory re-parses the fixture with overlay contents taking
// precedence over the on-disk files, type-checks it, and runs errctx.
func runErrCtxInMemory(t *testing.T, dir, asPath string, overlay map[string][]byte) (*token.FileSet, []analysis.Diagnostic) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var std []string
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		var src any
		if b, ok := overlay[name]; ok {
			src = b
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && !seen[p] {
				seen[p] = true
				std = append(std, p)
			}
		}
	}
	sort.Strings(std)
	imp, err := analysis.StdImporter(fset, std...)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	pkg, err := (&types.Config{Importer: imp}).Check(asPath, fset, files, info)
	if err != nil {
		t.Fatalf("re-type-checking fixed fixture: %v", err)
	}
	diags, err := analysis.ErrCtx.RunOn(fset, asPath, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, diags
}

// TestSuiteIsSelfClean runs every analyzer over internal/analysis
// itself: the suite must hold itself to its own rules (the layering
// table includes it, and its own code is determinism-clean).
func TestSuiteIsSelfClean(t *testing.T) {
	fset, pkgs := loadModulePackages(t, "aviv/internal/analysis", "aviv/internal/analysis/analysistest")
	findings, err := analysis.Run(fset, pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
