package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrCtx flags fmt.Errorf calls that format a received error without
// wrapping it: an error argument rendered by %v (or %s) instead of %w.
// Where the error is the final argument matched by a trailing verb,
// the finding carries a mechanical %v -> %w fix that `avivlint -fix`
// applies.
//
// The pass started scoped to the packages defining structured error
// types (verify, server, diskcache) and is now tree-wide: the whole
// compile path flows errors up to the facade, and a single %v anywhere
// on the way severs the errors.Is/As chain end to end.
var ErrCtx = &Analyzer{
	Name: "errctx",
	Doc: "fmt.Errorf over an error value must wrap it with %w so " +
		"errors.Is/As keep working across the whole compile path",
	NeedTypes: true,
	Run:       runErrCtx,
}

func runErrCtx(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pkgFuncCall(pass.Info, call, "fmt") != "Errorf" || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // dynamic format string; nothing to prove
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			wraps := strings.Contains(format, "%w")
			for i, arg := range call.Args[1:] {
				t, ok := pass.Info.Types[arg]
				if !ok || t.Type == nil || !types.Implements(t.Type, errType) {
					continue
				}
				if wraps {
					continue // at least one %w present; assume it covers the error
				}
				d := Diagnostic{
					Pos: arg.Pos(),
					Message: "errctx: fmt.Errorf formats an error without wrapping it; " +
						"use %w so callers can errors.Is/As through the message",
				}
				// Mechanical fix for the common shape: the error is the
				// last argument and the format ends in %v or %s.
				if i == len(call.Args[1:])-1 {
					if idx := strings.LastIndex(lit.Value, "%v"); idx == -1 {
						idx = strings.LastIndex(lit.Value, "%s")
						if idx != -1 && idx == strings.LastIndex(trimVerbs(lit.Value), "%") {
							d.Fix = verbFix(lit, idx)
						}
					} else if idx == strings.LastIndex(trimVerbs(lit.Value), "%") {
						d.Fix = verbFix(lit, idx)
					}
				}
				pass.Report(d)
			}
			return true
		})
	}
	return nil
}

// trimVerbs neutralizes literal %% pairs so LastIndex("%") finds the
// final true verb.
func trimVerbs(s string) string {
	return strings.ReplaceAll(s, "%%", "..")
}

// verbFix replaces the two-byte verb at byte offset idx of the format
// literal with %w.
func verbFix(lit *ast.BasicLit, idx int) *Fix {
	start := lit.Pos() + token.Pos(idx)
	return &Fix{
		Message: "wrap the error with %w",
		Edits:   []Edit{{Pos: start, End: start + 2, New: "%w"}},
	}
}
