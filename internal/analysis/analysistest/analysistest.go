// Package analysistest runs one analyzer over a fixture directory and
// checks its diagnostics against inline expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//
// where each quoted pattern is a regular expression that must match a
// diagnostic reported on that line, and every diagnostic must be
// claimed by some pattern. A /* want "..." */ block comment works too,
// which is how fixtures attach an expectation to a //lint:reason line
// (a line comment would swallow the rest of the line).
//
// Fixtures live under testdata/src/<analyzer>/<case>. Type-aware
// analyzers get the fixture type-checked against compiled export data
// for its standard-library imports; syntactic analyzers run on the
// bare parse, so fixtures may import unresolvable module paths (the
// layering fixtures do exactly that).
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"aviv/internal/analysis"
)

// Run checks the analyzer against the fixture directory. asPath is the
// import path the fixture package pretends to be — component-scoped
// analyzers (layering, determinism, errctx) behave according to it;
// pass anything ("fixture") for unscoped analyzers.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	diags, fset, files := Diagnostics(t, a, dir, asPath)
	check(t, fset, files, diags)
}

// Diagnostics runs the analyzer over the fixture and returns its
// post-suppression diagnostics without checking want expectations, for
// tests that assert on diagnostic details (suggested fixes, ordering).
func Diagnostics(t *testing.T, a *analysis.Analyzer, dir, asPath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", dir, err)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	var pkg *types.Package
	var info *types.Info
	if a.NeedTypes {
		pkg, info, err = typecheck(fset, files, asPath)
		if err != nil {
			t.Fatalf("type checking fixture %s: %v", dir, err)
		}
	}

	diags, err := a.RunOn(fset, asPath, files, pkg, info)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if a != analysis.Suppress {
		diags = analysis.FilterSuppressed(fset, files, diags)
	}
	return diags, fset, files
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// typecheck type-checks the fixture against export data for its
// standard-library imports. Module-path imports are rejected: typed
// fixtures must be self-contained.
func typecheck(fset *token.FileSet, files []*ast.File, path string) (*types.Package, *types.Info, error) {
	var std []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			std = append(std, p)
		}
	}
	sort.Strings(std)
	imp, err := analysis.StdImporter(fset, std...)
	if err != nil {
		return nil, nil, err
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// expectation is one want pattern at one file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// wantRe matches `want` followed by one or more double- or
// backquote-quoted regexp patterns (backquotes keep patterns with
// quotes and parens readable).
var wantRe = regexp.MustCompile("want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := m[1]
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" || (rest[0] != '"' && rest[0] != '`') {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q", pos.Filename, pos.Line, rest)
					}
					pat, _ := strconv.Unquote(q)
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		for i, d := range diags {
			if claimed[i] {
				continue
			}
			pos := fset.Position(d.Pos)
			if pos.Filename == w.file && pos.Line == w.line && w.re.MatchString(d.Message) {
				claimed[i] = true
				w.met = true
				break
			}
		}
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			pos := fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
}
