// Package sndag builds the Split-Node DAG of the AVIV paper (Sec. III):
// a representation of all possible ways a basic-block expression DAG can
// be implemented on a target processor.
//
// Every computation node of the original DAG becomes a *split node* whose
// immediate descendants are *operation alternatives*, one per (functional
// unit, machine op) pair able to perform it. Complex-instruction pattern
// matches (Sec. III-B) add further alternatives that cover several
// original nodes at once. *Data-transfer nodes* sit on every path between
// an operation alternative and the alternatives of its operand producers
// whenever the two run on different units (including multi-hop paths),
// and on the paths from data memory for loads and to data memory for
// stores.
//
// The covering engine (package cover) consumes the alternatives database;
// the explicit node inventory (Counts, DOT) reproduces the "#Nodes in
// Split-Node DAG" columns of the paper's Tables I and II.
package sndag

import (
	"fmt"
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// Alt is one way to implement a split node on the target machine: execute
// Op on Unit, covering the original nodes in Covers (more than one for a
// complex-instruction match) and consuming the values produced by the
// Operands nodes, in machine operand order.
type Alt struct {
	Unit *isdl.Unit
	Op   ir.Op
	// Covers lists the original nodes this alternative implements.
	// Covers[0] is the root (the split node's original node); any further
	// entries are interior nodes absorbed by a complex instruction.
	Covers []*ir.Node
	// Operands lists the original nodes whose values feed this
	// alternative. For a simple alternative these are exactly the root's
	// args; for a complex match they are the wildcard bindings.
	Operands []*ir.Node
}

// IsComplex reports whether the alternative is a complex-instruction
// match absorbing more than one original node.
func (a *Alt) IsComplex() bool { return len(a.Covers) > 1 }

func (a *Alt) String() string {
	return fmt.Sprintf("%s.%s", a.Unit.Name, a.Op)
}

// Split is the split node derived from one original computation node.
type Split struct {
	Orig *ir.Node
	Alts []*Alt
}

// Counts is the node inventory of the explicit Split-Node DAG.
type Counts struct {
	// Anchors counts nodes carried over unchanged: loads, stores, and
	// constants of the original DAG.
	Anchors int
	// SplitNodes counts split nodes (one per original computation node).
	SplitNodes int
	// OpNodes counts operation-alternative nodes.
	OpNodes int
	// TransferNodes counts data-transfer nodes over all alternative
	// paths (one per hop per producer-alternative/consumer-alternative
	// pair, plus load and store paths).
	TransferNodes int
}

// Total returns the total Split-Node DAG node count.
func (c Counts) Total() int {
	return c.Anchors + c.SplitNodes + c.OpNodes + c.TransferNodes
}

// DAG is the Split-Node DAG for one basic block on one machine.
type DAG struct {
	Block   *ir.Block
	Machine *isdl.Machine

	// Splits holds one split node per original computation node, in the
	// block's topological order (operands before users).
	Splits  []*Split
	splitOf map[*ir.Node]*Split

	Counts Counts
}

// Build constructs the Split-Node DAG for block on machine. It fails if
// some computation node cannot be executed by any functional unit.
func Build(block *ir.Block, machine *isdl.Machine) (*DAG, error) {
	if err := machine.SupportsDAG(block); err != nil {
		return nil, err
	}
	d := &DAG{
		Block:   block,
		Machine: machine,
		splitOf: make(map[*ir.Node]*Split),
	}
	users := block.Users()

	for _, n := range block.Nodes {
		switch {
		case n.Op.IsComputation():
			s := &Split{Orig: n}
			// Simple alternatives: one per unit able to perform the op.
			for _, u := range machine.UnitsFor(n.Op) {
				s.Alts = append(s.Alts, &Alt{
					Unit:     u,
					Op:       n.Op,
					Covers:   []*ir.Node{n},
					Operands: n.Args,
				})
			}
			// Complex-instruction alternatives (Sec. III-B).
			for _, p := range machine.Patterns {
				operands, absorbed, ok := isdl.MatchPattern(p.Tree, n, users)
				if !ok {
					continue
				}
				s.Alts = append(s.Alts, &Alt{
					Unit:     machine.Unit(p.Unit),
					Op:       p.Result,
					Covers:   absorbed,
					Operands: operands,
				})
			}
			d.Splits = append(d.Splits, s)
			d.splitOf[n] = s
			d.Counts.SplitNodes++
			d.Counts.OpNodes += len(s.Alts)
		default:
			d.Counts.Anchors++
		}
	}

	d.Counts.TransferNodes = d.countTransferNodes()
	return d, nil
}

// SplitOf returns the split node for an original computation node, or nil.
func (d *DAG) SplitOf(n *ir.Node) *Split { return d.splitOf[n] }

// countTransferNodes counts one transfer node per hop of the minimal
// transfer path, for every (consumer alternative, operand producer
// alternative) pair on distinct units, plus load paths from data memory
// and store paths to data memory.
func (d *DAG) countTransferNodes() int {
	dm := isdl.MemLoc(d.Machine.DataMemory().Name)
	total := 0
	hops := func(from, to isdl.Loc) int {
		c := d.Machine.PathCost(from, to)
		if c < 0 {
			return 0 // unreachable pairs contribute no nodes
		}
		return c
	}
	for _, s := range d.Splits {
		for _, alt := range s.Alts {
			to := isdl.UnitLoc(alt.Unit.Regs.Name)
			for _, operand := range alt.Operands {
				switch {
				case operand.Op == ir.OpConst:
					// Immediates need no transfer.
				case operand.Op == ir.OpLoad:
					total += hops(dm, to)
				default:
					// One set of transfer nodes per producer alternative.
					ps := d.splitOf[operand]
					for _, palt := range ps.Alts {
						total += hops(isdl.UnitLoc(palt.Unit.Regs.Name), to)
					}
				}
			}
		}
	}
	// Store roots: value must reach data memory from each producer
	// alternative.
	for _, n := range d.Block.Nodes {
		if n.Op != ir.OpStore {
			continue
		}
		arg := n.Args[0]
		if arg.Op == ir.OpConst || arg.Op == ir.OpLoad {
			// Leaf stores route through some unit; count the cheapest
			// such round trip once.
			best := -1
			for _, u := range d.Machine.Units {
				ul := isdl.UnitLoc(u.Regs.Name)
				c1, c2 := d.Machine.PathCost(dm, ul), d.Machine.PathCost(ul, dm)
				if c1 < 0 || c2 < 0 {
					continue
				}
				if best < 0 || c1+c2 < best {
					best = c1 + c2
				}
			}
			if best > 0 {
				total += best
			}
			continue
		}
		ps := d.splitOf[arg]
		for _, palt := range ps.Alts {
			total += hops(isdl.UnitLoc(palt.Unit.Regs.Name), dm)
		}
	}
	return total
}

// AssignmentSpace returns the number of possible split-node functional
// unit assignments (the product over split nodes of their alternative
// counts, Sec. IV-A). It saturates at maxInt to avoid overflow on large
// blocks.
func (d *DAG) AssignmentSpace() int {
	const maxInt = int(^uint(0) >> 1)
	total := 1
	for _, s := range d.Splits {
		n := len(s.Alts)
		if n == 0 {
			return 0
		}
		if total > maxInt/n {
			return maxInt
		}
		total *= n
	}
	return total
}

// TopDownOrder returns the splits ordered by increasing level from the
// top of the DAG (roots first), the order in which the assignment search
// of Sec. IV-A examines them. Ties break by original node ID for
// determinism.
func (d *DAG) TopDownOrder() []*Split {
	fromTop, _ := d.Block.Levels()
	out := make([]*Split, len(d.Splits))
	copy(out, d.Splits)
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := fromTop[out[i].Orig], fromTop[out[j].Orig]
		if ti != tj {
			return ti < tj
		}
		return out[i].Orig.ID < out[j].Orig.ID
	})
	return out
}
