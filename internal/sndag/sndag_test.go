package sndag

import (
	"strings"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// fig2Block builds the paper's Fig. 2 example basic block:
// out = (a + b) - (c * d), i.e. a SUB root consuming an ADD and a MUL.
// 4 loads + 3 computations + 1 store = 8 nodes, matching Ex1 of Table I.
func fig2Block() *ir.Block {
	bb := ir.NewBuilder("fig2")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	return bb.Finish()
}

func TestBuildFig4(t *testing.T) {
	m := isdl.ExampleArch(4)
	blk := fig2Block()
	d, err := Build(blk, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Splits) != 3 {
		t.Fatalf("got %d splits, want 3 (ADD, MUL, SUB)", len(d.Splits))
	}
	// Alternative counts per Fig. 4: ADD on U1/U2/U3, MUL on U2/U3,
	// SUB on U1/U2.
	wantAlts := map[ir.Op]int{ir.OpAdd: 3, ir.OpMul: 2, ir.OpSub: 2}
	for _, s := range d.Splits {
		if got := len(s.Alts); got != wantAlts[s.Orig.Op] {
			t.Errorf("%s has %d alternatives, want %d", s.Orig.Op, got, wantAlts[s.Orig.Op])
		}
		for _, a := range s.Alts {
			if !a.Unit.Can(a.Op) {
				t.Errorf("alternative %s not executable", a)
			}
			if a.IsComplex() {
				t.Errorf("unexpected complex alternative %s", a)
			}
		}
	}
	// The paper's assignment-space example: 2 x 2 x 3 = 12.
	if got := d.AssignmentSpace(); got != 12 {
		t.Errorf("AssignmentSpace = %d, want 12", got)
	}
	// Node inventory: 5 anchors (4 loads + 1 store), 3 splits, 7 op
	// alternatives, and transfer nodes for every cross-unit pair:
	// loads 3*2 + 2*2 = 10, ADD->SUB pairs 4, MUL->SUB pairs 3,
	// store from SUB alts 2: total 19.
	c := d.Counts
	if c.Anchors != 5 || c.SplitNodes != 3 || c.OpNodes != 7 {
		t.Errorf("counts = %+v, want anchors=5 splits=3 opNodes=7", c)
	}
	if c.TransferNodes != 19 {
		t.Errorf("TransferNodes = %d, want 19", c.TransferNodes)
	}
	// Growth factor over the original 8-node DAG is in the paper's
	// ballpark (Ex1: 8 -> 30).
	if c.Total() < 25 || c.Total() > 40 {
		t.Errorf("Total = %d, want roughly 30 like the paper's Ex1", c.Total())
	}
}

func TestBuildArchII(t *testing.T) {
	// On Architecture II the same block has far fewer alternatives
	// (Table II: Ex1 drops from 30 to 17 nodes).
	d2, err := Build(fig2Block(), isdl.ArchitectureII(4))
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Build(fig2Block(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Counts.Total() >= d1.Counts.Total() {
		t.Errorf("ArchII total %d should be smaller than ExampleArch total %d",
			d2.Counts.Total(), d1.Counts.Total())
	}
	for _, s := range d2.Splits {
		switch s.Orig.Op {
		case ir.OpMul, ir.OpSub:
			if len(s.Alts) != 1 {
				t.Errorf("%s has %d alts on ArchII, want 1", s.Orig.Op, len(s.Alts))
			}
		case ir.OpAdd:
			if len(s.Alts) != 2 {
				t.Errorf("ADD has %d alts on ArchII, want 2", len(s.Alts))
			}
		}
	}
	if got := d2.AssignmentSpace(); got != 2 {
		t.Errorf("ArchII AssignmentSpace = %d, want 2", got)
	}
}

func TestBuildRejectsUnsupported(t *testing.T) {
	bb := ir.NewBuilder("div")
	bb.Store("o", bb.Op(ir.OpDiv, bb.Load("a"), bb.Load("b")))
	bb.Return()
	if _, err := Build(bb.Finish(), isdl.ExampleArch(4)); err == nil {
		t.Error("Build accepted a DAG with unsupported DIV")
	}
}

func TestComplexPatternAlternative(t *testing.T) {
	m := isdl.WideDSP(4)
	bb := ir.NewBuilder("mac")
	acc := bb.Load("acc")
	x := bb.Load("x")
	y := bb.Load("y")
	sum := bb.Add(acc, bb.Mul(x, y))
	bb.Store("acc", sum)
	bb.Return()
	d, err := Build(bb.Finish(), m)
	if err != nil {
		t.Fatal(err)
	}
	var addSplit *Split
	for _, s := range d.Splits {
		if s.Orig.Op == ir.OpAdd {
			addSplit = s
		}
	}
	if addSplit == nil {
		t.Fatal("no ADD split")
	}
	var complex *Alt
	for _, a := range addSplit.Alts {
		if a.IsComplex() {
			complex = a
		}
	}
	if complex == nil {
		t.Fatal("MAC pattern produced no complex alternative")
	}
	if complex.Op != ir.OpMAC || complex.Unit.Name != "M1" {
		t.Errorf("complex alt = %s, want M1.MAC", complex)
	}
	if len(complex.Covers) != 2 {
		t.Errorf("complex alt covers %d nodes, want 2", len(complex.Covers))
	}
	if len(complex.Operands) != 3 {
		t.Errorf("complex alt has %d operands, want 3", len(complex.Operands))
	}
}

func TestConstOperandsNeedNoTransfers(t *testing.T) {
	m := isdl.ExampleArch(4)
	bb := ir.NewBuilder("c")
	bb.Store("o", bb.Add(bb.Const(1), bb.Const(2)))
	bb.Return()
	d, err := Build(bb.Finish(), m)
	if err != nil {
		t.Fatal(err)
	}
	// Only the store path contributes transfers: ADD alts on 3 units, one
	// hop each to DM = 3.
	if d.Counts.TransferNodes != 3 {
		t.Errorf("TransferNodes = %d, want 3 (store only)", d.Counts.TransferNodes)
	}
}

func TestTopDownOrder(t *testing.T) {
	d, err := Build(fig2Block(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	order := d.TopDownOrder()
	if len(order) != 3 {
		t.Fatal("wrong order length")
	}
	// SUB is the root computation: level-from-top below store = smallest
	// among computations.
	if order[0].Orig.Op != ir.OpSub {
		t.Errorf("first in top-down order is %s, want SUB", order[0].Orig.Op)
	}
}

func TestDescribeAndDOT(t *testing.T) {
	d, err := Build(fig2Block(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	desc := d.Describe()
	for _, want := range []string{"split-node DAG", "U1.SUB | U2.SUB", "U2.MUL | U3.MUL", "assignment space: 12"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
	dot := d.DOT()
	for _, want := range []string{"digraph", "diamond", "shape=box", "shape=circle"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestAssignmentSpaceSaturates(t *testing.T) {
	m := isdl.ExampleArch(4)
	bb := ir.NewBuilder("big")
	cur := bb.Load("x")
	for i := 0; i < 64; i++ {
		cur = bb.Add(cur, bb.Load("y"))
	}
	bb.Store("o", cur)
	bb.Return()
	d, err := Build(bb.Finish(), m)
	if err != nil {
		t.Fatal(err)
	}
	// 3^64 overflows; must saturate to a positive value.
	if d.AssignmentSpace() <= 0 {
		t.Error("AssignmentSpace overflowed")
	}
}

func TestBuildOnClusteredMachine(t *testing.T) {
	// ADD runs on all four units of the clustered machine; MUL on two.
	m := isdl.ClusteredVLIW(4)
	d, err := Build(fig2Block(), m)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ir.Op]int{ir.OpAdd: 4, ir.OpMul: 2, ir.OpSub: 2}
	for _, s := range d.Splits {
		if got := len(s.Alts); got != want[s.Orig.Op] {
			t.Errorf("%s: %d alternatives, want %d", s.Orig.Op, got, want[s.Orig.Op])
		}
	}
	// Assignment space 4 * 2 * 2 = 16.
	if got := d.AssignmentSpace(); got != 16 {
		t.Errorf("AssignmentSpace = %d, want 16", got)
	}
	// Transfer counting must use banks: an ADD-alt on A0 feeding a
	// SUB-alt on M0 (same bank C0) contributes no transfer nodes, so the
	// count is lower than unit-pair arithmetic would suggest.
	if d.Counts.TransferNodes <= 0 {
		t.Errorf("no transfer nodes at all: %+v", d.Counts)
	}
}

func TestTopDownOrderTieBreak(t *testing.T) {
	// Two independent stores: the two computations share level; order
	// must fall back to node ID deterministically.
	bb := ir.NewBuilder("tie")
	bb.Store("p", bb.Add(bb.Load("a"), bb.Load("b")))
	bb.Store("q", bb.Sub(bb.Load("c"), bb.Load("d")))
	bb.Return()
	d, err := Build(bb.Finish(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	order := d.TopDownOrder()
	if len(order) != 2 {
		t.Fatal("wrong split count")
	}
	if order[0].Orig.ID > order[1].Orig.ID {
		t.Errorf("tie not broken by ID: %d before %d", order[0].Orig.ID, order[1].Orig.ID)
	}
}
