package sndag

import (
	"fmt"
	"strings"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// DOT renders the explicit Split-Node DAG in Graphviz format, in the style
// of the paper's Fig. 4: split nodes as diamonds, operation alternatives
// as boxes labelled with their unit, transfer nodes as small circles, and
// anchor nodes (loads/stores/constants) as plain ovals.
func (d *DAG) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", d.Block.Name+"-sndag")
	transferID := 0

	anchor := func(n *ir.Node) string { return fmt.Sprintf("a%d", n.ID) }
	splitName := func(s *Split) string { return fmt.Sprintf("s%d", s.Orig.ID) }
	altName := func(s *Split, i int) string { return fmt.Sprintf("s%d_%d", s.Orig.ID, i) }

	// Emit a chain of transfer nodes for a path and return the name of
	// the first node of the chain (the one the consumer points at).
	emitPath := func(path []isdl.Transfer, to string) string {
		cur := to
		for i := len(path) - 1; i >= 0; i-- {
			t := path[i]
			name := fmt.Sprintf("t%d", transferID)
			transferID++
			fmt.Fprintf(&sb, "  %s [shape=circle,label=%q,fontsize=9];\n",
				name, fmt.Sprintf("%s>%s", t.From, t.To))
			fmt.Fprintf(&sb, "  %s -> %s;\n", cur, name)
			cur = name
		}
		return cur
	}

	dm := isdl.MemLoc(d.Machine.DataMemory().Name)
	for _, n := range d.Block.Nodes {
		switch {
		case n.Op == ir.OpConst:
			fmt.Fprintf(&sb, "  %s [label=%q];\n", anchor(n), fmt.Sprintf("%d", n.Const))
		case n.Op == ir.OpLoad:
			fmt.Fprintf(&sb, "  %s [label=%q];\n", anchor(n), n.Var)
		case n.Op == ir.OpStore:
			fmt.Fprintf(&sb, "  %s [label=%q];\n", anchor(n), "ST "+n.Var)
			arg := n.Args[0]
			if s := d.splitOf[arg]; s != nil {
				for i, alt := range s.Alts {
					paths := d.Machine.TransferPaths(isdl.UnitLoc(alt.Unit.Regs.Name), dm)
					if len(paths) == 0 {
						continue
					}
					head := emitPath(paths[0], anchor(n))
					fmt.Fprintf(&sb, "  %s -> %s;\n", head, altName(s, i))
				}
			} else {
				fmt.Fprintf(&sb, "  %s -> %s;\n", anchor(n), anchor(arg))
			}
		}
	}

	for _, s := range d.Splits {
		fmt.Fprintf(&sb, "  %s [shape=diamond,label=%q];\n", splitName(s), s.Orig.Op.String())
		for i, alt := range s.Alts {
			label := fmt.Sprintf("%s\\n%s", alt.Op, alt.Unit.Name)
			fmt.Fprintf(&sb, "  %s [shape=box,label=%q];\n", altName(s, i), label)
			fmt.Fprintf(&sb, "  %s -> %s;\n", splitName(s), altName(s, i))
			to := isdl.UnitLoc(alt.Unit.Regs.Name)
			for _, operand := range alt.Operands {
				switch {
				case operand.Op == ir.OpConst:
					fmt.Fprintf(&sb, "  %s -> %s [style=dotted];\n", altName(s, i), anchor(operand))
				case operand.Op == ir.OpLoad:
					paths := d.Machine.TransferPaths(dm, to)
					if len(paths) == 0 || len(paths[0]) == 0 {
						fmt.Fprintf(&sb, "  %s -> %s;\n", altName(s, i), anchor(operand))
						continue
					}
					head := emitPath(paths[0], altName(s, i))
					// The chain hangs below the consumer; root it at the load.
					fmt.Fprintf(&sb, "  %s -> %s;\n", head, anchor(operand))
				default:
					os := d.splitOf[operand]
					for j, oalt := range os.Alts {
						paths := d.Machine.TransferPaths(isdl.UnitLoc(oalt.Unit.Regs.Name), to)
						if len(paths) == 0 {
							continue
						}
						if len(paths[0]) == 0 {
							fmt.Fprintf(&sb, "  %s -> %s;\n", altName(s, i), altName(os, j))
							continue
						}
						head := emitPath(paths[0], altName(s, i))
						fmt.Fprintf(&sb, "  %s -> %s;\n", head, altName(os, j))
					}
				}
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Describe returns a textual inventory of the Split-Node DAG: each split
// node with its alternatives, plus the node counts.
func (d *DAG) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "split-node DAG for block %s on %s\n", d.Block.Name, d.Machine.Name)
	for _, s := range d.Splits {
		alts := make([]string, len(s.Alts))
		for i, a := range s.Alts {
			alts[i] = a.String()
			if a.IsComplex() {
				alts[i] += fmt.Sprintf("(covers %d)", len(a.Covers))
			}
		}
		fmt.Fprintf(&sb, "  %-22s -> %s\n", s.Orig.String(), strings.Join(alts, " | "))
	}
	c := d.Counts
	fmt.Fprintf(&sb, "counts: anchors=%d splits=%d opAlts=%d transfers=%d total=%d (original %d)\n",
		c.Anchors, c.SplitNodes, c.OpNodes, c.TransferNodes, c.Total(), len(d.Block.Nodes))
	fmt.Fprintf(&sb, "assignment space: %d\n", d.AssignmentSpace())
	return sb.String()
}
