package server

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical work: the first caller
// for a key becomes the leader and runs fn in a detached goroutine;
// every caller — leader's request included — waits for that one
// execution, each bounded by its own context. The execution context is
// detached from any single caller's deadline, so a slow client cannot
// poison the result for faster ones — but it is not immortal: when the
// last waiter abandons the flight, the execution context is cancelled
// and the entry retired, so work nobody wants stops holding a queue
// slot and a later identical request starts fresh.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	// waiters counts callers blocked on an in-flight execution
	// (leaders included); tests use it to sequence interleavings
	// deterministically.
	waiters atomic.Int64
	// onAbandon, when set, is invoked each time a flight loses its last
	// waiter and is cancelled (the server counts these).
	onAbandon func()
}

type flightCall struct {
	done   chan struct{}
	cancel context.CancelFunc
	// waiting counts callers still wanting this result; mu-guarded.
	// When it reaches zero the flight is cancelled and retired.
	waiting int
	resp    *CompileResponse
	err     error
}

// do returns fn's outcome for key, and whether this caller piggybacked
// on an already in-flight execution. ctx bounds only this caller's
// wait; fn receives a context that survives individual waiters and is
// cancelled only when every waiter has given up.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*CompileResponse, error)) (resp *CompileResponse, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	c, inflight := g.calls[key]
	if !inflight {
		// Detach from this caller's deadline but keep a cancel handle:
		// the flight must outlive any one waiter, not all of them.
		runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c = &flightCall{done: make(chan struct{}), cancel: cancel}
		g.calls[key] = c
		go func() {
			c.resp, c.err = fn(runCtx)
			g.mu.Lock()
			// Guard on identity: an abandoned flight was already
			// retired, and the key may host a fresh call by now.
			if g.calls[key] == c {
				delete(g.calls, key)
			}
			g.mu.Unlock()
			cancel()
			close(c.done)
		}()
	}
	c.waiting++
	g.mu.Unlock()

	g.waiters.Add(1)
	defer g.waiters.Add(-1)
	select {
	case <-c.done:
		return c.resp, inflight, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiting--
		abandoned := c.waiting == 0
		if abandoned {
			// Last waiter out: stop the execution and retire the entry
			// so the next identical request is not chained to a result
			// nobody is left to consume.
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		if abandoned && g.onAbandon != nil {
			g.onAbandon()
		}
		return nil, inflight, ctx.Err()
	}
}
