package server

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical work: the first caller
// for a key becomes the leader and runs fn in a detached goroutine;
// every caller — leader's request included — waits for that one
// execution, each bounded by its own context. The computation itself is
// never cancelled by a waiter's timeout (compilation is CPU-bound and
// uninterruptible anyway), so a slow client cannot poison the result
// for faster ones; the entry is removed when fn completes, after which
// the two-tier compile cache makes re-requests cheap.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	// waiters counts callers blocked on an in-flight execution
	// (leaders included); tests use it to sequence interleavings
	// deterministically.
	waiters atomic.Int64
}

type flightCall struct {
	done chan struct{}
	resp *CompileResponse
	err  error
}

// do returns fn's outcome for key, and whether this caller piggybacked
// on an already in-flight execution. ctx bounds only the wait, never
// the execution.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*CompileResponse, error)) (resp *CompileResponse, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	c, inflight := g.calls[key]
	if !inflight {
		c = &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		go func() {
			c.resp, c.err = fn()
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
	}
	g.mu.Unlock()

	g.waiters.Add(1)
	defer g.waiters.Add(-1)
	select {
	case <-c.done:
		return c.resp, inflight, c.err
	case <-ctx.Done():
		return nil, inflight, ctx.Err()
	}
}
