package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"aviv"
	"aviv/internal/cover"
	"aviv/internal/isdl"
)

const testSource = `
x = 3;
y = x * 5;
z = x + y;
w = (x - y) * (z + 2);
`

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, url string, req CompileRequest) (*http.Response, CompileResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /compile: %v", err)
	}
	defer httpResp.Body.Close()
	var resp CompileResponse
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return httpResp, resp
}

// TestSingleFlightDeterministic drives the flight group directly with a
// blocked function, so leader/follower interleaving is fully controlled.
func TestSingleFlightDeterministic(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	started := make(chan struct{})
	want := &CompileResponse{Assembly: "shared result"}
	fn := func(context.Context) (*CompileResponse, error) {
		close(started)
		<-release
		return want, nil
	}

	type outcome struct {
		resp   *CompileResponse
		shared bool
		err    error
	}
	leaderDone := make(chan outcome, 1)
	go func() {
		resp, shared, err := g.do(context.Background(), "k", fn)
		leaderDone <- outcome{resp, shared, err}
	}()
	<-started // fn is in flight; any do() from here on must piggyback

	followerDone := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, shared, err := g.do(context.Background(), "k", func(context.Context) (*CompileResponse, error) {
				t.Error("follower executed fn despite in-flight leader")
				return nil, nil
			})
			followerDone <- outcome{resp, shared, err}
		}()
	}
	// Wait until both followers (plus the leader) are parked on the
	// in-flight call before letting it finish.
	deadline := time.Now().Add(5 * time.Second)
	for g.waiters.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("followers never blocked on the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}

	// A follower with an already-expired context times out without
	// waiting and without cancelling the leader.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, shared, err := g.do(expired, "k", fn); !shared || err == nil {
		t.Errorf("expired-context follower: shared=%v err=%v, want true, non-nil", shared, err)
	}

	close(release)
	lo := <-leaderDone
	if lo.err != nil || lo.shared || lo.resp != want {
		t.Errorf("leader: resp=%p shared=%v err=%v, want %p/false/nil", lo.resp, lo.shared, lo.err, want)
	}
	for i := 0; i < 2; i++ {
		fo := <-followerDone
		if fo.err != nil || !fo.shared || fo.resp != want {
			t.Errorf("follower: resp=%p shared=%v err=%v, want %p/true/nil", fo.resp, fo.shared, fo.err, want)
		}
	}

	// The call is gone; the next do() runs fresh.
	ran := false
	if _, shared, _ := g.do(context.Background(), "k", func(context.Context) (*CompileResponse, error) {
		ran = true
		return nil, nil
	}); shared || !ran {
		t.Errorf("post-completion do: shared=%v ran=%v, want false/true", shared, ran)
	}
}

// TestSingleFlightAbandonment proves the waiter-counted cancellation:
// when the last waiter gives up, the execution context is cancelled,
// the abandonment is counted, and the key is re-armed so a later
// identical request starts a fresh flight instead of chaining to a
// result nobody consumes.
func TestSingleFlightAbandonment(t *testing.T) {
	var g flightGroup
	abandoned := 0
	g.onAbandon = func() { abandoned++ }

	started := make(chan struct{})
	var execCtx context.Context
	fn := func(ctx context.Context) (*CompileResponse, error) {
		execCtx = ctx
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", fn)
		waitErr <- err
	}()
	<-started
	cancel() // the only waiter gives up

	if err := <-waitErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got err=%v, want context.Canceled", err)
	}
	select {
	case <-execCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("execution context not cancelled after the last waiter left")
	}
	if abandoned != 1 {
		t.Errorf("abandoned count = %d, want 1", abandoned)
	}

	// The key is re-armed immediately: a fresh do() runs its own fn.
	ran := false
	resp, shared, err := g.do(context.Background(), "k", func(context.Context) (*CompileResponse, error) {
		ran = true
		return &CompileResponse{Assembly: "fresh"}, nil
	})
	if err != nil || shared || !ran || resp == nil || resp.Assembly != "fresh" {
		t.Errorf("post-abandonment do: resp=%v shared=%v ran=%v err=%v, want fresh/false/true/nil",
			resp, shared, ran, err)
	}
}

func TestCompileMatchesLocal(t *testing.T) {
	cache := cover.NewBoundedCache(1024)
	_, ts := testServer(t, Config{Options: aviv.Options{Cache: cache, Parallelism: 2}})

	httpResp, resp := postCompile(t, ts.URL, CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", httpResp.StatusCode)
	}
	if resp.Error != "" {
		t.Fatalf("compile error: %s", resp.Error)
	}

	m, err := isdl.Parse(isdl.ExampleArchISDL)
	if err != nil {
		t.Fatal(err)
	}
	local, err := aviv.CompileSource(testSource, m, 1, aviv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Assembly != local.Program.String() {
		t.Errorf("served assembly differs from local compile\n--- served ---\n%s--- local ---\n%s", resp.Assembly, local.Program)
	}
	if resp.CodeSize != local.CodeSize() || resp.Blocks != len(local.Blocks) {
		t.Errorf("metadata: size=%d blocks=%d, want %d/%d", resp.CodeSize, resp.Blocks, local.CodeSize(), len(local.Blocks))
	}

	// Recompiling the same request is served from the shared cache.
	_, again := postCompile(t, ts.URL, CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL})
	if again.Assembly != resp.Assembly {
		t.Error("second compile not byte-identical to first")
	}
	if again.CacheHits == 0 {
		t.Error("second compile reported no cache hits")
	}
}

func TestCompileErrorsAreInBand(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name string
		req  CompileRequest
		want string
	}{
		{"bad machine", CompileRequest{Source: "x = 1;", Machine: "machine ???"}, "machine:"},
		{"bad source", CompileRequest{Source: "x = ;", Machine: isdl.ExampleArchISDL}, ""},
		{"bad preset", CompileRequest{Source: "x = 1;", Machine: isdl.ExampleArchISDL, Preset: "turbo"}, "unknown preset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			httpResp, resp := postCompile(t, ts.URL, tc.req)
			if httpResp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d, want 200 with in-band error", httpResp.StatusCode)
			}
			if resp.Error == "" || !strings.Contains(resp.Error, tc.want) {
				t.Errorf("error = %q, want containing %q", resp.Error, tc.want)
			}
			if resp.Assembly != "" {
				t.Error("failed compile returned assembly")
			}
		})
	}
}

func TestMalformedRequestsAre400(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, body := range []string{"{not json", `{}`, `{"source":"x = 1;"}`} {
		resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: status = %d, want 405", resp.StatusCode)
	}
}

// TestLoadSheddingAnd429 fills the worker pool and the queue by hand,
// then checks the next request is rejected with 429 + Retry-After.
func TestLoadSheddingAnd429(t *testing.T) {
	s, ts := testServer(t, Config{
		Options:    aviv.Options{Parallelism: 1},
		QueueLimit: 1,
		Timeout:    5 * time.Second,
	})
	// Occupy the only worker slot so compiles queue behind it.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// One request fills the queue (it blocks waiting for the slot).
	queuedResp := make(chan int, 1)
	go func() {
		httpResp, _ := postCompile(t, ts.URL, CompileRequest{Source: "a = 1;", Machine: isdl.ExampleArchISDL})
		queuedResp <- httpResp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().Queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// A second, different request must be shed immediately.
	httpResp, _ := postCompile(t, ts.URL, CompileRequest{Source: "b = 2;", Machine: isdl.ExampleArchISDL})
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if s.Counters().Shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.Counters().Shed.Load())
	}

	// Release the slot; the queued request completes normally.
	<-s.sem
	if code := <-queuedResp; code != http.StatusOK {
		t.Errorf("queued request finished with %d, want 200", code)
	}
	s.sem <- struct{}{} // restore for the deferred release
}

// TestRequestTimeout parks the worker pool so a request exceeds its
// deadline and is answered 504.
func TestRequestTimeout(t *testing.T) {
	s, ts := testServer(t, Config{
		Options: aviv.Options{Parallelism: 1},
		Timeout: 30 * time.Millisecond,
	})
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	httpResp, _ := postCompile(t, ts.URL, CompileRequest{Source: "a = 1;", Machine: isdl.ExampleArchISDL})
	if httpResp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", httpResp.StatusCode)
	}
	if s.Counters().Timeouts.Load() == 0 {
		t.Error("timeout not counted")
	}
}

// TestConcurrentIdenticalRequestsDedup holds the single worker slot,
// fires identical requests so they pile onto one in-flight compile, and
// verifies the single-flight group answers all of them from one
// execution.
func TestConcurrentIdenticalRequestsDedup(t *testing.T) {
	const clients = 6
	s, ts := testServer(t, Config{
		Options:    aviv.Options{Parallelism: 1, Cache: cover.NewCache()},
		QueueLimit: clients,
		Timeout:    10 * time.Second,
	})
	s.sem <- struct{}{} // park the worker so requests accumulate

	req := CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL}
	var wg sync.WaitGroup
	assemblies := make([]string, clients)
	statuses := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			httpResp, resp := postCompile(t, ts.URL, req)
			statuses[i] = httpResp.StatusCode
			assemblies[i] = resp.Assembly
		}(i)
	}
	// All identical requests converge on one flight entry; wait until
	// every handler is parked on it, then release the worker.
	deadline := time.Now().Add(5 * time.Second)
	for s.flight.waiters.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatal("requests never converged on the in-flight call")
		}
		time.Sleep(time.Millisecond)
	}
	<-s.sem
	wg.Wait()

	for i := 0; i < clients; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("client %d: status %d", i, statuses[i])
		}
		if assemblies[i] != assemblies[0] {
			t.Fatalf("client %d: assembly differs", i)
		}
	}
	snap := s.Counters().Snapshot()
	if snap.Deduped == 0 {
		t.Error("no requests deduped despite identical concurrent load")
	}
	if snap.Completed == 0 {
		t.Error("no compile completed")
	}
	if snap.Deduped+snap.Completed < clients {
		t.Errorf("deduped (%d) + completed (%d) < clients (%d)", snap.Deduped, snap.Completed, clients)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	cache := cover.NewBoundedCache(64)
	s, ts := testServer(t, Config{Options: aviv.Options{Cache: cache}})
	postCompile(t, ts.URL, CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL})

	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&stats); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if stats.Server.Requests != 1 || stats.Server.Completed != 1 {
		t.Errorf("stats = %+v, want 1 request / 1 completed", stats.Server)
	}
	if stats.Server.MachinesInterned != 1 {
		t.Errorf("machines interned = %d, want 1", stats.Server.MachinesInterned)
	}
	if stats.MemCache == nil || stats.MemCache.Entries == 0 {
		t.Error("mem cache stats missing or empty after a compile")
	}
	if s.Workers() < 1 {
		t.Errorf("workers = %d, want >= 1", s.Workers())
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", hz.StatusCode)
	}
}

// TestMachineInterningSharesPointers proves distinct requests with the
// same machine text share one parsed machine, which is what lets the
// compile cache memoize the machine fingerprint per pointer.
func TestMachineInterningSharesPointers(t *testing.T) {
	s, ts := testServer(t, Config{Options: aviv.Options{Cache: cover.NewCache()}})
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("x = %d; y = x * 2;", i+1)
		httpResp, resp := postCompile(t, ts.URL, CompileRequest{Source: src, Machine: isdl.ExampleArchISDL})
		if httpResp.StatusCode != http.StatusOK || resp.Error != "" {
			t.Fatalf("request %d failed: %d %s", i, httpResp.StatusCode, resp.Error)
		}
	}
	if got := s.Counters().MachinesInterned.Load(); got != 1 {
		t.Errorf("machines interned = %d, want 1 across 3 requests", got)
	}
}

// TestDeltaServerStitchesAndReportsStats drives the delta-enabled server
// path end to end: the first compile of a source recompiles every block,
// a repeat (with a cache-busting distinct machine text is NOT needed —
// the request-level memo is what we bypass via distinct unroll) stitches
// them, the response reports per-request stitch counts, and /stats grows
// the "delta" section with the engine's counters.
func TestDeltaServerStitchesAndReportsStats(t *testing.T) {
	_, ts := testServer(t, Config{Delta: true})

	_, first := postCompile(t, ts.URL, CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL})
	if first.Error != "" {
		t.Fatalf("first compile failed: %s", first.Error)
	}
	if first.RecompiledBlocks == 0 || first.StitchedBlocks != 0 {
		t.Fatalf("first compile: stitched %d, recompiled %d; want all recompiled",
			first.StitchedBlocks, first.RecompiledBlocks)
	}
	// A verify-enabled repeat misses the request-level memo (different
	// request key) but hits the delta tier for every block.
	_, second := postCompile(t, ts.URL, CompileRequest{Source: testSource, Machine: isdl.ExampleArchISDL, Verify: true})
	if second.Error != "" {
		t.Fatalf("second compile failed: %s", second.Error)
	}
	if second.Assembly != first.Assembly {
		t.Fatalf("stitched assembly differs from first compile:\n%s\nvs\n%s", second.Assembly, first.Assembly)
	}
	if second.StitchedBlocks != second.Blocks || second.RecompiledBlocks != 0 {
		t.Fatalf("second compile: stitched %d / recompiled %d of %d blocks, want all stitched",
			second.StitchedBlocks, second.RecompiledBlocks, second.Blocks)
	}

	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var raw bytes.Buffer
	var stats StatsResponse
	if err := json.NewDecoder(io.TeeReader(httpResp.Body, &raw)).Decode(&stats); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if stats.Delta == nil {
		t.Fatalf("/stats lacks the delta section: %s", raw.String())
	}
	if stats.Delta.MemHits != int64(second.StitchedBlocks) || stats.Delta.Recompiled != int64(first.RecompiledBlocks) {
		t.Fatalf("delta stats %+v disagree with responses (stitched %d, recompiled %d)",
			stats.Delta, second.StitchedBlocks, first.RecompiledBlocks)
	}
	if stats.Server.BlocksStitched != int64(second.StitchedBlocks) ||
		stats.Server.BlocksRecompiled != int64(first.RecompiledBlocks) {
		t.Fatalf("server counters %+v disagree with responses", stats.Server)
	}
	// The JSON shape itself is the monitoring contract.
	for _, field := range []string{`"delta"`, `"stitched"`, `"blocks_stitched"`, `"blocks_recompiled"`, `"delta_invalidations"`} {
		if !strings.Contains(raw.String(), field) {
			t.Fatalf("/stats JSON lacks %s: %s", field, raw.String())
		}
	}
}

// TestRetryAfterJitter pins the 429 backoff hint's jitter: two shed
// requests must receive distinct Retry-After values, so a burst of
// rejected clients retries staggered instead of hammering the server
// again in lockstep one second later.
func TestRetryAfterJitter(t *testing.T) {
	s, ts := testServer(t, Config{
		Options:    aviv.Options{Parallelism: 1},
		QueueLimit: 1,
		Timeout:    5 * time.Second,
	})
	// Occupy the only worker slot so compiles queue behind it.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// One request fills the queue (it blocks waiting for the slot).
	queuedResp := make(chan int, 1)
	go func() {
		httpResp, _ := postCompile(t, ts.URL, CompileRequest{Source: "a = 1;", Machine: isdl.ExampleArchISDL})
		queuedResp <- httpResp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Counters().Queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	var hints []string
	for i := 0; i < 2; i++ {
		httpResp, _ := postCompile(t, ts.URL, CompileRequest{
			Source:  fmt.Sprintf("x = %d;", i),
			Machine: isdl.ExampleArchISDL,
		})
		if httpResp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: status = %d, want 429", i, httpResp.StatusCode)
		}
		hint := httpResp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(hint)
		if err != nil {
			t.Fatalf("request %d: Retry-After %q is not an integer: %v", i, hint, err)
		}
		if secs < 1 || secs > 4 {
			t.Fatalf("request %d: Retry-After = %d, want within [1, 4]", i, secs)
		}
		hints = append(hints, hint)
	}
	if hints[0] == hints[1] {
		t.Fatalf("both shed requests got Retry-After %q; want distinct hints", hints[0])
	}

	// Release the slot; the queued request completes normally.
	<-s.sem
	if code := <-queuedResp; code != http.StatusOK {
		t.Errorf("queued request finished with %d, want 200", code)
	}
	s.sem <- struct{}{} // restore for the deferred release
}
