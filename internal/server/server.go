// Package server implements avivd, the compile-as-a-service layer: an
// HTTP/JSON front end over aviv.CompileSource with a bounded worker
// pool, single-flight deduplication of identical in-flight requests,
// per-request machine-description interning, request timeouts, and
// load shedding when the queue is full.
//
// The served output is byte-identical to a local compile with the same
// options — the server adds caching and admission control, never
// different code. That invariant is locked in by the root-package
// differential test (server_diff_test.go).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"aviv"
	"aviv/internal/cover"
	"aviv/internal/delta"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
	"aviv/internal/metrics"
)

// CompileRequest is the JSON body of POST /compile.
type CompileRequest struct {
	// Source is the mini-C program text.
	Source string `json:"source"`
	// Machine is the textual ISDL machine description. It is parsed and
	// fingerprinted once per distinct text and shared across requests.
	Machine string `json:"machine"`
	// Unroll is the loop-unroll factor (0 or 1 disables).
	Unroll int `json:"unroll,omitempty"`
	// Preset selects the covering options: "" or "default" for the
	// heuristics-on configuration, "exhaustive" for heuristics-off.
	Preset string `json:"preset,omitempty"`
	// Verify enables the static translation validator on the result.
	Verify bool `json:"verify,omitempty"`
}

// CompileResponse is the JSON body answering /compile. Compile-time
// failures (parse errors, covering failures, verification rejections)
// are deterministic properties of the request and travel in Error with
// HTTP 200; non-200 statuses are reserved for server conditions
// (overload, timeout, malformed request) where retrying or falling back
// to a local compile makes sense.
type CompileResponse struct {
	// Assembly is the full program text, byte-identical to a local
	// compile of the same request.
	Assembly string `json:"assembly,omitempty"`
	// CodeSize is the total program size in instructions.
	CodeSize int `json:"code_size,omitempty"`
	// Blocks is the number of compiled basic blocks.
	Blocks int `json:"blocks,omitempty"`
	// CacheHits counts blocks served from the in-memory compile cache.
	CacheHits int `json:"cache_hits,omitempty"`
	// DiskHits counts blocks served from the persistent cache tier.
	DiskHits int `json:"disk_hits,omitempty"`
	// StitchedBlocks counts blocks stitched from the delta engine's
	// artifact tiers (memory or disk) instead of being recompiled;
	// RecompiledBlocks counts the rest. Both stay 0 when the server runs
	// without the incremental path (Config.Delta off).
	StitchedBlocks   int `json:"stitched_blocks,omitempty"`
	RecompiledBlocks int `json:"recompiled_blocks,omitempty"`
	// Error is the compile failure, if any.
	Error string `json:"error,omitempty"`
	// Deduped reports the response was shared with an identical
	// in-flight request (set per-response, not part of the shared
	// compile outcome).
	Deduped bool `json:"deduped,omitempty"`
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	Server metrics.ServerSnapshot `json:"server"`
	// MemCache reports the in-memory compile-cache tier, when present.
	MemCache *cover.CacheStats `json:"mem_cache,omitempty"`
	// Disk reports the persistent tier, when it is an
	// internal/diskcache store.
	Disk *diskcache.Stats `json:"disk,omitempty"`
	// Delta reports the incremental engine's per-tier block counters,
	// when the server runs with Config.Delta.
	Delta *metrics.CacheStats `json:"delta,omitempty"`
	// Cluster reports ring membership and the peer-path counters when
	// the server runs as a cluster node (internal/cluster fills it in;
	// a standalone server omits the section).
	Cluster *metrics.ClusterStats `json:"cluster,omitempty"`
}

// PeerCompiler lets a cluster layer claim compiles whose content key
// is owned by another node. It is consulted inside the single-flight
// group and before admission control, so concurrent identical requests
// collapse into one peer RPC and a forwarded compile never holds a
// local worker slot while the owning shard does the work.
//
// Compile returns (resp, true, nil) when the owning peer served the
// request, and (nil, false, nil) to hand the compile back to the local
// path — because this node owns the key, the request already arrived
// over a forwarding hop, or the owner is unreachable (the
// fallback-to-local contract: a dead peer costs latency, never
// availability). A non-nil error is reserved for the caller's context
// expiring mid-forward.
type PeerCompiler interface {
	Compile(ctx context.Context, key string, req CompileRequest) (*CompileResponse, bool, error)
}

// Config configures a Server.
type Config struct {
	// Options is the base compile configuration. Cache and DiskCache
	// are shared across all requests (that is the point of the server);
	// Parallelism is resolved through aviv.ResolveParallelism into the
	// server's worker-pool size. Each individual compile runs serially
	// — concurrency comes from serving requests in parallel, and the
	// emitted program is byte-identical at any parallelism anyway.
	Options aviv.Options
	// QueueLimit bounds requests waiting for a worker before new ones
	// are shed with 429; <= 0 selects 4x the worker count.
	QueueLimit int
	// Timeout bounds each request's wait for its compile result;
	// exceeding it answers 504. <= 0 selects 30s.
	Timeout time.Duration
	// Delta enables the incremental compile path: one delta.Engine,
	// shared across all requests (machine and option fingerprints are
	// part of its context keys), stitches unchanged blocks from cached
	// artifacts instead of re-covering them. Served output stays
	// byte-identical to a from-scratch compile — the engine's contract,
	// held by the root differential tests — so the flag trades memory
	// for edit latency, never fidelity. Options.DiskCache, when set,
	// doubles as the engine's persistent artifact tier.
	Delta bool
	// DeltaEntries bounds the engine's in-memory artifact count;
	// <= 0 selects 4096.
	DeltaEntries int
	// Peer, when set, is consulted before admission control for every
	// compile: a cluster layer forwards keys owned by other nodes to
	// the owning shard (see PeerCompiler). Nil means standalone.
	Peer PeerCompiler
}

// errShed rejects work when the queue is full.
var errShed = errors.New("server: queue full")

// Server is the avivd compile service. Create with New, expose with
// Handler.
type Server struct {
	cfg      Config
	workers  int
	queueCap int
	timeout  time.Duration
	sem      chan struct{}
	flight   flightGroup
	machines machineInterner
	counters metrics.ServerCounters
	delta    *delta.Engine // nil when Config.Delta is off
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	workers := aviv.ResolveParallelism(cfg.Options.Parallelism)
	queueCap := cfg.QueueLimit
	if queueCap <= 0 {
		queueCap = 4 * workers
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		workers:  workers,
		queueCap: queueCap,
		timeout:  timeout,
		sem:      make(chan struct{}, workers),
	}
	if cfg.Delta {
		entries := cfg.DeltaEntries
		if entries <= 0 {
			entries = 4096
		}
		s.delta = delta.New(entries, cfg.Options.DiskCache)
	}
	s.flight.onAbandon = func() { s.counters.Abandoned.Add(1) }
	return s
}

// Workers returns the resolved worker-pool size.
func (s *Server) Workers() int { return s.workers }

// Counters exposes the live server counters (for tests and benches).
func (s *Server) Counters() *metrics.ServerCounters { return &s.counters }

// Stats assembles the /stats payload.
func (s *Server) Stats() StatsResponse {
	if s.delta != nil {
		// DeltaInvalidations mirrors the engine's own counter; syncing at
		// snapshot time keeps it exact without per-request bookkeeping.
		s.counters.DeltaInvalidations.Store(s.delta.Stats().Invalidations)
	}
	out := StatsResponse{Server: s.counters.Snapshot()}
	if c := s.cfg.Options.Cache; c != nil {
		st := c.Stats()
		out.MemCache = &st
	}
	if d, ok := s.cfg.Options.DiskCache.(interface{ Stats() diskcache.Stats }); ok {
		st := d.Stats()
		out.Disk = &st
	}
	if s.delta != nil {
		st := s.delta.Stats()
		out.Delta = &st
	}
	return out
}

// Handler returns the HTTP surface: POST /compile, GET /stats,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.counters.Requests.Add(1)
	var req CompileRequest
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Source == "" || req.Machine == "" {
		http.Error(w, "bad request: source and machine are required", http.StatusBadRequest)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	key := RequestKey(req)
	resp, shared, err := s.flight.do(ctx, key, func(runCtx context.Context) (*CompileResponse, error) {
		return s.compile(runCtx, key, req)
	})
	if shared {
		s.counters.Deduped.Add(1)
	}
	switch {
	case errors.Is(err, errShed):
		// The hint carries per-rejection jitter so a burst of shed
		// clients retries staggered instead of in lockstep; deriving it
		// from the shed counter keeps it deterministic for tests.
		n := s.counters.Shed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(1+int(n&3)))
		http.Error(w, "queue full, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.counters.Timeouts.Add(1)
		http.Error(w, "compile timed out", http.StatusGatewayTimeout)
		return
	case err != nil:
		// Client went away (request context canceled): nothing to write.
		return
	}
	out := *resp
	out.Deduped = shared
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// compile runs one deduplicated compile under admission control: shed
// when too many requests are already waiting, otherwise queue for a
// worker slot — a wait ctx interrupts, so an abandoned flight stops
// consuming queue capacity. Compile failures are in-band (see
// CompileResponse); the error return is reserved for admission
// decisions.
//
// When a cluster peer claims the key, the response comes back over the
// wire without touching local admission control — the owning shard runs
// its own queue, worker pool, and single-flight group, which is what
// makes dedup cluster-wide: every replica of a request funnels into one
// compile on one node.
func (s *Server) compile(ctx context.Context, key string, req CompileRequest) (*CompileResponse, error) {
	if s.cfg.Peer != nil {
		resp, handled, err := s.cfg.Peer.Compile(ctx, key, req)
		if err != nil {
			return nil, err
		}
		if handled {
			s.counters.Completed.Add(1)
			return resp, nil
		}
	}
	if s.counters.Queued.Add(1) > int64(s.queueCap) {
		s.counters.Queued.Add(-1)
		return nil, errShed
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.counters.Queued.Add(-1)
		return nil, ctx.Err()
	}
	s.counters.Queued.Add(-1)
	s.counters.Inflight.Add(1)
	defer func() {
		s.counters.Inflight.Add(-1)
		<-s.sem //lint:reason releases a token this goroutine holds in a buffered semaphore; the receive can never block
	}()

	m, err := s.machines.intern(req.Machine, &s.counters)
	if err != nil {
		s.counters.Errors.Add(1)
		return &CompileResponse{Error: "machine: " + err.Error()}, nil
	}
	opts, err := s.requestOptions(req)
	if err != nil {
		s.counters.Errors.Add(1)
		return &CompileResponse{Error: err.Error()}, nil
	}
	unroll := req.Unroll
	if unroll < 1 {
		unroll = 1
	}
	if s.delta != nil {
		// The incremental path: same front end, same options, same
		// bytes — unchanged blocks are stitched from the engine's
		// artifact tiers instead of re-covered.
		res, err := s.delta.CompileSource(req.Source, m, unroll, opts)
		if err != nil {
			s.counters.Errors.Add(1)
			return &CompileResponse{Error: err.Error()}, nil
		}
		s.counters.Completed.Add(1)
		stitched := res.Stitched + res.DiskStitched
		s.counters.BlocksStitched.Add(int64(stitched))
		s.counters.BlocksRecompiled.Add(int64(res.Recompiled))
		return &CompileResponse{
			Assembly:         res.Program.String(),
			CodeSize:         res.CodeSize(),
			Blocks:           res.Blocks,
			CacheHits:        res.CoverCacheHits,
			DiskHits:         res.CoverDiskHits,
			StitchedBlocks:   stitched,
			RecompiledBlocks: res.Recompiled,
		}, nil
	}
	res, err := aviv.CompileSource(req.Source, m, unroll, opts)
	if err != nil {
		s.counters.Errors.Add(1)
		return &CompileResponse{Error: err.Error()}, nil
	}
	s.counters.Completed.Add(1)
	resp := &CompileResponse{
		Assembly: res.Program.String(),
		CodeSize: res.CodeSize(),
		Blocks:   len(res.Blocks),
	}
	for _, bm := range res.Metrics.Blocks {
		if bm.CacheHit {
			resp.CacheHits++
		}
		if bm.DiskHit {
			resp.DiskHits++
		}
	}
	return resp, nil
}

// requestOptions maps a request onto compile options: the preset picks
// the covering configuration, the server supplies the shared cache
// tiers, and each compile runs its block pipeline serially (request-
// level parallelism is the server pool's job).
func (s *Server) requestOptions(req CompileRequest) (aviv.Options, error) {
	var opts aviv.Options
	switch req.Preset {
	case "", "default":
		opts = aviv.DefaultOptions()
	case "exhaustive":
		opts = aviv.ExhaustiveOptions()
	default:
		return opts, fmt.Errorf("unknown preset %q (want \"default\" or \"exhaustive\")", req.Preset)
	}
	opts.Verify = req.Verify
	opts.Cache = s.cfg.Options.Cache
	opts.DiskCache = s.cfg.Options.DiskCache
	opts.Parallelism = 1
	return opts, nil
}

// RequestKey fingerprints everything that determines a compile's
// output, so the single-flight group only merges requests whose results
// are interchangeable. The cluster layer reuses it as the ring key:
// ownership follows content, so identical requests land on the same
// shard no matter which node receives them.
func RequestKey(req CompileRequest) string {
	h := sha256.New()
	put := func(s string) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	put(req.Source)
	put(req.Machine)
	put(req.Preset)
	put(fmt.Sprint(req.Unroll))
	put(fmt.Sprint(req.Verify))
	return string(h.Sum(nil))
}

// machineInterner parses and fingerprints each distinct machine text
// once, sharing the resulting *isdl.Machine pointer across requests —
// which also lets the compile cache's per-pointer machine-fingerprint
// memoization work across requests.
type machineInterner struct {
	mu     sync.Mutex
	byText map[string]*isdl.Machine
}

func (mi *machineInterner) intern(text string, counters *metrics.ServerCounters) (*isdl.Machine, error) {
	mi.mu.Lock()
	m, ok := mi.byText[text]
	mi.mu.Unlock()
	if ok {
		return m, nil
	}
	parsed, err := isdl.Parse(text)
	if err != nil {
		return nil, err
	}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if mi.byText == nil {
		mi.byText = make(map[string]*isdl.Machine)
	}
	// Two racers may parse the same text; keep the first so the pointer
	// stays stable for fingerprint memoization.
	if m, ok := mi.byText[text]; ok {
		return m, nil
	}
	mi.byText[text] = parsed
	counters.MachinesInterned.Add(1)
	return parsed, nil
}
