package delta

import (
	"crypto/sha256"
	"sync"
	"testing"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
)

func exampleMachine() *isdl.Machine { return isdl.ExampleArchFull(4) }

func verifyOpts() aviv.Options {
	opts := aviv.DefaultOptions()
	opts.Verify = true
	return opts
}

// scratch compiles src from scratch with no caches, as the reference.
func scratch(t *testing.T, src string, m *isdl.Machine, opts aviv.Options) string {
	t.Helper()
	res, err := aviv.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("scratch compile failed: %v", err)
	}
	return res.Program.String()
}

// TestDeltaByteIdenticalAndStitched pins the engine's core contract: a
// first compile matches a from-scratch compile byte for byte, and a
// second compile of the same program stitches every block from memory
// and still matches.
func TestDeltaByteIdenticalAndStitched(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	src := bench.MultiBlockSource(7, 12, 6)
	want := scratch(t, src, m, opts)

	e := New(0, nil)
	e.Oracle = map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3}
	first, err := e.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("delta compile failed: %v", err)
	}
	if got := first.Program.String(); got != want {
		t.Fatalf("delta output differs from scratch:\n%s\nvs\n%s", got, want)
	}
	if first.Recompiled != first.Blocks || first.Stitched != 0 {
		t.Fatalf("cold compile: recompiled %d / stitched %d of %d blocks, want all recompiled",
			first.Recompiled, first.Stitched, first.Blocks)
	}
	second, err := e.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("warm delta compile failed: %v", err)
	}
	if got := second.Program.String(); got != want {
		t.Fatalf("stitched output differs from scratch:\n%s\nvs\n%s", got, want)
	}
	if second.Stitched != second.Blocks || second.Recompiled != 0 {
		t.Fatalf("warm compile: stitched %d / recompiled %d of %d blocks, want all stitched",
			second.Stitched, second.Recompiled, second.Blocks)
	}
	st := e.Stats()
	if st.MemHits != int64(second.Stitched) || st.Recompiled != int64(first.Recompiled) {
		t.Fatalf("stats disagree with results: %+v", st)
	}
}

// TestDeltaEditRecompilesOnlyChangedBlocks pins the point of the whole
// path: after a one-line edit, most blocks stitch and the output still
// matches a from-scratch compile of the edited program.
func TestDeltaEditRecompilesOnlyChangedBlocks(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	src := bench.MultiBlockSource(3, 15, 6)
	e := New(0, nil)
	e.Oracle = map[string]int64{"a": 11, "b": 7, "c": 5, "d": 3}
	if _, err := e.CompileSource(src, m, 1, opts); err != nil {
		t.Fatalf("warmup compile failed: %v", err)
	}
	edited := bench.MutateSource(src, 42)
	if edited == src {
		t.Fatalf("MutateSource returned the source unchanged")
	}
	res, err := e.CompileSource(edited, m, 1, opts)
	if err != nil {
		t.Fatalf("edit compile failed: %v", err)
	}
	if got, want := res.Program.String(), scratch(t, edited, m, opts); got != want {
		t.Fatalf("edited delta output differs from scratch:\n%s\nvs\n%s", got, want)
	}
	if res.Stitched == 0 {
		t.Fatalf("one-line edit stitched no blocks at all (%d blocks, %d recompiled)", res.Blocks, res.Recompiled)
	}
	if res.Recompiled == 0 {
		t.Fatalf("one-line edit recompiled nothing — the edit did not reach the IR?")
	}
	if res.Recompiled >= res.Stitched {
		t.Fatalf("one-line edit recompiled %d of %d blocks (stitched %d); delta path is not localizing the edit",
			res.Recompiled, res.Blocks, res.Stitched)
	}
}

// TestDeltaDiskTier proves artifacts survive engine restarts through the
// persistent tier: a fresh engine sharing only the disk store stitches
// every block without re-running the covering search.
func TestDeltaDiskTier(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	src := bench.MultiBlockSource(11, 12, 6)
	disk, err := diskcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(0, disk)
	if _, err := warm.CompileSource(src, m, 1, opts); err != nil {
		t.Fatalf("warmup compile failed: %v", err)
	}
	restarted := New(0, disk)
	res, err := restarted.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("restarted compile failed: %v", err)
	}
	if res.DiskStitched != res.Blocks || res.Recompiled != 0 {
		t.Fatalf("restart: disk-stitched %d / recompiled %d of %d blocks, want all from disk",
			res.DiskStitched, res.Recompiled, res.Blocks)
	}
	if got, want := res.Program.String(), scratch(t, src, m, opts); got != want {
		t.Fatalf("disk-stitched output differs from scratch:\n%s\nvs\n%s", got, want)
	}
}

// corruptStore serves an undecodable (but well-framed, from the store's
// point of view) payload for every key, and records deletions. It
// stands in for codec version skew: bytes that read back clean but no
// longer decode.
type corruptStore struct {
	mu      sync.Mutex
	deletes int
	puts    int
}

func (s *corruptStore) Get(key [sha256.Size]byte) ([]byte, bool) {
	return []byte("not a covering"), true
}
func (s *corruptStore) Put(key [sha256.Size]byte, data []byte) {
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
}
func (s *corruptStore) Delete(key [sha256.Size]byte) {
	s.mu.Lock()
	s.deletes++
	s.mu.Unlock()
}

// TestDeltaInvalidation: entries that fail to decode are deleted
// (deletion-as-miss), counted, and the blocks recompiled — output
// unchanged.
func TestDeltaInvalidation(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	src := bench.MultiBlockSource(5, 9, 5)
	store := &corruptStore{}
	e := New(0, store)
	res, err := e.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("compile over corrupt store failed: %v", err)
	}
	if res.Recompiled != res.Blocks {
		t.Fatalf("recompiled %d of %d blocks despite undecodable store entries", res.Recompiled, res.Blocks)
	}
	if got, want := res.Program.String(), scratch(t, src, m, opts); got != want {
		t.Fatalf("output differs under corrupt store:\n%s\nvs\n%s", got, want)
	}
	st := e.Stats()
	if st.Invalidations != int64(res.Blocks) {
		t.Fatalf("invalidations = %d, want %d", st.Invalidations, res.Blocks)
	}
	store.mu.Lock()
	defer store.mu.Unlock()
	if store.deletes != res.Blocks {
		t.Fatalf("store deletions = %d, want %d", store.deletes, res.Blocks)
	}
	if store.puts == 0 {
		t.Fatalf("no fresh entries written after invalidation")
	}
}

// TestDeltaParallelismByteIdentical: the engine pool, like the compile
// pool, may never change output — including half-warm states where some
// blocks stitch and others recompile concurrently.
func TestDeltaParallelismByteIdentical(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	base := bench.MultiBlockSource(9, 15, 6)
	edited := bench.MutateSource(base, 1)
	for _, par := range []int{1, 8} {
		e := New(0, nil)
		o := opts
		o.Parallelism = par
		for _, src := range []string{base, edited} {
			res, err := e.CompileSource(src, m, 1, o)
			if err != nil {
				t.Fatalf("par %d compile failed: %v", par, err)
			}
			want := scratch(t, src, m, opts)
			if got := res.Program.String(); got != want {
				t.Fatalf("par %d output differs from scratch:\n%s\nvs\n%s", par, got, want)
			}
		}
	}
}

// TestDeltaBoundedEviction: the memory tier respects its entry cap.
func TestDeltaBoundedEviction(t *testing.T) {
	m := exampleMachine()
	opts := verifyOpts()
	e := New(4, nil)
	res, err := e.CompileSource(bench.MultiBlockSource(2, 15, 5), m, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks <= 4 {
		t.Fatalf("workload too small to exercise eviction: %d blocks", res.Blocks)
	}
	st := e.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want cap 4", st.Entries)
	}
	if st.Evictions != int64(res.Blocks)-4 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, res.Blocks-4)
	}
}
