// Package delta is the incremental compilation path: a function-level
// engine that fingerprints every basic block *together with its
// dataflow context* and re-runs the covering search only for blocks
// whose context fingerprint changed since a previous compile, stitching
// the rest from cached per-block artifacts.
//
// The context fingerprint of a block is
//
//	sha256(domain | cover.BlockKey(block, machineFP, coverOpts) |
//	       sorted live-in vars | peephole flag)
//
// where cover.BlockKey already covers the block's own content
// fingerprint, the machine fingerprint, and every covering option
// including the sorted live-out set and the resolved variable
// placement. An artifact is therefore invalidated by exactly the things
// that could change its code: the block's instructions or terminator,
// the machine description, the covering options, the live-out set (it
// drives store pruning), the live-in set, the bank placement of any
// variable the block touches (aviv.PlacementOptions resolves placement
// over the whole function before keying), and the peephole setting.
// Predecessors' layout assumptions are deliberately *not* in the key:
// artifacts are cached pre-layout and aviv.LayoutProgram re-runs
// globally on every compile, so branch/fallthrough decisions are always
// derived fresh from the current whole program.
//
// Two artifact tiers back the engine. The in-memory tier holds finished
// artifacts — the post-peephole covering plus the emitted (pre-layout)
// assembly block — so a memory stitch skips covering, peephole,
// register allocation, and emission. The optional persistent tier
// (cover.EntryStore, typically internal/diskcache) holds the
// pre-peephole covering serialized with the cover codec under the same
// context key; a disk stitch re-runs the cheap tail passes but skips
// the covering search, and survives process restarts. Entries that read
// back clean but no longer decode are deleted in place
// (cover.DeletableStore) and recompiled — deletion-as-miss.
//
// The engine's contract is the repository's: stitched output is
// byte-identical to a from-scratch aviv.Compile of the same function at
// any pool size. Options.Verify re-validates every stitched block
// against the *current* IR (verify.BlockCode + an independent
// re-derivation of the store prune), and the optional interpreter
// oracle cross-checks the stitched program's memory effect against
// ir.EvalFunc. The differential suites (editdiff_test.go, the edit
// dimension of FuzzCompileSource) hold the engine to that contract.
package delta

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"aviv"
	"aviv/internal/asm"
	"aviv/internal/cover"
	"aviv/internal/dataflow"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/metrics"
	"aviv/internal/peephole"
	"aviv/internal/regalloc"
	"aviv/internal/sim"
	"aviv/internal/sndag"
	"aviv/internal/verify"
)

// contextDomain versions the context-fingerprint derivation itself.
// Bump it whenever the key recipe changes so persistent entries from
// older engines miss instead of colliding.
const contextDomain = "aviv-delta-ctx-v1"

// artifact is one cached per-block compilation product, pinned to its
// context fingerprint. Everything in it is immutable after insertion:
// stitching clones Code before the program-level layout pass may touch
// a Branch, and Sol is only read (verification, stats).
type artifact struct {
	key [sha256.Size]byte
	// Sol is the post-peephole covering; Sol.Block is the block the
	// covering actually consumed (the liveness-pruned clone when pruning
	// happened), which verification needs.
	sol *cover.Solution
	// code is the emitted assembly block, pre-layout (Branch exactly as
	// emission produced it).
	code *asm.Block
	// Per-block stats carried for -stats style reporting.
	dagNodes     int
	peepholeSave int
	prunedStores int
}

// Engine is the incremental compiler. One engine serves any number of
// functions, machines, and option presets concurrently — machine and
// options fingerprints are part of every context key — so a server can
// share a single engine across all requests. Create with New.
type Engine struct {
	store      cover.EntryStore
	maxEntries int

	mu      sync.Mutex
	entries map[[sha256.Size]byte]*list.Element
	order   *list.List // front = most recently used
	machFPs map[*isdl.Machine][sha256.Size]byte

	memHits       atomic.Int64
	memMisses     atomic.Int64
	diskHits      atomic.Int64
	diskMisses    atomic.Int64
	stitched      atomic.Int64
	recompiled    atomic.Int64
	invalidations atomic.Int64
	evictions     atomic.Int64

	// Oracle, when non-nil, is an initial data memory: after every
	// compile whose reference interpretation terminates within
	// OracleBudget steps, the stitched program is simulated on a copy
	// and every cell the interpreter predicts is compared. A
	// disagreement fails the compile — a stitch may never change
	// observable semantics.
	Oracle map[string]int64
	// OracleBudget bounds the interpreter (steps) and simulator
	// (cycles, 2x) runs; <= 0 selects 200000.
	OracleBudget int
}

// New returns an engine whose in-memory tier holds at most maxEntries
// block artifacts (<= 0: unbounded), evicting least recently used
// first. store, when non-nil, is the persistent tier below it — pass
// the same *diskcache.Cache the cover tiers use, or any
// cover.EntryStore; keys are domain-separated from the cover tier's, so
// sharing a directory is safe.
func New(maxEntries int, store cover.EntryStore) *Engine {
	return &Engine{
		store:      store,
		maxEntries: maxEntries,
		entries:    make(map[[sha256.Size]byte]*list.Element),
		order:      list.New(),
		machFPs:    make(map[*isdl.Machine][sha256.Size]byte),
	}
}

// Stats returns a snapshot of the per-tier block counters.
func (e *Engine) Stats() metrics.CacheStats {
	e.mu.Lock()
	entries := int64(len(e.entries))
	e.mu.Unlock()
	return metrics.CacheStats{
		Entries:       entries,
		MemHits:       e.memHits.Load(),
		MemMisses:     e.memMisses.Load(),
		DiskHits:      e.diskHits.Load(),
		DiskMisses:    e.diskMisses.Load(),
		Stitched:      e.stitched.Load(),
		Recompiled:    e.recompiled.Load(),
		Invalidations: e.invalidations.Load(),
		Evictions:     e.evictions.Load(),
	}
}

// Result is one incremental compile. Program is byte-identical to the
// aviv.CompileResult.Program of a from-scratch compile with the same
// inputs.
type Result struct {
	Func    *ir.Func
	Machine *isdl.Machine
	Program *asm.Program
	// Blocks is the number of basic blocks compiled.
	Blocks int
	// Stitched counts blocks served from the in-memory artifact tier;
	// DiskStitched counts blocks rebuilt from the persistent covering
	// tier (covering search skipped, tail passes re-run); Recompiled
	// counts blocks that ran the full per-block pipeline.
	// Stitched + DiskStitched + Recompiled == Blocks.
	Stitched     int
	DiskStitched int
	Recompiled   int
	// CoverCacheHits / CoverDiskHits count, among the Recompiled blocks,
	// those whose covering still came from the cover-level cache tiers
	// (aviv.Options.Cache / DiskCache) rather than a fresh search.
	CoverCacheHits int
	CoverDiskHits  int
}

// CodeSize returns the total program code size in instructions.
func (r *Result) CodeSize() int { return r.Program.CodeSize() }

// machineFingerprint memoizes m.Fingerprint() per machine pointer, like
// cover.Cache does, so a 25-block compile hashes the machine once.
func (e *Engine) machineFingerprint(m *isdl.Machine) [sha256.Size]byte {
	e.mu.Lock()
	fp, ok := e.machFPs[m]
	e.mu.Unlock()
	if ok {
		return fp
	}
	fp = m.Fingerprint()
	e.mu.Lock()
	e.machFPs[m] = fp
	e.mu.Unlock()
	return fp
}

// contextKey derives a block's context fingerprint from its cover-level
// content key, the sorted live-in variable list, and the peephole flag.
func contextKey(base [sha256.Size]byte, liveIn []string, peephole bool) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(contextDomain))
	h.Write(base[:])
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(liveIn)))
	h.Write(n[:])
	for _, v := range liveIn {
		binary.BigEndian.PutUint64(n[:], uint64(len(v)))
		h.Write(n[:])
		h.Write([]byte(v))
	}
	if peephole {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// lookup returns the memory-tier artifact for key, touching it for LRU.
func (e *Engine) lookup(key [sha256.Size]byte) *artifact {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.entries[key]
	if !ok {
		e.memMisses.Add(1)
		return nil
	}
	e.memHits.Add(1)
	e.order.MoveToFront(el)
	return el.Value.(*artifact)
}

// insert stores art in the memory tier. If another worker inserted the
// key first, the existing artifact wins (keeps pointers stable) and is
// returned.
func (e *Engine) insert(art *artifact) *artifact {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.entries[art.key]; ok {
		e.order.MoveToFront(el)
		return el.Value.(*artifact)
	}
	e.entries[art.key] = e.order.PushFront(art)
	for e.maxEntries > 0 && len(e.entries) > e.maxEntries {
		oldest := e.order.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*artifact)
		e.order.Remove(oldest)
		delete(e.entries, old.key)
		e.evictions.Add(1)
	}
	return art
}

// invalidate drops a persistent entry that failed to decode or rebuild.
func (e *Engine) invalidate(key [sha256.Size]byte) {
	e.invalidations.Add(1)
	if del, ok := e.store.(cover.DeletableStore); ok {
		del.Delete(key)
	}
}

// outcome of one block within a single Compile.
type outcome uint8

const (
	outcomeRecompiled outcome = iota
	outcomeMemStitch
	outcomeDiskStitch
)

// Compile incrementally compiles f for m. The options are per-call —
// Verify, Peephole, the covering preset, the cover-level cache tiers,
// and Parallelism all behave exactly as in aviv.Compile — and the
// emitted program is byte-identical to aviv.Compile(f, m, opts) at any
// parallelism and any cache state. Cover.Trace is ignored (the trace
// contract is a full covering log, which a stitch by design does not
// produce).
func (e *Engine) Compile(f *ir.Func, m *isdl.Machine, opts aviv.Options) (*Result, error) {
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	if opts.Verify {
		if verr := verify.Func(f); verr != nil {
			return nil, fmt.Errorf("delta: source IR rejected by verifier: %w", verr)
		}
	}
	live := dataflow.Liveness(f)
	liveOuts := live.OutSets()
	if opts.Verify {
		if vs := verify.CheckLiveness(f, liveOuts); len(vs) > 0 {
			return nil, fmt.Errorf("delta: liveness cross-check failed: %w", &verify.VerifyError{Violations: vs})
		}
	}
	opts = aviv.PlacementOptions(f, m, opts)
	opts.Cover.Trace = nil
	mfp := e.machineFingerprint(m)

	n := len(f.Blocks)
	blockOpts := func(i int) cover.Options {
		o := opts.Cover
		o.LiveOut = liveOuts[i]
		return o
	}
	keys := make([][sha256.Size]byte, n)
	for i, b := range f.Blocks {
		// Block names are unique within a function and hashed into the
		// block fingerprint, so the keys of one compile never collide;
		// iteration is in source block order, not map order.
		var liveIn []string
		for _, v := range live.Vars {
			if live.LiveInOf(i, v) {
				liveIn = append(liveIn, v)
			}
		}
		keys[i] = contextKey(cover.BlockKey(b, mfp, blockOpts(i)), liveIn, opts.Peephole)
	}

	arts := make([]*artifact, n)
	outcomes := make([]outcome, n)
	coverHits := make([]bool, n)
	coverDiskHits := make([]bool, n)
	errs := make([]error, n)
	compileOne := func(i int) {
		key := keys[i]
		if art := e.lookup(key); art != nil {
			arts[i], outcomes[i] = art, outcomeMemStitch
			return
		}
		if e.store != nil {
			if data, ok := e.store.Get(key); ok {
				if art, err := e.rebuild(data, key, f.Blocks[i], m, blockOpts(i), opts.Peephole); err == nil {
					arts[i], outcomes[i] = e.insert(art), outcomeDiskStitch
					e.diskHits.Add(1)
					return
				}
				// Readable but not rebuildable: delete so the next compile
				// writes a fresh entry, and fall through to a recompile.
				e.invalidate(key)
			}
			e.diskMisses.Add(1)
		}
		o := opts
		o.Cover.LiveOut = liveOuts[i]
		br, err := aviv.CompileBlock(f.Blocks[i], m, o)
		if err != nil {
			errs[i] = err
			return
		}
		coverHits[i], coverDiskHits[i] = br.Metrics.CacheHit, br.Metrics.DiskHit
		code := *br.Code // pristine pre-layout clone; br.Code joins no program here
		art := &artifact{
			key:          key,
			sol:          br.Solution,
			code:         &code,
			dagNodes:     br.DAG.Counts.Total(),
			peepholeSave: br.PeepholeSaved,
			prunedStores: br.Covering.PrunedStores,
		}
		arts[i], outcomes[i] = e.insert(art), outcomeRecompiled
		if e.store != nil {
			if data, ok := cover.EncodeResult(br.Covering); ok {
				e.store.Put(key, data)
			}
		}
	}

	par := aviv.ResolveParallelism(opts.Parallelism)
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := range f.Blocks {
			compileOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					compileOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Func: f, Machine: m, Blocks: n, Program: &asm.Program{Machine: m}}
	clones := make([]*asm.Block, n)
	for i, art := range arts {
		// Each compile lays out its own clones: layout mutates Branch per
		// program, and the cached block must stay pristine.
		b := *art.code
		clones[i] = &b
		res.Program.Blocks = append(res.Program.Blocks, clones[i])
		switch outcomes[i] {
		case outcomeMemStitch:
			res.Stitched++
		case outcomeDiskStitch:
			res.DiskStitched++
		default:
			res.Recompiled++
			if coverHits[i] {
				res.CoverCacheHits++
			}
			if coverDiskHits[i] {
				res.CoverDiskHits++
			}
		}
	}
	e.stitched.Add(int64(res.Stitched + res.DiskStitched))
	e.recompiled.Add(int64(res.Recompiled))
	aviv.LayoutProgram(res.Program)

	if opts.Verify {
		if verr := e.verifyStitched(f, m, arts, clones, liveOuts, res.Program); verr != nil {
			return nil, fmt.Errorf("delta: translation validation failed: %w", verr)
		}
	}
	if e.Oracle != nil {
		if err := e.checkOracle(f, res.Program); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// verifyStitched re-validates every block of the stitched program
// against the *current* IR, exactly as aviv.Compile does for a fresh
// one: the emitted code against the block the covering consumed, the
// store prune re-derived independently when the consumed block differs
// from the current one, and the laid-out control flow against the
// function. For a stitched block the consumed block came from an
// earlier compile; its fingerprint equality with the current block is
// what the context key guarantees, and CheckPrune is structural, so the
// validation holds stitches to the same bar as fresh compiles.
func (e *Engine) verifyStitched(f *ir.Func, m *isdl.Machine, arts []*artifact, clones []*asm.Block, liveOuts []map[string]bool, prog *asm.Program) *verify.VerifyError {
	var all []verify.Violation
	for i, art := range arts {
		covered := art.sol.Block
		vs := verify.BlockCode(clones[i], m, covered)
		if covered.Fingerprint() != f.Blocks[i].Fingerprint() {
			vs = append(vs, verify.CheckPrune(f.Blocks[i], covered, liveOuts[i])...)
		}
		all = append(all, vs...)
	}
	all = append(all, verify.Layout(prog, f)...)
	if len(all) == 0 {
		return nil
	}
	return &verify.VerifyError{Violations: all}
}

// checkOracle compares the stitched program's memory effect against the
// reference interpreter on Engine.Oracle. Programs the interpreter
// cannot finish within budget are skipped (runaway loops are out of the
// oracle's scope, exactly as in the fuzz harness).
func (e *Engine) checkOracle(f *ir.Func, prog *asm.Program) error {
	budget := e.OracleBudget
	if budget <= 0 {
		budget = 200000
	}
	want := make(map[string]int64, len(e.Oracle))
	mem := make(map[string]int64, len(e.Oracle))
	for k, v := range e.Oracle {
		want[k] = v
		mem[k] = v
	}
	if ir.EvalFunc(f, want, budget) != nil {
		return nil
	}
	got, _, err := sim.RunProgram(prog, mem, 2*budget)
	if err != nil {
		return fmt.Errorf("delta: oracle simulation trapped on stitched program for %s: %w", f.Name, err)
	}
	for _, v := range sortedVars(want) {
		if got[v] != want[v] {
			return fmt.Errorf("delta: oracle disagreement on stitched program for %s: mem[%s] = %d, interpreter says %d",
				f.Name, v, got[v], want[v])
		}
	}
	return nil
}

func sortedVars(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rebuild reconstructs a finished artifact from a persisted pre-peephole
// covering: re-derive the pruned block and its Split-Node DAG (both
// deterministic functions of the key's components), decode the covering
// against them, then re-run the cheap tail passes — peephole, register
// allocation, emission — exactly as aviv.CompileBlock would have.
func (e *Engine) rebuild(data []byte, key [sha256.Size]byte, b *ir.Block, m *isdl.Machine, o cover.Options, peep bool) (*artifact, error) {
	covered := b
	pruned := 0
	if o.LiveOut != nil {
		covered, pruned = dataflow.PruneBlock(b, o.LiveOut)
	}
	dag, err := sndag.Build(covered, m)
	if err != nil {
		return nil, err
	}
	res, err := cover.DecodeResult(data, dag)
	if err != nil {
		return nil, err
	}
	sol := res.Best
	saved := 0
	if peep {
		before := sol.Cost()
		sol = peephole.Optimize(sol)
		saved = before - sol.Cost()
	}
	alloc, err := regalloc.Allocate(sol)
	if err != nil {
		return nil, err
	}
	code, err := asm.EmitBlock(sol, alloc)
	if err != nil {
		return nil, err
	}
	return &artifact{
		key:          key,
		sol:          sol,
		code:         code,
		dagNodes:     dag.Counts.Total(),
		peepholeSave: saved,
		prunedStores: pruned,
	}, nil
}

// CompileSource is the front-end wrapper: parse, optional unroll,
// lower, machine-independent optimization, then Compile. It mirrors
// aviv.CompileSource so servers and tools can switch paths without
// changing semantics.
func (e *Engine) CompileSource(src string, m *isdl.Machine, unrollFactor int, opts aviv.Options) (*Result, error) {
	f, err := aviv.ParseAndLower(src, unrollFactor)
	if err != nil {
		return nil, err
	}
	return e.Compile(f, m, opts)
}
