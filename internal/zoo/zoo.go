// Package zoo generates random-but-lintable ISDL machine descriptions:
// the "machine zoo" that turns the repository's retargetability claim
// into a tested property instead of a promise. The paper's whole point
// (Hanono & Devadas, DAC 1998) is that one covering/allocation/
// scheduling engine serves any ISDL-described target; the zoo supplies
// target diversity — clustered register files, multi-cycle units, wide
// and single-issue machines, sparse transfer graphs, hostile constraint
// sets — so the differential harness can compile the whole program
// corpus on every one of them.
//
// Generation is seeded and deterministic: the same (seed, index) always
// yields the same machine, byte for byte (Entry.Text), so any failure
// anywhere reproduces from two integers. Every generated machine passes
// verify.LintMachine; a candidate the linter rejects is regenerated
// from the next attempt sub-seed under a bounded retry budget, and the
// rejection rule names are recorded so generator bugs show up as
// rejection statistics rather than silent retries.
package zoo

import (
	"fmt"
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/verify"
)

// Classes returns the machine class labels the generator cycles
// through, in the order Generate assigns them to indices. Each class
// stresses a different axis of the target space; the per-class rows of
// BENCH_zoo.json aggregate over these labels.
func Classes() []string {
	return []string{
		ClassSingleIssue,
		ClassWideVLIW,
		ClassClustered,
		ClassHubBank,
		ClassMemHub,
		ClassMultiCycle,
		ClassConstrained,
		ClassDualMemory,
		ClassTinyRegs,
	}
}

// Machine class labels.
const (
	// ClassSingleIssue is a one-unit accumulator-style machine: no ILP,
	// everything serialized through one register file.
	ClassSingleIssue = "single-issue"
	// ClassWideVLIW is a 3–5 unit machine with a full crossbar and a
	// possibly multi-slot bus: the paper's example architecture scaled.
	ClassWideVLIW = "wide-vliw"
	// ClassClustered groups units into clusters sharing register banks
	// with a narrow inter-cluster exchange bus (CodeSyn/FlexWare-style).
	ClassClustered = "clustered"
	// ClassHubBank routes all inter-bank traffic through one hub
	// register bank: a sparse transfer graph with 2-hop bank-to-bank
	// paths.
	ClassHubBank = "hub-bank"
	// ClassMemHub has no direct bank-to-bank transfer at all — every
	// cross-bank move goes through the data memory (2 hops), the
	// sparsest connected topology the linter accepts.
	ClassMemHub = "mem-hub"
	// ClassMultiCycle gives multipliers (and friends) latencies of 2–4
	// cycles on an interlock-free machine, so the scheduler must pad.
	ClassMultiCycle = "multi-cycle"
	// ClassConstrained adds ISDL illegal-grouping constraints between
	// units, shrinking the legal instruction set.
	ClassConstrained = "constrained"
	// ClassDualMemory is an X/Y banked-memory DSP: two data memories on
	// separate buses.
	ClassDualMemory = "dual-memory"
	// ClassTinyRegs starves the register allocator: 2-register files,
	// forcing spill traffic on any non-trivial block.
	ClassTinyRegs = "tiny-regs"
)

// RetryBudget bounds regenerate-on-reject attempts per machine index.
// A healthy generator almost never retries (TestZooRejectionRate pins
// this); the budget exists so a generator regression fails loudly
// instead of looping.
const RetryBudget = 16

// Entry is one generated zoo machine together with its provenance.
type Entry struct {
	// M is the finalized, lint-clean machine.
	M *isdl.Machine
	// Class is the machine class label (one of Classes).
	Class string
	// Seed and Index identify the generation slot; Attempt is the
	// sub-seed attempt that produced the accepted machine (0 unless the
	// linter rejected earlier candidates).
	Seed    uint64
	Index   int
	Attempt int
	// Text is the machine rendered in the parseable textual ISDL format
	// (isdl.Machine.Dump): the reproduction handle for any failure.
	Text string
	// Rejects lists the lint rule names of rejected candidates, in
	// attempt order (empty for a first-try accept).
	Rejects []string
}

// Generate produces n lint-clean machines from the given seed. Classes
// are assigned round-robin over Classes() so any n >= 9 covers every
// class. The result is deterministic: same seed and n, same machines.
func Generate(seed uint64, n int) ([]*Entry, error) {
	entries := make([]*Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := One(seed, i)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// One generates the machine for a single (seed, index) slot,
// regenerating on lint rejection up to RetryBudget attempts.
func One(seed uint64, index int) (*Entry, error) {
	classes := Classes()
	class := classes[index%len(classes)]
	var rejects []string
	for attempt := 0; attempt < RetryBudget; attempt++ {
		r := newRng(subSeed(seed, index, attempt))
		m := synth(r, class, fmt.Sprintf("Zoo%d_%d", seed, index))
		if verr := verify.LintMachine(m); verr != nil {
			rejects = append(rejects, RejectRules(verr)...)
			continue
		}
		return &Entry{
			M:       m,
			Class:   class,
			Seed:    seed,
			Index:   index,
			Attempt: attempt,
			Text:    m.Dump(),
			Rejects: rejects,
		}, nil
	}
	return nil, fmt.Errorf("zoo: seed %d index %d (%s): %d candidates rejected by LintMachine (rules: %v)",
		seed, index, class, RetryBudget, rejects)
}

// RejectRules extracts the distinct lint rule names from a verifier
// error, sorted — the classification handle regenerate-on-reject and
// the rejection-rate test use.
func RejectRules(verr *verify.VerifyError) []string {
	if verr == nil {
		return nil
	}
	seen := map[string]bool{}
	var rules []string
	for _, v := range verr.Violations {
		if !seen[v.Rule] {
			seen[v.Rule] = true
			rules = append(rules, v.Rule)
		}
	}
	sort.Strings(rules)
	return rules
}

// rng is the zoo's deterministic generator: the same LCG family used by
// the difftest program generator, so machine streams are stable across
// Go releases (unlike math/rand).
type rng struct{ state uint64 }

func newRng(seed uint64) *rng {
	return &rng{state: seed*2654435761 + 0x9E3779B97F4A7C15}
}

// next returns a value in [0, n).
func (r *rng) next(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// between returns a value in [lo, hi] inclusive.
func (r *rng) between(lo, hi int) int { return lo + r.next(hi-lo+1) }

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.next(den) < num }

// subSeed mixes (seed, index, attempt) into one rng seed.
func subSeed(seed uint64, index, attempt int) uint64 {
	x := seed ^ uint64(index)*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	return x
}

// coreOps is the computation repertoire the program corpus needs. The
// generator guarantees every core op is offered by at least one unit of
// every machine, so every corpus program compiles on every zoo machine
// and a compile failure is always a bug, never a repertoire gap.
var coreOps = []ir.Op{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpNeg, ir.OpCompl,
	ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
	ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
}

// synth builds one candidate machine of the given class. It only
// constructs — linting is the caller's job.
func synth(r *rng, class, name string) *isdl.Machine {
	m := isdl.NewMachine(name)
	switch class {
	case ClassSingleIssue:
		m.AddUnit("U0", r.between(3, 8))
		spreadOps(r, m, false)
		m.AddMemory("DM")
		crossbar(r, m)
	case ClassWideVLIW:
		n := r.between(3, 5)
		regs := r.between(3, 6)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), regs)
		}
		spreadOps(r, m, true)
		m.AddMemory("DM")
		crossbar(r, m)
		if r.chance(1, 3) {
			addConstraints(r, m, 1)
		}
	case ClassClustered:
		clusters := r.between(2, 3)
		regs := r.between(3, 6)
		var banks []string
		for c := 0; c < clusters; c++ {
			bank := fmt.Sprintf("K%d", c)
			u0 := fmt.Sprintf("U%d", 2*c)
			u1 := fmt.Sprintf("U%d", 2*c+1)
			m.AddUnit(u0, regs)
			m.AddUnit(u1, regs)
			if err := m.ShareBank(bank, regs, u0, u1); err != nil {
				panic("zoo: ShareBank on fresh units: " + err.Error())
			}
			banks = append(banks, bank)
		}
		spreadOps(r, m, true)
		m.AddMemory("DM")
		m.AddBus("DB", 1)
		m.AddBus("XB", r.between(1, 2))
		for _, bank := range banks {
			m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc(bank), "DB")
			m.AddTransfer(isdl.UnitLoc(bank), isdl.MemLoc("DM"), "DB")
		}
		// Exchange ring: each cluster can reach the next; with at most
		// three clusters every pair stays within the path-hop bound.
		for c := range banks {
			nxt := banks[(c+1)%len(banks)]
			m.AddTransfer(isdl.UnitLoc(banks[c]), isdl.UnitLoc(nxt), "XB")
			m.AddTransfer(isdl.UnitLoc(nxt), isdl.UnitLoc(banks[c]), "XB")
		}
	case ClassHubBank:
		n := r.between(2, 4)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), r.between(3, 6))
		}
		spreadOps(r, m, true)
		m.AddMemory("DM")
		hub := m.Units[0].Regs.Name
		m.AddBus("HB", r.between(1, 2))
		m.AddTransfer(isdl.UnitLoc(hub), isdl.MemLoc("DM"), "HB")
		m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc(hub), "HB")
		for _, u := range m.Units[1:] {
			m.AddTransfer(isdl.UnitLoc(hub), isdl.UnitLoc(u.Regs.Name), "HB")
			m.AddTransfer(isdl.UnitLoc(u.Regs.Name), isdl.UnitLoc(hub), "HB")
			// Spoke banks load/store directly so 2-hop memory traffic
			// does not have to squeeze through the hub both ways.
			if r.chance(1, 2) {
				m.AddTransfer(isdl.UnitLoc(u.Regs.Name), isdl.MemLoc("DM"), "HB")
				m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc(u.Regs.Name), "HB")
			}
		}
	case ClassMemHub:
		n := r.between(2, 3)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), r.between(3, 6))
		}
		spreadOps(r, m, true)
		m.AddMemory("DM")
		m.AddBus("MB", r.between(1, 2))
		for _, u := range m.Units {
			m.AddTransfer(isdl.UnitLoc(u.Regs.Name), isdl.MemLoc("DM"), "MB")
			m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc(u.Regs.Name), "MB")
		}
	case ClassMultiCycle:
		n := r.between(2, 3)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), r.between(3, 6))
		}
		spreadOps(r, m, true)
		for _, u := range m.Units {
			for _, op := range []ir.Op{ir.OpMul, ir.OpDiv, ir.OpMod} {
				if u.Can(op) {
					u.SetLatency(op, r.between(2, 4))
				}
			}
			if r.chance(1, 4) && u.Can(ir.OpShl) {
				u.SetLatency(ir.OpShl, 2)
			}
		}
		m.AddMemory("DM")
		crossbar(r, m)
	case ClassConstrained:
		n := r.between(3, 4)
		regs := r.between(3, 6)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), regs)
		}
		spreadOps(r, m, true)
		m.AddMemory("DM")
		crossbar(r, m)
		addConstraints(r, m, r.between(2, 4))
	case ClassDualMemory:
		n := r.between(2, 3)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), r.between(3, 6))
		}
		spreadOps(r, m, true)
		m.AddMemory("XM")
		m.AddMemory("YM")
		m.AddBus("BX", 1)
		m.AddBus("BY", 1)
		for _, u := range m.Units {
			m.AddTransfer(isdl.MemLoc("XM"), isdl.UnitLoc(u.Regs.Name), "BX")
			m.AddTransfer(isdl.UnitLoc(u.Regs.Name), isdl.MemLoc("XM"), "BX")
			m.AddTransfer(isdl.MemLoc("YM"), isdl.UnitLoc(u.Regs.Name), "BY")
			m.AddTransfer(isdl.UnitLoc(u.Regs.Name), isdl.MemLoc("YM"), "BY")
		}
		for i := 1; i < len(m.Units); i++ {
			m.AddTransfer(isdl.UnitLoc(m.Units[0].Regs.Name), isdl.UnitLoc(m.Units[i].Regs.Name), "BX")
			m.AddTransfer(isdl.UnitLoc(m.Units[i].Regs.Name), isdl.UnitLoc(m.Units[0].Regs.Name), "BX")
		}
	case ClassTinyRegs:
		n := r.between(1, 2)
		for i := 0; i < n; i++ {
			m.AddUnit(fmt.Sprintf("U%d", i), 2)
		}
		spreadOps(r, m, n > 1)
		m.AddMemory("DM")
		crossbar(r, m)
	default:
		panic("zoo: unknown class " + class)
	}

	// Optional flourishes shared by all classes: a division-capable
	// unit, and a MAC unit with the matching complex-instruction
	// pattern.
	if r.chance(1, 3) {
		u := m.Units[r.next(len(m.Units))]
		u.Ops[ir.OpDiv] = true
		u.Ops[ir.OpMod] = true
	}
	if r.chance(1, 3) {
		u := m.Units[r.next(len(m.Units))]
		u.Ops[ir.OpMAC] = true
		m.Patterns = append(m.Patterns, isdl.MACPattern(u.Name))
	}
	return m
}

// spreadOps distributes the core repertoire over the machine's units:
// every core op lands on at least one unit, chosen by the rng, and
// units pick up extra ops with low probability so repertoires overlap
// (sparse=true keeps overlap rare, making op→unit choice matter more).
func spreadOps(r *rng, m *isdl.Machine, sparse bool) {
	n := len(m.Units)
	for _, op := range coreOps {
		m.Units[r.next(n)].Ops[op] = true
	}
	num, den := 1, 3
	if sparse {
		num, den = 1, 6
	}
	for _, u := range m.Units {
		for _, op := range coreOps {
			if !u.Ops[op] && r.chance(num, den) {
				u.Ops[op] = true
			}
		}
		// A unit the spread left empty still needs a repertoire.
		if len(u.Ops) == 0 {
			u.Ops[coreOps[r.next(len(coreOps))]] = true
			u.Ops[ir.OpAdd] = true
		}
	}
}

// crossbar wires every bank and memory to every other over one bus of
// width 1 or 2, the paper's example-architecture topology.
func crossbar(r *rng, m *isdl.Machine) {
	m.AddBus("DB", r.between(1, 2))
	m.ConnectAll("DB")
}

// addConstraints forbids n random two-slot co-issues between distinct
// units. Slots are drawn from each unit's sorted op list so the result
// is deterministic.
func addConstraints(r *rng, m *isdl.Machine, n int) {
	if len(m.Units) < 2 {
		return
	}
	seen := map[string]bool{}
	for k := 0; k < n; k++ {
		i := r.next(len(m.Units))
		j := r.next(len(m.Units))
		if i == j {
			j = (j + 1) % len(m.Units)
		}
		a, b := m.Units[i], m.Units[j]
		aOps, bOps := a.OpList(), b.OpList()
		if len(aOps) == 0 || len(bOps) == 0 {
			continue
		}
		sa := isdl.SlotRef{Unit: a.Name, Op: aOps[r.next(len(aOps))]}
		sb := isdl.SlotRef{Unit: b.Name, Op: bOps[r.next(len(bOps))]}
		key := sa.String() + "&" + sb.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		m.AddConstraint(sa, sb)
	}
}
