package zoo

import (
	"os"
	"strings"
	"testing"

	"aviv"
	"aviv/internal/baseline"
	"aviv/internal/isdl"
	"aviv/internal/sim"
	"aviv/internal/verify"
)

// Regression tests for compiler bugs the zoo's differential matrix
// surfaced, each pinned by a machine minimized with Minimize and
// checked in under testdata.

// TestRegressMemHubMoveThroughMemory covers the first zoo find: on a
// memory-hub machine (the mem-hub class), the only transfer path
// between two register banks routes through the data memory. The
// solution-graph builder used to emit the hop into memory as a plain
// MoveNode — a node with no destination register and no slot name — so
// every cross-bank value flow crashed the assembler with "move ... has
// no register". The fix parks the value in a "$mv" compiler temp: the
// hop in becomes a spill-style store, the hop out a reload of the same
// slot.
func TestRegressMemHubMoveThroughMemory(t *testing.T) {
	text, err := os.ReadFile("testdata/memhub_min.isdl")
	if err != nil {
		t.Fatal(err)
	}
	m, err := isdl.Parse(string(text))
	if err != nil {
		t.Fatalf("minimized machine does not parse: %v", err)
	}
	if verr := verify.LintMachine(m.Clone(m.Name)); verr != nil {
		t.Fatalf("minimized machine does not lint clean: %v", verr)
	}

	// ADD lives only on U0, SUB only on U1, and the banks are connected
	// exclusively through DM: the ADD result must cross via memory.
	src := "a = (a + b) - c;\n"
	mem := map[string]int64{"a": 11, "b": 7, "c": 5}

	f, err := aviv.ParseAndLower(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]int64{"a": 11, "b": 7, "c": 5}
	want, err := baseline.Interpret(f, ref, 0)
	if err != nil {
		t.Fatal(err)
	}

	opts := aviv.DefaultOptions()
	opts.Verify = true
	res, err := aviv.CompileSource(src, m, 1, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	asm := res.Program.String()
	if !strings.Contains(asm, "$mv") {
		t.Errorf("expected a $mv transfer temp in the emitted code (the value must park in DM):\n%s", asm)
	}
	got, _, err := sim.RunProgram(res.Program, mem, 0)
	if err != nil {
		t.Fatalf("simulate: %v\n%s", err, asm)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("mem[%s] = %d, interpreter says %d\n%s", k, got[k], v, asm)
		}
	}
}
