package zoo

import (
	"aviv/internal/isdl"
)

// Minimize shrinks a failing machine to a local minimum: it greedily
// applies structural reductions (drop a unit, an op, a constraint, a
// pattern, a transfer, a memory, a latency entry; shrink a register
// bank) and keeps any reduction under which fails still returns true.
// The result is the smallest machine this process reaches that still
// reproduces the failure — the machine to check in as a regression
// test.
//
// fails receives an unfinalized deep copy and must decide for itself
// whether the candidate still exhibits the bug (typically: lints clean
// AND the compile/verify/differential failure reproduces; candidates
// the linter rejects should return false so minimization stays inside
// the space of machines the zoo would actually emit). Minimize never
// mutates its argument.
//
// The candidate order is deterministic, so the same input machine and
// predicate always minimize to the same machine.
func Minimize(m *isdl.Machine, fails func(*isdl.Machine) bool) *isdl.Machine {
	cur := m.Clone(m.Name)
	// Greedy descent: restart the candidate scan after every accepted
	// reduction; stop at a pass with no accepted candidate. The guard
	// bounds pathological predicates — each acceptance strictly shrinks
	// the machine, so the structural size is also a hard bound.
	for guard := 0; guard < 10000; guard++ {
		accepted := false
		for _, cand := range shrinkCandidates(cur) {
			if fails(cand.Clone(cand.Name)) {
				cur = cand
				accepted = true
				break
			}
		}
		if !accepted {
			break
		}
	}
	return cur
}

// shrinkCandidates enumerates every single-step reduction of m, most
// aggressive first (whole units before single ops, halving a bank
// before decrementing it), each as an independent clone.
func shrinkCandidates(m *isdl.Machine) []*isdl.Machine {
	var out []*isdl.Machine

	// Drop a unit (RemoveUnit also deletes transfers stranded by the
	// unit's bank disappearing and constraints naming the unit).
	if len(m.Units) > 1 {
		for _, u := range m.Units {
			c := m.Clone(m.Name)
			c.RemoveUnit(u.Name)
			out = append(out, c)
		}
	}

	// Drop a memory and the transfers touching it.
	if len(m.Memories) > 1 {
		for _, mem := range m.Memories {
			c := m.Clone(m.Name)
			removeMemory(c, mem.Name)
			out = append(out, c)
		}
	}

	// Drop a bus together with every transfer riding it (a bus left
	// dead by transfer removal alone would fail the isdl/bus-dead lint,
	// deadlocking the descent).
	if len(m.Buses) > 1 {
		for _, b := range m.Buses {
			c := m.Clone(m.Name)
			var buses []*isdl.Bus
			for _, cb := range c.Buses {
				if cb.Name != b.Name {
					buses = append(buses, cb)
				}
			}
			c.Buses = buses
			var kept []isdl.Transfer
			for _, t := range c.Transfers {
				if t.Bus != b.Name {
					kept = append(kept, t)
				}
			}
			c.Transfers = kept
			out = append(out, c)
		}
	}

	// Drop a constraint / pattern / transfer.
	for i := range m.Constraints {
		c := m.Clone(m.Name)
		c.Constraints = append(c.Constraints[:i:i], c.Constraints[i+1:]...)
		out = append(out, c)
	}
	for i := range m.Patterns {
		c := m.Clone(m.Name)
		c.Patterns = append(c.Patterns[:i:i], c.Patterns[i+1:]...)
		out = append(out, c)
	}
	for i := range m.Transfers {
		c := m.Clone(m.Name)
		c.Transfers = append(c.Transfers[:i:i], c.Transfers[i+1:]...)
		out = append(out, c)
	}

	// Shrink a register bank: halve first (fast descent), then
	// decrement (fine descent). All units sharing the bank shrink
	// together so the description stays consistent.
	for _, bank := range m.Banks() {
		size := m.BankSize(bank)
		if half := size / 2; half >= 1 && half < size {
			out = append(out, resizeBank(m, bank, half))
		}
		if size > 1 {
			out = append(out, resizeBank(m, bank, size-1))
		}
	}

	// Drop a single op from a unit (deterministic via the sorted op
	// list), together with any latency entry for it.
	for _, u := range m.Units {
		if len(u.Ops) <= 1 {
			continue
		}
		for _, op := range u.OpList() {
			c := m.Clone(m.Name)
			cu := c.Unit(u.Name)
			delete(cu.Ops, op)
			delete(cu.Latency, op)
			out = append(out, c)
		}
	}

	// Drop a latency entry (reverting the op to single-cycle).
	for _, u := range m.Units {
		for _, op := range u.OpList() {
			if _, ok := u.Latency[op]; !ok {
				continue
			}
			c := m.Clone(m.Name)
			delete(c.Unit(u.Name).Latency, op)
			out = append(out, c)
		}
	}
	return out
}

// removeMemory deletes the named memory and every transfer touching it.
func removeMemory(m *isdl.Machine, name string) {
	var mems []*isdl.Memory
	for _, mem := range m.Memories {
		if mem.Name != name {
			mems = append(mems, mem)
		}
	}
	m.Memories = mems
	loc := isdl.MemLoc(name)
	var kept []isdl.Transfer
	for _, t := range m.Transfers {
		if t.From != loc && t.To != loc {
			kept = append(kept, t)
		}
	}
	m.Transfers = kept
}

// resizeBank clones m with the named register bank (and every unit on
// it) resized.
func resizeBank(m *isdl.Machine, bank string, size int) *isdl.Machine {
	c := m.Clone(m.Name)
	for _, u := range c.Units {
		if u.Regs.Name == bank {
			u.Regs.Size = size
		}
	}
	return c
}
