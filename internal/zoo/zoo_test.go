package zoo

import (
	"strings"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/verify"
)

// TestGenerateLintCleanAndDeterministic is the zoo's core contract: a
// fixed seed yields the same machines byte for byte, every one of them
// lints clean, and the class rotation covers every class.
func TestGenerateLintCleanAndDeterministic(t *testing.T) {
	const seed, n = 1, 27
	a, err := Generate(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != n || len(b) != n {
		t.Fatalf("got %d and %d entries, want %d", len(a), len(b), n)
	}
	classes := map[string]int{}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Errorf("machine %d not deterministic:\n%s\nvs\n%s", i, a[i].Text, b[i].Text)
		}
		if a[i].M.Fingerprint() != b[i].M.Fingerprint() {
			t.Errorf("machine %d fingerprint not deterministic", i)
		}
		if verr := verify.LintMachine(a[i].M.Clone(a[i].M.Name)); verr != nil {
			t.Errorf("machine %d (%s) does not lint clean: %v", i, a[i].Class, verr)
		}
		classes[a[i].Class]++
	}
	for _, c := range Classes() {
		if classes[c] == 0 {
			t.Errorf("class %s never generated in %d machines", c, n)
		}
	}
}

// TestGenerateCoversCoreRepertoire: every corpus op must be offered by
// some unit of every machine, so compile failures on zoo machines are
// always bugs, never repertoire gaps.
func TestGenerateCoversCoreRepertoire(t *testing.T) {
	entries, err := Generate(7, 18)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		for _, op := range coreOps {
			if len(e.M.UnitsFor(op)) == 0 {
				t.Errorf("%s (%s): no unit performs %s", e.M.Name, e.Class, op)
			}
		}
	}
}

// TestGenerateRejectionRate pins the regenerate-on-reject machinery: the
// generator should almost never need a retry, and when it does the
// recorded rules must be real lint rule names.
func TestGenerateRejectionRate(t *testing.T) {
	entries, err := Generate(3, 45)
	if err != nil {
		t.Fatal(err)
	}
	rejects := 0
	for _, e := range entries {
		rejects += len(e.Rejects)
		for _, rule := range e.Rejects {
			if !strings.HasPrefix(rule, "isdl/") {
				t.Errorf("%s: rejection rule %q is not an isdl lint rule", e.M.Name, rule)
			}
		}
	}
	if rejects > len(entries) {
		t.Errorf("%d rejections across %d machines: generator emits too much lint-rejected garbage", rejects, len(entries))
	}
}

// TestRoundTripParseDumpParse: the textual rendering of every zoo
// machine re-parses to an equivalent machine — equal Describe output
// means equal derived databases and therefore equal fingerprints, so
// Entry.Text really is a complete reproduction handle.
func TestRoundTripParseDumpParse(t *testing.T) {
	entries, err := Generate(1, 27)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		m2, err := isdl.Parse(e.Text)
		if err != nil {
			t.Errorf("%s (%s): dumped text does not parse: %v\n%s", e.M.Name, e.Class, err, e.Text)
			continue
		}
		if got, want := m2.Describe(), e.M.Describe(); got != want {
			t.Errorf("%s: Parse(Dump(m)) differs from m:\n--- reparsed\n%s\n--- original\n%s", e.M.Name, got, want)
		}
		if m2.Fingerprint() != e.M.Fingerprint() {
			t.Errorf("%s: fingerprint changed across Parse(Dump(m))", e.M.Name)
		}
	}
}

// TestMinimize shrinks a wide zoo machine under a synthetic failure
// predicate ("lints clean and some unit performs MUL") and must reach
// the structural minimum: one single-op unit on a one-register bank
// with nothing but the memory round trip left.
func TestMinimize(t *testing.T) {
	e, err := One(1, 1) // index 1 = wide-vliw
	if err != nil {
		t.Fatal(err)
	}
	fails := func(m *isdl.Machine) bool {
		if verify.LintMachine(m) != nil {
			return false
		}
		for _, u := range m.Units {
			if u.Can(ir.OpMul) {
				return true
			}
		}
		return false
	}
	if !fails(e.M.Clone(e.M.Name)) {
		t.Fatal("precondition: generated machine should satisfy the predicate")
	}
	min := Minimize(e.M, fails)
	if !fails(min.Clone(min.Name)) {
		t.Fatalf("minimized machine no longer fails:\n%s", min.Dump())
	}
	if len(min.Units) != 1 {
		t.Errorf("want 1 unit after minimization, got %d:\n%s", len(min.Units), min.Dump())
	}
	if ops := min.Units[0].OpList(); len(ops) != 1 || ops[0] != ir.OpMul {
		t.Errorf("want exactly [MUL] on the surviving unit, got %v", ops)
	}
	if size := min.Units[0].Regs.Size; size != 1 {
		t.Errorf("want the bank shrunk to 1 register, got %d", size)
	}
	if len(min.Constraints) != 0 || len(min.Patterns) != 0 {
		t.Errorf("constraints/patterns survived minimization:\n%s", min.Dump())
	}
	if len(min.Transfers) != 2 {
		t.Errorf("want only the memory round trip (2 transfers), got %d:\n%s", len(min.Transfers), min.Dump())
	}
	// Determinism: minimizing again reproduces the same machine.
	again := Minimize(e.M, fails)
	if again.Dump() != min.Dump() {
		t.Errorf("minimization not deterministic:\n%s\nvs\n%s", again.Dump(), min.Dump())
	}
}

// TestOneRetryBudgetExhausted: One must fail loudly, naming the
// rejection rules, when every candidate is rejected. Exercised through
// the real path by a class whose machines always lint clean being
// impossible to break — so instead drive RejectRules directly and
// check One's bounded loop via an impossible budget simulation is not
// possible without stubbing; RejectRules behavior is pinned here.
func TestRejectRules(t *testing.T) {
	m := isdl.NewMachine("bad")
	m.AddUnit("U", 0) // empty repertoire + zero-size bank
	verr := verify.LintMachine(m)
	if verr == nil {
		t.Fatal("want lint violations")
	}
	rules := RejectRules(verr)
	want := map[string]bool{"isdl/unit-empty": true, "isdl/bank-size": true, "isdl/no-memory": true}
	for _, r := range rules {
		delete(want, r)
	}
	if len(want) != 0 {
		t.Errorf("RejectRules missing %v (got %v)", want, rules)
	}
	if RejectRules(nil) != nil {
		t.Error("RejectRules(nil) should be nil")
	}
}
