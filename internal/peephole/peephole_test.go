package peephole

import (
	"fmt"
	"testing"

	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/regalloc"
)

// Local copies of the benchmark workloads (package bench depends on this
// package, so importing it here would cycle).
func ex1() *ir.Block {
	bb := ir.NewBuilder("Ex1")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	return bb.Finish()
}

func ex5() *ir.Block {
	bb := ir.NewBuilder("Ex5")
	s := bb.Load("s")
	e := bb.Load("e")
	x0 := bb.Load("x0")
	y0 := bb.Load("y0")
	x1 := bb.Load("x1")
	y1 := bb.Load("y1")
	bb.Store("s", bb.Add(bb.Add(s, bb.Mul(x0, y0)), bb.Mul(x1, y1)))
	bb.Store("e", bb.Add(bb.Add(e, bb.Mul(x0, x0)), bb.Mul(x1, x1)))
	bb.Return()
	return bb.Finish()
}

func fir(taps int) *ir.Block {
	bb := ir.NewBuilder(fmt.Sprintf("fir%d", taps))
	var acc *ir.Node
	for i := 0; i < taps; i++ {
		term := bb.Mul(bb.Load(fmt.Sprintf("x%d", i)), bb.Load(fmt.Sprintf("c%d", i)))
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	return bb.Finish()
}

func chain(n int) *ir.Block {
	bb := ir.NewBuilder(fmt.Sprintf("chain%d", n))
	cur := bb.Load("x")
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			cur = bb.Add(cur, bb.Const(int64(i+1)))
		} else {
			cur = bb.Mul(cur, bb.Const(2))
		}
	}
	bb.Store("y", cur)
	bb.Return()
	return bb.Finish()
}

func TestOptimizeNeverInvalidOrWorse(t *testing.T) {
	workloads := []*ir.Block{ex1(), ex5(), fir(6), chain(8)}
	for _, blk := range workloads {
		for _, regs := range []int{2, 3, 4} {
			m := isdl.ExampleArch(regs)
			res, err := cover.CoverBlock(blk, m, cover.DefaultOptions())
			if err != nil {
				t.Fatalf("%s regs=%d: %v", blk.Name, regs, err)
			}
			before := res.Best
			after := Optimize(before)
			if err := after.Verify(); err != nil {
				t.Fatalf("%s regs=%d: peephole produced invalid solution: %v", blk.Name, regs, err)
			}
			if after.Cost() > before.Cost() {
				t.Errorf("%s regs=%d: peephole grew code %d -> %d", blk.Name, regs, before.Cost(), after.Cost())
			}
			// The result must still register-allocate.
			if _, err := regalloc.Allocate(after); err != nil {
				t.Fatalf("%s regs=%d: regalloc after peephole: %v", blk.Name, regs, err)
			}
		}
	}
}

// buildPaddedSolution fabricates a solution with an unnecessary spill and
// a sparse schedule, checking that the pass removes the spill and
// compacts.
func TestRemovesUselessSpillAndCompacts(t *testing.T) {
	m := isdl.ExampleArch(4)
	bb := ir.NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	bb.Store("o", bb.Add(a, b))
	bb.Return()
	blk := bb.Finish()

	res, err := cover.CoverBlock(blk, m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol := res.Best.Clone()

	// Manually wedge a pointless spill/reload of the ADD result between
	// the ADD and its store.
	var addN, stN *cover.SNode
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			if n.Kind == cover.OpNode && n.Op == ir.OpAdd {
				addN = n
			}
			if n.Kind == cover.StoreNode && n.Var == "o" {
				stN = n
			}
		}
	}
	if addN == nil || stN == nil {
		t.Fatal("missing nodes")
	}
	unlink(addN, stN)
	spill := &cover.SNode{ID: 100, Kind: cover.StoreNode, Value: addN.Value, Var: "$sp0",
		Step: isdl.Transfer{From: isdl.UnitLoc(addN.Unit), To: isdl.MemLoc("DM"), Bus: "DB"}}
	reloadN := &cover.SNode{ID: 101, Kind: cover.LoadNode, Value: addN.Value, Var: "$sp0",
		Step: isdl.Transfer{From: isdl.MemLoc("DM"), To: isdl.UnitLoc(addN.Unit), Bus: "DB"}}
	link(addN, spill)
	link(reloadN, stN)
	spill.OrdSuccs = append(spill.OrdSuccs, reloadN)
	reloadN.OrdPreds = append(reloadN.OrdPreds, spill)

	// Rebuild the schedule with the extra instructions before the store.
	var newInstrs [][]*cover.SNode
	for _, instr := range sol.Instrs {
		isStore := false
		for _, n := range instr {
			if n == stN {
				isStore = true
			}
		}
		if isStore {
			newInstrs = append(newInstrs, []*cover.SNode{spill}, []*cover.SNode{reloadN})
		}
		newInstrs = append(newInstrs, instr)
	}
	sol.Instrs = newInstrs
	sol.SpillCount++
	if err := sol.Verify(); err != nil {
		t.Fatalf("padded solution invalid: %v", err)
	}

	before := sol.Cost()
	after := Optimize(sol)
	if err := after.Verify(); err != nil {
		t.Fatal(err)
	}
	if after.Cost() >= before {
		t.Errorf("peephole did not shrink padded solution: %d -> %d\n%s", before, after.Cost(), after)
	}
	for _, instr := range after.Instrs {
		for _, n := range instr {
			if n.Var == "$sp0" {
				t.Error("useless spill survived")
			}
		}
	}
}

func TestSpillSlotDetection(t *testing.T) {
	if !spillSlot("$sp0") || !spillSlot("$sp123") {
		t.Error("spill slots not detected")
	}
	if spillSlot("x") || spillSlot("sp0") || spillSlot("$t1") {
		t.Error("non-spill names detected as spill slots")
	}
}

func TestCrossBankSpillBecomesMove(t *testing.T) {
	// Fabricate a solution where a value is spilled from U1 and reloaded
	// into U2; the peephole should turn the round trip into a direct
	// U1 -> U2 move.
	m := isdl.ExampleArch(4)
	bb := ir.NewBuilder("x")
	a := bb.Load("a")
	b := bb.Load("b")
	s1 := bb.Add(a, b)
	bb.Store("o", bb.Mul(s1, s1))
	bb.Return()
	blk := bb.Finish()

	// Force the assignment: ADD on U1, MUL on U2, via default covering,
	// then rebuild a padded clone with an artificial spill.
	res, err := cover.CoverBlock(blk, m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sol := res.Best.Clone()
	var addN, mulN *cover.SNode
	for _, in := range sol.Instrs {
		for _, n := range in {
			if n.Kind == cover.OpNode && n.Op == ir.OpAdd {
				addN = n
			}
			if n.Kind == cover.OpNode && n.Op == ir.OpMul {
				mulN = n
			}
		}
	}
	if addN == nil || mulN == nil {
		t.Skip("covering fused differently; nothing to test")
	}
	if addN.Unit == mulN.Unit {
		t.Skip("same unit; no cross-bank value")
	}
	// Find the move delivering ADD's value to MUL's bank; replace it with
	// spill + reload through memory.
	var mv *cover.SNode
	for _, p := range mulN.Preds {
		if p.Kind == cover.MoveNode && p.Value == addN.Value {
			mv = p
		}
	}
	if mv == nil {
		t.Skip("no cross-bank move found")
	}
	spill := &cover.SNode{ID: 900, Kind: cover.StoreNode, Value: addN.Value, Var: "$sp9",
		Step: isdl.Transfer{From: isdl.UnitLoc(addN.Unit), To: isdl.MemLoc("DM"), Bus: "DB"}}
	link(addN, spill)
	// Repurpose mv into a reload from the slot.
	unlink(addN, mv)
	mv.Kind = cover.LoadNode
	mv.Var = "$sp9"
	mv.Step = isdl.Transfer{From: isdl.MemLoc("DM"), To: isdl.UnitLoc(mulN.Unit), Bus: "DB"}
	spill.OrdSuccs = append(spill.OrdSuccs, mv)
	mv.OrdPreds = append(mv.OrdPreds, spill)
	// Insert the spill instruction right after the ADD.
	var newInstrs [][]*cover.SNode
	for _, in := range sol.Instrs {
		newInstrs = append(newInstrs, in)
		for _, n := range in {
			if n == addN {
				newInstrs = append(newInstrs, []*cover.SNode{spill})
			}
		}
	}
	sol.Instrs = newInstrs
	sol.SpillCount++
	if err := sol.Verify(); err != nil {
		t.Fatalf("padded solution invalid: %v\n%s", err, sol)
	}

	after := Optimize(sol)
	if err := after.Verify(); err != nil {
		t.Fatal(err)
	}
	if after.Cost() >= sol.Cost() {
		t.Errorf("cross-bank spill not optimized: %d -> %d\n%s", sol.Cost(), after.Cost(), after)
	}
	for _, in := range after.Instrs {
		for _, n := range in {
			if n.Var == "$sp9" {
				t.Error("spill slot survived")
			}
		}
	}
}
