// Package peephole implements the post-covering cleanup of the AVIV
// paper's Sec. IV-G: removing loads and spills that the covering's
// pessimistic lifetime analysis inserted unnecessarily, and compacting
// the schedule by moving operations into earlier empty slots when
// dependences and machine constraints allow. Either transformation is
// kept only when the solution still verifies and the code size does not
// grow.
//
// The division of labor with the global dataflow framework: dead stores
// of program variables are an IR-level, cross-block property and are
// removed upstream (internal/opt's global dead-store elimination, and
// cover's liveness-driven pruning via Options.LiveOut fed by
// internal/dataflow). This package only ever touches compiler-generated
// spill slots ($spN) and schedule slack — artifacts of covering and
// allocation that no IR-level analysis can see.
package peephole

import (
	"strings"

	"aviv/internal/cover"
	"aviv/internal/isdl"
)

// Optimize returns an improved covering solution, or the input solution
// unchanged when no transformation helps.
func Optimize(sol *cover.Solution) *cover.Solution {
	best := sol
	if improved, ok := removeRedundantSpills(best); ok {
		best = improved
	}
	if improved, ok := compact(best); ok {
		best = improved
	}
	return best
}

// spillSlot reports whether a memory name is a compiler-generated spill
// slot rather than a program variable.
func spillSlot(name string) bool { return strings.HasPrefix(name, "$sp") }

// removeRedundantSpills tries to delete each spill-slot store together
// with its same-bank reloads, rewiring the reload consumers back to the
// original producer. The removal sticks only when the solution still
// verifies (register pressure included) with no size increase.
func removeRedundantSpills(sol *cover.Solution) (*cover.Solution, bool) {
	improvedAny := false
	cur := sol
	for {
		slots := spillSlots(cur)
		progress := false
		for _, slot := range slots {
			if trial, ok := tryRemoveSlot(cur, slot); ok {
				cur = trial
				progress = true
				improvedAny = true
				break // slot list is stale; rescan
			}
		}
		if !progress {
			break
		}
	}
	return cur, improvedAny
}

func spillSlots(sol *cover.Solution) []string {
	seen := make(map[string]bool)
	var out []string
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			if n.Kind == cover.StoreNode && spillSlot(n.Var) && !seen[n.Var] {
				seen[n.Var] = true
				out = append(out, n.Var)
			}
		}
	}
	return out
}

// tryRemoveSlot attempts to eliminate one spill slot on a clone.
func tryRemoveSlot(sol *cover.Solution, slot string) (*cover.Solution, bool) {
	c := sol.Clone()
	var spill *cover.SNode
	var reloads []*cover.SNode
	for _, instr := range c.Instrs {
		for _, n := range instr {
			if n.Var != slot {
				continue
			}
			switch n.Kind {
			case cover.StoreNode:
				spill = n
			case cover.LoadNode:
				reloads = append(reloads, n)
			}
		}
	}
	if spill == nil || len(spill.Preds) != 1 {
		return nil, false
	}
	producer := spill.Preds[0]
	prodLoc, ok := producer.DefLoc()
	if !ok || prodLoc.Kind != isdl.LocUnit {
		return nil, false
	}
	// Same-bank reloads rewire to the original register; cross-bank
	// reloads become direct register-to-register moves (a spill through
	// memory was only ever needed for pressure, which Verify re-checks
	// below).
	removed := map[*cover.SNode]bool{spill: true}
	for _, r := range reloads {
		if r.Step.To == prodLoc {
			for _, w := range append([]*cover.SNode(nil), r.Succs...) {
				unlink(r, w)
				link(producer, w)
			}
			for _, p := range append([]*cover.SNode(nil), r.OrdPreds...) {
				unlinkOrd(p, r)
			}
			removed[r] = true
			continue
		}
		// Repurpose the reload in place as a move from the producer's
		// bank: same bus slot, same consumers, no memory round trip.
		paths := c.Machine.TransferPaths(prodLoc, r.Step.To)
		if len(paths) == 0 || len(paths[0]) != 1 {
			return nil, false // no direct path; keep the spill
		}
		r.Kind = cover.MoveNode
		r.Var = ""
		r.Step = paths[0][0]
		for _, p := range append([]*cover.SNode(nil), r.OrdPreds...) {
			unlinkOrd(p, r)
		}
		link(producer, r)
	}
	for _, s := range append([]*cover.SNode(nil), spill.OrdSuccs...) {
		unlinkOrd(spill, s)
	}
	unlink(producer, spill)
	c.Instrs = filterInstrs(c.Instrs, removed)
	c.SpillCount--
	if c.SpillCount < 0 {
		c.SpillCount = 0
	}
	if err := c.Verify(); err != nil {
		return nil, false
	}
	if c.Cost() > sol.Cost() {
		return nil, false
	}
	return c, true
}

// compact moves nodes into earlier instructions when dependences, bank
// pressure, and grouping legality allow, then drops emptied instructions.
func compact(sol *cover.Solution) (*cover.Solution, bool) {
	c := sol.Clone()
	changed := false
	for {
		moved := false
		pos := positions(c)
		for i := 1; i < len(c.Instrs); i++ {
			for _, n := range append([]*cover.SNode(nil), c.Instrs[i]...) {
				earliest := 0
				for _, p := range n.Preds {
					if pos[p]+1 > earliest {
						earliest = pos[p] + 1
					}
				}
				for _, p := range n.OrdPreds {
					if pos[p]+1 > earliest {
						earliest = pos[p] + 1
					}
				}
				for j := earliest; j < i; j++ {
					if tryMove(c, n, i, j) {
						pos = positions(c)
						moved = true
						changed = true
						break
					}
				}
			}
		}
		if !moved {
			break
		}
	}
	c.Instrs = dropEmpty(c.Instrs)
	if !changed || c.Cost() >= sol.Cost() {
		return nil, false
	}
	if err := c.Verify(); err != nil {
		return nil, false
	}
	return c, true
}

// tryMove relocates node n from instruction i to j, keeping the move only
// if the solution still verifies.
func tryMove(c *cover.Solution, n *cover.SNode, i, j int) bool {
	c.Instrs[i] = removeFrom(c.Instrs[i], n)
	c.Instrs[j] = append(c.Instrs[j], n)
	if err := c.Verify(); err != nil {
		c.Instrs[j] = removeFrom(c.Instrs[j], n)
		c.Instrs[i] = append(c.Instrs[i], n)
		return false
	}
	return true
}

func positions(c *cover.Solution) map[*cover.SNode]int {
	pos := make(map[*cover.SNode]int)
	for i, instr := range c.Instrs {
		for _, n := range instr {
			pos[n] = i
		}
	}
	return pos
}

func removeFrom(list []*cover.SNode, x *cover.SNode) []*cover.SNode {
	var out []*cover.SNode
	for _, n := range list {
		if n != x {
			out = append(out, n)
		}
	}
	return out
}

func filterInstrs(instrs [][]*cover.SNode, removed map[*cover.SNode]bool) [][]*cover.SNode {
	var out [][]*cover.SNode
	for _, instr := range instrs {
		var kept []*cover.SNode
		for _, n := range instr {
			if !removed[n] {
				kept = append(kept, n)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	return out
}

func dropEmpty(instrs [][]*cover.SNode) [][]*cover.SNode {
	var out [][]*cover.SNode
	for _, instr := range instrs {
		if len(instr) > 0 {
			out = append(out, instr)
		}
	}
	return out
}

func link(from, to *cover.SNode) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func unlink(from, to *cover.SNode) {
	from.Succs = del(from.Succs, to)
	to.Preds = del(to.Preds, from)
}

func unlinkOrd(from, to *cover.SNode) {
	from.OrdSuccs = del(from.OrdSuccs, to)
	to.OrdPreds = del(to.OrdPreds, from)
}

func del(list []*cover.SNode, x *cover.SNode) []*cover.SNode {
	var out []*cover.SNode
	for _, n := range list {
		if n != x {
			out = append(out, n)
		}
	}
	return out
}
