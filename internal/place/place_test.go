package place

import (
	"testing"

	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

func dotBlock(taps int) *ir.Func {
	bb := ir.NewBuilder("dot")
	var acc *ir.Node
	for i := 0; i < taps; i++ {
		x := "x" + string(rune('0'+i))
		c := "c" + string(rune('0'+i))
		term := bb.Mul(bb.Load(x), bb.Load(c))
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	return &ir.Func{Name: "dot", Blocks: []*ir.Block{bb.Finish()}}
}

func TestCoAccessGraph(t *testing.T) {
	f := dotBlock(2)
	g := BuildCoAccess(f)
	if g.Weight("x0", "c0") != 1 {
		t.Errorf("Weight(x0,c0) = %d, want 1", g.Weight("x0", "c0"))
	}
	if g.Weight("c0", "x0") != 1 {
		t.Errorf("weight not symmetric")
	}
	if g.Weight("x0", "x1") != 0 {
		t.Errorf("unrelated pair has weight %d", g.Weight("x0", "x1"))
	}
	if len(g.Vars) != 5 { // x0 c0 x1 c1 y
		t.Errorf("Vars = %v", g.Vars)
	}
}

func TestAssignSeparatesCoAccessedPairs(t *testing.T) {
	f := dotBlock(4)
	m := isdl.DualMemDSP(4)
	placement := Assign(f, m)
	if placement == nil {
		t.Fatal("no placement")
	}
	for i := 0; i < 4; i++ {
		x := "x" + string(rune('0'+i))
		c := "c" + string(rune('0'+i))
		if placement[x] == placement[c] {
			t.Errorf("%s and %s share bank %s", x, c, placement[x])
		}
	}
}

func TestAssignSingleMemoryIsNil(t *testing.T) {
	if got := Assign(dotBlock(2), isdl.ExampleArch(4)); got != nil {
		t.Errorf("placement on single-memory machine: %v", got)
	}
}

func TestAutoPlacementMatchesHandPlacement(t *testing.T) {
	f := dotBlock(4)
	m := isdl.DualMemDSP(4)

	auto := cover.DefaultOptions()
	auto.VarPlacement = Assign(f, m)
	resAuto, err := cover.CoverBlock(f.Blocks[0], m, auto)
	if err != nil {
		t.Fatal(err)
	}

	hand := cover.DefaultOptions()
	hand.VarPlacement = map[string]string{}
	for i := 0; i < 4; i++ {
		hand.VarPlacement["x"+string(rune('0'+i))] = "XM"
		hand.VarPlacement["c"+string(rune('0'+i))] = "YM"
	}
	resHand, err := cover.CoverBlock(f.Blocks[0], m, hand)
	if err != nil {
		t.Fatal(err)
	}

	none, err := cover.CoverBlock(f.Blocks[0], m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	if resAuto.Best.Cost() > resHand.Best.Cost() {
		t.Errorf("auto placement cost %d worse than hand placement %d",
			resAuto.Best.Cost(), resHand.Best.Cost())
	}
	if resAuto.Best.Cost() >= none.Best.Cost() {
		t.Errorf("auto placement cost %d not better than no placement %d",
			resAuto.Best.Cost(), none.Best.Cost())
	}
}

func TestAssignBalancesUnrelatedVars(t *testing.T) {
	// Independent single-operand ops: occupancy balancing should split
	// the variables roughly evenly.
	bb := ir.NewBuilder("b")
	for i := 0; i < 6; i++ {
		v := "v" + string(rune('0'+i))
		bb.Store("o"+string(rune('0'+i)), bb.Op(ir.OpNeg, bb.Load(v)))
	}
	bb.Return()
	f := &ir.Func{Name: "f", Blocks: []*ir.Block{bb.Finish()}}
	placement := Assign(f, isdl.DualMemDSP(4))
	count := map[string]int{}
	for _, memName := range placement {
		count[memName]++
	}
	if count["XM"] == 0 || count["YM"] == 0 {
		t.Errorf("placement did not balance: %v", count)
	}
}
