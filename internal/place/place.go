// Package place assigns program variables to data memories on banked
// machines (X/Y memory DSPs): two operands consumed by the same
// operation want to live in different banks so their loads can issue in
// the same instruction over separate buses. The assignment is a greedy
// max-cut style 2-coloring (generalized to k memories) of the
// co-access graph, weighted by how often two variables are consumed
// together; ties balance bank occupancy.
package place

import (
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// CoAccessGraph counts, for every unordered pair of variables, how many
// operations consume both (and would therefore like their loads
// co-issued from different banks).
type CoAccessGraph struct {
	Vars    []string
	weights map[[2]string]int
}

// Weight returns the co-access count of a variable pair.
func (g *CoAccessGraph) Weight(a, b string) int {
	return g.weights[pairKey(a, b)]
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// BuildCoAccess analyzes a function's blocks.
func BuildCoAccess(f *ir.Func) *CoAccessGraph {
	g := &CoAccessGraph{weights: make(map[[2]string]int)}
	seen := map[string]bool{}
	addVar := func(v string) {
		if !seen[v] {
			seen[v] = true
			g.Vars = append(g.Vars, v)
		}
	}
	for _, b := range f.Blocks {
		for _, n := range b.Nodes {
			switch n.Op {
			case ir.OpLoad, ir.OpStore:
				addVar(n.Var)
			}
			if !n.Op.IsComputation() {
				continue
			}
			// Variables feeding this operation directly.
			var vars []string
			for _, a := range n.Args {
				if a.Op == ir.OpLoad {
					vars = append(vars, a.Var)
				}
			}
			for i := 0; i < len(vars); i++ {
				for j := i + 1; j < len(vars); j++ {
					if vars[i] != vars[j] {
						g.weights[pairKey(vars[i], vars[j])]++
					}
				}
			}
		}
	}
	sort.Strings(g.Vars)
	return g
}

// Assign places every variable of the function into one of the machine's
// data memories, maximizing (greedily) the co-access weight across
// banks. With fewer than two memories it returns nil (nothing to
// decide). The result plugs directly into cover.Options.VarPlacement.
func Assign(f *ir.Func, m *isdl.Machine) map[string]string {
	if len(m.Memories) < 2 {
		return nil
	}
	g := BuildCoAccess(f)
	if len(g.Vars) == 0 {
		return nil
	}
	memNames := make([]string, len(m.Memories))
	for i, mem := range m.Memories {
		memNames[i] = mem.Name
	}

	// Order variables by total co-access degree (heaviest first) so the
	// hard decisions happen while banks are still flexible.
	degree := map[string]int{}
	for pair, w := range g.weights {
		degree[pair[0]] += w
		degree[pair[1]] += w
	}
	order := append([]string(nil), g.Vars...)
	sort.SliceStable(order, func(i, j int) bool {
		if degree[order[i]] != degree[order[j]] {
			return degree[order[i]] > degree[order[j]]
		}
		return order[i] < order[j]
	})

	placement := make(map[string]string, len(order))
	occupancy := map[string]int{}
	for _, v := range order {
		// Score each memory: cut weight gained = co-access with vars
		// already placed in OTHER memories.
		best, bestScore := "", -1<<30
		for _, mem := range memNames {
			score := 0
			for placed, pm := range placement {
				w := g.Weight(v, placed)
				if w == 0 {
					continue
				}
				if pm == mem {
					score -= w // same bank: loads collide
				} else {
					score += w
				}
			}
			// Tie-break toward the emptier bank.
			score = score*1000 - occupancy[mem]
			if score > bestScore {
				best, bestScore = mem, score
			}
		}
		placement[v] = best
		occupancy[best]++
	}
	return placement
}
