// Package bitset provides word-packed uint64 bit sets sized at
// construction, the representation behind the covering engine's
// parallelism and reachability matrices: candidate intersection,
// absorption, and preclusion tests of the maximal-clique enumeration
// become word-wise AND/ANDNOT loops instead of per-element boolean
// scans.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The capacity is fixed by New; all
// binary operations require operands created with the same size.
type Set []uint64

// New returns a set able to hold bits 0..n-1, all clear.
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Len returns the capacity in bits (a multiple of 64).
func (s Set) Len() int { return len(s) * 64 }

// Get reports whether bit i is set.
func (s Set) Get(i int) bool {
	return s[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i.
func (s Set) Set(i int) {
	s[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s Set) Clear(i int) {
	s[i>>6] &^= 1 << (uint(i) & 63)
}

// Reset clears every bit, keeping the capacity.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Copy overwrites s with src (same capacity).
func (s Set) Copy(src Set) {
	copy(s, src)
}

// And stores a AND b into s.
func (s Set) And(a, b Set) {
	for i := range s {
		s[i] = a[i] & b[i]
	}
}

// AndNot stores a AND NOT b into s.
func (s Set) AndNot(a, b Set) {
	for i := range s {
		s[i] = a[i] &^ b[i]
	}
}

// Or stores a OR b into s.
func (s Set) Or(a, b Set) {
	for i := range s {
		s[i] = a[i] | b[i]
	}
}

// IntersectsNone reports whether s and b share no set bit.
func (s Set) IntersectsNone(b Set) bool {
	for i := range s {
		if s[i]&b[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every set bit of s is also set in b.
func (s Set) SubsetOf(b Set) bool {
	for i := range s {
		if s[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and b hold exactly the same bits.
func (s Set) Equal(b Set) bool {
	if len(s) != len(b) {
		return false
	}
	for i := range s {
		if s[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every set bit in ascending order.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendBits appends the indices of the set bits to dst in ascending
// order and returns the extended slice.
func (s Set) AppendBits(dst []int) []int {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// Matrix is a square bit matrix stored as one flat word slice: row i is
// the word range [i*stride, (i+1)*stride). Rows alias the backing slice,
// so mutating a row mutates the matrix.
type Matrix struct {
	n      int
	stride int
	words  []uint64
}

// NewMatrix returns an n x n zero matrix.
func NewMatrix(n int) *Matrix {
	stride := (n + 63) / 64
	return &Matrix{n: n, stride: stride, words: make([]uint64, n*stride)}
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// Row returns row i as a Set sharing the matrix storage.
func (m *Matrix) Row(i int) Set {
	return Set(m.words[i*m.stride : (i+1)*m.stride])
}

// Get reports entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.Row(i).Get(j) }

// SetSym sets both (i, j) and (j, i).
func (m *Matrix) SetSym(i, j int) {
	m.Row(i).Set(j)
	m.Row(j).Set(i)
}

// Words exposes the backing words (read-only use: fingerprinting).
func (m *Matrix) Words() []uint64 { return m.words }

// Equal reports whether two matrices have identical dimension and bits.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}
