package bitset

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(130) // three words
	if got := s.Len(); got != 192 {
		t.Fatalf("Len = %d, want 192", got)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if s.Get(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 3 {
		t.Fatalf("Clear(64) failed: count %d", s.Count())
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	if ap := s.AppendBits(nil); len(ap) != 3 || ap[2] != 129 {
		t.Fatalf("AppendBits = %v", ap)
	}
	s.Reset()
	if !s.Empty() {
		t.Fatal("Reset left bits set")
	}
}

// TestSetOpsAgainstBoolSlices drives every binary operation against a
// reference []bool model over random multi-word sets.
func TestSetOpsAgainstBoolSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		ra, rb := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ra[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				rb[i] = true
			}
		}
		and, andnot, or := New(n), New(n), New(n)
		and.And(a, b)
		andnot.AndNot(a, b)
		or.Or(a, b)
		subset, none := true, true
		for i := 0; i < n; i++ {
			if and.Get(i) != (ra[i] && rb[i]) {
				t.Fatalf("And bit %d wrong", i)
			}
			if andnot.Get(i) != (ra[i] && !rb[i]) {
				t.Fatalf("AndNot bit %d wrong", i)
			}
			if or.Get(i) != (ra[i] || rb[i]) {
				t.Fatalf("Or bit %d wrong", i)
			}
			if ra[i] && !rb[i] {
				subset = false
			}
			if ra[i] && rb[i] {
				none = false
			}
		}
		if a.SubsetOf(b) != subset {
			t.Fatalf("SubsetOf = %v, want %v", a.SubsetOf(b), subset)
		}
		if a.IntersectsNone(b) != none {
			t.Fatalf("IntersectsNone = %v, want %v", a.IntersectsNone(b), none)
		}
		cp := New(n)
		cp.Copy(a)
		if !cp.Equal(a) {
			t.Fatal("Copy not Equal")
		}
		// Clearing bit 0 breaks equality exactly when a has bit 0 set.
		cp.Clear(0)
		if cp.Equal(a) == a.Get(0) {
			t.Fatalf("Equal after Clear(0): got %v with a.Get(0)=%v", cp.Equal(a), a.Get(0))
		}
	}
}

func TestMatrix(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65, 130} {
		m := NewMatrix(n)
		if m.N() != n {
			t.Fatalf("N = %d", m.N())
		}
		ref := make([][]bool, n)
		for i := range ref {
			ref[i] = make([]bool, n)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for k := 0; k < n*2; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			m.SetSym(i, j)
			ref[i][j], ref[j][i] = true, true
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.Get(i, j) != ref[i][j] {
					t.Fatalf("n=%d: (%d,%d) = %v, want %v", n, i, j, m.Get(i, j), ref[i][j])
				}
			}
		}
		o := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if ref[i][j] {
					o.Row(i).Set(j)
				}
			}
		}
		if !m.Equal(o) {
			t.Fatalf("n=%d: Equal reconstruction failed", n)
		}
		if n > 1 {
			o.Row(0).Set(n - 1)
			o.Row(0).Clear(n - 1)
			if !m.Equal(o) {
				t.Fatal("Equal after set/clear round trip")
			}
			if ref[0][n-1] {
				o.Row(0).Clear(n - 1)
			} else {
				o.Row(0).Set(n - 1)
			}
			if m.Equal(o) {
				t.Fatal("Equal missed a differing bit")
			}
		}
	}
}
