package isdl

import "testing"

// FuzzParseISDL checks the machine-description parser never panics and
// that accepted machines finalize into consistent databases.
func FuzzParseISDL(f *testing.F) {
	seeds := []string{
		ExampleArchISDL,
		"machine M\nunit U { regs 1 ops ADD }",
		"machine M\nunit A { regs 4 ops ADD SUB MUL MAC }\nunit B { regs 2 ops DIV }\nmemory DM\nbus X width 2\nconnect all via X\nconstraint !(A.MUL & B.DIV)\npattern A.MAC = ADD(_, MUL(_, _))",
		"machine M\nunit U { regs 4 ops ADD }\nmemory DM\nbus B width 1\ntransfer U -> DM via B\ntransfer DM -> U via B",
		"machine M # comment\nunit U { regs 8 ops COMPL NEG }",
		"",
		"machine",
		"machine M\nunit U { regs 0 ops ADD }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted machines must expose consistent derived databases.
		for _, u := range m.Units {
			for _, op := range u.OpList() {
				found := false
				for _, cu := range m.UnitsFor(op) {
					if cu == u {
						found = true
					}
				}
				if !found {
					t.Fatalf("unit %s missing from UnitsFor(%s)", u.Name, op)
				}
			}
		}
		// Paths must stay within declared transfers.
		for _, a := range m.Units {
			for _, b := range m.Units {
				for _, path := range m.TransferPaths(UnitLoc(a.Name), UnitLoc(b.Name)) {
					for _, step := range path {
						if m.Bus(step.Bus) == nil {
							t.Fatalf("path uses unknown bus %q", step.Bus)
						}
					}
				}
			}
		}
		if m.HardwareCost() <= 0 {
			t.Fatal("non-positive hardware cost")
		}
		// Accepted machines must survive Parse → Dump → Parse with the
		// same content fingerprint. The one documented unfaithful case is
		// a register bank sharing its name with a memory (the textual
		// format resolves such an endpoint to the memory), which machines
		// built by this repository never do — skip those.
		for _, u := range m.Units {
			for _, mem := range m.Memories {
				if u.Regs.Name == mem.Name {
					return
				}
			}
		}
		text := m.Dump()
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("Dump output does not reparse: %v\n%s", err, text)
		}
		if m2.Fingerprint() != m.Fingerprint() {
			t.Fatalf("Parse→Dump→Parse changed the machine:\n-- dump --\n%s\n-- redump --\n%s", text, m2.Dump())
		}
	})
}
