package isdl

import (
	"strings"
	"testing"
	"testing/quick"

	"aviv/internal/ir"
)

func TestExampleArchStructure(t *testing.T) {
	m := ExampleArch(4)
	if len(m.Units) != 3 {
		t.Fatalf("got %d units, want 3", len(m.Units))
	}
	u1, u2, u3 := m.Unit("U1"), m.Unit("U2"), m.Unit("U3")
	if u1 == nil || u2 == nil || u3 == nil {
		t.Fatal("missing units")
	}
	// Paper Fig. 3 repertoires.
	checks := []struct {
		u    *Unit
		op   ir.Op
		want bool
	}{
		{u1, ir.OpAdd, true}, {u1, ir.OpSub, true}, {u1, ir.OpMul, false}, {u1, ir.OpCompl, true},
		{u2, ir.OpAdd, true}, {u2, ir.OpSub, true}, {u2, ir.OpMul, true},
		{u3, ir.OpAdd, true}, {u3, ir.OpSub, false}, {u3, ir.OpMul, true},
	}
	for _, c := range checks {
		if c.u.Can(c.op) != c.want {
			t.Errorf("%s.Can(%s) = %v, want %v", c.u.Name, c.op, c.u.Can(c.op), c.want)
		}
	}
	// Op -> unit database: ADD on all three units, MUL on U2 and U3.
	if got := len(m.UnitsFor(ir.OpAdd)); got != 3 {
		t.Errorf("UnitsFor(ADD) = %d units, want 3", got)
	}
	mulUnits := m.UnitsFor(ir.OpMul)
	if len(mulUnits) != 2 || mulUnits[0].Name != "U2" || mulUnits[1].Name != "U3" {
		t.Errorf("UnitsFor(MUL) = %v, want [U2 U3]", mulUnits)
	}
	if m.UnitsFor(ir.OpDiv) != nil {
		t.Errorf("UnitsFor(DIV) should be empty")
	}
	if m.DataMemory() == nil || m.DataMemory().Name != "DM" {
		t.Errorf("DataMemory = %v, want DM", m.DataMemory())
	}
}

func TestArchitectureII(t *testing.T) {
	m := ArchitectureII(4)
	if m.Unit("U3") != nil {
		t.Error("ArchitectureII should not have U3")
	}
	if m.Unit("U1").Can(ir.OpSub) {
		t.Error("ArchitectureII U1 should not perform SUB")
	}
	if got := len(m.UnitsFor(ir.OpMul)); got != 1 {
		t.Errorf("UnitsFor(MUL) = %d units, want 1", got)
	}
}

func TestTransferPathsDirect(t *testing.T) {
	m := ExampleArch(4)
	ps := m.TransferPaths(UnitLoc("U1"), UnitLoc("U2"))
	if len(ps) != 1 {
		t.Fatalf("U1->U2: got %d paths, want 1", len(ps))
	}
	if len(ps[0]) != 1 {
		t.Fatalf("U1->U2 path has %d hops, want 1", len(ps[0]))
	}
	if ps[0][0].Bus != "DB" {
		t.Errorf("path bus = %s, want DB", ps[0][0].Bus)
	}
	// Unit to memory and back.
	if m.PathCost(UnitLoc("U1"), MemLoc("DM")) != 1 {
		t.Error("U1->DM should cost 1")
	}
	if m.PathCost(MemLoc("DM"), UnitLoc("U3")) != 1 {
		t.Error("DM->U3 should cost 1")
	}
	// Self-transfer is free.
	if m.PathCost(UnitLoc("U1"), UnitLoc("U1")) != 0 {
		t.Error("U1->U1 should cost 0")
	}
	if !m.Reachable(UnitLoc("U2"), UnitLoc("U3")) {
		t.Error("U2->U3 should be reachable")
	}
}

func TestTransferPathsMultiHop(t *testing.T) {
	// A chain machine: U1 -> U2 -> U3 with no direct U1->U3 path.
	m := NewMachine("Chain")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpAdd)
	m.AddUnit("U3", 4, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("B12", 1)
	m.AddBus("B23", 1)
	m.AddTransfer(UnitLoc("U1"), UnitLoc("U2"), "B12")
	m.AddTransfer(UnitLoc("U2"), UnitLoc("U3"), "B23")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	ps := m.TransferPaths(UnitLoc("U1"), UnitLoc("U3"))
	if len(ps) != 1 || len(ps[0]) != 2 {
		t.Fatalf("U1->U3: got %v, want one 2-hop path", ps)
	}
	if ps[0][0].To != UnitLoc("U2") {
		t.Errorf("first hop goes to %v, want U2", ps[0][0].To)
	}
	// No reverse path exists.
	if m.Reachable(UnitLoc("U3"), UnitLoc("U1")) {
		t.Error("U3->U1 should be unreachable")
	}
	if m.PathCost(UnitLoc("U3"), UnitLoc("U1")) != -1 {
		t.Error("unreachable PathCost should be -1")
	}
}

func TestTransferPathsAlternatives(t *testing.T) {
	// Two parallel buses between U1 and U2: both 1-hop paths must appear.
	m := NewMachine("Dual")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("BA", 1)
	m.AddBus("BB", 1)
	m.AddTransfer(UnitLoc("U1"), UnitLoc("U2"), "BA")
	m.AddTransfer(UnitLoc("U1"), UnitLoc("U2"), "BB")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	ps := m.TransferPaths(UnitLoc("U1"), UnitLoc("U2"))
	if len(ps) != 2 {
		t.Fatalf("got %d paths, want 2 alternatives", len(ps))
	}
	buses := map[string]bool{}
	for _, p := range ps {
		buses[p[0].Bus] = true
	}
	if !buses["BA"] || !buses["BB"] {
		t.Errorf("alternative paths = %v, want both BA and BB", buses)
	}
}

func TestCheckGroup(t *testing.T) {
	m := ExampleArch(4)
	ok := []SlotRef{{Unit: "U1", Op: ir.OpAdd}, {Unit: "U2", Op: ir.OpMul}}
	if err := m.CheckGroup(ok, nil); err != nil {
		t.Errorf("legal group rejected: %v", err)
	}
	// Unit used twice.
	dup := []SlotRef{{Unit: "U1", Op: ir.OpAdd}, {Unit: "U1", Op: ir.OpSub}}
	if err := m.CheckGroup(dup, nil); err == nil {
		t.Error("double-issue on U1 accepted")
	}
	// Op the unit cannot perform.
	bad := []SlotRef{{Unit: "U3", Op: ir.OpSub}}
	if err := m.CheckGroup(bad, nil); err == nil {
		t.Error("SUB on U3 accepted")
	}
	// Bus over width.
	if err := m.CheckGroup(nil, map[string]int{"DB": 2}); err == nil {
		t.Error("2 transfers on width-1 bus accepted")
	}
	if err := m.CheckGroup(nil, map[string]int{"DB": 1}); err != nil {
		t.Errorf("1 transfer on width-1 bus rejected: %v", err)
	}
	// Unknown unit / bus.
	if err := m.CheckGroup([]SlotRef{{Unit: "U9", Op: ir.OpAdd}}, nil); err == nil {
		t.Error("unknown unit accepted")
	}
	if err := m.CheckGroup(nil, map[string]int{"ZZ": 1}); err == nil {
		t.Error("unknown bus accepted")
	}
}

func TestExplicitConstraint(t *testing.T) {
	m := WideDSP(4)
	viol := []SlotRef{{Unit: "M1", Op: ir.OpMul}, {Unit: "M2", Op: ir.OpMul}}
	if err := m.CheckGroup(viol, nil); err == nil {
		t.Error("constrained MUL/MUL co-issue accepted")
	}
	// Only one of the constrained slots present: fine.
	if err := m.CheckGroup(viol[:1], nil); err != nil {
		t.Errorf("single MUL rejected: %v", err)
	}
	// M1.MUL with M2.DIV is not constrained.
	mix := []SlotRef{{Unit: "M1", Op: ir.OpMul}, {Unit: "M2", Op: ir.OpDiv}}
	if err := m.CheckGroup(mix, nil); err != nil {
		t.Errorf("unconstrained mix rejected: %v", err)
	}
}

func TestFinalizeValidation(t *testing.T) {
	m := NewMachine("empty")
	if err := m.Finalize(); err == nil {
		t.Error("machine with no units finalized")
	}

	m = NewMachine("dup")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U1", 4, ir.OpSub)
	if err := m.Finalize(); err == nil {
		t.Error("duplicate unit accepted")
	}

	m = NewMachine("zeroregs")
	m.AddUnit("U1", 0, ir.OpAdd)
	if err := m.Finalize(); err == nil {
		t.Error("zero-register unit accepted")
	}

	m = NewMachine("badtransfer")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddBus("B", 1)
	m.AddTransfer(UnitLoc("U1"), UnitLoc("UX"), "B")
	if err := m.Finalize(); err == nil {
		t.Error("transfer to unknown unit accepted")
	}

	m = NewMachine("badbus")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpAdd)
	m.AddTransfer(UnitLoc("U1"), UnitLoc("U2"), "NOPE")
	if err := m.Finalize(); err == nil {
		t.Error("transfer over unknown bus accepted")
	}

	m = NewMachine("badconstraint")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddConstraint(SlotRef{Unit: "U1", Op: ir.OpMul})
	if err := m.Finalize(); err == nil {
		t.Error("constraint on unsupported op accepted")
	}
}

func TestSupportsDAG(t *testing.T) {
	m := ExampleArch(4)
	bb := ir.NewBuilder("b")
	bb.Store("o", bb.Add(bb.Load("a"), bb.Load("b")))
	bb.Return()
	if err := m.SupportsDAG(bb.Finish()); err != nil {
		t.Errorf("ADD block rejected: %v", err)
	}
	bb2 := ir.NewBuilder("b2")
	bb2.Store("o", bb2.Op(ir.OpDiv, bb2.Load("a"), bb2.Load("b")))
	bb2.Return()
	if err := m.SupportsDAG(bb2.Finish()); err == nil {
		t.Error("DIV block accepted on machine without DIV")
	}
}

func TestCloneAndMutate(t *testing.T) {
	m := ExampleArch(4)
	c := m.Clone("Derived")
	if !c.RemoveUnit("U3") {
		t.Fatal("RemoveUnit(U3) failed")
	}
	delete(c.Unit("U1").Ops, ir.OpSub)
	c.SetRegFileSize(2)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Derived machine matches ArchitectureII structure.
	if c.Unit("U3") != nil || c.Unit("U1").Can(ir.OpSub) {
		t.Error("clone mutation incomplete")
	}
	if c.Unit("U2").Regs.Size != 2 {
		t.Error("SetRegFileSize did not apply")
	}
	// Original untouched.
	if m.Unit("U3") == nil || !m.Unit("U1").Can(ir.OpSub) || m.Unit("U2").Regs.Size != 4 {
		t.Error("Clone mutated the original")
	}
	// Transfers touching U3 removed from clone.
	for _, tr := range c.Transfers {
		if tr.From == UnitLoc("U3") || tr.To == UnitLoc("U3") {
			t.Errorf("stale transfer %s", tr)
		}
	}
	if c.RemoveUnit("U9") {
		t.Error("RemoveUnit of unknown unit returned true")
	}
}

func TestParseExampleISDL(t *testing.T) {
	m, err := Parse(ExampleArchISDL)
	if err != nil {
		t.Fatal(err)
	}
	ref := ExampleArch(4)
	if m.Name != ref.Name {
		t.Errorf("name = %s, want %s", m.Name, ref.Name)
	}
	if len(m.Units) != len(ref.Units) {
		t.Fatalf("units = %d, want %d", len(m.Units), len(ref.Units))
	}
	for i, u := range m.Units {
		ru := ref.Units[i]
		if u.Name != ru.Name || u.Regs.Size != ru.Regs.Size || len(u.Ops) != len(ru.Ops) {
			t.Errorf("unit %s differs from reference %s", u.Name, ru.Name)
		}
	}
	if len(m.Transfers) != len(ref.Transfers) {
		t.Errorf("transfers = %d, want %d", len(m.Transfers), len(ref.Transfers))
	}
}

func TestParseFullFeatures(t *testing.T) {
	src := `
machine Full
// units
unit A { regs 8 ops ADD SUB MUL MAC }
unit B { regs 8 ops ADD DIV }
memory DM
memory CM
bus X width 2
transfer A -> B via X
transfer B -> A via X
transfer DM -> A via X
transfer A -> DM via X
constraint !(A.MUL & B.DIV)
pattern A.MAC = ADD(_, MUL(_, _))
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bus("X").Width != 2 {
		t.Error("bus width not parsed")
	}
	if len(m.Memories) != 2 {
		t.Errorf("memories = %d, want 2", len(m.Memories))
	}
	if len(m.Constraints) != 1 || len(m.Constraints[0].Forbid) != 2 {
		t.Errorf("constraint parsing wrong: %v", m.Constraints)
	}
	if len(m.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(m.Patterns))
	}
	p := m.Patterns[0]
	if p.Result != ir.OpMAC || p.Unit != "A" || p.Tree.Op != ir.OpAdd {
		t.Errorf("pattern = %v", p)
	}
	// Memory location parsed as memory, not unit.
	found := false
	for _, tr := range m.Transfers {
		if tr.From == MemLoc("DM") && tr.To == UnitLoc("A") {
			found = true
		}
	}
	if !found {
		t.Error("DM -> A transfer missing or mis-typed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                      // no machine keyword
		"machine",                               // missing name
		"machine M\nunit U1 { ops ADD }",        // missing regs
		"machine M\nunit U1 { regs 4 }junk",     // unknown keyword
		"machine M\nbus B",                      // missing width
		"machine M\nunit U1 { regs 4 ops ZZZ }", // unknown op
		"machine M\nunit U1 { regs 4 ops ADD }\nconstraint (U1.ADD)", // missing !
		"machine M\nunit U1 { regs 4 ops ADD",                        // unterminated
		"machine M\nunit U1 { regs 4 ops ADD }\ntransfer U1 -> U2 via",
		"machine M\nunit U1 { regs 4 ops MAC ADD MUL }\npattern U1.MAC = ADD(_, MUL(_))", // arity
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid input:\n%s", src)
		}
	}
}

func TestPatternValidate(t *testing.T) {
	m := NewMachine("P")
	m.AddUnit("U1", 4, ir.OpAdd, ir.OpMul, ir.OpMAC)
	m.AddMemory("DM")
	m.AddBus("B", 1)
	m.ConnectAll("B")
	m.Patterns = append(m.Patterns, MACPattern("U1"))
	if err := m.Finalize(); err != nil {
		t.Fatalf("valid MAC pattern rejected: %v", err)
	}
	// Pattern on a unit that lacks the result op.
	m2 := NewMachine("P2")
	m2.AddUnit("U1", 4, ir.OpAdd, ir.OpMul)
	m2.Patterns = append(m2.Patterns, MACPattern("U1"))
	if err := m2.Finalize(); err == nil {
		t.Error("pattern with unsupported result op accepted")
	}
	// Wrong wildcard count.
	m3 := NewMachine("P3")
	m3.AddUnit("U1", 4, ir.OpAdd, ir.OpMAC)
	m3.Patterns = append(m3.Patterns, Pattern{
		Result: ir.OpMAC, Unit: "U1",
		Tree: &PatTree{Op: ir.OpAdd, Kids: []*PatTree{nil, nil}},
	})
	if err := m3.Finalize(); err == nil {
		t.Error("pattern with 2 wildcards for 3-ary MAC accepted")
	}
}

func TestMatchPattern(t *testing.T) {
	bb := ir.NewBuilder("b")
	a := bb.Load("a")
	x := bb.Load("x")
	y := bb.Load("y")
	mul := bb.Mul(x, y)
	add := bb.Add(a, mul)
	bb.Store("o", add)
	bb.Return()
	blk := bb.Finish()
	users := blk.Users()

	pat := MACPattern("U1")
	ops, absorbed, ok := MatchPattern(pat.Tree, add, users)
	if !ok {
		t.Fatal("MAC pattern did not match a + x*y")
	}
	if len(ops) != 3 {
		t.Fatalf("got %d operands, want 3", len(ops))
	}
	if ops[0] != a || ops[1] != x || ops[2] != y {
		t.Errorf("operands bound wrong: %v", ops)
	}
	if len(absorbed) != 2 {
		t.Errorf("absorbed %d nodes, want 2 (ADD and MUL)", len(absorbed))
	}

	// Multiply-used interior node must block the match.
	bb2 := ir.NewBuilder("b2")
	a2 := bb2.Load("a")
	m2 := bb2.Mul(bb2.Load("x"), bb2.Load("y"))
	add2 := bb2.Add(a2, m2)
	bb2.Store("o", add2)
	bb2.Store("keep", m2) // second use of the MUL
	bb2.Return()
	blk2 := bb2.Finish()
	var addNode *ir.Node
	for _, n := range blk2.Nodes {
		if n.Op == ir.OpAdd {
			addNode = n
		}
	}
	if _, _, ok := MatchPattern(pat.Tree, addNode, blk2.Users()); ok {
		t.Error("pattern matched despite multiply-used interior MUL")
	}
}

func TestDescribe(t *testing.T) {
	out := ExampleArch(4).Describe()
	for _, want := range []string{
		"machine ExampleVLIW", "unit U1", "ADD,COMPL,SUB",
		"memory DM", "bus DB width=1",
		"op -> units database", "MUL    -> U2,U3",
		"transfer path database", "U1 => DM(mem)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
	w := WideDSP(4).Describe()
	for _, want := range []string{"constraint !(M1.MUL & M2.MUL)", "pattern M1.MAC"} {
		if !strings.Contains(w, want) {
			t.Errorf("WideDSP Describe missing %q", want)
		}
	}
}

// Property: on a fully connected machine every ordered pair of distinct
// locations has exactly one minimal path of one hop.
func TestQuickFullCrossbarPaths(t *testing.T) {
	m := ExampleArch(4)
	locs := []Loc{UnitLoc("U1"), UnitLoc("U2"), UnitLoc("U3"), MemLoc("DM")}
	prop := func(i, j uint8) bool {
		a := locs[int(i)%len(locs)]
		b := locs[int(j)%len(locs)]
		ps := m.TransferPaths(a, b)
		if a == b {
			return len(ps) == 1 && len(ps[0]) == 0
		}
		return len(ps) == 1 && len(ps[0]) == 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: CheckGroup never accepts a group where two slots share a unit.
func TestQuickCheckGroupUnitExclusive(t *testing.T) {
	m := ExampleArch(4)
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpCompl}
	units := []string{"U1", "U2", "U3"}
	prop := func(u1, u2, o1, o2 uint8) bool {
		s1 := SlotRef{Unit: units[int(u1)%3], Op: ops[int(o1)%4]}
		s2 := SlotRef{Unit: units[int(u2)%3], Op: ops[int(o2)%4]}
		err := m.CheckGroup([]SlotRef{s1, s2}, nil)
		if s1.Unit == s2.Unit && err == nil {
			return false // same unit twice must be rejected
		}
		canBoth := m.Unit(s1.Unit).Can(s1.Op) && m.Unit(s2.Unit).Can(s2.Op)
		if s1.Unit != s2.Unit && canBoth && err != nil {
			return false // different units, supported ops: must be legal
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHardwareCost(t *testing.T) {
	big := ExampleArch(4).HardwareCost()
	small := ArchitectureII(4).HardwareCost()
	if small >= big {
		t.Errorf("ArchII cost %d !< ExampleArch cost %d", small, big)
	}
	fewRegs := ExampleArch(2).HardwareCost()
	if fewRegs >= big {
		t.Errorf("2-reg cost %d !< 4-reg cost %d", fewRegs, big)
	}
	wide := ExampleArch(4)
	wide.Bus("DB").Width = 2
	if wide.HardwareCost() <= big {
		t.Error("wider bus should cost more")
	}
}

func TestSharedBanks(t *testing.T) {
	m := ClusteredVLIW(4)
	if m.BankOf("A0") != "C0" || m.BankOf("M0") != "C0" {
		t.Errorf("cluster 0 banks: %s %s", m.BankOf("A0"), m.BankOf("M0"))
	}
	if m.BankOf("A1") != "C1" {
		t.Errorf("A1 bank = %s", m.BankOf("A1"))
	}
	if got := m.Banks(); len(got) != 2 || got[0] != "C0" || got[1] != "C1" {
		t.Errorf("Banks = %v", got)
	}
	if m.BankSize("C0") != 4 || m.BankSize("nope") != 0 {
		t.Errorf("BankSize wrong")
	}
	// Same bank: zero-cost "transfer"; cross cluster: one hop on XB.
	if m.PathCost(UnitLoc("C0"), UnitLoc("C0")) != 0 {
		t.Error("intra-bank cost != 0")
	}
	if m.PathCost(UnitLoc("C0"), UnitLoc("C1")) != 1 {
		t.Error("inter-cluster cost != 1")
	}
	// Inconsistent shared sizes rejected.
	bad := NewMachine("bad")
	bad.AddUnit("X", 4, ir.OpAdd)
	bad.AddUnit("Y", 2, ir.OpMul)
	bad.Unit("X").Regs.Name = "B"
	bad.Unit("Y").Regs.Name = "B"
	if err := bad.Finalize(); err == nil {
		t.Error("inconsistent bank sizes accepted")
	}
	// ShareBank on unknown unit errors.
	if err := ClusteredVLIW(4).ShareBank("Z", 4, "NOPE"); err == nil {
		t.Error("ShareBank accepted unknown unit")
	}
}

func TestParseBankKeyword(t *testing.T) {
	src := `
machine Clustered
unit A0 { regs 4 bank C0 ops ADD SUB }
unit M0 { regs 4 bank C0 ops MUL }
memory DM
bus DB width 1
transfer DM -> C0 via DB
transfer C0 -> DM via DB
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.BankOf("A0") != "C0" || m.BankOf("M0") != "C0" {
		t.Errorf("parsed banks: %s %s", m.BankOf("A0"), m.BankOf("M0"))
	}
	if len(m.Banks()) != 1 {
		t.Errorf("Banks = %v", m.Banks())
	}
}

func TestDualMemDSPStructure(t *testing.T) {
	m := DualMemDSP(4)
	if len(m.Memories) != 2 {
		t.Fatalf("memories = %d, want 2", len(m.Memories))
	}
	// XM reachable over BX, YM over BY, from both units' banks.
	for _, u := range []string{"ALU", "MAC"} {
		bank := UnitLoc(m.BankOf(u))
		px := m.TransferPaths(MemLoc("XM"), bank)
		py := m.TransferPaths(MemLoc("YM"), bank)
		if len(px) == 0 || px[0][0].Bus != "BX" {
			t.Errorf("%s: XM path %v", u, px)
		}
		if len(py) == 0 || py[0][0].Bus != "BY" {
			t.Errorf("%s: YM path %v", u, py)
		}
	}
	// The MAC pattern is registered.
	if len(m.Patterns) != 1 || m.Patterns[0].Result != ir.OpMAC {
		t.Errorf("patterns = %v", m.Patterns)
	}
}

func TestDescribeLatencyAndBanks(t *testing.T) {
	m := ExampleArch(4)
	m.Unit("U2").SetLatency(ir.OpMul, 3)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	out := m.Describe()
	if !strings.Contains(out, "MUL:3") {
		t.Errorf("Describe missing latency annotation:\n%s", out)
	}
	c := ClusteredVLIW(4)
	outC := c.Describe()
	if !strings.Contains(outC, "bank=C0") {
		t.Errorf("Describe missing bank annotation:\n%s", outC)
	}
}

func TestParseLatencyErrors(t *testing.T) {
	bad := []string{
		"machine M\nunit U { regs 4 ops MUL: }",  // missing number
		"machine M\nunit U { regs 4 ops MUL:0 }", // zero latency
		"machine M\nunit U { regs 4 bank }",      // missing bank name
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid latency/bank syntax:\n%s", src)
		}
	}
}
