package isdl

import "sort"

// maxPathHops bounds multi-step transfer path expansion. Real machines
// need at most a few hops (unit -> shared bus -> unit); three covers every
// architecture we model while keeping the closure small.
const maxPathHops = 3

// buildPaths computes, for every ordered pair of locations, the set of
// minimal-length transfer paths between them (the expanded transfer
// database of Sec. II). Only paths of the minimum hop count for a pair are
// kept; longer alternatives can never be preferable under the paper's
// cost model (each hop costs one transfer slot).
func (m *Machine) buildPaths() {
	var locs []Loc
	for _, bank := range m.Banks() {
		locs = append(locs, UnitLoc(bank))
	}
	for _, mem := range m.Memories {
		locs = append(locs, MemLoc(mem.Name))
	}

	// Adjacency: direct transfers out of each location.
	out := make(map[Loc][]Transfer)
	for _, t := range m.Transfers {
		out[t.From] = append(out[t.From], t)
	}

	m.paths = make(map[[2]Loc][][]Transfer)
	for _, src := range locs {
		// Breadth-first enumeration of all simple paths from src up to
		// maxPathHops, keeping only minimal-length ones per destination.
		type state struct {
			at   Loc
			path []Transfer
		}
		frontier := []state{{at: src}}
		bestLen := make(map[Loc]int)
		for hops := 1; hops <= maxPathHops && len(frontier) > 0; hops++ {
			var next []state
			for _, s := range frontier {
				for _, t := range out[s.at] {
					if t.To == src || onPath(s.path, t.To) {
						continue // simple paths only
					}
					np := make([]Transfer, len(s.path), len(s.path)+1)
					copy(np, s.path)
					np = append(np, t)
					if bl, seen := bestLen[t.To]; !seen || len(np) == bl {
						if !seen {
							bestLen[t.To] = len(np)
						}
						key := [2]Loc{src, t.To}
						m.paths[key] = append(m.paths[key], np)
					}
					next = append(next, state{at: t.To, path: np})
				}
			}
			frontier = next
		}
		// Deterministic order: by bus names along the path.
		for dst := range bestLen {
			key := [2]Loc{src, dst}
			ps := m.paths[key]
			// Drop non-minimal paths that slipped in via later frontier
			// expansion of equal-length prefixes.
			min := bestLen[dst]
			var keep [][]Transfer
			for _, p := range ps {
				if len(p) == min {
					keep = append(keep, p)
				}
			}
			sort.Slice(keep, func(i, j int) bool { return pathKey(keep[i]) < pathKey(keep[j]) })
			m.paths[key] = keep
		}
	}
}

func onPath(path []Transfer, l Loc) bool {
	for _, t := range path {
		if t.To == l || t.From == l {
			return true
		}
	}
	return false
}

func pathKey(p []Transfer) string {
	k := ""
	for _, t := range p {
		k += t.From.String() + ">" + t.To.String() + "/" + t.Bus + ";"
	}
	return k
}

// TransferPaths returns all minimal-hop transfer paths from one location
// to another. An empty result means the destination is unreachable; a
// from==to query returns a single empty path (no transfer needed).
func (m *Machine) TransferPaths(from, to Loc) [][]Transfer {
	if from == to {
		return [][]Transfer{nil}
	}
	return m.paths[[2]Loc{from, to}]
}

// Reachable reports whether a value at from can be moved to to.
func (m *Machine) Reachable(from, to Loc) bool {
	return len(m.TransferPaths(from, to)) > 0
}

// PathCost returns the hop count of the shortest path between locations,
// or -1 if unreachable. from==to costs 0.
func (m *Machine) PathCost(from, to Loc) int {
	ps := m.TransferPaths(from, to)
	if len(ps) == 0 {
		return -1
	}
	return len(ps[0])
}
