package isdl

import "crypto/sha256"

// Fingerprint returns a content hash of the machine description and its
// derived databases. It is computed from Describe(), which renders the
// units (register files, shared banks, op latencies), memories, buses,
// constraints, complex-instruction patterns, the op-to-unit correlation
// database, and the expanded transfer-path database in a deterministic
// order — everything code generation reads. Machines with equal
// fingerprints compile any block identically, which makes the
// fingerprint usable as a compile-cache key component.
func (m *Machine) Fingerprint() [sha256.Size]byte {
	return sha256.Sum256([]byte(m.Describe()))
}
