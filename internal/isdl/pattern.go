package isdl

import (
	"fmt"
	"strings"

	"aviv/internal/ir"
)

// PatTree is a tree shape over basic operations that a complex instruction
// covers. A nil child is a wildcard matching any operand subtree.
type PatTree struct {
	Op   ir.Op
	Kids []*PatTree
}

func (t *PatTree) String() string {
	if t == nil {
		return "_"
	}
	if len(t.Kids) == 0 {
		return t.Op.String()
	}
	parts := make([]string, len(t.Kids))
	for i, k := range t.Kids {
		parts[i] = k.String()
	}
	return t.Op.String() + "(" + strings.Join(parts, ", ") + ")"
}

// Pattern declares that the machine op Result, executed on Unit, computes
// the basic-operation tree Tree in a single operation (a complex
// instruction, Sec. III-B). Wildcard leaves of Tree become the operands of
// Result, in left-to-right order.
type Pattern struct {
	Result ir.Op
	Unit   string
	Tree   *PatTree
}

func (p Pattern) String() string {
	return fmt.Sprintf("%s.%s = %s", p.Unit, p.Result, p.Tree)
}

func (p Pattern) validate(m *Machine) error {
	u := m.Unit(p.Unit)
	if u == nil {
		return fmt.Errorf("unknown unit %s", p.Unit)
	}
	if !u.Can(p.Result) {
		return fmt.Errorf("unit %s does not perform %s", p.Unit, p.Result)
	}
	if p.Tree == nil {
		return fmt.Errorf("empty pattern tree")
	}
	wilds := countWilds(p.Tree)
	if wilds != p.Result.Arity() {
		return fmt.Errorf("tree has %d operands, %s takes %d", wilds, p.Result, p.Result.Arity())
	}
	return checkTree(p.Tree)
}

func countWilds(t *PatTree) int {
	if t == nil {
		return 1
	}
	n := 0
	for _, k := range t.Kids {
		n += countWilds(k)
	}
	return n
}

func checkTree(t *PatTree) error {
	if t == nil {
		return nil
	}
	if len(t.Kids) != t.Op.Arity() {
		return fmt.Errorf("pattern node %s has %d children, op takes %d", t.Op, len(t.Kids), t.Op.Arity())
	}
	for _, k := range t.Kids {
		if err := checkTree(k); err != nil {
			return err
		}
	}
	return nil
}

// MatchPattern tests whether the DAG rooted at n matches the pattern tree.
// Interior pattern nodes may only match DAG nodes whose value is not used
// elsewhere (single user), since covering them with one complex
// instruction makes their intermediate value unavailable. The root itself
// may be multiply used. On success it returns the DAG nodes bound to the
// wildcard leaves (the complex op's operands) and the interior nodes the
// pattern absorbs (including the root).
func MatchPattern(t *PatTree, n *ir.Node, users map[*ir.Node][]*ir.Node) (operands, absorbed []*ir.Node, ok bool) {
	return matchTree(t, n, users, true)
}

func matchTree(t *PatTree, n *ir.Node, users map[*ir.Node][]*ir.Node, isRoot bool) (operands, absorbed []*ir.Node, ok bool) {
	if t == nil {
		return []*ir.Node{n}, nil, true
	}
	if n.Op != t.Op {
		return nil, nil, false
	}
	if !isRoot && len(users[n]) > 1 {
		return nil, nil, false
	}
	absorbed = []*ir.Node{n}
	for i, k := range t.Kids {
		ops, abs, kOK := matchTree(k, n.Args[i], users, false)
		if !kOK {
			return nil, nil, false
		}
		operands = append(operands, ops...)
		absorbed = append(absorbed, abs...)
	}
	return operands, absorbed, true
}

// MACPattern returns the canonical multiply-accumulate pattern
// a + b*c executed as MAC on the given unit.
func MACPattern(unit string) Pattern {
	return Pattern{
		Result: ir.OpMAC,
		Unit:   unit,
		Tree: &PatTree{
			Op:   ir.OpAdd,
			Kids: []*PatTree{nil, {Op: ir.OpMul, Kids: []*PatTree{nil, nil}}},
		},
	}
}
