package isdl

import "testing"

// TestMachineFingerprint checks the compile-cache machine key: a machine
// hashes stably across calls, and every stock architecture (and register
// count) hashes apart.
func TestMachineFingerprint(t *testing.T) {
	if ExampleArch(4).Fingerprint() != ExampleArch(4).Fingerprint() {
		t.Fatal("same machine hashes differently")
	}
	seen := map[[32]byte]string{}
	for _, m := range []*Machine{
		ExampleArch(4), ExampleArch(2), ArchitectureII(4), SingleIssueDSP(4),
		WideDSP(4), ClusteredVLIW(4), DualMemDSP(4), ExampleArchFull(4),
	} {
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("machines %q and %q collide", m.Name, prev)
		}
		seen[fp] = m.Name
	}
}
