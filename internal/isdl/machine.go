// Package isdl models target processor descriptions in the spirit of ISDL
// (Instruction Set Description Language, Hadjiyiannis/Hanono/Devadas,
// DAC 1997), covering the subset the AVIV code generator consumes:
//
//   - functional units with their operation repertoires,
//   - one register file (bank) per unit,
//   - data memories,
//   - buses and the data-transfer paths they provide (expanded to
//     multi-step paths, Sec. II of the paper),
//   - constraints marking illegal operation groupings (Sec. IV-C.3), and
//   - complex-instruction patterns (Sec. III-B).
//
// A Machine is built either programmatically (Builder methods) or from a
// textual description (Parse). Finalize derives the databases the code
// generator uses: the op→unit correlation and the transfer-path closure.
package isdl

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
)

// LocKind distinguishes value locations.
type LocKind uint8

// Location kinds: a functional unit's register file, or a data memory.
const (
	LocUnit LocKind = iota
	LocMem
)

// Loc names a place a value can live: a unit's register file or a memory.
type Loc struct {
	Kind LocKind
	Name string
}

// UnitLoc returns the location of the named unit's register file.
func UnitLoc(name string) Loc { return Loc{LocUnit, name} }

// MemLoc returns the location of the named memory.
func MemLoc(name string) Loc { return Loc{LocMem, name} }

func (l Loc) String() string {
	if l.Kind == LocMem {
		return l.Name + "(mem)"
	}
	return l.Name
}

// RegFile names the register bank a functional unit reads and writes.
// By default every unit has a private bank named after the unit; units
// may share a bank (ShareBank), modeling clustered VLIWs where several
// units address one file — values then move between such units without a
// data transfer.
type RegFile struct {
	Name string // bank name; defaults to the owning unit's name
	Size int    // number of registers
}

// Unit is a functional unit: it issues one operation per cycle drawn
// from Ops, reading and writing its own register file. Operations
// complete after their latency (default 1 cycle); the machine has no
// interlocks, so the code generator must separate dependent operations
// by the producer's latency, padding with NOPs when nothing else fits —
// multi-cycle operations therefore cost code size, exactly the currency
// the paper optimizes.
type Unit struct {
	Name string
	Ops  map[ir.Op]bool
	Regs RegFile
	// Latency gives per-op result latencies in cycles; absent entries
	// default to 1.
	Latency map[ir.Op]int
}

// Can reports whether the unit can perform op.
func (u *Unit) Can(op ir.Op) bool { return u.Ops[op] }

// LatencyOf returns the result latency of op on this unit (≥ 1).
func (u *Unit) LatencyOf(op ir.Op) int {
	if l, ok := u.Latency[op]; ok && l > 0 {
		return l
	}
	return 1
}

// SetLatency declares a multi-cycle operation.
func (u *Unit) SetLatency(op ir.Op, cycles int) {
	if u.Latency == nil {
		u.Latency = make(map[ir.Op]int)
	}
	u.Latency[op] = cycles
}

// OpList returns the unit's operations sorted by name.
func (u *Unit) OpList() []ir.Op {
	ops := make([]ir.Op, 0, len(u.Ops))
	for op := range u.Ops {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	return ops
}

// Memory is a data memory reachable over the transfer network.
type Memory struct {
	Name string
}

// Bus is a transfer resource. Width bounds how many transfers may ride the
// bus within a single (VLIW) instruction.
type Bus struct {
	Name  string
	Width int
}

// Transfer is a single-step data-transfer capability: a value can move
// From -> To over Bus, costing one transfer slot in one instruction.
type Transfer struct {
	From, To Loc
	Bus      string
}

func (t Transfer) String() string {
	return fmt.Sprintf("%s -> %s via %s", t.From, t.To, t.Bus)
}

// SlotRef names one (unit, op) pairing inside an instruction, used by
// constraints.
type SlotRef struct {
	Unit string
	Op   ir.Op
}

func (s SlotRef) String() string { return s.Unit + "." + s.Op.String() }

// Constraint forbids an instruction that simultaneously contains all the
// listed slots. This mirrors ISDL's "everything is orthogonal unless
// explicitly constrained" philosophy (Sec. V-C of the paper).
type Constraint struct {
	Forbid []SlotRef
}

func (c Constraint) String() string {
	parts := make([]string, len(c.Forbid))
	for i, s := range c.Forbid {
		parts[i] = s.String()
	}
	return "!(" + strings.Join(parts, " & ") + ")"
}

// Machine is a complete target processor description.
type Machine struct {
	Name        string
	Units       []*Unit
	Memories    []*Memory
	Buses       []*Bus
	Transfers   []Transfer
	Constraints []Constraint
	Patterns    []Pattern

	// Derived databases, built by Finalize.
	banks      []string
	bankSize   map[string]int
	unitByName map[string]*Unit
	busByName  map[string]*Bus
	memByName  map[string]*Memory
	opUnits    map[ir.Op][]*Unit // op -> units that can perform it
	paths      map[[2]Loc][][]Transfer
	finalized  bool
}

// NewMachine returns an empty machine description.
func NewMachine(name string) *Machine {
	return &Machine{Name: name}
}

// AddUnit adds a functional unit with a private register file of regs
// registers supporting the given operations.
func (m *Machine) AddUnit(name string, regs int, ops ...ir.Op) *Unit {
	u := &Unit{
		Name: name,
		Ops:  make(map[ir.Op]bool, len(ops)),
		Regs: RegFile{Name: name, Size: regs},
	}
	for _, op := range ops {
		u.Ops[op] = true
	}
	m.Units = append(m.Units, u)
	m.finalized = false
	return u
}

// ShareBank places the named units on one shared register bank of the
// given size. Values produced by any sharing unit are directly readable
// by the others — no data transfer needed.
func (m *Machine) ShareBank(bank string, size int, units ...string) error {
	for _, name := range units {
		u := m.Unit(name)
		if u == nil {
			return fmt.Errorf("isdl: ShareBank: unknown unit %s", name)
		}
		u.Regs = RegFile{Name: bank, Size: size}
	}
	m.finalized = false
	return nil
}

// BankOf returns the register bank name the unit uses.
func (m *Machine) BankOf(unit string) string {
	u := m.Unit(unit)
	if u == nil {
		return ""
	}
	return u.Regs.Name
}

// BankSize returns the size of the named register bank, or 0 if unknown.
func (m *Machine) BankSize(bank string) int {
	if m.bankSize != nil {
		return m.bankSize[bank]
	}
	for _, u := range m.Units {
		if u.Regs.Name == bank {
			return u.Regs.Size
		}
	}
	return 0
}

// Banks returns the machine's register bank names in first-declaration
// order.
func (m *Machine) Banks() []string {
	if m.banks != nil {
		return m.banks
	}
	var out []string
	seen := map[string]bool{}
	for _, u := range m.Units {
		if !seen[u.Regs.Name] {
			seen[u.Regs.Name] = true
			out = append(out, u.Regs.Name)
		}
	}
	return out
}

// AddMemory adds a data memory.
func (m *Machine) AddMemory(name string) *Memory {
	mem := &Memory{Name: name}
	m.Memories = append(m.Memories, mem)
	m.finalized = false
	return mem
}

// AddBus adds a transfer bus carrying up to width transfers per instruction.
func (m *Machine) AddBus(name string, width int) *Bus {
	b := &Bus{Name: name, Width: width}
	m.Buses = append(m.Buses, b)
	m.finalized = false
	return b
}

// AddTransfer declares a one-directional transfer path.
func (m *Machine) AddTransfer(from, to Loc, bus string) {
	m.Transfers = append(m.Transfers, Transfer{From: from, To: to, Bus: bus})
	m.finalized = false
}

// ConnectAll declares a full crossbar over the given bus: every unit and
// memory can transfer to every other. This is the paper's example
// architecture ("a databus that connects all units and memories").
func (m *Machine) ConnectAll(bus string) {
	var locs []Loc
	seen := map[string]bool{}
	for _, u := range m.Units {
		if !seen[u.Regs.Name] {
			seen[u.Regs.Name] = true
			locs = append(locs, UnitLoc(u.Regs.Name))
		}
	}
	for _, mem := range m.Memories {
		locs = append(locs, MemLoc(mem.Name))
	}
	for _, a := range locs {
		for _, b := range locs {
			if a != b {
				m.AddTransfer(a, b, bus)
			}
		}
	}
}

// AddConstraint forbids the simultaneous issue of all the given slots.
func (m *Machine) AddConstraint(slots ...SlotRef) {
	m.Constraints = append(m.Constraints, Constraint{Forbid: slots})
}

// Unit returns the named unit, or nil.
func (m *Machine) Unit(name string) *Unit {
	if m.unitByName != nil {
		return m.unitByName[name]
	}
	for _, u := range m.Units {
		if u.Name == name {
			return u
		}
	}
	return nil
}

// Bus returns the named bus, or nil.
func (m *Machine) Bus(name string) *Bus {
	if m.busByName != nil {
		return m.busByName[name]
	}
	for _, b := range m.Buses {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// DataMemory returns the machine's first data memory, which the code
// generator uses for variables and spills.
func (m *Machine) DataMemory() *Memory {
	if len(m.Memories) == 0 {
		return nil
	}
	return m.Memories[0]
}

// UnitsFor returns the units able to perform op (the op→unit database of
// Sec. II), in declaration order. Finalize must have been called.
func (m *Machine) UnitsFor(op ir.Op) []*Unit {
	return m.opUnits[op]
}

// Finalize validates the description and builds the derived databases.
// It must be called before the machine is used for code generation, and
// again after any mutation.
func (m *Machine) Finalize() error {
	m.unitByName = make(map[string]*Unit, len(m.Units))
	m.busByName = make(map[string]*Bus, len(m.Buses))
	m.memByName = make(map[string]*Memory, len(m.Memories))

	if len(m.Units) == 0 {
		return fmt.Errorf("isdl: machine %s has no functional units", m.Name)
	}
	m.banks = nil
	m.bankSize = make(map[string]int)
	for _, u := range m.Units {
		if _, dup := m.unitByName[u.Name]; dup {
			return fmt.Errorf("isdl: duplicate unit %s", u.Name)
		}
		if u.Regs.Size < 1 {
			return fmt.Errorf("isdl: unit %s has %d registers", u.Name, u.Regs.Size)
		}
		if sz, seen := m.bankSize[u.Regs.Name]; seen {
			if sz != u.Regs.Size {
				return fmt.Errorf("isdl: bank %s declared with sizes %d and %d", u.Regs.Name, sz, u.Regs.Size)
			}
		} else {
			m.bankSize[u.Regs.Name] = u.Regs.Size
			m.banks = append(m.banks, u.Regs.Name)
		}
		for op, lat := range u.Latency {
			if !u.Can(op) {
				return fmt.Errorf("isdl: unit %s declares latency for unsupported %s", u.Name, op)
			}
			if lat < 1 {
				return fmt.Errorf("isdl: unit %s has latency %d for %s", u.Name, lat, op)
			}
		}
		m.unitByName[u.Name] = u
	}
	for _, b := range m.Buses {
		if _, dup := m.busByName[b.Name]; dup {
			return fmt.Errorf("isdl: duplicate bus %s", b.Name)
		}
		if b.Width < 1 {
			return fmt.Errorf("isdl: bus %s has width %d", b.Name, b.Width)
		}
		m.busByName[b.Name] = b
	}
	for _, mem := range m.Memories {
		if _, dup := m.memByName[mem.Name]; dup {
			return fmt.Errorf("isdl: duplicate memory %s", mem.Name)
		}
		m.memByName[mem.Name] = mem
	}
	for _, t := range m.Transfers {
		if err := m.checkLoc(t.From); err != nil {
			return fmt.Errorf("isdl: transfer %s: %w", t, err)
		}
		if err := m.checkLoc(t.To); err != nil {
			return fmt.Errorf("isdl: transfer %s: %w", t, err)
		}
		if m.busByName[t.Bus] == nil {
			return fmt.Errorf("isdl: transfer %s: unknown bus %s", t, t.Bus)
		}
	}
	for _, c := range m.Constraints {
		if len(c.Forbid) < 1 {
			return fmt.Errorf("isdl: empty constraint")
		}
		for _, s := range c.Forbid {
			u := m.unitByName[s.Unit]
			if u == nil {
				return fmt.Errorf("isdl: constraint %s: unknown unit %s", c, s.Unit)
			}
			if !u.Can(s.Op) {
				return fmt.Errorf("isdl: constraint %s: unit %s cannot perform %s", c, s.Unit, s.Op)
			}
		}
	}
	for _, p := range m.Patterns {
		if err := p.validate(m); err != nil {
			return fmt.Errorf("isdl: pattern %s: %w", p, err)
		}
	}

	// Op → units database (Sec. II: "a correlation between the target
	// processor operations and the SUIF basic operations").
	m.opUnits = make(map[ir.Op][]*Unit)
	for _, u := range m.Units {
		for op := range u.Ops {
			m.opUnits[op] = append(m.opUnits[op], u)
		}
	}
	for op := range m.opUnits {
		units := m.opUnits[op]
		sort.Slice(units, func(i, j int) bool { return units[i].Name < units[j].Name })
	}

	// Transfer-path closure (Sec. II: "expanded to include multiple-step
	// data transfers as well").
	m.buildPaths()
	m.finalized = true
	return nil
}

func (m *Machine) checkLoc(l Loc) error {
	switch l.Kind {
	case LocUnit:
		// Transfer endpoints are register banks; a unit name resolves to
		// its (identically named, by default) bank.
		if _, ok := m.bankSize[l.Name]; !ok {
			return fmt.Errorf("unknown register bank %s", l.Name)
		}
	case LocMem:
		if m.memByName[l.Name] == nil {
			return fmt.Errorf("unknown memory %s", l.Name)
		}
	default:
		return fmt.Errorf("bad location kind %d", l.Kind)
	}
	return nil
}

// SupportsDAG reports whether every computation node in the block can be
// executed by at least one unit, returning the first unsupported op.
func (m *Machine) SupportsDAG(b *ir.Block) error {
	for _, n := range b.Nodes {
		if !n.Op.IsComputation() {
			continue
		}
		if len(m.UnitsFor(n.Op)) == 0 {
			return fmt.Errorf("isdl: machine %s: no unit performs %s", m.Name, n.Op)
		}
	}
	return nil
}

// Clone returns a deep copy of the machine with name newName. The copy is
// not finalized; mutate it (e.g. change register file sizes, drop units)
// and call Finalize. This supports the paper's design-space exploration
// use case (Sec. VI).
func (m *Machine) Clone(newName string) *Machine {
	c := NewMachine(newName)
	for _, u := range m.Units {
		nu := c.AddUnit(u.Name, u.Regs.Size)
		nu.Regs = u.Regs
		for op := range u.Ops {
			nu.Ops[op] = true
		}
		for op, lat := range u.Latency {
			nu.SetLatency(op, lat)
		}
	}
	for _, mem := range m.Memories {
		c.AddMemory(mem.Name)
	}
	for _, b := range m.Buses {
		c.AddBus(b.Name, b.Width)
	}
	c.Transfers = append(c.Transfers, m.Transfers...)
	for _, con := range m.Constraints {
		forbid := make([]SlotRef, len(con.Forbid))
		copy(forbid, con.Forbid)
		c.Constraints = append(c.Constraints, Constraint{Forbid: forbid})
	}
	c.Patterns = append(c.Patterns, m.Patterns...)
	return c
}

// RemoveUnit deletes the named unit and all transfers touching it.
// Returns false if no such unit exists. The machine must be re-finalized.
func (m *Machine) RemoveUnit(name string) bool {
	idx := -1
	for i, u := range m.Units {
		if u.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	bank := m.Units[idx].Regs.Name
	m.Units = append(m.Units[:idx], m.Units[idx+1:]...)
	bankStillUsed := false
	for _, u := range m.Units {
		if u.Regs.Name == bank {
			bankStillUsed = true
		}
	}
	if !bankStillUsed {
		var kept []Transfer
		loc := UnitLoc(bank)
		for _, t := range m.Transfers {
			if t.From != loc && t.To != loc {
				kept = append(kept, t)
			}
		}
		m.Transfers = kept
	}
	var keptCons []Constraint
	for _, c := range m.Constraints {
		touches := false
		for _, s := range c.Forbid {
			if s.Unit == name {
				touches = true
				break
			}
		}
		if !touches {
			keptCons = append(keptCons, c)
		}
	}
	m.Constraints = keptCons
	m.finalized = false
	return true
}

// SetRegFileSize sets every unit's register file to size registers
// (the paper's "#Registers per RegFile" experiment knob).
func (m *Machine) SetRegFileSize(size int) {
	for _, u := range m.Units {
		u.Regs.Size = size
	}
	m.finalized = false
}

// HardwareCost is a coarse silicon-area model for design-space
// exploration (the hardware half of the co-design trade-off the paper's
// Sec. I motivates): each functional unit costs a base amount plus a term
// per supported operation, register files cost per register, and buses
// cost per transfer slot. Units are abstract area points — only ratios
// between candidate machines matter.
func (m *Machine) HardwareCost() int {
	cost := 0
	for _, u := range m.Units {
		cost += 10 + 2*len(u.Ops) + 3*u.Regs.Size
	}
	for _, b := range m.Buses {
		cost += 5 * b.Width
	}
	return cost
}
