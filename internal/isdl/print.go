package isdl

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
)

// Describe renders a human-readable dump of the machine and its derived
// databases (op→unit correlation, expanded transfer paths), the
// information Fig. 3 of the paper conveys.
func (m *Machine) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s\n", m.Name)
	for _, u := range m.Units {
		ops := make([]string, 0, len(u.Ops))
		for _, op := range u.OpList() {
			s := op.String()
			if lat := u.LatencyOf(op); lat > 1 {
				s += fmt.Sprintf(":%d", lat)
			}
			ops = append(ops, s)
		}
		bank := ""
		if u.Regs.Name != u.Name {
			bank = fmt.Sprintf(" bank=%s", u.Regs.Name)
		}
		fmt.Fprintf(&sb, "  unit %-4s regs=%d%s ops=%s\n", u.Name, u.Regs.Size, bank, strings.Join(ops, ","))
	}
	for _, mem := range m.Memories {
		fmt.Fprintf(&sb, "  memory %s\n", mem.Name)
	}
	for _, b := range m.Buses {
		fmt.Fprintf(&sb, "  bus %s width=%d\n", b.Name, b.Width)
	}
	for _, c := range m.Constraints {
		fmt.Fprintf(&sb, "  constraint %s\n", c)
	}
	for _, p := range m.Patterns {
		fmt.Fprintf(&sb, "  pattern %s\n", p)
	}

	sb.WriteString("op -> units database:\n")
	var ops []ir.Op
	for op := range m.opUnits {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		names := make([]string, len(m.opUnits[op]))
		for i, u := range m.opUnits[op] {
			names[i] = u.Name
		}
		fmt.Fprintf(&sb, "  %-6s -> %s\n", op, strings.Join(names, ","))
	}

	sb.WriteString("transfer path database (minimal hops):\n")
	var keys [][2]Loc
	for k := range m.paths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0].String() != b[0].String() {
			return a[0].String() < b[0].String()
		}
		return a[1].String() < b[1].String()
	})
	for _, k := range keys {
		for _, p := range m.paths[k] {
			steps := make([]string, len(p))
			for i, t := range p {
				steps[i] = t.String()
			}
			fmt.Fprintf(&sb, "  %s => %s : %s\n", k[0], k[1], strings.Join(steps, " ; "))
		}
	}
	return sb.String()
}
