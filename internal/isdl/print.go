package isdl

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
)

// Dump renders the machine back into the textual ISDL-flavored format
// accepted by Parse, so descriptions can round-trip Parse→Dump→Parse.
// Declarations come out in an order the parser can always resolve:
// units first, then memories (the parser classifies transfer endpoints
// by the memories declared so far), then buses, transfers, constraints,
// and patterns. The rendering is deterministic — unit op lists are
// sorted, everything else keeps declaration order — so Dump is also a
// stable serialization for fuzz corpora and generated-machine files.
//
// The output is faithful as long as no register bank shares a name with
// a memory (the textual format resolves a transfer endpoint to a memory
// first), which Finalize-clean machines built by this repository always
// satisfy.
func (m *Machine) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s\n", m.Name)
	for _, u := range m.Units {
		fmt.Fprintf(&sb, "unit %s { regs %d", u.Name, u.Regs.Size)
		if u.Regs.Name != u.Name {
			fmt.Fprintf(&sb, " bank %s", u.Regs.Name)
		}
		if len(u.Ops) > 0 {
			sb.WriteString(" ops")
			for _, op := range u.OpList() {
				fmt.Fprintf(&sb, " %s", op)
				if lat, ok := u.Latency[op]; ok && lat > 1 {
					fmt.Fprintf(&sb, ":%d", lat)
				}
			}
		}
		sb.WriteString(" }\n")
	}
	for _, mem := range m.Memories {
		fmt.Fprintf(&sb, "memory %s\n", mem.Name)
	}
	for _, b := range m.Buses {
		fmt.Fprintf(&sb, "bus %s width %d\n", b.Name, b.Width)
	}
	for _, t := range m.Transfers {
		fmt.Fprintf(&sb, "transfer %s -> %s via %s\n", t.From.Name, t.To.Name, t.Bus)
	}
	for _, c := range m.Constraints {
		parts := make([]string, len(c.Forbid))
		for i, s := range c.Forbid {
			parts[i] = s.String()
		}
		fmt.Fprintf(&sb, "constraint !(%s)\n", strings.Join(parts, " & "))
	}
	for _, p := range m.Patterns {
		fmt.Fprintf(&sb, "pattern %s\n", p)
	}
	return sb.String()
}

// Describe renders a human-readable dump of the machine and its derived
// databases (op→unit correlation, expanded transfer paths), the
// information Fig. 3 of the paper conveys.
func (m *Machine) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s\n", m.Name)
	for _, u := range m.Units {
		ops := make([]string, 0, len(u.Ops))
		for _, op := range u.OpList() {
			s := op.String()
			if lat := u.LatencyOf(op); lat > 1 {
				s += fmt.Sprintf(":%d", lat)
			}
			ops = append(ops, s)
		}
		bank := ""
		if u.Regs.Name != u.Name {
			bank = fmt.Sprintf(" bank=%s", u.Regs.Name)
		}
		fmt.Fprintf(&sb, "  unit %-4s regs=%d%s ops=%s\n", u.Name, u.Regs.Size, bank, strings.Join(ops, ","))
	}
	for _, mem := range m.Memories {
		fmt.Fprintf(&sb, "  memory %s\n", mem.Name)
	}
	for _, b := range m.Buses {
		fmt.Fprintf(&sb, "  bus %s width=%d\n", b.Name, b.Width)
	}
	for _, c := range m.Constraints {
		fmt.Fprintf(&sb, "  constraint %s\n", c)
	}
	for _, p := range m.Patterns {
		fmt.Fprintf(&sb, "  pattern %s\n", p)
	}

	sb.WriteString("op -> units database:\n")
	var ops []ir.Op
	for op := range m.opUnits {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		names := make([]string, len(m.opUnits[op]))
		for i, u := range m.opUnits[op] {
			names[i] = u.Name
		}
		fmt.Fprintf(&sb, "  %-6s -> %s\n", op, strings.Join(names, ","))
	}

	sb.WriteString("transfer path database (minimal hops):\n")
	var keys [][2]Loc
	for k := range m.paths {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0].String() != b[0].String() {
			return a[0].String() < b[0].String()
		}
		return a[1].String() < b[1].String()
	})
	for _, k := range keys {
		for _, p := range m.paths[k] {
			steps := make([]string, len(p))
			for i, t := range p {
				steps[i] = t.String()
			}
			fmt.Fprintf(&sb, "  %s => %s : %s\n", k[0], k[1], strings.Join(steps, " ; "))
		}
	}
	return sb.String()
}
