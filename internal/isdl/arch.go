package isdl

import "aviv/internal/ir"

// ExampleArch builds the paper's example target architecture (Fig. 3):
//
//   - U1 performs ADD and SUB,
//   - U2 performs ADD, SUB and MUL,
//   - U3 performs ADD and MUL,
//   - each unit has its own register file of regsPerFile registers,
//   - a data memory DM, and
//   - a single databus DB connecting all units and memories.
//
// The paper additionally uses COMPL (complement) on U1 for the Fig. 6
// pruning example; ExampleArch includes it on U1 for fidelity.
func ExampleArch(regsPerFile int) *Machine {
	m := NewMachine("ExampleVLIW")
	m.AddUnit("U1", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpCompl)
	m.AddUnit("U2", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpMul)
	m.AddUnit("U3", regsPerFile, ir.OpAdd, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		panic("isdl: ExampleArch is invalid: " + err.Error())
	}
	return m
}

// ArchitectureII builds the retargeting experiment machine of Sec. VI
// (Table II): the example architecture with the SUB operation removed
// from U1 and functional unit U3 removed entirely.
func ArchitectureII(regsPerFile int) *Machine {
	m := NewMachine("ArchitectureII")
	m.AddUnit("U1", regsPerFile, ir.OpAdd, ir.OpCompl)
	m.AddUnit("U2", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		panic("isdl: ArchitectureII is invalid: " + err.Error())
	}
	return m
}

// SingleIssueDSP builds a single-unit accumulator-style machine, the
// degenerate (no-ILP) point of the design space used by the architecture
// exploration example. The unit performs the full basic-op repertoire.
func SingleIssueDSP(regsPerFile int) *Machine {
	m := NewMachine("SingleIssueDSP")
	m.AddUnit("U1", regsPerFile,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpNeg, ir.OpCompl, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE)
	m.AddMemory("DM")
	m.AddBus("DB", 1)
	m.ConnectAll("DB")
	if err := m.Finalize(); err != nil {
		panic("isdl: SingleIssueDSP is invalid: " + err.Error())
	}
	return m
}

// WideDSP builds a four-unit machine with a MAC-capable multiplier unit, a
// 2-wide bus, and a co-issue constraint between the two multiplier-capable
// units. It exercises complex instructions, wider buses, and constraints —
// the ISDL features beyond the paper's running example.
func WideDSP(regsPerFile int) *Machine {
	m := NewMachine("WideDSP")
	m.AddUnit("A1", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpCmpEQ, ir.OpCmpNE,
		ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE)
	m.AddUnit("A2", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpCompl)
	m.AddUnit("M1", regsPerFile, ir.OpMul, ir.OpMAC, ir.OpAdd)
	m.AddUnit("M2", regsPerFile, ir.OpMul, ir.OpDiv, ir.OpMod)
	m.AddMemory("DM")
	m.AddBus("DB", 2)
	m.ConnectAll("DB")
	m.AddConstraint(SlotRef{Unit: "M1", Op: ir.OpMul}, SlotRef{Unit: "M2", Op: ir.OpMul})
	m.Patterns = append(m.Patterns, MACPattern("M1"))
	if err := m.Finalize(); err != nil {
		panic("isdl: WideDSP is invalid: " + err.Error())
	}
	return m
}

// ExampleArchISDL is the paper's Fig. 3 machine written in the textual
// ISDL-flavored format accepted by Parse. Parsing it yields a machine
// equivalent to ExampleArch(4).
const ExampleArchISDL = `
machine ExampleVLIW
# Fig. 3 of the DAC'98 AVIV paper.
unit U1 { regs 4 ops ADD SUB COMPL }
unit U2 { regs 4 ops ADD SUB MUL }
unit U3 { regs 4 ops ADD MUL }
memory DM
bus DB width 1
connect all via DB
`

// ExampleArchFullISDL is ExampleArchFull(4) written in the textual
// format: the paper's Fig. 3 machine extended with the comparisons and
// NEG that whole-program compilation needs. The server differential
// tests and the avivd serve benchmark ship this text over the wire and
// require its compiles to match the constructor-built machine exactly.
const ExampleArchFullISDL = `
machine ExampleVLIWFull
unit U1 { regs 4 ops ADD SUB COMPL CMPEQ CMPNE CMPLT CMPLE CMPGT CMPGE }
unit U2 { regs 4 ops ADD SUB MUL NEG }
unit U3 { regs 4 ops ADD MUL }
memory DM
bus DB width 1
connect all via DB
`

// SingleIssueDSPISDL is SingleIssueDSP(4) in the textual format.
const SingleIssueDSPISDL = `
machine SingleIssueDSP
unit U1 { regs 4 ops ADD SUB MUL DIV MOD NEG COMPL AND OR XOR SHL SHR CMPEQ CMPNE CMPLT CMPLE CMPGT CMPGE }
memory DM
bus DB width 1
connect all via DB
`

// ExampleArchFull is ExampleArch extended with the comparison and
// negation operations real control flow needs (the paper's Fig. 3
// machine only lists ADD/SUB/MUL because its experiments are basic-block
// bodies). U1 gains the comparisons, U2 gains NEG. Table reproductions
// use the pure ExampleArch; whole-program compilation uses this variant.
func ExampleArchFull(regsPerFile int) *Machine {
	m := ExampleArch(regsPerFile)
	m.Name = "ExampleVLIWFull"
	for _, op := range []ir.Op{ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE} {
		m.Unit("U1").Ops[op] = true
	}
	m.Unit("U2").Ops[ir.OpNeg] = true
	if err := m.Finalize(); err != nil {
		panic("isdl: ExampleArchFull is invalid: " + err.Error())
	}
	return m
}

// DualMemDSP builds a dual-memory (X/Y banked) DSP in the style of
// classic fixed-point parts: two functional units, an X memory and a Y
// memory each on its own bus, so two operand loads can issue in one
// instruction — provided the compiler places the operand arrays in
// different banks (cover.Options.VarPlacement).
func DualMemDSP(regsPerFile int) *Machine {
	m := NewMachine("DualMemDSP")
	m.AddUnit("ALU", regsPerFile, ir.OpAdd, ir.OpSub, ir.OpCompl,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE)
	m.AddUnit("MAC", regsPerFile, ir.OpMul, ir.OpMAC, ir.OpAdd)
	m.AddMemory("XM")
	m.AddMemory("YM")
	m.AddBus("BX", 1)
	m.AddBus("BY", 1)
	for _, u := range []string{"ALU", "MAC"} {
		m.AddTransfer(MemLoc("XM"), UnitLoc(u), "BX")
		m.AddTransfer(UnitLoc(u), MemLoc("XM"), "BX")
		m.AddTransfer(MemLoc("YM"), UnitLoc(u), "BY")
		m.AddTransfer(UnitLoc(u), MemLoc("YM"), "BY")
	}
	m.AddTransfer(UnitLoc("ALU"), UnitLoc("MAC"), "BX")
	m.AddTransfer(UnitLoc("MAC"), UnitLoc("ALU"), "BX")
	m.Patterns = append(m.Patterns, MACPattern("MAC"))
	if err := m.Finalize(); err != nil {
		panic("isdl: DualMemDSP is invalid: " + err.Error())
	}
	return m
}

// ClusteredVLIW builds a two-cluster machine: each cluster has an adder
// and a multiplier SHARING one register bank, so intra-cluster values
// move for free; an inter-cluster bus carries values between the banks.
// This is the register-class structure CodeSyn/FlexWare-era machines
// exhibit (paper Sec. V-B) and the reason bank-aware covering matters.
func ClusteredVLIW(regsPerBank int) *Machine {
	m := NewMachine("ClusteredVLIW")
	m.AddUnit("A0", regsPerBank, ir.OpAdd, ir.OpSub, ir.OpCmpEQ, ir.OpCmpNE,
		ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE)
	m.AddUnit("M0", regsPerBank, ir.OpMul, ir.OpAdd)
	m.AddUnit("A1", regsPerBank, ir.OpAdd, ir.OpSub, ir.OpNeg, ir.OpCompl)
	m.AddUnit("M1", regsPerBank, ir.OpMul, ir.OpAdd)
	if err := m.ShareBank("C0", regsPerBank, "A0", "M0"); err != nil {
		panic(err)
	}
	if err := m.ShareBank("C1", regsPerBank, "A1", "M1"); err != nil {
		panic(err)
	}
	m.AddMemory("DM")
	m.AddBus("DB", 1) // memory bus
	m.AddBus("XB", 1) // inter-cluster exchange bus
	for _, bank := range []string{"C0", "C1"} {
		m.AddTransfer(MemLoc("DM"), UnitLoc(bank), "DB")
		m.AddTransfer(UnitLoc(bank), MemLoc("DM"), "DB")
	}
	m.AddTransfer(UnitLoc("C0"), UnitLoc("C1"), "XB")
	m.AddTransfer(UnitLoc("C1"), UnitLoc("C0"), "XB")
	if err := m.Finalize(); err != nil {
		panic("isdl: ClusteredVLIW is invalid: " + err.Error())
	}
	return m
}
