package isdl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"aviv/internal/ir"
)

// Parse reads a textual machine description in the ISDL-flavored format
// used throughout this repository and returns a finalized Machine.
//
// The format is keyword-driven:
//
//	machine ExampleVLIW
//	unit U1 { regs 4 ops ADD SUB }
//	unit U2 { regs 4 ops ADD SUB MUL }
//	memory DM
//	bus DB width 1
//	connect all via DB          # full crossbar over DB
//	transfer U1 -> U2 via DB    # or an explicit single path
//	constraint !(U2.MUL & U3.MUL)
//	pattern U2.MAC = ADD(_, MUL(_, _))
//
// '#' and '//' start comments running to end of line.
func Parse(src string) (*Machine, error) {
	m, err := ParseRaw(src)
	if err != nil {
		return nil, err
	}
	if err := m.Finalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseRaw parses a textual machine description without finalizing it.
// Linters use it to examine descriptions Finalize would reject at the
// first problem, so every defect can be reported at once.
func ParseRaw(src string) (*Machine, error) {
	p := &parser{toks: lex(src)}
	return p.parse()
}

type token struct {
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#' || (r == '/' && i+1 < len(rs) && rs[i+1] == '/'):
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '-' && i+1 < len(rs) && rs[i+1] == '>':
			toks = append(toks, token{"->", line})
			i += 2
		case strings.ContainsRune("{}(),!&.=:", r):
			toks = append(toks, token{string(r), line})
			i++
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{string(rs[i:j]), line})
			i = j
		default:
			toks = append(toks, token{string(r), line})
			i++
		}
	}
	return toks
}

type parser struct {
	toks []token
	pos  int
	m    *Machine
}

func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("isdl: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(want string) error {
	if got := p.peek(); got != want {
		return p.errf("expected %q, got %q", want, got)
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t == "" {
		return "", p.errf("expected identifier, got end of input")
	}
	r := []rune(t)[0]
	if !unicode.IsLetter(r) && r != '_' {
		return "", p.errf("expected identifier, got %q", t)
	}
	p.pos++
	return t, nil
}

func (p *parser) number() (int, error) {
	t := p.peek()
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, p.errf("expected number, got %q", t)
	}
	p.pos++
	return n, nil
}

func (p *parser) op() (ir.Op, error) {
	t := p.peek()
	op := ir.ParseOp(t)
	if op == ir.OpInvalid {
		return op, p.errf("unknown operation %q", t)
	}
	p.pos++
	return op, nil
}

func (p *parser) parse() (*Machine, error) {
	if err := p.expect("machine"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	p.m = NewMachine(name)
	for p.pos < len(p.toks) {
		kw := p.next()
		var err error
		switch kw {
		case "unit":
			err = p.parseUnit()
		case "memory":
			err = p.parseMemory()
		case "bus":
			err = p.parseBus()
		case "connect":
			err = p.parseConnect()
		case "transfer":
			err = p.parseTransfer()
		case "constraint":
			err = p.parseConstraint()
		case "pattern":
			err = p.parsePattern()
		default:
			p.pos--
			return nil, p.errf("unknown keyword %q", kw)
		}
		if err != nil {
			return nil, err
		}
	}
	return p.m, nil
}

func (p *parser) parseUnit() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	regs := 0
	bank := ""
	var ops []ir.Op
	latency := map[ir.Op]int{}
	for p.peek() != "}" {
		switch kw := p.next(); kw {
		case "regs":
			if regs, err = p.number(); err != nil {
				return err
			}
		case "bank":
			if bank, err = p.ident(); err != nil {
				return err
			}
		case "ops":
			for {
				op, err := p.op()
				if err != nil {
					return err
				}
				ops = append(ops, op)
				// Optional per-op latency: "MUL:2".
				if p.peek() == ":" {
					p.pos++
					lat, err := p.number()
					if err != nil {
						return err
					}
					latency[op] = lat
				}
				nxt := p.peek()
				if nxt == "}" || nxt == "regs" || nxt == "ops" || nxt == "" {
					break
				}
			}
		case "":
			return p.errf("unterminated unit %s", name)
		default:
			p.pos--
			return p.errf("unknown unit field %q", kw)
		}
	}
	p.pos++ // }
	if regs == 0 {
		return p.errf("unit %s missing 'regs'", name)
	}
	u := p.m.AddUnit(name, regs, ops...)
	if bank != "" {
		u.Regs.Name = bank
	}
	for op, lat := range latency {
		u.SetLatency(op, lat)
	}
	return nil
}

func (p *parser) parseMemory() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	p.m.AddMemory(name)
	return nil
}

func (p *parser) parseBus() error {
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("width"); err != nil {
		return err
	}
	w, err := p.number()
	if err != nil {
		return err
	}
	p.m.AddBus(name, w)
	return nil
}

func (p *parser) loc() (Loc, error) {
	name, err := p.ident()
	if err != nil {
		return Loc{}, err
	}
	for _, mem := range p.m.Memories {
		if mem.Name == name {
			return MemLoc(name), nil
		}
	}
	return UnitLoc(name), nil
}

func (p *parser) parseConnect() error {
	if err := p.expect("all"); err != nil {
		return err
	}
	if err := p.expect("via"); err != nil {
		return err
	}
	bus, err := p.ident()
	if err != nil {
		return err
	}
	p.m.ConnectAll(bus)
	return nil
}

func (p *parser) parseTransfer() error {
	from, err := p.loc()
	if err != nil {
		return err
	}
	if err := p.expect("->"); err != nil {
		return err
	}
	to, err := p.loc()
	if err != nil {
		return err
	}
	if err := p.expect("via"); err != nil {
		return err
	}
	bus, err := p.ident()
	if err != nil {
		return err
	}
	p.m.AddTransfer(from, to, bus)
	return nil
}

func (p *parser) slotRef() (SlotRef, error) {
	unit, err := p.ident()
	if err != nil {
		return SlotRef{}, err
	}
	if err := p.expect("."); err != nil {
		return SlotRef{}, err
	}
	op, err := p.op()
	if err != nil {
		return SlotRef{}, err
	}
	return SlotRef{Unit: unit, Op: op}, nil
}

func (p *parser) parseConstraint() error {
	if err := p.expect("!"); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var slots []SlotRef
	for {
		s, err := p.slotRef()
		if err != nil {
			return err
		}
		slots = append(slots, s)
		if p.peek() == "&" {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	p.m.AddConstraint(slots...)
	return nil
}

func (p *parser) parsePattern() error {
	s, err := p.slotRef()
	if err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	tree, err := p.patTree()
	if err != nil {
		return err
	}
	p.m.Patterns = append(p.m.Patterns, Pattern{Result: s.Op, Unit: s.Unit, Tree: tree})
	return nil
}

func (p *parser) patTree() (*PatTree, error) {
	if p.peek() == "_" {
		p.pos++
		return nil, nil
	}
	op, err := p.op()
	if err != nil {
		return nil, err
	}
	t := &PatTree{Op: op}
	if p.peek() != "(" {
		return t, nil
	}
	p.pos++
	for {
		kid, err := p.patTree()
		if err != nil {
			return nil, err
		}
		t.Kids = append(t.Kids, kid)
		if p.peek() == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return t, nil
}
