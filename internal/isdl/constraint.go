package isdl

import "fmt"

// GroupError explains why a proposed operation grouping is not a legal
// instruction on the machine.
type GroupError struct {
	Reason string
}

func (e *GroupError) Error() string { return "isdl: illegal grouping: " + e.Reason }

// CheckGroup decides whether one VLIW instruction containing the given
// computation slots and per-bus transfer counts is legal (Sec. IV-C.3):
//
//   - each functional unit may be used at most once,
//   - each bus carries at most its width in transfers, and
//   - no explicit Constraint is fully matched by the slots.
//
// It returns nil when legal, or a *GroupError describing the violation.
func (m *Machine) CheckGroup(slots []SlotRef, busUse map[string]int) error {
	seen := make(map[string]bool, len(slots))
	for _, s := range slots {
		u := m.Unit(s.Unit)
		if u == nil {
			return &GroupError{Reason: fmt.Sprintf("unknown unit %s", s.Unit)}
		}
		if !u.Can(s.Op) {
			return &GroupError{Reason: fmt.Sprintf("unit %s cannot perform %s", s.Unit, s.Op)}
		}
		if seen[s.Unit] {
			return &GroupError{Reason: fmt.Sprintf("unit %s used twice", s.Unit)}
		}
		seen[s.Unit] = true
	}
	for bus, n := range busUse {
		b := m.Bus(bus)
		if b == nil {
			return &GroupError{Reason: fmt.Sprintf("unknown bus %s", bus)}
		}
		if n > b.Width {
			return &GroupError{Reason: fmt.Sprintf("bus %s carries %d transfers, width %d", bus, n, b.Width)}
		}
	}
	for _, c := range m.Constraints {
		if matchesConstraint(slots, c) {
			return &GroupError{Reason: fmt.Sprintf("violates constraint %s", c)}
		}
	}
	return nil
}

func matchesConstraint(slots []SlotRef, c Constraint) bool {
	for _, want := range c.Forbid {
		found := false
		for _, s := range slots {
			if s == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
