package sim

import (
	"strings"
	"testing"

	"aviv/internal/asm"
	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// handProgram builds a small program by hand:
//
//	b0: R0 <- [x]; R1 <- MOVI 10; R2 <- R0 < R1; BNZ small else big
//	small: [r] <- 1 path via MOVI; big: [r] <- 2.
func handProgram(m *isdl.Machine) *asm.Program {
	b0 := &asm.Block{Name: "b0"}
	b0.Instrs = append(b0.Instrs,
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromMem: "x", ToUnit: "U1", ToReg: 0}}},
		asm.Instr{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpConst, Dst: 1, Srcs: []asm.Operand{{IsImm: true, Imm: 10}}}}},
		asm.Instr{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpCmpLT, Dst: 2, Srcs: []asm.Operand{{Reg: 0}, {Reg: 1}}}}},
	)
	b0.Branch = asm.Branch{Kind: asm.BranchCond, Target: "small", Else: "big", CondUnit: "U1", CondReg: 2}

	small := &asm.Block{Name: "small"}
	small.Instrs = append(small.Instrs,
		asm.Instr{Ops: []asm.MicroOp{{Unit: "U2", Op: ir.OpConst, Dst: 0, Srcs: []asm.Operand{{IsImm: true, Imm: 1}}}}},
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromUnit: "U2", FromReg: 0, ToMem: "r"}}},
	)
	small.Branch = asm.Branch{Kind: asm.BranchHalt}

	big := &asm.Block{Name: "big"}
	big.Instrs = append(big.Instrs,
		asm.Instr{Ops: []asm.MicroOp{{Unit: "U2", Op: ir.OpConst, Dst: 0, Srcs: []asm.Operand{{IsImm: true, Imm: 2}}}}},
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromUnit: "U2", FromReg: 0, ToMem: "r"}}},
	)
	big.Branch = asm.Branch{Kind: asm.BranchHalt}

	mach := m
	if !mach.Unit("U1").Can(ir.OpCmpLT) {
		mach.Unit("U1").Ops[ir.OpCmpLT] = true
		if err := mach.Finalize(); err != nil {
			panic(err)
		}
	}
	return &asm.Program{Machine: mach, Blocks: []*asm.Block{b0, small, big}}
}

func TestBranchBothWays(t *testing.T) {
	p := handProgram(isdl.ExampleArch(4))
	mem, cycles, err := RunProgram(p, map[string]int64{"x": 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem["r"] != 1 {
		t.Errorf("x=5: r = %d, want 1 (small)", mem["r"])
	}
	if cycles == 0 {
		t.Error("no cycles counted")
	}
	mem, _, err = RunProgram(p, map[string]int64{"x": 50}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem["r"] != 2 {
		t.Errorf("x=50: r = %d, want 2 (big)", mem["r"])
	}
}

func TestParallelReadBeforeWrite(t *testing.T) {
	// A swap in one instruction: both moves read pre-instruction state.
	m := isdl.ExampleArch(4)
	m.Bus("DB").Width = 2
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &asm.Block{Name: "b"}
	b.Instrs = append(b.Instrs,
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromMem: "a", ToUnit: "U1", ToReg: 0}, {Bus: "DB", FromMem: "b", ToUnit: "U1", ToReg: 1}}},
		// Swap R0 and R1 in one cycle.
		asm.Instr{Moves: []asm.Move{
			{Bus: "DB", FromUnit: "U1", FromReg: 0, ToUnit: "U1", ToReg: 1},
			{Bus: "DB", FromUnit: "U1", FromReg: 1, ToUnit: "U1", ToReg: 0},
		}},
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromUnit: "U1", FromReg: 0, ToMem: "oa"}}},
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromUnit: "U1", FromReg: 1, ToMem: "ob"}}},
	)
	b.Branch = asm.Branch{Kind: asm.BranchHalt}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{b}}
	mem, _, err := RunProgram(p, map[string]int64{"a": 111, "b": 222}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem["oa"] != 222 || mem["ob"] != 111 {
		t.Errorf("swap failed: oa=%d ob=%d", mem["oa"], mem["ob"])
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	m := isdl.ExampleArch(4)
	b := &asm.Block{Name: "spin"}
	b.Branch = asm.Branch{Kind: asm.BranchJump, Target: "spin"}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{b}}
	if _, _, err := RunProgram(p, nil, 100); err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestBadReferences(t *testing.T) {
	m := isdl.ExampleArch(2)
	mk := func(in asm.Instr) *asm.Program {
		b := &asm.Block{Name: "b", Instrs: []asm.Instr{in}, Branch: asm.Branch{Kind: asm.BranchHalt}}
		return &asm.Program{Machine: m, Blocks: []*asm.Block{b}}
	}
	bad := []asm.Instr{
		{Ops: []asm.MicroOp{{Unit: "U9", Op: ir.OpAdd, Dst: 0, Srcs: []asm.Operand{{Reg: 0}, {Reg: 1}}}}},
		{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpAdd, Dst: 7, Srcs: []asm.Operand{{Reg: 0}, {Reg: 1}}}}},
		{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpAdd, Dst: 0, Srcs: []asm.Operand{{Reg: 9}, {Reg: 1}}}}},
		{Moves: []asm.Move{{Bus: "DB", FromUnit: "U1", FromReg: 9, ToMem: "x"}}},
		{Moves: []asm.Move{{Bus: "DB", FromMem: "x", ToUnit: "U1", ToReg: 9}}},
	}
	for i, in := range bad {
		if _, _, err := RunProgram(mk(in), nil, 10); err == nil {
			t.Errorf("bad instr %d accepted", i)
		}
	}
	// Jump to a missing block.
	b := &asm.Block{Name: "b", Branch: asm.Branch{Kind: asm.BranchJump, Target: "nowhere"}}
	if _, _, err := RunProgram(&asm.Program{Machine: m, Blocks: []*asm.Block{b}}, nil, 10); err == nil {
		t.Error("jump to missing block accepted")
	}
}

func TestRuntimeDivByZero(t *testing.T) {
	m := isdl.SingleIssueDSP(4)
	b := &asm.Block{Name: "b"}
	b.Instrs = append(b.Instrs,
		asm.Instr{Moves: []asm.Move{{Bus: "DB", FromMem: "x", ToUnit: "U1", ToReg: 0}}},
		asm.Instr{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpDiv, Dst: 1, Srcs: []asm.Operand{{Reg: 0}, {IsImm: true, Imm: 0}}}}},
	)
	b.Branch = asm.Branch{Kind: asm.BranchHalt}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{b}}
	if _, _, err := RunProgram(p, map[string]int64{"x": 5}, 0); err == nil {
		t.Error("division by zero not reported")
	}
}

func TestTraceFn(t *testing.T) {
	p := handProgram(isdl.ExampleArch(4))
	machine := New(p, map[string]int64{"x": 1})
	var lines []string
	machine.TraceFn = func(s string) { lines = append(lines, s) }
	if err := machine.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no trace lines")
	}
	if !strings.Contains(lines[0], "cycle 0") {
		t.Errorf("first trace line: %q", lines[0])
	}
	if v, err := machine.Reg("U1", 2); err != nil || v != 1 {
		t.Errorf("Reg(U1,2) = %d, %v", v, err)
	}
	if _, err := machine.Reg("U9", 0); err == nil {
		t.Error("Reg on unknown unit accepted")
	}
}

func TestConstCondBranch(t *testing.T) {
	m := isdl.ExampleArch(4)
	one := int64(1)
	b0 := &asm.Block{Name: "b0", Branch: asm.Branch{Kind: asm.BranchCond, Target: "t", Else: "e", CondConst: &one}}
	tb := &asm.Block{Name: "t", Instrs: []asm.Instr{
		{Ops: []asm.MicroOp{{Unit: "U1", Op: ir.OpConst, Dst: 0, Srcs: []asm.Operand{{IsImm: true, Imm: 9}}}}},
		{Moves: []asm.Move{{Bus: "DB", FromUnit: "U1", FromReg: 0, ToMem: "r"}}},
	}, Branch: asm.Branch{Kind: asm.BranchHalt}}
	eb := &asm.Block{Name: "e", Branch: asm.Branch{Kind: asm.BranchHalt}}
	p := &asm.Program{Machine: m, Blocks: []*asm.Block{b0, tb, eb}}
	mem, _, err := RunProgram(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem["r"] != 9 {
		t.Errorf("constant branch not taken: %v", mem)
	}
}

func TestStats(t *testing.T) {
	p := handProgram(isdl.ExampleArch(4))
	m := New(p, map[string]int64{"x": 5})
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Instructions != 5 { // 3 in b0 + 2 in small
		t.Errorf("Instructions = %d, want 5", st.Instructions)
	}
	if st.UnitOps["U1"] != 2 || st.UnitOps["U2"] != 1 {
		t.Errorf("UnitOps = %v", st.UnitOps)
	}
	if st.BusMoves["DB"] != 2 {
		t.Errorf("BusMoves = %v", st.BusMoves)
	}
	if u := st.Utilization("U1"); u < 0.39 || u > 0.41 {
		t.Errorf("Utilization(U1) = %f, want 0.4", u)
	}
	if b := st.BusUtilization("DB"); b < 0.39 || b > 0.41 {
		t.Errorf("BusUtilization(DB) = %f, want 0.4", b)
	}
	out := st.String()
	if !strings.Contains(out, "unit U1") || !strings.Contains(out, "bus  DB") {
		t.Errorf("Stats.String missing fields:\n%s", out)
	}
}
