// Package sim is the instruction-level simulator of the paper's Fig. 1
// flow: it executes compiled VLIW programs on the modeled target
// processor, with per-unit register files, a data memory, and
// parallel-slot semantics (all reads of an instruction happen before any
// write). The reproduction uses it to validate that generated code
// computes exactly what the source DAGs specify.
package sim

import (
	"errors"
	"fmt"

	"aviv/internal/asm"
	"aviv/internal/ir"
)

// ErrStepBudget is returned when execution exceeds its cycle budget.
var ErrStepBudget = errors.New("sim: cycle budget exhausted (infinite loop?)")

// Machine is the simulated processor state. Writes commit after their
// operation's latency (the machine has no interlocks): an instruction
// reading a register before the producing operation completes observes
// the stale value, exactly as the modeled hardware would. Compiled code
// is latency-correct by construction; the simulator's delayed commit
// makes any compiler violation visible as a wrong result.
type Machine struct {
	prog *asm.Program
	regs map[string][]int64
	mem  map[string]int64

	// pendingW holds in-flight results awaiting their commit cycle.
	pendingW []delayedWrite

	// Cycles counts executed instructions (including control transfers).
	Cycles int
	stats  *Stats
	// TraceFn, when set, receives one line per executed instruction.
	TraceFn func(string)
}

// New prepares a simulator for the program with the given initial data
// memory (copied).
func New(p *asm.Program, mem map[string]int64) *Machine {
	m := &Machine{
		prog: p,
		regs: make(map[string][]int64),
		mem:  make(map[string]int64, len(mem)),
		stats: &Stats{
			UnitOps:  make(map[string]int),
			BusMoves: make(map[string]int),
		},
	}
	for _, bank := range p.Machine.Banks() {
		m.regs[bank] = make([]int64, p.Machine.BankSize(bank))
	}
	for k, v := range mem {
		m.mem[k] = v
	}
	return m
}

// Mem returns the current data-memory contents (live map; callers must
// not mutate during Run).
func (m *Machine) Mem() map[string]int64 { return m.mem }

// Reg returns a register value from the named bank (for plain machines a
// unit's bank carries the unit's name).
func (m *Machine) Reg(bank string, r int) (int64, error) {
	b, ok := m.regs[bank]
	if !ok {
		return 0, fmt.Errorf("sim: unknown register bank %s", bank)
	}
	if r < 0 || r >= len(b) {
		return 0, fmt.Errorf("sim: register %s.R%d out of range", bank, r)
	}
	return b[r], nil
}

// Run executes the program from its first block until HALT or the cycle
// budget is exhausted. maxCycles <= 0 selects a default of 1e6.
func (m *Machine) Run(maxCycles int) error {
	if maxCycles <= 0 {
		maxCycles = 1_000_000
	}
	if len(m.prog.Blocks) == 0 {
		return nil
	}
	defer m.flush()
	cur := m.prog.Blocks[0]
	for {
		for _, in := range cur.Instrs {
			if m.Cycles >= maxCycles {
				return ErrStepBudget
			}
			if err := m.exec(in); err != nil {
				return fmt.Errorf("sim: block %s: %w", cur.Name, err)
			}
			m.Cycles++
		}
		m.commit(m.Cycles) // condition registers commit before the branch reads
		next, halted, err := m.branch(cur)
		if err != nil {
			return err
		}
		if halted {
			m.flush()
			return nil
		}
		if m.Cycles >= maxCycles {
			return ErrStepBudget
		}
		nb := m.prog.Block(next)
		if nb == nil {
			return fmt.Errorf("sim: jump to unknown block %q", next)
		}
		cur = nb
	}
}

type delayedWrite struct {
	unit string // "" = memory
	reg  int
	mem  string
	val  int64
	at   int // cycle at which the result becomes visible
}

// commit applies every in-flight write due at or before the given cycle.
func (m *Machine) commit(now int) {
	var keep []delayedWrite
	for _, w := range m.pendingW {
		if w.at > now {
			keep = append(keep, w)
			continue
		}
		if w.unit == "" && w.reg == -1 {
			m.mem[w.mem] = w.val
		} else {
			m.regs[w.unit][w.reg] = w.val
		}
	}
	m.pendingW = keep
}

// flush commits every in-flight write (pipeline drain at HALT).
func (m *Machine) flush() { m.commit(1 << 60) }

// exec runs one VLIW instruction: results commit after their latency, so
// same-cycle and too-early reads observe pre-instruction state.
func (m *Machine) exec(in asm.Instr) error {
	m.commit(m.Cycles)
	type write = delayedWrite
	var writes []write

	for _, op := range in.Ops {
		bank, ok := m.regs[m.prog.Machine.BankOf(op.Unit)]
		if !ok {
			return fmt.Errorf("unknown unit %s", op.Unit)
		}
		args := make([]int64, len(op.Srcs))
		for i, s := range op.Srcs {
			if s.IsImm {
				args[i] = s.Imm
				continue
			}
			if s.Reg < 0 || s.Reg >= len(bank) {
				return fmt.Errorf("%s.R%d out of range", op.Unit, s.Reg)
			}
			args[i] = bank[s.Reg]
		}
		var v int64
		if op.Op == ir.OpConst {
			v = args[0] // MOVI
		} else {
			var err error
			v, err = ir.EvalOp(op.Op, args...)
			if err != nil {
				return err
			}
		}
		if op.Dst < 0 || op.Dst >= len(bank) {
			return fmt.Errorf("%s.R%d destination out of range", op.Unit, op.Dst)
		}
		lat := 1
		if op.Op.IsComputation() {
			if u := m.prog.Machine.Unit(op.Unit); u != nil {
				lat = u.LatencyOf(op.Op)
			}
		}
		writes = append(writes, write{unit: m.prog.Machine.BankOf(op.Unit), reg: op.Dst, val: v, at: m.Cycles + lat})
	}

	for _, mv := range in.Moves {
		var v int64
		if mv.FromUnit == "" {
			v = m.mem[mv.FromMem]
		} else {
			bank, ok := m.regs[mv.FromUnit]
			if !ok {
				return fmt.Errorf("unknown unit %s", mv.FromUnit)
			}
			if mv.FromReg < 0 || mv.FromReg >= len(bank) {
				return fmt.Errorf("%s.R%d out of range", mv.FromUnit, mv.FromReg)
			}
			v = bank[mv.FromReg]
		}
		if mv.ToUnit == "" {
			writes = append(writes, write{mem: mv.ToMem, unit: "", reg: -1, val: v, at: m.Cycles + 1})
		} else {
			bank, ok := m.regs[mv.ToUnit]
			if !ok {
				return fmt.Errorf("unknown unit %s", mv.ToUnit)
			}
			if mv.ToReg < 0 || mv.ToReg >= len(bank) {
				return fmt.Errorf("%s.R%d out of range", mv.ToUnit, mv.ToReg)
			}
			writes = append(writes, write{unit: mv.ToUnit, reg: mv.ToReg, val: v, at: m.Cycles + 1})
		}
	}

	m.pendingW = append(m.pendingW, writes...)
	m.stats.Instructions++
	for _, op := range in.Ops {
		m.stats.UnitOps[op.Unit]++
	}
	for _, mv := range in.Moves {
		m.stats.BusMoves[mv.Bus]++
	}
	if m.TraceFn != nil {
		m.TraceFn(fmt.Sprintf("cycle %d: %s", m.Cycles, in.String()))
	}
	return nil
}

func (m *Machine) branch(b *asm.Block) (next string, halted bool, err error) {
	br := b.Branch
	switch br.Kind {
	case asm.BranchHalt:
		return "", true, nil
	case asm.BranchNone:
		if br.Target == "" {
			return "", true, nil
		}
		return br.Target, false, nil
	case asm.BranchJump:
		m.Cycles++ // the jump instruction itself
		return br.Target, false, nil
	case asm.BranchCond:
		m.Cycles++
		var c int64
		if br.CondConst != nil {
			c = *br.CondConst
		} else {
			c, err = m.Reg(br.CondUnit, br.CondReg)
			if err != nil {
				return "", false, err
			}
		}
		if c != 0 {
			return br.Target, false, nil
		}
		return br.Else, false, nil
	}
	return "", false, fmt.Errorf("sim: bad branch kind %d", br.Kind)
}

// RunProgram is a convenience wrapper: execute prog against a copy of
// mem, returning the final memory.
func RunProgram(p *asm.Program, mem map[string]int64, maxCycles int) (map[string]int64, int, error) {
	m := New(p, mem)
	err := m.Run(maxCycles)
	return m.mem, m.Cycles, err
}
