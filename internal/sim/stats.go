package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats aggregates resource utilization over a simulation run: how many
// instruction slots each functional unit and bus actually filled. The
// architecture-exploration workflow uses this to spot under-used hardware
// (a unit at 5% utilization is a candidate for removal — the paper's
// Sec. VI experiment in reverse).
type Stats struct {
	// Instructions counts executed VLIW instructions (excluding control
	// transfers).
	Instructions int
	// UnitOps counts operations executed per functional unit.
	UnitOps map[string]int
	// BusMoves counts transfers carried per bus.
	BusMoves map[string]int
}

// Utilization returns the fraction of instruction slots the unit filled.
func (s *Stats) Utilization(unit string) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.UnitOps[unit]) / float64(s.Instructions)
}

// BusUtilization returns carried transfers per instruction for the bus
// (can exceed 1 on wide buses).
func (s *Stats) BusUtilization(bus string) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.BusMoves[bus]) / float64(s.Instructions)
}

func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d instructions executed\n", s.Instructions)
	var units []string
	for u := range s.UnitOps {
		units = append(units, u)
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Fprintf(&sb, "  unit %-4s %5d ops  (%.0f%% of slots)\n", u, s.UnitOps[u], 100*s.Utilization(u))
	}
	var buses []string
	for b := range s.BusMoves {
		buses = append(buses, b)
	}
	sort.Strings(buses)
	for _, b := range buses {
		fmt.Fprintf(&sb, "  bus  %-4s %5d moves (%.2f per instr)\n", b, s.BusMoves[b], s.BusUtilization(b))
	}
	return sb.String()
}

// Stats returns the utilization counters accumulated so far.
func (m *Machine) Stats() *Stats { return m.stats }
