package asm

import (
	"encoding/binary"
	"fmt"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// Binary object format: the automatically generated assembler of the
// paper's Fig. 1 transforms assembly into a binary consumed by the
// instruction-level simulator. This codec is that assembler/loader pair.
//
// Layout (all multi-byte integers varint, strings length-prefixed):
//
//	magic "AVOB", version byte
//	machine name
//	#blocks, then per block:
//	  name, #instrs
//	  per instr: #ops {unitIdx, op, dst, #srcs {tag, imm|reg}}
//	             #moves {busIdx, srcTag, ..., dstTag, ...}
//	  branch {kind, target, else, condUnitIdx, condReg, condConstTag, v}
const (
	objMagic   = "AVOB"
	objVersion = 1
)

type writer struct{ buf []byte }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}
func (w *writer) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) u8() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("asm: truncated object (byte)")
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("asm: truncated object (varint)")
	}
	r.pos += n
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("asm: truncated object (uvarint)")
	}
	r.pos += n
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	// Compare in uint64 space: a hostile length must not overflow int.
	if n > uint64(len(r.buf)-r.pos) {
		return "", fmt.Errorf("asm: truncated object (string)")
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// Encode assembles the program into its binary object form.
func Encode(p *Program) []byte {
	unitIdx := make(map[string]int)
	for i, u := range p.Machine.Units {
		unitIdx[u.Name] = i
	}
	bankIdx := make(map[string]int)
	for i, b := range p.Machine.Banks() {
		bankIdx[b] = i
	}
	busIdx := make(map[string]int)
	for i, b := range p.Machine.Buses {
		busIdx[b.Name] = i
	}
	w := &writer{}
	w.buf = append(w.buf, objMagic...)
	w.u8(objVersion)
	w.str(p.Machine.Name)
	w.uvarint(uint64(len(p.Blocks)))
	for _, b := range p.Blocks {
		w.str(b.Name)
		w.uvarint(uint64(len(b.Instrs)))
		for _, in := range b.Instrs {
			w.uvarint(uint64(len(in.Ops)))
			for _, op := range in.Ops {
				w.uvarint(uint64(unitIdx[op.Unit]))
				w.u8(byte(op.Op))
				w.uvarint(uint64(op.Dst))
				w.uvarint(uint64(len(op.Srcs)))
				for _, s := range op.Srcs {
					if s.IsImm {
						w.u8(1)
						w.varint(s.Imm)
					} else {
						w.u8(0)
						w.uvarint(uint64(s.Reg))
					}
				}
			}
			w.uvarint(uint64(len(in.Moves)))
			for _, mv := range in.Moves {
				w.uvarint(uint64(busIdx[mv.Bus]))
				if mv.FromUnit == "" {
					w.u8(1)
					w.str(mv.FromMem)
				} else {
					w.u8(0)
					w.uvarint(uint64(bankIdx[mv.FromUnit]))
					w.uvarint(uint64(mv.FromReg))
				}
				if mv.ToUnit == "" {
					w.u8(1)
					w.str(mv.ToMem)
				} else {
					w.u8(0)
					w.uvarint(uint64(bankIdx[mv.ToUnit]))
					w.uvarint(uint64(mv.ToReg))
				}
			}
		}
		w.u8(byte(b.Branch.Kind))
		w.str(b.Branch.Target)
		w.str(b.Branch.Else)
		if b.Branch.CondUnit == "" {
			w.uvarint(uint64(len(p.Machine.Banks())))
		} else {
			w.uvarint(uint64(bankIdx[b.Branch.CondUnit]))
		}
		w.uvarint(uint64(b.Branch.CondReg))
		if b.Branch.CondConst != nil {
			w.u8(1)
			w.varint(*b.Branch.CondConst)
		} else {
			w.u8(0)
		}
	}
	return w.buf
}

// Decode loads a binary object back into a Program against the given
// machine description (the loader checks the machine name matches).
func Decode(data []byte, m *isdl.Machine) (*Program, error) {
	if len(data) < len(objMagic)+1 || string(data[:len(objMagic)]) != objMagic {
		return nil, fmt.Errorf("asm: bad magic")
	}
	r := &reader{buf: data, pos: len(objMagic)}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != objVersion {
		return nil, fmt.Errorf("asm: unsupported object version %d", ver)
	}
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	if name != m.Name {
		return nil, fmt.Errorf("asm: object built for machine %q, loading on %q", name, m.Name)
	}
	unitName := func(i uint64) (string, error) {
		if int(i) >= len(m.Units) {
			return "", fmt.Errorf("asm: unit index %d out of range", i)
		}
		return m.Units[i].Name, nil
	}
	banks := m.Banks()
	bankName := func(i uint64) (string, error) {
		if int(i) >= len(banks) {
			return "", fmt.Errorf("asm: bank index %d out of range", i)
		}
		return banks[i], nil
	}
	nBlocks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	p := &Program{Machine: m}
	for bi := uint64(0); bi < nBlocks; bi++ {
		b := &Block{}
		if b.Name, err = r.str(); err != nil {
			return nil, err
		}
		nInstrs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		for ii := uint64(0); ii < nInstrs; ii++ {
			var in Instr
			nOps, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for k := uint64(0); k < nOps; k++ {
				var op MicroOp
				ui, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if op.Unit, err = unitName(ui); err != nil {
					return nil, err
				}
				ob, err := r.u8()
				if err != nil {
					return nil, err
				}
				op.Op = ir.Op(ob)
				dst, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				op.Dst = int(dst)
				nSrcs, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				for s := uint64(0); s < nSrcs; s++ {
					tag, err := r.u8()
					if err != nil {
						return nil, err
					}
					if tag == 1 {
						v, err := r.varint()
						if err != nil {
							return nil, err
						}
						op.Srcs = append(op.Srcs, Operand{IsImm: true, Imm: v})
					} else {
						reg, err := r.uvarint()
						if err != nil {
							return nil, err
						}
						op.Srcs = append(op.Srcs, Operand{Reg: int(reg)})
					}
				}
				in.Ops = append(in.Ops, op)
			}
			nMoves, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			for k := uint64(0); k < nMoves; k++ {
				var mv Move
				bi, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if int(bi) >= len(m.Buses) {
					return nil, fmt.Errorf("asm: bus index %d out of range", bi)
				}
				mv.Bus = m.Buses[bi].Name
				tag, err := r.u8()
				if err != nil {
					return nil, err
				}
				if tag == 1 {
					if mv.FromMem, err = r.str(); err != nil {
						return nil, err
					}
				} else {
					ui, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					if mv.FromUnit, err = bankName(ui); err != nil {
						return nil, err
					}
					fr, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					mv.FromReg = int(fr)
				}
				tag, err = r.u8()
				if err != nil {
					return nil, err
				}
				if tag == 1 {
					if mv.ToMem, err = r.str(); err != nil {
						return nil, err
					}
				} else {
					ui, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					if mv.ToUnit, err = bankName(ui); err != nil {
						return nil, err
					}
					tr, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					mv.ToReg = int(tr)
				}
				in.Moves = append(in.Moves, mv)
			}
			b.Instrs = append(b.Instrs, in)
		}
		kb, err := r.u8()
		if err != nil {
			return nil, err
		}
		b.Branch.Kind = BranchKind(kb)
		if b.Branch.Target, err = r.str(); err != nil {
			return nil, err
		}
		if b.Branch.Else, err = r.str(); err != nil {
			return nil, err
		}
		cu, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if int(cu) < len(banks) {
			b.Branch.CondUnit = banks[cu]
		}
		cr, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b.Branch.CondReg = int(cr)
		tag, err := r.u8()
		if err != nil {
			return nil, err
		}
		if tag == 1 {
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			b.Branch.CondConst = &v
		}
		p.Blocks = append(p.Blocks, b)
	}
	return p, nil
}
