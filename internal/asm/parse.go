package asm

import (
	"fmt"
	"strconv"
	"strings"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// ParseProgram assembles the textual format emitted by Program.String
// back into a Program — the front half of the "automatically generated
// assembler" of the paper's Fig. 1 (the back half is Encode).
//
//	; comments run to end of line
//	blockname:
//	  { U1: ADD R2, R0, #5 | DB: [a] -> U1.R0 | DB: U2.R1 -> [out] }
//	  { NOP }
//	  BNZ U1.R2, then else otherwise
//	  JMP target | HALT | FALL target
func ParseProgram(src string, m *isdl.Machine) (*Program, error) {
	p := &Program{Machine: m}
	var cur *Block
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasSuffix(line, ":"):
			name := strings.TrimSuffix(line, ":")
			if name == "" {
				return nil, errf("empty block name")
			}
			cur = &Block{Name: name}
			p.Blocks = append(p.Blocks, cur)
		case strings.HasPrefix(line, "{"):
			if cur == nil {
				return nil, errf("instruction before any block label")
			}
			in, err := parseInstr(line, m)
			if err != nil {
				return nil, errf("%v", err)
			}
			cur.Instrs = append(cur.Instrs, in)
		default:
			if cur == nil {
				return nil, errf("control transfer before any block label")
			}
			br, err := parseBranch(line, m)
			if err != nil {
				return nil, errf("%v", err)
			}
			cur.Branch = br
		}
	}
	if err := validateProgram(p); err != nil {
		return nil, err
	}
	return p, nil
}

func parseInstr(line string, m *isdl.Machine) (Instr, error) {
	var in Instr
	if !strings.HasSuffix(line, "}") {
		return in, fmt.Errorf("unterminated instruction %q", line)
	}
	body := strings.TrimSpace(line[1 : len(line)-1])
	if body == "" || body == "NOP" {
		return in, nil
	}
	for _, slot := range strings.Split(body, "|") {
		slot = strings.TrimSpace(slot)
		if slot == "" {
			continue
		}
		if strings.Contains(slot, "->") {
			mv, err := parseMoveSlot(slot, m)
			if err != nil {
				return in, err
			}
			in.Moves = append(in.Moves, mv)
		} else {
			op, err := parseOpSlot(slot, m)
			if err != nil {
				return in, err
			}
			in.Ops = append(in.Ops, op)
		}
	}
	return in, nil
}

// parseOpSlot parses "U1: ADD R2, R0, #5".
func parseOpSlot(slot string, m *isdl.Machine) (MicroOp, error) {
	var op MicroOp
	unit, rest, ok := strings.Cut(slot, ":")
	if !ok {
		return op, fmt.Errorf("op slot %q missing unit", slot)
	}
	op.Unit = strings.TrimSpace(unit)
	if m.Unit(op.Unit) == nil {
		return op, fmt.Errorf("unknown unit %q", op.Unit)
	}
	fields := strings.Fields(strings.ReplaceAll(rest, ",", " "))
	if len(fields) < 2 {
		return op, fmt.Errorf("op slot %q too short", slot)
	}
	name := fields[0]
	if name == "MOVI" {
		op.Op = ir.OpConst
	} else {
		op.Op = ir.ParseOp(name)
		if op.Op == ir.OpInvalid {
			return op, fmt.Errorf("unknown operation %q", name)
		}
	}
	dst, err := parseReg(fields[1])
	if err != nil {
		return op, fmt.Errorf("op slot %q: %w", slot, err)
	}
	op.Dst = dst
	for _, f := range fields[2:] {
		o, err := parseOperand(f)
		if err != nil {
			return op, fmt.Errorf("op slot %q: %w", slot, err)
		}
		op.Srcs = append(op.Srcs, o)
	}
	if op.Op != ir.OpConst && len(op.Srcs) != op.Op.Arity() {
		return op, fmt.Errorf("op slot %q: %s takes %d operands, got %d", slot, op.Op, op.Op.Arity(), len(op.Srcs))
	}
	return op, nil
}

// parseMoveSlot parses "DB: U1.R0 -> [out]" / "DB: [a] -> U2.R1".
func parseMoveSlot(slot string, m *isdl.Machine) (Move, error) {
	var mv Move
	bus, rest, ok := strings.Cut(slot, ":")
	if !ok {
		return mv, fmt.Errorf("move slot %q missing bus", slot)
	}
	mv.Bus = strings.TrimSpace(bus)
	if m.Bus(mv.Bus) == nil {
		return mv, fmt.Errorf("unknown bus %q", mv.Bus)
	}
	from, to, ok := strings.Cut(rest, "->")
	if !ok {
		return mv, fmt.Errorf("move slot %q missing ->", slot)
	}
	fUnit, fReg, fMem, err := parseEndpoint(strings.TrimSpace(from), m)
	if err != nil {
		return mv, err
	}
	tUnit, tReg, tMem, err := parseEndpoint(strings.TrimSpace(to), m)
	if err != nil {
		return mv, err
	}
	mv.FromUnit, mv.FromReg, mv.FromMem = fUnit, fReg, fMem
	mv.ToUnit, mv.ToReg, mv.ToMem = tUnit, tReg, tMem
	if fUnit == "" && tUnit == "" {
		return mv, fmt.Errorf("move slot %q is memory to memory", slot)
	}
	return mv, nil
}

func parseEndpoint(s string, m *isdl.Machine) (unit string, reg int, mem string, err error) {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		mem = s[1 : len(s)-1]
		if mem == "" {
			return "", 0, "", fmt.Errorf("empty memory operand")
		}
		return "", 0, mem, nil
	}
	u, r, ok := strings.Cut(s, ".")
	if !ok {
		return "", 0, "", fmt.Errorf("bad endpoint %q", s)
	}
	if m.BankSize(u) == 0 {
		return "", 0, "", fmt.Errorf("unknown register bank %q", u)
	}
	reg, err = parseReg(r)
	if err != nil {
		return "", 0, "", err
	}
	return u, reg, "", nil
}

func parseReg(s string) (int, error) {
	if !strings.HasPrefix(s, "R") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseOperand(s string) (Operand, error) {
	if strings.HasPrefix(s, "#") {
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return Operand{}, fmt.Errorf("bad immediate %q", s)
		}
		return Operand{IsImm: true, Imm: v}, nil
	}
	r, err := parseReg(s)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Reg: r}, nil
}

func parseBranch(line string, m *isdl.Machine) (Branch, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	if len(fields) == 0 {
		return Branch{}, fmt.Errorf("empty control transfer")
	}
	switch fields[0] {
	case "HALT":
		return Branch{Kind: BranchHalt}, nil
	case "JMP":
		if len(fields) != 2 {
			return Branch{}, fmt.Errorf("JMP needs a target")
		}
		return Branch{Kind: BranchJump, Target: fields[1]}, nil
	case "FALL":
		if len(fields) != 2 {
			return Branch{}, fmt.Errorf("FALL needs a target")
		}
		return Branch{Kind: BranchNone, Target: fields[1]}, nil
	case "BNZ":
		// BNZ U1.R2, target else otherwise   /  BNZ #1, target else otherwise
		if len(fields) != 5 || fields[3] != "else" {
			return Branch{}, fmt.Errorf("BNZ syntax: BNZ <cond>, <target> else <else>")
		}
		br := Branch{Kind: BranchCond, Target: fields[2], Else: fields[4]}
		if strings.HasPrefix(fields[1], "#") {
			v, err := strconv.ParseInt(fields[1][1:], 10, 64)
			if err != nil {
				return Branch{}, fmt.Errorf("bad BNZ constant %q", fields[1])
			}
			br.CondConst = &v
			return br, nil
		}
		unit, reg, _, err := parseEndpoint(fields[1], m)
		if err != nil || unit == "" {
			return Branch{}, fmt.Errorf("bad BNZ condition %q", fields[1])
		}
		br.CondUnit, br.CondReg = unit, reg
		return br, nil
	}
	return Branch{}, fmt.Errorf("unknown control transfer %q", line)
}

// validateProgram checks register ranges and branch targets.
func validateProgram(p *Program) error {
	names := make(map[string]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		if names[b.Name] {
			return fmt.Errorf("asm: duplicate block %q", b.Name)
		}
		names[b.Name] = true
	}
	checkReg := func(bank string, reg int) error {
		size := p.Machine.BankSize(bank)
		if size == 0 {
			return fmt.Errorf("asm: unknown register bank %q", bank)
		}
		if reg < 0 || reg >= size {
			return fmt.Errorf("asm: register %s.R%d out of range (file size %d)", bank, reg, size)
		}
		return nil
	}
	for _, b := range p.Blocks {
		for _, in := range b.Instrs {
			for _, op := range in.Ops {
				if p.Machine.Unit(op.Unit) == nil {
					return fmt.Errorf("asm: unknown unit %q", op.Unit)
				}
				bank := p.Machine.BankOf(op.Unit)
				if err := checkReg(bank, op.Dst); err != nil {
					return err
				}
				for _, s := range op.Srcs {
					if !s.IsImm {
						if err := checkReg(bank, s.Reg); err != nil {
							return err
						}
					}
				}
			}
			for _, mv := range in.Moves {
				if mv.FromUnit != "" {
					if err := checkReg(mv.FromUnit, mv.FromReg); err != nil {
						return err
					}
				}
				if mv.ToUnit != "" {
					if err := checkReg(mv.ToUnit, mv.ToReg); err != nil {
						return err
					}
				}
			}
		}
		for _, target := range []string{b.Branch.Target, b.Branch.Else} {
			if target != "" && !names[target] {
				return fmt.Errorf("asm: block %s transfers to unknown block %q", b.Name, target)
			}
		}
		if b.Branch.Kind == BranchCond && b.Branch.CondConst == nil {
			if err := checkReg(b.Branch.CondUnit, b.Branch.CondReg); err != nil {
				return err
			}
		}
	}
	return nil
}
