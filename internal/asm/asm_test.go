package asm

import (
	"strings"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/cover"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/regalloc"
)

func emit(t *testing.T, w bench.Workload, m *isdl.Machine) *Block {
	t.Helper()
	res, err := cover.CoverBlock(w.Block, m, cover.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := regalloc.Allocate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	blk, err := EmitBlock(res.Best, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func TestEmitBlockShape(t *testing.T) {
	m := isdl.ExampleArch(4)
	blk := emit(t, bench.Ex1(), m)
	if blk.BodySize() != 7 {
		t.Errorf("Ex1 body = %d instructions, want 7", blk.BodySize())
	}
	if blk.Branch.Kind != BranchHalt {
		t.Errorf("branch kind = %v, want HALT", blk.Branch.Kind)
	}
	// Every instruction slot must reference registers within bank size.
	for _, in := range blk.Instrs {
		for _, op := range in.Ops {
			u := m.Unit(op.Unit)
			if u == nil {
				t.Fatalf("unknown unit %s", op.Unit)
			}
			if op.Dst >= u.Regs.Size {
				t.Errorf("op %s writes R%d beyond bank", op, op.Dst)
			}
			for _, s := range op.Srcs {
				if !s.IsImm && s.Reg >= u.Regs.Size {
					t.Errorf("op %s reads R%d beyond bank", op, s.Reg)
				}
			}
		}
	}
}

func TestProgramString(t *testing.T) {
	m := isdl.ExampleArch(4)
	blk := emit(t, bench.Ex1(), m)
	p := &Program{Machine: m, Blocks: []*Block{blk}}
	s := p.String()
	for _, want := range []string{"Ex1:", "{ ", "HALT", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("program text missing %q:\n%s", want, s)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := isdl.ExampleArch(4)
	for _, w := range bench.PaperWorkloads() {
		blk := emit(t, w, m)
		p := &Program{Machine: m, Blocks: []*Block{blk}}
		obj := Encode(p)
		back, err := Decode(obj, m)
		if err != nil {
			t.Fatalf("%s: Decode: %v", w.Name, err)
		}
		if back.String() != p.String() {
			t.Errorf("%s: round trip mismatch:\n%s\nvs\n%s", w.Name, p, back)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	m := isdl.ExampleArch(4)
	if _, err := Decode([]byte("not an object"), m); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(nil, m); err == nil {
		t.Error("empty input accepted")
	}
	// Truncation at every prefix must error, not panic.
	blk := emit(t, bench.Ex1(), m)
	obj := Encode(&Program{Machine: m, Blocks: []*Block{blk}})
	for i := 0; i < len(obj)-1; i++ {
		if _, err := Decode(obj[:i], m); err == nil {
			t.Errorf("truncated object (%d bytes) accepted", i)
		}
	}
}

func TestDecodeWrongMachine(t *testing.T) {
	m := isdl.ExampleArch(4)
	blk := emit(t, bench.Ex1(), m)
	obj := Encode(&Program{Machine: m, Blocks: []*Block{blk}})
	if _, err := Decode(obj, isdl.ArchitectureII(4)); err == nil {
		t.Error("object for ExampleVLIW loaded on ArchitectureII")
	}
}

func TestCodeSizeCountsControlFlow(t *testing.T) {
	m := isdl.ExampleArch(4)
	b1 := emit(t, bench.Ex1(), m)
	b1.Branch = Branch{Kind: BranchJump, Target: "x"}
	b2 := emit(t, bench.Ex1(), m)
	b2.Name = "x"
	b2.Branch = Branch{Kind: BranchHalt}
	p := &Program{Machine: m, Blocks: []*Block{b1, b2}}
	want := b1.BodySize() + 1 + b2.BodySize() // jump counted, halt not
	if got := p.CodeSize(); got != want {
		t.Errorf("CodeSize = %d, want %d", got, want)
	}
}

func TestBranchString(t *testing.T) {
	c := int64(1)
	cases := []struct {
		b    Branch
		want string
	}{
		{Branch{Kind: BranchJump, Target: "t"}, "JMP t"},
		{Branch{Kind: BranchHalt}, "HALT"},
		{Branch{Kind: BranchCond, Target: "a", Else: "b", CondUnit: "U1", CondReg: 2}, "BNZ U1.R2, a else b"},
		{Branch{Kind: BranchCond, Target: "a", Else: "b", CondConst: &c}, "BNZ #1, a else b"},
	}
	for _, cse := range cases {
		if got := cse.b.String(); got != cse.want {
			t.Errorf("Branch.String() = %q, want %q", got, cse.want)
		}
	}
}

func TestMicroOpString(t *testing.T) {
	mo := MicroOp{Unit: "U1", Op: ir.OpAdd, Dst: 2, Srcs: []Operand{{Reg: 0}, {IsImm: true, Imm: 5}}}
	if got := mo.String(); got != "U1: ADD R2, R0, #5" {
		t.Errorf("MicroOp.String() = %q", got)
	}
	movi := MicroOp{Unit: "U2", Op: ir.OpConst, Dst: 0, Srcs: []Operand{{IsImm: true, Imm: 7}}}
	if got := movi.String(); got != "U2: MOVI R0, #7" {
		t.Errorf("MOVI string = %q", got)
	}
}
