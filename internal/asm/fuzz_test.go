package asm

import (
	"testing"

	"aviv/internal/isdl"
)

// FuzzDecode checks the binary loader never panics on corrupt objects.
func FuzzDecode(f *testing.F) {
	m := isdl.ExampleArch(4)
	blk := &Block{Name: "b", Branch: Branch{Kind: BranchHalt}}
	obj := Encode(&Program{Machine: m, Blocks: []*Block{blk}})
	f.Add(obj)
	f.Add([]byte("AVOB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data, m)
		if err != nil {
			return
		}
		_ = p.String() // printing a decoded program must not panic
	})
}

// FuzzParseProgram checks the textual assembler never panics, and that
// accepted programs survive a print/parse round trip.
func FuzzParseProgram(f *testing.F) {
	m := isdl.ExampleArch(4)
	seeds := []string{
		"b:\n  { NOP }\n  HALT\n",
		"b:\n  { U1: ADD R0, R1, R2 | DB: [a] -> U2.R0 }\n  JMP b\n",
		"b:\n  BNZ U1.R0, b else b\n",
		"; only a comment",
		"b:\n  { U2: MOVI R0, #-5 }\n  FALL b\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseProgram(src, m)
		if err != nil {
			return
		}
		text := p.String()
		back, err := ParseProgram(text, m)
		if err != nil {
			t.Fatalf("re-parse of emitted text failed: %v\n%s", err, text)
		}
		if back.String() != text {
			t.Fatalf("print/parse not idempotent:\n%s\nvs\n%s", text, back.String())
		}
	})
}
