package asm

import (
	"strings"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/isdl"
)

func TestParseProgramRoundTrip(t *testing.T) {
	m := isdl.ExampleArch(4)
	for _, w := range bench.PaperWorkloads() {
		blk := emit(t, w, m)
		p := &Program{Machine: m, Blocks: []*Block{blk}}
		text := p.String()
		back, err := ParseProgram(text, m)
		if err != nil {
			t.Fatalf("%s: ParseProgram: %v\n%s", w.Name, err, text)
		}
		if back.String() != text {
			t.Errorf("%s: text round trip mismatch:\n%s\nvs\n%s", w.Name, text, back)
		}
	}
}

func TestParseProgramHandWritten(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	src := `
; a hand-written program
entry:
  { DB: [x] -> U1.R0 }
  { U1: CMPLT R1, R0, #10 }
  BNZ U1.R1, small else big
small:
  { U2: MOVI R0, #1 }
  { DB: U2.R0 -> [r] }
  JMP done
big:
  { U2: MOVI R0, #2 | DB: [x] -> U1.R2 }
  { DB: U2.R0 -> [r] }
  FALL done
done:
  HALT
`
	p, err := ParseProgram(src, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(p.Blocks))
	}
	if p.Blocks[0].Branch.Kind != BranchCond || p.Blocks[0].Branch.Target != "small" {
		t.Errorf("entry branch = %+v", p.Blocks[0].Branch)
	}
	if p.Blocks[2].Branch.Kind != BranchNone || p.Blocks[2].Branch.Target != "done" {
		t.Errorf("big fallthrough = %+v", p.Blocks[2].Branch)
	}
	big := p.Blocks[2]
	if len(big.Instrs[0].Ops) != 1 || len(big.Instrs[0].Moves) != 1 {
		t.Errorf("big instr 0 slots wrong: %+v", big.Instrs[0])
	}
	// NOP instruction.
	p2, err := ParseProgram("b:\n  { NOP }\n  HALT\n", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Blocks[0].Instrs) != 1 || len(p2.Blocks[0].Instrs[0].Ops) != 0 {
		t.Error("NOP not parsed as empty instruction")
	}
}

func TestParseProgramErrors(t *testing.T) {
	m := isdl.ExampleArch(4)
	bad := []string{
		"{ U1: ADD R0, R1, R2 }",          // instr before label
		"b:\n  { U9: ADD R0, R1, R2 }\n",  // unknown unit
		"b:\n  { U1: FROB R0, R1, R2 }\n", // unknown op
		"b:\n  { U1: ADD R0, R1 }\n",      // arity
		"b:\n  { U1: ADD R9, R1, R2 }\n",  // register out of range
		"b:\n  { DB: [a] -> [b] }\n",      // mem to mem
		"b:\n  { ZZ: [a] -> U1.R0 }\n",    // unknown bus
		"b:\n  { DB: [a] -> U1.R0 \n",     // unterminated
		"b:\n  JMP\n",                     // missing target
		"b:\n  JMP nowhere\n",             // unknown target
		"b:\n  BNZ U1.R0, x else\n",       // bad BNZ
		"b:\n  HALT\nb:\n  HALT\n",        // duplicate block
		"b:\n  WAT\n",                     // unknown control
	}
	for _, src := range bad {
		if _, err := ParseProgram(src, m); err == nil {
			t.Errorf("accepted invalid assembly:\n%s", src)
		}
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	m := isdl.ExampleArch(4)
	src := "; header\n\nb: ; label comment\n\n  { NOP } ; body\n  HALT ; done\n"
	p, err := ParseProgram(src, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 1 || !strings.Contains(p.String(), "HALT") {
		t.Errorf("comment handling wrong: %s", p)
	}
}
