package asm

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// This file implements bit-level VLIW instruction-word encoding, derived
// mechanically from the machine description the way the paper's
// ISDL-generated assembler would be. It makes the optimization objective
// concrete: the paper minimizes code size because on-chip ROM is the
// scarce resource, and ROM bits = instructions × word width.
//
// Word layout (all fields fixed-width, sized from the machine):
//
//	[1 bit]  kind: 0 = datapath word, 1 = control word
//	datapath: per unit  — opcode (0 = NOP, 1 = MOVI, 2.. = ops),
//	                      dst reg, maxArity × (1-bit imm tag + operand)
//	          per bus   — Width × slots: 1-bit valid,
//	                      src (1-bit mem tag + unit/reg or symbol),
//	                      dst (same)
//	control:  2-bit kind (JMP/BNZ/HALT/FALL), cond unit+reg+imm-tag,
//	          two block indices
//
// Immediates and memory names index per-program constant/symbol pools
// (standard practice for wide-immediate VLIW encodings).

// WordLayout describes the instruction word derived from a machine.
type WordLayout struct {
	Machine *isdl.Machine

	// Bits is the total instruction word width.
	Bits int
	// UnitOpcodeBits maps each unit to its opcode field width.
	UnitOpcodeBits map[string]int
	// UnitRegBits maps each unit to its register field width.
	UnitRegBits map[string]int
	// MaxArity is the operand field count per unit slot.
	MaxArity int
	// PoolBits is the width of constant-pool and symbol-pool indices.
	PoolBits int
	// unitOps fixes each unit's opcode numbering (sorted op list).
	unitOps map[string][]ir.Op
}

// NewWordLayout computes the fixed instruction-word layout for a machine.
func NewWordLayout(m *isdl.Machine) *WordLayout {
	l := &WordLayout{
		Machine:        m,
		UnitOpcodeBits: make(map[string]int),
		UnitRegBits:    make(map[string]int),
		unitOps:        make(map[string][]ir.Op),
		PoolBits:       12,
		MaxArity:       1,
	}
	for _, u := range m.Units {
		ops := u.OpList()
		l.unitOps[u.Name] = ops
		l.UnitOpcodeBits[u.Name] = bitsFor(len(ops) + 2) // +NOP +MOVI
		l.UnitRegBits[u.Name] = bitsFor(m.BankSize(u.Regs.Name))
		for _, op := range ops {
			if op.Arity() > l.MaxArity {
				l.MaxArity = op.Arity()
			}
		}
	}
	bits := 1 // kind bit
	for _, u := range m.Units {
		bits += l.UnitOpcodeBits[u.Name] // opcode
		bits += l.UnitRegBits[u.Name]    // dst
		// operands: tag + max(reg field, pool index)
		opnd := l.UnitRegBits[u.Name]
		if l.PoolBits > opnd {
			opnd = l.PoolBits
		}
		bits += l.MaxArity * (1 + opnd)
	}
	unitIdxBits := bitsFor(len(m.Banks()))
	maxRegBits := 0
	for _, u := range m.Units {
		if b := l.UnitRegBits[u.Name]; b > maxRegBits {
			maxRegBits = b
		}
	}
	endpoint := 1 + unitIdxBits + maxRegBits
	if 1+l.PoolBits > endpoint {
		endpoint = 1 + l.PoolBits
	}
	for _, b := range m.Buses {
		bits += b.Width * (1 + 2*endpoint)
	}
	// A control word must also fit in Bits; it is small (2 + cond + 2
	// block indices), so the datapath dominates, but take the max anyway.
	control := 1 + 2 + 1 + unitIdxBits + maxRegBits + l.PoolBits + 2*l.PoolBits
	if control > bits {
		bits = control
	}
	l.Bits = bits
	return l
}

func bitsFor(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// WordsPerInstr returns how many 64-bit words hold one instruction.
func (l *WordLayout) WordsPerInstr() int { return (l.Bits + 63) / 64 }

// Describe renders the layout (for isdldump).
func (l *WordLayout) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "instruction word: %d bits (%d x 64-bit words)\n", l.Bits, l.WordsPerInstr())
	for _, u := range l.Machine.Units {
		fmt.Fprintf(&sb, "  unit %-4s opcode %d bits, reg %d bits, %d operand fields\n",
			u.Name, l.UnitOpcodeBits[u.Name], l.UnitRegBits[u.Name], l.MaxArity)
	}
	for _, b := range l.Machine.Buses {
		fmt.Fprintf(&sb, "  bus  %-4s %d move slot(s)\n", b.Name, b.Width)
	}
	return sb.String()
}

// WordProgram is a program lowered to fixed-width instruction words.
type WordProgram struct {
	Layout *WordLayout
	// Words holds the instruction stream, WordsPerInstr 64-bit words per
	// instruction, blocks concatenated in order.
	Words []uint64
	// BlockOffsets maps block names to instruction indices.
	BlockOffsets map[string]int
	// Consts is the constant pool.
	Consts []int64
	// Syms is the memory symbol pool.
	Syms []string
	// NumInstrs counts encoded instructions (bodies + control words).
	NumInstrs int
}

// ROMBits returns the total program size in ROM bits — the cost function
// the paper's introduction motivates.
func (p *WordProgram) ROMBits() int { return p.NumInstrs * p.Layout.Bits }

type bitWriter struct {
	words []uint64
	pos   int // bit position within the current instruction
	base  int // word index of the current instruction
	width int // bits per instruction
}

func newBitWriter(width int) *bitWriter { return &bitWriter{width: width} }

func (w *bitWriter) beginInstr() {
	w.base = len(w.words)
	for i := 0; i < (w.width+63)/64; i++ {
		w.words = append(w.words, 0)
	}
	w.pos = 0
}

func (w *bitWriter) put(v uint64, bits int) {
	if bits == 0 {
		return
	}
	if v >= 1<<uint(bits) {
		panic(fmt.Sprintf("asm: value %d overflows %d-bit field", v, bits))
	}
	for i := 0; i < bits; i++ {
		if v&(1<<uint(i)) != 0 {
			idx := w.base + (w.pos+i)/64
			w.words[idx] |= 1 << uint((w.pos+i)%64)
		}
	}
	w.pos += bits
	if w.pos > w.width {
		panic("asm: instruction word overflow")
	}
}

type bitReader struct {
	words []uint64
	pos   int
	base  int
	width int
}

func (r *bitReader) beginInstr(instr int) {
	r.base = instr * ((r.width + 63) / 64)
	r.pos = 0
}

func (r *bitReader) get(bits int) uint64 {
	var v uint64
	for i := 0; i < bits; i++ {
		idx := r.base + (r.pos+i)/64
		if r.words[idx]&(1<<uint((r.pos+i)%64)) != 0 {
			v |= 1 << uint(i)
		}
	}
	r.pos += bits
	return v
}

// EncodeWords lowers a program to fixed-width instruction words.
func EncodeWords(p *Program) (*WordProgram, error) {
	l := NewWordLayout(p.Machine)
	wp := &WordProgram{Layout: l, BlockOffsets: make(map[string]int)}

	constIdx := map[int64]int{}
	constOf := func(v int64) (int, error) {
		if i, ok := constIdx[v]; ok {
			return i, nil
		}
		i := len(wp.Consts)
		if i >= 1<<uint(l.PoolBits) {
			return 0, fmt.Errorf("asm: constant pool overflow")
		}
		constIdx[v] = i
		wp.Consts = append(wp.Consts, v)
		return i, nil
	}
	symIdx := map[string]int{}
	symOf := func(s string) (int, error) {
		if i, ok := symIdx[s]; ok {
			return i, nil
		}
		i := len(wp.Syms)
		if i >= 1<<uint(l.PoolBits) {
			return 0, fmt.Errorf("asm: symbol pool overflow")
		}
		symIdx[s] = i
		wp.Syms = append(wp.Syms, s)
		return i, nil
	}
	unitIdx := map[string]int{}
	for i, b := range p.Machine.Banks() {
		unitIdx[b] = i
	}
	unitIdxBits := bitsFor(len(p.Machine.Banks()))
	maxRegBits := 0
	for _, u := range p.Machine.Units {
		if b := l.UnitRegBits[u.Name]; b > maxRegBits {
			maxRegBits = b
		}
	}
	endpointBits := 1 + unitIdxBits + maxRegBits
	if 1+l.PoolBits > endpointBits {
		endpointBits = 1 + l.PoolBits
	}
	blockIdx := map[string]int{}
	for i, b := range p.Blocks {
		blockIdx[b.Name] = i
	}

	w := newBitWriter(l.Bits)
	for _, b := range p.Blocks {
		wp.BlockOffsets[b.Name] = wp.NumInstrs
		for _, in := range b.Instrs {
			if err := encodeDatapath(w, l, p.Machine, in, constOf, symOf, unitIdx, unitIdxBits, maxRegBits, endpointBits); err != nil {
				return nil, fmt.Errorf("asm: block %s: %w", b.Name, err)
			}
			wp.NumInstrs++
		}
		if b.Branch.Kind != BranchNone || b.Branch.Target != "" {
			if err := encodeControl(w, l, b.Branch, blockIdx, constOf, unitIdx, unitIdxBits, maxRegBits); err != nil {
				return nil, fmt.Errorf("asm: block %s: %w", b.Name, err)
			}
			wp.NumInstrs++
		}
	}
	wp.Words = w.words
	return wp, nil
}

func encodeDatapath(w *bitWriter, l *WordLayout, m *isdl.Machine, in Instr,
	constOf func(int64) (int, error), symOf func(string) (int, error),
	unitIdx map[string]int, unitIdxBits, maxRegBits, endpointBits int) error {

	w.beginInstr()
	w.put(0, 1) // datapath word

	opsByUnit := map[string]*MicroOp{}
	for i := range in.Ops {
		op := &in.Ops[i]
		if opsByUnit[op.Unit] != nil {
			return fmt.Errorf("unit %s used twice", op.Unit)
		}
		opsByUnit[op.Unit] = op
	}
	for _, u := range m.Units {
		op := opsByUnit[u.Name]
		opcBits := l.UnitOpcodeBits[u.Name]
		regBits := l.UnitRegBits[u.Name]
		opndBits := regBits
		if l.PoolBits > opndBits {
			opndBits = l.PoolBits
		}
		if op == nil {
			w.put(0, opcBits) // NOP
			w.put(0, regBits)
			for i := 0; i < l.MaxArity; i++ {
				w.put(0, 1+opndBits)
			}
			continue
		}
		code := uint64(1) // MOVI
		if op.Op != ir.OpConst {
			idx := opIndex(l.unitOps[u.Name], op.Op)
			if idx < 0 {
				return fmt.Errorf("unit %s cannot encode %s", u.Name, op.Op)
			}
			code = uint64(idx + 2)
		}
		w.put(code, opcBits)
		w.put(uint64(op.Dst), regBits)
		for i := 0; i < l.MaxArity; i++ {
			if i >= len(op.Srcs) {
				w.put(0, 1+opndBits)
				continue
			}
			s := op.Srcs[i]
			if s.IsImm {
				ci, err := constOf(s.Imm)
				if err != nil {
					return err
				}
				w.put(1, 1)
				w.put(uint64(ci), opndBits)
			} else {
				w.put(0, 1)
				w.put(uint64(s.Reg), opndBits)
			}
		}
	}

	movesByBus := map[string][]Move{}
	for _, mv := range in.Moves {
		movesByBus[mv.Bus] = append(movesByBus[mv.Bus], mv)
	}
	putEndpoint := func(unit string, reg int, mem string) error {
		if unit == "" {
			w.put(1, 1)
			si, err := symOf(mem)
			if err != nil {
				return err
			}
			w.put(uint64(si), endpointBits-1)
			return nil
		}
		w.put(0, 1)
		w.put(uint64(unitIdx[unit]), unitIdxBits)
		w.put(uint64(reg), maxRegBits)
		w.put(0, endpointBits-1-unitIdxBits-maxRegBits)
		return nil
	}
	for _, bus := range m.Buses {
		moves := movesByBus[bus.Name]
		if len(moves) > bus.Width {
			return fmt.Errorf("bus %s carries %d moves, width %d", bus.Name, len(moves), bus.Width)
		}
		for slot := 0; slot < bus.Width; slot++ {
			if slot >= len(moves) {
				w.put(0, 1+2*endpointBits)
				continue
			}
			mv := moves[slot]
			w.put(1, 1)
			if err := putEndpoint(mv.FromUnit, mv.FromReg, mv.FromMem); err != nil {
				return err
			}
			if err := putEndpoint(mv.ToUnit, mv.ToReg, mv.ToMem); err != nil {
				return err
			}
		}
	}
	return nil
}

func encodeControl(w *bitWriter, l *WordLayout, br Branch, blockIdx map[string]int,
	constOf func(int64) (int, error), unitIdx map[string]int, unitIdxBits, maxRegBits int) error {
	w.beginInstr()
	w.put(1, 1) // control word
	w.put(uint64(br.Kind), 2)
	target := func(name string) (uint64, error) {
		if name == "" {
			return 0, nil
		}
		i, ok := blockIdx[name]
		if !ok {
			return 0, fmt.Errorf("unknown block %q", name)
		}
		return uint64(i), nil
	}
	if br.CondConst != nil {
		w.put(1, 1)
		ci, err := constOf(*br.CondConst)
		if err != nil {
			return err
		}
		w.put(uint64(ci), l.PoolBits)
		w.put(0, unitIdxBits+maxRegBits)
	} else {
		w.put(0, 1)
		if br.CondUnit != "" {
			w.put(uint64(unitIdx[br.CondUnit]), unitIdxBits)
		} else {
			w.put(0, unitIdxBits)
		}
		w.put(uint64(br.CondReg), maxRegBits)
		w.put(0, l.PoolBits)
	}
	t, err := target(br.Target)
	if err != nil {
		return err
	}
	w.put(t, l.PoolBits)
	e, err := target(br.Else)
	if err != nil {
		return err
	}
	w.put(e, l.PoolBits)
	return nil
}

func opIndex(ops []ir.Op, op ir.Op) int {
	for i, o := range ops {
		if o == op {
			return i
		}
	}
	return -1
}

// Disassemble decodes a WordProgram back into slot occupancy counts per
// instruction, used to verify the encoding. (Full structural decoding is
// exercised in tests; the byte-level object format of Encode/Decode is
// the loader's path.)
func (p *WordProgram) Disassemble(m *isdl.Machine) ([]Instr, []Branch, error) {
	l := p.Layout
	r := &bitReader{words: p.Words, width: l.Bits}
	banks := m.Banks()
	unitIdxBits := bitsFor(len(banks))
	maxRegBits := 0
	for _, u := range m.Units {
		if b := l.UnitRegBits[u.Name]; b > maxRegBits {
			maxRegBits = b
		}
	}
	endpointBits := 1 + unitIdxBits + maxRegBits
	if 1+l.PoolBits > endpointBits {
		endpointBits = 1 + l.PoolBits
	}

	var instrs []Instr
	var branches []Branch
	names := blockNames(p)
	for i := 0; i < p.NumInstrs; i++ {
		r.beginInstr(i)
		if r.get(1) == 1 {
			var br Branch
			br.Kind = BranchKind(r.get(2))
			if r.get(1) == 1 {
				ci := r.get(l.PoolBits)
				v := p.Consts[ci]
				br.CondConst = &v
				r.get(unitIdxBits + maxRegBits)
			} else {
				ui := r.get(unitIdxBits)
				if int(ui) < len(banks) {
					br.CondUnit = banks[ui]
				}
				br.CondReg = int(r.get(maxRegBits))
				r.get(l.PoolBits)
			}
			ti := r.get(l.PoolBits)
			ei := r.get(l.PoolBits)
			if int(ti) < len(names) {
				br.Target = names[ti]
			}
			if int(ei) < len(names) {
				br.Else = names[ei]
			}
			branches = append(branches, br)
			continue
		}
		var in Instr
		for _, u := range m.Units {
			opcBits := l.UnitOpcodeBits[u.Name]
			regBits := l.UnitRegBits[u.Name]
			opndBits := regBits
			if l.PoolBits > opndBits {
				opndBits = l.PoolBits
			}
			code := r.get(opcBits)
			dst := int(r.get(regBits))
			var srcs []Operand
			for k := 0; k < l.MaxArity; k++ {
				tag := r.get(1)
				val := r.get(opndBits)
				srcs = append(srcs, Operand{IsImm: tag == 1, Imm: int64(val), Reg: int(val)})
			}
			if code == 0 {
				continue // NOP slot
			}
			op := MicroOp{Unit: u.Name, Dst: dst}
			if code == 1 {
				op.Op = ir.OpConst
				op.Srcs = srcs[:1]
			} else {
				op.Op = l.unitOps[u.Name][code-2]
				op.Srcs = srcs[:op.Op.Arity()]
			}
			for k := range op.Srcs {
				if op.Srcs[k].IsImm {
					op.Srcs[k].Imm = p.Consts[op.Srcs[k].Imm]
				}
			}
			in.Ops = append(in.Ops, op)
		}
		for _, bus := range m.Buses {
			for slot := 0; slot < bus.Width; slot++ {
				valid := r.get(1)
				if valid == 0 {
					r.get(2 * endpointBits)
					continue
				}
				var mv Move
				mv.Bus = bus.Name
				readEndpoint := func() (unit string, reg int, mem string) {
					if r.get(1) == 1 {
						si := r.get(endpointBits - 1)
						return "", 0, p.Syms[si]
					}
					ui := r.get(unitIdxBits)
					reg = int(r.get(maxRegBits))
					r.get(endpointBits - 1 - unitIdxBits - maxRegBits)
					if int(ui) < len(banks) {
						return banks[ui], reg, ""
					}
					return "", reg, ""
				}
				mv.FromUnit, mv.FromReg, mv.FromMem = readEndpoint()
				mv.ToUnit, mv.ToReg, mv.ToMem = readEndpoint()
				in.Moves = append(in.Moves, mv)
			}
		}
		instrs = append(instrs, in)
	}
	return instrs, branches, nil
}

func blockNames(p *WordProgram) []string {
	names := make([]string, len(p.BlockOffsets))
	type kv struct {
		name string
		off  int
	}
	var list []kv
	for n, o := range p.BlockOffsets {
		list = append(list, kv{n, o})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].off < list[j].off })
	names = names[:0]
	for _, e := range list {
		names = append(names, e.name)
	}
	return names
}
