package asm

import (
	"fmt"
	"testing"

	"aviv/internal/bench"
	"aviv/internal/isdl"
)

func TestWordLayoutSanity(t *testing.T) {
	for _, m := range []*isdl.Machine{
		isdl.ExampleArch(4), isdl.ArchitectureII(4), isdl.WideDSP(8), isdl.SingleIssueDSP(16),
	} {
		l := NewWordLayout(m)
		if l.Bits <= 0 {
			t.Errorf("%s: %d-bit word", m.Name, l.Bits)
		}
		if l.WordsPerInstr() != (l.Bits+63)/64 {
			t.Errorf("%s: WordsPerInstr inconsistent", m.Name)
		}
		// Wider machines need wider words.
		desc := l.Describe()
		if desc == "" {
			t.Error("empty describe")
		}
	}
	// Architecture II (2 units) must have a narrower word than the
	// 3-unit example machine — the hardware/code-size trade-off the
	// paper's design-space exploration weighs.
	l3 := NewWordLayout(isdl.ExampleArch(4))
	l2 := NewWordLayout(isdl.ArchitectureII(4))
	if l2.Bits >= l3.Bits {
		t.Errorf("ArchII word %d bits !< ExampleArch %d bits", l2.Bits, l3.Bits)
	}
}

func TestEncodeWordsRoundTrip(t *testing.T) {
	m := isdl.ExampleArch(4)
	for _, w := range bench.PaperWorkloads() {
		blk := emit(t, w, m)
		p := &Program{Machine: m, Blocks: []*Block{blk}}
		wp, err := EncodeWords(p)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if wp.NumInstrs != len(blk.Instrs)+1 { // +HALT control word
			t.Errorf("%s: encoded %d instrs, want %d", w.Name, wp.NumInstrs, len(blk.Instrs)+1)
		}
		if wp.ROMBits() != wp.NumInstrs*wp.Layout.Bits {
			t.Errorf("%s: ROMBits inconsistent", w.Name)
		}
		instrs, branches, err := wp.Disassemble(m)
		if err != nil {
			t.Fatalf("%s: disassemble: %v", w.Name, err)
		}
		if len(instrs) != len(blk.Instrs) || len(branches) != 1 {
			t.Fatalf("%s: got %d instrs %d branches", w.Name, len(instrs), len(branches))
		}
		for i, in := range instrs {
			if fmt.Sprint(in.String()) != blk.Instrs[i].String() {
				t.Errorf("%s instr %d:\n got %s\nwant %s", w.Name, i, in.String(), blk.Instrs[i].String())
			}
		}
		if branches[0].Kind != BranchHalt {
			t.Errorf("%s: branch = %v", w.Name, branches[0])
		}
	}
}

func TestEncodeWordsControlFlow(t *testing.T) {
	m := isdl.ExampleArchFull(4)
	src := `
entry:
  { DB: [x] -> U1.R0 }
  { U1: CMPLT R1, R0, #10 }
  BNZ U1.R1, small else big
small:
  { U2: MOVI R0, #1 }
  JMP done
big:
  { U2: MOVI R0, #2 }
  FALL done
done:
  HALT
`
	p, err := ParseProgram(src, m)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := EncodeWords(p)
	if err != nil {
		t.Fatal(err)
	}
	_, branches, err := wp.Disassemble(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(branches) != 4 {
		t.Fatalf("got %d control words, want 4", len(branches))
	}
	if branches[0].Kind != BranchCond || branches[0].Target != "small" || branches[0].Else != "big" {
		t.Errorf("BNZ decoded wrong: %+v", branches[0])
	}
	if branches[0].CondUnit != "U1" || branches[0].CondReg != 1 {
		t.Errorf("BNZ condition decoded wrong: %+v", branches[0])
	}
	if branches[1].Kind != BranchJump || branches[1].Target != "done" {
		t.Errorf("JMP decoded wrong: %+v", branches[1])
	}
	if branches[2].Kind != BranchNone || branches[2].Target != "done" {
		t.Errorf("FALL decoded wrong: %+v", branches[2])
	}
	if branches[3].Kind != BranchHalt {
		t.Errorf("HALT decoded wrong: %+v", branches[3])
	}
	// Offsets: entry at 0, small at 2 (2 body + 1 control for entry...).
	if wp.BlockOffsets["entry"] != 0 {
		t.Errorf("entry offset = %d", wp.BlockOffsets["entry"])
	}
	if wp.BlockOffsets["small"] != 3 {
		t.Errorf("small offset = %d, want 3", wp.BlockOffsets["small"])
	}
}

func TestROMSizeComparesArchitectures(t *testing.T) {
	// The real cost function: ROM bits = instrs x word width. A narrower
	// machine can win on ROM even with a few more instructions.
	w := bench.Ex2()
	total := map[string]int{}
	for _, m := range []*isdl.Machine{isdl.ExampleArch(4), isdl.ArchitectureII(4)} {
		blk := emit(t, bench.Workload{Name: w.Name, Block: w.Block}, m)
		p := &Program{Machine: m, Blocks: []*Block{blk}}
		wp, err := EncodeWords(p)
		if err != nil {
			t.Fatal(err)
		}
		total[m.Name] = wp.ROMBits()
	}
	if total["ArchitectureII"] >= total["ExampleVLIW"] {
		t.Logf("note: ArchII ROM %d bits vs ExampleVLIW %d bits", total["ArchitectureII"], total["ExampleVLIW"])
	}
	for name, bits := range total {
		if bits <= 0 {
			t.Errorf("%s: ROM bits = %d", name, bits)
		}
	}
}

func TestEncodeWordsClusteredBanks(t *testing.T) {
	// Bank-indexed move endpoints must round-trip on a shared-bank
	// machine (2 banks for 4 units).
	m := isdl.ClusteredVLIW(4)
	src := `
b:
  { DB: [x] -> C0.R0 }
  { XB: C0.R0 -> C1.R1 | DB: [y] -> C0.R2 }
  { A1: ADD R0, R1, R1 }
  { DB: C1.R0 -> [o] }
  HALT
`
	p, err := ParseProgram(src, m)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := EncodeWords(p)
	if err != nil {
		t.Fatal(err)
	}
	instrs, branches, err := wp.Disassemble(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(instrs) != 4 || len(branches) != 1 {
		t.Fatalf("decoded %d instrs %d branches", len(instrs), len(branches))
	}
	// Decoding orders move slots by machine bus order; compare slot SETS.
	slotSet := func(in Instr) map[string]bool {
		set := map[string]bool{}
		for _, op := range in.Ops {
			set[op.String()] = true
		}
		for _, mv := range in.Moves {
			set[mv.String()] = true
		}
		return set
	}
	for i, in := range instrs {
		got, want := slotSet(in), slotSet(p.Blocks[0].Instrs[i])
		if len(got) != len(want) {
			t.Errorf("instr %d: %v vs %v", i, got, want)
			continue
		}
		for k := range want {
			if !got[k] {
				t.Errorf("instr %d missing slot %q", i, k)
			}
		}
	}
	// Binary object round trip too.
	obj := Encode(p)
	back, err := Decode(obj, m)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != p.String() {
		t.Errorf("object round trip mismatch:\n%s\nvs\n%s", p, back)
	}
}
