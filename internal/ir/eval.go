package ir

import (
	"errors"
	"fmt"
)

// ErrDivByZero is reported by the evaluator on division or modulo by zero.
var ErrDivByZero = errors.New("ir: division by zero")

// ErrNoProgress is reported when function evaluation exceeds its step budget.
var ErrNoProgress = errors.New("ir: evaluation step budget exhausted (infinite loop?)")

// EvalOp computes a single operation over already-evaluated operands.
// It is the single source of truth for operator semantics, shared by the
// reference interpreter, the constant folder, and the machine simulator.
func EvalOp(op Op, args ...int64) (int64, error) {
	switch op {
	case OpNeg:
		return -args[0], nil
	case OpCompl:
		return ^args[0], nil
	case OpAdd:
		return args[0] + args[1], nil
	case OpSub:
		return args[0] - args[1], nil
	case OpMul:
		return args[0] * args[1], nil
	case OpDiv:
		if args[1] == 0 {
			return 0, ErrDivByZero
		}
		return args[0] / args[1], nil
	case OpMod:
		if args[1] == 0 {
			return 0, ErrDivByZero
		}
		return args[0] % args[1], nil
	case OpAnd:
		return args[0] & args[1], nil
	case OpOr:
		return args[0] | args[1], nil
	case OpXor:
		return args[0] ^ args[1], nil
	case OpShl:
		return args[0] << (uint64(args[1]) & 63), nil
	case OpShr:
		return args[0] >> (uint64(args[1]) & 63), nil
	case OpCmpEQ:
		return b2i(args[0] == args[1]), nil
	case OpCmpNE:
		return b2i(args[0] != args[1]), nil
	case OpCmpLT:
		return b2i(args[0] < args[1]), nil
	case OpCmpLE:
		return b2i(args[0] <= args[1]), nil
	case OpCmpGT:
		return b2i(args[0] > args[1]), nil
	case OpCmpGE:
		return b2i(args[0] >= args[1]), nil
	case OpMAC:
		return args[0] + args[1]*args[2], nil
	case OpAddS:
		return (args[0] + args[1]) >> (uint64(args[2]) & 63), nil
	}
	return 0, fmt.Errorf("ir: cannot evaluate op %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// EvalBlock interprets the block's DAG against mem, applying all stores to
// mem in node order. If the block ends in a branch it returns the taken
// successor name; for jump/fallthrough it returns the successor; for
// return (or no successor) it returns "".
func EvalBlock(b *Block, mem map[string]int64) (next string, err error) {
	vals := make(map[*Node]int64, len(b.Nodes))
	for _, n := range b.Nodes {
		switch n.Op {
		case OpConst:
			vals[n] = n.Const
		case OpLoad:
			vals[n] = mem[n.Var]
		case OpStore:
			mem[n.Var] = vals[n.Args[0]]
		default:
			args := make([]int64, len(n.Args))
			for i, a := range n.Args {
				args[i] = vals[a]
			}
			v, err := EvalOp(n.Op, args...)
			if err != nil {
				return "", fmt.Errorf("block %s node %s: %w", b.Name, n, err)
			}
			vals[n] = v
		}
	}
	switch b.Term {
	case TermBranch:
		if vals[b.Cond] != 0 {
			return b.Succs[0], nil
		}
		return b.Succs[1], nil
	case TermJump:
		return b.Succs[0], nil
	case TermReturn:
		return "", nil
	default:
		if len(b.Succs) == 1 {
			return b.Succs[0], nil
		}
		return "", nil
	}
}

// EvalFunc interprets the whole function starting at the entry block,
// mutating mem. maxSteps bounds the number of block executions to guard
// against non-terminating input programs; <=0 means a default of 1e6.
func EvalFunc(f *Func, mem map[string]int64, maxSteps int) error {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	cur := f.Entry()
	if cur == nil {
		return nil
	}
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("func %s: %w", f.Name, ErrNoProgress)
		}
		next, err := EvalBlock(cur, mem)
		if err != nil {
			return err
		}
		if next == "" {
			return nil
		}
		nb := f.Block(next)
		if nb == nil {
			return fmt.Errorf("func %s: jump to unknown block %s", f.Name, next)
		}
		cur = nb
	}
}
