package ir

import "testing"

// TestBlockFingerprint checks the compile-cache block key: identical
// construction hashes identically, and every content change — an
// opcode, a constant, a variable name, the terminator — moves the hash.
func TestBlockFingerprint(t *testing.T) {
	build := func(c int64, v string, sub bool) *Block {
		bb := NewBuilder("b")
		x := bb.Load(v)
		y := bb.Const(c)
		var r *Node
		if sub {
			r = bb.Sub(x, y)
		} else {
			r = bb.Add(x, y)
		}
		bb.Store("out", r)
		bb.Return()
		return bb.Finish()
	}
	base := build(1, "a", false)
	if base.Fingerprint() != build(1, "a", false).Fingerprint() {
		t.Fatal("identical blocks hash differently")
	}
	seen := map[[32]byte]string{base.Fingerprint(): "base"}
	for name, blk := range map[string]*Block{
		"const": build(2, "a", false),
		"var":   build(1, "z", false),
		"op":    build(1, "a", true),
	} {
		fp := blk.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("blocks %q and %q collide", name, prev)
		}
		seen[fp] = name
	}
	// Terminator changes must move the hash too.
	bb := NewBuilder("b")
	x := bb.Load("a")
	y := bb.Const(1)
	bb.Store("out", bb.Add(x, y))
	bb.Branch(bb.Load("a"), "then", "else")
	branched := bb.Finish()
	if _, dup := seen[branched.Fingerprint()]; dup {
		t.Fatal("branch terminator did not change the fingerprint")
	}
}
