package ir

import "fmt"

// Builder constructs a block's expression DAG with hash-consing, so that
// structurally identical pure subexpressions are shared (local common
// subexpression elimination, a machine-independent optimization the
// paper's front end performs).
//
// Loads are value-numbered against the most recent store to the same
// location, so a load after a store within the block reuses the stored
// value; stores invalidate prior loads of the same location only.
type Builder struct {
	Block *Block

	memo map[string]*Node
	// curVal maps a memory location to the node currently holding its
	// value within the block (last store value or first load).
	curVal map[string]*Node
	// storeEpoch increments per store; load memo keys include it so loads
	// across a clobbering store are not merged.
	storeEpoch map[string]int
}

// NewBuilder returns a Builder targeting a fresh block with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		Block:      NewBlock(name),
		memo:       make(map[string]*Node),
		curVal:     make(map[string]*Node),
		storeEpoch: make(map[string]int),
	}
}

// Const returns a (shared) constant node.
func (bb *Builder) Const(v int64) *Node {
	key := fmt.Sprintf("C%d", v)
	if n, ok := bb.memo[key]; ok {
		return n
	}
	n := bb.Block.NewConst(v)
	bb.memo[key] = n
	return n
}

// Load returns the node holding the current value of the named location,
// creating a load if needed.
func (bb *Builder) Load(name string) *Node {
	if n, ok := bb.curVal[name]; ok {
		return n
	}
	key := fmt.Sprintf("L%d@%s", bb.storeEpoch[name], name)
	if n, ok := bb.memo[key]; ok {
		return n
	}
	n := bb.Block.NewLoad(name)
	bb.memo[key] = n
	bb.curVal[name] = n
	return n
}

// Store appends a store of val to the named location.
func (bb *Builder) Store(name string, val *Node) *Node {
	n := bb.Block.NewStore(name, val)
	bb.storeEpoch[name]++
	bb.curVal[name] = val
	return n
}

// Op returns a (shared) node computing op over args.
func (bb *Builder) Op(op Op, args ...*Node) *Node {
	if len(args) != op.Arity() {
		panic(fmt.Sprintf("ir.Builder: %v needs %d args, got %d", op, op.Arity(), len(args)))
	}
	// Canonicalize commutative operand order for better sharing.
	if op.Commutative() && len(args) == 2 && args[0].ID > args[1].ID {
		args = []*Node{args[1], args[0]}
	}
	key := opKey(op, args)
	if n, ok := bb.memo[key]; ok {
		return n
	}
	n := bb.Block.NewNode(op, args...)
	bb.memo[key] = n
	return n
}

func opKey(op Op, args []*Node) string {
	key := fmt.Sprintf("O%d", op)
	for _, a := range args {
		key += fmt.Sprintf(",%d", a.ID)
	}
	return key
}

// Convenience wrappers.

// Add returns a node computing a+b.
func (bb *Builder) Add(a, b *Node) *Node { return bb.Op(OpAdd, a, b) }

// Sub returns a node computing a-b.
func (bb *Builder) Sub(a, b *Node) *Node { return bb.Op(OpSub, a, b) }

// Mul returns a node computing a*b.
func (bb *Builder) Mul(a, b *Node) *Node { return bb.Op(OpMul, a, b) }

// Branch terminates the block with a conditional branch.
func (bb *Builder) Branch(cond *Node, ifTrue, ifFalse string) {
	bb.Block.Term = TermBranch
	bb.Block.Cond = cond
	bb.Block.Succs = []string{ifTrue, ifFalse}
}

// Jump terminates the block with an unconditional jump.
func (bb *Builder) Jump(target string) {
	bb.Block.Term = TermJump
	bb.Block.Succs = []string{target}
}

// Return terminates the block with a return.
func (bb *Builder) Return() {
	bb.Block.Term = TermReturn
	bb.Block.Succs = nil
}

// Finish removes dead nodes and returns the built block.
func (bb *Builder) Finish() *Block {
	bb.Block.RemoveDead()
	return bb.Block
}
