package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a vertex of a basic-block expression DAG.
//
// A node is uniquely identified within its block by ID. Args point at the
// operand nodes; a node may have many users (it is a DAG, not a tree, so
// common subexpressions are shared).
type Node struct {
	ID   int
	Op   Op
	Args []*Node

	// Const holds the constant value of an OpConst node.
	Const int64
	// Var holds the memory location name of an OpLoad or OpStore node.
	Var string
}

func (n *Node) String() string {
	switch n.Op {
	case OpConst:
		return fmt.Sprintf("n%d:CONST(%d)", n.ID, n.Const)
	case OpLoad:
		return fmt.Sprintf("n%d:LOAD(%s)", n.ID, n.Var)
	case OpStore:
		return fmt.Sprintf("n%d:STORE(%s)<-n%d", n.ID, n.Var, n.Args[0].ID)
	default:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = fmt.Sprintf("n%d", a.ID)
		}
		return fmt.Sprintf("n%d:%s(%s)", n.ID, n.Op, strings.Join(parts, ","))
	}
}

// TermKind distinguishes block terminators.
type TermKind uint8

// Block terminator kinds.
const (
	TermNone   TermKind = iota // fallthrough to Succs[0] (or function end)
	TermJump                   // unconditional jump to Succs[0]
	TermBranch                 // conditional: Cond != 0 -> Succs[0], else Succs[1]
	TermReturn                 // function return
)

func (k TermKind) String() string {
	switch k {
	case TermNone:
		return "fallthrough"
	case TermJump:
		return "jump"
	case TermBranch:
		return "branch"
	case TermReturn:
		return "return"
	}
	return "term?"
}

// Block is a basic block: an expression DAG plus a terminator.
//
// Nodes is maintained in a topological order (operands before users).
// Roots are the nodes whose values escape the block: stores and the branch
// condition. Everything not reachable from a root is dead.
type Block struct {
	Name  string
	Nodes []*Node

	Term  TermKind
	Cond  *Node    // branch condition (TermBranch only)
	Succs []string // successor block names

	nextID int
}

// NewBlock returns an empty block with the given name.
func NewBlock(name string) *Block {
	return &Block{Name: name}
}

// NewNode appends a fresh node with the given op and args to the block and
// returns it. Operands must already belong to the block, which keeps Nodes
// topologically ordered by construction.
func (b *Block) NewNode(op Op, args ...*Node) *Node {
	n := &Node{ID: b.nextID, Op: op, Args: args}
	b.nextID++
	b.Nodes = append(b.Nodes, n)
	return n
}

// NewConst appends a constant node.
func (b *Block) NewConst(v int64) *Node {
	n := b.NewNode(OpConst)
	n.Const = v
	return n
}

// NewLoad appends a load of the named memory location.
func (b *Block) NewLoad(name string) *Node {
	n := b.NewNode(OpLoad)
	n.Var = name
	return n
}

// NewStore appends a store of val to the named memory location.
func (b *Block) NewStore(name string, val *Node) *Node {
	n := b.NewNode(OpStore, val)
	n.Var = name
	return n
}

// Roots returns the nodes whose values escape the block: all stores, plus
// the branch condition if any.
func (b *Block) Roots() []*Node {
	var roots []*Node
	for _, n := range b.Nodes {
		if n.Op == OpStore {
			roots = append(roots, n)
		}
	}
	if b.Term == TermBranch && b.Cond != nil {
		roots = append(roots, b.Cond)
	}
	return roots
}

// Users returns a map from node to the nodes that consume its value
// within the block.
func (b *Block) Users() map[*Node][]*Node {
	users := make(map[*Node][]*Node, len(b.Nodes))
	for _, n := range b.Nodes {
		for _, a := range n.Args {
			users[a] = append(users[a], n)
		}
	}
	return users
}

// RemoveDead drops nodes not reachable from any root and renumbers the
// remaining nodes densely in topological order.
func (b *Block) RemoveDead() {
	live := make(map[*Node]bool)
	var mark func(*Node)
	mark = func(n *Node) {
		if live[n] {
			return
		}
		live[n] = true
		for _, a := range n.Args {
			mark(a)
		}
	}
	for _, r := range b.Roots() {
		mark(r)
	}
	var kept []*Node
	for _, n := range b.Nodes {
		if live[n] {
			kept = append(kept, n)
		}
	}
	b.Nodes = kept
	b.Renumber()
}

// Renumber assigns dense IDs following the current Nodes order.
func (b *Block) Renumber() {
	for i, n := range b.Nodes {
		n.ID = i
	}
	b.nextID = len(b.Nodes)
}

// Verify checks structural invariants: arity, topological order, operand
// membership, and terminator consistency. It returns the first violation.
func (b *Block) Verify() error {
	pos := make(map[*Node]int, len(b.Nodes))
	for i, n := range b.Nodes {
		if got, want := len(n.Args), n.Op.Arity(); got != want {
			return fmt.Errorf("block %s: %v has %d args, want %d", b.Name, n, got, want)
		}
		for _, a := range n.Args {
			j, ok := pos[a]
			if !ok {
				return fmt.Errorf("block %s: %v uses operand n%d not in block", b.Name, n, a.ID)
			}
			if j >= i {
				return fmt.Errorf("block %s: %v uses operand n%d defined later", b.Name, n, a.ID)
			}
		}
		pos[n] = i
	}
	switch b.Term {
	case TermBranch:
		if b.Cond == nil {
			return fmt.Errorf("block %s: branch without condition", b.Name)
		}
		if _, ok := pos[b.Cond]; !ok {
			return fmt.Errorf("block %s: branch condition not in block", b.Name)
		}
		if len(b.Succs) != 2 {
			return fmt.Errorf("block %s: branch with %d successors, want 2", b.Name, len(b.Succs))
		}
	case TermJump:
		if len(b.Succs) != 1 {
			return fmt.Errorf("block %s: jump with %d successors, want 1", b.Name, len(b.Succs))
		}
	case TermReturn:
		if len(b.Succs) != 0 {
			return fmt.Errorf("block %s: return with successors", b.Name)
		}
	case TermNone:
		if len(b.Succs) > 1 {
			return fmt.Errorf("block %s: fallthrough with %d successors", b.Name, len(b.Succs))
		}
	}
	return nil
}

// OpCount returns the number of nodes (excluding dead ones is the caller's
// job; this counts what is present).
func (b *Block) OpCount() int { return len(b.Nodes) }

// Levels returns, for every node, its level from the top (distance from a
// DAG root going down) and from the bottom (height above the leaves).
// Leaves have bottom level 0; roots have top level 0. These drive the
// clique-reduction heuristic of Sec. IV-C.2.
func (b *Block) Levels() (fromTop, fromBottom map[*Node]int) {
	fromBottom = make(map[*Node]int, len(b.Nodes))
	for _, n := range b.Nodes { // topological order: operands first
		h := 0
		for _, a := range n.Args {
			if fa := fromBottom[a] + 1; fa > h {
				h = fa
			}
		}
		fromBottom[n] = h
	}
	fromTop = make(map[*Node]int, len(b.Nodes))
	users := b.Users()
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		n := b.Nodes[i]
		d := 0
		for _, u := range users[n] {
			if du := fromTop[u] + 1; du > d {
				d = du
			}
		}
		fromTop[n] = d
	}
	return fromTop, fromBottom
}

// Vars returns the sorted set of memory location names the block reads or
// writes.
func (b *Block) Vars() []string {
	set := make(map[string]bool)
	for _, n := range b.Nodes {
		if n.Op == OpLoad || n.Op == OpStore {
			set[n.Var] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "block %s:\n", b.Name)
	for _, n := range b.Nodes {
		fmt.Fprintf(&sb, "  %s\n", n)
	}
	switch b.Term {
	case TermBranch:
		fmt.Fprintf(&sb, "  branch n%d ? %s : %s\n", b.Cond.ID, b.Succs[0], b.Succs[1])
	case TermJump:
		fmt.Fprintf(&sb, "  jump %s\n", b.Succs[0])
	case TermReturn:
		fmt.Fprintf(&sb, "  return\n")
	default:
		if len(b.Succs) == 1 {
			fmt.Fprintf(&sb, "  fallthrough %s\n", b.Succs[0])
		}
	}
	return sb.String()
}

// Func is a collection of basic blocks connected by control flow.
type Func struct {
	Name   string
	Blocks []*Block // Blocks[0] is the entry
}

// Block returns the block with the given name, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// Verify checks every block and that all successor names resolve.
func (f *Func) Verify() error {
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if names[b.Name] {
			return fmt.Errorf("func %s: duplicate block %s", f.Name, b.Name)
		}
		names[b.Name] = true
	}
	for _, b := range f.Blocks {
		if err := b.Verify(); err != nil {
			return err
		}
		for _, s := range b.Succs {
			if !names[s] {
				return fmt.Errorf("func %s: block %s has unknown successor %s", f.Name, b.Name, s)
			}
		}
	}
	return nil
}

func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		sb.WriteString(b.String())
	}
	return sb.String()
}
