package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op    Op
		name  string
		arity int
		comm  bool
	}{
		{OpAdd, "ADD", 2, true},
		{OpSub, "SUB", 2, false},
		{OpMul, "MUL", 2, true},
		{OpNeg, "NEG", 1, false},
		{OpCompl, "COMPL", 1, false},
		{OpConst, "CONST", 0, false},
		{OpLoad, "LOAD", 0, false},
		{OpStore, "STORE", 1, false},
		{OpMAC, "MAC", 3, false},
		{OpCmpEQ, "CMPEQ", 2, true},
		{OpCmpLT, "CMPLT", 2, false},
	}
	for _, c := range cases {
		if c.op.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.op, c.op.String(), c.name)
		}
		if c.op.Arity() != c.arity {
			t.Errorf("%v.Arity() = %d, want %d", c.op, c.op.Arity(), c.arity)
		}
		if c.op.Commutative() != c.comm {
			t.Errorf("%v.Commutative() = %v, want %v", c.op, c.op.Commutative(), c.comm)
		}
		if ParseOp(c.name) != c.op {
			t.Errorf("ParseOp(%q) = %v, want %v", c.name, ParseOp(c.name), c.op)
		}
	}
	if ParseOp("BOGUS") != OpInvalid {
		t.Errorf("ParseOp(BOGUS) should be OpInvalid")
	}
	if ParseOp("INVALID") != OpInvalid {
		t.Errorf("ParseOp(INVALID) should be OpInvalid")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpConst.IsLeaf() || !OpLoad.IsLeaf() || OpAdd.IsLeaf() {
		t.Error("IsLeaf misclassifies")
	}
	if !OpCmpGE.IsCompare() || !OpCmpEQ.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
	if OpConst.IsComputation() || OpLoad.IsComputation() || OpStore.IsComputation() {
		t.Error("leaves/roots should not be computations")
	}
	if !OpAdd.IsComputation() || !OpMAC.IsComputation() || !OpCompl.IsComputation() {
		t.Error("ALU ops should be computations")
	}
}

func TestBuilderCSE(t *testing.T) {
	bb := NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	x := bb.Add(a, b)
	y := bb.Add(b, a) // commutative: must be shared with x
	if x != y {
		t.Errorf("commutative ADD not shared: %v vs %v", x, y)
	}
	z := bb.Add(a, b)
	if z != x {
		t.Errorf("identical ADD not shared")
	}
	if bb.Load("a") != a {
		t.Errorf("repeated load not shared")
	}
	c1, c2 := bb.Const(7), bb.Const(7)
	if c1 != c2 {
		t.Errorf("constants not shared")
	}
	s := bb.Sub(a, b)
	s2 := bb.Sub(b, a)
	if s == s2 {
		t.Errorf("non-commutative SUB wrongly shared")
	}
}

func TestBuilderStoreLoadForwarding(t *testing.T) {
	bb := NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	sum := bb.Add(a, b)
	bb.Store("t", sum)
	// Load after store must forward the stored value, not create a node.
	if got := bb.Load("t"); got != sum {
		t.Errorf("load after store = %v, want forwarded %v", got, sum)
	}
	// A store to a different location must not interfere.
	bb.Store("u", a)
	if got := bb.Load("t"); got != sum {
		t.Errorf("unrelated store clobbered forwarding")
	}
	// Overwriting t changes the forwarded value.
	bb.Store("t", a)
	if got := bb.Load("t"); got != a {
		t.Errorf("load after second store = %v, want %v", got, a)
	}
}

func TestBuilderFinishRemovesDead(t *testing.T) {
	bb := NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	bb.Mul(a, b) // dead: never stored
	live := bb.Add(a, b)
	bb.Store("out", live)
	bb.Return()
	blk := bb.Finish()
	for _, n := range blk.Nodes {
		if n.Op == OpMul {
			t.Errorf("dead MUL survived Finish")
		}
	}
	if err := blk.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// IDs must be dense after renumbering.
	for i, n := range blk.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d after renumber", i, n.ID)
		}
	}
}

func TestVerifyCatchesBadArity(t *testing.T) {
	b := NewBlock("b")
	n := b.NewNode(OpAdd) // missing args
	_ = n
	if err := b.Verify(); err == nil {
		t.Error("Verify accepted ADD with 0 args")
	}
}

func TestVerifyCatchesForeignOperand(t *testing.T) {
	b1 := NewBlock("b1")
	x := b1.NewLoad("x")
	b2 := NewBlock("b2")
	y := b2.NewLoad("y")
	b2.NewNode(OpAdd, y, x) // x belongs to b1
	if err := b2.Verify(); err == nil {
		t.Error("Verify accepted operand from another block")
	}
}

func TestVerifyTerminators(t *testing.T) {
	b := NewBlock("b")
	c := b.NewLoad("c")
	b.Term = TermBranch
	b.Cond = c
	b.Succs = []string{"only-one"}
	if err := b.Verify(); err == nil {
		t.Error("Verify accepted branch with one successor")
	}
	b.Succs = []string{"t", "f"}
	if err := b.Verify(); err != nil {
		t.Errorf("Verify rejected valid branch: %v", err)
	}
	b.Term = TermReturn
	b.Succs = []string{"t"}
	if err := b.Verify(); err == nil {
		t.Error("Verify accepted return with successors")
	}
}

func TestFuncVerify(t *testing.T) {
	bb := NewBuilder("entry")
	bb.Store("x", bb.Const(1))
	bb.Jump("missing")
	f := &Func{Name: "f", Blocks: []*Block{bb.Finish()}}
	if err := f.Verify(); err == nil {
		t.Error("Func.Verify accepted unknown successor")
	}
}

func TestEvalOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		args []int64
		want int64
	}{
		{OpAdd, []int64{3, 4}, 7},
		{OpSub, []int64{3, 4}, -1},
		{OpMul, []int64{3, 4}, 12},
		{OpDiv, []int64{9, 2}, 4},
		{OpMod, []int64{9, 2}, 1},
		{OpNeg, []int64{5}, -5},
		{OpCompl, []int64{0}, -1},
		{OpAnd, []int64{6, 3}, 2},
		{OpOr, []int64{6, 3}, 7},
		{OpXor, []int64{6, 3}, 5},
		{OpShl, []int64{1, 4}, 16},
		{OpShr, []int64{16, 4}, 1},
		{OpCmpEQ, []int64{2, 2}, 1},
		{OpCmpNE, []int64{2, 2}, 0},
		{OpCmpLT, []int64{1, 2}, 1},
		{OpCmpLE, []int64{2, 2}, 1},
		{OpCmpGT, []int64{1, 2}, 0},
		{OpCmpGE, []int64{2, 3}, 0},
		{OpMAC, []int64{10, 3, 4}, 22},
		{OpAddS, []int64{6, 2, 2}, 2},
	}
	for _, c := range cases {
		got, err := EvalOp(c.op, c.args...)
		if err != nil {
			t.Errorf("EvalOp(%v, %v): %v", c.op, c.args, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalOp(%v, %v) = %d, want %d", c.op, c.args, got, c.want)
		}
	}
	if _, err := EvalOp(OpDiv, 1, 0); err == nil {
		t.Error("EvalOp(DIV, 1, 0) should fail")
	}
	if _, err := EvalOp(OpMod, 1, 0); err == nil {
		t.Error("EvalOp(MOD, 1, 0) should fail")
	}
	if _, err := EvalOp(OpConst); err == nil {
		t.Error("EvalOp(CONST) should fail")
	}
}

func TestEvalBlock(t *testing.T) {
	bb := NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	bb.Store("sum", bb.Add(a, b))
	bb.Store("prod", bb.Mul(a, b))
	bb.Return()
	blk := bb.Finish()
	mem := map[string]int64{"a": 6, "b": 7}
	next, err := EvalBlock(blk, mem)
	if err != nil {
		t.Fatal(err)
	}
	if next != "" {
		t.Errorf("next = %q, want empty", next)
	}
	if mem["sum"] != 13 || mem["prod"] != 42 {
		t.Errorf("mem = %v, want sum=13 prod=42", mem)
	}
}

func TestEvalBlockBranch(t *testing.T) {
	bb := NewBuilder("b")
	c := bb.Op(OpCmpLT, bb.Load("i"), bb.Const(10))
	bb.Branch(c, "body", "exit")
	blk := bb.Finish()

	mem := map[string]int64{"i": 5}
	next, err := EvalBlock(blk, mem)
	if err != nil || next != "body" {
		t.Errorf("i=5: next=%q err=%v, want body", next, err)
	}
	mem["i"] = 15
	next, err = EvalBlock(blk, mem)
	if err != nil || next != "exit" {
		t.Errorf("i=15: next=%q err=%v, want exit", next, err)
	}
}

func TestEvalFuncLoop(t *testing.T) {
	// sum = 0; for i = 0; i < n; i++ { sum += i }
	entry := NewBuilder("entry")
	entry.Store("sum", entry.Const(0))
	entry.Store("i", entry.Const(0))
	entry.Jump("head")

	head := NewBuilder("head")
	head.Branch(head.Op(OpCmpLT, head.Load("i"), head.Load("n")), "body", "exit")

	body := NewBuilder("body")
	body.Store("sum", body.Add(body.Load("sum"), body.Load("i")))
	body.Store("i", body.Add(body.Load("i"), body.Const(1)))
	body.Jump("head")

	exit := NewBuilder("exit")
	exit.Return()

	f := &Func{Name: "loop", Blocks: []*Block{entry.Finish(), head.Finish(), body.Finish(), exit.Finish()}}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	mem := map[string]int64{"n": 10}
	if err := EvalFunc(f, mem, 0); err != nil {
		t.Fatal(err)
	}
	if mem["sum"] != 45 {
		t.Errorf("sum = %d, want 45", mem["sum"])
	}
}

func TestEvalFuncInfiniteLoopGuard(t *testing.T) {
	b := NewBuilder("spin")
	b.Jump("spin")
	f := &Func{Name: "spin", Blocks: []*Block{b.Finish()}}
	err := EvalFunc(f, map[string]int64{}, 100)
	if err == nil {
		t.Fatal("EvalFunc should report step budget exhaustion")
	}
}

func TestLevels(t *testing.T) {
	bb := NewBuilder("b")
	a := bb.Load("a")
	b := bb.Load("b")
	s := bb.Add(a, b)
	m := bb.Mul(s, a)
	bb.Store("out", m)
	bb.Return()
	blk := bb.Finish()
	top, bot := blk.Levels()

	find := func(op Op) *Node {
		for _, n := range blk.Nodes {
			if n.Op == op {
				return n
			}
		}
		t.Fatalf("no %v node", op)
		return nil
	}
	add, mul, st := find(OpAdd), find(OpMul), find(OpStore)
	if bot[add] != 1 || bot[mul] != 2 || bot[st] != 3 {
		t.Errorf("bottom levels: add=%d mul=%d st=%d, want 1 2 3", bot[add], bot[mul], bot[st])
	}
	if top[st] != 0 || top[mul] != 1 || top[add] != 2 {
		t.Errorf("top levels: st=%d mul=%d add=%d, want 0 1 2", top[st], top[mul], top[add])
	}
	// Load a is used by both ADD (top 2) and MUL (top 1): top = 3.
	if top[a] != 3 {
		t.Errorf("top[a] = %d, want 3", top[a])
	}
}

func TestRootsAndVars(t *testing.T) {
	bb := NewBuilder("b")
	x := bb.Load("x")
	bb.Store("y", x)
	cond := bb.Op(OpCmpGT, x, bb.Const(0))
	bb.Branch(cond, "t", "f")
	blk := bb.Finish()
	roots := blk.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (store + cond)", len(roots))
	}
	vars := blk.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v, want [x y]", vars)
	}
}

func TestDOTSmoke(t *testing.T) {
	bb := NewBuilder("b")
	bb.Store("o", bb.Add(bb.Load("a"), bb.Const(3)))
	bb.Return()
	dot := bb.Finish().DOT()
	for _, want := range []string{"digraph", "ADD", "ST o", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStringFormats(t *testing.T) {
	bb := NewBuilder("blk")
	a := bb.Load("a")
	c := bb.Const(5)
	s := bb.Add(a, c)
	bb.Store("r", s)
	bb.Return()
	f := &Func{Name: "f", Blocks: []*Block{bb.Finish()}}
	out := f.String()
	for _, want := range []string{"func f", "block blk", "LOAD(a)", "CONST(5)", "ADD", "STORE(r)", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
	if TermBranch.String() != "branch" || TermJump.String() != "jump" ||
		TermNone.String() != "fallthrough" || TermReturn.String() != "return" {
		t.Error("TermKind.String wrong")
	}
}

// Property: evaluation of a commutative op is order independent, and the
// builder shares commuted nodes.
func TestQuickCommutativity(t *testing.T) {
	prop := func(a, b int64) bool {
		for _, op := range []Op{OpAdd, OpMul, OpAnd, OpOr, OpXor} {
			x, err1 := EvalOp(op, a, b)
			y, err2 := EvalOp(op, b, a)
			if err1 != nil || err2 != nil || x != y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a random expression built through the Builder evaluates to the
// same value as direct computation.
func TestQuickBuilderEvalAgreement(t *testing.T) {
	prop := func(a, b, c int64, sel uint8) bool {
		ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
		op1 := ops[int(sel)%len(ops)]
		op2 := ops[int(sel/8)%len(ops)]
		bb := NewBuilder("p")
		na := bb.Load("a")
		nb := bb.Load("b")
		nc := bb.Load("c")
		r := bb.Op(op2, bb.Op(op1, na, nb), nc)
		bb.Store("r", r)
		bb.Return()
		blk := bb.Finish()
		mem := map[string]int64{"a": a, "b": b, "c": c}
		if _, err := EvalBlock(blk, mem); err != nil {
			return false
		}
		v1, _ := EvalOp(op1, a, b)
		want, _ := EvalOp(op2, v1, c)
		return mem["r"] == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Levels are consistent — an edge user->operand implies
// bottom(user) > bottom(operand) and top(operand) > top(user).
func TestQuickLevelsMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		blk := randomBlock(seed, 12)
		top, bot := blk.Levels()
		for _, n := range blk.Nodes {
			for _, a := range n.Args {
				if bot[n] <= bot[a] || top[a] <= top[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomBlock builds a deterministic pseudo-random block for property tests.
func randomBlock(seed int64, nOps int) *Block {
	bb := NewBuilder("rand")
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	avail := []*Node{bb.Load("a"), bb.Load("b"), bb.Const(int64(next(100)))}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpXor}
	for i := 0; i < nOps; i++ {
		op := ops[next(len(ops))]
		x := avail[next(len(avail))]
		y := avail[next(len(avail))]
		avail = append(avail, bb.Op(op, x, y))
	}
	bb.Store("out", avail[len(avail)-1])
	bb.Return()
	return bb.Finish()
}

func TestFuncDOT(t *testing.T) {
	entry := NewBuilder("entry")
	c := entry.Op(OpCmpGT, entry.Load("x"), entry.Const(0))
	entry.Branch(c, "t", "f")
	tb := NewBuilder("t")
	tb.Store("r", tb.Const(1))
	tb.Jump("exit")
	fb := NewBuilder("f")
	fb.Store("r", fb.Const(2))
	fb.Jump("exit")
	ex := NewBuilder("exit")
	ex.Return()
	f := &Func{Name: "g", Blocks: []*Block{entry.Finish(), tb.Finish(), fb.Finish(), ex.Finish()}}
	dot := f.DOT()
	for _, want := range []string{"digraph", "cluster_0", "cluster_3", "CMPGT", "dashed", "ST r"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Func.DOT missing %q", want)
		}
	}
}
