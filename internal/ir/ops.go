// Package ir defines the machine-independent intermediate representation
// consumed by the AVIV back end: expression DAGs grouped into basic blocks
// that are connected by explicit control flow.
//
// This is the moral equivalent of the SUIF/SPAM output the paper starts
// from: "a number of basic block DAGs connected through control flow
// information" (Sec. II). Leaves of a DAG are constants and loads of named
// memory locations; roots are stores and branch conditions.
package ir

import "fmt"

// Op identifies a basic operation in the intermediate representation.
// These are the "SUIF basic operations such as ADD and SUB" of the paper.
type Op uint8

// Basic operations. Arithmetic and logic ops take register operands;
// Load/Store move values between data memory and registers; Const
// materializes an immediate.
const (
	OpInvalid Op = iota

	// Leaves.
	OpConst // integer constant
	OpLoad  // load named memory location

	// Unary.
	OpNeg   // arithmetic negation
	OpCompl // bitwise complement (the paper's COMPL)

	// Binary arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod

	// Binary logic.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Comparisons (produce 0/1).
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Root.
	OpStore // store arg0 to named memory location

	// Complex operations recognized by pattern matching (Sec. III-B).
	// They only appear after complex-instruction matching against a
	// machine description that supports them.
	OpMAC  // multiply-accumulate: arg0 + arg1*arg2
	OpAddS // add-shift: (arg0 + arg1) >> arg2

	numOps
)

var opNames = [numOps]string{
	OpInvalid: "INVALID",
	OpConst:   "CONST",
	OpLoad:    "LOAD",
	OpNeg:     "NEG",
	OpCompl:   "COMPL",
	OpAdd:     "ADD",
	OpSub:     "SUB",
	OpMul:     "MUL",
	OpDiv:     "DIV",
	OpMod:     "MOD",
	OpAnd:     "AND",
	OpOr:      "OR",
	OpXor:     "XOR",
	OpShl:     "SHL",
	OpShr:     "SHR",
	OpCmpEQ:   "CMPEQ",
	OpCmpNE:   "CMPNE",
	OpCmpLT:   "CMPLT",
	OpCmpLE:   "CMPLE",
	OpCmpGT:   "CMPGT",
	OpCmpGE:   "CMPGE",
	OpStore:   "STORE",
	OpMAC:     "MAC",
	OpAddS:    "ADDS",
}

var opArity = [numOps]int{
	OpConst: 0,
	OpLoad:  0,
	OpNeg:   1,
	OpCompl: 1,
	OpAdd:   2,
	OpSub:   2,
	OpMul:   2,
	OpDiv:   2,
	OpMod:   2,
	OpAnd:   2,
	OpOr:    2,
	OpXor:   2,
	OpShl:   2,
	OpShr:   2,
	OpCmpEQ: 2,
	OpCmpNE: 2,
	OpCmpLT: 2,
	OpCmpLE: 2,
	OpCmpGT: 2,
	OpCmpGE: 2,
	OpStore: 1,
	OpMAC:   3,
	OpAddS:  3,
}

func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
	return opNames[op]
}

// Valid reports whether op is a defined operation code (excluding
// OpInvalid). Out-of-range values decoded from corrupted objects or
// hand-built IR fail this check.
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// Arity returns the number of value operands op takes.
func (op Op) Arity() int {
	if op >= numOps {
		return 0
	}
	return opArity[op]
}

// Commutative reports whether swapping the two operands of op preserves
// its value. Used by hash-consing and complex-pattern matching.
func (op Op) Commutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpCmpEQ, OpCmpNE:
		return true
	}
	return false
}

// IsLeaf reports whether op has no value operands.
func (op Op) IsLeaf() bool { return op == OpConst || op == OpLoad }

// IsCompare reports whether op is a comparison producing a 0/1 value.
func (op Op) IsCompare() bool { return op >= OpCmpEQ && op <= OpCmpGE }

// IsComputation reports whether op must be executed on a functional unit
// (i.e. it is neither a constant, a load root, nor a store root).
func (op Op) IsComputation() bool {
	switch op {
	case OpConst, OpLoad, OpStore, OpInvalid:
		return false
	}
	return true
}

// ParseOp converts a textual op name (as used in ISDL descriptions) to an
// Op. It returns OpInvalid if the name is unknown.
func ParseOp(name string) Op {
	for op, n := range opNames {
		if n == name && Op(op) != OpInvalid {
			return Op(op)
		}
	}
	return OpInvalid
}
