package ir

import (
	"fmt"
	"strings"
)

// DOT renders the block's expression DAG in Graphviz format, edges pointing
// from users to operands (the orientation used in the paper's Fig. 2).
func (b *Block) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n", b.Name)
	for _, n := range b.Nodes {
		label := n.Op.String()
		switch n.Op {
		case OpConst:
			label = fmt.Sprintf("%d", n.Const)
		case OpLoad:
			label = n.Var
		case OpStore:
			label = fmt.Sprintf("ST %s", n.Var)
		}
		fmt.Fprintf(&sb, "  n%d [label=%q];\n", n.ID, label)
		for _, a := range n.Args {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, a.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DOT renders the whole function: one cluster per basic block with its
// expression DAG, plus control-flow edges between blocks.
func (f *Func) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  compound=true;\n  rankdir=TB;\n", f.Name)
	for bi, b := range f.Blocks {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", bi, b.Name)
		anchorID := fmt.Sprintf("b%d_entry", bi)
		fmt.Fprintf(&sb, "    %s [shape=point,style=invis];\n", anchorID)
		for _, n := range b.Nodes {
			label := n.Op.String()
			switch n.Op {
			case OpConst:
				label = fmt.Sprintf("%d", n.Const)
			case OpLoad:
				label = n.Var
			case OpStore:
				label = "ST " + n.Var
			}
			fmt.Fprintf(&sb, "    b%dn%d [label=%q];\n", bi, n.ID, label)
			for _, a := range n.Args {
				fmt.Fprintf(&sb, "    b%dn%d -> b%dn%d;\n", bi, n.ID, bi, a.ID)
			}
		}
		sb.WriteString("  }\n")
	}
	idx := map[string]int{}
	for bi, b := range f.Blocks {
		idx[b.Name] = bi
	}
	for bi, b := range f.Blocks {
		for si, succ := range b.Succs {
			style := "solid"
			if b.Term == TermBranch && si == 1 {
				style = "dashed" // the not-taken edge
			}
			fmt.Fprintf(&sb, "  b%d_entry -> b%d_entry [ltail=cluster_%d,lhead=cluster_%d,style=%s];\n",
				bi, idx[succ], bi, idx[succ], style)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
