package ir

import (
	"crypto/sha256"
	"encoding/binary"
)

// Fingerprint returns a content hash of the block: its name, every node
// (ID, op, constant, variable, argument IDs), and the terminator with
// its condition and successors. Two blocks with equal fingerprints are
// structurally identical inputs to code generation, which makes the
// fingerprint usable as a compile-cache key component.
func (b *Block) Fingerprint() [sha256.Size]byte {
	h := sha256.New()
	var buf []byte
	emit := func(v int64) {
		buf = binary.AppendVarint(buf, v)
	}
	str := func(s string) {
		emit(int64(len(s)))
		buf = append(buf, s...)
	}
	str(b.Name)
	emit(int64(len(b.Nodes)))
	for _, n := range b.Nodes {
		emit(int64(n.ID))
		emit(int64(n.Op))
		emit(n.Const)
		str(n.Var)
		emit(int64(len(n.Args)))
		for _, a := range n.Args {
			emit(int64(a.ID))
		}
		if len(buf) > 4096 {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	emit(int64(b.Term))
	if b.Cond != nil {
		emit(int64(b.Cond.ID))
	} else {
		emit(-1)
	}
	emit(int64(len(b.Succs)))
	for _, s := range b.Succs {
		str(s)
	}
	h.Write(buf)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
