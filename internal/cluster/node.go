package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aviv/internal/cover"
	"aviv/internal/diskcache"
	"aviv/internal/metrics"
	"aviv/internal/server"
)

// forwardedHeader marks a /compile request that already crossed one
// forwarding hop. The receiving node serves it locally no matter who
// the ring says owns the key, which caps routing at one extra hop even
// when two nodes briefly disagree about membership — without the cap a
// disagreement would bounce the request forever.
const forwardedHeader = "X-Aviv-Forwarded"

// forwardedKey is the context marker the handler middleware sets from
// forwardedHeader; the PeerCompiler hook declines forwarded requests.
type forwardedKey struct{}

// Config configures a cluster Node.
type Config struct {
	// Self is this node's advertised base URL (as it appears in Peers).
	Self string
	// Peers is the full cluster membership, including Self.
	Peers []string
	// Server is the underlying compile-server configuration. The node
	// installs itself as Server.Peer and wraps Options.DiskCache with
	// the peering store; when Options.DiskCache is nil an in-memory
	// store backs the peering path.
	Server server.Config
	// VirtualNodes is the ring's per-node point count; <= 0 selects 64.
	VirtualNodes int
	// ProbeInterval is the health re-probe period — the recovery path
	// for ejected peers; <= 0 selects 1s. Ejection itself is reactive
	// (the first failed forward or fetch marks the peer), so a huge
	// interval only delays recovery, never failure handling.
	ProbeInterval time.Duration
	// FailureThreshold is how many consecutive failures eject a peer;
	// <= 0 selects 1.
	FailureThreshold int
	// ForwardTimeout bounds one forwarded compile RPC; <= 0 selects
	// 30s. EntryTimeout bounds one cache-entry fetch or push; <= 0
	// selects 5s.
	ForwardTimeout time.Duration
	EntryTimeout   time.Duration
	// Transport overrides the HTTP transport for all peer RPCs (tests
	// inject blocking or failing round-trippers); nil uses the default.
	Transport http.RoundTripper
}

// Node is one cluster member: a compile server plus the ring, health
// view, forwarder, and entry-peering store that tie it to its peers.
type Node struct {
	cfg         Config
	ring        *Ring
	health      *healthTracker
	rpcClient   *http.Client // forwarded compiles
	entryClient *http.Client // entry fetch/push, health probes
	srv         *server.Server
	local       cover.EntryStore // the unwrapped local tier behind the peer store
	draining    atomic.Bool
	peerPushes  atomic.Int64
	peerRejects atomic.Int64
	done        chan struct{}
	closeOnce   sync.Once
}

// New builds and starts a Node (its health probe loop runs until
// Close). The returned node's Handler must be served at cfg.Self for
// peers to reach it.
func New(cfg Config) *Node {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	if cfg.EntryTimeout <= 0 {
		cfg.EntryTimeout = 5 * time.Second
	}
	hasSelf := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			hasSelf = true
		}
	}
	if !hasSelf {
		cfg.Peers = append(append([]string(nil), cfg.Peers...), cfg.Self)
	}
	n := &Node{
		cfg:         cfg,
		ring:        NewRing(cfg.Peers, cfg.VirtualNodes),
		health:      newHealthTracker(cfg.Peers, cfg.FailureThreshold),
		rpcClient:   &http.Client{Timeout: cfg.ForwardTimeout, Transport: cfg.Transport},
		entryClient: &http.Client{Timeout: cfg.EntryTimeout, Transport: cfg.Transport},
		done:        make(chan struct{}),
	}
	n.local = cfg.Server.Options.DiskCache
	if n.local == nil {
		n.local = NewMemStore(0)
	}
	cfg.Server.Options.DiskCache = &peerStore{n: n, local: n.local}
	cfg.Server.Peer = n
	n.srv = server.New(cfg.Server)
	go n.health.probeLoop(n.done, n.entryClient, cfg.Peers, cfg.Self, cfg.ProbeInterval)
	return n
}

// Close stops the probe loop. It does not drain; call Drain first for
// a graceful exit.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.done) })
}

// Server exposes the underlying compile server (for tests and benches).
func (n *Node) Server() *server.Server { return n.srv }

// Self returns the node's advertised URL.
func (n *Node) Self() string { return n.cfg.Self }

// Compile implements server.PeerCompiler: requests whose key another
// node owns are forwarded to that node, making its single-flight group
// the cluster-wide dedup point. Forwarded-in requests and self-owned
// keys stay local; so does any key whose owner cannot be reached — the
// failure is counted, the peer ejected, and the compile falls back to
// the local pipeline (never an error to the client).
func (n *Node) Compile(ctx context.Context, key string, req server.CompileRequest) (*server.CompileResponse, bool, error) {
	if ctx.Value(forwardedKey{}) != nil {
		return nil, false, nil
	}
	owner := n.ring.Owner(key, n.health.healthy)
	if owner == "" || owner == n.cfg.Self {
		return nil, false, nil
	}
	resp, err := n.forward(ctx, owner, req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller is gone (timeout or abandonment), not the peer:
			// propagate so the flight unwinds instead of compiling
			// locally for nobody — and don't eject the peer for a
			// failure that was ours.
			return nil, false, ctx.Err()
		}
		n.health.markFailure(owner)
		c := n.srv.Counters()
		c.ForwardErrors.Add(1)
		c.LocalFallbacks.Add(1)
		return nil, false, nil
	}
	n.health.markSuccess(owner)
	n.srv.Counters().Forwarded.Add(1)
	return resp, true, nil
}

// forward sends one compile to owner. The request context travels with
// the RPC, so when the last local waiter abandons the flight the
// owner's handler context cancels too and its own single-flight
// abandonment semantics take over — waiter counting works across the
// hop.
func (n *Node) forward(ctx context.Context, owner string, req server.CompileRequest) (*server.CompileResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(forwardedHeader, n.cfg.Self)
	httpResp, err := n.rpcClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(httpResp.Body, 4<<10))
		return nil, fmt.Errorf("peer %s: status %d", owner, httpResp.StatusCode)
	}
	var resp server.CompileResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("peer %s: %w", owner, err)
	}
	return &resp, nil
}

// Handler returns the node's HTTP surface: the compile server's
// endpoints (with /stats gaining the cluster section and /healthz
// reflecting drain state) plus /peer/entry for cache peering.
func (n *Node) Handler() http.Handler {
	inner := n.srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/peer/entry", n.handlePeerEntry)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		stats := n.srv.Stats()
		stats.Cluster = n.clusterStats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(stats)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if n.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			r = r.WithContext(context.WithValue(r.Context(), forwardedKey{}, true))
		}
		inner.ServeHTTP(w, r)
	})
	return mux
}

// clusterStats assembles the /stats "cluster" section.
func (n *Node) clusterStats() *metrics.ClusterStats {
	c := n.srv.Counters()
	nodes := n.ring.Nodes()
	return &metrics.ClusterStats{
		Self:           n.cfg.Self,
		Nodes:          len(nodes),
		Healthy:        n.health.healthyCount(nodes),
		Draining:       n.draining.Load(),
		Forwarded:      c.Forwarded.Load(),
		LocalFallbacks: c.LocalFallbacks.Load(),
		PeerHits:       c.PeerHits.Load(),
		PeerMisses:     c.PeerMisses.Load(),
		PeerPushes:     n.peerPushes.Load(),
		PeerRejects:    n.peerRejects.Load(),
		ForwardErrors:  c.ForwardErrors.Load(),
		Drained:        c.Drained.Load(),
	}
}

// handlePeerEntry serves the cache-peering wire protocol. GET returns
// the locally held entry for ?key= in diskcache's checksummed framing
// (404 on miss); POST accepts a framed entry and stores the verified
// payload locally. Both sides go through EncodeEntry/DecodeEntry, so a
// corrupt or truncated transfer is rejected by the sha256 check and
// degrades to a miss — peered bytes are either exactly what the owner
// holds or not used at all.
func (n *Node) handlePeerEntry(w http.ResponseWriter, r *http.Request) {
	key, err := parseEntryKey(r.URL.Query().Get("key"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok := n.local.Get(key)
		if !ok {
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(diskcache.EncodeEntry(data))
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			n.peerRejects.Add(1)
			http.Error(w, "bad entry: "+err.Error(), http.StatusBadRequest)
			return
		}
		payload, err := diskcache.DecodeEntry(body)
		if err != nil {
			n.peerRejects.Add(1)
			http.Error(w, "bad entry: "+err.Error(), http.StatusBadRequest)
			return
		}
		n.local.Put(key, payload)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// parseEntryKey decodes a 64-hex-digit cache key.
func parseEntryKey(s string) ([sha256.Size]byte, error) {
	var key [sha256.Size]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != sha256.Size {
		return key, fmt.Errorf("key must be %d hex digits", 2*sha256.Size)
	}
	copy(key[:], raw)
	return key, nil
}

// fetchEntry asks owner for the entry over /peer/entry and verifies
// the framing. A 404 is a clean miss (nil, false, no error — the owner
// just doesn't have it); transport errors and corrupt frames return
// the error so the caller can count and eject.
func (n *Node) fetchEntry(owner string, key [sha256.Size]byte) ([]byte, bool, error) {
	resp, err := n.entryClient.Get(owner + "/peer/entry?key=" + hex.EncodeToString(key[:]))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, false, fmt.Errorf("peer %s: status %d", owner, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false, err
	}
	payload, err := diskcache.DecodeEntry(body)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// pushEntry write-through-replicates one entry to owner.
func (n *Node) pushEntry(owner string, key [sha256.Size]byte, data []byte) error {
	url := owner + "/peer/entry?key=" + hex.EncodeToString(key[:])
	resp, err := n.entryClient.Post(url, "application/octet-stream", bytes.NewReader(diskcache.EncodeEntry(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("peer %s: status %d", owner, resp.StatusCode)
	}
	return nil
}

// Drain gracefully bleeds the node: /healthz flips to 503 so probes
// eject it from peers' rings, and every locally held cache entry is
// pushed to the node that owns it once this one is gone. Returns the
// number of entries successfully re-homed. The node keeps serving
// while draining (in-flight and late requests still complete); stop
// routing to it, Drain, then shut down.
func (n *Node) Drain() int {
	n.draining.Store(true)
	enum, ok := n.local.(interface{ Keys() [][sha256.Size]byte })
	if !ok {
		return 0
	}
	var survivors []string
	for _, p := range n.ring.Nodes() {
		if p != n.cfg.Self {
			survivors = append(survivors, p)
		}
	}
	ring := NewRing(survivors, n.cfg.VirtualNodes)
	moved := 0
	for _, key := range enum.Keys() {
		owner := ring.Owner(hex.EncodeToString(key[:]), n.health.healthy)
		if owner == "" {
			continue
		}
		data, ok := n.local.Get(key)
		if !ok {
			continue
		}
		if err := n.pushEntry(owner, key, data); err != nil {
			n.health.markFailure(owner)
			continue
		}
		moved++
	}
	n.srv.Counters().Drained.Add(int64(moved))
	return moved
}
