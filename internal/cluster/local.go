package cluster

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"aviv/internal/server"
)

// LocalConfig configures an in-process cluster (see StartLocal).
type LocalConfig struct {
	// N is the node count.
	N int
	// NodeConfig builds node i's compile-server configuration. Each
	// node must get its own cache tiers — sharing one store across
	// nodes would silently fake the aggregate-capacity effect the
	// cluster exists to provide.
	NodeConfig func(i int) server.Config
	// VirtualNodes, ProbeInterval, FailureThreshold, ForwardTimeout,
	// EntryTimeout: as in Config; zero values select the same defaults.
	VirtualNodes     int
	ProbeInterval    time.Duration
	FailureThreshold int
	ForwardTimeout   time.Duration
	EntryTimeout     time.Duration
	// Transport overrides every node's peer-RPC transport (tests
	// inject corrupting or failing round-trippers); nil is default.
	Transport http.RoundTripper
}

// LocalCluster is an in-process cluster: N nodes on loopback
// listeners, optionally fronted by a router. It backs `avivbench
// -cluster`, the clustersmoke CI stage, and the root differential
// test — same Node and Router code as production, only the listeners
// are local.
type LocalCluster struct {
	Nodes []*Node
	URLs  []string

	cfg       LocalConfig
	listeners []net.Listener
	servers   []*http.Server
	router    *Router
	routerLn  net.Listener
	routerSrv *http.Server
}

// StartLocal brings up an N-node cluster and returns once every node
// is serving. Callers own Close.
func StartLocal(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("cluster: N must be positive, got %d", cfg.N)
	}
	lc := &LocalCluster{cfg: cfg}
	// Reserve every address first so each node knows the full
	// membership before any of them starts.
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.listeners = append(lc.listeners, ln)
		lc.URLs = append(lc.URLs, "http://"+ln.Addr().String())
	}
	for i := 0; i < cfg.N; i++ {
		scfg := server.Config{}
		if cfg.NodeConfig != nil {
			scfg = cfg.NodeConfig(i)
		}
		node := New(Config{
			Self:             lc.URLs[i],
			Peers:            lc.URLs,
			Server:           scfg,
			VirtualNodes:     cfg.VirtualNodes,
			ProbeInterval:    cfg.ProbeInterval,
			FailureThreshold: cfg.FailureThreshold,
			ForwardTimeout:   cfg.ForwardTimeout,
			EntryTimeout:     cfg.EntryTimeout,
			Transport:        cfg.Transport,
		})
		lc.Nodes = append(lc.Nodes, node)
		hs := &http.Server{Handler: node.Handler()}
		lc.servers = append(lc.servers, hs)
		go hs.Serve(lc.listeners[i])
	}
	return lc, nil
}

// StartRouter fronts the cluster with a Router on its own loopback
// listener and returns the router's base URL.
func (lc *LocalCluster) StartRouter() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	lc.routerLn = ln
	lc.router = NewRouter(RouterConfig{
		Nodes:            lc.URLs,
		VirtualNodes:     lc.cfg.VirtualNodes,
		ProbeInterval:    lc.cfg.ProbeInterval,
		FailureThreshold: lc.cfg.FailureThreshold,
		ForwardTimeout:   lc.cfg.ForwardTimeout,
	})
	lc.routerSrv = &http.Server{Handler: lc.router.Handler()}
	go lc.routerSrv.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Router exposes the running router, if StartRouter was called.
func (lc *LocalCluster) Router() *Router { return lc.router }

// KillNode abruptly stops node i — connections refused, no drain —
// simulating a crash. The node stays dead; peers eject it reactively
// or via probes.
func (lc *LocalCluster) KillNode(i int) {
	if lc.servers[i] != nil {
		lc.servers[i].Close()
		lc.servers[i] = nil
	}
	lc.Nodes[i].Close()
}

// DrainNode gracefully drains node i (bleeding its cache entries to
// the surviving owners), then stops it. Returns the number of entries
// re-homed.
func (lc *LocalCluster) DrainNode(i int) int {
	moved := lc.Nodes[i].Drain()
	lc.KillNode(i)
	return moved
}

// Close shuts the whole cluster down.
func (lc *LocalCluster) Close() {
	if lc.routerSrv != nil {
		lc.routerSrv.Close()
	}
	if lc.router != nil {
		lc.router.Close()
	}
	for i := range lc.servers {
		if lc.servers[i] != nil {
			lc.servers[i].Close()
		}
	}
	for _, n := range lc.Nodes {
		n.Close()
	}
}
