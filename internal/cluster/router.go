package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"aviv/internal/server"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes is the cluster membership the router dispatches over.
	Nodes []string
	// VirtualNodes, ProbeInterval, FailureThreshold, ForwardTimeout:
	// as in Config; zero values select the same defaults.
	VirtualNodes     int
	ProbeInterval    time.Duration
	FailureThreshold int
	ForwardTimeout   time.Duration
	// Transport overrides the HTTP transport (tests); nil is default.
	Transport http.RoundTripper
}

// Router is the thin `avivd -route` front end: it computes each
// request's content key, sends it to the owning node, and fails over
// along the ring when the owner is down. It holds no compiler and no
// cache — the nodes do the work; the router only makes the first hop
// land on the right shard so node-side forwarding is the exception,
// not the rule. It deliberately does not set the forwarded marker:
// if its membership view is stale, the receiving node may still make
// one corrective hop.
type Router struct {
	ring      *Ring
	nodes     []string
	health    *healthTracker
	client    *http.Client
	done      chan struct{}
	closeOnce sync.Once
}

// NewRouter builds and starts a Router (probe loop runs until Close).
func NewRouter(cfg RouterConfig) *Router {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 30 * time.Second
	}
	rt := &Router{
		ring:   NewRing(cfg.Nodes, cfg.VirtualNodes),
		health: newHealthTracker(cfg.Nodes, cfg.FailureThreshold),
		client: &http.Client{Timeout: cfg.ForwardTimeout, Transport: cfg.Transport},
		done:   make(chan struct{}),
	}
	rt.nodes = rt.ring.Nodes()
	go rt.health.probeLoop(rt.done, rt.client, rt.nodes, "", cfg.ProbeInterval)
	return rt
}

// Close stops the probe loop.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.done) })
}

// Handler returns the router's HTTP surface: POST /compile (routed),
// GET /healthz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", rt.handleCompile)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req server.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := server.RequestKey(req)

	// Walk the ring from the owner: each transport failure ejects that
	// node and retries the next healthy one, so a dead node costs one
	// connection error per request at worst, and nothing once probes
	// notice. Non-transport responses (including 429 and compile
	// errors) pass through verbatim — the owner answered, its answer
	// stands.
	tried := make(map[string]bool, len(rt.nodes))
	for len(tried) < len(rt.nodes) {
		target := rt.ring.Owner(key, func(n string) bool {
			return !tried[n] && rt.health.healthy(n)
		})
		if target == "" {
			// Every healthy node tried and failed; last resort is any
			// untried node regardless of health state.
			target = rt.ring.Owner(key, func(n string) bool { return !tried[n] })
		}
		if target == "" {
			break
		}
		tried[target] = true
		httpReq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, target+"/compile", bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(httpReq)
		if err != nil {
			rt.health.markFailure(target)
			if r.Context().Err() != nil {
				return // client gone; nothing to write
			}
			continue
		}
		copyResponse(w, resp)
		return
	}
	http.Error(w, "no cluster node reachable", http.StatusBadGateway)
}

// copyResponse relays a node's answer to the client.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
