package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// TestRingDeterministic pins that ownership is a pure function of
// membership: node order at construction must not matter.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2", "n2"}, 0)
	for _, key := range ringKeys(1000) {
		if ao, bo := a.Owner(key, nil), b.Owner(key, nil); ao != bo {
			t.Fatalf("owner(%q) differs across construction orders: %q vs %q", key, ao, bo)
		}
	}
}

// TestRingBalance checks the virtual points spread ownership roughly
// evenly: with 4 nodes no shard may hold less than half or more than
// double its fair share.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	keys := ringKeys(10000)
	for _, key := range keys {
		counts[r.Owner(key, nil)]++
	}
	fair := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Errorf("node %s owns %d of %d keys; want within [%d, %d]", n, counts[n], len(keys), fair/2, fair*2)
		}
	}
}

// TestRingStabilityOnMembershipChange pins the consistent-hashing
// contract: removing one node only reassigns the keys that node owned.
func TestRingStabilityOnMembershipChange(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	after := NewRing([]string{"n1", "n2", "n3"}, 0)
	moved := 0
	for _, key := range ringKeys(10000) {
		was, is := before.Owner(key, nil), after.Owner(key, nil)
		if was != "n4" {
			if is != was {
				t.Fatalf("key %q moved %s -> %s though its owner never left", key, was, is)
			}
			continue
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("n4 owned no keys; balance is broken")
	}
}

// TestRingOwnerSkipsUnhealthy pins ejection re-dispersal: keys owned
// by a down node fall to other nodes (deterministically, via the ring
// walk), while every other key keeps its owner — so ejecting a node
// does not shuffle the healthy shards' caches.
func TestRingOwnerSkipsUnhealthy(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	alive := func(n string) bool { return n != "n4" }
	redispersed := 0
	for _, key := range ringKeys(10000) {
		full, degraded := r.Owner(key, nil), r.Owner(key, alive)
		if degraded == "n4" {
			t.Fatalf("key %q assigned to the down node", key)
		}
		if full != "n4" && degraded != full {
			t.Fatalf("key %q moved %s -> %s though its owner is healthy", key, full, degraded)
		}
		if full == "n4" {
			redispersed++
		}
	}
	if redispersed == 0 {
		t.Fatal("n4 owned no keys; balance is broken")
	}
	if r.Owner("anything", func(string) bool { return false }) != "" {
		t.Fatal("all-dead ring must return no owner")
	}
}

// TestRingEmpty covers the degenerate rings.
func TestRingEmpty(t *testing.T) {
	if owner := NewRing(nil, 0).Owner("k", nil); owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
	if owner := NewRing([]string{"only"}, 0).Owner("k", nil); owner != "only" {
		t.Fatalf("single-node ring returned owner %q", owner)
	}
}
