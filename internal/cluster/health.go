package cluster

import (
	"net/http"
	"sync"
	"time"
)

// healthTracker keeps per-peer liveness. Peers start healthy; failures
// (failed probes or failed forwards) accumulate, and at the threshold
// the peer is ejected — ring lookups walk past its points until a
// successful probe restores it. Tracking is reactive as well as
// probed, so a node that dies between probes is ejected by the first
// forward that hits it.
type healthTracker struct {
	mu        sync.Mutex
	threshold int
	fails     map[string]int
	down      map[string]bool
}

func newHealthTracker(peers []string, threshold int) *healthTracker {
	if threshold <= 0 {
		threshold = 1
	}
	t := &healthTracker{
		threshold: threshold,
		fails:     make(map[string]int, len(peers)),
		down:      make(map[string]bool, len(peers)),
	}
	return t
}

// healthy reports whether peer is currently in the ring's view.
func (t *healthTracker) healthy(peer string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down[peer]
}

// healthyCount returns how many of peers are currently healthy.
func (t *healthTracker) healthyCount(peers []string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, p := range peers {
		if !t.down[p] {
			n++
		}
	}
	return n
}

// markSuccess clears peer's failure streak and restores it.
func (t *healthTracker) markSuccess(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails[peer] = 0
	t.down[peer] = false
}

// markFailure records a failed probe or forward; at the threshold the
// peer is ejected.
func (t *healthTracker) markFailure(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails[peer]++
	if t.fails[peer] >= t.threshold {
		t.down[peer] = true
	}
}

// probe checks one peer's /healthz. Any transport error or non-200
// (a draining node answers 503 exactly so this path ejects it) counts
// as a failure.
func (t *healthTracker) probe(client *http.Client, peer string) {
	resp, err := client.Get(peer + "/healthz")
	if err != nil {
		t.markFailure(peer)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.markFailure(peer)
		return
	}
	t.markSuccess(peer)
}

// probeLoop re-probes every peer in peers (excluding self, which would
// be pointless) each interval until done closes. It is the recovery
// path: reactive failure marking ejects peers fast, the loop brings
// them back.
func (t *healthTracker) probeLoop(done <-chan struct{}, client *http.Client, peers []string, self string, interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case <-ticker.C:
			for _, p := range peers {
				if p != self {
					t.probe(client, p)
				}
			}
		}
	}
}
