package cluster

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"aviv/internal/cover"
)

// peerStore is the node's cover.EntryStore: a local tier (diskcache or
// in-memory) fronted by the cluster. Entry keys hash onto the same
// ring as compile requests, so every block artifact and delta artifact
// has one owning shard. A local miss asks the owner over the wire; a
// local write replicates to the owner. Because the wire format is
// diskcache's checksummed framing, a corrupt transfer is rejected at
// decode and recorded as a miss — the covering engine then recompiles,
// so peering can slow a compile down but can never change its bytes.
type peerStore struct {
	n     *Node
	local cover.EntryStore
}

func (ps *peerStore) Get(key [sha256.Size]byte) ([]byte, bool) {
	if data, ok := ps.local.Get(key); ok {
		return data, true
	}
	n := ps.n
	owner := n.ring.Owner(hex.EncodeToString(key[:]), n.health.healthy)
	if owner == "" || owner == n.cfg.Self {
		return nil, false
	}
	payload, ok, err := n.fetchEntry(owner, key)
	if err != nil {
		n.health.markFailure(owner)
		n.srv.Counters().PeerMisses.Add(1)
		return nil, false
	}
	if !ok {
		n.srv.Counters().PeerMisses.Add(1)
		return nil, false
	}
	// Adopt the entry locally: repeated use of a hot peer-owned key
	// costs one RPC, not one per compile.
	ps.local.Put(key, payload)
	n.srv.Counters().PeerHits.Add(1)
	return payload, true
}

func (ps *peerStore) Put(key [sha256.Size]byte, data []byte) {
	ps.local.Put(key, data)
	n := ps.n
	if n.draining.Load() {
		return // Drain re-homes everything; don't race it entry by entry
	}
	owner := n.ring.Owner(hex.EncodeToString(key[:]), n.health.healthy)
	if owner == "" || owner == n.cfg.Self {
		return
	}
	if err := n.pushEntry(owner, key, data); err != nil {
		n.health.markFailure(owner)
		return
	}
	n.peerPushes.Add(1)
}

// Delete removes the local copy (the covering engine deletes entries
// it failed to decode). Best-effort and local-only: the owner's copy,
// if any, was independently verified on its own path.
func (ps *peerStore) Delete(key [sha256.Size]byte) {
	if del, ok := ps.local.(cover.DeletableStore); ok {
		del.Delete(key)
	}
}

// MemStore is a concurrency-safe in-memory entry store with optional
// LRU bounding. It is the local tier for nodes run without a disk
// cache, and — because its capacity is explicit — the knob the
// avivbench cluster study turns to model a fixed per-node cache
// budget: a working set larger than one node's MemStore thrashes,
// while the same set sharded across N nodes fits their aggregate
// capacity.
type MemStore struct {
	mu  sync.Mutex
	cap int // <= 0: unbounded
	m   map[[sha256.Size]byte]*list.Element
	lru *list.List // front = most recently used; values are *memEntry
}

type memEntry struct {
	key  [sha256.Size]byte
	data []byte
}

// NewMemStore builds a store holding at most capacity entries,
// evicting least-recently-used beyond that; capacity <= 0 means
// unbounded.
func NewMemStore(capacity int) *MemStore {
	return &MemStore{
		cap: capacity,
		m:   make(map[[sha256.Size]byte]*list.Element),
		lru: list.New(),
	}
}

func (s *MemStore) Get(key [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry).data, true
}

func (s *MemStore) Put(key [sha256.Size]byte, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*memEntry).data = append([]byte(nil), data...)
		s.lru.MoveToFront(el)
		return
	}
	s.m[key] = s.lru.PushFront(&memEntry{key: key, data: append([]byte(nil), data...)})
	if s.cap > 0 {
		for len(s.m) > s.cap {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			delete(s.m, oldest.Value.(*memEntry).key)
		}
	}
}

func (s *MemStore) Delete(key [sha256.Size]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.lru.Remove(el)
		delete(s.m, key)
	}
}

// Len returns the current entry count.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys enumerates the held keys in sorted order (for Drain).
func (s *MemStore) Keys() [][sha256.Size]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([][sha256.Size]byte, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return string(keys[i][:]) < string(keys[j][:])
	})
	return keys
}
