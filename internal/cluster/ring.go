// Package cluster turns a set of avivd servers into one compile
// cluster: a consistent-hash ring keyed by the server's content
// fingerprint routes every request to its owning shard, nodes peer
// cache entries over the wire in diskcache's checksummed framing, and
// the owning shard's single-flight group becomes the cluster-wide
// deduplication point. Every cross-node path degrades to a local
// compile on failure — a dead peer costs latency, never availability,
// and never a wrong answer (served bytes always come out of
// aviv.CompileSource or a checksum-verified cache entry).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// defaultVirtualNodes is the per-node virtual point count. 64 points
// per node keeps the ownership split within a few percent of even for
// small fleets while the ring stays tiny (a few KB).
const defaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over node names (base
// URLs). Keys map to the node owning the first ring point clockwise of
// the key's hash; membership changes move only the keys whose arc the
// joining or leaving node's points cover, which is what keeps shard
// caches warm across reconfiguration. Health is layered on lookup, not
// baked into the ring: Owner walks past points of unhealthy nodes, so
// an ejected node's keys re-disperse to its ring successors and snap
// back when it recovers.
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with virtualNodes points per node (<= 0 picks
// the default). Duplicate node names collapse; order is irrelevant —
// two rings over the same membership are identical.
func NewRing(nodes []string, virtualNodes int) *Ring {
	if virtualNodes <= 0 {
		virtualNodes = defaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < virtualNodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: pointHash(n + "#" + strconv.Itoa(i)),
				node: n,
			})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.node < b.node // total order even on (astronomically unlikely) hash ties
	})
	return r
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key: the node of the first ring point
// at or clockwise of the key's hash whose node alive reports true
// (nil alive accepts every node). Returns "" only when no node is
// alive.
func (r *Ring) Owner(key string, alive func(string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := pointHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive == nil || alive(p.node) {
			return p.node
		}
	}
	return ""
}

// pointHash maps a string onto the ring's 64-bit hash space via
// sha256, matching the fingerprint family the rest of the compiler
// keys caches with.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
