package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"aviv"
	"aviv/internal/bench"
	"aviv/internal/diskcache"
	"aviv/internal/isdl"
	"aviv/internal/server"
)

// testCluster starts an N-node loopback cluster with reactive-only
// health (probes effectively off) so failure handling in tests is
// deterministic: a peer is ejected by the first failed RPC, never by a
// racing probe.
func testCluster(t *testing.T, n int, mut func(*LocalConfig)) *LocalCluster {
	t.Helper()
	cfg := LocalConfig{
		N: n,
		NodeConfig: func(i int) server.Config {
			return server.Config{
				Options:    aviv.Options{Parallelism: 1},
				QueueLimit: 64,
				Timeout:    30 * time.Second,
			}
		},
		ProbeInterval:    time.Hour,
		FailureThreshold: 1,
	}
	if mut != nil {
		mut(&cfg)
	}
	lc, err := StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// pickOwned finds a compile request (source text from form, one %d
// verb) whose content key the given node owns. Node URLs carry random
// ports, so ownership must be discovered at runtime.
func pickOwned(t *testing.T, lc *LocalCluster, ownerIdx int, form string) server.CompileRequest {
	t.Helper()
	for i := 0; i < 4096; i++ {
		req := server.CompileRequest{Source: fmt.Sprintf(form, i), Machine: isdl.ExampleArchISDL}
		if lc.Nodes[0].ring.Owner(server.RequestKey(req), nil) == lc.URLs[ownerIdx] {
			return req
		}
	}
	t.Fatalf("no request matching %q owned by node %d in 4096 tries", form, ownerIdx)
	return server.CompileRequest{}
}

// pickOwnedSlow finds a large multi-block request owned by the given
// node — slow enough to park that node's single worker for a while.
func pickOwnedSlow(t *testing.T, lc *LocalCluster, ownerIdx int) server.CompileRequest {
	t.Helper()
	for seed := int64(1); seed < 256; seed++ {
		req := server.CompileRequest{
			Source:  bench.MultiBlockSource(seed, 30, 10),
			Machine: isdl.ExampleArchFullISDL,
		}
		if lc.Nodes[0].ring.Owner(server.RequestKey(req), nil) == lc.URLs[ownerIdx] {
			return req
		}
	}
	t.Fatalf("no slow request owned by node %d in 256 seeds", ownerIdx)
	return server.CompileRequest{}
}

// pickOwnedEntryKey finds a cache-entry key the given node owns.
func pickOwnedEntryKey(t *testing.T, lc *LocalCluster, ownerIdx int) [sha256.Size]byte {
	t.Helper()
	var key [sha256.Size]byte
	for i := uint64(0); i < 65536; i++ {
		binary.BigEndian.PutUint64(key[:8], i)
		hexKey := fmt.Sprintf("%x", key)
		if lc.Nodes[0].ring.Owner(hexKey, nil) == lc.URLs[ownerIdx] {
			return key
		}
	}
	t.Fatalf("no entry key owned by node %d in 65536 tries", ownerIdx)
	return key
}

func postCompile(t *testing.T, url string, req server.CompileRequest) (int, server.CompileResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp server.CompileResponse
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return httpResp.StatusCode, resp
}

// localAssembly compiles req locally (no server, no cluster) — the
// byte-identity reference every cluster answer must match.
func localAssembly(t *testing.T, req server.CompileRequest) string {
	t.Helper()
	m, err := isdl.Parse(req.Machine)
	if err != nil {
		t.Fatal(err)
	}
	unroll := req.Unroll
	if unroll < 1 {
		unroll = 1
	}
	res, err := aviv.CompileSource(req.Source, m, unroll, aviv.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res.Program.String()
}

// TestForwardingByteIdentity sends a request to the node that does NOT
// own it: the compile must be forwarded to the owner and the answer
// must be byte-identical to a local compile.
func TestForwardingByteIdentity(t *testing.T) {
	lc := testCluster(t, 2, nil)
	req := pickOwned(t, lc, 1, "x = 1 + %d;")

	status, resp := postCompile(t, lc.URLs[0], req)
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("status %d, error %q", status, resp.Error)
	}
	if want := localAssembly(t, req); resp.Assembly != want {
		t.Fatalf("forwarded assembly differs from local compile:\n%s\nwant:\n%s", resp.Assembly, want)
	}
	if got := lc.Nodes[0].Server().Counters().Forwarded.Load(); got != 1 {
		t.Errorf("node0 forwarded = %d, want 1", got)
	}
	// The owner served it locally (no second hop).
	if got := lc.Nodes[1].Server().Counters().Forwarded.Load(); got != 0 {
		t.Errorf("node1 forwarded = %d, want 0", got)
	}
}

// TestSingleFlightAcrossForward pins the cluster-wide dedup contract:
// identical requests hitting BOTH nodes concurrently collapse into one
// compile on the owning shard. The owner's single worker is parked
// with a slow compile so the identical requests demonstrably overlap.
func TestSingleFlightAcrossForward(t *testing.T) {
	lc := testCluster(t, 2, nil)
	slow := pickOwnedSlow(t, lc, 1)
	req := pickOwned(t, lc, 1, "y = 2 * %d;")

	// Park node1's worker.
	slowDone := make(chan int, 1)
	go func() {
		status, _ := postCompile(t, lc.URLs[1], slow)
		slowDone <- status
	}()
	deadline := time.Now().Add(10 * time.Second)
	for lc.Nodes[1].Server().Counters().Inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow compile never started")
		}
		time.Sleep(time.Millisecond)
	}

	// 3 identical requests at each node, all while the worker is busy.
	var wg sync.WaitGroup
	results := make(chan string, 6)
	for _, url := range []string{lc.URLs[0], lc.URLs[1]} {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				status, resp := postCompile(t, url, req)
				if status == http.StatusOK && resp.Error == "" {
					results <- resp.Assembly
				} else {
					results <- fmt.Sprintf("status %d error %q", status, resp.Error)
				}
			}(url)
		}
	}
	wg.Wait()
	close(results)

	want := localAssembly(t, req)
	for got := range results {
		if got != want {
			t.Fatalf("cluster answer differs from local compile:\n%s", got)
		}
	}
	if status := <-slowDone; status != http.StatusOK {
		t.Fatalf("slow compile status %d", status)
	}

	c0, c1 := lc.Nodes[0].Server().Counters(), lc.Nodes[1].Server().Counters()
	// node0: 3 waiters merged into 1 forward.
	if got := c0.Forwarded.Load(); got != 1 {
		t.Errorf("node0 forwarded = %d, want 1", got)
	}
	if got := c0.Deduped.Load(); got != 2 {
		t.Errorf("node0 deduped = %d, want 2", got)
	}
	// node1: 3 local + 1 forwarded merged into 1 execution.
	if got := c1.Deduped.Load(); got != 3 {
		t.Errorf("node1 deduped = %d, want 3", got)
	}
	// node1 executed exactly two compiles: the slow one and req.
	if got := c1.Completed.Load(); got != 2 {
		t.Errorf("node1 completed = %d, want 2 (slow + one deduped compile)", got)
	}
}

// TestPeerEntryFetchAndAdopt pins the cache-peering happy path: a
// local miss on a peer-owned key fetches the entry from the owner in
// checksummed framing and adopts it locally.
func TestPeerEntryFetchAndAdopt(t *testing.T) {
	lc := testCluster(t, 2, nil)
	key := pickOwnedEntryKey(t, lc, 1)
	payload := []byte("covering artifact bytes")
	lc.Nodes[1].local.Put(key, payload)

	store := &peerStore{n: lc.Nodes[0], local: lc.Nodes[0].local}
	got, ok := store.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("peer fetch = %q, %v; want payload, true", got, ok)
	}
	if got := lc.Nodes[0].Server().Counters().PeerHits.Load(); got != 1 {
		t.Errorf("peer_hits = %d, want 1", got)
	}
	// Adopted: the second Get is local, no new peer traffic.
	if _, ok := lc.Nodes[0].local.Get(key); !ok {
		t.Error("fetched entry was not adopted into the local store")
	}
}

// entryCorruptingTransport flips or truncates bytes of /peer/entry GET
// responses, simulating wire corruption between nodes.
type entryCorruptingTransport struct {
	mode string // "flip" or "truncate"
}

func (tr *entryCorruptingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || req.URL.Path != "/peer/entry" || req.Method != http.MethodGet || resp.StatusCode != http.StatusOK {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch tr.mode {
	case "flip":
		body[len(body)/2] ^= 0x40
	case "truncate":
		body = body[:len(body)-7]
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// TestPeerEntryCorruptionDegradesToMiss pins the transfer-integrity
// contract: a corrupt or truncated peer transfer is rejected by the
// sha256 framing and recorded as a miss — the compiler then recompiles
// locally, so corruption can never change served bytes.
func TestPeerEntryCorruptionDegradesToMiss(t *testing.T) {
	for _, mode := range []string{"flip", "truncate"} {
		t.Run(mode, func(t *testing.T) {
			tr := &entryCorruptingTransport{mode: mode}
			lc := testCluster(t, 2, func(cfg *LocalConfig) { cfg.Transport = tr })
			key := pickOwnedEntryKey(t, lc, 1)
			lc.Nodes[1].local.Put(key, []byte("covering artifact bytes"))

			store := &peerStore{n: lc.Nodes[0], local: lc.Nodes[0].local}
			if data, ok := store.Get(key); ok {
				t.Fatalf("corrupt transfer served as hit: %q", data)
			}
			if got := lc.Nodes[0].Server().Counters().PeerMisses.Load(); got != 1 {
				t.Errorf("peer_misses = %d, want 1", got)
			}
			if got := lc.Nodes[0].Server().Counters().PeerHits.Load(); got != 0 {
				t.Errorf("peer_hits = %d, want 0", got)
			}
			if _, ok := lc.Nodes[0].local.Get(key); ok {
				t.Error("corrupt entry was adopted into the local store")
			}
		})
	}
}

// TestPeerEntryWriteThrough pins write-through replication: a Put on a
// peer-owned key lands on the owning node too.
func TestPeerEntryWriteThrough(t *testing.T) {
	lc := testCluster(t, 2, nil)
	key := pickOwnedEntryKey(t, lc, 1)
	payload := []byte("fresh artifact")

	store := &peerStore{n: lc.Nodes[0], local: lc.Nodes[0].local}
	store.Put(key, payload)

	if got, ok := lc.Nodes[1].local.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("owner copy = %q, %v; want payload, true", got, ok)
	}
	if got := lc.Nodes[0].peerPushes.Load(); got != 1 {
		t.Errorf("peer_pushes = %d, want 1", got)
	}
}

// TestPeerEntryRejectsCorruptPush pins the receiving side: a pushed
// entry whose framing fails verification is rejected with 400 and
// never stored.
func TestPeerEntryRejectsCorruptPush(t *testing.T) {
	lc := testCluster(t, 1, nil)
	key := pickOwnedEntryKey(t, lc, 0)
	url := fmt.Sprintf("%s/peer/entry?key=%x", lc.URLs[0], key)

	frame := diskcache.EncodeEntry([]byte("payload"))
	frame[len(frame)-2] ^= 0x01
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt push status = %d, want 400", resp.StatusCode)
	}
	if got := lc.Nodes[0].peerRejects.Load(); got != 1 {
		t.Errorf("peer_rejects = %d, want 1", got)
	}
	if _, ok := lc.Nodes[0].local.Get(key); ok {
		t.Error("corrupt push was stored")
	}
}

// TestKillNodeFallsBackLocal pins availability: when a key's owner is
// dead, the receiving node compiles locally (byte-identically), counts
// the failure, and ejects the peer so later requests skip the corpse.
func TestKillNodeFallsBackLocal(t *testing.T) {
	lc := testCluster(t, 3, nil)
	req := pickOwned(t, lc, 2, "z = %d - 1;")
	lc.KillNode(2)

	status, resp := postCompile(t, lc.URLs[0], req)
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("status %d, error %q", status, resp.Error)
	}
	if want := localAssembly(t, req); resp.Assembly != want {
		t.Fatal("fallback assembly differs from local compile")
	}
	c0 := lc.Nodes[0].Server().Counters()
	if got := c0.ForwardErrors.Load(); got != 1 {
		t.Errorf("forward_errors = %d, want 1", got)
	}
	if got := c0.LocalFallbacks.Load(); got != 1 {
		t.Errorf("local_fallbacks = %d, want 1", got)
	}
	if lc.Nodes[0].health.healthy(lc.URLs[2]) {
		t.Error("dead node still marked healthy after failed forward")
	}

	// Second identical request: the dead owner is ejected, so the key
	// re-disperses deterministically to a healthy node — no second
	// connection error.
	status, resp2 := postCompile(t, lc.URLs[0], req)
	if status != http.StatusOK || resp2.Assembly != resp.Assembly {
		t.Fatalf("re-dispersed request: status %d", status)
	}
	if got := c0.ForwardErrors.Load(); got != 1 {
		t.Errorf("forward_errors after ejection = %d, want still 1", got)
	}
}

// TestProbeRecovery pins the recovery path: an ejected peer is
// restored by the next successful health probe.
func TestProbeRecovery(t *testing.T) {
	lc := testCluster(t, 2, func(cfg *LocalConfig) { cfg.ProbeInterval = 20 * time.Millisecond })
	lc.Nodes[0].health.markFailure(lc.URLs[1])
	if lc.Nodes[0].health.healthy(lc.URLs[1]) {
		t.Fatal("markFailure did not eject at threshold 1")
	}
	deadline := time.Now().Add(5 * time.Second)
	for !lc.Nodes[0].health.healthy(lc.URLs[1]) {
		if time.Now().After(deadline) {
			t.Fatal("probe never restored the healthy peer")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainBleedsEntries pins graceful drain: /healthz flips to 503
// (so probes eject the node) and every locally held entry is re-homed
// to its post-drain owner before shutdown.
func TestDrainBleedsEntries(t *testing.T) {
	lc := testCluster(t, 2, nil)
	var keys [][sha256.Size]byte
	for i := 0; i < 5; i++ {
		var key [sha256.Size]byte
		key[31] = byte(i + 1)
		keys = append(keys, key)
		lc.Nodes[0].local.Put(key, []byte(fmt.Sprintf("entry-%d", i)))
	}

	moved := lc.Nodes[0].Drain()
	if moved != len(keys) {
		t.Fatalf("drain moved %d entries, want %d", moved, len(keys))
	}
	for i, key := range keys {
		if got, ok := lc.Nodes[1].local.Get(key); !ok || string(got) != fmt.Sprintf("entry-%d", i) {
			t.Errorf("entry %d not re-homed to the survivor", i)
		}
	}
	if got := lc.Nodes[0].Server().Counters().Drained.Load(); got != int64(len(keys)) {
		t.Errorf("drained counter = %d, want %d", got, len(keys))
	}
	resp, err := http.Get(lc.URLs[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", resp.StatusCode)
	}
}

// TestRouterRoutesToOwnerAndFailsOver pins the thin-router mode: the
// first hop lands on the owning node (so node-side forwarding stays
// the exception), and a dead owner fails over to a survivor without
// surfacing an error.
func TestRouterRoutesToOwnerAndFailsOver(t *testing.T) {
	lc := testCluster(t, 2, nil)
	routerURL, err := lc.StartRouter()
	if err != nil {
		t.Fatal(err)
	}
	req := pickOwned(t, lc, 1, "r = %d * 3;")

	status, resp := postCompile(t, routerURL, req)
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("status %d, error %q", status, resp.Error)
	}
	want := localAssembly(t, req)
	if resp.Assembly != want {
		t.Fatal("routed assembly differs from local compile")
	}
	// The router hit the owner directly: nobody forwarded.
	if got := lc.Nodes[0].Server().Counters().Requests.Load(); got != 0 {
		t.Errorf("non-owner requests = %d, want 0", got)
	}
	if got := lc.Nodes[1].Server().Counters().Requests.Load(); got != 1 {
		t.Errorf("owner requests = %d, want 1", got)
	}

	lc.KillNode(1)
	status, resp = postCompile(t, routerURL, req)
	if status != http.StatusOK || resp.Assembly != want {
		t.Fatalf("failover: status %d", status)
	}
	if got := lc.Nodes[0].Server().Counters().Requests.Load(); got != 1 {
		t.Errorf("survivor requests = %d, want 1", got)
	}
}

// TestStatsClusterSection pins that a cluster node's /stats grows the
// "cluster" section next to the standalone sections.
func TestStatsClusterSection(t *testing.T) {
	lc := testCluster(t, 2, nil)
	resp, err := http.Get(lc.URLs[0] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Server  map[string]any `json:"server"`
		Cluster map[string]any `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Server == nil {
		t.Fatal("/stats lacks the server section")
	}
	if stats.Cluster == nil {
		t.Fatal("/stats lacks the cluster section")
	}
	if got := stats.Cluster["self"]; got != lc.URLs[0] {
		t.Errorf("cluster.self = %v, want %s", got, lc.URLs[0])
	}
	if got := stats.Cluster["nodes"]; got != float64(2) {
		t.Errorf("cluster.nodes = %v, want 2", got)
	}
	for _, field := range []string{"healthy", "forwarded", "local_fallbacks", "peer_hits", "peer_misses", "forward_errors", "drained"} {
		if _, ok := stats.Cluster[field]; !ok {
			t.Errorf("cluster section lacks %q", field)
		}
	}
}

// TestAbandonmentPropagatesAcrossHop pins PR 8's waiter-counted
// abandonment across the forwarding hop: when the forwarding node's
// client gives up, the RPC context cancels, the owner's handler
// context cancels with it, and the owner's flight abandons the queued
// compile instead of running it for nobody.
func TestAbandonmentPropagatesAcrossHop(t *testing.T) {
	lc := testCluster(t, 2, func(cfg *LocalConfig) {
		base := cfg.NodeConfig
		cfg.NodeConfig = func(i int) server.Config {
			scfg := base(i)
			if i == 0 {
				scfg.Timeout = 150 * time.Millisecond
			}
			return scfg
		}
	})
	slow := pickOwnedSlow(t, lc, 1)
	req := pickOwned(t, lc, 1, "a = %d + 7;")

	// Park node1's worker so the forwarded compile queues there.
	slowDone := make(chan int, 1)
	go func() {
		status, _ := postCompile(t, lc.URLs[1], slow)
		slowDone <- status
	}()
	deadline := time.Now().Add(10 * time.Second)
	for lc.Nodes[1].Server().Counters().Inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow compile never started")
		}
		time.Sleep(time.Millisecond)
	}

	// node0 forwards, then times out after 150ms -> 504; the owner
	// must abandon the queued flight.
	status, _ := postCompile(t, lc.URLs[0], req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", status)
	}
	if got := lc.Nodes[0].Server().Counters().Timeouts.Load(); got != 1 {
		t.Errorf("node0 timeouts = %d, want 1", got)
	}
	deadline = time.Now().Add(5 * time.Second)
	for lc.Nodes[1].Server().Counters().Abandoned.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never abandoned the orphaned flight")
		}
		time.Sleep(time.Millisecond)
	}
	// The caller's timeout is not a peer failure: node1 stays healthy.
	if !lc.Nodes[0].health.healthy(lc.URLs[1]) {
		t.Error("owner ejected because the caller timed out")
	}
	if status := <-slowDone; status != http.StatusOK {
		t.Fatalf("slow compile status %d", status)
	}
}
