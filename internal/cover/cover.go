package cover

import (
	"fmt"
	"sort"
	"strings"

	"aviv/internal/bitset"
	"aviv/internal/dataflow"
	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// Solution is a complete covering of one basic block: a functional-unit
// assignment, the scheduled VLIW instructions (each a shrunk maximal
// clique of operation and transfer nodes), and the spills inserted along
// the way. Detailed register allocation (package regalloc) is the only
// remaining step, and is guaranteed to succeed (Sec. IV-F).
type Solution struct {
	Block      *ir.Block
	Machine    *isdl.Machine
	Assignment *Assignment

	// Instrs is the schedule: one entry per VLIW instruction, each a set
	// of parallel solution-graph nodes.
	Instrs [][]*SNode
	// SpillCount is the number of values spilled to memory.
	SpillCount int

	// ExternalUses marks values that must stay register-resident past
	// the block (the branch condition holder).
	ExternalUses map[*SNode]int
}

// Cost returns the code size of the block body in instructions — the
// optimization objective of the paper.
func (s *Solution) Cost() int { return len(s.Instrs) }

// Nodes returns every node appearing in the schedule.
func (s *Solution) Nodes() []*SNode {
	var out []*SNode
	for _, instr := range s.Instrs {
		out = append(out, instr...)
	}
	return out
}

// CondHolder returns the node whose result register holds the branch
// condition, or nil when the block does not branch on a register value.
// ExternalUses carries exactly the condition holder today, but the
// lowest-ID fold keeps the choice deterministic even if that invariant
// ever loosens.
func (s *Solution) CondHolder() *SNode {
	var best *SNode
	for n := range s.ExternalUses {
		if best == nil || n.ID < best.ID {
			best = n
		}
	}
	return best
}

func (s *Solution) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "solution for %s on %s: %d instructions, %d spills\n",
		s.Block.Name, s.Machine.Name, s.Cost(), s.SpillCount)
	for i, instr := range s.Instrs {
		fmt.Fprintf(&sb, "  I%-3d %s\n", i, formatClique(instr))
	}
	return sb.String()
}

// Result is the outcome of covering one basic block.
type Result struct {
	Best *Solution
	// AssignmentsExplored counts the complete assignments covered in
	// detail.
	AssignmentsExplored int
	// PrunedAssignments counts assignments skipped by branch-and-bound
	// because their admissible lower bound already exceeded the
	// incumbent cost.
	PrunedAssignments int
	// MemoHits counts coverings answered by the intra-search memo:
	// assignments whose solution graph (and parallelism matrix) was
	// identical to one already covered.
	MemoHits int
	// CacheHit reports that this result came from Options.Cache or
	// Options.Store rather than a fresh covering.
	CacheHit bool
	// DiskHit reports that this result was deserialized from
	// Options.Store (the persistent tier). Implies CacheHit on the
	// returned copy.
	DiskHit bool
	// DAG is the Split-Node DAG the covering worked from.
	DAG *sndag.DAG
	// PrunedStores counts stores removed before covering because
	// Options.LiveOut proved them dead past the block.
	PrunedStores int
}

// CoverBlock runs the full concurrent code-generation step of Sec. IV on
// one basic block: build the Split-Node DAG, explore functional-unit
// assignments, and cover each selected assignment with a minimal-cost
// set of maximal groupings; the cheapest covering wins.
func CoverBlock(block *ir.Block, m *isdl.Machine, opts Options) (*Result, error) {
	cache, store := opts.Cache, opts.Store
	if opts.Trace != nil {
		cache, store = nil, nil
	}
	var key cacheKey
	if cache != nil {
		key = cache.key(block, m, opts)
	} else if store != nil {
		key = computeKey(block, m, opts)
	}
	if cache != nil {
		if hit, ok := cache.get(key); ok {
			// Shallow copy: CacheHit is per-call state, everything else is
			// shared and immutable downstream.
			cp := *hit
			cp.CacheHit = true
			return &cp, nil
		}
	}
	pruned := 0
	if opts.LiveOut != nil {
		block, pruned = dataflow.PruneBlock(block, opts.LiveOut)
	}
	d, err := sndag.Build(block, m)
	if err != nil {
		return nil, err
	}
	if store != nil {
		// Persistent tier. The covered block and DAG above are
		// deterministic functions of the key's components, so decoding
		// against them resolves the serialized schedule's pointers; any
		// decode failure (corruption, version skew, verify) is a miss.
		if data, ok := store.Get(key.storeKey()); ok {
			if res, derr := decodeResult(data, d); derr == nil {
				res.PrunedStores = pruned
				if cache != nil {
					cache.put(key, res)
				}
				cp := *res
				cp.CacheHit = true
				cp.DiskHit = true
				return &cp, nil
			} else if del, ok := store.(DeletableStore); ok {
				// The entry read back clean (the storage checksum held) but
				// no longer decodes — codec version skew, or a block whose
				// re-derived DAG drifted. Left in place it would be
				// re-decoded and re-rejected on every future lookup while
				// still counting as a fresh mtime for the store's LRU;
				// delete it so the slot is rewritten by the Put below.
				del.Delete(key.storeKey())
			}
		}
	}
	res, err := CoverDAG(d, opts)
	if res != nil {
		res.PrunedStores = pruned
	}
	if err == nil {
		if cache != nil {
			cache.put(key, res)
		}
		if store != nil {
			if data, ok := encodeResult(res); ok {
				store.Put(key.storeKey(), data)
			}
		}
	}
	return res, err
}

// CoverDAG is CoverBlock for a pre-built Split-Node DAG.
//
// Assignments are covered best-first by an admissible lower bound
// (assignmentLowerBound) with branch-and-bound pruning: once an
// incumbent solution exists, any assignment whose bound strictly
// exceeds the incumbent cost is skipped. The winner is identical to the
// original first-to-last scan — ties on (cost, spill count) still go to
// the assignment with the lowest exploration index, and pruning only
// discards assignments that cannot win even a tie.
func CoverDAG(d *sndag.DAG, opts Options) (*Result, error) {
	assigns := exploreAssignments(d, opts)
	if len(assigns) == 0 {
		return nil, fmt.Errorf("cover: no functional-unit assignment found for block %s", d.Block.Name)
	}
	res := &Result{DAG: d}

	// Intra-search memo: nil under tracing so every covering is logged
	// in full.
	var memo *coverMemo
	if opts.Trace == nil {
		memo = newCoverMemo()
	}

	// Lower-bound prepass. Graphs are built and discarded: the scheduler
	// mutates its graph, so each explored assignment rebuilds anyway, and
	// holding one graph per assignment would bloat exhaustive runs.
	type candidate struct {
		idx int // original exploreAssignments index
		a   *Assignment
		lb  int
		err error // buildGraph failure, fatal for this assignment
	}
	cands := make([]candidate, len(assigns))
	for i, a := range assigns {
		cands[i] = candidate{idx: i, a: a}
		if g, err := buildGraph(d, a, opts); err != nil {
			cands[i].err = err
		} else {
			cands[i].lb = assignmentLowerBound(g)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lb != cands[j].lb {
			return cands[i].lb < cands[j].lb
		}
		return cands[i].idx < cands[j].idx
	})

	var firstErr error
	firstErrIdx := len(assigns)
	bestIdx := len(assigns)
	for _, c := range cands {
		if c.err != nil {
			// Transfer routing failed; ListSchedule shares buildGraph, so
			// covering this assignment cannot succeed either.
			if c.idx < firstErrIdx {
				firstErr, firstErrIdx = c.err, c.idx
			}
			continue
		}
		if res.Best != nil && c.lb > res.Best.Cost() {
			res.PrunedAssignments++
			if opts.Trace != nil {
				opts.Trace.logf("pruned assignment %d (lower bound %d > best %d)", c.idx, c.lb, res.Best.Cost())
			}
			continue
		}
		if opts.Trace != nil {
			opts.Trace.logf("covering assignment %d (heuristic cost %d, lower bound %d)", c.idx, c.a.HeurCost, c.lb)
		}
		sol, err := coverAssignment(d, c.a, opts, memo)
		if err != nil {
			if c.idx < firstErrIdx {
				firstErr, firstErrIdx = err, c.idx
			}
			continue
		}
		res.AssignmentsExplored++
		if res.Best == nil || sol.Cost() < res.Best.Cost() ||
			(sol.Cost() == res.Best.Cost() && (sol.SpillCount < res.Best.SpillCount ||
				(sol.SpillCount == res.Best.SpillCount && c.idx < bestIdx))) {
			res.Best = sol
			bestIdx = c.idx
		}
	}
	if res.Best == nil {
		// Register files too tight for the clique coverer: fall back to
		// fully serial memory-resident code, which the assignment filter
		// guarantees is schedulable.
		sol, err := serialFallback(d, assigns[0], opts)
		if err != nil {
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, fmt.Errorf("cover: all assignments failed for block %s: %w", d.Block.Name, err)
		}
		if vErr := sol.Verify(); vErr != nil {
			if firstErr != nil {
				return nil, fmt.Errorf("%w (serial fallback also invalid: %v)", firstErr, vErr)
			}
			return nil, vErr
		}
		if opts.Trace != nil {
			opts.Trace.logf("clique covering failed (%v); serial fallback: %d instructions", firstErr, sol.Cost())
		}
		res.Best = sol
		res.AssignmentsExplored++
	}
	if memo != nil {
		res.MemoHits = memo.hits
	}
	return res, nil
}

// coverAssignment builds the solution graph for one assignment, inserts
// the required transfers, and runs the greedy clique covering. A small
// schedule portfolio improves robustness: the clique covering
// occasionally loses to a plain ready-list schedule on long accumulation
// chains (maximal groupings bias it toward width over depth), so the
// list schedule always competes; with the level-window heuristic
// disabled (heuristics-off mode) the windowed covering competes too, so
// the exhaustive candidate set is a strict superset of the heuristic one.
func coverAssignment(d *sndag.DAG, a *Assignment, opts Options, memo *coverMemo) (*Solution, error) {
	best, firstErr := cliqueCover(d, a, opts, memo)
	if opts.LevelWindow < 0 {
		windowed := opts
		windowed.LevelWindow = DefaultOptions().LevelWindow
		if sol, err := cliqueCover(d, a, windowed, memo); err == nil {
			best = betterSolution(best, sol)
		}
	}
	if ls, err := memoListSchedule(d, a, opts, memo); err == nil {
		best = betterSolution(best, ls)
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

func betterSolution(a, b *Solution) *Solution {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.Cost() < a.Cost() || (b.Cost() == a.Cost() && b.SpillCount < a.SpillCount) {
		return b
	}
	return a
}

func cliqueCover(d *sndag.DAG, a *Assignment, opts Options, memo *coverMemo) (*Solution, error) {
	g, err := buildGraph(d, a, opts)
	if err != nil {
		return nil, err
	}
	var key memoKey
	var pm *bitset.Matrix
	if len(g.nodes) > 0 {
		pm = parallelMatrix(g.nodes, g.machine, opts.LevelWindow)
		if memo != nil {
			key = memoKey{algo: 'C', graph: graphFingerprint(g), matrix: matrixFingerprint(pm)}
			if sol, ok := memo.lookup(key, opts.LevelWindow); ok {
				return rebindAssignment(sol, a), nil
			}
		}
	}
	sched := newScheduler(g, opts)
	if pm != nil {
		sched.initialCliques = cliquesFromMatrix(g.nodes, pm, g.machine, opts.CliqueBudget)
	}
	if err := sched.run(); err != nil {
		return nil, err
	}
	sol := &Solution{
		Block:        d.Block,
		Machine:      d.Machine,
		Assignment:   a,
		Instrs:       sched.instrs,
		SpillCount:   sched.spillCount,
		ExternalUses: g.externalUses,
	}
	if memo != nil && pm != nil {
		memo.store(key, opts.LevelWindow, sol)
	}
	return sol, nil
}

// memoListSchedule is ListSchedule behind the intra-search memo. The
// list schedule is a deterministic function of the solution graph alone
// (it never consults the parallelism matrix or level window), so hits
// are reusable unconditionally.
func memoListSchedule(d *sndag.DAG, a *Assignment, opts Options, memo *coverMemo) (*Solution, error) {
	if memo == nil {
		return ListSchedule(d, a, opts)
	}
	g, err := buildGraph(d, a, opts)
	if err != nil {
		return nil, err
	}
	key := memoKey{algo: 'L', graph: graphFingerprint(g)}
	if sol, ok := memo.lookup(key, 0); ok {
		return rebindAssignment(sol, a), nil
	}
	sol, err := listScheduleGraph(d, a, g, opts)
	if err != nil {
		return nil, err
	}
	memo.store(key, 0, sol)
	return sol, nil
}

// Verify checks solution invariants: every instruction is a legal
// grouping, dependences are respected by the schedule, and per-bank
// register pressure never exceeds the bank size. It is used heavily in
// tests and by the simulator harness.
func (s *Solution) Verify() error {
	pos := make(map[*SNode]int)
	for i, instr := range s.Instrs {
		if !legalGroup(instr, s.Machine) {
			return fmt.Errorf("instr %d is not a legal grouping: %s", i, formatClique(instr))
		}
		units := make(map[string]bool)
		for _, n := range instr {
			if n.Kind == OpNode {
				if units[n.Unit] {
					return fmt.Errorf("instr %d uses unit %s twice", i, n.Unit)
				}
				units[n.Unit] = true
			}
			pos[n] = i
		}
	}
	// Dependences strictly ordered, separated by the producer's latency.
	for _, instr := range s.Instrs {
		for _, n := range instr {
			for _, p := range n.Preds {
				pp, ok := pos[p]
				if !ok {
					return fmt.Errorf("%s depends on unscheduled %s", n, p)
				}
				if pp+nodeLatency(s.Machine, p) > pos[n] {
					return fmt.Errorf("%s at %d issues before its operand %s (at %d, latency %d) completes",
						n, pos[n], p, pp, nodeLatency(s.Machine, p))
				}
			}
			for _, p := range n.OrdPreds {
				pp, ok := pos[p]
				if !ok {
					return fmt.Errorf("%s order-depends on unscheduled %s", n, p)
				}
				if pp >= pos[n] {
					return fmt.Errorf("%s at %d not after ordering pred %s at %d", n, pos[n], p, pp)
				}
			}
		}
	}
	// Register pressure per bank, replayed over the schedule.
	pending := make(map[*SNode]int)
	for _, instr := range s.Instrs {
		for _, n := range instr {
			if _, ok := n.DefLoc(); ok {
				cnt := s.ExternalUses[n]
				for _, u := range n.Succs {
					if _, scheduled := pos[u]; scheduled {
						cnt++
					}
				}
				pending[n] = cnt
			}
		}
	}
	live := make(map[string]int)
	for i, instr := range s.Instrs {
		for _, n := range instr {
			for _, p := range n.Preds {
				pending[p]--
				if pending[p] == 0 {
					if loc, ok := p.DefLoc(); ok && loc.Kind == isdl.LocUnit {
						live[loc.Name]--
					}
				}
			}
		}
		for _, n := range instr {
			if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit && pending[n] > 0 {
				live[loc.Name]++
				if size := s.Machine.BankSize(loc.Name); size > 0 && live[loc.Name] > size {
					return fmt.Errorf("instr %d overflows bank %s: %d live > %d regs",
						i, loc.Name, live[loc.Name], size)
				}
			}
		}
	}
	return nil
}
