package cover

// assignmentLowerBound returns an admissible lower bound on the cost (in
// VLIW instructions) of any covering the scheduler can produce from the
// given solution graph — including coverings obtained after spilling. It
// lets CoverDAG order assignments best-first and prune ones whose bound
// already exceeds the incumbent, without ever changing which solution
// wins: a pruned assignment provably cannot beat the incumbent even on
// cost ties, because pruning requires bound strictly above the incumbent
// cost.
//
// Spilling can only add work (store/reload chains and their order
// edges), with one exception: spillValue removes uncovered MoveNodes on
// the victim's chains and rewires their consumers through memory. Every
// component below is therefore computed so that it survives move
// removal:
//
//   - resource bounds count only OpNodes and the original Load/Store
//     transfers, never moves;
//   - the critical path caps each register-to-register move chain's
//     contribution at min(length, 2), because a rewired consumer still
//     waits for a spill store (>= 1 cycle after the producer's value is
//     ready) plus a reload (>= 1 cycle after the store) — at least two
//     cycles past the chain head no matter how much of the chain was
//     deleted.
func assignmentLowerBound(g *graph) int {
	ops, memops := 0, 0
	unitCnt := make(map[string]int)
	busCnt := make(map[string]int)
	for _, n := range g.nodes {
		switch n.Kind {
		case OpNode:
			ops++
			unitCnt[n.Unit]++
		case LoadNode, StoreNode:
			memops++
			busCnt[n.Step.Bus]++
		}
	}
	lb := 0
	if ops+memops > 0 {
		lb = 1
	}
	// One op per unit per instruction.
	for _, c := range unitCnt {
		if c > lb {
			lb = c
		}
	}
	// At most Width transfers per bus per instruction.
	for bus, c := range busCnt {
		w := 1
		if b := g.machine.Bus(bus); b != nil && b.Width > 0 {
			w = b.Width
		}
		if need := (c + w - 1) / w; need > lb {
			lb = need
		}
	}
	// Total issue slots: every op occupies a unit, every load/store a bus
	// slot, so an instruction holds at most units+sum(widths) of them.
	width := len(g.machine.Units)
	for _, b := range g.machine.Buses {
		width += b.Width
	}
	if width > 0 {
		if need := (ops + memops + width - 1) / width; need > lb {
			lb = need
		}
	}
	if cp := criticalPathBound(g); cp > lb {
		lb = cp
	}
	return lb
}

// criticalPathBound computes the dependence-height bound. Non-move
// nodes get an earliest issue cycle E; the path length is max(E)+1.
// Move chains are tracked as a pair of chain-head times so their
// contribution to a consumer saturates at two cycles (see
// assignmentLowerBound): s1 is the latest value-ready time among chain
// paths one move deep, s2 the latest among paths two or more deep.
func criticalPathBound(g *graph) int {
	inSet := make(map[*SNode]bool, len(g.nodes))
	for _, n := range g.nodes {
		inSet[n] = true
	}
	order := topoOrder(g.nodes, inSet)
	earliest := make([]int32, g.nextID)
	s1 := make([]int32, g.nextID)
	s2 := make([]int32, g.nextID)
	cp := 0
	for _, n := range order {
		if n.Kind == MoveNode {
			h1, h2 := int32(-1), int32(-1)
			for _, p := range n.Preds {
				if p.Kind == MoveNode {
					// One hop deeper: the pred's 1-deep paths become
					// 2-deep; its >=2-deep paths stay >=2-deep.
					if s1[p.ID] > h2 {
						h2 = s1[p.ID]
					}
					if s2[p.ID] > h2 {
						h2 = s2[p.ID]
					}
				} else {
					if t := earliest[p.ID] + int32(g.latencyOf(p)); t > h1 {
						h1 = t
					}
				}
			}
			s1[n.ID], s2[n.ID] = h1, h2
			continue
		}
		e := int32(0)
		for _, p := range n.Preds {
			var t int32
			if p.Kind == MoveNode {
				// A consumer k moves past the chain head issues at least
				// min(k, 2) cycles after the head value is ready, even if
				// spilling rewrites the chain.
				t = -1
				if s1[p.ID] >= 0 {
					t = s1[p.ID] + 1
				}
				if s2[p.ID] >= 0 && s2[p.ID]+2 > t {
					t = s2[p.ID] + 2
				}
			} else {
				t = earliest[p.ID] + int32(g.latencyOf(p))
			}
			if t > e {
				e = t
			}
		}
		for _, p := range n.OrdPreds {
			// Order edges never leave a MoveNode (spill machinery only
			// links stores/loads); guard anyway by contributing nothing.
			if p.Kind != MoveNode {
				if t := earliest[p.ID] + 1; t > e {
					e = t
				}
			}
		}
		earliest[n.ID] = e
		if int(e)+1 > cp {
			cp = int(e) + 1
		}
	}
	return cp
}
