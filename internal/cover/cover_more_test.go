package cover

import (
	"strings"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// wideBlock builds independent ADD trees that crowd registers.
func wideBlock(n int) *ir.Block {
	bb := ir.NewBuilder("wide")
	for i := 0; i < n; i++ {
		a := bb.Load(varName("a", i))
		b := bb.Load(varName("b", i))
		bb.Store(varName("o", i), bb.Add(a, b))
	}
	bb.Return()
	return bb.Finish()
}

func varName(p string, i int) string {
	return p + string(rune('0'+i))
}

func TestSpillAwareAssignmentSpreadsWork(t *testing.T) {
	// With spill-aware costing on a small-register machine, the search
	// must avoid piling every op onto one unit.
	blk := wideBlock(6)
	m := isdl.ExampleArch(2)
	d, err := sndag.Build(blk, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SpillAwareAssignment = true
	opts.BeamWidth = 1
	assigns := exploreAssignments(d, opts)
	if len(assigns) == 0 {
		t.Fatal("no assignments")
	}
	perUnit := map[string]int{}
	for _, alt := range assigns[0].Choice {
		perUnit[alt.Unit.Name]++
	}
	for u, n := range perUnit {
		if n > 4 {
			t.Errorf("spill-aware assignment put %d ops on %s (2 registers)", n, u)
		}
	}
}

func TestListScheduleValid(t *testing.T) {
	blk := wideBlock(4)
	for _, regs := range []int{2, 4} {
		m := isdl.ExampleArch(regs)
		d, err := sndag.Build(blk, m)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		assigns := exploreAssignments(d, opts)
		sol, err := ListSchedule(d, assigns[0], opts)
		if err != nil {
			t.Fatalf("regs=%d: %v", regs, err)
		}
		if err := sol.Verify(); err != nil {
			t.Fatalf("regs=%d: %v\n%s", regs, err, sol)
		}
	}
}

func TestSerialFallbackDirect(t *testing.T) {
	// The serial fallback must produce valid code for any assignment.
	bb := ir.NewBuilder("serial")
	a := bb.Load("a")
	b := bb.Load("b")
	s1 := bb.Add(a, b)
	s2 := bb.Mul(s1, a)
	bb.Store("o", bb.Sub(s2, b))
	bb.Store("p", bb.Const(7))
	bb.Store("q", bb.Load("z"))
	cond := bb.Op(ir.OpCmpGT, s2, bb.Const(0))
	bb.Branch(cond, "t", "f")
	blk := bb.Finish()

	m := isdl.ExampleArchFull(2)
	d, err := sndag.Build(blk, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	assigns := exploreAssignments(d, opts)
	sol, err := serialFallback(d, assigns[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(); err != nil {
		t.Fatalf("serial fallback invalid: %v\n%s", err, sol)
	}
	// One node per instruction.
	for i, instr := range sol.Instrs {
		if len(instr) != 1 {
			t.Errorf("serial instruction %d has %d nodes", i, len(instr))
		}
	}
	if sol.CondHolder() == nil {
		t.Error("serial fallback lost the branch condition")
	}
}

func TestSerialFallbackSnapshotsClobberedVars(t *testing.T) {
	// acc is loaded and stored: the serial fallback must snapshot the
	// initial value so the second use does not read the updated memory.
	bb := ir.NewBuilder("snap")
	acc := bb.Load("acc")
	bb.Store("acc", bb.Add(acc, bb.Const(1)))
	bb.Store("twice", bb.Add(acc, acc))
	bb.Return()
	blk := bb.Finish()

	m := isdl.SingleIssueDSP(2)
	d, err := sndag.Build(blk, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	assigns := exploreAssignments(d, opts)
	sol, err := serialFallback(d, assigns[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(); err != nil {
		t.Fatal(err)
	}
	snap := false
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			if n.Kind == StoreNode && strings.HasPrefix(n.Var, "$t") {
				snap = true
			}
		}
	}
	if !snap {
		t.Error("no snapshot temp emitted for clobbered variable")
	}
}

func TestSolutionCloneIsDeep(t *testing.T) {
	res, err := CoverBlock(fig2Block(), isdl.ExampleArch(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Best
	c := orig.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Mutating the clone's structure must not affect the original.
	c.Instrs = c.Instrs[:len(c.Instrs)-1]
	for _, instr := range c.Instrs {
		for _, n := range instr {
			n.Preds = nil
			n.Succs = nil
		}
	}
	if err := orig.Verify(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
	if orig.Cost() == c.Cost() {
		t.Error("clone truncation did not change clone cost")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	mk := func() *Solution {
		res, err := CoverBlock(fig2Block(), isdl.ExampleArch(4), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Best.Clone()
	}

	// 1. Reversed dependence order.
	s := mk()
	s.Instrs[0], s.Instrs[len(s.Instrs)-1] = s.Instrs[len(s.Instrs)-1], s.Instrs[0]
	if err := s.Verify(); err == nil {
		t.Error("Verify accepted reversed schedule")
	}

	// 2. Two ops on one unit in one instruction.
	s = mk()
	var ops []*SNode
	for _, instr := range s.Instrs {
		for _, n := range instr {
			if n.Kind == OpNode {
				ops = append(ops, n)
			}
		}
	}
	if len(ops) >= 2 {
		// Force both into the first op's instruction and same unit.
		ops[1].Unit = ops[0].Unit
		merged := false
		for i, instr := range s.Instrs {
			for j, n := range instr {
				if n == ops[1] {
					s.Instrs[i] = append(instr[:j], instr[j+1:]...)
					merged = true
					break
				}
			}
			if merged {
				break
			}
		}
		for i, instr := range s.Instrs {
			for _, n := range instr {
				if n == ops[0] {
					s.Instrs[i] = append(instr, ops[1])
				}
			}
		}
		if err := s.Verify(); err == nil {
			t.Error("Verify accepted double-issue on one unit")
		}
	}

	// 3. Missing node (dangling dependence).
	s = mk()
	s.Instrs = s.Instrs[1:]
	if err := s.Verify(); err == nil {
		t.Error("Verify accepted schedule with missing producer")
	}
}

func TestBusWidthRespected(t *testing.T) {
	// Two transfers per instruction allowed on a 2-wide bus, never three.
	m := isdl.ExampleArch(4).Clone("Wide2")
	m.Buses[0].Width = 2
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	blk := wideBlock(5)
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	sawTwo := false
	for _, instr := range res.Best.Instrs {
		transfers := 0
		for _, n := range instr {
			if n.IsTransfer() {
				transfers++
			}
		}
		if transfers > 2 {
			t.Errorf("instruction carries %d transfers on 2-wide bus", transfers)
		}
		if transfers == 2 {
			sawTwo = true
		}
	}
	if !sawTwo {
		t.Error("2-wide bus never used for two transfers (suspicious)")
	}
	// The wide bus must beat the narrow bus on this load-heavy block.
	narrow, err := CoverBlock(blk, isdl.ExampleArch(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost() >= narrow.Best.Cost() {
		t.Errorf("2-wide bus cost %d !< 1-wide cost %d", res.Best.Cost(), narrow.Best.Cost())
	}
}

func TestMultiHopTransferCovering(t *testing.T) {
	// A chain machine where U1 results must hop through U2 to reach U3.
	m := isdl.NewMachine("Chain3")
	m.AddUnit("U1", 4, ir.OpAdd)
	m.AddUnit("U2", 4, ir.OpSub)
	m.AddUnit("U3", 4, ir.OpMul)
	m.AddMemory("DM")
	m.AddBus("B1", 1)
	m.AddBus("B2", 1)
	m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc("U1"), "B1")
	m.AddTransfer(isdl.UnitLoc("U1"), isdl.UnitLoc("U2"), "B1")
	m.AddTransfer(isdl.UnitLoc("U2"), isdl.UnitLoc("U3"), "B2")
	m.AddTransfer(isdl.UnitLoc("U3"), isdl.MemLoc("DM"), "B2")
	m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc("U2"), "B1")
	m.AddTransfer(isdl.MemLoc("DM"), isdl.UnitLoc("U3"), "B2")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	bb := ir.NewBuilder("hop")
	sum := bb.Add(bb.Load("a"), bb.Load("b")) // U1 only
	prod := bb.Mul(sum, bb.Load("c"))         // U3 only: needs U1->U2->U3
	bb.Store("o", prod)
	bb.Return()
	res, err := CoverBlock(bb.Finish(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	// The solution must contain a U1->U2 and a U2->U3 move for the sum.
	saw12, saw23 := false, false
	for _, n := range res.Best.Nodes() {
		if n.Kind == MoveNode {
			if n.Step.From == isdl.UnitLoc("U1") && n.Step.To == isdl.UnitLoc("U2") {
				saw12 = true
			}
			if n.Step.From == isdl.UnitLoc("U2") && n.Step.To == isdl.UnitLoc("U3") {
				saw23 = true
			}
		}
	}
	if !saw12 || !saw23 {
		t.Errorf("multi-hop chain missing: U1->U2 %v, U2->U3 %v\n%s", saw12, saw23, res.Best)
	}
}

func TestConstraintSplitsCliques(t *testing.T) {
	// Two MULs that would co-issue are separated by the WideDSP
	// constraint !(M1.MUL & M2.MUL).
	m := isdl.WideDSP(8)
	bb := ir.NewBuilder("c")
	p1 := bb.Mul(bb.Load("a"), bb.Load("b"))
	p2 := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("x", p1)
	bb.Store("y", p2)
	bb.Return()
	res, err := CoverBlock(bb.Finish(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, instr := range res.Best.Instrs {
		muls := map[string]bool{}
		for _, n := range instr {
			if n.Kind == OpNode && n.Op == ir.OpMul {
				muls[n.Unit] = true
			}
		}
		if muls["M1"] && muls["M2"] {
			t.Errorf("instr %d co-issues M1.MUL and M2.MUL despite constraint", i)
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	bb := ir.NewBuilder("empty")
	bb.Return()
	res, err := CoverBlock(bb.Finish(), isdl.ExampleArch(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost() != 0 {
		t.Errorf("empty block costs %d instructions", res.Best.Cost())
	}
}

func TestBranchOnConstant(t *testing.T) {
	bb := ir.NewBuilder("bc")
	bb.Store("x", bb.Add(bb.Load("a"), bb.Load("b")))
	bb.Branch(bb.Const(1), "t", "f")
	res, err := CoverBlock(bb.Finish(), isdl.ExampleArch(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Best.CondHolder() != nil {
		t.Error("constant condition should not pin a register")
	}
}

func TestVarPlacementDualMemory(t *testing.T) {
	// A 4-tap FIR with x[] in XM and c[] in YM must beat the all-in-XM
	// placement: the two operand loads of each tap share an instruction.
	bb := ir.NewBuilder("fir4")
	var acc *ir.Node
	for i := 0; i < 4; i++ {
		term := bb.Mul(bb.Load(varName("x", i)), bb.Load(varName("c", i)))
		if acc == nil {
			acc = term
		} else {
			acc = bb.Add(acc, term)
		}
	}
	bb.Store("y", acc)
	bb.Return()
	blk := bb.Finish()

	m := isdl.DualMemDSP(4)
	split := DefaultOptions()
	split.VarPlacement = map[string]string{}
	for i := 0; i < 4; i++ {
		split.VarPlacement[varName("x", i)] = "XM"
		split.VarPlacement[varName("c", i)] = "YM"
	}
	resSplit, err := CoverBlock(blk, m, split)
	if err != nil {
		t.Fatal(err)
	}
	if err := resSplit.Best.Verify(); err != nil {
		t.Fatal(err)
	}

	resOne, err := CoverBlock(blk, m, DefaultOptions()) // everything in XM
	if err != nil {
		t.Fatal(err)
	}
	if resSplit.Best.Cost() >= resOne.Best.Cost() {
		t.Errorf("X/Y split cost %d !< single-bank cost %d\nsplit:\n%s\nsingle:\n%s",
			resSplit.Best.Cost(), resOne.Best.Cost(), resSplit.Best, resOne.Best)
	}
	// At least one instruction carries a BX and a BY load together.
	dual := false
	for _, instr := range resSplit.Best.Instrs {
		buses := map[string]bool{}
		for _, n := range instr {
			if n.Kind == LoadNode {
				buses[n.Step.Bus] = true
			}
		}
		if buses["BX"] && buses["BY"] {
			dual = true
		}
	}
	if !dual {
		t.Errorf("no instruction pairs an XM load with a YM load\n%s", resSplit.Best)
	}
}

func TestVarPlacementUnknownMemory(t *testing.T) {
	bb := ir.NewBuilder("b")
	bb.Store("o", bb.Add(bb.Load("a"), bb.Load("b")))
	bb.Return()
	opts := DefaultOptions()
	opts.VarPlacement = map[string]string{"a": "NOPE"}
	if _, err := CoverBlock(bb.Finish(), isdl.ExampleArch(4), opts); err == nil {
		t.Error("placement in unknown memory accepted")
	}
}

func TestVarPlacementStores(t *testing.T) {
	// Stores honor placement too: y placed in YM must leave on BY.
	bb := ir.NewBuilder("st")
	bb.Store("y", bb.Add(bb.Load("a"), bb.Load("b")))
	bb.Return()
	m := isdl.DualMemDSP(4)
	opts := DefaultOptions()
	opts.VarPlacement = map[string]string{"y": "YM", "a": "XM", "b": "XM"}
	res, err := CoverBlock(bb.Finish(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Best.Nodes() {
		if n.Kind == StoreNode && n.Var == "y" {
			if n.Step.Bus != "BY" || n.Step.To != isdl.MemLoc("YM") {
				t.Errorf("store of y uses %v via %s, want YM via BY", n.Step.To, n.Step.Bus)
			}
			found = true
		}
	}
	if !found {
		t.Error("no store of y found")
	}
}

func TestClusteredSharedBankNoTransfer(t *testing.T) {
	// A0 and M0 share bank C0: (a+b)*c with ADD on A0 and MUL on M0 must
	// need NO register-to-register move.
	m := isdl.ClusteredVLIW(4)
	bb := ir.NewBuilder("cl")
	bb.Store("o", bb.Mul(bb.Add(bb.Load("a"), bb.Load("b")), bb.Load("c")))
	bb.Return()
	blk := bb.Finish()
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, res.Best)
	}
	units := map[string]bool{}
	for _, n := range res.Best.Nodes() {
		if n.Kind == MoveNode {
			t.Errorf("unexpected inter-bank move %s (values should share C0)\n%s", n, res.Best)
		}
		if n.Kind == OpNode {
			units[n.Unit] = true
		}
	}
	// Both ops should have been placed in one cluster (the covering
	// exploits the shared bank); either cluster is fine.
	if units["A0"] && units["M1"] || units["A1"] && units["M0"] {
		t.Errorf("ops split across clusters: %v\n%s", units, res.Best)
	}
}

func TestClusteredCrossBankMove(t *testing.T) {
	// Force cross-cluster flow: COMPL exists only on A1 (cluster 1), MUL
	// only on M0/M1. A COMPL feeding a MUL placed on M0 needs an XB move;
	// on M1 it does not. The covering should prefer M1.
	m := isdl.ClusteredVLIW(4)
	bb := ir.NewBuilder("x")
	c := bb.Op(ir.OpCompl, bb.Load("a"))
	bb.Store("o", bb.Mul(c, bb.Load("b")))
	bb.Return()
	res, err := CoverBlock(bb.Finish(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Best.Nodes() {
		if n.Kind == OpNode && n.Op == ir.OpMul && n.Unit != "M1" {
			t.Errorf("MUL placed on %s; M1 shares the COMPL's bank\n%s", n.Unit, res.Best)
		}
		if n.Kind == MoveNode && n.Step.Bus == "XB" {
			t.Errorf("unnecessary inter-cluster move\n%s", res.Best)
		}
	}
}

func TestClusteredPressureIsPerBank(t *testing.T) {
	// Two units sharing a 2-register bank must respect the SHARED limit:
	// pressure from both units counts against one bank.
	m := isdl.ClusteredVLIW(2)
	bb := ir.NewBuilder("p")
	a := bb.Load("a")
	b := bb.Load("b")
	c := bb.Load("c")
	d := bb.Load("d")
	s1 := bb.Add(a, b)
	p1 := bb.Mul(c, d)
	bb.Store("o", bb.Sub(s1, p1))
	bb.Return()
	res, err := CoverBlock(bb.Finish(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("shared-bank pressure violated: %v\n%s", err, res.Best)
	}
}
