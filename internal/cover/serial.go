package cover

import (
	"fmt"
	"sort"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// serialFallback generates guaranteed-schedulable code for one assignment
// when the clique coverer cannot satisfy the register files: every value
// lives in data memory, operands are reloaded immediately before each
// operation, and every result is stored back at once. One solution-graph
// node issues per instruction, so at most an operation's own operands are
// ever live in a bank — which the assignment filter already guarantees to
// fit. Code size is poor; the covering only falls back here when the
// machine is too register-starved for anything better.
func serialFallback(d *sndag.DAG, a *Assignment, opts Options) (*Solution, error) {
	g := &graph{
		machine:      d.Machine,
		block:        d.Block,
		assign:       a,
		dm:           isdl.MemLoc(d.Machine.DataMemory().Name),
		prod:         make(map[valKey]*SNode),
		busLoad:      make(map[string]int),
		opts:         opts,
		externalUses: make(map[*SNode]int),
	}
	var seq []*SNode
	emit := func(n *SNode) *SNode {
		if len(seq) > 0 {
			addOrderEdge(seq[len(seq)-1], n) // strict serial order
		}
		seq = append(seq, n)
		return n
	}
	tmp := 0
	slotOf := make(map[*ir.Node]string)
	// slotLoc tracks which memory each slot lives in: program variables
	// honor VarPlacement, compiler temps use the first data memory.
	slotLoc := make(map[*ir.Node]isdl.Loc)

	// Vars that are both loaded and stored get their initial value
	// snapshotted to a temp slot so later reloads see the original.
	loaded := make(map[string]*ir.Node)
	stored := make(map[string]bool)
	for _, n := range d.Block.Nodes {
		switch n.Op {
		case ir.OpLoad:
			loaded[n.Var] = n
		case ir.OpStore:
			stored[n.Var] = true
		}
	}
	passUnit, err := g.cheapestUnitFor(g.dm)
	if err != nil {
		return nil, err
	}
	// reload returns a fresh load of o's memory copy into unit.
	reload := func(o *ir.Node, unit string) (*SNode, error) {
		slot, ok := slotOf[o]
		if !ok {
			return nil, fmt.Errorf("cover: serial: value n%d has no memory slot", o.ID)
		}
		from, ok := slotLoc[o]
		if !ok {
			from = g.dm
		}
		paths := g.machine.TransferPaths(from, g.bankLoc(unit))
		if len(paths) == 0 {
			return nil, fmt.Errorf("cover: serial: no path DM -> %s", unit)
		}
		var cur *SNode
		for i, step := range paths[0] {
			t := g.newNode(MoveNode)
			switch {
			case i == 0:
				t.Kind = LoadNode
				t.Var = slot
			case step.From.Kind == isdl.LocMem:
				// Hop out of an intermediate memory: reload the temp the
				// previous hop parked there.
				t.Kind = LoadNode
				t.Var = cur.Var
			case step.To.Kind == isdl.LocMem:
				t.Kind = StoreNode
				t.Var = g.moveSlot()
			}
			t.Value = o
			t.Step = step
			if cur != nil {
				addEdge(cur, t)
			}
			emit(t)
			cur = t
		}
		return cur, nil
	}
	// saveTo stores the register value held by src to the named location.
	saveTo := func(src *SNode, unit, name string) error {
		paths := g.machine.TransferPaths(g.bankLoc(unit), g.dm)
		if len(paths) == 0 {
			return fmt.Errorf("cover: serial: no path %s -> DM", unit)
		}
		cur := src
		for i, step := range paths[0] {
			var t *SNode
			switch {
			case i == len(paths[0])-1:
				t = g.newNode(StoreNode)
				t.Var = name
			case step.To.Kind == isdl.LocMem:
				t = g.newNode(StoreNode)
				t.Var = g.moveSlot()
			case step.From.Kind == isdl.LocMem:
				t = g.newNode(LoadNode)
				t.Var = cur.Var
			default:
				t = g.newNode(MoveNode)
			}
			t.Value = src.Value
			t.Step = step
			addEdge(cur, t)
			emit(t)
			cur = t
		}
		return nil
	}

	// Iterate in sorted-variable order: temp slot numbering and the
	// emitted snapshot sequence must not depend on map iteration.
	loadVars := make([]string, 0, len(loaded))
	for v := range loaded {
		loadVars = append(loadVars, v)
	}
	sort.Strings(loadVars)
	for _, v := range loadVars {
		ld := loaded[v]
		home, err := g.memOf(v)
		if err != nil {
			return nil, err
		}
		if !stored[v] {
			slotOf[ld] = v
			slotLoc[ld] = home
			continue
		}
		// Snapshot the initial value through a pass-through unit.
		slot := fmt.Sprintf("$t%d", tmp)
		tmp++
		slotOf[ld] = v // temporarily; reload below reads the live var
		slotLoc[ld] = home
		r, err := reload(ld, passUnit)
		if err != nil {
			return nil, err
		}
		if err := saveTo(r, passUnit, slot); err != nil {
			return nil, err
		}
		slotOf[ld] = slot
		slotLoc[ld] = g.dm
	}

	for _, n := range d.Block.Nodes {
		switch {
		case n.Op.IsComputation():
			if _, absorbed := a.AbsorbedBy[n]; absorbed {
				continue
			}
			alt := a.Choice[n]
			if alt == nil {
				return nil, fmt.Errorf("cover: serial: node %s unassigned", n)
			}
			unit := alt.Unit.Name
			op := g.newNode(OpNode)
			op.Value = n
			op.Unit = unit
			op.Bank = g.machine.BankOf(unit)
			op.Op = alt.Op
			op.Alt = alt
			delivered := make(map[*ir.Node]*SNode)
			for _, operand := range alt.Operands {
				if operand.Op == ir.OpConst {
					continue
				}
				if p, ok := delivered[operand]; ok {
					_ = p // duplicated operand shares the register
					continue
				}
				r, err := reload(operand, unit)
				if err != nil {
					return nil, err
				}
				// The emit-time producer lookup in asm finds operands
				// via Preds by (value, bank); record the landing.
				g.prod[valKey{operand, g.bankLoc(unit)}] = r
				delivered[operand] = r
				addEdge(r, op)
			}
			emit(op)
			slot := fmt.Sprintf("$t%d", tmp)
			tmp++
			slotOf[n] = slot
			if err := saveTo(op, unit, slot); err != nil {
				return nil, err
			}
		case n.Op == ir.OpStore:
			arg := n.Args[0]
			if arg.Op == ir.OpConst {
				c := g.newNode(OpNode)
				c.Value = arg
				c.Unit = passUnit
				c.Bank = g.machine.BankOf(passUnit)
				c.Op = ir.OpConst
				emit(c)
				if err := saveTo(c, passUnit, n.Var); err != nil {
					return nil, err
				}
				continue
			}
			r, err := reload(arg, passUnit)
			if err != nil {
				return nil, err
			}
			if err := saveTo(r, passUnit, n.Var); err != nil {
				return nil, err
			}
			// A store clobbers the variable; later reloads of a load
			// of the same var must use the snapshot, which they already
			// do (slotOf points at the snapshot).
		}
	}

	// Branch condition: reload it last and pin the register.
	if d.Block.Term == ir.TermBranch && d.Block.Cond != nil && d.Block.Cond.Op != ir.OpConst {
		r, err := reload(d.Block.Cond, passUnit)
		if err != nil {
			return nil, err
		}
		g.externalUses[r]++
	}

	sol := &Solution{
		Block:        d.Block,
		Machine:      d.Machine,
		Assignment:   a,
		SpillCount:   tmp,
		ExternalUses: g.externalUses,
	}
	// One node per instruction, with NOP padding wherever a producer's
	// latency has not elapsed (the machine has no interlocks).
	pos := make(map[*SNode]int, len(seq))
	cycle := 0
	for _, n := range seq {
		at := cycle
		for _, p := range n.Preds {
			if t := pos[p] + g.latencyOf(p); t > at {
				at = t
			}
		}
		for _, p := range n.OrdPreds {
			if t := pos[p] + 1; t > at {
				at = t
			}
		}
		for cycle < at {
			sol.Instrs = append(sol.Instrs, nil)
			cycle++
		}
		sol.Instrs = append(sol.Instrs, []*SNode{n})
		pos[n] = cycle
		cycle++
	}
	return sol, nil
}
