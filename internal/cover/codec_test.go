package cover

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// memStore is a map-backed EntryStore for tests.
type memStore struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[[sha256.Size]byte][]byte)} }

func (s *memStore) Get(key [sha256.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[key]
	return data, ok
}

func (s *memStore) Put(key [sha256.Size]byte, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = data
}

// solutionSignature renders every field of a solution the downstream
// passes (peephole, regalloc, asm, verify) can observe, in schedule
// order, so two signatures match iff the solutions compile to identical
// output.
func solutionSignature(sol *Solution) string {
	idx := make(map[*SNode]int)
	for _, instr := range sol.Instrs {
		for _, n := range instr {
			idx[n] = len(idx)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "block=%s machine=%s spills=%d\n", sol.Block.Name, sol.Machine.Name, sol.SpillCount)
	edge := func(name string, list []*SNode) {
		fmt.Fprintf(&sb, " %s=[", name)
		for _, m := range list {
			if j, ok := idx[m]; ok {
				fmt.Fprintf(&sb, "%d ", j)
			}
		}
		sb.WriteString("]")
	}
	for i, instr := range sol.Instrs {
		fmt.Fprintf(&sb, "I%d:\n", i)
		for _, n := range instr {
			fmt.Fprintf(&sb, " id=%d kind=%s unit=%s bank=%s op=%s var=%s step=%s->%s/%s",
				n.ID, n.Kind, n.Unit, n.Bank, n.Op, n.Var, n.Step.From, n.Step.To, n.Step.Bus)
			if n.Value != nil {
				fmt.Fprintf(&sb, " val=n%d", n.Value.ID)
			}
			if n.Alt != nil {
				fmt.Fprintf(&sb, " alt=%s/cov%d/opnd%d", n.Alt, len(n.Alt.Covers), len(n.Alt.Operands))
			}
			edge("p", n.Preds)
			edge("s", n.Succs)
			edge("op", n.OrdPreds)
			edge("os", n.OrdSuccs)
			sb.WriteString("\n")
		}
	}
	ext := make([]string, 0, len(sol.ExternalUses))
	for n, cnt := range sol.ExternalUses {
		ext = append(ext, fmt.Sprintf("%d=%d", idx[n], cnt))
	}
	sort.Strings(ext)
	fmt.Fprintf(&sb, "ext=%v\n", ext)
	return sb.String()
}

// codecCases pairs block builders (fresh IR per call, so pointer
// identity never leaks between encode and decode sides) with machines.
func codecCases() []struct {
	name  string
	block func() *ir.Block
	mach  *isdl.Machine
} {
	spillBlock := func() *ir.Block {
		bb := ir.NewBuilder("press")
		a := bb.Load("a")
		b := bb.Load("b")
		c := bb.Load("c")
		d := bb.Load("d")
		s3 := bb.Mul(bb.Add(a, b), bb.Sub(c, d))
		bb.Store("o", bb.Add(s3, a))
		bb.Return()
		return bb.Finish()
	}
	branchBlock := func() *ir.Block {
		bb := ir.NewBuilder("cond")
		x := bb.Load("x")
		cmp := bb.Sub(x, bb.Load("y"))
		bb.Store("d", cmp)
		bb.Branch(cmp, "t", "f")
		return bb.Finish()
	}
	macBlock := func() *ir.Block {
		bb := ir.NewBuilder("mac")
		acc := bb.Load("acc")
		acc1 := bb.Add(acc, bb.Mul(bb.Load("x0"), bb.Load("c0")))
		bb.Store("acc", acc1)
		bb.Store("acc", bb.Add(acc1, bb.Mul(bb.Load("x1"), bb.Load("c1"))))
		bb.Return()
		return bb.Finish()
	}
	return []struct {
		name  string
		block func() *ir.Block
		mach  *isdl.Machine
	}{
		{"fig2", fig2Block, isdl.ExampleArch(4)},
		{"spills", spillBlock, isdl.ExampleArch(2)},
		{"branch", branchBlock, isdl.ExampleArch(4)},
		{"mac-complex-alt", macBlock, isdl.WideDSP(4)},
		{"clustered", branchBlock, isdl.ClusteredVLIW(4)},
	}
}

// TestCodecRoundTrip proves a covering survives encode -> decode against
// a freshly built DAG for a structurally identical (but pointer-distinct)
// block, field for field.
func TestCodecRoundTrip(t *testing.T) {
	for _, tc := range codecCases() {
		t.Run(tc.name, func(t *testing.T) {
			res := mustCover(t, tc.block(), tc.mach, DefaultOptions())
			if data, ok := encodeResult(res); !ok || len(data) == 0 {
				t.Fatal("encodeResult declined a fresh covering")
			}
			store := newMemStore()
			opts := DefaultOptions()
			opts.Store = store
			// First compile populates the store.
			first := mustCover(t, tc.block(), tc.mach, opts)
			if first.DiskHit {
				t.Fatal("first compile reported a disk hit on an empty store")
			}
			if len(store.m) != 1 {
				t.Fatalf("store holds %d entries after first compile, want 1", len(store.m))
			}
			// Second compile of a fresh identical block must be served
			// from the store with an identical solution.
			second := mustCover(t, tc.block(), tc.mach, opts)
			if !second.DiskHit || !second.CacheHit {
				t.Fatalf("second compile: DiskHit=%v CacheHit=%v, want true/true", second.DiskHit, second.CacheHit)
			}
			if got, want := solutionSignature(second.Best), solutionSignature(res.Best); got != want {
				t.Errorf("decoded solution differs from fresh covering\n--- decoded ---\n%s--- fresh ---\n%s", got, want)
			}
			if second.AssignmentsExplored != res.AssignmentsExplored ||
				second.PrunedAssignments != res.PrunedAssignments ||
				second.MemoHits != res.MemoHits {
				t.Errorf("counters not preserved: got (%d,%d,%d), want (%d,%d,%d)",
					second.AssignmentsExplored, second.PrunedAssignments, second.MemoHits,
					res.AssignmentsExplored, res.PrunedAssignments, res.MemoHits)
			}
		})
	}
}

// TestCodecCorruptionDegradesToMiss feeds the decoder truncations and
// bit flips of a valid entry. Every outcome must be either a clean
// decode error or a solution that still passes Verify — never a panic,
// never an invalid schedule.
func TestCodecCorruptionDegradesToMiss(t *testing.T) {
	res := mustCover(t, fig2Block(), isdl.ExampleArch(4), DefaultOptions())
	data, ok := encodeResult(res)
	if !ok {
		t.Fatal("encodeResult declined")
	}
	freshDAG := func() *Result {
		r := mustCover(t, fig2Block(), isdl.ExampleArch(4), DefaultOptions())
		return r
	}
	dag := freshDAG().DAG

	for cut := 0; cut < len(data); cut++ {
		if _, err := decodeResult(data[:cut], dag); err == nil {
			t.Fatalf("decode of %d-byte truncation succeeded", cut)
		}
	}
	for i := range data {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), data...)
			mut[i] ^= flip
			got, err := decodeResult(mut, dag)
			if err != nil {
				continue
			}
			if got.Best == nil {
				t.Fatalf("flip at byte %d: nil solution without error", i)
			}
			if verr := got.Best.Verify(); verr != nil {
				t.Fatalf("flip at byte %d decoded an invalid solution: %v", i, verr)
			}
		}
	}

	// Version skew must be rejected outright.
	mut := append([]byte(nil), data...)
	mut[0] = codecVersion + 1
	if _, err := decodeResult(mut, dag); err == nil {
		t.Fatal("decode accepted a future codec version")
	}

	// A store full of garbage must fall back to a fresh, correct compile.
	store := newMemStore()
	opts := DefaultOptions()
	opts.Store = store
	key := computeKey(fig2Block(), isdl.ExampleArch(4), opts).storeKey()
	store.Put(key, []byte("not a covering"))
	got := mustCover(t, fig2Block(), isdl.ExampleArch(4), opts)
	if got.DiskHit {
		t.Fatal("garbage entry reported as disk hit")
	}
	if sig, want := solutionSignature(got.Best), solutionSignature(res.Best); sig != want {
		t.Error("fallback compile after garbage entry differs from fresh covering")
	}
}

// TestEncodeDecline checks the encoder refuses unrepresentable results
// instead of guessing.
func TestEncodeDecline(t *testing.T) {
	if _, ok := encodeResult(nil); ok {
		t.Error("encoded nil result")
	}
	if _, ok := encodeResult(&Result{}); ok {
		t.Error("encoded result without solution")
	}
	res := mustCover(t, fig2Block(), isdl.ExampleArch(4), DefaultOptions())
	noDAG := *res
	noDAG.DAG = nil
	if _, ok := encodeResult(&noDAG); ok {
		t.Error("encoded result without DAG")
	}
}

// TestBoundedCacheEviction exercises the LRU entry cap.
func TestBoundedCacheEviction(t *testing.T) {
	mkBlock := func(v string) *ir.Block {
		bb := ir.NewBuilder("b" + v)
		bb.Store("o"+v, bb.Add(bb.Load("a"+v), bb.Load("b"+v)))
		bb.Return()
		return bb.Finish()
	}
	m := isdl.ExampleArch(4)
	cache := NewBoundedCache(2)
	opts := DefaultOptions()
	opts.Cache = cache

	mustCover(t, mkBlock("1"), m, opts)
	mustCover(t, mkBlock("2"), m, opts)
	// Refresh block 1 so block 2 is the LRU victim.
	if r := mustCover(t, mkBlock("1"), m, opts); !r.CacheHit {
		t.Fatal("expected cache hit for block 1")
	}
	mustCover(t, mkBlock("3"), m, opts)

	st := cache.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if r := mustCover(t, mkBlock("1"), m, opts); !r.CacheHit {
		t.Error("block 1 should have survived eviction (recently used)")
	}
	if r := mustCover(t, mkBlock("2"), m, opts); r.CacheHit {
		t.Error("block 2 should have been evicted")
	}
	if st := cache.Stats(); st.Entries != 2 {
		t.Errorf("entries after re-insert = %d, want 2", st.Entries)
	}
	if st := cache.Stats(); st.Bytes <= 0 {
		t.Errorf("bytes accounting went nonpositive: %d", st.Bytes)
	}

	// Unbounded cache never evicts.
	unb := NewCache()
	opts.Cache = unb
	for i := 0; i < 8; i++ {
		mustCover(t, mkBlock(fmt.Sprint(i)), m, opts)
	}
	if st := unb.Stats(); st.Evictions != 0 || st.Entries != 8 {
		t.Errorf("unbounded cache: entries=%d evictions=%d, want 8/0", st.Entries, st.Evictions)
	}
}
