package cover

import (
	"fmt"
	"sort"

	"aviv/internal/isdl"
)

// DisablePooling turns off the scheduler's scratch-buffer and in-place
// reuse so every internal computation allocates fresh memory. Emitted
// programs are byte-identical either way — the corpus property tests
// compile under both settings — the switch exists purely to expose
// buffer-reuse bugs.
var DisablePooling = false

// pendingAbsent marks a pending slot that holds no count: the node does
// not define a value, or it was removed. It is negative enough that the
// (rare) blind decrements of the schedule loop can never raise a slot
// back to zero.
const pendingAbsent = int32(-1 << 30)

// bankOver names a register bank exceeding its size, and by how much.
type bankOver struct {
	bank string
	by   int
}

// scheduler runs the greedy minimum-cost clique covering of Sec. IV-D:
// repeatedly pick the maximal grouping that covers the most ready nodes
// within the register-bank bounds, breaking ties with a lookahead
// estimate, and fall back to spilling a live value when register
// pressure blocks all progress.
//
// Per-node state is held in dense slices indexed by SNode.ID (the graph
// assigns IDs contiguously; grow extends the slices after spills add
// nodes), and per-bank state in slices indexed by an interned bank
// number — the covering inner loops run over these instead of maps.
type scheduler struct {
	g    *graph
	opts Options

	// pending counts, per value-defining node, the unscheduled consumers
	// of its value plus external (past-block) uses. When it reaches zero
	// the register holding the value is freed. Slots of non-defining or
	// removed nodes hold pendingAbsent.
	pending []int32

	covered []bool
	removed []bool
	// pos records the instruction index each covered node issued at, for
	// latency separation on machines with multi-cycle operations.
	pos []int32

	// Interned register banks: live counts occupied registers per bank.
	bankIdx   map[string]int
	bankNames []string
	bankSizes []int
	live      []int

	instrs     [][]*SNode
	spillCount int

	// initialCliques, when non-nil, is the first grouping inventory; the
	// caller computed it from a parallelism matrix it also needed for
	// memoization. Rebuilds after spills always go through buildCliques.
	initialCliques [][]*SNode

	// goal, when set, is the pressure-blocked node the last spill freed a
	// register for; until it is covered, no other node may define a value
	// into goalBank. Without the reservation the freed register is
	// snapped up (typically by the reload of the value just spilled) and
	// the scheduler ping-pongs.
	goal     *SNode
	goalBank string

	// Scratch state, reused across calls (see DisablePooling). The
	// epoch-stamped arrays make "clear" an integer increment; mark/decCnt
	// are per node, bankMark/bankDelta per interned bank.
	epoch      int32
	mark       []int32
	decCnt     []int32
	decNodes   []*SNode
	bankMark   []int32
	bankDelta  []int
	bankTouch  []int
	overBuf    []bankOver
	rcBufs     [2][]*SNode
	rcWhich    int
	uncBuf     []*SNode
	stackBuf   []*SNode
	blockedBuf []*SNode
	unitCnt    map[string]int
	busCnt     map[string]int
	seenKeys   map[string]bool
	idsBuf     []int
	keyBuf     []byte
	single     [1]*SNode
}

func newScheduler(g *graph, opts Options) *scheduler {
	n := g.nextID
	s := &scheduler{
		g:       g,
		opts:    opts,
		pending: make([]int32, n),
		covered: make([]bool, n),
		removed: make([]bool, n),
		pos:     make([]int32, n),
		mark:    make([]int32, n),
		decCnt:  make([]int32, n),
		bankIdx: make(map[string]int),
	}
	for i := range s.pending {
		s.pending[i] = pendingAbsent
	}
	for _, bank := range g.machine.Banks() {
		s.internBank(bank)
	}
	for _, nd := range g.nodes {
		s.initPending(nd)
	}
	return s
}

// internBank returns the dense index of a bank name, registering it on
// first sight.
func (s *scheduler) internBank(name string) int {
	if i, ok := s.bankIdx[name]; ok {
		return i
	}
	i := len(s.bankNames)
	s.bankIdx[name] = i
	s.bankNames = append(s.bankNames, name)
	s.bankSizes = append(s.bankSizes, s.g.bankSize(name))
	s.live = append(s.live, 0)
	s.bankMark = append(s.bankMark, 0)
	s.bankDelta = append(s.bankDelta, 0)
	return i
}

// grow extends the per-node slices to cover nodes added by spilling.
func (s *scheduler) grow() {
	for len(s.pending) < s.g.nextID {
		s.pending = append(s.pending, pendingAbsent)
		s.covered = append(s.covered, false)
		s.removed = append(s.removed, false)
		s.pos = append(s.pos, 0)
		s.mark = append(s.mark, 0)
		s.decCnt = append(s.decCnt, 0)
	}
}

func (s *scheduler) initPending(n *SNode) {
	if _, defines := n.DefLoc(); defines {
		s.pending[n.ID] = int32(len(n.Succs) + s.g.externalUses[n])
	}
}

func (s *scheduler) uncoveredNodes() []*SNode {
	var out []*SNode
	if !DisablePooling {
		out = s.uncBuf[:0]
	}
	for _, n := range s.g.nodes {
		if !s.covered[n.ID] && !s.removed[n.ID] {
			out = append(out, n)
		}
	}
	if !DisablePooling {
		s.uncBuf = out
	}
	return out
}

func (s *scheduler) ready(n *SNode) bool {
	if s.covered[n.ID] || s.removed[n.ID] {
		return false
	}
	for _, p := range n.Preds {
		if !s.covered[p.ID] {
			return false
		}
	}
	for _, p := range n.OrdPreds {
		if !s.covered[p.ID] {
			return false
		}
	}
	return true
}

// availableAt returns the earliest cycle the node may issue given its
// producers' latencies (call only when ready, i.e. all preds covered).
// Transfers and ordering edges separate by one cycle; multi-cycle
// operations by their latency.
func (s *scheduler) availableAt(n *SNode) int {
	at := 0
	for _, p := range n.Preds {
		if t := int(s.pos[p.ID]) + s.g.latencyOf(p); t > at {
			at = t
		}
	}
	for _, p := range n.OrdPreds {
		if t := int(s.pos[p.ID]) + 1; t > at {
			at = t
		}
	}
	return at
}

// issueable reports whether n can go into the instruction being formed
// right now: dependences covered and latencies elapsed.
func (s *scheduler) issueable(n *SNode) bool {
	return s.ready(n) && s.availableAt(n) <= len(s.instrs)
}

// latencyPending reports whether some uncovered node is only waiting for
// a producer's latency to elapse (so a NOP advances the machine).
func (s *scheduler) latencyPending() bool {
	for _, n := range s.g.nodes {
		if s.ready(n) && s.availableAt(n) > len(s.instrs) {
			return true
		}
	}
	return false
}

// feasible decides whether scheduling the set as one instruction keeps
// every register bank within its size: registers freed by last uses are
// credited, registers taken by new values are debited.
func (s *scheduler) feasible(set []*SNode) bool {
	return len(s.overfullBanks(set)) == 0
}

// overfullBanks returns the banks that would exceed their size if the
// set were scheduled now, sorted by bank name. The result aliases a
// scratch buffer: it is valid until the next overfullBanks call.
//
// A bank is reported exactly when it appears in the set's pressure
// delta (even a net-zero delta) and its live count would exceed its
// size — the spill path relies on "appeared but not attributable to a
// producer in the set" meaning the bank was already over.
func (s *scheduler) overfullBanks(set []*SNode) []bankOver {
	s.epoch++
	e := s.epoch
	dec := s.decNodes[:0]
	for _, n := range set {
		for _, p := range n.Preds {
			if s.mark[p.ID] != e {
				s.mark[p.ID] = e
				s.decCnt[p.ID] = 0
				dec = append(dec, p)
			}
			s.decCnt[p.ID]++
		}
	}
	s.decNodes = dec
	touched := s.bankTouch[:0]
	touch := func(bi int) {
		if s.bankMark[bi] != e {
			s.bankMark[bi] = e
			s.bankDelta[bi] = 0
			touched = append(touched, bi)
		}
	}
	for _, p := range dec {
		if s.pending[p.ID]-s.decCnt[p.ID] <= 0 {
			if loc, ok := p.DefLoc(); ok && loc.Kind == isdl.LocUnit {
				bi := s.internBank(loc.Name)
				touch(bi)
				s.bankDelta[bi]--
			}
		}
	}
	for _, n := range set {
		if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit && s.pending[n.ID] > 0 {
			bi := s.internBank(loc.Name)
			touch(bi)
			s.bankDelta[bi]++
		}
	}
	s.bankTouch = touched
	var out []bankOver
	if !DisablePooling {
		out = s.overBuf[:0]
	}
	for _, bi := range touched {
		if s.live[bi]+s.bankDelta[bi] > s.bankSizes[bi] {
			out = append(out, bankOver{s.bankNames[bi], s.live[bi] + s.bankDelta[bi] - s.bankSizes[bi]})
		}
	}
	// Banks are few: insertion sort keeps this allocation-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].bank < out[j-1].bank; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if !DisablePooling {
		s.overBuf = out
	}
	return out
}

// trimToFeasible removes value-producing nodes from the set until the
// register bounds hold, preferring to drop producers into the most
// overfull banks. It shrinks the set in place (callers own the slice)
// and may return an empty set.
func (s *scheduler) trimToFeasible(set []*SNode) []*SNode {
	for len(set) > 0 {
		over := s.overfullBanks(set)
		if len(over) == 0 {
			return set
		}
		// Pick the most overfull bank and drop one producer into it.
		worst, worstBy := "", 0
		for _, bo := range over {
			if bo.by > worstBy || (bo.by == worstBy && bo.bank < worst) || worst == "" {
				worst, worstBy = bo.bank, bo.by
			}
		}
		dropped := false
		for i := len(set) - 1; i >= 0; i-- {
			if loc, ok := set[i].DefLoc(); ok && loc.Kind == isdl.LocUnit && loc.Name == worst {
				set = append(set[:i], set[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			// Overflow not attributable to a producer in the set (can
			// only happen when the bank was already over, which the
			// spill path handles); give up on this clique.
			return nil
		}
	}
	return set
}

// allowedByGoal enforces the post-spill bank reservation: while a goal is
// pending, only the goal itself and its direct dependencies may define a
// value into the reserved bank.
func (s *scheduler) allowedByGoal(n *SNode) bool {
	if s.goal == nil || s.covered[s.goal.ID] || s.removed[s.goal.ID] {
		s.goal = nil
		return true
	}
	loc, defines := n.DefLoc()
	if !defines || loc.Kind != isdl.LocUnit || loc.Name != s.goalBank {
		return true
	}
	if n == s.goal {
		return true
	}
	for _, p := range s.goal.Preds {
		if p == n {
			return true
		}
	}
	return false
}

// useful reports whether scheduling the value-carrying transfer now can
// soon enable a consumer: some consumer's other dependences are already
// covered or at least ready. Eagerly scheduled transfers park values in
// registers long before use, inflating pressure and provoking spill
// ping-pong; the main loop therefore prefers useful transfers and falls
// back to ungated selection only when nothing useful is schedulable.
func (s *scheduler) useful(n *SNode) bool {
	if n.Kind == OpNode || n.Kind == StoreNode {
		return true // ops do real work; stores only relieve pressure
	}
	for _, w := range n.Succs {
		ok := true
		for _, p := range w.Preds {
			if p != n && !s.covered[p.ID] && !s.ready(p) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range w.OrdPreds {
			if !s.covered[p.ID] && !s.ready(p) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// lookahead estimates the number of instructions still needed after
// hypothetically scheduling the set: a resource lower bound over the
// remaining uncovered nodes (Sec. IV-D's tie-breaking cost).
func (s *scheduler) lookahead(set []*SNode) int {
	s.epoch++
	e := s.epoch
	for _, n := range set {
		s.mark[n.ID] = e
	}
	if s.unitCnt == nil || DisablePooling {
		s.unitCnt = make(map[string]int)
		s.busCnt = make(map[string]int)
	} else {
		clear(s.unitCnt)
		clear(s.busCnt)
	}
	unitCnt, busCnt := s.unitCnt, s.busCnt
	for _, n := range s.g.nodes {
		if s.covered[n.ID] || s.removed[n.ID] || s.mark[n.ID] == e {
			continue
		}
		if n.Kind == OpNode {
			unitCnt[n.Unit]++
		} else {
			busCnt[n.Step.Bus]++
		}
	}
	est := 0
	for _, c := range unitCnt {
		if c > est {
			est = c
		}
	}
	for bus, c := range busCnt {
		w := 1
		if b := s.g.machine.Bus(bus); b != nil {
			w = b.Width
		}
		need := (c + w - 1) / w
		if need > est {
			est = need
		}
	}
	return est
}

// schedule commits the set as the next instruction and updates liveness.
// An empty set is a NOP: it advances the cycle so a multi-cycle result
// can complete (the machine has no interlocks). The set is copied, so
// callers may pass (and keep reusing) scratch buffers.
func (s *scheduler) schedule(set []*SNode) {
	if len(set) > 0 {
		set = append(make([]*SNode, 0, len(set)), set...)
	}
	sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
	cycle := len(s.instrs)
	s.instrs = append(s.instrs, set)
	for _, n := range set {
		s.covered[n.ID] = true
		s.pos[n.ID] = int32(cycle)
	}
	for _, n := range set {
		for _, p := range n.Preds {
			s.pending[p.ID]--
			if s.pending[p.ID] == 0 {
				if loc, ok := p.DefLoc(); ok && loc.Kind == isdl.LocUnit {
					s.live[s.internBank(loc.Name)]--
				}
			}
		}
	}
	for _, n := range set {
		if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit && s.pending[n.ID] > 0 {
			s.live[s.internBank(loc.Name)]++
		}
	}
	if s.opts.Trace != nil {
		s.opts.Trace.logf("  instr %d: %s", len(s.instrs)-1, formatClique(set))
	}
}

// selectBest picks the clique whose ready (and, when gated, useful)
// feasible subset covers the most nodes, ties broken by the lookahead
// estimate (Sec. IV-D). Candidate subsets are built in two ping-pong
// scratch buffers: the current best holds one, the candidate under
// construction the other. The returned slice is valid until the second
// next selectBest call (run consumes it immediately via schedule, which
// copies).
func (s *scheduler) selectBest(cliques [][]*SNode, gated bool) []*SNode {
	var best []*SNode
	bestScore, bestLook := -1, 0
	for _, c := range cliques {
		var rc []*SNode
		if !DisablePooling {
			rc = s.rcBufs[s.rcWhich][:0]
		}
		for _, n := range c {
			if s.issueable(n) && s.allowedByGoal(n) && (!gated || s.useful(n)) {
				rc = append(rc, n)
			}
		}
		if !DisablePooling {
			s.rcBufs[s.rcWhich] = rc
		}
		if len(rc) == 0 {
			continue
		}
		rc = s.trimToFeasible(rc)
		if len(rc) == 0 {
			continue
		}
		score := len(rc)
		if score < bestScore {
			continue
		}
		if score > bestScore {
			best, bestScore = rc, score
			if !DisablePooling {
				s.rcWhich ^= 1
			}
			if s.opts.Lookahead {
				bestLook = s.lookahead(rc)
			}
			continue
		}
		// Tie: lookahead estimate decides (Sec. IV-D).
		if s.opts.Lookahead {
			if look := s.lookahead(rc); look < bestLook {
				best, bestLook = rc, look
				if !DisablePooling {
					s.rcWhich ^= 1
				}
			}
		}
	}
	return best
}

// run covers all solution-graph nodes, returning the instruction schedule.
func (s *scheduler) run() error {
	cliques := s.initialCliques
	if cliques == nil {
		cliques = buildCliques(s.uncoveredNodes(), s.g.machine, s.opts)
	}
	if s.opts.Trace != nil {
		s.opts.Trace.logf("generated %d maximal groupings", len(cliques))
		for _, c := range cliques {
			s.opts.Trace.logf("  clique %s", formatClique(c))
		}
	}
	remaining := len(s.uncoveredNodes())
	guard := 0
	spillStreak := 0
	// Bounds fixed to the pre-spill graph size: spilling adds nodes, and
	// a bound that grew with them would never trip on infeasible inputs.
	maxStreak := 2*remaining + 8
	maxGuard := 40*remaining + 200
	maxSpills := 4*remaining + 16
	for remaining > 0 {
		guard++
		if guard > maxGuard {
			return fmt.Errorf("cover: scheduler failed to make progress (%d nodes left)", remaining)
		}
		if s.spillCount > maxSpills {
			return fmt.Errorf("cover: spill thrashing (%d spills for a %d-node graph)", s.spillCount, len(s.g.nodes))
		}
		best := s.selectBest(cliques, true)
		if best == nil {
			// Nothing useful is schedulable; retry without the
			// usefulness gate before resorting to a spill.
			best = s.selectBest(cliques, false)
		}
		if best == nil {
			// Nothing issueable. If some node is only waiting out a
			// producer's latency, a NOP advances the machine.
			if s.latencyPending() {
				s.schedule(nil)
				continue
			}
			// Register pressure blocks every ready node: spill. A bound
			// on consecutive spills catches fundamentally infeasible
			// instances (e.g. a binary op whose two register operands
			// cannot fit a one-register bank) instead of spilling
			// forever.
			spillStreak++
			if spillStreak > maxStreak {
				return fmt.Errorf("cover: register files too small: %d consecutive spills without progress", spillStreak)
			}
			if err := s.spill(); err != nil {
				return err
			}
			cliques = buildCliques(s.uncoveredNodes(), s.g.machine, s.opts)
			remaining = len(s.uncoveredNodes())
			continue
		}
		spillStreak = 0
		s.schedule(best)
		remaining -= len(best)
		// Shrink the remaining cliques (Sec. IV-D).
		cliques = s.shrinkCliques(cliques)
	}
	return nil
}

// shrinkCliques drops covered nodes from every clique and removes the
// duplicates that collapse out, filtering each clique (and the clique
// list itself) in place: the scheduler owns the clique inventory, and
// schedule copies instructions, so nothing downstream aliases these
// backing arrays.
func (s *scheduler) shrinkCliques(cliques [][]*SNode) [][]*SNode {
	var out [][]*SNode
	if !DisablePooling {
		out = cliques[:0]
	}
	for _, c := range cliques {
		var kept []*SNode
		if !DisablePooling {
			kept = c[:0]
		}
		for _, n := range c {
			if !s.covered[n.ID] {
				kept = append(kept, n)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	return s.dedupeCliquesInPlace(out)
}

// dedupeCliquesInPlace is dedupeCliques with the key set and scratch
// buffers reused across calls (one shrink per scheduled instruction).
func (s *scheduler) dedupeCliquesInPlace(cs [][]*SNode) [][]*SNode {
	if s.seenKeys == nil || DisablePooling {
		s.seenKeys = make(map[string]bool, len(cs))
	} else {
		clear(s.seenKeys)
	}
	out := cs[:0]
	for _, c := range cs {
		key := cliqueKey(c, &s.idsBuf, &s.keyBuf)
		if !s.seenKeys[string(key)] {
			s.seenKeys[string(key)] = true
			out = append(out, c)
		}
	}
	return out
}
