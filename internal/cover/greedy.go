package cover

import (
	"fmt"
	"sort"

	"aviv/internal/isdl"
)

// scheduler runs the greedy minimum-cost clique covering of Sec. IV-D:
// repeatedly pick the maximal grouping that covers the most ready nodes
// within the register-bank bounds, breaking ties with a lookahead
// estimate, and fall back to spilling a live value when register
// pressure blocks all progress.
type scheduler struct {
	g    *graph
	opts Options

	// pending counts, per value-defining node, the unscheduled consumers
	// of its value plus external (past-block) uses. When it reaches zero
	// the register holding the value is freed.
	pending map[*SNode]int
	// live counts occupied registers per bank (unit name).
	live map[string]int

	covered map[*SNode]bool
	removed map[*SNode]bool
	// pos records the instruction index each covered node issued at, for
	// latency separation on machines with multi-cycle operations.
	pos map[*SNode]int

	instrs     [][]*SNode
	spillCount int

	// goal, when set, is the pressure-blocked node the last spill freed a
	// register for; until it is covered, no other node may define a value
	// into goalBank. Without the reservation the freed register is
	// snapped up (typically by the reload of the value just spilled) and
	// the scheduler ping-pongs.
	goal     *SNode
	goalBank string
}

func newScheduler(g *graph, opts Options) *scheduler {
	s := &scheduler{
		g:       g,
		opts:    opts,
		pending: make(map[*SNode]int),
		live:    make(map[string]int),
		covered: make(map[*SNode]bool),
		removed: make(map[*SNode]bool),
		pos:     make(map[*SNode]int),
	}
	for _, n := range g.nodes {
		s.initPending(n)
	}
	return s
}

func (s *scheduler) initPending(n *SNode) {
	if _, defines := n.DefLoc(); defines {
		s.pending[n] = len(n.Succs) + s.g.externalUses[n]
	}
}

func (s *scheduler) uncoveredNodes() []*SNode {
	var out []*SNode
	for _, n := range s.g.nodes {
		if !s.covered[n] && !s.removed[n] {
			out = append(out, n)
		}
	}
	return out
}

func (s *scheduler) ready(n *SNode) bool {
	if s.covered[n] || s.removed[n] {
		return false
	}
	for _, p := range n.Preds {
		if !s.covered[p] {
			return false
		}
	}
	for _, p := range n.OrdPreds {
		if !s.covered[p] {
			return false
		}
	}
	return true
}

// availableAt returns the earliest cycle the node may issue given its
// producers' latencies (call only when ready, i.e. all preds covered).
// Transfers and ordering edges separate by one cycle; multi-cycle
// operations by their latency.
func (s *scheduler) availableAt(n *SNode) int {
	at := 0
	for _, p := range n.Preds {
		if t := s.pos[p] + s.g.latencyOf(p); t > at {
			at = t
		}
	}
	for _, p := range n.OrdPreds {
		if t := s.pos[p] + 1; t > at {
			at = t
		}
	}
	return at
}

// issueable reports whether n can go into the instruction being formed
// right now: dependences covered and latencies elapsed.
func (s *scheduler) issueable(n *SNode) bool {
	return s.ready(n) && s.availableAt(n) <= len(s.instrs)
}

// latencyPending reports whether some uncovered node is only waiting for
// a producer's latency to elapse (so a NOP advances the machine).
func (s *scheduler) latencyPending() bool {
	for _, n := range s.g.nodes {
		if s.ready(n) && s.availableAt(n) > len(s.instrs) {
			return true
		}
	}
	return false
}

// feasible decides whether scheduling the set as one instruction keeps
// every register bank within its size: registers freed by last uses are
// credited, registers taken by new values are debited.
func (s *scheduler) feasible(set []*SNode) bool {
	return len(s.overfullBanks(set)) == 0
}

// overfullBanks returns the banks that would exceed their size if the set
// were scheduled now.
func (s *scheduler) overfullBanks(set []*SNode) map[string]int {
	dec := make(map[*SNode]int)
	for _, n := range set {
		for _, p := range n.Preds {
			dec[p]++
		}
	}
	delta := make(map[string]int)
	for p, d := range dec {
		if s.pending[p]-d <= 0 {
			if loc, ok := p.DefLoc(); ok && loc.Kind == isdl.LocUnit {
				delta[loc.Name]--
			}
		}
	}
	for _, n := range set {
		if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit && s.pending[n] > 0 {
			delta[loc.Name]++
		}
	}
	over := make(map[string]int)
	for bank, d := range delta {
		if s.live[bank]+d > s.g.bankSize(bank) {
			over[bank] = s.live[bank] + d - s.g.bankSize(bank)
		}
	}
	return over
}

// trimToFeasible removes value-producing nodes from the set until the
// register bounds hold, preferring to drop producers into the most
// overfull banks. It may return an empty set.
func (s *scheduler) trimToFeasible(set []*SNode) []*SNode {
	set = append([]*SNode(nil), set...)
	for len(set) > 0 {
		over := s.overfullBanks(set)
		if len(over) == 0 {
			return set
		}
		// Pick the most overfull bank and drop one producer into it.
		worst, worstBy := "", 0
		for bank, by := range over {
			if by > worstBy || (by == worstBy && bank < worst) || worst == "" {
				worst, worstBy = bank, by
			}
		}
		dropped := false
		for i := len(set) - 1; i >= 0; i-- {
			if loc, ok := set[i].DefLoc(); ok && loc.Kind == isdl.LocUnit && loc.Name == worst {
				set = append(set[:i], set[i+1:]...)
				dropped = true
				break
			}
		}
		if !dropped {
			// Overflow not attributable to a producer in the set (can
			// only happen when the bank was already over, which the
			// spill path handles); give up on this clique.
			return nil
		}
	}
	return set
}

// allowedByGoal enforces the post-spill bank reservation: while a goal is
// pending, only the goal itself and its direct dependencies may define a
// value into the reserved bank.
func (s *scheduler) allowedByGoal(n *SNode) bool {
	if s.goal == nil || s.covered[s.goal] || s.removed[s.goal] {
		s.goal = nil
		return true
	}
	loc, defines := n.DefLoc()
	if !defines || loc.Kind != isdl.LocUnit || loc.Name != s.goalBank {
		return true
	}
	if n == s.goal {
		return true
	}
	for _, p := range s.goal.Preds {
		if p == n {
			return true
		}
	}
	return false
}

// useful reports whether scheduling the value-carrying transfer now can
// soon enable a consumer: some consumer's other dependences are already
// covered or at least ready. Eagerly scheduled transfers park values in
// registers long before use, inflating pressure and provoking spill
// ping-pong; the main loop therefore prefers useful transfers and falls
// back to ungated selection only when nothing useful is schedulable.
func (s *scheduler) useful(n *SNode) bool {
	if n.Kind == OpNode || n.Kind == StoreNode {
		return true // ops do real work; stores only relieve pressure
	}
	for _, w := range n.Succs {
		ok := true
		for _, p := range w.Preds {
			if p != n && !s.covered[p] && !s.ready(p) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range w.OrdPreds {
			if !s.covered[p] && !s.ready(p) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// lookahead estimates the number of instructions still needed after
// hypothetically scheduling the set: a resource lower bound over the
// remaining uncovered nodes (Sec. IV-D's tie-breaking cost).
func (s *scheduler) lookahead(set []*SNode) int {
	inSet := make(map[*SNode]bool, len(set))
	for _, n := range set {
		inSet[n] = true
	}
	unitCnt := make(map[string]int)
	busCnt := make(map[string]int)
	for _, n := range s.g.nodes {
		if s.covered[n] || s.removed[n] || inSet[n] {
			continue
		}
		if n.Kind == OpNode {
			unitCnt[n.Unit]++
		} else {
			busCnt[n.Step.Bus]++
		}
	}
	est := 0
	for _, c := range unitCnt {
		if c > est {
			est = c
		}
	}
	for bus, c := range busCnt {
		w := 1
		if b := s.g.machine.Bus(bus); b != nil {
			w = b.Width
		}
		need := (c + w - 1) / w
		if need > est {
			est = need
		}
	}
	return est
}

// schedule commits the set as the next instruction and updates liveness.
// An empty set is a NOP: it advances the cycle so a multi-cycle result
// can complete (the machine has no interlocks).
func (s *scheduler) schedule(set []*SNode) {
	sort.Slice(set, func(i, j int) bool { return set[i].ID < set[j].ID })
	cycle := len(s.instrs)
	s.instrs = append(s.instrs, set)
	for _, n := range set {
		s.covered[n] = true
		s.pos[n] = cycle
	}
	for _, n := range set {
		for _, p := range n.Preds {
			s.pending[p]--
			if s.pending[p] == 0 {
				if loc, ok := p.DefLoc(); ok && loc.Kind == isdl.LocUnit {
					s.live[loc.Name]--
				}
			}
		}
	}
	for _, n := range set {
		if loc, ok := n.DefLoc(); ok && loc.Kind == isdl.LocUnit && s.pending[n] > 0 {
			s.live[loc.Name]++
		}
	}
	if s.opts.Trace != nil {
		s.opts.Trace.logf("  instr %d: %s", len(s.instrs)-1, formatClique(set))
	}
}

// selectBest picks the clique whose ready (and, when gated, useful)
// feasible subset covers the most nodes, ties broken by the lookahead
// estimate (Sec. IV-D).
func (s *scheduler) selectBest(cliques [][]*SNode, gated bool) []*SNode {
	var best []*SNode
	bestScore, bestLook := -1, 0
	for _, c := range cliques {
		var rc []*SNode
		for _, n := range c {
			if s.issueable(n) && s.allowedByGoal(n) && (!gated || s.useful(n)) {
				rc = append(rc, n)
			}
		}
		if len(rc) == 0 {
			continue
		}
		rc = s.trimToFeasible(rc)
		if len(rc) == 0 {
			continue
		}
		score := len(rc)
		if score < bestScore {
			continue
		}
		if score > bestScore {
			best, bestScore = rc, score
			if s.opts.Lookahead {
				bestLook = s.lookahead(rc)
			}
			continue
		}
		// Tie: lookahead estimate decides (Sec. IV-D).
		if s.opts.Lookahead {
			if look := s.lookahead(rc); look < bestLook {
				best, bestLook = rc, look
			}
		}
	}
	return best
}

// run covers all solution-graph nodes, returning the instruction schedule.
func (s *scheduler) run() error {
	cliques := buildCliques(s.uncoveredNodes(), s.g.machine, s.opts)
	if s.opts.Trace != nil {
		s.opts.Trace.logf("generated %d maximal groupings", len(cliques))
		for _, c := range cliques {
			s.opts.Trace.logf("  clique %s", formatClique(c))
		}
	}
	remaining := len(s.uncoveredNodes())
	guard := 0
	spillStreak := 0
	// Bounds fixed to the pre-spill graph size: spilling adds nodes, and
	// a bound that grew with them would never trip on infeasible inputs.
	maxStreak := 2*remaining + 8
	maxGuard := 40*remaining + 200
	maxSpills := 4*remaining + 16
	for remaining > 0 {
		guard++
		if guard > maxGuard {
			return fmt.Errorf("cover: scheduler failed to make progress (%d nodes left)", remaining)
		}
		if s.spillCount > maxSpills {
			return fmt.Errorf("cover: spill thrashing (%d spills for a %d-node graph)", s.spillCount, len(s.g.nodes))
		}
		best := s.selectBest(cliques, true)
		if best == nil {
			// Nothing useful is schedulable; retry without the
			// usefulness gate before resorting to a spill.
			best = s.selectBest(cliques, false)
		}
		if best == nil {
			// Nothing issueable. If some node is only waiting out a
			// producer's latency, a NOP advances the machine.
			if s.latencyPending() {
				s.schedule(nil)
				continue
			}
			// Register pressure blocks every ready node: spill. A bound
			// on consecutive spills catches fundamentally infeasible
			// instances (e.g. a binary op whose two register operands
			// cannot fit a one-register bank) instead of spilling
			// forever.
			spillStreak++
			if spillStreak > maxStreak {
				return fmt.Errorf("cover: register files too small: %d consecutive spills without progress", spillStreak)
			}
			if err := s.spill(); err != nil {
				return err
			}
			cliques = buildCliques(s.uncoveredNodes(), s.g.machine, s.opts)
			remaining = len(s.uncoveredNodes())
			continue
		}
		spillStreak = 0
		s.schedule(best)
		remaining -= len(best)
		// Shrink the remaining cliques (Sec. IV-D).
		cliques = shrinkCliques(cliques, s.covered)
	}
	return nil
}

func shrinkCliques(cliques [][]*SNode, covered map[*SNode]bool) [][]*SNode {
	var out [][]*SNode
	for _, c := range cliques {
		var kept []*SNode
		for _, n := range c {
			if !covered[n] {
				kept = append(kept, n)
			}
		}
		if len(kept) > 0 {
			out = append(out, kept)
		}
	}
	return dedupeCliques(out)
}
