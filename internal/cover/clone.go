package cover

// Clone deep-copies the solution: every scheduled node, its edges, the
// instruction groups, and the external-use marks. The peephole pass edits
// clones so a failed transformation can be discarded — one clone per
// attempted transformation — so the copy is arena-style: all cloned
// nodes share one backing array, and all remapped edge lists and
// instruction groups are carved out of two pointer slabs.
func (s *Solution) Clone() *Solution {
	total := 0
	for _, instr := range s.Instrs {
		total += len(instr)
	}
	arena := make([]SNode, 0, total)
	nm := make(map[*SNode]*SNode, total)
	for _, instr := range s.Instrs {
		for _, n := range instr {
			arena = append(arena, *n)
			c := &arena[len(arena)-1]
			c.Preds, c.Succs, c.OrdPreds, c.OrdSuccs = nil, nil, nil, nil
			nm[n] = c
		}
	}
	edges := 0
	for n := range nm {
		edges += len(n.Preds) + len(n.Succs) + len(n.OrdPreds) + len(n.OrdSuccs)
	}
	// The slab never grows past its capacity (remap drops edges leaving
	// the cloned node set), so carved-out sub-slices stay valid.
	slab := make([]*SNode, 0, edges)
	remap := func(list []*SNode) []*SNode {
		start := len(slab)
		for _, n := range list {
			if c, ok := nm[n]; ok {
				slab = append(slab, c)
			}
		}
		if len(slab) == start {
			return nil
		}
		return slab[start:len(slab):len(slab)]
	}
	for old, c := range nm {
		c.Preds = remap(old.Preds)
		c.Succs = remap(old.Succs)
		c.OrdPreds = remap(old.OrdPreds)
		c.OrdSuccs = remap(old.OrdSuccs)
	}
	out := &Solution{
		Block:        s.Block,
		Machine:      s.Machine,
		Assignment:   s.Assignment,
		SpillCount:   s.SpillCount,
		ExternalUses: make(map[*SNode]int, len(s.ExternalUses)),
	}
	groups := make([]*SNode, total)
	out.Instrs = make([][]*SNode, 0, len(s.Instrs))
	for _, instr := range s.Instrs {
		group := groups[:len(instr):len(instr)]
		groups = groups[len(instr):]
		for i, n := range instr {
			group[i] = nm[n]
		}
		out.Instrs = append(out.Instrs, group)
	}
	for n, c := range s.ExternalUses {
		if cn, ok := nm[n]; ok {
			out.ExternalUses[cn] = c
		}
	}
	return out
}
