package cover

// Clone deep-copies the solution: every scheduled node, its edges, the
// instruction groups, and the external-use marks. The peephole pass edits
// clones so a failed transformation can be discarded.
func (s *Solution) Clone() *Solution {
	nm := make(map[*SNode]*SNode)
	for _, instr := range s.Instrs {
		for _, n := range instr {
			c := *n
			c.Preds, c.Succs, c.OrdPreds, c.OrdSuccs = nil, nil, nil, nil
			nm[n] = &c
		}
	}
	remap := func(list []*SNode) []*SNode {
		var out []*SNode
		for _, n := range list {
			if c, ok := nm[n]; ok {
				out = append(out, c)
			}
		}
		return out
	}
	for old, c := range nm {
		c.Preds = remap(old.Preds)
		c.Succs = remap(old.Succs)
		c.OrdPreds = remap(old.OrdPreds)
		c.OrdSuccs = remap(old.OrdSuccs)
	}
	out := &Solution{
		Block:        s.Block,
		Machine:      s.Machine,
		Assignment:   s.Assignment,
		SpillCount:   s.SpillCount,
		ExternalUses: make(map[*SNode]int, len(s.ExternalUses)),
	}
	for _, instr := range s.Instrs {
		group := make([]*SNode, len(instr))
		for i, n := range instr {
			group[i] = nm[n]
		}
		out.Instrs = append(out.Instrs, group)
	}
	for n, c := range s.ExternalUses {
		if cn, ok := nm[n]; ok {
			out.ExternalUses[cn] = c
		}
	}
	return out
}
