package cover

import (
	"fmt"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// benchBlock is a 6-tap multiply-accumulate chain: enough ILP to
// exercise clique generation and enough depth to exercise the greedy
// covering loop and lookahead.
func benchBlock() *ir.Block {
	bb := ir.NewBuilder("bench")
	acc := bb.Mul(bb.Load("x0"), bb.Load("c0"))
	for i := 1; i < 6; i++ {
		acc = bb.Add(acc, bb.Mul(bb.Load(fmt.Sprintf("x%d", i)), bb.Load(fmt.Sprintf("c%d", i))))
	}
	bb.Store("y", acc)
	bb.Return()
	return bb.Finish()
}

// BenchmarkCoverBlock measures one full block covering — assignment
// search, clique covering with branch-and-bound and memoization, and
// peephole — on the example architecture.
func BenchmarkCoverBlock(b *testing.B) {
	blk := benchBlock()
	m := isdl.ExampleArch(4)
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CoverBlock(blk, m, opts); err != nil {
			b.Fatal(err)
		}
	}
}
