package cover

import (
	"fmt"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// fig2Block is the paper's Fig. 2 example: out = (a + b) - (c * d).
func fig2Block() *ir.Block {
	bb := ir.NewBuilder("fig2")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Sub(sum, prod))
	bb.Return()
	return bb.Finish()
}

func mustCover(t *testing.T, b *ir.Block, m *isdl.Machine, opts Options) *Result {
	t.Helper()
	res, err := CoverBlock(b, m, opts)
	if err != nil {
		t.Fatalf("CoverBlock(%s): %v", b.Name, err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("solution verify failed: %v\n%s", err, res.Best)
	}
	return res
}

func TestCoverFig2Example(t *testing.T) {
	m := isdl.ExampleArch(4)
	res := mustCover(t, fig2Block(), m, DefaultOptions())
	// The paper's Table I Ex1: 7 instructions, optimal, no spills.
	if got := res.Best.Cost(); got != 7 {
		t.Errorf("cost = %d instructions, want 7 (paper Table I Ex1)\n%s", got, res.Best)
	}
	if res.Best.SpillCount != 0 {
		t.Errorf("spills = %d, want 0", res.Best.SpillCount)
	}
	// Exhaustive mode must not be worse.
	ex := mustCover(t, fig2Block(), m, ExhaustiveOptions())
	if ex.Best.Cost() > res.Best.Cost() {
		t.Errorf("exhaustive cost %d > heuristic cost %d", ex.Best.Cost(), res.Best.Cost())
	}
	if ex.Best.Cost() != 7 {
		t.Errorf("exhaustive cost = %d, want 7", ex.Best.Cost())
	}
}

func TestCoverFig2OnArchII(t *testing.T) {
	// Table II Ex1 reports 8 instructions on Architecture II. Our bus
	// model lets a DM load ride the bus in the same cycle as an op on the
	// destination unit, which saves one instruction: 7. Anything in
	// [7, 8] matches the paper's shape (slightly worse than the 3-unit
	// machine is NOT expected for this block — Table II Ex1 is 8 vs 7).
	res := mustCover(t, fig2Block(), isdl.ArchitectureII(4), DefaultOptions())
	if got := res.Best.Cost(); got < 7 || got > 8 {
		t.Errorf("cost = %d, want 7..8 (paper Table II Ex1 = 8)\n%s", got, res.Best)
	}
}

// TestFig7Matrix reconstructs the paper's Fig. 7 pairwise-parallelism
// matrix for the assignment {N2, N9, N10, N14}: N14 is an ADD on U3 whose
// result moves over the bus (N9) into U2 where N2 (a SUB) consumes it,
// while N10 (a MUL on U2) is independent.
func fig7Nodes(m *isdl.Machine) []*SNode {
	n14 := &SNode{ID: 0, Kind: OpNode, Unit: "U3", Op: ir.OpAdd}
	n9 := &SNode{ID: 1, Kind: MoveNode, Step: isdl.Transfer{
		From: isdl.UnitLoc("U3"), To: isdl.UnitLoc("U2"), Bus: "DB"}}
	n2 := &SNode{ID: 2, Kind: OpNode, Unit: "U2", Op: ir.OpSub}
	n10 := &SNode{ID: 3, Kind: OpNode, Unit: "U2", Op: ir.OpMul}
	addEdge(n14, n9)
	addEdge(n9, n2)
	return []*SNode{n14, n9, n2, n10}
}

func TestFig7Matrix(t *testing.T) {
	m := isdl.ExampleArch(4)
	nodes := fig7Nodes(m)
	par := ParallelMatrix(nodes, m, -1)
	// Index: 0=N14, 1=N9, 2=N2, 3=N10. Fig. 7 (0 = parallel):
	// N2 parallel with nothing; N9 || N10; N10 || N14.
	want := map[[2]int]bool{
		{0, 1}: false, // N14 vs N9: dependent
		{0, 2}: false, // N14 vs N2: path through N9
		{0, 3}: true,  // N14 vs N10: parallel
		{1, 2}: false, // N9 vs N2: dependent
		{1, 3}: true,  // N9 vs N10: parallel
		{2, 3}: false, // N2 vs N10: same unit U2
	}
	for k, w := range want {
		if par[k[0]][k[1]] != w || par[k[1]][k[0]] != w {
			t.Errorf("par[%d][%d] = %v, want %v", k[0], k[1], par[k[0]][k[1]], w)
		}
	}
	for i := range nodes {
		if par[i][i] {
			t.Errorf("node %d parallel with itself", i)
		}
	}
}

func TestFig8Cliques(t *testing.T) {
	m := isdl.ExampleArch(4)
	nodes := fig7Nodes(m)
	par := ParallelMatrix(nodes, m, -1)
	cliques := GenMaxCliques(par)
	// Paper: (C1: N2), (C2: N10, N9), (C3: N10, N14).
	want := map[string]bool{
		"[2]":   true, // {N2}
		"[1 3]": true, // {N9, N10}
		"[0 3]": true, // {N14, N10}
	}
	if len(cliques) != len(want) {
		t.Fatalf("got %d cliques %v, want 3", len(cliques), cliques)
	}
	for _, c := range cliques {
		if !want[fmt.Sprint(c)] {
			t.Errorf("unexpected clique %v", c)
		}
	}
}

// TestFig6Pruning reproduces the Fig. 6 assignment-search example: the
// SUB result feeds a COMPL that only U1 can execute, so the search prunes
// SUB-on-U2 and keeps SUB and ADD on U1.
func TestFig6Pruning(t *testing.T) {
	bb := ir.NewBuilder("fig6")
	sum := bb.Add(bb.Load("a"), bb.Load("b"))
	prod := bb.Mul(bb.Load("c"), bb.Load("d"))
	diff := bb.Sub(sum, prod)
	bb.Store("out", bb.Op(ir.OpCompl, diff))
	bb.Return()
	blk := bb.Finish()

	m := isdl.ExampleArch(4)
	d, err := sndag.Build(blk, m)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BeamWidth = 4
	tr := &Trace{}
	opts.Trace = tr
	assigns := exploreAssignments(d, opts)
	if len(assigns) == 0 {
		t.Fatal("no assignments")
	}
	// Every kept assignment must execute SUB on U1 (zero-cost transfer to
	// the COMPL on U1), as the paper's example concludes.
	for _, a := range assigns {
		for n, alt := range a.Choice {
			if n.Op == ir.OpSub && alt.Unit.Name != "U1" {
				t.Errorf("kept assignment has SUB on %s, want U1", alt.Unit.Name)
			}
			if n.Op == ir.OpCompl && alt.Unit.Name != "U1" {
				t.Errorf("COMPL on %s, impossible", alt.Unit.Name)
			}
		}
	}
	// The trace must show a pruned SUB-on-U2 step.
	sawPrune := false
	for _, line := range tr.Lines {
		if contains2(line, "SUB on U2.SUB") && contains2(line, "pruned") {
			sawPrune = true
		}
	}
	if !sawPrune {
		t.Errorf("trace shows no pruning of SUB on U2:\n%s", tr)
	}
}

func contains2(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestCoverWithSpills(t *testing.T) {
	// A wide block with 1-register banks forces spills.
	bb := ir.NewBuilder("press")
	a := bb.Load("a")
	b := bb.Load("b")
	c := bb.Load("c")
	d := bb.Load("d")
	s1 := bb.Add(a, b)
	s2 := bb.Sub(c, d)
	s3 := bb.Mul(s1, s2)
	s4 := bb.Add(s3, a)
	bb.Store("o", s4)
	bb.Return()
	blk := bb.Finish()

	m := isdl.ExampleArch(2)
	res := mustCover(t, blk, m, DefaultOptions())
	// With 4 registers the same block needs no spills and no more
	// instructions.
	res4 := mustCover(t, blk, isdl.ExampleArch(4), DefaultOptions())
	if res4.Best.SpillCount != 0 {
		t.Errorf("unexpected spills with 4-register banks: %d", res4.Best.SpillCount)
	}
	if res4.Best.Cost() > res.Best.Cost() {
		t.Errorf("4-reg cost %d > 2-reg cost %d", res4.Best.Cost(), res.Best.Cost())
	}
}

func TestCoverInfeasibleRegFiles(t *testing.T) {
	// One-register banks cannot hold two register operands of a binary
	// op; covering must fail cleanly rather than spill forever.
	bb := ir.NewBuilder("tiny")
	s1 := bb.Add(bb.Load("a"), bb.Load("b"))
	bb.Store("o", bb.Mul(s1, s1))
	bb.Return()
	if _, err := CoverBlock(bb.Finish(), isdl.ExampleArch(1), DefaultOptions()); err == nil {
		t.Error("covering with 1-register banks should fail for binary ops")
	}
}

func TestCoverStoreOfConstAndLoad(t *testing.T) {
	bb := ir.NewBuilder("leafstore")
	bb.Store("x", bb.Const(42))
	bb.Store("y", bb.Load("z"))
	bb.Return()
	blk := bb.Finish()
	res := mustCover(t, blk, isdl.ExampleArch(4), DefaultOptions())
	// const -> unit -> DM is 2 slots; DM -> unit -> DM is 3 slots on a
	// width-1 bus; the const materialization can overlap a transfer.
	if res.Best.Cost() > 5 {
		t.Errorf("leaf stores cost %d instructions, want <= 5\n%s", res.Best.Cost(), res.Best)
	}
}

func TestCoverBranchCondStaysLive(t *testing.T) {
	bb := ir.NewBuilder("cond")
	x := bb.Load("x")
	cmp := bb.Sub(x, bb.Load("y"))
	bb.Store("d", cmp)
	bb.Branch(cmp, "t", "f")
	blk := bb.Finish()
	res := mustCover(t, blk, isdl.ExampleArch(4), DefaultOptions())
	if res.Best.CondHolder() == nil {
		t.Fatal("no condition holder recorded")
	}
	if res.Best.CondHolder().Value != blk.Cond {
		t.Errorf("cond holder carries %v, want branch condition", res.Best.CondHolder().Value)
	}
}

func TestCoverStoreOrdering(t *testing.T) {
	// Two stores to the same variable (the unrolled-loop pattern of the
	// paper's Ex3) must stay ordered; a load of the same variable must
	// precede the first store.
	bb := ir.NewBuilder("order")
	acc := bb.Load("acc")
	acc1 := bb.Add(acc, bb.Mul(bb.Load("x0"), bb.Load("c0")))
	bb.Store("acc", acc1)
	acc2 := bb.Add(acc1, bb.Mul(bb.Load("x1"), bb.Load("c1")))
	bb.Store("acc", acc2)
	bb.Return()
	blk := bb.Finish()
	res := mustCover(t, blk, isdl.ExampleArch(4), DefaultOptions())

	// Find the two store nodes in schedule order and the load of acc.
	var storePos []int
	loadPos := -1
	for i, instr := range res.Best.Instrs {
		for _, n := range instr {
			if n.Kind == StoreNode && n.Var == "acc" {
				storePos = append(storePos, i)
			}
			if n.Kind == LoadNode && n.Var == "acc" {
				loadPos = i
			}
		}
	}
	if len(storePos) != 2 {
		t.Fatalf("found %d stores to acc, want 2\n%s", len(storePos), res.Best)
	}
	if loadPos < 0 || loadPos >= storePos[0] {
		t.Errorf("load of acc at %d not before first store at %d", loadPos, storePos[0])
	}
	if storePos[0] >= storePos[1] {
		t.Errorf("stores to acc out of order: %v", storePos)
	}
}

func TestGenMaxCliquesAgainstBruteForce(t *testing.T) {
	// Property-style: for deterministic pseudo-random matrices, Fig. 8's
	// algorithm must produce exactly the maximal cliques found by brute
	// force.
	for seed := int64(1); seed <= 40; seed++ {
		n := 2 + int(seed%7)
		par := randomMatrix(seed, n)
		got := GenMaxCliques(par)
		want := bruteForceMaxCliques(par)
		gm := map[string]bool{}
		for _, c := range got {
			gm[fmt.Sprint(c)] = true
		}
		wm := map[string]bool{}
		for _, c := range want {
			wm[fmt.Sprint(c)] = true
		}
		if len(gm) != len(wm) {
			t.Fatalf("seed %d: got %d cliques %v, want %d %v", seed, len(gm), got, len(wm), want)
		}
		for k := range wm {
			if !gm[k] {
				t.Fatalf("seed %d: missing clique %s (got %v)", seed, k, got)
			}
		}
	}
}

func randomMatrix(seed int64, n int) [][]bool {
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	par := make([][]bool, n)
	for i := range par {
		par[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := next()%2 == 0
			par[i][j], par[j][i] = v, v
		}
	}
	return par
}

func bruteForceMaxCliques(par [][]bool) [][]int {
	n := len(par)
	var cliques [][]int
	for mask := 1; mask < 1<<n; mask++ {
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < n && ok; j++ {
				if mask&(1<<j) != 0 && !par[i][j] {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		// Maximal?
		maximal := true
		for k := 0; k < n && maximal; k++ {
			if mask&(1<<k) != 0 {
				continue
			}
			all := true
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 && !par[k][i] {
					all = false
					break
				}
			}
			if all {
				maximal = false
			}
		}
		if maximal {
			var c []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					c = append(c, i)
				}
			}
			cliques = append(cliques, c)
		}
	}
	return cliques
}

func TestCoverDeterminism(t *testing.T) {
	m := isdl.ExampleArch(4)
	r1 := mustCover(t, fig2Block(), m, DefaultOptions())
	r2 := mustCover(t, fig2Block(), m, DefaultOptions())
	if r1.Best.String() != r2.Best.String() {
		t.Errorf("covering is not deterministic:\n%s\nvs\n%s", r1.Best, r2.Best)
	}
}

func TestCoverComplexInstruction(t *testing.T) {
	// On WideDSP the MAC pattern should let acc + x*y cover in fewer
	// operations than separate MUL and ADD.
	bb := ir.NewBuilder("mac")
	acc := bb.Load("acc")
	sum := bb.Add(acc, bb.Mul(bb.Load("x"), bb.Load("y")))
	bb.Store("acc", sum)
	bb.Return()
	blk := bb.Finish()
	res := mustCover(t, blk, isdl.WideDSP(8), DefaultOptions())
	usedMAC := false
	for _, instr := range res.Best.Instrs {
		for _, n := range instr {
			if n.Kind == OpNode && n.Op == ir.OpMAC {
				usedMAC = true
			}
		}
	}
	if !usedMAC {
		t.Errorf("covering did not use the MAC complex instruction\n%s", res.Best)
	}
}

func TestExhaustiveNeverWorse(t *testing.T) {
	blocks := []*ir.Block{fig2Block()}
	// A second, wider block.
	bb := ir.NewBuilder("w")
	x := bb.Add(bb.Load("a"), bb.Load("b"))
	y := bb.Mul(bb.Load("c"), bb.Load("d"))
	z := bb.Sub(x, y)
	w := bb.Add(y, bb.Load("e"))
	bb.Store("z", z)
	bb.Store("w", w)
	bb.Return()
	blocks = append(blocks, bb.Finish())

	for _, blk := range blocks {
		for _, regs := range []int{2, 4} {
			m := isdl.ExampleArch(regs)
			h := mustCover(t, blk, m, DefaultOptions())
			e := mustCover(t, blk, m, ExhaustiveOptions())
			if e.Best.Cost() > h.Best.Cost() {
				t.Errorf("block %s regs %d: exhaustive %d > heuristic %d",
					blk.Name, regs, e.Best.Cost(), h.Best.Cost())
			}
		}
	}
}
