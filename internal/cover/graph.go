package cover

import (
	"fmt"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

// valKey identifies a register-resident value: the original node whose
// result it is, at a particular location.
type valKey struct {
	val *ir.Node
	loc isdl.Loc
}

// graph is the solution graph for one functional-unit assignment: the
// operation nodes on their assigned units plus all required data-transfer
// nodes (Sec. IV-B), connected by value dependences and memory-ordering
// edges.
type graph struct {
	machine *isdl.Machine
	block   *ir.Block
	assign  *Assignment
	dm      isdl.Loc

	nodes  []*SNode
	nextID int

	// prod maps a value-at-location to the node that puts it there.
	prod map[valKey]*SNode
	// busLoad counts transfers per bus, driving the parallelism-based
	// transfer-path selection heuristic.
	busLoad map[string]int
	opts    Options

	// externalUses counts uses that survive the block (the branch
	// condition must stay in its register until the block ends).
	externalUses map[*SNode]int

	// nextSpill numbers spill slots.
	nextSpill int
	// nextMove numbers the synthetic memory slots transfer chains park
	// values in when a minimal path routes through a memory (no
	// bank-to-bank transfer exists, e.g. on memory-hub machines).
	nextMove int
}

func (g *graph) newNode(kind SNodeKind) *SNode {
	n := &SNode{ID: g.nextID, Kind: kind}
	g.nextID++
	g.nodes = append(g.nodes, n)
	return n
}

// moveSlot returns a fresh compiler-internal memory slot for a transfer
// chain that must park a value in a memory on its way to a register
// bank. The "$" prefix marks the slot block-local, like spill slots, so
// the verifier pairs the store with its reloads instead of matching it
// against IR memory traffic.
func (g *graph) moveSlot() string {
	s := fmt.Sprintf("$mv%d", g.nextMove)
	g.nextMove++
	return s
}

// bankLoc returns the register-bank location a functional unit reads
// and writes.
func (g *graph) bankLoc(unit string) isdl.Loc {
	return isdl.UnitLoc(g.machine.BankOf(unit))
}

// memOf returns the location of the memory holding a named variable,
// honoring the VarPlacement option (default: the first data memory).
func (g *graph) memOf(varName string) (isdl.Loc, error) {
	name, ok := g.opts.VarPlacement[varName]
	if !ok {
		return g.dm, nil
	}
	for _, mem := range g.machine.Memories {
		if mem.Name == name {
			return isdl.MemLoc(name), nil
		}
	}
	return isdl.Loc{}, fmt.Errorf("cover: variable %s placed in unknown memory %s", varName, name)
}

// addOrderEdge records a pure ordering constraint (no value flows).
func addOrderEdge(from, to *SNode) {
	for _, s := range from.OrdSuccs {
		if s == to {
			return
		}
	}
	from.OrdSuccs = append(from.OrdSuccs, to)
	to.OrdPreds = append(to.OrdPreds, from)
}

// buildGraph constructs the solution graph for the assignment: one
// operation node per executing original node, transfer chains for every
// cross-bank value flow, load transfers from data memory, and store
// transfers to data memory, plus memory-ordering edges between accesses
// to the same variable.
func buildGraph(d *sndag.DAG, a *Assignment, opts Options) (*graph, error) {
	// Transfers typically outnumber the operations; start the node list
	// and value-location map sized for a couple of transfers per node.
	hint := 2 * len(d.Block.Nodes)
	g := &graph{
		machine:      d.Machine,
		block:        d.Block,
		assign:       a,
		dm:           isdl.MemLoc(d.Machine.DataMemory().Name),
		prod:         make(map[valKey]*SNode, hint),
		busLoad:      make(map[string]int),
		opts:         opts,
		externalUses: make(map[*SNode]int),
	}
	g.nodes = make([]*SNode, 0, hint)

	loadsByVar := make(map[string][]*SNode)
	storesByVar := make(map[string][]*SNode)

	for _, n := range d.Block.Nodes {
		switch {
		case n.Op.IsComputation():
			if _, isAbsorbed := a.AbsorbedBy[n]; isAbsorbed {
				continue
			}
			alt := a.Choice[n]
			if alt == nil {
				return nil, fmt.Errorf("cover: node %s has no assignment", n)
			}
			op := g.newNode(OpNode)
			op.Value = n
			op.Unit = alt.Unit.Name
			op.Bank = alt.Unit.Regs.Name
			op.Op = alt.Op
			op.Alt = alt
			uloc := g.bankLoc(alt.Unit.Name)
			for _, operand := range alt.Operands {
				if operand.Op == ir.OpConst {
					continue // immediate
				}
				src, err := g.ensureValueAt(operand, uloc, loadsByVar)
				if err != nil {
					return nil, err
				}
				addEdge(src, op)
			}
			g.prod[valKey{n, uloc}] = op

		case n.Op == ir.OpStore:
			st, err := g.buildStore(n, loadsByVar)
			if err != nil {
				return nil, err
			}
			storesByVar[n.Var] = append(storesByVar[n.Var], st)
		}
	}

	// Branch condition: its register stays live past the block.
	if d.Block.Term == ir.TermBranch && d.Block.Cond != nil {
		cond := d.Block.Cond
		if cond.Op == ir.OpConst {
			// Constant condition needs no register (resolved statically
			// by the emitter); nothing to pin.
		} else {
			var holder *SNode
			if cond.Op == ir.OpLoad {
				// Load the condition into some unit's bank.
				u, err := g.cheapestUnitFor(g.dm)
				if err != nil {
					return nil, err
				}
				holder, err = g.ensureValueAt(cond, g.bankLoc(u), loadsByVar)
				if err != nil {
					return nil, err
				}
			} else {
				exec := cond
				if root, ok := a.AbsorbedBy[exec]; ok {
					exec = root
				}
				holder = g.prod[valKey{exec, g.bankLoc(a.UnitOf(cond).Name)}]
			}
			if holder != nil {
				g.externalUses[holder]++
			}
		}
	}

	// Memory ordering: every load of a variable precedes its first store;
	// stores to the same variable stay in program order.
	for v, stores := range storesByVar {
		for _, ld := range loadsByVar[v] {
			addOrderEdge(ld, stores[0])
		}
		for i := 1; i < len(stores); i++ {
			addOrderEdge(stores[i-1], stores[i])
		}
	}
	return g, nil
}

// ensureValueAt returns the node producing the value of original node o
// at location want, materializing the transfer chain (and load from data
// memory) if it does not exist yet. Chains are shared: once a value has
// landed in a bank, later consumers in that bank reuse it.
func (g *graph) ensureValueAt(o *ir.Node, want isdl.Loc, loadsByVar map[string][]*SNode) (*SNode, error) {
	if p, ok := g.prod[valKey{o, want}]; ok {
		return p, nil
	}
	var src isdl.Loc
	switch {
	case o.Op == ir.OpLoad:
		var err error
		src, err = g.memOf(o.Var)
		if err != nil {
			return nil, err
		}
	case o.Op.IsComputation():
		u := g.assign.UnitOf(o)
		if u == nil {
			return nil, fmt.Errorf("cover: operand %s unassigned", o)
		}
		src = g.bankLoc(u.Name)
	default:
		return nil, fmt.Errorf("cover: cannot locate value of %s", o)
	}
	if src == want {
		if p, ok := g.prod[valKey{o, src}]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("cover: value %s expected at %s but never produced", o, src)
	}
	path, err := g.pickPath(src, want)
	if err != nil {
		return nil, fmt.Errorf("cover: value n%d: %w", o.ID, err)
	}
	cur := g.prod[valKey{o, src}] // nil when src is the variable's memory
	for _, step := range path {
		if p, ok := g.prod[valKey{o, step.To}]; ok {
			cur = p
			continue
		}
		t := g.newNode(MoveNode)
		switch {
		case step.From.Kind == isdl.LocMem && cur == nil:
			// First hop out of the variable's home memory: a named load.
			t.Kind = LoadNode
			t.Var = o.Var
			loadsByVar[o.Var] = append(loadsByVar[o.Var], t)
		case step.From.Kind == isdl.LocMem:
			// Hop out of an intermediate memory: reload the compiler
			// temp the previous hop parked there.
			t.Kind = LoadNode
			t.Var = cur.Var
		case step.To.Kind == isdl.LocMem:
			// Hop into an intermediate memory (want is always a bank, so
			// this is never the final step): park the value in a fresh
			// compiler temp. A minimal path only routes through a memory
			// when the machine has no bank-to-bank transfer for this leg.
			t.Kind = StoreNode
			t.Var = g.moveSlot()
		}
		t.Value = o
		t.Step = step
		if cur != nil {
			addEdge(cur, t)
		}
		g.busLoad[step.Bus]++
		g.prod[valKey{o, step.To}] = t
		cur = t
	}
	return cur, nil
}

// buildStore materializes the transfer chain delivering a store's value
// to data memory, returning the final store node. Stores of constants and
// of freshly loaded values route through a pass-through unit.
func (g *graph) buildStore(s *ir.Node, loadsByVar map[string][]*SNode) (*SNode, error) {
	arg := s.Args[0]
	var src isdl.Loc
	var producer *SNode
	switch {
	case arg.Op == ir.OpConst:
		// Materialize the immediate in some unit's register.
		u, err := g.cheapestUnitFor(g.dm)
		if err != nil {
			return nil, err
		}
		op := g.newNode(OpNode)
		op.Value = arg
		op.Unit = u
		op.Bank = g.machine.BankOf(u)
		op.Op = ir.OpConst
		src = g.bankLoc(u)
		g.prod[valKey{arg, src}] = op
		producer = op
	case arg.Op == ir.OpLoad:
		u, err := g.cheapestUnitFor(g.dm)
		if err != nil {
			return nil, err
		}
		src = g.bankLoc(u)
		p, err := g.ensureValueAt(arg, src, loadsByVar)
		if err != nil {
			return nil, err
		}
		producer = p
	default:
		unit := g.assign.UnitOf(arg)
		if unit == nil {
			return nil, fmt.Errorf("cover: store %s of unassigned value", s)
		}
		src = g.bankLoc(unit.Name)
		producer = g.prod[valKey{arg, src}]
		if producer == nil {
			return nil, fmt.Errorf("cover: store %s: value not produced at %s", s, src)
		}
	}

	dst, err := g.memOf(s.Var)
	if err != nil {
		return nil, err
	}
	path, err := g.pickPath(src, dst)
	if err != nil {
		return nil, fmt.Errorf("cover: store %s: %w", s, err)
	}
	cur := producer
	for i, step := range path {
		var t *SNode
		switch {
		case i == len(path)-1:
			t = g.newNode(StoreNode)
			t.Var = s.Var
		case step.To.Kind == isdl.LocMem:
			// Intermediate memory stop before the destination memory:
			// park the value in a compiler temp.
			t = g.newNode(StoreNode)
			t.Var = g.moveSlot()
		case step.From.Kind == isdl.LocMem:
			t = g.newNode(LoadNode)
			t.Var = cur.Var
		default:
			t = g.newNode(MoveNode)
		}
		t.Value = arg
		t.Step = step
		addEdge(cur, t)
		g.busLoad[step.Bus]++
		if step.To.Kind == isdl.LocUnit {
			g.prod[valKey{arg, step.To}] = t
		}
		cur = t
	}
	return cur, nil
}

// pickPath selects a transfer path from src to dst. With the parallelism
// heuristic enabled (Sec. IV-B), among the minimal-hop alternatives it
// picks the one whose buses are least congested so far; otherwise the
// first alternative.
func (g *graph) pickPath(src, dst isdl.Loc) ([]isdl.Transfer, error) {
	paths := g.machine.TransferPaths(src, dst)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no transfer path %s -> %s", src, dst)
	}
	if !g.opts.TransferParallelismHeuristic || len(paths) == 1 {
		return paths[0], nil
	}
	best, bestCost := paths[0], -1
	for _, p := range paths {
		cost := 0
		for _, step := range p {
			cost += g.busLoad[step.Bus]
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = p, cost
		}
	}
	return best, nil
}

// cheapestUnitFor returns the unit with the cheapest round trip from the
// given memory (used to route leaf stores through a pass-through unit).
func (g *graph) cheapestUnitFor(mem isdl.Loc) (string, error) {
	best, bestCost := "", -1
	for _, u := range g.machine.Units {
		ul := isdl.UnitLoc(u.Regs.Name)
		c1, c2 := g.machine.PathCost(mem, ul), g.machine.PathCost(ul, mem)
		if c1 < 0 || c2 < 0 {
			continue
		}
		if bestCost < 0 || c1+c2 < bestCost {
			best, bestCost = u.Name, c1+c2
		}
	}
	if best == "" {
		return "", fmt.Errorf("cover: no unit reachable from %s", mem)
	}
	return best, nil
}

// latencyOf returns the result latency of a solution-graph node.
func (g *graph) latencyOf(n *SNode) int { return nodeLatency(g.machine, n) }

// nodeLatency returns a node's result latency in cycles: operations use
// their unit's declared latency, transfers and synthetic immediate
// materializations take one cycle.
func nodeLatency(m *isdl.Machine, n *SNode) int {
	if n.Kind == OpNode && n.Op.IsComputation() {
		if u := m.Unit(n.Unit); u != nil {
			return u.LatencyOf(n.Op)
		}
	}
	return 1
}

// bankSize returns the size of the named register bank.
func (g *graph) bankSize(bank string) int {
	return g.machine.BankSize(bank)
}
