package cover

import (
	"strings"
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
	"aviv/internal/sndag"
)

func TestTraceRecordsAllStages(t *testing.T) {
	opts := DefaultOptions()
	tr := &Trace{}
	opts.Trace = tr
	if _, err := CoverBlock(fig2Block(), isdl.ExampleArch(4), opts); err != nil {
		t.Fatal(err)
	}
	text := tr.String()
	for _, want := range []string{
		"assign n",            // Fig. 6 incremental costs
		"assignment search:",  // beam summary
		"candidate 0:",        // kept assignments
		"covering assignment", // per-assignment stage
		"maximal groupings",   // Fig. 8 output
		"clique {",            // clique inventory
		"instr 0:",            // schedule
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestDescribeAssignment(t *testing.T) {
	d, err := sndag.Build(fig2Block(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	assigns := exploreAssignments(d, DefaultOptions())
	if len(assigns) == 0 {
		t.Fatal("no assignments")
	}
	s := describeAssignment(d, assigns[0])
	for _, want := range []string{"n", ":U"} {
		if !strings.Contains(s, want) {
			t.Errorf("describeAssignment = %q", s)
		}
	}
}

func TestDistinctRegOperands(t *testing.T) {
	bb := ir.NewBuilder("b")
	x := bb.Load("x")
	c := bb.Const(3)
	sq := bb.Mul(x, x)             // duplicated operand: 1 register
	addc := bb.Add(sq, c)          // const operand: 1 register
	bb.Store("o", bb.Sub(addc, x)) // 2 registers
	bb.Return()
	blk := bb.Finish()
	d, err := sndag.Build(blk, isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[ir.Op]int{}
	for _, s := range d.Splits {
		byOp[s.Orig.Op] = distinctRegOperands(s.Alts[0])
	}
	if byOp[ir.OpMul] != 1 {
		t.Errorf("MUL(x,x) needs %d registers, want 1", byOp[ir.OpMul])
	}
	if byOp[ir.OpAdd] != 1 {
		t.Errorf("ADD(sq,#3) needs %d registers, want 1", byOp[ir.OpAdd])
	}
	if byOp[ir.OpSub] != 2 {
		t.Errorf("SUB needs %d registers, want 2", byOp[ir.OpSub])
	}
}

func TestLookaheadOffStillOptimal(t *testing.T) {
	opts := DefaultOptions()
	opts.Lookahead = false
	res, err := CoverBlock(fig2Block(), isdl.ExampleArch(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost() > 8 {
		t.Errorf("no-lookahead cost %d, want <= 8", res.Best.Cost())
	}
}

func TestGenMaxCliquesDegenerate(t *testing.T) {
	// Empty matrix.
	if got := GenMaxCliques(nil); len(got) != 0 {
		t.Errorf("empty matrix produced %v", got)
	}
	// Fully parallel: one clique with everything.
	n := 5
	par := make([][]bool, n)
	for i := range par {
		par[i] = make([]bool, n)
		for j := range par[i] {
			par[i][j] = i != j
		}
	}
	cs := GenMaxCliques(par)
	if len(cs) != 1 || len(cs[0]) != n {
		t.Errorf("fully parallel matrix: %v", cs)
	}
	// Fully serial: n singleton cliques.
	for i := range par {
		for j := range par[i] {
			par[i][j] = false
		}
	}
	cs = GenMaxCliques(par)
	if len(cs) != n {
		t.Errorf("fully serial matrix: %v", cs)
	}
}

func TestAssignmentSpaceVsExplored(t *testing.T) {
	d, err := sndag.Build(fig2Block(), isdl.ExampleArch(4))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive with no cap enumerates exactly the assignment space.
	opts := ExhaustiveOptions()
	opts.BeamWidth = 1 << 30
	assigns := exploreAssignments(d, opts)
	if len(assigns) != d.AssignmentSpace() {
		t.Errorf("enumerated %d assignments, space is %d", len(assigns), d.AssignmentSpace())
	}
	// MaxAssignments caps enumeration.
	opts.MaxAssignments = 5
	capped := exploreAssignments(d, opts)
	if len(capped) > 5 {
		t.Errorf("cap ignored: %d assignments", len(capped))
	}
}

func TestSNodeStringForms(t *testing.T) {
	v := &ir.Node{ID: 3}
	op := &SNode{ID: 1, Kind: OpNode, Unit: "U1", Bank: "U1", Op: ir.OpAdd, Value: v}
	ld := &SNode{ID: 2, Kind: LoadNode, Var: "x", Value: v,
		Step: isdl.Transfer{From: isdl.MemLoc("DM"), To: isdl.UnitLoc("U1"), Bus: "DB"}}
	st := &SNode{ID: 3, Kind: StoreNode, Var: "y", Value: v,
		Step: isdl.Transfer{From: isdl.UnitLoc("U1"), To: isdl.MemLoc("DM"), Bus: "DB"}}
	mv := &SNode{ID: 4, Kind: MoveNode, Value: v,
		Step: isdl.Transfer{From: isdl.UnitLoc("U1"), To: isdl.UnitLoc("U2"), Bus: "DB"}}
	cases := map[*SNode]string{
		op: "ADD@U1", ld: "LD x", st: "ST U1", mv: "MV U1->U2",
	}
	for n, want := range cases {
		if !strings.Contains(n.String(), want) {
			t.Errorf("String() = %q, want substring %q", n.String(), want)
		}
	}
	if OpNode.String() != "op" || MoveNode.String() != "move" ||
		LoadNode.String() != "load" || StoreNode.String() != "store" {
		t.Error("SNodeKind strings wrong")
	}
}
