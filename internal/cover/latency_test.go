package cover

import (
	"testing"

	"aviv/internal/ir"
	"aviv/internal/isdl"
)

// pipelinedMachine returns the example architecture with a 3-cycle
// multiplier on U2/U3 (a typical DSP pipeline).
func pipelinedMachine(regs int) *isdl.Machine {
	m := isdl.ExampleArch(regs)
	m.Unit("U2").SetLatency(ir.OpMul, 3)
	m.Unit("U3").SetLatency(ir.OpMul, 3)
	if err := m.Finalize(); err != nil {
		panic(err)
	}
	return m
}

func TestLatencySeparation(t *testing.T) {
	// out = (a*b) + c: the ADD must issue >= 3 cycles after the MUL.
	bb := ir.NewBuilder("lat")
	prod := bb.Mul(bb.Load("a"), bb.Load("b"))
	bb.Store("out", bb.Add(prod, bb.Load("c")))
	bb.Return()
	blk := bb.Finish()

	m := pipelinedMachine(4)
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("latency-invalid solution: %v\n%s", err, res.Best)
	}
	pos := map[*SNode]int{}
	var mul, add *SNode
	for i, instr := range res.Best.Instrs {
		for _, n := range instr {
			pos[n] = i
			if n.Kind == OpNode && n.Op == ir.OpMul {
				mul = n
			}
			if n.Kind == OpNode && n.Op == ir.OpAdd {
				add = n
			}
		}
	}
	if mul == nil || add == nil {
		t.Fatal("missing ops")
	}
	if pos[add]-pos[mul] < 3 {
		t.Errorf("ADD at %d only %d cycles after 3-cycle MUL at %d\n%s",
			pos[add], pos[add]-pos[mul], pos[mul], res.Best)
	}
	// The latency shadow must cost code size vs the single-cycle machine.
	fast, err := CoverBlock(blk, isdl.ExampleArch(4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost() <= fast.Best.Cost() {
		t.Errorf("pipelined cost %d not above single-cycle cost %d",
			res.Best.Cost(), fast.Best.Cost())
	}
}

func TestLatencyShadowFilledWhenPossible(t *testing.T) {
	// Two independent MULs and an ADD: the scheduler should overlap work
	// under the multiply latency rather than pad NOPs.
	bb := ir.NewBuilder("fill")
	p1 := bb.Mul(bb.Load("a"), bb.Load("b"))
	p2 := bb.Mul(bb.Load("c"), bb.Load("d"))
	bb.Store("out", bb.Add(p1, p2))
	bb.Return()
	blk := bb.Finish()

	m := pipelinedMachine(4)
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	// Lower bound: 4 loads on one bus + work; the overlapped schedule
	// should not exceed ~11 instructions (serial NOP-padded would be far
	// worse).
	if res.Best.Cost() > 11 {
		t.Errorf("overlap failed: %d instructions\n%s", res.Best.Cost(), res.Best)
	}
	// Count explicit NOPs.
	nops := 0
	for _, instr := range res.Best.Instrs {
		if len(instr) == 0 {
			nops++
		}
	}
	if nops > 3 {
		t.Errorf("%d NOPs in overlapped schedule\n%s", nops, res.Best)
	}
}

func TestLatencySerialChainPadsNOPs(t *testing.T) {
	// A pure multiply chain cannot hide latency: NOPs must appear.
	bb := ir.NewBuilder("chainmul")
	cur := bb.Load("x")
	for i := 0; i < 3; i++ {
		cur = bb.Mul(cur, bb.Const(3))
	}
	bb.Store("y", cur)
	bb.Return()
	blk := bb.Finish()

	m := pipelinedMachine(4)
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatal(err)
	}
	nops := 0
	for _, instr := range res.Best.Instrs {
		if len(instr) == 0 {
			nops++
		}
	}
	if nops < 2 {
		t.Errorf("expected NOP padding in a dependent multiply chain, got %d\n%s", nops, res.Best)
	}
}

func TestLatencyWithSpills(t *testing.T) {
	// Pressure + latency together: still valid.
	bb := ir.NewBuilder("latpress")
	a := bb.Load("a")
	b := bb.Load("b")
	c := bb.Load("c")
	d := bb.Load("d")
	p1 := bb.Mul(a, b)
	p2 := bb.Mul(c, d)
	p3 := bb.Mul(bb.Add(a, c), bb.Sub(b, d))
	bb.Store("o", bb.Add(bb.Add(p1, p2), p3))
	bb.Return()
	blk := bb.Finish()

	m := pipelinedMachine(2)
	res, err := CoverBlock(blk, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, res.Best)
	}
}

func TestSerialFallbackRespectsLatency(t *testing.T) {
	m := isdl.NewMachine("TinyLat")
	u := m.AddUnit("U1", 2, ir.OpAdd, ir.OpSub, ir.OpMul)
	u.SetLatency(ir.OpMul, 4)
	m.AddMemory("DM")
	m.AddBus("B", 1)
	m.ConnectAll("B")
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	bb := ir.NewBuilder("tight")
	a := bb.Load("a")
	b := bb.Load("b")
	s1 := bb.Add(a, b)
	s2 := bb.Mul(s1, a)
	s3 := bb.Sub(s2, b)
	bb.Store("o", bb.Mul(bb.Add(s3, s1), s2))
	bb.Return()
	res, err := CoverBlock(bb.Finish(), m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, res.Best)
	}
}
