// This file documents the covering algorithm in depth; the package
// declaration comment in options.go is the short version.
//
// # The concurrent code-generation problem
//
// Classic compilers run instruction selection, register allocation, and
// scheduling as separate phases. On VLIW/ASIP targets the phases are
// tightly coupled: which unit executes an operation decides which
// register bank holds its result, which data transfers are needed, which
// operations can share an instruction word, and ultimately how many
// instructions the block needs. The AVIV paper's answer is to search the
// joint space, pruned by heuristics at each level. This package is that
// search.
//
// # Pipeline for one basic block
//
//  1. exploreAssignments (assign.go, Sec. IV-A): depth-first search over
//     split-node functional-unit assignments, visiting split nodes by
//     increasing level from the DAG top. At each node every alternative
//     gets an incremental cost: required data transfers to already-placed
//     users, loads from data memory, parallelism foregone by co-locating
//     independent operations, and (optionally) register-file crowding.
//     With PruneIncremental only minimal-cost alternatives are expanded
//     (ties expand both, exactly as the paper's Fig. 6 walks through).
//     Complete assignments are ranked by accumulated cost and the best
//     BeamWidth survive.
//
//  2. buildGraph (graph.go, Sec. IV-B): for one assignment, materialize
//     the solution graph — operation nodes bound to units plus every
//     data-transfer node the assignment implies: loads from data memory,
//     cross-bank moves (multi-hop when no direct path exists; among
//     alternative paths the least-congested buses win), and stores.
//     Memory-ordering edges serialize accesses to the same variable, and
//     the branch condition's register is pinned live to the block end.
//
//  3. buildCliques (clique.go, Sec. IV-C): the pairwise-parallelism
//     matrix marks node pairs with no dependence path and compatible
//     resources; GenMaxCliques enumerates all maximal cliques with the
//     paper's Fig. 8 recursion (greedy absorption of candidates that
//     preclude nothing, i < index duplicate pruning). The level-window
//     heuristic (IV-C.2) keeps only merges of nodes at similar schedule
//     depth; splitIllegal (IV-C.3) breaks cliques that violate ISDL
//     constraints or bus widths.
//
//  4. scheduler.run (greedy.go, Sec. IV-D): repeatedly select the clique
//     covering the most ready nodes whose register requirements fit, ties
//     broken by a resource-lower-bound lookahead. Register pressure is
//     tracked per bank by counting live values (a value dies when its
//     last consumer issues; reads precede writes within an instruction,
//     so a register freed by a read is reusable by a same-cycle write).
//     Three policies not spelled out by the paper make this converge:
//     value-carrying transfers are gated on usefulness (a consumer must
//     be nearly ready) so values are not parked early; after a spill the
//     freed bank is reserved for the blocked node (goal reservation); and
//     spill victims are chosen Belady-style (farthest next use) with the
//     paper's fewest-reloads criterion as tie-break.
//
//  5. spill (spill.go, Fig. 9): when pressure blocks every ready node, a
//     live value is stored to a fresh spill slot. Ready consumers keep
//     reading the register (the store happens early; eviction waits for
//     their reads); distant consumers are rewired to per-bank reload
//     nodes, and move chains made redundant disappear. Maximal cliques
//     are regenerated over the surviving nodes.
//
//  6. Portfolio (cover.go): each assignment is also covered by a plain
//     ready-list scheduler (list.go) — maximal cliques occasionally favor
//     instruction width over dependence depth on long accumulation
//     chains — and the smaller result wins. With the level-window
//     heuristic disabled (heuristics-off mode) the windowed covering runs
//     too, keeping the exhaustive candidate set a superset of the
//     heuristic one.
//
//  7. serialFallback (serial.go): if every assignment fails (register
//     files smaller than any legal schedule's needs), emit strictly
//     serial memory-resident code — one node per instruction, operands
//     reloaded at each use — which the per-alternative operand-count
//     filter guarantees is schedulable.
//
// The result is a Solution: an ordered list of VLIW instructions, each a
// set of operation and transfer nodes, with per-bank pressure certified
// ≤ the register-file sizes, so the detailed register allocation of
// package regalloc (graph coloring, Sec. IV-F) cannot fail.
package cover
